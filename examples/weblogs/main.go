// Command weblogs is the paper's motivating scenario (§I): user check-in /
// page-visit activity streams stored as key-value pairs in HBase, analyzed
// with OLAP queries. It loads a day of session logs keyed by
// region:timestamp, then answers three analyst questions, showing how the
// composite rowkey's first dimension drives partition pruning.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/shc-go/shc"
	"github.com/shc-go/shc/internal/metrics"
)

const logsCatalog = `{
  "table":{"namespace":"default", "name":"weblogs", "tableCoder":"PrimitiveType"},
  "rowkey":"region:ts",
  "columns":{
    "region":{"cf":"rowkey", "col":"region", "type":"string"},
    "ts":{"cf":"rowkey", "col":"ts", "type":"bigint"},
    "user_id":{"cf":"s", "col":"u", "type":"int"},
    "page":{"cf":"s", "col":"p", "type":"string"},
    "stay_secs":{"cf":"s", "col":"d", "type":"double"},
    "purchase":{"cf":"s", "col":"b", "type":"boolean"}
  }
}`

var regions = []string{"ap-south", "eu-west", "us-east", "us-west"}
var pages = []string{"/home", "/search", "/item", "/cart", "/checkout"}

func main() {
	cluster, err := shc.NewCluster(shc.ClusterConfig{NumServers: 4})
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.NewClient(shc.WithConnPool(shc.NewConnCache(cluster)))
	cat, err := shc.ParseCatalog(logsCatalog)
	if err != nil {
		log.Fatal(err)
	}
	rel, err := shc.NewHBaseRelation(client, cat, shc.Options{NewTableRegions: 8}, cluster.Meter)
	if err != nil {
		log.Fatal(err)
	}

	// One simulated day of activity.
	rng := rand.New(rand.NewSource(7))
	var rows []shc.Row
	for i := 0; i < 5000; i++ {
		page := pages[rng.Intn(len(pages))]
		rows = append(rows, shc.Row{
			regions[rng.Intn(len(regions))],     // region (key dim 1)
			int64(1700000000000 + i*17),         // ts (key dim 2)
			page,                                // page
			rng.Intn(4) == 0 && page == "/cart", // purchase
			5 + rng.Float64()*120,               // stay_secs
			int32(rng.Intn(800)),                // user_id
		})
	}
	if err := rel.Insert(rows); err != nil {
		log.Fatal(err)
	}

	sess, err := shc.NewSession(shc.SessionConfig{Hosts: cluster.Hosts(), Meter: cluster.Meter})
	if err != nil {
		log.Fatal(err)
	}
	sess.Register(rel)

	run := func(title, query string) {
		before := cluster.Meter.Snapshot()
		df, err := sess.SQL(query)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		out, err := df.Collect()
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		delta := metrics.Diff(before, cluster.Meter.Snapshot())
		fmt.Printf("\n== %s ==\n", title)
		for _, r := range out {
			fmt.Printf("  %v\n", r)
		}
		fmt.Printf("  [regions pruned: %d, rows fetched: %d, filters pushed: %d]\n",
			delta[metrics.RegionsPruned], delta[metrics.RowsReturned], delta[metrics.FiltersPushed])
	}

	// 1. Dwell time per page in one region — the region prefix prunes most
	// of the table.
	run("eu-west dwell time by page", `
		SELECT page, count(*) AS visits, avg(stay_secs) AS avg_stay
		FROM weblogs
		WHERE region = 'eu-west'
		GROUP BY page ORDER BY avg_stay DESC`)

	// 2. Conversion funnel across two regions (rowkey IN-list pruning).
	run("checkout conversion, coasts only", `
		SELECT region, count(*) AS carts,
		       sum(CASE WHEN purchase THEN 1 ELSE 0 END) AS buys
		FROM weblogs
		WHERE region IN ('us-east', 'us-west') AND page = '/cart'
		GROUP BY region ORDER BY region`)

	// 3. Heavy sessions anywhere (server-side value filter, no pruning).
	run("long stays over 2 minutes", `
		SELECT region, count(*) AS n
		FROM weblogs
		WHERE stay_secs > 120
		GROUP BY region ORDER BY n DESC, region`)

	fmt.Printf("\ncluster counters:\n%s", cluster.Meter)
}
