// Command securemulti demonstrates the paper's §V-B.2 scenario: one
// analysis joins data from two *secure* HBase clusters (streaming user
// activity in one, purchase records in another) plus a static Hive-style
// profile table, with SHCCredentialsManager fetching, caching, and renewing
// a delegation token per cluster — no restart needed to reach a new secure
// service.
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/shc-go/shc"
	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/security"
)

const activityCatalog = `{
  "table":{"name":"activity", "tableCoder":"PrimitiveType"},
  "rowkey":"uid",
  "columns":{
    "uid":{"cf":"rowkey", "col":"uid", "type":"int"},
    "clicks":{"cf":"a", "col":"c", "type":"int"},
    "last_page":{"cf":"a", "col":"p", "type":"string"}
  }
}`

const purchasesCatalog = `{
  "table":{"name":"purchases", "tableCoder":"PrimitiveType"},
  "rowkey":"uid",
  "columns":{
    "uid":{"cf":"rowkey", "col":"uid", "type":"int"},
    "total":{"cf":"p", "col":"t", "type":"double"}
  }
}`

func main() {
	meter := shc.NewMetrics()

	// The shared KDC knows our principal (paper Code 6's configuration).
	kdc := security.NewKDC()
	kdc.AddPrincipal("ambari-qa@EXAMPLE.COM", "smokeuser.headless.keytab")

	// Credentials manager: enabled, with the principal + keytab.
	creds := shc.NewCredentialsManager(shc.CredentialsConfig{
		Enabled:   true,
		Principal: "ambari-qa@EXAMPLE.COM",
		Keytab:    "smokeuser.headless.keytab",
	}, meter)

	// Two secure clusters, each with its own token service.
	bootSecure := func(name string) (*shc.Cluster, *shc.Client) {
		svc := security.NewTokenService(name, kdc, time.Hour, nil, meter)
		cluster, err := shc.NewCluster(shc.ClusterConfig{
			Name:       name,
			NumServers: 2,
			Meter:      meter,
			Validate:   svc.Validator(),
		})
		if err != nil {
			log.Fatal(err)
		}
		creds.RegisterCluster(svc)
		client := cluster.NewClient(
			shc.WithConnPool(shc.NewConnCache(cluster)),
			shc.WithTokenProvider(creds),
		)
		return cluster, client
	}
	clusterA, clientA := bootSecure("hbase-activity")
	clusterB, clientB := bootSecure("hbase-purchases")
	creds.Start()
	defer creds.Stop()

	// Load the activity cluster.
	catA, _ := shc.ParseCatalog(activityCatalog)
	relA, err := shc.NewHBaseRelation(clientA, catA, shc.Options{NewTableRegions: 2}, meter)
	if err != nil {
		log.Fatal(err)
	}
	var activity []shc.Row
	for i := 1; i <= 40; i++ {
		activity = append(activity, shc.Row{int32(i), int32(i * 3 % 50), fmt.Sprintf("/p/%d", i%5)})
	}
	if err := relA.Insert(activity); err != nil {
		log.Fatal(err)
	}

	// Load the purchases cluster.
	catB, _ := shc.ParseCatalog(purchasesCatalog)
	relB, err := shc.NewHBaseRelation(clientB, catB, shc.Options{NewTableRegions: 2}, meter)
	if err != nil {
		log.Fatal(err)
	}
	var purchases []shc.Row
	for i := 1; i <= 40; i += 2 {
		purchases = append(purchases, shc.Row{int32(i), float64(i) * 9.99})
	}
	if err := relB.Insert(purchases); err != nil {
		log.Fatal(err)
	}

	// A Hive-style static profile table living next to the clusters.
	profiles := datasource.NewMemRelation("profiles", plan.Schema{
		{Name: "uid", Type: plan.TypeInt32},
		{Name: "segment", Type: plan.TypeString},
	}, 2)
	var profRows []plan.Row
	for i := 1; i <= 40; i++ {
		profRows = append(profRows, plan.Row{int32(i), []string{"new", "loyal", "vip"}[i%3]})
	}
	if err := profiles.Insert(profRows); err != nil {
		log.Fatal(err)
	}

	// One session sees all three sources; tokens flow per cluster.
	hosts := append(clusterA.Hosts(), clusterB.Hosts()...)
	sess, err := shc.NewSession(shc.SessionConfig{Hosts: hosts, Meter: meter})
	if err != nil {
		log.Fatal(err)
	}
	sess.Register(relA)
	sess.Register(relB)
	sess.Register(profiles)

	df, err := sess.SQL(`
		SELECT p.segment, count(*) AS buyers, avg(b.total) AS avg_total, max(a.clicks) AS max_clicks
		FROM activity a
		JOIN purchases b ON a.uid = b.uid
		JOIN profiles p ON a.uid = p.uid
		GROUP BY p.segment
		ORDER BY avg_total DESC`)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("cross-cluster shopping-habit join (secure):")
	for _, r := range rows {
		fmt.Printf("  segment=%-6v buyers=%-3v avg_total=%.2f max_clicks=%v\n", r[0], r[1], r[2], r[3])
	}

	fmt.Printf("\ntoken traffic: fetched=%d cache_hits=%d for clusters %v\n",
		meter.Get(metrics.TokensFetched), meter.Get(metrics.TokensCacheHits), creds.CachedClusters())

	// An unauthenticated client is turned away by the region servers.
	anon := clusterA.NewClient()
	if _, err := anon.ListTables(); err != nil {
		fmt.Printf("anonymous access correctly rejected: %v\n", err)
	}
}
