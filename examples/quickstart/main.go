// Command quickstart walks the paper's Codes 1–4 end to end: define a
// catalog for the "actives" table, write user-activity rows through the
// DataFrame write path, then read them back with the DataFrame API and SQL.
package main

import (
	"fmt"
	"log"

	"github.com/shc-go/shc"
)

// catalog is the paper's Code 1, verbatim in structure.
const catalog = `{
  "table":{"namespace":"default", "name":"actives", "tableCoder":"PrimitiveType", "Version":"2.0"},
  "rowkey":"key",
  "columns":{
    "col0":{"cf":"rowkey", "col":"key", "type":"string"},
    "user-id":{"cf":"cf1", "col":"col1", "type":"tinyint"},
    "visit-pages":{"cf":"cf2", "col":"col2", "type":"string"},
    "stay-time":{"cf":"cf3", "col":"col3", "type":"double"},
    "time":{"cf":"cf4", "col":"col4", "type":"time"}
  }
}`

func main() {
	// Boot a 3-server simulated HBase cluster and open SHC over it.
	cluster, err := shc.NewCluster(shc.ClusterConfig{NumServers: 3})
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.NewClient(shc.WithConnPool(shc.NewConnCache(cluster)))
	cat, err := shc.ParseCatalog(catalog)
	if err != nil {
		log.Fatal(err)
	}
	// NewTableRegions: 5 pre-split regions, like Code 2's newTable -> "5".
	rel, err := shc.NewHBaseRelation(client, cat, shc.Options{NewTableRegions: 5}, cluster.Meter)
	if err != nil {
		log.Fatal(err)
	}

	// Write path (Code 2): rows follow the catalog schema order —
	// (col0, stay-time, time, user-id, visit-pages).
	var rows []shc.Row
	for i := 0; i < 256; i++ {
		rows = append(rows, shc.Row{
			fmt.Sprintf("row%03d", i),
			float64(i%60) + 0.5,
			int64(1700000000000 + i*1000),
			int8(i % 100),
			fmt.Sprintf("/page/%d", i%7),
		})
	}
	if err := rel.Insert(rows); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d rows into %q across pre-split regions\n", len(rows), cat.Table.Name)

	// Read path (Code 3): df.filter($"col0" <= "row120").select("col0","col1").
	sess, err := shc.NewSession(shc.SessionConfig{Hosts: cluster.Hosts(), Meter: cluster.Meter})
	if err != nil {
		log.Fatal(err)
	}
	sess.Register(rel)
	df, err := sess.Table("actives")
	if err != nil {
		log.Fatal(err)
	}
	result, err := df.
		Filter(shc.Le(shc.Col("col0"), shc.Lit("row120"))).
		Select("col0", "user-id").
		Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DataFrame filter col0 <= row120: %d rows (first: %v)\n", len(result), result[0])

	// SQL path (Code 4): createOrReplaceTempView + sqlContext.sql.
	df.CreateOrReplaceTempView("avrotable")
	count, err := sess.SQL("select count(1) from avrotable")
	if err != nil {
		log.Fatal(err)
	}
	rows2, err := count.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("select count(1): %v\n", rows2[0][0])

	// A grouped OLAP query with pushdown at work.
	agg, err := sess.SQL(`
		SELECT ` + "`visit-pages`" + ` AS page, count(*) AS visits, avg(` + "`stay-time`" + `) AS avg_stay
		FROM actives
		WHERE col0 >= 'row100'
		GROUP BY ` + "`visit-pages`" + `
		ORDER BY visits DESC, page`)
	if err != nil {
		log.Fatal(err)
	}
	out, err := agg.Collect()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top pages for rows >= row100:")
	for _, r := range out {
		fmt.Printf("  %-10s visits=%-4d avg_stay=%.1fs\n", r[0], r[1], r[2])
	}

	// Show what the optimizer pushed into HBase.
	explained, err := agg.Explain()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", explained)
	fmt.Printf("cluster counters:\n%s", cluster.Meter)
}
