// Command retail runs a small retail-analytics notebook over two HBase
// tables, exercising the engine surface beyond the paper's minimum: LEFT
// OUTER JOIN (customers without purchases), UNION ALL (combining channels),
// SELECT DISTINCT, sort-merge joins, and df.Show() rendering.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/shc-go/shc"
)

const customersCatalog = `{
  "table":{"name":"customers", "tableCoder":"PrimitiveType"},
  "rowkey":"id",
  "columns":{
    "c_id":{"cf":"rowkey", "col":"id", "type":"int"},
    "c_name":{"cf":"c", "col":"n", "type":"string"},
    "c_tier":{"cf":"c", "col":"t", "type":"string"}
  }
}`

const salesCatalog = `{
  "table":{"name":"store_sales", "tableCoder":"PrimitiveType"},
  "rowkey":"id",
  "columns":{
    "s_id":{"cf":"rowkey", "col":"id", "type":"bigint"},
    "s_customer":{"cf":"s", "col":"c", "type":"int"},
    "s_amount":{"cf":"s", "col":"a", "type":"double"}
  }
}`

const webCatalog = `{
  "table":{"name":"web_sales", "tableCoder":"PrimitiveType"},
  "rowkey":"id",
  "columns":{
    "w_id":{"cf":"rowkey", "col":"id", "type":"bigint"},
    "w_customer":{"cf":"w", "col":"c", "type":"int"},
    "w_amount":{"cf":"w", "col":"a", "type":"double"}
  }
}`

func main() {
	cluster, err := shc.NewCluster(shc.ClusterConfig{NumServers: 3})
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.NewClient(shc.WithConnPool(shc.NewConnCache(cluster)))
	sess, err := shc.NewSession(shc.SessionConfig{
		Hosts: cluster.Hosts(), Meter: cluster.Meter,
		UseSortMergeJoin: true, // Spark's default join strategy
	})
	if err != nil {
		log.Fatal(err)
	}

	load := func(catalog string, rows []shc.Row) {
		cat, err := shc.ParseCatalog(catalog)
		if err != nil {
			log.Fatal(err)
		}
		rel, err := shc.NewHBaseRelation(client, cat, shc.Options{NewTableRegions: 3}, cluster.Meter)
		if err != nil {
			log.Fatal(err)
		}
		if err := rel.Insert(rows); err != nil {
			log.Fatal(err)
		}
		sess.Register(rel)
	}

	rng := rand.New(rand.NewSource(11))
	var customers []shc.Row
	tiers := []string{"bronze", "silver", "gold"}
	for i := 1; i <= 40; i++ {
		customers = append(customers, shc.Row{int32(i), fmt.Sprintf("Customer-%02d", i), tiers[rng.Intn(3)]})
	}
	load(customersCatalog, customers)

	var store []shc.Row
	for i := 1; i <= 120; i++ {
		store = append(store, shc.Row{int64(i), 10 + rng.Float64()*200, int32(1 + rng.Intn(25))})
	}
	load(salesCatalog, store)

	var web []shc.Row
	for i := 1; i <= 60; i++ {
		web = append(web, shc.Row{int64(i), 5 + rng.Float64()*100, int32(10 + rng.Intn(25))})
	}
	load(webCatalog, web)

	show := func(title, query string, n int) {
		df, err := sess.SQL(query)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		out, err := df.Show(n)
		if err != nil {
			log.Fatalf("%s: %v", title, err)
		}
		fmt.Printf("\n== %s ==\n%s", title, out)
	}

	// UNION ALL combines the two sales channels; DISTINCT counts buyers.
	show("distinct buyers per channel union", `
		SELECT 'store' AS channel, count(DISTINCT s_customer) AS buyers FROM store_sales
		UNION ALL
		SELECT 'web', count(DISTINCT w_customer) FROM web_sales`, 0)

	// LEFT JOIN finds customers who never bought anything in-store.
	show("customers with no store purchases", `
		SELECT c.c_name, c.c_tier
		FROM customers c
		LEFT JOIN store_sales s ON c.c_id = s.s_customer
		WHERE s.s_id IS NULL
		ORDER BY c.c_name LIMIT 8`, 8)

	// Revenue per tier across both channels (derived union + join + agg).
	show("revenue per tier across channels", `
		SELECT c.c_tier, count(*) AS sales, sum(u.amount) AS revenue
		FROM (
			SELECT s_customer AS cust, s_amount AS amount FROM store_sales
			UNION ALL
			SELECT w_customer, w_amount FROM web_sales
		) u
		JOIN customers c ON u.cust = c.c_id
		GROUP BY c.c_tier
		ORDER BY revenue DESC`, 0)

	// DISTINCT tiers that actually purchased on the web.
	show("tiers active on the web", `
		SELECT DISTINCT c.c_tier
		FROM customers c JOIN web_sales w ON c.c_id = w.w_customer
		ORDER BY c.c_tier`, 0)
}
