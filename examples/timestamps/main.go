// Command timestamps demonstrates the paper's Code 5: querying HBase data
// by cell timestamp and version. Sensor readings are rewritten over three
// rounds; reads then select an exact TIMESTAMP, a MIN/MAX_TIMESTAMP range,
// and multiple versions via MAX_VERSIONS.
package main

import (
	"context"
	"fmt"
	"log"

	"github.com/shc-go/shc"
)

const sensorsCatalog = `{
  "table":{"name":"sensors", "tableCoder":"PrimitiveType"},
  "rowkey":"id",
  "columns":{
    "id":{"cf":"rowkey", "col":"id", "type":"string"},
    "temp":{"cf":"m", "col":"t", "type":"double"},
    "status":{"cf":"m", "col":"s", "type":"string"}
  }
}`

func main() {
	cluster, err := shc.NewCluster(shc.ClusterConfig{
		NumServers: 2,
		// Retain three versions per cell.
		Store: shc.StoreConfig{},
	})
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.NewClient(shc.WithConnPool(shc.NewConnCache(cluster)))
	cat, err := shc.ParseCatalog(sensorsCatalog)
	if err != nil {
		log.Fatal(err)
	}

	// Three write rounds at timestamps 1000, 2000, 3000.
	for round, ts := range []int64{1000, 2000, 3000} {
		rel, err := shc.NewHBaseRelation(client, cat, shc.Options{
			WriteTimestamp:  ts,
			MaxVersions:     3,
			NewTableRegions: 2,
		}, cluster.Meter)
		if err != nil {
			log.Fatal(err)
		}
		var rows []shc.Row
		for i := 0; i < 6; i++ {
			status := "ok"
			if round == 2 && i%3 == 0 {
				status = "alert"
			}
			rows = append(rows, shc.Row{
				fmt.Sprintf("sensor-%d", i),
				"" + status,
				20 + float64(round*5+i),
			})
		}
		if err := rel.Insert(rows); err != nil {
			log.Fatal(err)
		}
	}

	read := func(title string, opts shc.Options) {
		opts.MaxVersions = maxVersions(opts.MaxVersions)
		rel, err := shc.NewHBaseRelation(client, cat, opts, cluster.Meter)
		if err != nil {
			log.Fatal(err)
		}
		sess, err := shc.NewSession(shc.SessionConfig{Hosts: cluster.Hosts(), Meter: cluster.Meter})
	if err != nil {
		log.Fatal(err)
	}
		sess.Register(rel)
		df, err := sess.SQL("SELECT id, temp, status FROM sensors WHERE id <= 'sensor-2' ORDER BY id")
		if err != nil {
			log.Fatal(err)
		}
		rows, err := df.Collect()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n", title)
		for _, r := range rows {
			fmt.Printf("  id=%v temp=%v status=%v\n", r[0], r[1], r[2])
		}
	}

	// Latest versions (default read).
	read("latest", shc.Options{})
	// Exact timestamp — Code 5's df_time with TIMESTAMP = tsSpecified.
	read("TIMESTAMP = 2000", shc.Options{Timestamp: 2000})
	// Time range — Code 5's df_range with MIN_TIMESTAMP/MAX_TIMESTAMP.
	read("MIN_TIMESTAMP=0, MAX_TIMESTAMP=2500 (newest within range)", shc.Options{MinTimestamp: 0, MaxTimestamp: 2500})
	// All retained versions via MAX_VERSIONS: count rows per version depth.
	rel, err := shc.NewHBaseRelation(client, cat, shc.Options{MaxVersions: 3}, cluster.Meter)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := rel.BuildScan([]string{"id", "temp"}, nil)
	if err != nil {
		log.Fatal(err)
	}
	versions := 0
	for _, p := range parts {
		rows, err := p.Compute(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		versions += len(rows)
	}
	fmt.Printf("\nMAX_VERSIONS=3 raw scan surfaces the newest version per row (%d rows); ", versions)
	fmt.Println("older versions remain addressable through TIMESTAMP reads as above.")
}

func maxVersions(v int) int {
	if v <= 0 {
		return 1
	}
	return v
}
