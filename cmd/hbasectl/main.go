// Command hbasectl is the cluster control/inspection tool. With no
// subcommand (or "demo") it tours the administrative side of the simulated
// HBase substrate: boot a cluster, load a skewed table, then walk through
// the HMaster's duties — region listing, region splitting, and load
// balancing — printing the cluster topology after each step (paper
// §III-B's administrative operations).
//
// Against a live process exposing the ops endpoint (harness OpsAddr or
// ops.StartServer), three subcommands scrape and render its state:
//
//	hbasectl status -ops http://127.0.0.1:9890   # /statusz topology snapshot
//	hbasectl events -ops ... -type ServerFenced  # /events journal tail
//	hbasectl top -ops ... -n 10                  # /queries fingerprint table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/shc-go/shc"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/ops"
)

func main() {
	args := os.Args[1:]
	cmd := "demo"
	if len(args) > 0 {
		switch args[0] {
		case "demo", "status", "events", "top":
			cmd, args = args[0], args[1:]
		case "-h", "-help", "--help", "help":
			usage()
			return
		}
	}
	switch cmd {
	case "status":
		cmdStatus(args)
	case "events":
		cmdEvents(args)
	case "top":
		cmdTop(args)
	default:
		cmdDemo(args)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: hbasectl [command] [flags]

commands:
  demo     boot a cluster and tour the master's admin operations (default)
  status   render the /statusz cluster snapshot from a live ops endpoint
  events   render the /events journal tail from a live ops endpoint
  top      render the /queries fingerprint table from a live ops endpoint

run "hbasectl <command> -h" for the command's flags.
`)
}

// opsFlag registers the shared -ops flag on a subcommand's flag set.
func opsFlag(fs *flag.FlagSet) *string {
	return fs.String("ops", "http://127.0.0.1:9890", "base URL of the ops endpoint")
}

// fetchJSON GETs base+path and decodes the JSON response into v.
func fetchJSON(base, path string, v any) error {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s%s: %s", base, path, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// cmdStatus renders /statusz: servers, regions (with replica lag), and the
// journal summary — the at-a-glance answer to "what does the master believe
// the cluster looks like right now".
func cmdStatus(args []string) {
	fs := flag.NewFlagSet("status", flag.ExitOnError)
	opsURL := opsFlag(fs)
	fs.Parse(args)

	var st ops.ClusterStatus
	if err := fetchJSON(*opsURL, "/statusz", &st); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster status at %s\n\n", st.Time.Format(time.RFC3339))
	fmt.Printf("master: %s (epoch %d)", st.Master.Host, st.Master.Epoch)
	if len(st.Master.Standbys) > 0 {
		fmt.Printf(", standbys: %v", st.Master.Standbys)
	}
	fmt.Printf("\n\n")
	fmt.Printf("%-20s %-6s %-8s %8s %10s %s\n", "SERVER", "LIVE", "FENCED", "REGIONS", "MEMSTORE", "WATERMARK")
	for _, s := range st.Servers {
		fmt.Printf("%-20s %-6v %-8v %8d %9dB %s\n", s.Host, s.Live, s.Fenced, s.Regions, s.MemstoreBytes, s.Watermark)
	}
	fmt.Printf("\n%-28s %-14s %-20s %6s %10s %s\n", "REGION", "TABLE", "SERVER", "EPOCH", "SIZE", "REPLICAS")
	for _, r := range st.Regions {
		reps := ""
		for i, rep := range r.Replicas {
			if i > 0 {
				reps += " "
			}
			reps += fmt.Sprintf("%s(lag=%d)", rep.Server, rep.LagSeq)
		}
		fmt.Printf("%-28s %-14s %-20s %6d %9dB %s\n", r.Name, r.Table, r.Server, r.Epoch, r.SizeB, reps)
	}
	if len(st.Draining) > 0 {
		fmt.Printf("\ndraining: %v\n", st.Draining)
	}
	fmt.Printf("\njournal: %d events retained, last seq %d", st.Journal.Len, st.Journal.LastSeq)
	if st.Journal.Dropped > 0 {
		fmt.Printf(" (%d evicted from the ring)", st.Journal.Dropped)
	}
	fmt.Println()
}

// cmdEvents renders the journal tail from /events, oldest first, with the
// causality column that lets an operator walk a failover back to its root.
func cmdEvents(args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	opsURL := opsFlag(fs)
	typ := fs.String("type", "", "comma-separated event types to keep (e.g. ServerFenced,ReplicaPromoted,MasterElected,MasterFailover)")
	region := fs.String("region", "", "keep only events touching this region")
	server := fs.String("server", "", "keep only events touching this server")
	since := fs.Uint64("since", 0, "keep only events with seq greater than this")
	last := fs.Int("last", 0, "keep only the newest N matches (0 = all retained)")
	fs.Parse(args)

	path := fmt.Sprintf("/events?type=%s&region=%s&server=%s&since=%d&last=%d",
		*typ, *region, *server, *since, *last)
	var payload struct {
		LastSeq uint64      `json:"last_seq"`
		Dropped uint64      `json:"dropped"`
		Events  []ops.Event `json:"events"`
	}
	if err := fetchJSON(*opsURL, path, &payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%5s %-12s %-22s %-26s %-20s %6s %6s %s\n", "SEQ", "TIME", "TYPE", "REGION", "SERVER", "EPOCH", "CAUSE", "DETAIL")
	for _, e := range payload.Events {
		cause := ""
		if e.Cause != 0 {
			cause = fmt.Sprintf("<-%d", e.Cause)
		}
		fmt.Printf("%5d %-12s %-22s %-26s %-20s %6d %6s %s\n",
			e.Seq, e.Time.Format("15:04:05.000"), e.Type, e.Region, e.Server, e.Epoch, cause, e.Detail)
	}
	fmt.Printf("\n%d event(s) shown, journal at seq %d", len(payload.Events), payload.LastSeq)
	if payload.Dropped > 0 {
		fmt.Printf(" (%d evicted from the ring)", payload.Dropped)
	}
	fmt.Println()
}

// cmdTop renders /queries: the statement-fingerprint table ordered by total
// wall time, heaviest first.
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	opsURL := opsFlag(fs)
	n := fs.Int("n", 20, "show at most N fingerprints (0 = all)")
	shapes := fs.Bool("shapes", false, "also print each fingerprint's normalized statement shape")
	fs.Parse(args)

	var payload struct {
		Queries []ops.QueryStat `json:"queries"`
	}
	if err := fetchJSON(*opsURL, fmt.Sprintf("/queries?n=%d", *n), &payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %6s %6s %8s %8s %7s %7s %7s %7s %5s %4s\n",
		"FINGERPRINT", "COUNT", "ERRS", "ROWS", "TOTALMS", "P50MS", "P95MS", "P99MS", "MAXMS", "RETRY", "SLOW")
	for _, q := range payload.Queries {
		fmt.Printf("%-16s %6d %6d %8d %8d %7d %7d %7d %7d %5d %4d\n",
			q.Fingerprint, q.Count, q.Errors, q.Rows, q.TotalMs, q.P50Ms, q.P95Ms, q.P99Ms, q.MaxMs, q.Retries, q.SlowCount)
		if *shapes {
			fmt.Printf("  shape: %s\n", q.Shape)
			if q.LastSlow != "" {
				fmt.Printf("  last slow: %s\n", q.LastSlow)
			}
		}
	}
}

// cmdDemo is the original administrative tour.
func cmdDemo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	servers := fs.Int("servers", 3, "region servers")
	rows := fs.Int("rows", 3000, "rows to load")
	fs.Parse(args)

	cluster, err := shc.NewCluster(shc.ClusterConfig{
		NumServers: *servers,
		Store:      shc.StoreConfig{FlushThresholdBytes: 16 << 10, SplitThresholdBytes: 64 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.NewClient()
	defer client.Close()

	desc := shc.TableDescriptor{Name: "events", Families: []string{"e"}}
	if err := client.CreateTable(desc, nil); err != nil {
		log.Fatal(err)
	}
	var cells []hbase.Cell
	for i := 0; i < *rows; i++ {
		cells = append(cells, hbase.Cell{
			Row:    []byte(fmt.Sprintf("evt-%06d", i)),
			Family: "e", Qualifier: "payload",
			Timestamp: 1, Type: hbase.TypePut,
			Value: []byte(fmt.Sprintf("payload-%d-%032d", i, i)),
		})
	}
	if err := client.Put("events", cells); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows into 'events' (single region)\n\n", *rows)
	topology(cluster)

	n, err := cluster.Master.SplitOvergrownRegions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=> master split %d overgrown region(s)\n\n", n)
	for {
		m, err := cluster.Master.SplitOvergrownRegions()
		if err != nil {
			log.Fatal(err)
		}
		if m == 0 {
			break
		}
		n += m
	}
	fmt.Printf("=> %d total splits after settling\n\n", n)
	topology(cluster)

	moved := cluster.Master.Balance()
	fmt.Printf("\n=> balancer moved %d region(s)\n\n", moved)
	topology(cluster)

	// Reads still see every row after splits + moves.
	client.InvalidateRegions("events")
	results, err := client.ScanTable("events", &hbase.Scan{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull scan after split+balance: %d rows (data intact)\n", len(results))

	stats, err := client.TableStats("events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table stats: %d bytes, %d cells, %d regions\n", stats.Bytes, stats.Cells, stats.Regions)
	fmt.Printf("\ncluster counters:\n%s", cluster.Meter)

	// The demo's own journal makes for a nice closing exhibit: everything
	// the master just did, causally linked.
	if j := cluster.Journal; j != nil && j.Len() > 0 {
		fmt.Println("\nevent journal:")
		for _, e := range j.Events(ops.Filter{}) {
			cause := ""
			if e.Cause != 0 {
				cause = fmt.Sprintf(" cause=%d", e.Cause)
			}
			fmt.Printf("  #%d %s region=%s server=%s%s %s\n", e.Seq, e.Type, e.Region, e.Server, cause, e.Detail)
		}
	}
}

func topology(cluster *shc.Cluster) {
	fmt.Println("host                 region                         range                    size     files")
	for _, rs := range cluster.Servers {
		for _, info := range rs.RegionInfos() {
			region := rs.Region(info.ID)
			fmt.Printf("%-20s %-30s [%-8s,%8s) %9dB %5d\n",
				rs.Host(), info.ID, trunc(info.StartKey), trunc(info.EndKey),
				region.Size(), region.StoreFileCount())
		}
	}
}

func trunc(k []byte) string {
	if len(k) == 0 {
		return ""
	}
	s := string(k)
	if len(s) > 8 {
		s = s[:8]
	}
	return s
}
