// Command hbasectl tours the administrative side of the simulated HBase
// substrate: it boots a cluster, loads a skewed table, then walks through
// the HMaster's duties — region listing, forced flush/compaction, region
// splitting, and load balancing — printing the cluster topology after each
// step (paper §III-B's administrative operations).
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/shc-go/shc"
	"github.com/shc-go/shc/internal/hbase"
)

func main() {
	servers := flag.Int("servers", 3, "region servers")
	rows := flag.Int("rows", 3000, "rows to load")
	flag.Parse()

	cluster, err := shc.NewCluster(shc.ClusterConfig{
		NumServers: *servers,
		Store:      shc.StoreConfig{FlushThresholdBytes: 16 << 10, SplitThresholdBytes: 64 << 10},
	})
	if err != nil {
		log.Fatal(err)
	}
	client := cluster.NewClient()
	defer client.Close()

	desc := shc.TableDescriptor{Name: "events", Families: []string{"e"}}
	if err := client.CreateTable(desc, nil); err != nil {
		log.Fatal(err)
	}
	var cells []hbase.Cell
	for i := 0; i < *rows; i++ {
		cells = append(cells, hbase.Cell{
			Row:    []byte(fmt.Sprintf("evt-%06d", i)),
			Family: "e", Qualifier: "payload",
			Timestamp: 1, Type: hbase.TypePut,
			Value: []byte(fmt.Sprintf("payload-%d-%032d", i, i)),
		})
	}
	if err := client.Put("events", cells); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d rows into 'events' (single region)\n\n", *rows)
	topology(cluster)

	n, err := cluster.Master.SplitOvergrownRegions()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n=> master split %d overgrown region(s)\n\n", n)
	for {
		m, err := cluster.Master.SplitOvergrownRegions()
		if err != nil {
			log.Fatal(err)
		}
		if m == 0 {
			break
		}
		n += m
	}
	fmt.Printf("=> %d total splits after settling\n\n", n)
	topology(cluster)

	moved := cluster.Master.Balance()
	fmt.Printf("\n=> balancer moved %d region(s)\n\n", moved)
	topology(cluster)

	// Reads still see every row after splits + moves.
	client.InvalidateRegions("events")
	results, err := client.ScanTable("events", &hbase.Scan{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfull scan after split+balance: %d rows (data intact)\n", len(results))

	stats, err := client.TableStats("events")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table stats: %d bytes, %d cells, %d regions\n", stats.Bytes, stats.Cells, stats.Regions)
	fmt.Printf("\ncluster counters:\n%s", cluster.Meter)
}

func topology(cluster *shc.Cluster) {
	fmt.Println("host                 region                         range                    size     files")
	for _, rs := range cluster.Servers {
		for _, info := range rs.RegionInfos() {
			region := rs.Region(info.ID)
			fmt.Printf("%-20s %-30s [%-8s,%8s) %9dB %5d\n",
				rs.Host(), info.ID, trunc(info.StartKey), trunc(info.EndKey),
				region.Size(), region.StoreFileCount())
		}
	}
}

func trunc(k []byte) string {
	if len(k) == 0 {
		return ""
	}
	s := string(k)
	if len(s) > 8 {
		s = s[:8]
	}
	return s
}
