// Command shcbench regenerates every table and figure of the paper's
// evaluation (§VII) on the simulated stack:
//
//	shcbench -exp all                # everything
//	shcbench -exp fig4 -scales 1,2,3 # query latency at selected scales
//	shcbench -exp table2             # encoding comparison
//	shcbench -exp ablation           # per-optimization breakdown
//
// Scale stands in for the paper's 5–30 GB axis: scale s generates s× the
// base TPC-DS row counts. Absolute numbers depend on the machine; the
// shapes (who wins, by what factor, where curves flatten) are the
// reproduction target, recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"github.com/shc-go/shc/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|fig4|fig5|fig6|fig7|table2|ablation|streaming|chaos|partition|overload|trace-overhead")
	scales := flag.String("scales", "1,2,3,4,5,6", "comma-separated scale factors (the 5..30 GB axis)")
	servers := flag.Int("servers", 5, "region servers / executor hosts")
	runs := flag.Int("runs", 1, "average each measurement over N runs")
	executors := flag.String("executors", "5,10,15,20,25", "total executor counts for fig6")
	seed := flag.Int64("seed", 1, "fault-injection seed for the chaos and partition experiments")
	metricsDump := flag.Bool("metrics", false, "dump a Prometheus-style metrics exposition after supporting experiments")
	flag.Parse()

	p := bench.Params{
		Scales:    parseInts(*scales),
		Servers:   *servers,
		Runs:      *runs,
		Executors: parseInts(*executors),
		Seed:      *seed,
		Out:       os.Stdout,
	}
	if *metricsDump {
		p.MetricsOut = os.Stdout
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("table1", func() error { bench.Table1(os.Stdout); return nil })
	run("fig4", func() error { _, err := bench.Fig4(p); return err })
	run("fig5", func() error { _, err := bench.Fig5(p); return err })
	run("fig6", func() error { _, err := bench.Fig6(p); return err })
	run("fig7", func() error { _, err := bench.Fig7(p); return err })
	run("table2", func() error { _, err := bench.Table2(p); return err })
	run("ablation", func() error { _, err := bench.Ablation(p); return err })
	run("streaming", func() error { _, err := bench.StreamingComparison(p); return err })
	run("chaos", func() error { _, err := bench.Chaos(p); return err })
	run("partition", func() error { _, err := bench.Partition(p); return err })
	run("overload", func() error { _, err := bench.Overload(p); return err })
	run("trace-overhead", func() error { _, err := bench.TraceOverhead(p); return err })

	switch *exp {
	case "all", "table1", "fig4", "fig5", "fig6", "fig7", "table2", "ablation", "streaming", "chaos", "partition", "overload", "trace-overhead":
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			log.Fatalf("bad integer list entry %q", part)
		}
		out = append(out, n)
	}
	return out
}
