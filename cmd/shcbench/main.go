// Command shcbench regenerates every table and figure of the paper's
// evaluation (§VII) on the simulated stack:
//
//	shcbench -exp all                # everything
//	shcbench -exp fig4 -scales 1,2,3 # query latency at selected scales
//	shcbench -exp table2             # encoding comparison
//	shcbench -exp ablation           # per-optimization breakdown
//	shcbench -exp vector             # vectorized vs row-at-a-time execution
//
// Scale stands in for the paper's 5–30 GB axis: scale s generates s× the
// base TPC-DS row counts. Absolute numbers depend on the machine; the
// shapes (who wins, by what factor, where curves flatten) are the
// reproduction target, recorded in EXPERIMENTS.md.
//
// Each experiment also writes its structured results — series points,
// rows/sec, p50/p99 latencies — to BENCH_<exp>.json in the -json directory,
// so CI gates and plots consume numbers instead of scraping stdout.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/shc-go/shc/internal/bench"
)

// runMeta stamps each BENCH_<exp>.json with what produced it, so a stored
// result is reproducible (seed, topology, run count, toolchain) without the
// shell history that generated it. The wall-clock timestamp is opt-in
// (-stamp): without it the files are byte-stable across reruns, which keeps
// them diffable in CI artifacts.
type runMeta struct {
	Experiment string `json:"experiment"`
	Seed       int64  `json:"seed"`
	Servers    int    `json:"servers"`
	Runs       int    `json:"runs"`
	Scales     []int  `json:"scales,omitempty"`
	Executors  []int  `json:"executors,omitempty"`
	GoVersion  string `json:"go_version"`
	Timestamp  string `json:"timestamp,omitempty"`
}

// benchFile is the JSON envelope: run metadata plus the experiment's
// structured results.
type benchFile struct {
	Meta    runMeta `json:"meta"`
	Results any     `json:"results"`
}

func main() {
	exp := flag.String("exp", "all", "experiment: all|table1|fig4|fig5|fig6|fig7|table2|ablation|streaming|vector|chaos|partition|replica|overload|trace-overhead|ingest|masterha")
	scales := flag.String("scales", "1,2,3,4,5,6", "comma-separated scale factors (the 5..30 GB axis)")
	servers := flag.Int("servers", 5, "region servers / executor hosts")
	runs := flag.Int("runs", 1, "average each measurement over N runs")
	executors := flag.String("executors", "5,10,15,20,25", "total executor counts for fig6")
	seed := flag.Int64("seed", 1, "fault-injection seed for the chaos and partition experiments")
	metricsDump := flag.Bool("metrics", false, "dump a Prometheus-style metrics exposition after supporting experiments")
	jsonDir := flag.String("json", ".", "directory for BENCH_<exp>.json result files (empty = no files)")
	stamp := flag.Bool("stamp", false, "include a wall-clock timestamp in BENCH_<exp>.json metadata (off keeps files byte-stable)")
	flag.Parse()

	p := bench.Params{
		Scales:    parseInts(*scales),
		Servers:   *servers,
		Runs:      *runs,
		Executors: parseInts(*executors),
		Seed:      *seed,
		Out:       os.Stdout,
	}
	if *metricsDump {
		p.MetricsOut = os.Stdout
	}

	run := func(name string, fn func() (any, error)) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n===== %s =====\n", name)
		result, err := fn()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if result == nil || *jsonDir == "" {
			return
		}
		meta := runMeta{
			Experiment: name,
			Seed:       p.Seed,
			Servers:    p.Servers,
			Runs:       p.Runs,
			Scales:     p.Scales,
			Executors:  p.Executors,
			GoVersion:  runtime.Version(),
		}
		if *stamp {
			meta.Timestamp = time.Now().UTC().Format(time.RFC3339)
		}
		path := filepath.Join(*jsonDir, "BENCH_"+name+".json")
		data, err := json.MarshalIndent(benchFile{Meta: meta, Results: result}, "", "  ")
		if err != nil {
			log.Fatalf("%s: marshal results: %v", name, err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("%s: write %s: %v", name, path, err)
		}
		fmt.Printf("wrote %s\n", path)
	}

	run("table1", func() (any, error) { bench.Table1(os.Stdout); return nil, nil })
	run("fig4", func() (any, error) { return bench.Fig4(p) })
	run("fig5", func() (any, error) { return bench.Fig5(p) })
	run("fig6", func() (any, error) { return bench.Fig6(p) })
	run("fig7", func() (any, error) { return bench.Fig7(p) })
	run("table2", func() (any, error) { return bench.Table2(p) })
	run("ablation", func() (any, error) { return bench.Ablation(p) })
	run("streaming", func() (any, error) { return bench.StreamingComparison(p) })
	run("vector", func() (any, error) { return bench.Vector(p) })
	run("chaos", func() (any, error) { return bench.Chaos(p) })
	run("partition", func() (any, error) { return bench.Partition(p) })
	run("replica", func() (any, error) { return bench.Replica(p) })
	run("overload", func() (any, error) { return bench.Overload(p) })
	run("trace-overhead", func() (any, error) { return bench.TraceOverhead(p) })
	run("ingest", func() (any, error) { return bench.Ingest(p) })
	run("masterha", func() (any, error) { return bench.MasterHA(p) })

	switch *exp {
	case "all", "table1", "fig4", "fig5", "fig6", "fig7", "table2", "ablation", "streaming", "vector", "chaos", "partition", "replica", "overload", "trace-overhead", "ingest", "masterha":
	default:
		log.Fatalf("unknown experiment %q", *exp)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			log.Fatalf("bad integer list entry %q", part)
		}
		out = append(out, n)
	}
	return out
}
