// Command shcsql is an interactive SQL shell over the simulated stack: it
// boots an HBase cluster, loads the TPC-DS tables through the chosen
// connector, and evaluates queries — one-shot from -q, or as a REPL on
// stdin.
//
//	shcsql -q "SELECT count(1) FROM inventory"
//	shcsql -system sparksql -scale 2
//	echo "EXPLAIN SELECT i_item_id FROM item WHERE i_item_sk = 7" | shcsql
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/metrics"
)

func main() {
	system := flag.String("system", "shc", "connector: shc or sparksql")
	scale := flag.Int("scale", 1, "TPC-DS scale factor")
	servers := flag.Int("servers", 3, "region servers")
	query := flag.String("q", "", "one-shot query (REPL on stdin when empty)")
	flag.Parse()

	sys := harness.SHC
	switch strings.ToLower(*system) {
	case "shc":
	case "sparksql", "baseline":
		sys = harness.SparkSQL
	default:
		log.Fatalf("unknown system %q", *system)
	}

	fmt.Fprintf(os.Stderr, "booting %s over %d region servers, scale %d...\n", sys, *servers, *scale)
	rig, err := harness.NewRig(harness.Config{System: sys, Servers: *servers, Scale: *scale})
	if err != nil {
		log.Fatal(err)
	}
	defer rig.Close()
	fmt.Fprintf(os.Stderr, "tables: warehouse, item, date_dim, inventory, store_sales\n")

	if *query != "" {
		if err := runOne(rig, *query); err != nil {
			log.Fatal(err)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Fprint(os.Stderr, "shc> ")
	for sc.Scan() {
		line := strings.TrimSpace(strings.TrimSuffix(sc.Text(), ";"))
		if line == "" {
			fmt.Fprint(os.Stderr, "shc> ")
			continue
		}
		if line == "quit" || line == "exit" {
			return
		}
		if err := runOne(rig, line); err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
		}
		fmt.Fprint(os.Stderr, "shc> ")
	}
}

func runOne(rig *harness.Rig, query string) error {
	if rest, ok := strings.CutPrefix(strings.ToUpper(query), "EXPLAIN "); ok {
		_ = rest
		df, err := rig.Session.SQL(query[len("EXPLAIN "):])
		if err != nil {
			return err
		}
		out, err := df.Explain()
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	start := time.Now()
	res, err := rig.Run(query)
	if err != nil {
		return err
	}
	df, err := rig.Session.SQL(query)
	if err != nil {
		return err
	}
	schema := df.Schema()
	cols := make([]string, len(schema))
	for i, f := range schema {
		cols[i] = f.Name
	}
	fmt.Println(strings.Join(cols, " | "))
	for _, r := range res.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = fmt.Sprint(v)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	fmt.Printf("-- %d rows in %v (rows fetched: %d, regions pruned: %d, shuffle: %d B)\n",
		len(res.Rows), time.Since(start).Round(time.Millisecond),
		res.Delta[metrics.RowsReturned], res.Delta[metrics.RegionsPruned], res.Delta[metrics.ShuffleBytes])
	return nil
}
