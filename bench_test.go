// Benchmarks regenerating every table and figure of the paper's §VII.
// Each benchmark reports the headline comparison as custom metrics
// (shc_seconds / sparksql_seconds, or the figure's own unit) at the largest
// configured point, so `go test -bench=.` doubles as the experiment
// harness. cmd/shcbench prints the full series.
package shc_test

import (
	"fmt"
	"io"
	"testing"

	"github.com/shc-go/shc/internal/bench"
	"github.com/shc-go/shc/internal/harness"
	"github.com/shc-go/shc/internal/tpcds"
)

// benchParams keeps benchmark iterations affordable while preserving the
// experiment's shape; cmd/shcbench runs the full sweeps.
func benchParams() bench.Params {
	return bench.Params{
		Scales:  []int{1, 2, 3},
		Servers: 5,
		Out:     io.Discard,
	}
}

// BenchmarkTable1FeatureMatrix renders the paper's Table I (static).
func BenchmarkTable1FeatureMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bench.Table1(io.Discard)
	}
}

// BenchmarkFig4QueryLatency reproduces Fig. 4: q39a/q39b latency vs data
// size on SHC and the Spark SQL baseline.
func BenchmarkFig4QueryLatency(b *testing.B) {
	p := benchParams()
	var series []bench.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = bench.Fig4(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, series, "sec")
}

// BenchmarkFig5ShuffleCost reproduces Fig. 5: data movement vs data size.
func BenchmarkFig5ShuffleCost(b *testing.B) {
	p := benchParams()
	var series []bench.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = bench.Fig5(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, series, "KB")
}

// BenchmarkFig6Executors reproduces Fig. 6: latency vs executor count.
func BenchmarkFig6Executors(b *testing.B) {
	p := benchParams()
	p.Executors = []int{5, 10, 20}
	var series []bench.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = bench.Fig6(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, series, "sec")
}

// BenchmarkFig7WriteThroughput reproduces Fig. 7: bulk-write time vs data
// size through each system's write path.
func BenchmarkFig7WriteThroughput(b *testing.B) {
	p := benchParams()
	var series []bench.Series
	var err error
	for i := 0; i < b.N; i++ {
		series, err = bench.Fig7(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportLast(b, series, "sec")
}

// BenchmarkTable2Encodings reproduces Table II: query/write/memory across
// the PrimitiveType, Phoenix, and Avro coders.
func BenchmarkTable2Encodings(b *testing.B) {
	p := benchParams()
	var rows []bench.Table2Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Table2(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if !r.Supported {
			continue
		}
		tag := r.System + "_" + r.Coder
		b.ReportMetric(r.QuerySec, tag+"_query_sec")
	}
}

// BenchmarkAblation quantifies each SHC optimization in isolation.
func BenchmarkAblation(b *testing.B) {
	p := benchParams()
	var rows []bench.AblationRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.Ablation(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.QuerySec, sanitize(r.Config)+"_sec")
	}
}

// BenchmarkStreamingVsMaterialized compares the fused batch pipeline with
// the materialize-everything path on the same SHC rig shape, reporting
// rows/sec and the peak decoded-row memory each mode holds.
func BenchmarkStreamingVsMaterialized(b *testing.B) {
	p := benchParams()
	var rows []bench.StreamingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = bench.StreamingComparison(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		tag := sanitize(r.Query + "_" + r.Mode)
		b.ReportMetric(r.RowsPerSec, tag+"_rows_per_sec")
		b.ReportMetric(r.PeakMemMB*1024, tag+"_peak_kb")
	}
}

// BenchmarkQ39aSHC and BenchmarkQ39aSparkSQL time just the query on a
// pre-loaded rig, for profiling individual systems.
func BenchmarkQ39aSHC(b *testing.B)      { benchQuery(b, harness.SHC, tpcds.Q39a()) }
func BenchmarkQ39aSparkSQL(b *testing.B) { benchQuery(b, harness.SparkSQL, tpcds.Q39a()) }
func BenchmarkQ38SHC(b *testing.B)       { benchQuery(b, harness.SHC, tpcds.Q38()) }
func BenchmarkQ38SparkSQL(b *testing.B)  { benchQuery(b, harness.SparkSQL, tpcds.Q38()) }

func benchQuery(b *testing.B, sys harness.System, query string) {
	rig, err := harness.NewRig(harness.Config{System: sys, Servers: 5, Scale: 2, RPC: bench.DefaultRPC()})
	if err != nil {
		b.Fatal(err)
	}
	defer rig.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rig.Run(query); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteSHC / BenchmarkWriteSparkSQL time the bulk write path alone.
func BenchmarkWriteSHC(b *testing.B)      { benchWrite(b, harness.SHC) }
func BenchmarkWriteSparkSQL(b *testing.B) { benchWrite(b, harness.SparkSQL) }

func benchWrite(b *testing.B, sys harness.System) {
	data := tpcds.Generate(tpcds.Config{Scale: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		rig, err := harness.NewRig(harness.Config{System: sys, Servers: 5, Scale: 2, SkipLoad: true, RPC: bench.DefaultRPC()})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := rig.LoadTable("inventory", data.Inventory); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		rig.Close()
		b.StartTimer()
	}
}

func reportLast(b *testing.B, series []bench.Series, unit string) {
	for _, s := range series {
		if len(s.Points) == 0 {
			continue
		}
		pt := s.Points[len(s.Points)-1]
		name := sanitize(s.Name)
		b.ReportMetric(pt.SHC, name+"_shc_"+unit)
		b.ReportMetric(pt.SparkSQL, name+"_sparksql_"+unit)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == ':' || r == ',':
			if len(out) > 0 && out[len(out)-1] != '_' {
				out = append(out, '_')
			}
		}
	}
	return string(out)
}

// Example of the quickest possible end-to-end check for godoc.
func Example() {
	fmt.Println("see examples/quickstart for the full walkthrough")
	// Output: see examples/quickstart for the full walkthrough
}
