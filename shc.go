// Package shc is the public API of the SHC reproduction: a Spark-SQL-style
// query engine with an HBase connector, all simulated in-process.
//
// The shape follows the paper: define a JSON catalog mapping an HBase table
// to a relational schema (Code 1), open a relation over a cluster, write
// DataFrames into it (Code 2), and query it through the DataFrame API or
// SQL (Codes 3–4) — with SHC's partition pruning, column pruning, predicate
// pushdown, operator fusion, data locality, connection caching, and
// multi-cluster credential management all active underneath.
//
// Quick start:
//
//	cluster, _ := shc.NewCluster(shc.ClusterConfig{NumServers: 3})
//	client := cluster.NewClient()
//	cat, _ := shc.ParseCatalog(catalogJSON)
//	rel, _ := shc.NewHBaseRelation(client, cat, shc.Options{}, cluster.Meter)
//	sess, _ := shc.NewSession(shc.SessionConfig{Hosts: cluster.Hosts()})
//	sess.Register(rel)
//	df, _ := sess.SQL("SELECT col0 FROM actives WHERE col0 <= 'row120'")
//	rows, _ := df.Collect()
package shc

import (
	"context"
	"time"

	"github.com/shc-go/shc/internal/conncache"
	"github.com/shc-go/shc/internal/core"
	"github.com/shc-go/shc/internal/engine"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/security"
	"github.com/shc-go/shc/internal/trace"
)

// Cluster-side types.
type (
	// Cluster is a simulated HBase deployment (region servers + master +
	// coordination service).
	Cluster = hbase.Cluster
	// ClusterConfig sizes a cluster.
	ClusterConfig = hbase.ClusterConfig
	// Client is the HBase client.
	Client = hbase.Client
	// TableDescriptor declares an HBase table.
	TableDescriptor = hbase.TableDescriptor
	// StoreConfig tunes region storage (flush/compact/split thresholds).
	StoreConfig = hbase.StoreConfig
	// Cell is one HBase cell (row, family, qualifier, timestamp, value).
	Cell = hbase.Cell
	// BufferedMutator batches writes into per-server MultiPut RPCs whose
	// retries are exactly-once; create one with Client.NewMutator.
	BufferedMutator = hbase.BufferedMutator
	// MutatorConfig tunes a BufferedMutator (flush size/interval, buffer
	// bound, retry budget).
	MutatorConfig = hbase.MutatorConfig
	// ServerLimits installs admission control and memstore watermarks on a
	// region server (RegionServer.SetLimits).
	ServerLimits = hbase.ServerLimits
)

// Connector-side types.
type (
	// Catalog maps an HBase table to a relational schema (paper Code 1).
	Catalog = core.Catalog
	// Options carries timestamp/version settings and ablation switches.
	Options = core.Options
	// HBaseRelation is SHC's relation: pruned, filtered, locality-aware.
	HBaseRelation = core.HBaseRelation
	// BaselineRelation models stock Spark SQL reading HBase generically.
	BaselineRelation = core.BaselineRelation
	// FieldCoder serializes typed values to HBase byte arrays.
	FieldCoder = core.FieldCoder
)

// Engine-side types.
type (
	// Session is the query-engine entry point.
	Session = engine.Session
	// SessionConfig sizes a session's executors.
	SessionConfig = engine.Config
	// DataFrame is a lazy relational computation.
	DataFrame = engine.DataFrame
	// Schema describes relational output.
	Schema = plan.Schema
	// Row is one positional record.
	Row = plan.Row
	// Expr is a typed expression (for the DataFrame API).
	Expr = plan.Expr
	// Metrics is the counter registry every layer reports into.
	Metrics = metrics.Registry
)

// Observability types.
type (
	// QueryTrace is a per-query tree of timed spans; install one with
	// StartTrace and render it with its Render method, or let
	// DataFrame.ExplainAnalyze manage one for you.
	QueryTrace = trace.Trace
	// Span is one timed operation in a QueryTrace.
	Span = trace.Span
)

// StartTrace returns ctx carrying a fresh query trace named name. Pass the
// context to CollectContext/CountContext and every tier — parse, optimize,
// compile, scheduler tasks, client RPCs, server-side region scans — records
// spans into it; when tracing is absent the same code paths cost nothing.
func StartTrace(ctx context.Context, name string) (context.Context, *QueryTrace) {
	tr := trace.New(name)
	return trace.NewContext(ctx, tr), tr
}

// Security types.
type (
	// KDC simulates the Kerberos key-distribution center.
	KDC = security.KDC
	// TokenService issues delegation tokens for one secure cluster.
	TokenService = security.TokenService
	// CredentialsManager is SHCCredentialsManager: per-cluster token
	// fetch, cache, and renewal.
	CredentialsManager = security.CredentialsManager
	// CredentialsConfig configures the manager (paper Code 6).
	CredentialsConfig = security.CredentialsConfig
)

// NewCluster boots a simulated HBase cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return hbase.NewCluster(cfg) }

// NewSession builds a query-engine session, rejecting out-of-range
// configuration (negative executor counts, partitions, thresholds, or
// timeouts).
func NewSession(cfg SessionConfig) (*Session, error) { return engine.NewSession(cfg) }

// ParseCatalog parses the JSON table catalog of the paper's Code 1.
func ParseCatalog(doc string) (*Catalog, error) { return core.ParseCatalog(doc) }

// NewHBaseRelation opens SHC over a client and catalog.
func NewHBaseRelation(client *Client, cat *Catalog, opts Options, meter *Metrics) (*HBaseRelation, error) {
	return core.NewHBaseRelation(client, cat, opts, meter)
}

// NewBaselineRelation opens the generic Spark-SQL-style relation used as
// the experimental baseline.
func NewBaselineRelation(client *Client, cat *Catalog, opts Options, meter *Metrics) *BaselineRelation {
	return core.NewBaselineRelation(client, cat, opts, meter)
}

// NewConnCache builds SHC's reference-counted connection cache for a
// cluster; pass it to the client with WithConnPool.
func NewConnCache(cluster *Cluster) *conncache.Cache {
	return conncache.New(cluster.Net, conncache.Config{}, cluster.Meter)
}

// WithConnPool makes a client acquire connections through a pool.
func WithConnPool(p hbase.ConnPool) hbase.ClientOption { return hbase.WithConnPool(p) }

// WithTokenProvider makes a client authenticate through a credential
// source (e.g. a CredentialsManager).
func WithTokenProvider(tp hbase.TokenProvider) hbase.ClientOption {
	return hbase.WithTokenProvider(tp)
}

// WithHedgedReads makes a client's read-only region RPCs fire a speculative
// duplicate after delay; the first response wins and the loser is
// cancelled. Use it to keep tail latency bounded when one server straggles.
func WithHedgedReads(delay time.Duration) hbase.ClientOption {
	return hbase.WithHedgedReads(delay)
}

// WithBreaker installs a per-host circuit breaker (NewBreaker) in front of
// a client's calls: hosts that fail repeatedly are failed fast until a
// cooldown probe succeeds.
func WithBreaker(b hbase.HostBreaker) hbase.ClientOption { return hbase.WithBreaker(b) }

// NewBreaker builds the per-host circuit breaker with default thresholds,
// reporting breaker.circuit_opens into meter.
func NewBreaker(meter *Metrics) *conncache.Breaker {
	return conncache.NewBreaker(conncache.BreakerConfig{}, meter)
}

// NewCredentialsManager builds the SHCCredentialsManager.
func NewCredentialsManager(cfg CredentialsConfig, meter *Metrics) *CredentialsManager {
	return security.NewCredentialsManager(cfg, meter)
}

// NewMetrics returns a fresh counter registry.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// Expression helpers for the DataFrame API (Code 3's $"col0" <= "row120").

// Col references a column.
func Col(name string) Expr { return plan.Col(name) }

// Lit wraps a constant.
func Lit(v any) Expr { return plan.Lit(v) }

// Eq builds l = r.
func Eq(l, r Expr) Expr { return &plan.Comparison{Op: plan.OpEq, L: l, R: r} }

// Ne builds l != r.
func Ne(l, r Expr) Expr { return &plan.Comparison{Op: plan.OpNe, L: l, R: r} }

// Lt builds l < r.
func Lt(l, r Expr) Expr { return &plan.Comparison{Op: plan.OpLt, L: l, R: r} }

// Le builds l <= r.
func Le(l, r Expr) Expr { return &plan.Comparison{Op: plan.OpLe, L: l, R: r} }

// Gt builds l > r.
func Gt(l, r Expr) Expr { return &plan.Comparison{Op: plan.OpGt, L: l, R: r} }

// Ge builds l >= r.
func Ge(l, r Expr) Expr { return &plan.Comparison{Op: plan.OpGe, L: l, R: r} }

// And builds l AND r.
func And(l, r Expr) Expr { return &plan.And{L: l, R: r} }

// Or builds l OR r.
func Or(l, r Expr) Expr { return &plan.Or{L: l, R: r} }
