package shc_test

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"github.com/shc-go/shc"
	"github.com/shc-go/shc/internal/security"
)

const testCatalog = `{
  "table":{"name":"people", "tableCoder":"PrimitiveType"},
  "rowkey":"id",
  "columns":{
    "id":{"cf":"rowkey", "col":"id", "type":"string"},
    "age":{"cf":"p", "col":"a", "type":"int"},
    "city":{"cf":"p", "col":"c", "type":"string"}
  }
}`

func bootFacade(t *testing.T) (*shc.Cluster, *shc.Session, *shc.HBaseRelation) {
	t.Helper()
	cluster, err := shc.NewCluster(shc.ClusterConfig{NumServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	client := cluster.NewClient(shc.WithConnPool(shc.NewConnCache(cluster)))
	cat, err := shc.ParseCatalog(testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := shc.NewHBaseRelation(client, cat, shc.Options{NewTableRegions: 3}, cluster.Meter)
	if err != nil {
		t.Fatal(err)
	}
	var rows []shc.Row
	for i := 0; i < 30; i++ {
		rows = append(rows, shc.Row{fmt.Sprintf("p%02d", i), int32(20 + i), []string{"sf", "nyc"}[i%2]})
	}
	if err := rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	sess, _ := shc.NewSession(shc.SessionConfig{Hosts: cluster.Hosts(), Meter: cluster.Meter})
	sess.Register(rel)
	return cluster, sess, rel
}

func TestFacadeEndToEnd(t *testing.T) {
	_, sess, _ := bootFacade(t)
	df, err := sess.SQL("SELECT id, age FROM people WHERE city = 'sf' AND age < 30 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 { // ages 20,22,24,26,28 in sf
		t.Errorf("rows = %v", rows)
	}
}

func TestFacadeExpressionHelpers(t *testing.T) {
	_, sess, _ := bootFacade(t)
	df, err := sess.Table("people")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		expr shc.Expr
		want int
	}{
		{shc.Eq(shc.Col("city"), shc.Lit("sf")), 15},
		{shc.Ne(shc.Col("city"), shc.Lit("sf")), 15},
		{shc.Lt(shc.Col("age"), shc.Lit(25)), 5},
		{shc.Le(shc.Col("age"), shc.Lit(25)), 6},
		{shc.Gt(shc.Col("age"), shc.Lit(47)), 2},
		{shc.Ge(shc.Col("age"), shc.Lit(47)), 3},
		{shc.And(shc.Eq(shc.Col("city"), shc.Lit("sf")), shc.Lt(shc.Col("age"), shc.Lit(25))), 3},
		{shc.Or(shc.Lt(shc.Col("age"), shc.Lit(21)), shc.Gt(shc.Col("age"), shc.Lit(48))), 2},
	}
	for i, c := range cases {
		got, err := df.Filter(c.expr).Count()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got != int64(c.want) {
			t.Errorf("case %d: count = %d, want %d", i, got, c.want)
		}
	}
}

func TestFacadeBaselineRelation(t *testing.T) {
	cluster, err := shc.NewCluster(shc.ClusterConfig{NumServers: 2})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := shc.ParseCatalog(testCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rel := shc.NewBaselineRelation(cluster.NewClient(), cat, shc.Options{}, cluster.Meter)
	if err := rel.Insert([]shc.Row{{"a", int32(1), "sf"}}); err != nil {
		t.Fatal(err)
	}
	sess, _ := shc.NewSession(shc.SessionConfig{Hosts: cluster.Hosts()})
	sess.Register(rel)
	df, err := sess.SQL("SELECT count(1) FROM people")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].(int64) != 1 {
		t.Errorf("count = %v", rows[0][0])
	}
}

func TestFacadeSecureCluster(t *testing.T) {
	meter := shc.NewMetrics()
	kdc := security.NewKDC()
	kdc.AddPrincipal("user", "keytab")
	svc := security.NewTokenService("secure", kdc, time.Hour, nil, meter)
	cluster, err := shc.NewCluster(shc.ClusterConfig{
		Name: "secure", NumServers: 1, Meter: meter, Validate: svc.Validator(),
	})
	if err != nil {
		t.Fatal(err)
	}
	creds := shc.NewCredentialsManager(shc.CredentialsConfig{
		Enabled: true, Principal: "user", Keytab: "keytab",
	}, meter)
	creds.RegisterCluster(svc)
	client := cluster.NewClient(shc.WithTokenProvider(creds))
	if err := client.CreateTable(shc.TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatalf("authenticated create failed: %v", err)
	}
	anon := cluster.NewClient()
	if _, err := anon.ListTables(); err == nil {
		t.Error("anonymous access must be rejected")
	}
}

func TestFacadeTracingAndExplainAnalyze(t *testing.T) {
	_, sess, _ := bootFacade(t)
	df, err := sess.SQL("SELECT id, age FROM people WHERE age < 30")
	if err != nil {
		t.Fatal(err)
	}

	// A caller-installed trace records spans from the facade down to the
	// server-side region scans.
	ctx, tr := shc.StartTrace(context.Background(), "facade-query")
	if _, err := df.CollectContext(ctx); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	if len(tr.Find("region.scan"))+len(tr.Find("region.get")) == 0 {
		t.Fatalf("no server-side spans recorded:\n%s", tr.Render())
	}

	rep, err := df.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"== Physical Plan (actual) ==", "(actual rows=", "== Query Trace =="} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
