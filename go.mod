module github.com/shc-go/shc

go 1.22
