package hbase

import (
	"context"
	"fmt"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

func bootReplicated(t *testing.T, servers, replication int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Name: "test", NumServers: servers,
		Store: StoreConfig{RegionReplication: replication},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// findCopy locates copy #replica of a region on whichever server hosts it.
func findCopy(c *Cluster, id string, replica int) *Region {
	for _, rs := range c.Servers {
		if r := rs.Region(regionKey(id, replica)); r != nil {
			return r
		}
	}
	return nil
}

func TestReplicaPlacementDistinctHosts(t *testing.T) {
	c := bootReplicated(t, 3, 2)
	client := c.NewClient()
	defer client.Close()
	desc := TableDescriptor{Name: "t", Families: []string{"cf"}}
	if err := client.CreateTable(desc, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %d, want 2", len(regions))
	}
	for _, ri := range regions {
		if len(ri.ReplicaHosts) != 1 || ri.ReplicaHosts[0] == "" {
			t.Fatalf("region %s: ReplicaHosts = %v, want one placed replica", ri.ID, ri.ReplicaHosts)
		}
		if ri.ReplicaHosts[0] == ri.Host {
			t.Errorf("region %s: replica on primary host %s", ri.ID, ri.Host)
		}
		rep := findCopy(c, ri.ID, 1)
		if rep == nil {
			t.Fatalf("region %s: replica copy not hosted anywhere", ri.ID)
		}
		if !rep.IsReplica() {
			t.Errorf("region %s: copy #1 does not report as replica", ri.ID)
		}
	}
}

func TestReplicaReadOnlyAndNoFlush(t *testing.T) {
	c := bootReplicated(t, 2, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	ri, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	rep := findCopy(c, ri[0].ID, 1)
	if rep == nil {
		t.Fatal("no replica")
	}
	if err := rep.Put(cell("a", "cf", "q", 1, "v")); err == nil {
		t.Error("write to a secondary copy must fail")
	}
}

// TestTimelineReplicaPrefixOfPrimaryHistory is the timeline-consistency
// property: at every point of a lagging replica's catch-up, what it serves
// is exactly a prefix of the primary's acknowledged write history — never a
// reordering, never a value the primary did not ack.
func TestTimelineReplicaPrefixOfPrimaryHistory(t *testing.T) {
	c := bootReplicated(t, 2, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	ri, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	primary := findCopy(c, ri[0].ID, 0)
	rep := findCopy(c, ri[0].ID, 1)
	if primary == nil || rep == nil {
		t.Fatal("missing copies")
	}
	rep.HoldApply(true)
	const n = 10
	var rows []string
	for i := 0; i < n; i++ {
		row := fmt.Sprintf("row%02d", i)
		rows = append(rows, row)
		if err := client.Put("t", []Cell{cell(row, "cf", "q", 1, "v"+row)}); err != nil {
			t.Fatal(err)
		}
	}
	for applied := 0; applied <= n; applied++ {
		got := rep.RunScan(&Scan{})
		if len(got) != applied {
			t.Fatalf("after %d applies replica sees %d rows", applied, len(got))
		}
		for j, res := range got {
			if string(res.Row) != rows[j] {
				t.Fatalf("after %d applies row[%d] = %q, want %q (history must be a prefix)", applied, j, res.Row, rows[j])
			}
		}
		if applied < n && rep.ApplyPending(1) != 1 {
			t.Fatalf("apply %d: no pending entry", applied)
		}
	}
	// Fully drained: replica now matches the primary exactly.
	want := primary.RunScan(&Scan{})
	got := rep.RunScan(&Scan{})
	if len(want) != len(got) {
		t.Fatalf("drained replica rows = %d, primary = %d", len(got), len(want))
	}
}

// TestPromoteNeverServesUnackedWrites partitions a primary from the master
// (the zombie scenario), promotes its replica, and verifies the promoted
// copy serves every acknowledged write and nothing the zombie failed to ack
// — the fenced WAL kills the zombie's post-promotion writes exactly as on a
// crash reassign.
func TestPromoteNeverServesUnackedWrites(t *testing.T) {
	c := bootReplicated(t, 3, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	ri, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	id, victim := ri[0].ID, ri[0].Host
	zombie := findCopy(c, id, 0)
	if err := client.Put("t", []Cell{cell("acked", "cf", "q", 1, "yes")}); err != nil {
		t.Fatal(err)
	}

	if err := c.PartitionServer(victim, PartitionFromMaster); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.CheckServers(); err != nil {
		t.Fatal(err)
	}
	if got := c.Meter.Get(metrics.Promotions); got < 1 {
		t.Fatalf("promotions = %d, want >= 1", got)
	}

	// The zombie still runs and accepts client RPCs, but its WAL is fenced:
	// this write must die unacknowledged.
	if err := zombie.Put(cell("unacked", "cf", "q", 1, "never")); err == nil {
		t.Fatal("zombie write after promotion must be fenced")
	}

	client.InvalidateRegions("t")
	res, err := client.Get("t", []byte("acked"), nil, 1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 || string(res.Cells[0].Value) != "yes" {
		t.Fatalf("promoted primary lost an acked write: %+v", res)
	}
	res, err = client.Get("t", []byte("unacked"), nil, 1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 0 {
		t.Fatal("promoted primary serves a write the old primary never acked")
	}
	// The promoted copy answers strong reads as the region's primary.
	fresh, err := client.RegionsContext(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Host == victim {
		t.Fatalf("region still routed to zombie host %s", victim)
	}
}

// TestTimelineFailoverSurvivesPrimaryCrash is the availability contract: a
// timeline read rides over a crashed primary to its replica in the same
// round, tagged stale, while a strong read keeps failing until the master
// recovers the region.
func TestTimelineFailoverSurvivesPrimaryCrash(t *testing.T) {
	c := bootReplicated(t, 3, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("k", "cf", "q", 1, "v")}); err != nil {
		t.Fatal(err)
	}
	ri, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashServer(ri[0].Host); err != nil {
		t.Fatal(err)
	}

	// Strong: the default consistency insists on the primary and fails.
	if _, err := client.Get("t", []byte("k"), nil, 1, TimeRange{}); err == nil {
		t.Fatal("strong read must fail while the primary is down and unrecovered")
	}

	// Timeline: same client, same cache — served by the replica, stale.
	tctx := WithConsistency(context.Background(), ConsistencyTimeline)
	results, freshness, err := client.BulkGetFresh(tctx, "t", [][]byte{[]byte("k")}, nil, 1, TimeRange{})
	if err != nil {
		t.Fatalf("timeline read failed across crash: %v", err)
	}
	if len(results) != 1 || len(results[0].Cells) == 0 || string(results[0].Cells[0].Value) != "v" {
		t.Fatalf("timeline read lost data: %+v", results)
	}
	if !freshness.Stale {
		t.Fatal("replica-served read must be tagged stale")
	}
	if got := c.Meter.Get(metrics.ReplicaFailovers); got < 1 {
		t.Fatalf("client.replica_failovers = %d, want >= 1", got)
	}
	if got := c.Meter.Get(metrics.ReplicaReads); got < 1 {
		t.Fatalf("hbase.replica_reads = %d, want >= 1", got)
	}

	// Recovery: the master promotes the replica and strong reads resume.
	if _, err := c.Master.CheckServers(); err != nil {
		t.Fatal(err)
	}
	res, err := client.Get("t", []byte("k"), nil, 1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) == 0 || string(res.Cells[0].Value) != "v" {
		t.Fatalf("post-promotion strong read = %+v", res)
	}
	if got := c.Meter.Get(metrics.Promotions); got < 1 {
		t.Fatalf("promotions = %d, want >= 1", got)
	}
}

// TestTimelineStaleReadsCarryBound holds a replica's apply loop so it lags,
// severs the primary, and checks the replica's answer is explicitly stale
// with a growing bound — and converges once the hold lifts.
func TestTimelineStaleReadsCarryBound(t *testing.T) {
	c := bootReplicated(t, 2, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("old", "cf", "q", 1, "v1")}); err != nil {
		t.Fatal(err)
	}
	ri, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	rep := findCopy(c, ri[0].ID, 1)
	rep.HoldApply(true)
	if err := client.Put("t", []Cell{cell("late", "cf", "q", 1, "v2")}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(3 * time.Millisecond)
	if err := c.CrashServer(ri[0].Host); err != nil {
		t.Fatal(err)
	}

	tctx := WithConsistency(context.Background(), ConsistencyTimeline)
	results, freshness, err := client.BulkGetFresh(tctx, "t", [][]byte{[]byte("late")}, nil, 1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 && len(results[0].Cells) != 0 {
		t.Fatal("held replica cannot have applied the late write yet")
	}
	if !freshness.Stale || freshness.BoundMs < 1 {
		t.Fatalf("lagging replica read: Stale=%v BoundMs=%d, want stale with bound >= 1ms", freshness.Stale, freshness.BoundMs)
	}
	if bound := rep.StalenessBound(); bound <= 0 {
		t.Fatalf("StalenessBound = %v, want > 0 while lagging", bound)
	}

	rep.HoldApply(false)
	results, freshness, err = client.BulkGetFresh(tctx, "t", [][]byte{[]byte("late")}, nil, 1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || string(results[0].Cells[0].Value) != "v2" {
		t.Fatalf("caught-up replica missing the late write: %+v", results)
	}
	if !freshness.Stale {
		t.Fatal("replica-served read stays tagged stale even at parity")
	}
}
