package hbase

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// MutatorConfig tunes a BufferedMutator. The zero value gets sane defaults.
type MutatorConfig struct {
	// WriterID identifies this mutator in the batch stamps servers
	// deduplicate on. It must be unique among concurrently writing mutators
	// of the same table, or their sequence spaces collide and distinct
	// batches deduplicate against each other. Default "mutator".
	WriterID string
	// FlushBytes is the buffered-cell threshold that triggers a flush
	// (default 16 KiB).
	FlushBytes int
	// MaxBufferBytes is the hard cap on buffered bytes: Mutate blocks once
	// the buffer reaches it and a flush is already draining, so a writer
	// outrunning the cluster exerts backpressure on its caller instead of
	// growing memory without bound. Default 4 × FlushBytes.
	MaxBufferBytes int
	// FlushInterval flushes the buffer in the background even when it stays
	// under FlushBytes, bounding the time a mutation sits unacknowledged.
	// 0 disables the background flusher (explicit Flush/Close only).
	FlushInterval time.Duration
	// MaxAttempts caps the per-flush retry loop (default: the client retry
	// policy's MaxAttempts). Ingest under chaos wants this higher than the
	// interactive default — a flush that gives up surfaces its error, and
	// its unacked cells, to the caller.
	MaxAttempts int
}

func (c MutatorConfig) withDefaults(cl *Client) MutatorConfig {
	if c.WriterID == "" {
		c.WriterID = "mutator"
	}
	if c.FlushBytes <= 0 {
		c.FlushBytes = 16 << 10
	}
	if c.MaxBufferBytes <= 0 {
		c.MaxBufferBytes = 4 * c.FlushBytes
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = cl.RetryPolicy().MaxAttempts
	}
	return c
}

// BatchStamp identifies one sequence-stamped batch a mutator sent.
type BatchStamp struct {
	Writer string
	Seq    uint64
}

// BufferedMutator is the client write buffer (HBase's BufferedMutator): Mutate
// accumulates cells locally, and flushes group them per region, stamp each
// group with a (writer, sequence) pair, pack the groups per region server,
// and send one MultiPut RPC per server. Batching amortizes the per-RPC wire
// and admission cost that makes cell-at-a-time Put throughput-bound; the
// stamps make retrying a flush whose ack was lost provably exactly-once (the
// server deduplicates applied stamps).
//
// A flush retries retryable failures itself with the client's backoff: stale
// locations re-resolve (a batch whose region split regroups by the fresh
// boundaries, keeping its original stamp), and ErrServerBusy/ErrMemstoreFull
// back off without invalidating locations. Mutate blocks — bounded buffer —
// when the buffer hits MaxBufferBytes while a flush drains.
type BufferedMutator struct {
	c     *Client
	table string
	cfg   MutatorConfig

	mu       sync.Mutex
	cond     *sync.Cond
	buf      []Cell
	bufBytes int
	nextSeq  uint64
	acked    []BatchStamp
	flushing bool
	closed   bool
	bgErr    error // error a background flush recorded, pending surfacing

	stopTicker chan struct{}
	tickerDone chan struct{}
}

// NewMutator creates a buffered mutator for table.
func (c *Client) NewMutator(table string, cfg MutatorConfig) *BufferedMutator {
	m := &BufferedMutator{c: c, table: table, cfg: cfg.withDefaults(c)}
	m.cond = sync.NewCond(&m.mu)
	if m.cfg.FlushInterval > 0 {
		m.stopTicker = make(chan struct{})
		m.tickerDone = make(chan struct{})
		// The stop channel is passed in rather than re-read from the struct:
		// Close nils m.stopTicker (under m.mu) when it claims shutdown, and a
		// Close racing this goroutine's startup must not leave it selecting
		// on a nil channel forever.
		go m.backgroundFlush(m.stopTicker)
	}
	return m
}

func (m *BufferedMutator) backgroundFlush(stop <-chan struct{}) {
	defer close(m.tickerDone)
	t := time.NewTicker(m.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Record a failure for the next explicit Flush/Close to surface —
			// Mutate's documented contract for deferred errors. Flush drained
			// any previously recorded error into this return value, so
			// storing it back loses nothing.
			if err := m.Flush(context.Background()); err != nil {
				m.mu.Lock()
				m.bgErr = err
				m.mu.Unlock()
			}
		case <-stop:
			return
		}
	}
}

// Mutate buffers cells for asynchronous delivery, flushing inline when the
// buffer crosses FlushBytes. It returns a flush error only when this call
// performed the flush; errors from background flushes surface on the next
// explicit Flush or Close.
func (m *BufferedMutator) Mutate(ctx context.Context, cells ...Cell) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return errors.New("hbase: mutator closed")
	}
	// Bounded buffer: while another flush drains and the buffer is at its
	// hard cap, wait rather than queue unboundedly.
	for m.flushing && m.bufBytes >= m.cfg.MaxBufferBytes {
		m.cond.Wait()
		if m.closed {
			m.mu.Unlock()
			return errors.New("hbase: mutator closed")
		}
	}
	for i := range cells {
		m.buf = append(m.buf, cells[i])
		m.bufBytes += cells[i].WireSize()
	}
	if m.bufBytes < m.cfg.FlushBytes || m.flushing {
		m.mu.Unlock()
		return nil
	}
	return m.flushLocked(ctx)
}

// Flush synchronously sends everything buffered. It also surfaces any error
// a background flush recorded since the last explicit Flush or Close.
func (m *BufferedMutator) Flush(ctx context.Context) error {
	m.mu.Lock()
	for m.flushing {
		m.cond.Wait()
	}
	bg := m.bgErr
	m.bgErr = nil
	if len(m.buf) == 0 {
		m.mu.Unlock()
		return bg
	}
	err := m.flushLocked(ctx)
	switch {
	case bg == nil:
		return err
	case err == nil:
		return bg
	default:
		return errors.Join(bg, err)
	}
}

// flushLocked takes the buffer and sends it; called with m.mu held, returns
// with it released.
func (m *BufferedMutator) flushLocked(ctx context.Context) error {
	m.flushing = true
	cells := m.buf
	m.buf = nil
	m.bufBytes = 0
	m.mu.Unlock()

	err := m.send(ctx, cells)

	m.mu.Lock()
	m.flushing = false
	m.cond.Broadcast()
	m.mu.Unlock()
	return err
}

// Close flushes the remaining buffer and stops the background flusher. Safe
// to call concurrently: only the caller that claims the ticker channel under
// the lock closes it.
func (m *BufferedMutator) Close(ctx context.Context) error {
	m.mu.Lock()
	stop := m.stopTicker
	m.stopTicker = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-m.tickerDone
	}
	err := m.Flush(ctx)
	m.mu.Lock()
	m.closed = true
	m.cond.Broadcast()
	m.mu.Unlock()
	return err
}

// AckedBatches returns the stamps of every batch the cluster has
// acknowledged, in ack order — the client-side half of the exactly-once
// property tests.
func (m *BufferedMutator) AckedBatches() []BatchStamp {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]BatchStamp(nil), m.acked...)
}

// stampedBatch is one in-flight batch: a stamp plus the cells it covers. The
// stamp is assigned once and never changes, even when a split forces the
// cells to regroup across fresh region boundaries.
type stampedBatch struct {
	seq   uint64
	cells []Cell
}

// send delivers cells, grouping per region, stamping per group, packing per
// server, and retrying retryable failures with regrouping until every batch
// is acked or attempts run out.
func (m *BufferedMutator) send(ctx context.Context, cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	tok, err := m.c.token()
	if err != nil {
		return err
	}
	meter := metrics.Scoped(ctx, m.c.net.Meter())
	meter.Inc(metrics.MutatorFlushes)

	// Group by region once to assign stamps: one sequence-stamped batch per
	// region the buffer touches.
	groups, _, err := m.groupByRegion(ctx, cells)
	if err != nil {
		return err
	}
	m.mu.Lock()
	pending := make([]*stampedBatch, 0, len(groups))
	for _, g := range groups {
		m.nextSeq++
		pending = append(pending, &stampedBatch{seq: m.nextSeq, cells: g})
	}
	m.mu.Unlock()

	var lastErr error
	for attempt := 1; len(pending) > 0; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		failed, err := m.sendRound(ctx, tok, pending, meter)
		if err == nil {
			if len(failed) == 0 {
				return nil
			}
			pending = failed
		} else {
			lastErr = err
			if !IsRetryable(err) {
				return err
			}
			// A round that erred before any RPC went out (e.g. region
			// re-lookup failed while regrouping) reports no per-batch
			// outcome and leaves every batch pending. Only a verdict that
			// names failed batches replaces the pending set — an early
			// error must never masquerade as "all acked".
			if len(failed) > 0 {
				pending = failed
			}
		}
		if attempt >= m.cfg.MaxAttempts {
			return fmt.Errorf("hbase: mutator flush gave up after %d attempts: %w", attempt, lastErr)
		}
		metrics.Scoped(ctx, m.c.net.Meter()).Inc(metrics.ClientRetries)
		if !errors.Is(lastErr, ErrServerBusy) && !errors.Is(lastErr, ErrMemstoreFull) {
			m.c.InvalidateRegions(m.table)
		}
		if perr := m.c.RetryPause(ctx, attempt); perr != nil {
			return perr
		}
	}
	return nil
}

// sendRound performs one delivery attempt: every pending batch is regrouped
// against the current region map (its stamp preserved — the server-side
// windows inherited across splits keep dedup exact on the regrouped pieces),
// packed per server, and sent as parallel MultiPut RPCs. It returns the
// batches that must be retried and the first retryable error seen.
func (m *BufferedMutator) sendRound(ctx context.Context, tok string, pending []*stampedBatch, meter metrics.Meter) ([]*stampedBatch, error) {
	// The low-water mark carried on every batch: flushes are serialized, so
	// everything below the smallest still-pending stamp is resolved — acked,
	// or abandoned with its error surfaced — and will never be retried.
	// Servers prune their dedup windows below it.
	lowWater := pending[0].seq
	for _, sb := range pending[1:] {
		if sb.seq < lowWater {
			lowWater = sb.seq
		}
	}
	type hostLoad struct {
		batches []RegionBatch
		owners  map[*stampedBatch]bool
	}
	hosts := make(map[string]*hostLoad)
	for _, sb := range pending {
		// One stamped batch may span several regions (the region it was
		// grouped under split): partition its cells by current boundaries,
		// each piece keeping the original stamp.
		parts, infos, err := m.groupByRegion(ctx, sb.cells)
		if err != nil {
			return nil, err
		}
		for id, part := range parts {
			ri := infos[id]
			hl := hosts[ri.Host]
			if hl == nil {
				hl = &hostLoad{owners: make(map[*stampedBatch]bool)}
				hosts[ri.Host] = hl
			}
			hl.batches = append(hl.batches, RegionBatch{
				RegionID: id, Epoch: ri.Epoch,
				Writer: m.cfg.WriterID, Seq: sb.seq, LowWater: lowWater, Cells: part,
			})
			hl.owners[sb] = true
		}
	}

	var wg sync.WaitGroup
	errs := make(map[string]error, len(hosts))
	var errMu sync.Mutex
	for host, hl := range hosts {
		wg.Add(1)
		go func(host string, hl *hostLoad) {
			defer wg.Done()
			meter.Inc(metrics.MultiPuts)
			_, err := m.c.call(ctx, host, MethodMultiPut, &MultiPutRequest{Batches: hl.batches, Token: tok})
			if err != nil {
				errMu.Lock()
				errs[host] = err
				errMu.Unlock()
			}
		}(host, hl)
	}
	wg.Wait()

	// A batch is acked only when every host holding a piece of it succeeded;
	// a failed piece keeps the whole batch pending, and the next round's
	// regrouped resend deduplicates the pieces that did land.
	failedSet := make(map[*stampedBatch]bool)
	var firstErr error
	for host, err := range errs {
		// A non-retryable error outranks retryable ones: it is the one the
		// caller must see, since no amount of regrouping fixes it.
		if firstErr == nil || (IsRetryable(firstErr) && !IsRetryable(err)) {
			firstErr = err
		}
		for sb := range hosts[host].owners {
			failedSet[sb] = true
		}
	}
	var failed []*stampedBatch
	var acked []BatchStamp
	for _, sb := range pending {
		if failedSet[sb] {
			failed = append(failed, sb)
		} else {
			acked = append(acked, BatchStamp{Writer: m.cfg.WriterID, Seq: sb.seq})
		}
	}
	if len(acked) > 0 {
		m.mu.Lock()
		m.acked = append(m.acked, acked...)
		m.mu.Unlock()
	}
	return failed, firstErr
}

// groupByRegion partitions cells by the region currently containing each row.
func (m *BufferedMutator) groupByRegion(ctx context.Context, cells []Cell) (map[string][]Cell, map[string]RegionInfo, error) {
	groups := make(map[string][]Cell)
	infos := make(map[string]RegionInfo)
	for i := range cells {
		ri, err := m.c.regionForRow(ctx, m.table, cells[i].Row)
		if err != nil {
			return nil, nil, err
		}
		groups[ri.ID] = append(groups[ri.ID], cells[i])
		if _, ok := infos[ri.ID]; !ok {
			infos[ri.ID] = ri
		}
	}
	return groups, infos, nil
}
