package hbase

import (
	"errors"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// TestClientMasterRediscoveryAfterTakeover hardens the client against the
// master failover: a cached leader address that stops answering is dropped,
// the client re-reads the election node, and the meta operation lands on the
// new leader — all inside one call, metered as client.master_rediscoveries.
func TestClientMasterRediscoveryAfterTakeover(t *testing.T) {
	c := bootHACluster(t, 2, 2)
	client := c.NewClient()
	defer client.Close()
	// Prime the client's master cache on the boot leader.
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	zombie, err := c.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	awaitTakeover(t, c, zombie)

	// The cached address points at the corpse; the call must shed it and
	// find the new leader on its own.
	tables, err := client.ListTables()
	if err != nil {
		t.Fatalf("ListTables across failover: %v", err)
	}
	if len(tables) != 1 || tables[0] != "t" {
		t.Errorf("tables = %v, want [t]", tables)
	}
	if got := c.Meter.Get(metrics.MasterRediscoveries); got == 0 {
		t.Error("client.master_rediscoveries = 0, want > 0")
	}
}

// TestClientMasterlessWindowBackoff pins the client's behaviour while NO
// master leads: each attempt sees ErrNoMaster, backs off per the retry
// policy, and the final error is ErrNoMaster (retryable — callers with their
// own loops keep trying). Once a master appears the same client succeeds.
func TestClientMasterlessWindowBackoff(t *testing.T) {
	c := bootCluster(t, 2)
	var slept []time.Duration
	client := c.NewClient(WithRetryPolicy(RetryPolicy{
		MaxAttempts: 3,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}))
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}

	// Kill the only master: the cluster is masterless until a new one boots.
	if _, err := c.CrashMaster(); err != nil {
		t.Fatal(err)
	}
	_, err := client.ListTables()
	if !errors.Is(err, ErrNoMaster) {
		t.Fatalf("masterless ListTables err = %v, want ErrNoMaster", err)
	}
	if !IsRetryable(err) {
		t.Error("ErrNoMaster must be retryable")
	}
	if len(slept) != 2 {
		t.Errorf("backoffs before giving up = %d, want 2 (MaxAttempts-1)", len(slept))
	}
	if got := c.Meter.Get(metrics.MasterRediscoveries); got != 2 {
		t.Errorf("client.master_rediscoveries = %d, want 2", got)
	}

	// The window closes: a replacement master elects itself and the same
	// client — no reset, no new session — recovers on the next call.
	nm, err := NewMaster("test-master2", c.Net, c.ZK, StoreConfig{}, c.Meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := nm.RecoverFrom(c.Servers); err != nil {
		t.Fatal(err)
	}
	tables, err := client.ListTables()
	if err != nil {
		t.Fatalf("ListTables after window closed: %v", err)
	}
	if len(tables) != 1 || tables[0] != "t" {
		t.Errorf("tables = %v, want [t]", tables)
	}
}

// TestClientMasterCacheSurvivesHealthyLeader guards against over-eager cache
// invalidation: meta calls against a healthy leader never increment the
// rediscovery counter.
func TestClientMasterCacheSurvivesHealthyLeader(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	for i := 0; i < 5; i++ {
		if _, err := client.ListTables(); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.Meter.Get(metrics.MasterRediscoveries); got != 0 {
		t.Errorf("client.master_rediscoveries = %d against a healthy master, want 0", got)
	}
}
