package hbase

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

func bootCluster(t *testing.T, servers int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Name: "test", NumServers: servers})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClusterCreateTableAndRegions(t *testing.T) {
	c := bootCluster(t, 3)
	client := c.NewClient()
	defer client.Close()

	desc := TableDescriptor{Name: "users", Families: []string{"cf"}}
	splits := [][]byte{[]byte("g"), []byte("p")}
	if err := client.CreateTable(desc, splits); err != nil {
		t.Fatal(err)
	}
	regions, err := client.Regions("users")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("regions = %d, want 3", len(regions))
	}
	if regions[0].StartKey != nil || string(regions[0].EndKey) != "g" {
		t.Errorf("first region = %s", regions[0].String())
	}
	if regions[2].EndKey != nil {
		t.Errorf("last region = %s", regions[2].String())
	}
	// Regions spread across the three servers (least-loaded assignment).
	hosts := map[string]bool{}
	for _, ri := range regions {
		hosts[ri.Host] = true
	}
	if len(hosts) != 3 {
		t.Errorf("regions on %d hosts, want 3", len(hosts))
	}
	names, err := client.ListTables()
	if err != nil || len(names) != 1 || names[0] != "users" {
		t.Errorf("ListTables = %v, %v", names, err)
	}
}

func TestClusterCreateTableErrors(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	desc := TableDescriptor{Name: "t", Families: []string{"cf"}}
	if err := client.CreateTable(desc, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.CreateTable(desc, nil); err == nil {
		t.Error("duplicate table must fail")
	}
	if err := client.CreateTable(TableDescriptor{Name: "bad"}, nil); err == nil {
		t.Error("descriptor without families must fail")
	}
	unsorted := [][]byte{[]byte("p"), []byte("g")}
	if err := client.CreateTable(TableDescriptor{Name: "x", Families: []string{"cf"}}, unsorted); err == nil {
		t.Error("unsorted split keys must fail")
	}
}

func TestClientPutScanAcrossRegions(t *testing.T) {
	c := bootCluster(t, 3)
	client := c.NewClient()
	defer client.Close()
	desc := TableDescriptor{Name: "t", Families: []string{"cf"}}
	if err := client.CreateTable(desc, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, cell(fmt.Sprintf("%c-row", 'a'+i), "cf", "q", 1, fmt.Sprintf("v%d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 20 {
		t.Fatalf("scan rows = %d", len(results))
	}
	// Results come back in key order because regions are visited in order.
	for i := 1; i < len(results); i++ {
		if strings.Compare(string(results[i-1].Row), string(results[i].Row)) >= 0 {
			t.Fatal("scan results must be ordered across regions")
		}
	}
	// Range scan touching only the second region.
	results, err = client.ScanTable("t", &Scan{StartRow: []byte("n"), StopRow: []byte("q")})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if string(r.Row) < "n" || string(r.Row) >= "q" {
			t.Errorf("row %q outside requested range", r.Row)
		}
	}
}

func TestClientGetAndBulkGet(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("a", "cf", "q", 1, "va"), cell("z", "cf", "q", 1, "vz")}); err != nil {
		t.Fatal(err)
	}
	res, err := client.Get("t", []byte("a"), nil, 1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.Value("cf", "q"); string(v) != "va" {
		t.Errorf("Get = %q", v)
	}
	results, err := client.BulkGet("t", [][]byte{[]byte("a"), []byte("z"), []byte("missing")}, nil, 1, TimeRange{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("BulkGet rows = %d (missing row must be dropped)", len(results))
	}
	missing, err := client.Get("t", []byte("nope"), nil, 1, TimeRange{})
	if err != nil || !missing.Empty() {
		t.Errorf("missing Get = %v, %v", missing, err)
	}
}

func TestClientScanRegionAndFused(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 10; i++ {
		cells = append(cells, cell(fmt.Sprintf("%c", 'a'+i), "cf", "q", 1, "x"))
		cells = append(cells, cell(fmt.Sprintf("%c", 'n'+i), "cf", "q", 1, "y"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	one, err := client.ScanRegion(regions[0], &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 10 {
		t.Errorf("region scan = %d rows", len(one))
	}
	// Fused: scan + bulk get bound for the same server in one RPC.
	m := c.Meter
	before := m.Get(metrics.RPCCalls)
	ops := []ScanOp{
		{RegionID: regions[0].ID, Scan: &Scan{StartRow: []byte("a"), StopRow: []byte("c")}},
		{RegionID: regions[0].ID, Rows: [][]byte{[]byte("d")}},
	}
	results, err := client.FusedExec(regions[0].Host, ops)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Errorf("fused results = %d", len(results))
	}
	if got := m.Get(metrics.RPCCalls) - before; got != 1 {
		t.Errorf("fused exec used %d RPCs, want 1", got)
	}
}

func TestClusterSecurityValidation(t *testing.T) {
	validator := func(token string) error {
		if token != "valid-token" {
			return errors.New("auth failed")
		}
		return nil
	}
	c, err := NewCluster(ClusterConfig{Name: "secure", NumServers: 1, Validate: validator})
	if err != nil {
		t.Fatal(err)
	}
	anon := c.NewClient()
	defer anon.Close()
	if err := anon.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err == nil {
		t.Fatal("unauthenticated create must fail")
	}
	authed := c.NewClient(WithTokenProvider(staticToken("valid-token")))
	defer authed.Close()
	if err := authed.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := authed.Put("t", []Cell{cell("r", "cf", "q", 1, "x")}); err != nil {
		t.Fatal(err)
	}
	if _, err := anon.ScanTable("t", &Scan{}); err == nil {
		t.Error("unauthenticated scan must fail")
	}
}

type staticToken string

func (s staticToken) Token(string) (string, error) { return string(s), nil }

func TestMasterSplitAndClientInvalidation(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 50; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, "abcdefgh"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	regions, _ := client.Regions("t")
	if err := c.Master.SplitRegion("t", regions[0].ID); err != nil {
		t.Fatal(err)
	}
	// Cached map is stale; refresh shows two regions.
	client.InvalidateRegions("t")
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions after split = %d", len(regions))
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil || len(results) != 50 {
		t.Errorf("scan after split = %d rows, %v", len(results), err)
	}
}

func TestMasterSplitOvergrownAndBalance(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Name: "t", NumServers: 2, Store: StoreConfig{SplitThresholdBytes: 200}})
	if err != nil {
		t.Fatal(err)
	}
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 40; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, "0123456789abcdef"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	n, err := c.Master.SplitOvergrownRegions()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("expected at least one split")
	}
	moved := c.Master.Balance()
	counts := []int{c.Servers[0].RegionCount(), c.Servers[1].RegionCount()}
	if diff := counts[0] - counts[1]; diff < -1 || diff > 1 {
		t.Errorf("unbalanced after Balance (moved %d): %v", moved, counts)
	}
	client.InvalidateRegions("t")
	results, err := client.ScanTable("t", &Scan{})
	if err != nil || len(results) != 40 {
		t.Errorf("scan after split+balance = %d rows, %v", len(results), err)
	}
}

func TestMasterDeleteTable(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Regions("t"); err == nil {
		t.Error("regions of deleted table must error")
	}
	if err := client.DeleteTable("t"); err == nil {
		t.Error("double delete must fail")
	}
	if c.Servers[0].RegionCount() != 0 {
		t.Error("regions must be unhosted on delete")
	}
}

func TestSecondMasterLosesElection(t *testing.T) {
	c := bootCluster(t, 1)
	_, err := NewMaster("test-master2", c.Net, c.ZK, StoreConfig{}, metrics.NewRegistry(), nil)
	if err == nil {
		t.Error("second master must lose the election")
	}
}

func TestSplitRowRange(t *testing.T) {
	ri := &RegionInfo{StartKey: []byte("g"), EndKey: []byte("p")}
	lo, hi, ok := SplitRowRange(ri, []byte("a"), []byte("z"))
	if !ok || string(lo) != "g" || string(hi) != "p" {
		t.Errorf("clip = %q %q %v", lo, hi, ok)
	}
	lo, hi, ok = SplitRowRange(ri, []byte("h"), []byte("k"))
	if !ok || string(lo) != "h" || string(hi) != "k" {
		t.Errorf("inner clip = %q %q %v", lo, hi, ok)
	}
	if _, _, ok = SplitRowRange(ri, []byte("q"), nil); ok {
		t.Error("non-overlapping range must not clip")
	}
	unbounded := &RegionInfo{}
	lo, hi, ok = SplitRowRange(unbounded, nil, nil)
	if !ok || lo != nil || hi != nil {
		t.Errorf("unbounded clip = %q %q %v", lo, hi, ok)
	}
}

func TestRegionInfoPredicates(t *testing.T) {
	ri := &RegionInfo{StartKey: []byte("g"), EndKey: []byte("p")}
	if ri.ContainsRow([]byte("a")) || !ri.ContainsRow([]byte("g")) || ri.ContainsRow([]byte("p")) {
		t.Error("ContainsRow boundary behaviour wrong")
	}
	if !ri.OverlapsRange(nil, nil) || ri.OverlapsRange([]byte("p"), nil) || ri.OverlapsRange(nil, []byte("g")) {
		t.Error("OverlapsRange boundary behaviour wrong")
	}
}

func TestTableDescriptorValidate(t *testing.T) {
	cases := []TableDescriptor{
		{},
		{Name: "t"},
		{Name: "t", Families: []string{""}},
		{Name: "t", Families: []string{"cf", "cf"}},
	}
	for i, d := range cases {
		if err := d.Validate(); err == nil {
			t.Errorf("case %d must fail validation", i)
		}
	}
	good := TableDescriptor{Name: "t", Families: []string{"cf"}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid descriptor rejected: %v", err)
	}
}
