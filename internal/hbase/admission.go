package hbase

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// ErrServerBusy reports that a region server shed a request because its
// in-flight limit and wait queue were both full. It is retryable — the
// client backs off and resends — but unlike a crash it does NOT invalidate
// region locations or trigger reassignment: the server is alive, just
// saturated, and the region still lives there.
var ErrServerBusy = errors.New("hbase: server busy")

// ErrMemstoreFull reports a write rejected because the server's aggregate
// MemStore size is above its high watermark: accepting more would risk
// unbounded buffering while flushes catch up. It is retryable and, like
// ErrServerBusy, does NOT invalidate region locations — the region is
// exactly where the client thinks, the server just needs to drain.
var ErrMemstoreFull = errors.New("hbase: memstore above high watermark")

// ServerLimits bounds the concurrent work one region server accepts — the
// admission-control half of workload management. Zero values mean
// unlimited (the default, matching the pre-overload-protection behaviour).
type ServerLimits struct {
	// MaxInFlight caps the data RPCs executing concurrently; 0 = unlimited.
	MaxInFlight int
	// MaxQueue caps the callers allowed to wait for an execution slot once
	// MaxInFlight is reached. Arrivals beyond it are shed with
	// ErrServerBusy. 0 = nobody queues (shed as soon as slots are full).
	MaxQueue int
	// ServiceTime is simulated per-RPC server-side work, spent while holding
	// an execution slot. The network's CallLatency models the wire, which is
	// why it cannot contend for slots; ServiceTime is what makes a bounded
	// server actually saturate under concurrent load. 0 = instant service.
	ServiceTime time.Duration
	// MemstoreLowWatermarkBytes is the aggregate MemStore size (across every
	// region the server hosts) above which writes are delayed: the server
	// flushes its largest MemStore and sleeps MemstoreDelay before applying
	// the write, pacing ingest to flush throughput. 0 disables the delay
	// watermark.
	MemstoreLowWatermarkBytes int
	// MemstoreHighWatermarkBytes is the aggregate MemStore size above which
	// writes are rejected with the retryable ErrMemstoreFull (after one
	// forced flush of the largest MemStore fails to bring the total back
	// under). This is the hard bound that keeps a write burst from buffering
	// unbounded memory. 0 disables the reject watermark.
	MemstoreHighWatermarkBytes int
	// MemstoreDelay is the pause imposed on each write while the server is
	// between the low and high watermarks (default 1ms when a low watermark
	// is set).
	MemstoreDelay time.Duration
}

// admission is the gate every data RPC passes through when limits are set.
// Heartbeats bypass it: liveness probes must land even on a saturated
// server, or overload would masquerade as death and trigger reassignment.
type admission struct {
	limits ServerLimits
	meter  *metrics.Registry

	mu      sync.Mutex
	inUse   int // RPCs currently executing
	waiting int // RPCs queued for a slot
	waiters []chan struct{} // FIFO queue of parked callers
}

func newAdmission(limits ServerLimits, meter *metrics.Registry) *admission {
	return &admission{limits: limits, meter: meter}
}

// enter claims an execution slot, queueing (bounded) when none is free.
// It returns ErrServerBusy when the queue is full and ctx's error when the
// caller gives up while parked.
func (a *admission) enter(ctx context.Context) error {
	if a == nil || a.limits.MaxInFlight <= 0 {
		return nil
	}
	a.mu.Lock()
	if a.inUse < a.limits.MaxInFlight {
		a.inUse++
		a.mu.Unlock()
		return nil
	}
	if a.waiting >= a.limits.MaxQueue {
		a.mu.Unlock()
		metrics.Scoped(ctx, a.meter).Inc(metrics.ServerShed)
		return fmt.Errorf("%w: %d in flight, %d queued", ErrServerBusy, a.limits.MaxInFlight, a.limits.MaxQueue)
	}
	ch := make(chan struct{})
	a.waiters = append(a.waiters, ch)
	a.waiting++
	a.meter.SetMax(metrics.ServerQueuePeak, int64(a.waiting))
	metrics.ScopeFrom(ctx).SetMax(metrics.ServerQueuePeak, int64(a.waiting))
	a.mu.Unlock()

	select {
	case <-ch:
		// leave() granted us the slot (inUse already counts us).
		return nil
	case <-ctx.Done():
		a.mu.Lock()
		// Remove ourselves unless a grant raced the cancellation.
		for i, w := range a.waiters {
			if w == ch {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				a.waiting--
				a.mu.Unlock()
				return ctx.Err()
			}
		}
		a.mu.Unlock()
		// Slot was granted concurrently; hand it back.
		a.leave()
		return ctx.Err()
	}
}

// leave releases an execution slot, handing it to the oldest waiter if any.
func (a *admission) leave() {
	if a == nil || a.limits.MaxInFlight <= 0 {
		return
	}
	a.mu.Lock()
	if len(a.waiters) > 0 {
		ch := a.waiters[0]
		a.waiters = a.waiters[1:]
		a.waiting--
		// The slot transfers directly: inUse stays constant.
		a.mu.Unlock()
		close(ch)
		return
	}
	a.inUse--
	a.mu.Unlock()
}
