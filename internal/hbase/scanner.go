package hbase

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"github.com/shc-go/shc/internal/metrics"
)

// Scanner iterates a table scan in pages, the way HBase clients stream
// large scans with a caching size instead of materializing everything in
// one response. Each page is at most one RPC per region visited, and with
// Prefetch enabled the next page's RPC is issued while the caller consumes
// the current one (double buffering).
type Scanner struct {
	client    *Client
	ctx       context.Context
	table     string
	spec      Scan
	batchSize int
	prefetch  bool
	meter     *metrics.Registry

	regions  []RegionInfo
	region   int    // index of the region currently being scanned
	cursor   []byte // next start row within the current region
	lastRow  []byte // last row actually returned (for error context)
	returned int    // rows handed out so far (for spec.Limit page sizing)
	failures int    // consecutive failed page fetches (for retry capping)
	done     bool
	err      error

	pending chan pageResult // in-flight prefetched page, nil when none
}

type pageResult struct {
	results []Result
	err     error
}

// ScannerConfig tunes a paged scan.
type ScannerConfig struct {
	// BatchSize bounds the rows per page (default 100).
	BatchSize int
	// Prefetch keeps the next page's RPC in flight while the current page
	// is being consumed.
	Prefetch bool
	// Meter receives client-side scanner counters (PagesPrefetched); may be
	// nil.
	Meter *metrics.Registry
}

// OpenScanner starts a paged scan. batchSize bounds the rows per page
// (default 100). The Scan's Limit, if set, caps the total across pages.
func (c *Client) OpenScanner(table string, spec *Scan, batchSize int) (*Scanner, error) {
	return c.OpenScannerWith(table, spec, ScannerConfig{BatchSize: batchSize})
}

// OpenScannerWith starts a paged scan with full configuration.
func (c *Client) OpenScannerWith(table string, spec *Scan, cfg ScannerConfig) (*Scanner, error) {
	return c.OpenScannerContext(context.Background(), table, spec, cfg)
}

// OpenScannerContext starts a paged scan whose page fetches — including
// prefetched ones — are bounded by ctx. Cancelling ctx makes the next (or
// in-flight) page fail with the context's error instead of finishing the
// scan.
func (c *Client) OpenScannerContext(ctx context.Context, table string, spec *Scan, cfg ScannerConfig) (*Scanner, error) {
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 100
	}
	regions, err := c.RegionsContext(ctx, table)
	if err != nil {
		return nil, err
	}
	s := &Scanner{
		client: c, ctx: ctx, table: table, spec: *spec, batchSize: cfg.BatchSize,
		prefetch: cfg.Prefetch, meter: cfg.Meter, regions: regions,
	}
	s.cursor = spec.StartRow
	s.skipToOverlap()
	return s, nil
}

// skipToOverlap advances past regions the scan range does not touch.
func (s *Scanner) skipToOverlap() {
	for s.region < len(s.regions) {
		ri := &s.regions[s.region]
		if ri.OverlapsRange(s.startFor(), s.spec.StopRow) {
			return
		}
		s.region++
	}
	s.done = true
}

func (s *Scanner) startFor() []byte {
	if s.cursor != nil {
		return s.cursor
	}
	return s.spec.StartRow
}

// pageLimit sizes the next page: the batch size, shrunk to the rows still
// owed under the Scan's Limit so the final page never over-fetches.
func (s *Scanner) pageLimit() int {
	if s.spec.Limit <= 0 {
		return s.batchSize
	}
	remaining := s.spec.Limit - s.returned
	if remaining < s.batchSize {
		return remaining
	}
	return s.batchSize
}

// wrapErr annotates a terminal page-fetch error with where the scan stood —
// table, region, and the last row already returned — so a failure deep in a
// multi-region scan reports its position, not just the transport error.
func (s *Scanner) wrapErr(err error, regionID string) error {
	return fmt.Errorf("hbase: scan table=%q region=%s after-row=%x: %w", s.table, regionID, s.lastRow, err)
}

// fetchPage issues RPCs until one page of results arrives or the scan is
// exhausted. It owns all scanner position state; callers serialize access.
func (s *Scanner) fetchPage() ([]Result, error) {
	for !s.done {
		limit := s.pageLimit()
		if limit <= 0 {
			s.done = true
			return nil, nil
		}
		ri := s.regions[s.region]
		page := s.spec
		page.StartRow = s.startFor()
		page.Limit = limit
		results, err := s.client.ScanRegionContext(s.ctx, ri, &page)
		if err != nil {
			if !IsRetryable(err) {
				return nil, s.wrapErr(err, ri.ID)
			}
			s.failures++
			if s.failures >= s.client.retry.MaxAttempts {
				return nil, s.wrapErr(err, ri.ID)
			}
			metrics.Scoped(s.ctx, s.client.net.Meter()).Inc(metrics.ClientRetries)
			// A shed request means the server is saturated, not gone: the
			// region map is still right, so skip the relocate and just back
			// off before resending the same page.
			if !errors.Is(err, ErrServerBusy) {
				if rerr := s.relocate(); rerr != nil {
					return nil, s.wrapErr(rerr, ri.ID)
				}
			}
			if perr := s.client.RetryPause(s.ctx, s.failures); perr != nil {
				return nil, s.wrapErr(perr, ri.ID)
			}
			continue
		}
		s.failures = 0
		if len(results) == 0 {
			// Region drained: move on.
			s.region++
			s.cursor = nil
			s.skipToOverlap()
			continue
		}
		s.returned += len(results)
		last := results[len(results)-1].Row
		s.lastRow = append([]byte(nil), last...)
		s.cursor = append(append([]byte(nil), last...), 0) // resume after last row
		if len(results) < limit {
			// Short page: this region is done.
			s.region++
			s.cursor = nil
			s.skipToOverlap()
		}
		if s.spec.Limit > 0 && s.returned >= s.spec.Limit {
			s.done = true
		}
		// Clip to the region's end in case the cursor ran past it.
		if !s.done && s.cursor != nil {
			ri := s.regions[s.region]
			if len(ri.EndKey) > 0 && bytes.Compare(s.cursor, ri.EndKey) >= 0 {
				s.region++
				s.cursor = nil
				s.skipToOverlap()
			}
		}
		return results, nil
	}
	return nil, nil
}

// relocate refreshes the region list after a failed page fetch and
// repositions the scanner at the region now containing its cursor. The
// cursor marks the first row not yet returned, so when the master has
// reassigned the dead server's regions the next page resumes on the new
// host with no rows duplicated or dropped.
func (s *Scanner) relocate() error {
	s.client.InvalidateRegions(s.table)
	regions, err := s.client.RegionsContext(s.ctx, s.table)
	if err != nil {
		return err
	}
	// The within-region cursor is cleared at every region boundary, but the
	// rows already returned are still marked by lastRow — rebuild the cursor
	// from it, or repositioning against fresh regions would fall back to the
	// scan's own StartRow and replay everything. This is what makes a resume
	// exact when the region under the scanner split between pages: the fresh
	// map has different boundaries, and only the cursor key says where the
	// scan truly stands.
	if s.cursor == nil && s.lastRow != nil {
		s.cursor = append(append([]byte(nil), s.lastRow...), 0)
	}
	s.regions = regions
	s.region = 0
	s.skipToOverlap()
	return nil
}

// Next returns the next page of results, or (nil, nil) when the scan is
// exhausted. With Prefetch, the page was usually fetched while the caller
// processed the previous one, and the fetch after it is kicked off before
// Next returns.
func (s *Scanner) Next() ([]Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	var results []Result
	var err error
	if s.pending != nil {
		pr := <-s.pending
		s.pending = nil
		results, err = pr.results, pr.err
	} else {
		results, err = s.fetchPage()
	}
	if err != nil {
		s.err = err
		return nil, err
	}
	if s.prefetch && results != nil && !s.done {
		// Double buffering: the next page's RPC goes out now; the state
		// mutation in fetchPage happens-before the channel send, and the
		// next launch happens-after the receive, so access stays serial.
		ch := make(chan pageResult, 1)
		s.pending = ch
		metrics.Scoped(s.ctx, s.meter).Inc(metrics.PagesPrefetched)
		go func() {
			r, e := s.fetchPage()
			ch <- pageResult{results: r, err: e}
		}()
	}
	return results, nil
}

// All drains the scanner, honoring the Scan's Limit.
func (s *Scanner) All() ([]Result, error) {
	var out []Result
	for {
		page, err := s.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			return out, nil
		}
		out = append(out, page...)
		if s.spec.Limit > 0 && len(out) >= s.spec.Limit {
			return out[:s.spec.Limit], nil
		}
	}
}
