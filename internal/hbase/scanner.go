package hbase

import (
	"bytes"
)

// Scanner iterates a table scan in pages, the way HBase clients stream
// large scans with a caching size instead of materializing everything in
// one response. Each Next() issues at most one RPC per region visited.
type Scanner struct {
	client    *Client
	table     string
	spec      Scan
	batchSize int

	regions []RegionInfo
	region  int    // index of the region currently being scanned
	cursor  []byte // next start row within the current region
	done    bool
	err     error
}

// OpenScanner starts a paged scan. batchSize bounds the rows per page
// (default 100). The Scan's Limit, if set, caps the total across pages.
func (c *Client) OpenScanner(table string, spec *Scan, batchSize int) (*Scanner, error) {
	if batchSize <= 0 {
		batchSize = 100
	}
	regions, err := c.Regions(table)
	if err != nil {
		return nil, err
	}
	s := &Scanner{client: c, table: table, spec: *spec, batchSize: batchSize, regions: regions}
	s.cursor = spec.StartRow
	s.skipToOverlap()
	return s, nil
}

// skipToOverlap advances past regions the scan range does not touch.
func (s *Scanner) skipToOverlap() {
	for s.region < len(s.regions) {
		ri := &s.regions[s.region]
		if ri.OverlapsRange(s.startFor(), s.spec.StopRow) {
			return
		}
		s.region++
	}
	s.done = true
}

func (s *Scanner) startFor() []byte {
	if s.cursor != nil {
		return s.cursor
	}
	return s.spec.StartRow
}

// Next returns the next page of results, or (nil, nil) when the scan is
// exhausted.
func (s *Scanner) Next() ([]Result, error) {
	if s.err != nil {
		return nil, s.err
	}
	for !s.done {
		ri := s.regions[s.region]
		page := s.spec
		page.StartRow = s.startFor()
		page.Limit = s.batchSize
		results, err := s.client.ScanRegion(ri, &page)
		if err != nil {
			s.err = err
			return nil, err
		}
		if len(results) == 0 {
			// Region drained: move on.
			s.region++
			s.cursor = nil
			s.skipToOverlap()
			continue
		}
		last := results[len(results)-1].Row
		s.cursor = append(append([]byte(nil), last...), 0) // resume after last row
		if len(results) < s.batchSize {
			// Short page: this region is done.
			s.region++
			s.cursor = nil
			s.skipToOverlap()
		}
		// Clip to the region's end in case the cursor ran past it.
		if !s.done && s.cursor != nil {
			ri := s.regions[s.region]
			if len(ri.EndKey) > 0 && bytes.Compare(s.cursor, ri.EndKey) >= 0 {
				s.region++
				s.cursor = nil
				s.skipToOverlap()
			}
		}
		return results, nil
	}
	return nil, nil
}

// All drains the scanner, honoring the Scan's Limit.
func (s *Scanner) All() ([]Result, error) {
	var out []Result
	for {
		page, err := s.Next()
		if err != nil {
			return nil, err
		}
		if page == nil {
			return out, nil
		}
		out = append(out, page...)
		if s.spec.Limit > 0 && len(out) >= s.spec.Limit {
			return out[:s.spec.Limit], nil
		}
	}
}
