package hbase

import (
	"context"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/trace"
)

// TestHedgeLoserSpanCancelled re-runs the straggler scenario with tracing
// on: the winning attempt's span carries hedge=won and the loser is marked
// cancelled — an abandoned duplicate must never read as a failure or a win.
func TestHedgeLoserSpanCancelled(t *testing.T) {
	c := bootCluster(t, 1)
	plain := c.NewClient()
	defer plain.Close()
	loadRows(t, plain, 40)

	c.Net.SetFaultInjector(rpc.NewFaultInjector(1,
		&rpc.FaultRule{Method: MethodScan, ExtraLatency: 100 * time.Millisecond, LatencyEvery: 2},
	))
	hedged := c.NewClient(WithHedgedReads(3 * time.Millisecond))
	defer hedged.Close()

	tr := trace.New("hedged-scan")
	ctx, cancel := context.WithTimeout(trace.NewContext(context.Background(), tr), 5*time.Second)
	defer cancel()
	if _, err := hedged.ScanTableContext(ctx, "t", &Scan{}); err != nil {
		t.Fatalf("hedged scan: %v", err)
	}
	tr.Finish()

	attempts := append(tr.Find("hedge.primary"), tr.Find("hedge.speculative")...)
	if len(attempts) < 2 {
		t.Fatalf("found %d hedge attempt spans, want at least one raced pair:\n%s", len(attempts), tr.Render())
	}
	var won, cancelled, failed int
	for _, sp := range attempts {
		switch {
		case sp.Tag("hedge") == "won":
			won++
			if sp.Status() == trace.StatusCancelled {
				t.Fatalf("winner span marked cancelled:\n%s", tr.Render())
			}
		case sp.Status() == trace.StatusCancelled:
			cancelled++
		case sp.Status() == trace.StatusError:
			failed++
		}
	}
	if won == 0 {
		t.Fatalf("no hedge attempt tagged as winner:\n%s", tr.Render())
	}
	if cancelled == 0 {
		t.Fatalf("no losing hedge attempt marked cancelled:\n%s", tr.Render())
	}
	if failed > 0 {
		t.Fatalf("%d hedge attempts marked failed; losers must be cancelled, not errors:\n%s", failed, tr.Render())
	}
}

// TestServerScanSpansCarryRegionAndRows: a traced table scan produces one
// region.scan span per region visited, tagged with host and region, whose
// summed rows attribute equals the rows the scan returned.
func TestServerScanSpansCarryRegionAndRows(t *testing.T) {
	c := bootCluster(t, 3)
	client := c.NewClient()
	defer client.Close()
	loadRows(t, client, 60)

	tr := trace.New("scan")
	ctx := trace.NewContext(context.Background(), tr)
	results, err := client.ScanTableContext(ctx, "t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish()

	spans := tr.Find("region.scan")
	if len(spans) == 0 {
		t.Fatalf("no region.scan spans:\n%s", tr.Render())
	}
	var rows int64
	for _, sp := range spans {
		if sp.Tag("region") == "" || sp.Tag("host") == "" {
			t.Fatalf("region.scan span missing region/host tags:\n%s", tr.Render())
		}
		rows += sp.Attr("rows")
	}
	if rows != int64(len(results)) {
		t.Fatalf("span rows = %d, scan returned %d", rows, len(results))
	}
}

// TestScopedRegistryIsolatesQueries: two scans with different scoped
// registries each see exactly their own rows while the cluster registry
// accumulates both.
func TestScopedRegistryIsolatesQueries(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	loadRows(t, client, 30)

	clusterBefore := c.Meter.Get(metrics.RowsReturned)

	scopeA, scopeB := metrics.NewRegistry(), metrics.NewRegistry()
	ctxA := metrics.WithScope(context.Background(), scopeA)
	ctxB := metrics.WithScope(context.Background(), scopeB)

	all, err := client.ScanTableContext(ctxA, "t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	limited, err := client.ScanTableContext(ctxB, "t", &Scan{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(limited) != 5 {
		t.Fatalf("limited scan returned %d rows, want 5", len(limited))
	}
	if got := scopeA.Get(metrics.RowsReturned); got != int64(len(all)) {
		t.Errorf("scope A rows_returned = %d, want %d", got, len(all))
	}
	// The server may return up to one full region page before the limit
	// clips client-side, but scope B must not see scope A's rows.
	if got := scopeB.Get(metrics.RowsReturned); got >= int64(len(all)) {
		t.Errorf("scope B rows_returned = %d, not isolated from scope A (%d)", got, len(all))
	}
	clusterDelta := c.Meter.Get(metrics.RowsReturned) - clusterBefore
	if want := int64(len(all)) + scopeB.Get(metrics.RowsReturned); clusterDelta != want {
		t.Errorf("cluster rows_returned delta = %d, want %d (sum of both queries)", clusterDelta, want)
	}
}
