package hbase

import (
	"bytes"
	"fmt"
	"strings"
)

// CompareOp is the comparison a value filter applies.
type CompareOp int

// Comparison operators, matching HBase's CompareFilter.CompareOp.
const (
	CmpEqual CompareOp = iota
	CmpNotEqual
	CmpLess
	CmpLessOrEqual
	CmpGreater
	CmpGreaterOrEqual
)

// String renders the operator.
func (op CompareOp) String() string {
	switch op {
	case CmpEqual:
		return "="
	case CmpNotEqual:
		return "!="
	case CmpLess:
		return "<"
	case CmpLessOrEqual:
		return "<="
	case CmpGreater:
		return ">"
	case CmpGreaterOrEqual:
		return ">="
	}
	return "?"
}

func (op CompareOp) eval(cmp int) bool {
	switch op {
	case CmpEqual:
		return cmp == 0
	case CmpNotEqual:
		return cmp != 0
	case CmpLess:
		return cmp < 0
	case CmpLessOrEqual:
		return cmp <= 0
	case CmpGreater:
		return cmp > 0
	case CmpGreaterOrEqual:
		return cmp >= 0
	}
	return false
}

// Filter is evaluated inside the region server against an assembled row.
// Rows for which Match returns false are dropped before they reach the
// wire — the mechanism behind SHC's predicate pushdown (paper §VI-A.3).
type Filter interface {
	// Match reports whether the row should be returned.
	Match(r *Result) bool
	// WireSize approximates the serialized size of the filter, charged on
	// the request.
	WireSize() int
	// String renders the filter for plans and debugging.
	String() string
}

// SingleColumnValueFilter keeps rows whose newest value in Family:Qualifier
// satisfies Op against Value. Rows missing the column are dropped (matching
// HBase with filterIfMissing=true, the setting SHC uses).
type SingleColumnValueFilter struct {
	Family    string
	Qualifier string
	Op        CompareOp
	Value     []byte
}

// Match implements Filter.
func (f *SingleColumnValueFilter) Match(r *Result) bool {
	v, ok := r.Value(f.Family, f.Qualifier)
	if !ok {
		return false
	}
	return f.Op.eval(bytes.Compare(v, f.Value))
}

// WireSize implements Filter.
func (f *SingleColumnValueFilter) WireSize() int {
	return len(f.Family) + len(f.Qualifier) + 1 + len(f.Value)
}

// String implements Filter.
func (f *SingleColumnValueFilter) String() string {
	return fmt.Sprintf("%s:%s %s 0x%x", f.Family, f.Qualifier, f.Op, f.Value)
}

// RowPrefixFilter keeps rows whose key begins with Prefix.
type RowPrefixFilter struct {
	Prefix []byte
}

// Match implements Filter.
func (f *RowPrefixFilter) Match(r *Result) bool { return bytes.HasPrefix(r.Row, f.Prefix) }

// WireSize implements Filter.
func (f *RowPrefixFilter) WireSize() int { return len(f.Prefix) + 1 }

// String implements Filter.
func (f *RowPrefixFilter) String() string { return fmt.Sprintf("rowprefix(0x%x)", f.Prefix) }

// FilterListOp combines child filters.
type FilterListOp int

// Filter list combinators.
const (
	MustPassAll FilterListOp = iota // AND
	MustPassOne                     // OR
)

// FilterList combines child filters with AND/OR semantics, mirroring
// HBase's FilterList.
type FilterList struct {
	Op      FilterListOp
	Filters []Filter
}

// Match implements Filter.
func (f *FilterList) Match(r *Result) bool {
	if f.Op == MustPassAll {
		for _, c := range f.Filters {
			if !c.Match(r) {
				return false
			}
		}
		return true
	}
	for _, c := range f.Filters {
		if c.Match(r) {
			return true
		}
	}
	return len(f.Filters) == 0
}

// WireSize implements Filter.
func (f *FilterList) WireSize() int {
	n := 1
	for _, c := range f.Filters {
		n += c.WireSize()
	}
	return n
}

// String implements Filter.
func (f *FilterList) String() string {
	op := " AND "
	if f.Op == MustPassOne {
		op = " OR "
	}
	parts := make([]string, len(f.Filters))
	for i, c := range f.Filters {
		parts[i] = c.String()
	}
	return "(" + strings.Join(parts, op) + ")"
}
