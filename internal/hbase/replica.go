package hbase

import (
	"strconv"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/wal"
)

// regionKey is the key a server's region map indexes a copy under: the bare
// region ID for the primary (replica 0), an "#r<n>" suffixed form for
// secondary copies, so one server can host a primary and an unrelated
// region's replica without collisions — and so every pre-replica code path
// that looks up by bare ID keeps resolving exactly the primary.
func regionKey(id string, replica int) string {
	if replica == 0 {
		return id
	}
	return id + "#r" + strconv.Itoa(replica)
}

// shippedEntry is one WAL entry in flight to a secondary copy, stamped with
// its enqueue time so the apply loop can report replication lag.
type shippedEntry struct {
	e  wal.Entry
	at time.Time
}

// replicator fans a primary's acknowledged WAL entries out to its secondary
// copies. It is installed as the WAL's append observer, and because a
// reassigned or promoted primary shares the same log object (Reopen,
// Promote), the subscription survives every ownership change without
// re-wiring. Shipping is modeled as the asynchronous push HBase's
// RegionReplicaReplicationEndpoint performs: entries are delivered in
// sequence order (appends serialize on the primary's region lock) and each
// copy applies them independently, possibly behind the primary — which is
// exactly the staleness timeline reads tolerate.
type replicator struct {
	mu       sync.Mutex
	replicas []*Region
}

func (rp *replicator) ship(e wal.Entry) {
	rp.mu.Lock()
	reps := append([]*Region(nil), rp.replicas...)
	rp.mu.Unlock()
	for _, rep := range reps {
		rep.enqueueShipped(e)
	}
}

func (rp *replicator) attach(rep *Region) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	rp.replicas = append(rp.replicas, rep)
}

func (rp *replicator) detach(rep *Region) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	for i, r := range rp.replicas {
		if r == rep {
			rp.replicas = append(rp.replicas[:i], rp.replicas[i+1:]...)
			return
		}
	}
}

// NewReplica creates, bootstraps, and attaches secondary copy #id of r, all
// under one hold of the primary's lock so the handoff is exact: the copy
// receives a snapshot of every cell currently visible, its applied
// high-water mark is set to the last sequence the log has assigned, and it
// is subscribed to the primary's replicator — no entry between snapshot and
// subscription is lost or double-applied (later ships below the mark are
// skipped).
func (r *Region) NewReplica(id int) *Region {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.repl == nil {
		r.repl = &replicator{}
		r.log.SetObserver(r.repl.ship)
	}
	info := r.info
	info.Replica = id
	info.ReplicaHosts = nil
	info.Host = ""
	rep := &Region{
		info:       info,
		desc:       r.desc,
		cfg:        r.cfg,
		meter:      r.meter,
		log:        r.log,
		viewGen:    -1,
		repl:       r.repl,
		appliedSeq: r.log.NextSeq() - 1,
		caughtUpAt: time.Now(),
	}
	if cells := r.allCellsLocked(nil, nil); len(cells) > 0 {
		rep.files = []*storeFile{newStoreFile(append([]Cell(nil), cells...))}
	}
	r.repl.attach(rep)
	return rep
}

// IsReplica reports whether this copy is a secondary.
func (r *Region) IsReplica() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.info.Replica > 0
}

// AppliedSeq reports the highest WAL sequence this copy has applied — the
// freshness signal the master uses to pick a promotion candidate.
func (r *Region) AppliedSeq() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.appliedSeq
}

// StalenessBound reports how far behind the primary this secondary copy may
// be: the wall-clock time since it last drained its shipped queue to
// parity. Every timeline read served by a replica carries this bound, so a
// stale result is never silently stale.
func (r *Region) StalenessBound() time.Duration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.info.Replica == 0 || r.caughtUpAt.IsZero() {
		return 0
	}
	d := time.Since(r.caughtUpAt)
	if d < 0 {
		d = 0
	}
	return d
}

// enqueueShipped receives one acked WAL entry from the primary's replicator
// and, unless the apply loop is held, applies it immediately. Entries at or
// below the applied high-water mark (already covered by the bootstrap
// snapshot) are dropped.
func (r *Region) enqueueShipped(e wal.Entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// A promoted copy is no longer a secondary: its own appends already
	// land in the MemStore, so a ship that raced with detachment must drop.
	if r.info.Replica == 0 || e.Seq <= r.appliedSeq {
		return
	}
	r.pending = append(r.pending, shippedEntry{e: e, at: time.Now()})
	if !r.applyHold {
		r.applyPendingLocked(len(r.pending))
	}
}

// locked; applies up to n pending entries in sequence order, returning how
// many were applied. Meters per-entry replication lag and refreshes the
// caught-up timestamp when the queue drains.
func (r *Region) applyPendingLocked(n int) int {
	applied := 0
	for applied < n && len(r.pending) > 0 {
		se := r.pending[0]
		r.pending = r.pending[1:]
		if se.e.Seq <= r.appliedSeq {
			continue
		}
		typ := TypePut
		if se.e.Kind == wal.KindDelete {
			typ = TypeDelete
		}
		r.mem.add(Cell{Row: se.e.Row, Family: se.e.Family, Qualifier: se.e.Qualifier, Timestamp: se.e.Timestamp, Type: typ, Value: se.e.Value})
		// Track the batch stamps the primary applied: if this copy is later
		// promoted, its dedup window must cover the acked history it serves.
		if se.e.Writer != "" {
			r.dedupLocked().mark(se.e.Writer, se.e.Batch, 0)
		}
		r.gen++
		r.appliedSeq = se.e.Seq
		r.meter.Observe(metrics.HistReplicaLag, time.Since(se.at))
		applied++
	}
	if len(r.pending) == 0 {
		r.caughtUpAt = time.Now()
	}
	return applied
}

// HoldApply freezes (or resumes) the copy's apply loop — the deterministic
// replication-lag injector chaos tests use. While held, shipped entries
// queue without applying and the staleness bound grows; releasing the hold
// drains the queue.
func (r *Region) HoldApply(hold bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applyHold = hold
	if !hold {
		r.applyPendingLocked(len(r.pending))
	}
}

// ApplyPending applies up to n held entries (a partial drain, for tests
// that need a replica frozen mid-history) and reports how many applied.
func (r *Region) ApplyPending(n int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.applyPendingLocked(n)
}

// Promote turns this secondary copy into the region's primary at newEpoch:
// every shipped entry still pending applies, the shared WAL is fenced so a
// recovering zombie primary's writes die exactly as on a crash reassign,
// and any log tail the copy never received is replayed directly. Because
// only acknowledged writes ever reach the log, the promoted copy's history
// is precisely what the old primary acked — nothing more, nothing torn.
// Unlike the replica-free Reopen path there is no MemStore to rebuild from
// scratch: the copy was already serving, so promotion is O(pending tail),
// which is the whole availability win.
func (r *Region) Promote(newEpoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.applyHold = false
	r.applyPendingLocked(len(r.pending))
	r.log.Fence(newEpoch)
	_ = r.log.Replay(r.appliedSeq+1, func(e wal.Entry) error {
		if e.Epoch > newEpoch {
			return nil
		}
		typ := TypePut
		if e.Kind == wal.KindDelete {
			typ = TypeDelete
		}
		r.mem.add(Cell{Row: e.Row, Family: e.Family, Qualifier: e.Qualifier, Timestamp: e.Timestamp, Type: typ, Value: e.Value})
		if e.Writer != "" {
			r.dedupLocked().mark(e.Writer, e.Batch, 0)
		}
		r.gen++
		r.appliedSeq = e.Seq
		r.meter.Inc(metrics.WALEntriesReplayed)
		return nil
	})
	r.info.Epoch = newEpoch
	r.info.Replica = 0
	r.info.ReplicaHosts = nil
	r.caughtUpAt = time.Time{}
	r.pending = nil
	if r.repl != nil {
		r.repl.detach(r)
	}
}
