// Package hbase implements the distributed, column-oriented key-value store
// SHC runs against: byte-array cells addressed by the four HBase coordinates
// (row key, column family, column qualifier, version), regions covering
// sorted row-key ranges, region servers hosting regions, a master doing
// assignment, and a client speaking Put/Get/Scan/BulkGet over the simulated
// RPC transport. Server-side filters, timestamp/version reads, MemStore
// flushes, store-file compaction, region splits, and WAL-based recovery are
// all modeled, because SHC's optimizations (partition pruning, predicate
// pushdown, locality) are only meaningful against that storage contract.
package hbase

import (
	"bytes"
	"fmt"
)

// CellType discriminates live cells from delete tombstones.
type CellType uint8

// Cell types.
const (
	TypePut CellType = iota + 1
	TypeDelete
)

// Cell is one versioned value at (row, family, qualifier, timestamp) —
// HBase's fundamental storage unit. Values are opaque byte arrays; typing
// lives entirely in the SHC catalog layer.
type Cell struct {
	Row       []byte
	Family    string
	Qualifier string
	Timestamp int64
	Type      CellType
	Value     []byte
}

// WireSize reports the bytes this cell occupies on the simulated wire.
func (c *Cell) WireSize() int {
	return len(c.Row) + len(c.Family) + len(c.Qualifier) + 8 + 1 + len(c.Value)
}

// String renders the cell for debugging.
func (c *Cell) String() string {
	t := "put"
	if c.Type == TypeDelete {
		t = "del"
	}
	return fmt.Sprintf("%q/%s:%s/%d/%s=%q", c.Row, c.Family, c.Qualifier, c.Timestamp, t, c.Value)
}

// CompareCells orders cells the way HBase store files do: by row, then
// family, then qualifier, then timestamp descending (newest first), with
// deletes sorting before puts at the same timestamp so tombstones are seen
// first during merges.
func CompareCells(a, b *Cell) int {
	if c := bytes.Compare(a.Row, b.Row); c != 0 {
		return c
	}
	if a.Family != b.Family {
		if a.Family < b.Family {
			return -1
		}
		return 1
	}
	if a.Qualifier != b.Qualifier {
		if a.Qualifier < b.Qualifier {
			return -1
		}
		return 1
	}
	switch {
	case a.Timestamp > b.Timestamp:
		return -1
	case a.Timestamp < b.Timestamp:
		return 1
	}
	// Tombstone first.
	switch {
	case a.Type == b.Type:
		return 0
	case a.Type == TypeDelete:
		return -1
	default:
		return 1
	}
}

// sameColumn reports whether two cells name the same (row, family,
// qualifier) coordinate, ignoring version.
func sameColumn(a, b *Cell) bool {
	return bytes.Equal(a.Row, b.Row) && a.Family == b.Family && a.Qualifier == b.Qualifier
}

// Result holds the cells returned for one row, ordered by (family,
// qualifier, timestamp desc).
type Result struct {
	Row   []byte
	Cells []Cell
}

// WireSize reports the bytes this result occupies on the simulated wire.
func (r *Result) WireSize() int {
	n := len(r.Row)
	for i := range r.Cells {
		n += r.Cells[i].WireSize()
	}
	return n
}

// Value returns the newest value of family:qualifier in the result and
// whether it is present.
func (r *Result) Value(family, qualifier string) ([]byte, bool) {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Family == family && c.Qualifier == qualifier {
			return c.Value, true
		}
	}
	return nil, false
}

// Empty reports whether the result carries no cells.
func (r *Result) Empty() bool { return len(r.Cells) == 0 }

// TimeRange bounds the versions a read considers: Min <= ts < Max.
// The zero value means "unbounded".
type TimeRange struct {
	Min, Max int64
}

// Unbounded reports whether the range admits every timestamp.
func (tr TimeRange) Unbounded() bool { return tr.Min == 0 && tr.Max == 0 }

// Contains reports whether ts falls inside the range.
func (tr TimeRange) Contains(ts int64) bool {
	if tr.Unbounded() {
		return true
	}
	max := tr.Max
	if max == 0 {
		max = int64(^uint64(0) >> 1)
	}
	return ts >= tr.Min && ts < max
}

// Column names one family:qualifier projection target.
type Column struct {
	Family    string
	Qualifier string
}

// String renders family:qualifier.
func (c Column) String() string { return c.Family + ":" + c.Qualifier }
