package hbase

// dedupWindow records, per writer, which sequence-stamped batches a region
// has applied, so a retried multi-put whose ack was lost is acknowledged
// again without re-applying — the server half of the exactly-once contract.
//
// Durability mirrors the data it guards: the live window is rebuilt on crash
// recovery from the flush-time snapshot (carried with the store files, the
// way HBase persists max-seq-id metadata) plus the batch stamps on replayed
// WAL entries, so the window covers exactly the acknowledged history. A
// split copies the parent's window to both daughters: a regrouped retry's
// pieces are row-disjoint, so per-daughter dedup on the original stamp
// still applies each cell at most once.
type dedupWindow struct {
	writers map[string]*writerWindow
}

// writerWindow is one writer's applied-batch set with its high-water mark.
type writerWindow struct {
	max  uint64
	seen map[uint64]struct{}
}

// dedupWindowSize bounds the per-writer set: stamps more than this far below
// the writer's high-water mark are pruned. A client retries a batch long
// before it falls this far behind its own newest sequence, so pruning never
// un-remembers a batch that could still be retried.
const dedupWindowSize = 4096

func newDedupWindow() *dedupWindow {
	return &dedupWindow{writers: make(map[string]*writerWindow)}
}

func (d *dedupWindow) has(writer string, seq uint64) bool {
	if d == nil {
		return false
	}
	w := d.writers[writer]
	if w == nil {
		return false
	}
	_, ok := w.seen[seq]
	return ok
}

func (d *dedupWindow) mark(writer string, seq uint64) {
	if writer == "" {
		return
	}
	w := d.writers[writer]
	if w == nil {
		w = &writerWindow{seen: make(map[uint64]struct{})}
		d.writers[writer] = w
	}
	w.seen[seq] = struct{}{}
	if seq > w.max {
		w.max = seq
	}
	if len(w.seen) > dedupWindowSize {
		for s := range w.seen {
			if s+dedupWindowSize < w.max {
				delete(w.seen, s)
			}
		}
	}
}

func (d *dedupWindow) clone() *dedupWindow {
	if d == nil {
		return newDedupWindow()
	}
	nd := newDedupWindow()
	for wr, w := range d.writers {
		nw := &writerWindow{max: w.max, seen: make(map[uint64]struct{}, len(w.seen))}
		for s := range w.seen {
			nw.seen[s] = struct{}{}
		}
		nd.writers[wr] = nw
	}
	return nd
}
