package hbase

// dedupWindow records, per writer, which sequence-stamped batches a region
// has applied, so a retried multi-put whose ack was lost is acknowledged
// again without re-applying — the server half of the exactly-once contract.
//
// Durability mirrors the data it guards: the live window is rebuilt on crash
// recovery from the flush-time snapshot (carried with the store files, the
// way HBase persists max-seq-id metadata) plus the batch stamps on replayed
// WAL entries, so the window covers exactly the acknowledged history. A
// split copies the parent's window to both daughters: a regrouped retry's
// pieces are row-disjoint, so per-daughter dedup on the original stamp
// still applies each cell at most once.
type dedupWindow struct {
	writers map[string]*writerWindow
}

// writerWindow is one writer's applied-batch set with its high- and
// low-water marks. low is the writer's own declaration — carried on every
// batch it sends — that all sequences below it are resolved (acked, or
// abandoned with the error surfaced) and will never be retried. Stamps below
// low are pruned from seen, but has still answers true for them: pruning
// collapses history into the watermark instead of forgetting it, so the
// window stays exact for the writer's entire sequence space while holding
// only the in-flight tail in memory.
type writerWindow struct {
	low  uint64
	max  uint64
	seen map[uint64]struct{}
}

func newDedupWindow() *dedupWindow {
	return &dedupWindow{writers: make(map[string]*writerWindow)}
}

func (d *dedupWindow) has(writer string, seq uint64) bool {
	if d == nil {
		return false
	}
	w := d.writers[writer]
	if w == nil {
		return false
	}
	if seq < w.low {
		// The writer declared every sequence below its low-water mark
		// resolved; a retry that still shows up must deduplicate, not
		// re-apply.
		return true
	}
	_, ok := w.seen[seq]
	return ok
}

// mark records an applied stamp. lowWater is the writer's low-water mark as
// claimed on the batch (0 when unknown, e.g. WAL replay or replica shipping):
// it advances the window monotonically and prunes stamps that fall below it.
// Unlike a fixed-size window, pruning is driven only by the writer's own
// resolved-up-to claim, so a retried batch can never out-age its stamp no
// matter how far it trails the writer's newest sequence.
func (d *dedupWindow) mark(writer string, seq, lowWater uint64) {
	if writer == "" {
		return
	}
	w := d.writers[writer]
	if w == nil {
		w = &writerWindow{seen: make(map[uint64]struct{})}
		d.writers[writer] = w
	}
	w.seen[seq] = struct{}{}
	if seq > w.max {
		w.max = seq
	}
	if lowWater > w.low {
		w.low = lowWater
		for s := range w.seen {
			if s < w.low {
				delete(w.seen, s)
			}
		}
	}
}

func (d *dedupWindow) clone() *dedupWindow {
	if d == nil {
		return newDedupWindow()
	}
	nd := newDedupWindow()
	for wr, w := range d.writers {
		nw := &writerWindow{low: w.low, max: w.max, seen: make(map[uint64]struct{}, len(w.seen))}
		for s := range w.seen {
			nw.seen[s] = struct{}{}
		}
		nd.writers[wr] = nw
	}
	return nd
}
