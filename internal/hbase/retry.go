package hbase

import (
	"errors"
	"time"
)

// RetryPolicy governs how the client retries operations that fail
// recoverably: stale region locations (ErrNotServing) and unreachable or
// killed hosts (rpc.ErrHostDown, rpc.ErrConnClosed). Each retry first
// invalidates the relevant meta cache, then backs off exponentially with
// jitter. The zero value means "use defaults".
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation, first included
	// (default 4). Retries stop — and the last error surfaces — once it is
	// reached, so operations against a permanently dead cluster still fail.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 50ms).
	MaxBackoff time.Duration
	// Deadline bounds the overall time an operation may spend across
	// attempts; 0 means attempts alone bound it.
	Deadline time.Duration
	// JitterSeed seeds the deterministic jitter RNG (default 1), so a fixed
	// policy, seed, and failure schedule back off identically across runs.
	JitterSeed int64
	// Sleep performs the backoff; tests inject a recorder. Default
	// time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff computes the pre-jitter delay before retry attempt n (1-based):
// BaseBackoff doubling per attempt, capped at MaxBackoff.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// IsRetryable reports whether err is worth retrying against refreshed meta:
// the region is served elsewhere (split, balance, failover reassignment) or
// its host stopped answering and the master may be reassigning it.
func IsRetryable(err error) bool {
	return errors.Is(err, ErrNotServing) || isUnreachable(err)
}
