package hbase

import (
	"context"
	"errors"
	"time"

	"github.com/shc-go/shc/internal/rpc"
)

// RetryPolicy governs how the client retries operations that fail
// recoverably: stale region locations (ErrNotServing), unreachable or
// killed hosts (rpc.ErrHostDown, rpc.ErrConnClosed), and saturated servers
// shedding load (ErrServerBusy). Each retry first invalidates the relevant
// meta cache (except for ErrServerBusy — the locations are still right,
// the server is just overloaded), then backs off exponentially with
// jitter. The zero value means "use defaults".
type RetryPolicy struct {
	// MaxAttempts is the total tries per operation, first included
	// (default 4). Retries stop — and the last error surfaces — once it is
	// reached, so operations against a permanently dead cluster still fail.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 50ms).
	MaxBackoff time.Duration
	// Deadline bounds the overall time an operation may spend across
	// attempts; 0 means attempts alone bound it.
	Deadline time.Duration
	// JitterSeed seeds the deterministic jitter RNG (default 1), so a fixed
	// policy, seed, and failure schedule back off identically across runs.
	JitterSeed int64
	// Sleep performs the backoff; tests inject a recorder. When nil the
	// policy sleeps with a context-aware timer, so a cancelled caller never
	// waits out a backoff.
	Sleep func(time.Duration)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 2 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 50 * time.Millisecond
	}
	if p.JitterSeed == 0 {
		p.JitterSeed = 1
	}
	return p
}

// pause sleeps d under ctx: an injected Sleep (test recorder) runs as-is,
// the default path aborts as soon as ctx is done. Returns ctx's error when
// the wait was cut short.
func (p RetryPolicy) pause(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		p.Sleep(d)
		return ctx.Err()
	}
	return rpc.SleepContext(ctx, d)
}

// backoff computes the pre-jitter delay before retry attempt n (1-based):
// BaseBackoff doubling per attempt, capped at MaxBackoff.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}

// IsRetryable reports whether err is worth retrying against refreshed meta:
// the region is served elsewhere (split, balance, failover reassignment),
// its host stopped answering and the master may be reassigning it, or the
// server shed the request under load and will accept it after a backoff.
//
// Context errors are permanent by definition: a deadline that already
// passed or a caller that cancelled cannot be helped by another attempt,
// so they surface immediately instead of burning the remaining attempts.
func IsRetryable(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return false
	}
	return errors.Is(err, ErrNotServing) || errors.Is(err, ErrFenced) || errors.Is(err, ErrServerBusy) ||
		errors.Is(err, ErrMemstoreFull) || errors.Is(err, ErrNoMaster) || isUnreachable(err)
}
