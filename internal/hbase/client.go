package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/zk"
)

// ConnPool abstracts how the client obtains connections to hosts. The
// default pool dials a fresh connection per operation and closes it after —
// the naive behaviour whose cost SHC's connection cache removes. The
// conncache package provides the caching implementation.
type ConnPool interface {
	// Acquire returns a connection to host and a release function the
	// caller must invoke when done with it.
	Acquire(host string) (*rpc.Conn, func(), error)
}

// TokenProvider supplies the security token attached to every request sent
// to a cluster. A nil provider sends empty tokens (insecure clusters).
type TokenProvider interface {
	Token(cluster string) (string, error)
}

// dialPool is the no-cache ConnPool.
type dialPool struct{ net *rpc.Network }

func (p dialPool) Acquire(host string) (*rpc.Conn, func(), error) {
	conn, err := p.net.Dial(host)
	if err != nil {
		return nil, nil, err
	}
	return conn, func() { _ = conn.Close() }, nil
}

// NewDialPool returns a ConnPool that dials per acquisition.
func NewDialPool(net *rpc.Network) ConnPool { return dialPool{net: net} }

// Client is the HBase client: it discovers the master through ZooKeeper,
// caches region locations, and issues data RPCs to region servers.
type Client struct {
	clusterName string
	net         *rpc.Network
	zkSess      *zk.Session
	pool        ConnPool
	tokens      TokenProvider
	retry       RetryPolicy

	retryMu  sync.Mutex
	retryRng *rand.Rand // jitter source, guarded by retryMu

	mu         sync.Mutex
	masterHost string
	regions    map[string][]RegionInfo // table -> sorted regions
}

// ClientOption customizes a client.
type ClientOption func(*Client)

// WithConnPool sets the connection pool (e.g. the caching pool).
func WithConnPool(p ConnPool) ClientOption { return func(c *Client) { c.pool = p } }

// WithTokenProvider sets the credential source for secure clusters.
func WithTokenProvider(tp TokenProvider) ClientOption { return func(c *Client) { c.tokens = tp } }

// WithRetryPolicy overrides the client's retry behaviour (zero fields fall
// back to defaults).
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) {
		c.retry = p.withDefaults()
		c.retryRng = rand.New(rand.NewSource(c.retry.JitterSeed))
	}
}

// NewClient opens a client against a cluster's network and ZooKeeper.
func NewClient(clusterName string, net *rpc.Network, zkSrv *zk.Server, opts ...ClientOption) *Client {
	c := &Client{
		clusterName: clusterName,
		net:         net,
		zkSess:      zkSrv.NewSession(),
		regions:     make(map[string][]RegionInfo),
		retry:       RetryPolicy{}.withDefaults(),
	}
	c.retryRng = rand.New(rand.NewSource(c.retry.JitterSeed))
	c.pool = NewDialPool(net)
	for _, o := range opts {
		o(c)
	}
	return c
}

// ClusterName identifies the cluster this client talks to (used as the
// token scope).
func (c *Client) ClusterName() string { return c.clusterName }

// Close releases the client's coordination session.
func (c *Client) Close() { c.zkSess.Close() }

func (c *Client) token() (string, error) {
	if c.tokens == nil {
		return "", nil
	}
	return c.tokens.Token(c.clusterName)
}

func (c *Client) master() (string, error) {
	c.mu.Lock()
	host := c.masterHost
	c.mu.Unlock()
	if host != "" {
		return host, nil
	}
	leader, err := c.zkSess.Leader(zkMasterPath)
	if err != nil {
		return "", err
	}
	if leader == "" {
		return "", fmt.Errorf("hbase: no master elected")
	}
	c.mu.Lock()
	c.masterHost = leader
	c.mu.Unlock()
	return leader, nil
}

// connInvalidator is implemented by pools (conncache.Cache) that can evict
// a cached connection after a transport failure.
type connInvalidator interface {
	Invalidate(host string)
}

func (c *Client) call(host, method string, req rpc.Message) (rpc.Message, error) {
	conn, release, err := c.pool.Acquire(host)
	if err != nil {
		return nil, err
	}
	resp, err := conn.Call(method, req)
	release()
	if err != nil && (errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrConnClosed)) {
		// A caching pool would otherwise keep handing out this connection
		// even after the host recovers; drop it so the next checkout
		// re-dials.
		if inv, ok := c.pool.(connInvalidator); ok {
			inv.Invalidate(host)
		}
	}
	return resp, err
}

// callMaster sends a meta request to the current master. If the cached
// master is unreachable (failover), it re-reads the leader from the
// coordination service once and retries — how clients survive the
// master-failover mechanism of the paper's §VI-B.
func (c *Client) callMaster(method string, req rpc.Message) (rpc.Message, error) {
	host, err := c.master()
	if err != nil {
		return nil, err
	}
	resp, err := c.call(host, method, req)
	if err == nil || !isUnreachable(err) {
		return resp, err
	}
	c.mu.Lock()
	c.masterHost = ""
	c.mu.Unlock()
	host, rerr := c.master()
	if rerr != nil {
		return nil, err
	}
	return c.call(host, method, req)
}

func isUnreachable(err error) bool {
	return errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrUnknownHost) || errors.Is(err, rpc.ErrConnClosed)
}

// CreateTable creates a table pre-split at splitKeys.
func (c *Client) CreateTable(desc TableDescriptor, splitKeys [][]byte) error {
	tok, err := c.token()
	if err != nil {
		return err
	}
	_, err = c.callMaster(MethodCreateTable, &CreateTableRequest{Desc: desc, SplitKeys: splitKeys, Token: tok})
	return err
}

// DeleteTable drops a table.
func (c *Client) DeleteTable(name string) error {
	tok, err := c.token()
	if err != nil {
		return err
	}
	if _, err = c.callMaster(MethodDeleteTable, &TableRequest{Table: name, Token: tok}); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.regions, name)
	c.mu.Unlock()
	return nil
}

// ListTables names every table in the cluster.
func (c *Client) ListTables() ([]string, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.callMaster(MethodListTables, &TableRequest{Token: tok})
	if err != nil {
		return nil, err
	}
	return resp.(*TableNames).Names, nil
}

// TableStats fetches a table's aggregate storage statistics from the
// master.
func (c *Client) TableStats(table string) (TableStats, error) {
	tok, err := c.token()
	if err != nil {
		return TableStats{}, err
	}
	resp, err := c.callMaster(MethodTableStats, &TableRequest{Table: table, Token: tok})
	if err != nil {
		return TableStats{}, err
	}
	return resp.(TableStats), nil
}

// Regions returns the table's regions in key order, from the client's meta
// cache when warm.
func (c *Client) Regions(table string) ([]RegionInfo, error) {
	c.mu.Lock()
	cached, ok := c.regions[table]
	c.mu.Unlock()
	if ok {
		return cached, nil
	}
	return c.refreshRegions(table)
}

func (c *Client) refreshRegions(table string) ([]RegionInfo, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.callMaster(MethodTableRegions, &TableRequest{Table: table, Token: tok})
	if err != nil {
		return nil, err
	}
	regions := resp.(*RegionList).Regions
	c.mu.Lock()
	c.regions[table] = regions
	c.mu.Unlock()
	return regions, nil
}

// InvalidateRegions drops the cached region map for table (after splits or
// balancing move regions).
func (c *Client) InvalidateRegions(table string) {
	c.mu.Lock()
	delete(c.regions, table)
	c.mu.Unlock()
}

// regionForRow locates the region containing row.
func (c *Client) regionForRow(table string, row []byte) (RegionInfo, error) {
	regions, err := c.Regions(table)
	if err != nil {
		return RegionInfo{}, err
	}
	for _, ri := range regions {
		if ri.ContainsRow(row) {
			return ri, nil
		}
	}
	return RegionInfo{}, fmt.Errorf("hbase: no region for row %x in table %q", row, table)
}

// RetryPolicy returns the client's effective (defaulted) retry policy.
func (c *Client) RetryPolicy() RetryPolicy { return c.retry }

// RetryPause sleeps the policy's jittered backoff before retry attempt n
// (1-based). Layers that implement their own resume logic on top of the
// policy — the paged Scanner, SHC's partition failover — share the client's
// seeded jitter source through it.
func (c *Client) RetryPause(attempt int) {
	c.retryMu.Lock()
	jitter := 0.5 + 0.5*c.retryRng.Float64()
	c.retryMu.Unlock()
	c.retry.Sleep(time.Duration(float64(c.retry.backoff(attempt)) * jitter))
}

// withRetry runs op under the client's retry policy. A recoverable failure
// — the region cache went stale (ErrNotServing after a split, balancer
// move, or reassignment) or the hosting server stopped answering
// (ErrHostDown/ErrConnClosed during a failover) — invalidates the cache,
// backs off, and retries with fresh locations, up to the policy's attempt
// and deadline caps. This is the NotServingRegionException dance of the
// real HBase client, extended to server death.
func (c *Client) withRetry(table string, op func() error) error {
	var start time.Time
	if c.retry.Deadline > 0 {
		start = time.Now()
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = op()
		if err == nil || !IsRetryable(err) {
			return err
		}
		if attempt >= c.retry.MaxAttempts {
			return err
		}
		if c.retry.Deadline > 0 && time.Since(start) >= c.retry.Deadline {
			return err
		}
		c.net.Meter().Inc(metrics.ClientRetries)
		c.InvalidateRegions(table)
		c.RetryPause(attempt)
	}
}

// Put writes cells, batching them per region. Stale region locations are
// refreshed and retried once.
func (c *Client) Put(table string, cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	tok, err := c.token()
	if err != nil {
		return err
	}
	return c.withRetry(table, func() error {
		batches := make(map[string]*PutRequest)
		hosts := make(map[string]string)
		for _, cell := range cells {
			ri, err := c.regionForRow(table, cell.Row)
			if err != nil {
				return err
			}
			b, ok := batches[ri.ID]
			if !ok {
				b = &PutRequest{RegionID: ri.ID, Token: tok}
				batches[ri.ID] = b
				hosts[ri.ID] = ri.Host
			}
			b.Cells = append(b.Cells, cell)
		}
		for id, b := range batches {
			if _, err := c.call(hosts[id], MethodPut, b); err != nil {
				return err
			}
		}
		return nil
	})
}

// Get reads one row.
func (c *Client) Get(table string, row []byte, cols []Column, maxVersions int, tr TimeRange) (Result, error) {
	results, err := c.BulkGet(table, [][]byte{row}, cols, maxVersions, tr)
	if err != nil {
		return Result{}, err
	}
	if len(results) == 0 {
		return Result{Row: append([]byte(nil), row...)}, nil
	}
	return results[0], nil
}

// BulkGet fetches many rows, one batched RPC per region. Stale region
// locations are refreshed and retried once.
func (c *Client) BulkGet(table string, rows [][]byte, cols []Column, maxVersions int, tr TimeRange) ([]Result, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	var out []Result
	err = c.withRetry(table, func() error {
		out = nil
		byRegion := make(map[string]*BulkGetRequest)
		hosts := make(map[string]string)
		for _, row := range rows {
			ri, err := c.regionForRow(table, row)
			if err != nil {
				return err
			}
			b, ok := byRegion[ri.ID]
			if !ok {
				b = &BulkGetRequest{RegionID: ri.ID, Columns: cols, MaxVersions: maxVersions, TimeRange: tr, Token: tok}
				byRegion[ri.ID] = b
				hosts[ri.ID] = ri.Host
			}
			b.Rows = append(b.Rows, row)
		}
		for id, b := range byRegion {
			resp, err := c.call(hosts[id], MethodBulkGet, b)
			if err != nil {
				return err
			}
			out = append(out, resp.(*ScanResponse).Results...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanTable scans the whole key range [scan.StartRow, scan.StopRow),
// visiting every overlapping region in key order and concatenating results.
// A stale region map restarts the scan once with fresh locations.
func (c *Client) ScanTable(table string, scan *Scan) ([]Result, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	var out []Result
	err = c.withRetry(table, func() error {
		out = nil
		regions, err := c.Regions(table)
		if err != nil {
			return err
		}
		for i := range regions {
			ri := &regions[i]
			if !ri.OverlapsRange(scan.StartRow, scan.StopRow) {
				continue
			}
			resp, err := c.call(ri.Host, MethodScan, &ScanRequest{RegionID: ri.ID, Scan: scan, Token: tok})
			if err != nil {
				return err
			}
			out = append(out, resp.(*ScanResponse).Results...)
			if scan.Limit > 0 && len(out) >= scan.Limit {
				out = out[:scan.Limit]
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanRegion scans exactly one region — the per-partition read path SHC's
// table-scan RDD uses.
func (c *Client) ScanRegion(ri RegionInfo, scan *Scan) ([]Result, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.call(ri.Host, MethodScan, &ScanRequest{RegionID: ri.ID, Scan: scan, Token: tok})
	if err != nil {
		return nil, err
	}
	return resp.(*ScanResponse).Results, nil
}

// FusedExec sends multiple scan/get operations for regions hosted on the
// same server in a single RPC (operators fusion). The whole fused result
// comes back in one response; callers that want bounded pages use
// FusedExecPage.
func (c *Client) FusedExec(host string, ops []ScanOp) ([]Result, error) {
	resp, err := c.FusedExecPage(host, ops, 0, FusedCursor{})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// FusedExecPage sends one page of a fused execution: the server returns at
// most batchLimit rows (0 = everything) starting at cursor, plus — via
// More/Next on the response — the cursor for the following page. Paging the
// fused RPC keeps the per-response memory on both sides bounded by the
// batch size instead of the partition's full result set.
func (c *Client) FusedExecPage(host string, ops []ScanOp, batchLimit int, cursor FusedCursor) (*ScanResponse, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.call(host, MethodFused, &FusedRequest{
		Ops: ops, BatchLimit: batchLimit, Cursor: cursor, Token: tok,
	})
	if err != nil {
		return nil, err
	}
	return resp.(*ScanResponse), nil
}

// SplitRowRange clips the half-open range [start, stop) against a region
// and reports the intersection; ok is false when they do not overlap.
func SplitRowRange(ri *RegionInfo, start, stop []byte) (lo, hi []byte, ok bool) {
	if !ri.OverlapsRange(start, stop) {
		return nil, nil, false
	}
	lo = start
	if len(ri.StartKey) > 0 && (lo == nil || bytes.Compare(ri.StartKey, lo) > 0) {
		lo = ri.StartKey
	}
	hi = stop
	if len(ri.EndKey) > 0 && (hi == nil || bytes.Compare(ri.EndKey, hi) < 0) {
		hi = ri.EndKey
	}
	return lo, hi, true
}
