package hbase

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/trace"
	"github.com/shc-go/shc/internal/zk"
)

// ConnPool abstracts how the client obtains connections to hosts. The
// default pool dials a fresh connection per operation and closes it after —
// the naive behaviour whose cost SHC's connection cache removes. The
// conncache package provides the caching implementation.
type ConnPool interface {
	// Acquire returns a connection to host and a release function the
	// caller must invoke when done with it. ctx bounds connection
	// establishment; pooled implementations may ignore it on a cache hit.
	Acquire(ctx context.Context, host string) (*rpc.Conn, func(), error)
}

// HostBreaker is the per-host circuit breaker the client consults before
// each call (conncache.Breaker implements it). Allow gates the call; Record
// reports its outcome, where transportFailure is true only for
// transport-level errors — application errors (stale region, shed request)
// say nothing about host health.
type HostBreaker interface {
	Allow(host string) bool
	Record(host string, transportFailure bool)
}

// TokenProvider supplies the security token attached to every request sent
// to a cluster. A nil provider sends empty tokens (insecure clusters).
type TokenProvider interface {
	Token(cluster string) (string, error)
}

// dialPool is the no-cache ConnPool.
type dialPool struct{ net *rpc.Network }

func (p dialPool) Acquire(ctx context.Context, host string) (*rpc.Conn, func(), error) {
	conn, err := p.net.DialContext(ctx, host)
	if err != nil {
		return nil, nil, err
	}
	return conn, func() { _ = conn.Close() }, nil
}

// NewDialPool returns a ConnPool that dials per acquisition.
func NewDialPool(net *rpc.Network) ConnPool { return dialPool{net: net} }

// Client is the HBase client: it discovers the master through ZooKeeper,
// caches region locations, and issues data RPCs to region servers.
type Client struct {
	clusterName string
	net         *rpc.Network
	zkSess      *zk.Session
	pool        ConnPool
	tokens      TokenProvider
	retry       RetryPolicy
	breaker     HostBreaker
	hedgeDelay  time.Duration

	retryMu  sync.Mutex
	retryRng *rand.Rand // jitter source, guarded by retryMu

	mu         sync.Mutex
	masterHost string
	regions    map[string][]RegionInfo // table -> sorted regions
	// stale holds the last-known region list of each invalidated table
	// until its next refresh, so the refresh can spot hosts that no longer
	// serve any region and evict their pooled connections too — a cached
	// connection to a fully-drained host would otherwise outlive the
	// routing information that justified it.
	stale map[string][]RegionInfo
}

// ClientOption customizes a client.
type ClientOption func(*Client)

// WithConnPool sets the connection pool (e.g. the caching pool).
func WithConnPool(p ConnPool) ClientOption { return func(c *Client) { c.pool = p } }

// WithTokenProvider sets the credential source for secure clusters.
func WithTokenProvider(tp TokenProvider) ClientOption { return func(c *Client) { c.tokens = tp } }

// WithRetryPolicy overrides the client's retry behaviour (zero fields fall
// back to defaults).
func WithRetryPolicy(p RetryPolicy) ClientOption {
	return func(c *Client) {
		c.retry = p.withDefaults()
		c.retryRng = rand.New(rand.NewSource(c.retry.JitterSeed))
	}
}

// WithBreaker installs a per-host circuit breaker in front of every call.
// While a host's circuit is open, calls to it fail fast with an error
// wrapping rpc.ErrHostDown, so the existing retry/failover machinery treats
// the host as unreachable without spending a connection or an RPC on it.
func WithBreaker(b HostBreaker) ClientOption { return func(c *Client) { c.breaker = b } }

// WithHedgedReads makes read-only region RPCs (scans, gets, fused pages)
// fire a speculative duplicate when the first try is still unanswered after
// delay. The first response wins; the loser's context is cancelled. Writes
// never hedge. delay <= 0 disables hedging.
func WithHedgedReads(delay time.Duration) ClientOption {
	return func(c *Client) { c.hedgeDelay = delay }
}

// NewClient opens a client against a cluster's network and ZooKeeper.
func NewClient(clusterName string, net *rpc.Network, zkSrv *zk.Server, opts ...ClientOption) *Client {
	c := &Client{
		clusterName: clusterName,
		net:         net,
		zkSess:      zkSrv.NewSession(),
		regions:     make(map[string][]RegionInfo),
		stale:       make(map[string][]RegionInfo),
		retry:       RetryPolicy{}.withDefaults(),
	}
	c.retryRng = rand.New(rand.NewSource(c.retry.JitterSeed))
	c.pool = NewDialPool(net)
	for _, o := range opts {
		o(c)
	}
	return c
}

// ClusterName identifies the cluster this client talks to (used as the
// token scope).
func (c *Client) ClusterName() string { return c.clusterName }

// Close releases the client's coordination session.
func (c *Client) Close() { c.zkSess.Close() }

func (c *Client) token() (string, error) {
	if c.tokens == nil {
		return "", nil
	}
	return c.tokens.Token(c.clusterName)
}

// ErrNoMaster reports that the coordination service currently knows no
// elected master — the masterless window between a leader's death and a
// standby's takeover. It is retryable: the window closes as soon as a
// standby wins the election.
var ErrNoMaster = errors.New("hbase: no master elected")

func (c *Client) master() (string, error) {
	c.mu.Lock()
	host := c.masterHost
	c.mu.Unlock()
	if host != "" {
		return host, nil
	}
	leader, err := c.zkSess.Leader(zkMasterPath)
	if err != nil {
		return "", err
	}
	if leader == "" {
		return "", ErrNoMaster
	}
	c.mu.Lock()
	c.masterHost = leader
	c.mu.Unlock()
	return leader, nil
}

// connInvalidator is implemented by pools (conncache.Cache) that can evict
// a cached connection after a transport failure.
type connInvalidator interface {
	Invalidate(host string)
}

// recordBreaker reports a call outcome to the breaker. Context errors are
// skipped entirely: a cancelled caller (deadline, hedged-read loser) says
// nothing about the host, and counting it either way would both poison the
// failure count and mask real streaks.
func (c *Client) recordBreaker(host string, err error) {
	if c.breaker == nil {
		return
	}
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	transport := err != nil && (errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrConnClosed))
	c.breaker.Record(host, transport)
}

func (c *Client) call(ctx context.Context, host, method string, req rpc.Message) (rpc.Message, error) {
	if c.breaker != nil && !c.breaker.Allow(host) {
		// Fail fast without touching the wire. Wrapping ErrHostDown routes
		// the error through the same retry/failover paths a real outage
		// takes; the breaker's cooldown governs when probes resume.
		return nil, fmt.Errorf("%w: %q (circuit open)", rpc.ErrHostDown, host)
	}
	conn, release, err := c.pool.Acquire(ctx, host)
	if err != nil {
		c.recordBreaker(host, err)
		return nil, err
	}
	resp, err := conn.CallContext(ctx, method, req)
	release()
	if err != nil && (errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrConnClosed)) {
		// A caching pool would otherwise keep handing out this connection
		// even after the host recovers; drop it so the next checkout
		// re-dials.
		if inv, ok := c.pool.(connInvalidator); ok {
			inv.Invalidate(host)
		}
	}
	c.recordBreaker(host, err)
	return resp, err
}

// callRead issues a read-only region RPC with optional hedging: when the
// first try is still unanswered after the hedge delay, a speculative
// duplicate fires and the first response wins; the loser's context is
// cancelled so it abandons queues, latency sleeps, and fused scans
// promptly. Reads are idempotent, so the duplicate is safe — writes go
// through call directly.
func (c *Client) callRead(ctx context.Context, host, method string, req rpc.Message) (rpc.Message, error) {
	if c.hedgeDelay <= 0 {
		return c.call(ctx, host, method, req)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		resp   rpc.Message
		err    error
		hedged bool
	}
	meter := metrics.Scoped(ctx, c.net.Meter())
	// Buffered to both launches: the loser's send never blocks, so its
	// goroutine exits even though nobody reads the second result.
	ch := make(chan result, 2)
	// Each attempt gets its own span so the waterfall shows the race: the
	// winner is tagged, the loser is marked cancelled — a lost hedge is an
	// abandoned duplicate, not a failure and never a win.
	launch := func(hedged bool) *trace.Span {
		name := "hedge.primary"
		if hedged {
			name = "hedge.speculative"
		}
		lctx, sp := trace.StartSpan(hctx, name)
		go func() {
			resp, err := c.call(lctx, host, method, req)
			sp.SetError(err)
			sp.End()
			ch <- result{resp: resp, err: err, hedged: hedged}
		}()
		return sp
	}
	primarySp := launch(false)
	var hedgeSp *trace.Span
	timer := time.NewTimer(c.hedgeDelay)
	defer timer.Stop()
	outstanding, hedgeFired := 1, false
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedgeFired {
				hedgeFired = true
				outstanding++
				meter.Inc(metrics.RPCHedges)
				hedgeSp = launch(true)
			}
		case r := <-ch:
			outstanding--
			if r.err == nil {
				if hedgeFired {
					winner, loser := primarySp, hedgeSp
					if r.hedged {
						winner, loser = hedgeSp, primarySp
					}
					winner.SetTag("hedge", "won")
					loser.MarkCancelled()
				}
				if r.hedged {
					meter.Inc(metrics.RPCHedgeWins)
				}
				return r.resp, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				// Primary failed before the hedge fired (errors return
				// immediately — a failure is not a straggler), or both
				// attempts failed.
				return nil, firstErr
			}
		}
	}
}

// ReadFreshness reports whether any part of a read was served by a
// secondary replica (a timeline failover) and, if so, the largest explicit
// staleness bound the serving replicas attached.
type ReadFreshness struct {
	Stale   bool
	BoundMs int64
}

func (f *ReadFreshness) absorb(resp *ScanResponse) {
	if f == nil || !resp.Stale {
		return
	}
	f.Stale = true
	if resp.StalenessMs > f.BoundMs {
		f.BoundMs = resp.StalenessMs
	}
}

// readRegion issues one read RPC against a region's primary and — when the
// context asks for timeline consistency — fails over to the region's
// secondary replicas within the same round if the primary is unreachable or
// no longer serving. This is the availability contract replicas exist for:
// a crashed primary costs one failed RPC, not a heartbeat-plus-WAL-replay
// wait. build stamps the request for the copy being addressed (0 =
// primary); replica responses come back tagged stale with their staleness
// bound. Strong-consistency callers never take the failover branch, so
// their behaviour is byte-identical to the replica-free client.
func (c *Client) readRegion(ctx context.Context, ri *RegionInfo, method string, build func(replica int) rpc.Message) (*ScanResponse, error) {
	resp, err := c.callRead(ctx, ri.Host, method, build(0))
	if err == nil {
		return resp.(*ScanResponse), nil
	}
	if ConsistencyFromContext(ctx) != ConsistencyTimeline || !IsRetryable(err) {
		return nil, err
	}
	meter := metrics.Scoped(ctx, c.net.Meter())
	for i, host := range ri.ReplicaHosts {
		if host == "" || host == ri.Host {
			continue
		}
		if ctx.Err() != nil {
			break
		}
		rresp, rerr := c.callRead(ctx, host, method, build(i+1))
		if rerr == nil {
			meter.Inc(metrics.ReplicaFailovers)
			trace.SpanFromContext(ctx).Annotate("timeline failover: %s replica %d on %s", ri.ID, i+1, host)
			return rresp.(*ScanResponse), nil
		}
	}
	return nil, err
}

// callMaster sends a meta request to the current master, riding out a master
// failover under the client's retry policy — how clients survive the
// master-failover mechanism of the paper's §VI-B. Two failure shapes recur
// until a standby finishes taking over: the cached leader stops answering
// (invalidate it, re-read the election, count a rediscovery), and the
// election is empty (ErrNoMaster — back off and re-read, instead of failing
// the caller during a window that closes by itself). Non-transient errors
// return immediately.
func (c *Client) callMaster(ctx context.Context, method string, req rpc.Message) (rpc.Message, error) {
	meter := metrics.Scoped(ctx, c.net.Meter())
	var err error
	for attempt := 1; ; attempt++ {
		var host string
		host, err = c.master()
		if err == nil {
			var resp rpc.Message
			resp, err = c.call(ctx, host, method, req)
			if err == nil || !isUnreachable(err) {
				return resp, err
			}
			// The leader we knew stopped answering: drop the cached host so
			// the next attempt re-reads the election from the coordination
			// service (a rediscovery).
			c.mu.Lock()
			if c.masterHost == host {
				c.masterHost = ""
			}
			c.mu.Unlock()
		} else if !errors.Is(err, ErrNoMaster) {
			return nil, err
		}
		if attempt >= c.retry.MaxAttempts {
			return nil, err
		}
		meter.Inc(metrics.MasterRediscoveries)
		if perr := c.RetryPause(ctx, attempt); perr != nil {
			return nil, perr
		}
	}
}

func isUnreachable(err error) bool {
	return errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrUnknownHost) || errors.Is(err, rpc.ErrConnClosed)
}

// CreateTable creates a table pre-split at splitKeys.
func (c *Client) CreateTable(desc TableDescriptor, splitKeys [][]byte) error {
	tok, err := c.token()
	if err != nil {
		return err
	}
	_, err = c.callMaster(context.Background(), MethodCreateTable, &CreateTableRequest{Desc: desc, SplitKeys: splitKeys, Token: tok})
	return err
}

// DeleteTable drops a table.
func (c *Client) DeleteTable(name string) error {
	tok, err := c.token()
	if err != nil {
		return err
	}
	if _, err = c.callMaster(context.Background(), MethodDeleteTable, &TableRequest{Table: name, Token: tok}); err != nil {
		return err
	}
	c.mu.Lock()
	delete(c.regions, name)
	c.mu.Unlock()
	return nil
}

// ListTables names every table in the cluster.
func (c *Client) ListTables() ([]string, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.callMaster(context.Background(), MethodListTables, &TableRequest{Token: tok})
	if err != nil {
		return nil, err
	}
	return resp.(*TableNames).Names, nil
}

// TableStats fetches a table's aggregate storage statistics from the
// master.
func (c *Client) TableStats(table string) (TableStats, error) {
	tok, err := c.token()
	if err != nil {
		return TableStats{}, err
	}
	resp, err := c.callMaster(context.Background(), MethodTableStats, &TableRequest{Table: table, Token: tok})
	if err != nil {
		return TableStats{}, err
	}
	return resp.(TableStats), nil
}

// Regions returns the table's regions in key order, from the client's meta
// cache when warm.
func (c *Client) Regions(table string) ([]RegionInfo, error) {
	return c.RegionsContext(context.Background(), table)
}

// RegionsContext is Regions bounded by ctx (which governs the meta RPC on a
// cache miss).
func (c *Client) RegionsContext(ctx context.Context, table string) ([]RegionInfo, error) {
	c.mu.Lock()
	cached, ok := c.regions[table]
	c.mu.Unlock()
	if ok {
		return cached, nil
	}
	return c.refreshRegions(ctx, table)
}

func (c *Client) refreshRegions(ctx context.Context, table string) ([]RegionInfo, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.callMaster(ctx, MethodTableRegions, &TableRequest{Table: table, Token: tok})
	if err != nil {
		return nil, err
	}
	regions := resp.(*RegionList).Regions
	c.mu.Lock()
	prior := c.stale[table]
	delete(c.stale, table)
	c.regions[table] = regions
	// Hosts the invalidated map pointed at that no cached table references
	// any more have no reason to stay in the connection pool: evict them so
	// the next call to a drained-and-restarted host re-dials instead of
	// reusing a connection from its previous life.
	var gone []string
	if len(prior) > 0 {
		live := make(map[string]bool)
		for _, cached := range c.regions {
			for i := range cached {
				live[cached[i].Host] = true
			}
		}
		seen := make(map[string]bool)
		for i := range prior {
			h := prior[i].Host
			if !live[h] && !seen[h] {
				seen[h] = true
				gone = append(gone, h)
			}
		}
	}
	c.mu.Unlock()
	if inv, ok := c.pool.(connInvalidator); ok {
		for _, h := range gone {
			inv.Invalidate(h)
		}
	}
	return regions, nil
}

// InvalidateRegions drops the cached region map for table (after splits,
// balancing, failover reassignment, or a drain move regions). The dropped
// list is remembered until the next refresh, which evicts pooled
// connections to hosts that turn out to serve nothing.
func (c *Client) InvalidateRegions(table string) {
	c.mu.Lock()
	if cached, ok := c.regions[table]; ok {
		c.stale[table] = cached
	}
	delete(c.regions, table)
	c.mu.Unlock()
}

// regionForRow locates the region containing row.
func (c *Client) regionForRow(ctx context.Context, table string, row []byte) (RegionInfo, error) {
	regions, err := c.RegionsContext(ctx, table)
	if err != nil {
		return RegionInfo{}, err
	}
	for _, ri := range regions {
		if ri.ContainsRow(row) {
			return ri, nil
		}
	}
	return RegionInfo{}, fmt.Errorf("hbase: no region for row %x in table %q", row, table)
}

// RetryPolicy returns the client's effective (defaulted) retry policy.
func (c *Client) RetryPolicy() RetryPolicy { return c.retry }

// RetryPause sleeps the policy's jittered backoff before retry attempt n
// (1-based), stopping early — and returning the context's error — if ctx is
// done first. Layers that implement their own resume logic on top of the
// policy — the paged Scanner, SHC's partition failover — share the client's
// seeded jitter source through it.
func (c *Client) RetryPause(ctx context.Context, attempt int) error {
	c.retryMu.Lock()
	jitter := 0.5 + 0.5*c.retryRng.Float64()
	c.retryMu.Unlock()
	return c.retry.pause(ctx, time.Duration(float64(c.retry.backoff(attempt))*jitter))
}

// withRetry runs op under the client's retry policy. A recoverable failure
// — the region cache went stale (ErrNotServing after a split, balancer
// move, or reassignment), the hosting server stopped answering
// (ErrHostDown/ErrConnClosed during a failover), or the server shed the
// request under load (ErrServerBusy) — backs off and retries, up to the
// policy's attempt and deadline caps. Stale-location and dead-host failures
// additionally invalidate the region cache first; a shed request does not,
// because the locations are still correct — the server is alive, just
// saturated. Context errors are never retried: once the caller's deadline
// passed or it cancelled, further attempts only waste a saturated cluster's
// capacity. This is the NotServingRegionException dance of the real HBase
// client, extended to server death and overload.
func (c *Client) withRetry(ctx context.Context, table string, op func() error) error {
	var start time.Time
	if c.retry.Deadline > 0 {
		start = time.Now()
	}
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = op()
		if err == nil || !IsRetryable(err) {
			return err
		}
		if attempt >= c.retry.MaxAttempts {
			return err
		}
		if c.retry.Deadline > 0 && time.Since(start) >= c.retry.Deadline {
			return err
		}
		metrics.Scoped(ctx, c.net.Meter()).Inc(metrics.ClientRetries)
		trace.SpanFromContext(ctx).Annotate("retry %d: %v", attempt, err)
		if !errors.Is(err, ErrServerBusy) && !errors.Is(err, ErrMemstoreFull) {
			c.InvalidateRegions(table)
		}
		if perr := c.RetryPause(ctx, attempt); perr != nil {
			return perr
		}
	}
}

// Put writes cells, batching them per region. Stale region locations are
// refreshed and retried once.
func (c *Client) Put(table string, cells []Cell) error {
	return c.PutContext(context.Background(), table, cells)
}

// PutContext is Put bounded by ctx. Writes never hedge: a duplicated put is
// not idempotent against versioned cells.
func (c *Client) PutContext(ctx context.Context, table string, cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	tok, err := c.token()
	if err != nil {
		return err
	}
	return c.withRetry(ctx, table, func() error {
		batches := make(map[string]*PutRequest)
		hosts := make(map[string]string)
		for _, cell := range cells {
			ri, err := c.regionForRow(ctx, table, cell.Row)
			if err != nil {
				return err
			}
			b, ok := batches[ri.ID]
			if !ok {
				b = &PutRequest{RegionID: ri.ID, Epoch: ri.Epoch, Token: tok}
				batches[ri.ID] = b
				hosts[ri.ID] = ri.Host
			}
			b.Cells = append(b.Cells, cell)
		}
		for id, b := range batches {
			if _, err := c.call(ctx, hosts[id], MethodPut, b); err != nil {
				return err
			}
		}
		return nil
	})
}

// BulkLoad installs cells directly as sorted store files, bypassing the WAL
// and MemStore — the client side of HBase's completebulkload. The client
// sorts the cells, carves them into per-region runs, and each region
// installs its run as one immutable store file. A retried run that already
// landed re-installs identical cells, which version resolution collapses, so
// the call is safe to retry after partial failure.
func (c *Client) BulkLoad(table string, cells []Cell) error {
	return c.BulkLoadContext(context.Background(), table, cells)
}

// BulkLoadContext is BulkLoad bounded by ctx.
func (c *Client) BulkLoadContext(ctx context.Context, table string, cells []Cell) error {
	if len(cells) == 0 {
		return nil
	}
	tok, err := c.token()
	if err != nil {
		return err
	}
	sorted := make([]Cell, len(cells))
	copy(sorted, cells)
	sort.SliceStable(sorted, func(i, j int) bool { return CompareCells(&sorted[i], &sorted[j]) < 0 })
	return c.withRetry(ctx, table, func() error {
		for start := 0; start < len(sorted); {
			ri, err := c.regionForRow(ctx, table, sorted[start].Row)
			if err != nil {
				return err
			}
			end := start + 1
			for end < len(sorted) && ri.ContainsRow(sorted[end].Row) {
				end++
			}
			req := &BulkLoadRequest{RegionID: ri.ID, Epoch: ri.Epoch, Cells: sorted[start:end], Token: tok}
			if _, err := c.call(ctx, ri.Host, MethodBulkLoad, req); err != nil {
				return err
			}
			start = end
		}
		return nil
	})
}

// Get reads one row.
func (c *Client) Get(table string, row []byte, cols []Column, maxVersions int, tr TimeRange) (Result, error) {
	return c.GetContext(context.Background(), table, row, cols, maxVersions, tr)
}

// GetContext is Get bounded by ctx.
func (c *Client) GetContext(ctx context.Context, table string, row []byte, cols []Column, maxVersions int, tr TimeRange) (Result, error) {
	results, err := c.BulkGetContext(ctx, table, [][]byte{row}, cols, maxVersions, tr)
	if err != nil {
		return Result{}, err
	}
	if len(results) == 0 {
		return Result{Row: append([]byte(nil), row...)}, nil
	}
	return results[0], nil
}

// BulkGet fetches many rows, one batched RPC per region. Stale region
// locations are refreshed and retried once.
func (c *Client) BulkGet(table string, rows [][]byte, cols []Column, maxVersions int, tr TimeRange) ([]Result, error) {
	return c.BulkGetContext(context.Background(), table, rows, cols, maxVersions, tr)
}

// BulkGetContext is BulkGet bounded by ctx; the per-region read RPCs hedge
// when hedged reads are enabled.
func (c *Client) BulkGetContext(ctx context.Context, table string, rows [][]byte, cols []Column, maxVersions int, tr TimeRange) ([]Result, error) {
	out, _, err := c.BulkGetFresh(ctx, table, rows, cols, maxVersions, tr)
	return out, err
}

// BulkGetFresh is BulkGetContext that additionally reports the read's
// freshness: whether any region's batch was answered by a secondary replica
// (only possible under WithConsistency(ctx, ConsistencyTimeline)) and the
// largest staleness bound attached. Strong reads always come back
// {Stale: false}.
func (c *Client) BulkGetFresh(ctx context.Context, table string, rows [][]byte, cols []Column, maxVersions int, tr TimeRange) ([]Result, ReadFreshness, error) {
	tok, err := c.token()
	if err != nil {
		return nil, ReadFreshness{}, err
	}
	var out []Result
	var fresh ReadFreshness
	err = c.withRetry(ctx, table, func() error {
		out = nil
		fresh = ReadFreshness{}
		byRegion := make(map[string]*BulkGetRequest)
		infos := make(map[string]RegionInfo)
		for _, row := range rows {
			ri, err := c.regionForRow(ctx, table, row)
			if err != nil {
				return err
			}
			b, ok := byRegion[ri.ID]
			if !ok {
				b = &BulkGetRequest{RegionID: ri.ID, Epoch: ri.Epoch, Columns: cols, MaxVersions: maxVersions, TimeRange: tr, Token: tok}
				byRegion[ri.ID] = b
				infos[ri.ID] = ri
			}
			b.Rows = append(b.Rows, row)
		}
		for id, b := range byRegion {
			ri := infos[id]
			req := b
			resp, err := c.readRegion(ctx, &ri, MethodBulkGet, func(replica int) rpc.Message {
				r := *req
				r.Replica = replica
				return &r
			})
			if err != nil {
				return err
			}
			fresh.absorb(resp)
			out = append(out, resp.Results...)
		}
		return nil
	})
	if err != nil {
		return nil, ReadFreshness{}, err
	}
	return out, fresh, nil
}

// ScanTable scans the whole key range [scan.StartRow, scan.StopRow),
// visiting every overlapping region in key order and concatenating results.
// A stale region map restarts the scan once with fresh locations.
func (c *Client) ScanTable(table string, scan *Scan) ([]Result, error) {
	return c.ScanTableContext(context.Background(), table, scan)
}

// ScanTableContext is ScanTable bounded by ctx.
func (c *Client) ScanTableContext(ctx context.Context, table string, scan *Scan) ([]Result, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	var out []Result
	err = c.withRetry(ctx, table, func() error {
		out = nil
		regions, err := c.RegionsContext(ctx, table)
		if err != nil {
			return err
		}
		for i := range regions {
			ri := &regions[i]
			if !ri.OverlapsRange(scan.StartRow, scan.StopRow) {
				continue
			}
			resp, err := c.readRegion(ctx, ri, MethodScan, func(replica int) rpc.Message {
				return &ScanRequest{RegionID: ri.ID, Epoch: ri.Epoch, Replica: replica, Scan: scan, Token: tok}
			})
			if err != nil {
				return err
			}
			out = append(out, resp.Results...)
			if scan.Limit > 0 && len(out) >= scan.Limit {
				out = out[:scan.Limit]
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanRegion scans exactly one region — the per-partition read path SHC's
// table-scan RDD uses.
func (c *Client) ScanRegion(ri RegionInfo, scan *Scan) ([]Result, error) {
	return c.ScanRegionContext(context.Background(), ri, scan)
}

// ScanRegionContext is ScanRegion bounded by ctx. Under timeline
// consistency an unreachable primary fails over to the region's replicas
// (the cached RegionInfo carries their hosts), so per-partition readers
// survive a primary crash without waiting out reassignment.
func (c *Client) ScanRegionContext(ctx context.Context, ri RegionInfo, scan *Scan) ([]Result, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.readRegion(ctx, &ri, MethodScan, func(replica int) rpc.Message {
		return &ScanRequest{RegionID: ri.ID, Epoch: ri.Epoch, Replica: replica, Scan: scan, Token: tok}
	})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// FusedExec sends multiple scan/get operations for regions hosted on the
// same server in a single RPC (operators fusion). The whole fused result
// comes back in one response; callers that want bounded pages use
// FusedExecPage.
func (c *Client) FusedExec(host string, ops []ScanOp) ([]Result, error) {
	resp, err := c.FusedExecPage(host, ops, 0, FusedCursor{})
	if err != nil {
		return nil, err
	}
	return resp.Results, nil
}

// FusedExecPage sends one page of a fused execution: the server returns at
// most batchLimit rows (0 = everything) starting at cursor, plus — via
// More/Next on the response — the cursor for the following page. Paging the
// fused RPC keeps the per-response memory on both sides bounded by the
// batch size instead of the partition's full result set.
func (c *Client) FusedExecPage(host string, ops []ScanOp, batchLimit int, cursor FusedCursor) (*ScanResponse, error) {
	return c.FusedExecPageContext(context.Background(), host, ops, batchLimit, cursor)
}

// FusedExecPageContext is FusedExecPage bounded by ctx.
func (c *Client) FusedExecPageContext(ctx context.Context, host string, ops []ScanOp, batchLimit int, cursor FusedCursor) (*ScanResponse, error) {
	return c.fusedExecPage(ctx, host, ops, batchLimit, cursor, false)
}

// FusedExecPageColumnar is FusedExecPageContext with column-major packing
// requested: when the page is losslessly packable the rows come back in
// resp.Block (family/qualifier carried once per column, presence as nils)
// instead of resp.Results. Paging and cursors are unchanged.
func (c *Client) FusedExecPageColumnar(ctx context.Context, host string, ops []ScanOp, batchLimit int, cursor FusedCursor) (*ScanResponse, error) {
	return c.fusedExecPage(ctx, host, ops, batchLimit, cursor, true)
}

func (c *Client) fusedExecPage(ctx context.Context, host string, ops []ScanOp, batchLimit int, cursor FusedCursor, columnar bool) (*ScanResponse, error) {
	tok, err := c.token()
	if err != nil {
		return nil, err
	}
	resp, err := c.callRead(ctx, host, MethodFused, &FusedRequest{
		Ops: ops, BatchLimit: batchLimit, Cursor: cursor, Columnar: columnar, Token: tok,
	})
	if err != nil {
		return nil, err
	}
	return resp.(*ScanResponse), nil
}

// SplitRowRange clips the half-open range [start, stop) against a region
// and reports the intersection; ok is false when they do not overlap.
func SplitRowRange(ri *RegionInfo, start, stop []byte) (lo, hi []byte, ok bool) {
	if !ri.OverlapsRange(start, stop) {
		return nil, nil, false
	}
	lo = start
	if len(ri.StartKey) > 0 && (lo == nil || bytes.Compare(ri.StartKey, lo) > 0) {
		lo = ri.StartKey
	}
	hi = stop
	if len(ri.EndKey) > 0 && (hi == nil || bytes.Compare(ri.EndKey, hi) < 0) {
		hi = ri.EndKey
	}
	return lo, hi, true
}
