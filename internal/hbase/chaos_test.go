package hbase

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

// TestReassignmentReplaysWALWithTombstones is the end-to-end WAL recovery
// path: rows (including a delete tombstone) sit only in a server's MemStore
// and WAL, the server crashes before any flush, the master's heartbeat round
// detects the death and reassigns its regions to a survivor, and a full scan
// afterwards returns exactly what it returned before the crash.
func TestReassignmentReplaysWALWithTombstones(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 26; i++ {
		cells = append(cells, cell(fmt.Sprintf("%c-row", 'a'+i), "cf", "q", 1, fmt.Sprintf("v%02d", i)))
	}
	// A tombstone over one early row: WAL replay must restore deletes too,
	// or the dead row resurrects on the reassigned server.
	cells = append(cells, tomb("c-row", "cf", "q", 2))
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	before, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 25 {
		t.Fatalf("baseline rows = %d, want 25 (tombstone hides one)", len(before))
	}

	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	if err := c.CrashServer(victim); err != nil {
		t.Fatal(err)
	}
	dead, err := c.Master.CheckServers()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != victim {
		t.Fatalf("dead = %v, want [%s]", dead, victim)
	}
	if got := c.Meter.Get(metrics.RegionsReassigned); got == 0 {
		t.Error("no regions reassigned")
	}
	if got := c.Meter.Get(metrics.WALEntriesReplayed); got == 0 {
		t.Error("no WAL entries replayed")
	}
	// Every region is now hosted by the survivor.
	for _, rs := range c.Servers {
		if rs.Host() != victim && rs.RegionCount() != 2 {
			t.Errorf("survivor %s hosts %d regions, want 2", rs.Host(), rs.RegionCount())
		}
	}

	// The client's meta cache still points at the dead host; retries refresh
	// it. Results must be byte-identical to the pre-crash scan.
	after, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatalf("scan after reassignment: %v", err)
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatalf("scan after reassignment differs:\nbefore %v\nafter  %v", before, after)
	}
	if got := c.Meter.Get(metrics.ClientRetries); got == 0 {
		t.Error("recovery should have metered client retries")
	}
}

// TestScannerResumesMidScanAfterCrash kills the server being scanned between
// two pages of a paged Scanner; the cursor-carrying resume must land on the
// reassigned server with no rows duplicated or dropped.
func TestScannerResumesMidScanAfterCrash(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("row-20")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 40; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, fmt.Sprintf("v%02d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	baseline, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}

	sc, err := client.OpenScanner("t", &Scan{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	page1, err := sc.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(page1) != 7 {
		t.Fatalf("page 1 = %d rows", len(page1))
	}

	// Crash the host serving the scanner's current region, then let the
	// master reassign before the next page is requested.
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashServer(regions[0].Host); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.CheckServers(); err != nil {
		t.Fatal(err)
	}

	got := append([]Result(nil), page1...)
	for {
		page, err := sc.Next()
		if err != nil {
			t.Fatalf("resumed scan: %v", err)
		}
		if page == nil {
			break
		}
		got = append(got, page...)
	}
	if !reflect.DeepEqual(baseline, got) {
		t.Fatalf("resumed scan differs: %d rows, want %d", len(got), len(baseline))
	}
	if c.Meter.Get(metrics.ClientRetries) == 0 {
		t.Error("resume should have metered a client retry")
	}
}

// TestHeartbeatDeathThreshold verifies lease semantics: a server is declared
// dead only after missing the configured number of consecutive heartbeat
// rounds, and an intervening successful round resets the count.
func TestHeartbeatDeathThreshold(t *testing.T) {
	c := bootCluster(t, 2)
	c.Master.SetDeathThreshold(2)
	host := c.Servers[0].Host()

	// One missed round: still leased.
	if err := c.Net.SetDown(host, true); err != nil {
		t.Fatal(err)
	}
	if dead, _ := c.Master.CheckServers(); len(dead) != 0 {
		t.Fatalf("dead after 1 missed round = %v", dead)
	}
	// Recovery before the lease expires resets the count.
	if err := c.Net.SetDown(host, false); err != nil {
		t.Fatal(err)
	}
	if dead, _ := c.Master.CheckServers(); len(dead) != 0 {
		t.Fatalf("dead after recovery = %v", dead)
	}
	// Two consecutive misses expire the lease.
	if err := c.Net.SetDown(host, true); err != nil {
		t.Fatal(err)
	}
	if dead, _ := c.Master.CheckServers(); len(dead) != 0 {
		t.Fatal("death after reset must take two rounds again")
	}
	dead, err := c.Master.CheckServers()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != host {
		t.Fatalf("dead = %v, want [%s]", dead, host)
	}
	if got := c.Meter.Get(metrics.ServersDeclaredDead); got != 1 {
		t.Errorf("servers declared dead = %d", got)
	}
	if got := c.Meter.Get(metrics.Heartbeats); got == 0 {
		t.Error("successful pings must meter heartbeats")
	}
}

// TestWritesRecoverThroughReassignment exercises the write-path retry: after
// a crash and reassignment, Put and BulkGet on a client with a stale meta
// cache succeed against the region's new home.
func TestWritesRecoverThroughReassignment(t *testing.T) {
	c := bootCluster(t, 3)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("a", "cf", "q", 1, "x"), cell("z", "cf", "q", 1, "y")}); err != nil {
		t.Fatal(err)
	}
	regions, err := client.Regions("t") // warm the cache
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashServer(regions[0].Host); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.CheckServers(); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("b", "cf", "q", 2, "w")}); err != nil {
		t.Fatalf("Put after reassignment: %v", err)
	}
	results, err := client.BulkGet("t", [][]byte{[]byte("a"), []byte("b"), []byte("z")}, nil, 1, TimeRange{})
	if err != nil {
		t.Fatalf("BulkGet after reassignment: %v", err)
	}
	if len(results) != 3 {
		t.Errorf("BulkGet rows = %d, want 3", len(results))
	}
}

// TestReassignmentFailsWithNoSurvivors: killing the only region server has
// nowhere to move regions; CheckServers must surface the error rather than
// silently dropping the table.
func TestReassignmentFailsWithNoSurvivors(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := c.CrashServer(c.Servers[0].Host()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.CheckServers(); err == nil {
		t.Fatal("reassignment with no survivors must error")
	}
}
