package hbase

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/conncache"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

func loadRows(t *testing.T, client *Client, n int) {
	t.Helper()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("row-50")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < n; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, fmt.Sprintf("v%02d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineExceededNotRetried: a deadline that expires mid-call must
// surface immediately — retrying a timed-out operation only burns the retry
// budget on an error that cannot improve.
func TestDeadlineExceededNotRetried(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	loadRows(t, client, 20)

	// Every scan stalls far longer than the caller's deadline.
	c.Net.SetFaultInjector(rpc.NewFaultInjector(1,
		&rpc.FaultRule{Method: MethodScan, ExtraLatency: 200 * time.Millisecond},
	))
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := client.ScanTableContext(ctx, "t", &Scan{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// The injected 200ms sleep must abort at the 5ms deadline, and the retry
	// loop must not spin further attempts (each would stall again).
	if elapsed := time.Since(start); elapsed > 150*time.Millisecond {
		t.Errorf("deadline-bounded scan took %v; injected latency did not abort", elapsed)
	}
	if got := c.Meter.Get(metrics.ClientRetries); got != 0 {
		t.Errorf("client retries = %d, want 0: deadline errors are not retryable", got)
	}
}

// TestIsRetryableClassification pins the retry classifier: overload and
// transport failures are worth another attempt, context errors never are.
func TestIsRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{ErrNotServing, true},
		{ErrServerBusy, true},
		{rpc.ErrHostDown, true},
		{rpc.ErrConnClosed, true},
		{context.DeadlineExceeded, false},
		{context.Canceled, false},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), false},
		{errors.New("decode failure"), false},
	} {
		if got := IsRetryable(tc.err); got != tc.want {
			t.Errorf("IsRetryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

// TestServerBusyShedsAndRetries saturates a region server whose admission
// limits are tiny: concurrent scans must all succeed anyway (shed requests
// back off and resend), the shed counter must show the gate fired, and no
// region may move — overload is not death.
func TestServerBusyShedsAndRetries(t *testing.T) {
	c := bootCluster(t, 1)
	// A generous retry budget: the test asserts shed requests recover, not
	// that they recover within the default four attempts.
	client := c.NewClient(WithRetryPolicy(RetryPolicy{MaxAttempts: 10, BaseBackoff: 2 * time.Millisecond}))
	defer client.Close()
	loadRows(t, client, 40)
	c.Servers[0].SetLimits(ServerLimits{MaxInFlight: 2, MaxQueue: 2, ServiceTime: 3 * time.Millisecond})

	want, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	shedBefore := c.Meter.Get(metrics.ServerShed)

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	rows := make([][]Result, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows[i], errs[i] = client.ScanTable("t", &Scan{})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d failed through overload: %v", i, err)
		}
		if !reflect.DeepEqual(rows[i], want) {
			t.Fatalf("caller %d rows differ under overload", i)
		}
	}
	if got := c.Meter.Get(metrics.ServerShed); got == shedBefore {
		t.Error("no requests shed; the scenario did not exercise admission control")
	}
	if got := c.Meter.Get(metrics.ServerQueuePeak); got == 0 {
		t.Error("queue depth peak = 0; nobody queued for a slot")
	}
	if got := c.Meter.Get(metrics.RegionsReassigned); got != 0 {
		t.Errorf("regions reassigned = %d; shedding must not trigger reassignment", got)
	}
}

// TestHedgedReadBeatsStraggler scripts the host where every other request
// stalls 100ms. A client hedging after 3ms must return the same rows as an
// undisturbed scan, fast, with the hedge counters showing the duplicate won.
func TestHedgedReadBeatsStraggler(t *testing.T) {
	c := bootCluster(t, 1)
	plain := c.NewClient()
	defer plain.Close()
	loadRows(t, plain, 40)
	want, err := plain.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}

	// Odd-numbered scan calls stall; the hedge (the next matching call)
	// lands on a fast slot.
	c.Net.SetFaultInjector(rpc.NewFaultInjector(1,
		&rpc.FaultRule{Method: MethodScan, ExtraLatency: 100 * time.Millisecond, LatencyEvery: 2},
	))
	hedged := c.NewClient(WithHedgedReads(3 * time.Millisecond))
	defer hedged.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	got, err := hedged.ScanTableContext(ctx, "t", &Scan{})
	if err != nil {
		t.Fatalf("hedged scan: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("hedged scan differs from baseline: %d rows vs %d", len(got), len(want))
	}
	if c.Meter.Get(metrics.RPCHedges) == 0 {
		t.Error("no hedges fired against the straggler")
	}
	if c.Meter.Get(metrics.RPCHedgeWins) == 0 {
		t.Error("no hedge won; the speculative duplicate should beat the 100ms stall")
	}
}

// TestHedgeNotFiredOnFastReads: a healthy cluster must not pay for hedging —
// responses beat the hedge delay, so no duplicates fire.
func TestHedgeNotFiredOnFastReads(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient(WithHedgedReads(time.Second))
	defer client.Close()
	loadRows(t, client, 10)
	if _, err := client.ScanTable("t", &Scan{}); err != nil {
		t.Fatal(err)
	}
	if got := c.Meter.Get(metrics.RPCHedges); got != 0 {
		t.Errorf("hedges = %d on a fast cluster, want 0", got)
	}
}

// TestBreakerOpensOnDeadHostAndFailsFast wires the circuit breaker into a
// client: after the retry budget hammers a dead host, the circuit is open,
// further calls fail fast (no new transport attempts), and breaker.circuit_opens is
// counted.
func TestBreakerOpensOnDeadHostAndFailsFast(t *testing.T) {
	c := bootCluster(t, 1)
	br := conncache.NewBreaker(conncache.BreakerConfig{Threshold: 3, Cooldown: time.Hour}, c.Meter)
	client := c.NewClient(WithBreaker(br))
	defer client.Close()
	loadRows(t, client, 10)
	host := c.Servers[0].Host()
	if err := c.Net.SetDown(host, true); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ScanTable("t", &Scan{}); err == nil {
		t.Fatal("scan against a dead single-server cluster must fail")
	}
	if got := br.State(host); got != "open" {
		t.Fatalf("breaker state = %s after repeated transport failures, want open", got)
	}
	if got := c.Meter.Get(metrics.BreakerOpens); got == 0 {
		t.Error("breaker.circuit_opens = 0")
	}
	// With the circuit open, the failure is the breaker's synthetic error
	// (fail fast), not a fresh transport attempt against the dead host.
	_, err := client.GetContext(context.Background(), "t", []byte("row-01"), nil, 1, TimeRange{})
	if !errors.Is(err, rpc.ErrHostDown) || !strings.Contains(err.Error(), "circuit open") {
		t.Fatalf("err = %v, want ErrHostDown wrapped as circuit open", err)
	}
	if got := br.State(host); got != "open" {
		t.Fatalf("breaker state = %s after fail-fast call, want still open", got)
	}
}

// TestAdmissionGate unit-tests the gate: slots, bounded queue, FIFO grants,
// shed beyond the queue, and cancellation while parked.
func TestAdmissionGate(t *testing.T) {
	m := metrics.NewRegistry()
	a := newAdmission(ServerLimits{MaxInFlight: 1, MaxQueue: 1}, m)
	bg := context.Background()

	if err := a.enter(bg); err != nil {
		t.Fatal(err)
	}
	// Second caller parks in the queue.
	granted := make(chan error, 1)
	go func() { granted <- a.enter(bg) }()
	waitQueue := func(want int) {
		t.Helper()
		for i := 0; ; i++ {
			a.mu.Lock()
			n := a.waiting
			a.mu.Unlock()
			if n == want {
				return
			}
			if i > 1000 {
				t.Fatalf("queue depth never reached %d", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitQueue(1)
	// Third caller is shed: queue full.
	if err := a.enter(bg); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("err = %v, want ErrServerBusy", err)
	}
	if got := m.Get(metrics.ServerShed); got != 1 {
		t.Errorf("server.requests_shed = %d, want 1", got)
	}
	if got := m.Get(metrics.ServerQueuePeak); got != 1 {
		t.Errorf("queue peak = %d, want 1", got)
	}
	// Releasing the slot hands it to the parked caller.
	a.leave()
	if err := <-granted; err != nil {
		t.Fatalf("queued caller got %v, want grant", err)
	}
	a.leave()

	// A parked caller whose context dies leaves the queue with its error.
	if err := a.enter(bg); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(bg)
	parked := make(chan error, 1)
	go func() { parked <- a.enter(ctx) }()
	waitQueue(1)
	cancel()
	if err := <-parked; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter got %v", err)
	}
	a.leave()
	// The slot is free again: a fresh caller enters without queueing.
	if err := a.enter(bg); err != nil {
		t.Fatalf("slot leaked after cancelled waiter: %v", err)
	}
	a.leave()
}

// TestPingBypassesAdmission: liveness probes must land even on a saturated
// server, or overload would masquerade as death and trigger reassignment.
func TestPingBypassesAdmission(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	loadRows(t, client, 10)
	if _, err := client.Regions("t"); err != nil { // warm the meta cache
		t.Fatal(err)
	}
	c.Servers[0].SetLimits(ServerLimits{MaxInFlight: 1, MaxQueue: 0, ServiceTime: 60 * time.Millisecond})

	// Hold the only slot with a slow scan, then heartbeat mid-flight.
	done := make(chan error, 1)
	go func() {
		_, err := client.ScanTable("t", &Scan{})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the scan claim the slot
	if dead, err := c.Master.CheckServers(); err != nil {
		t.Fatalf("heartbeat round against saturated server: %v", err)
	} else if len(dead) != 0 {
		t.Fatalf("saturated server declared dead: %v", dead)
	}
	if err := <-done; err != nil {
		t.Fatalf("scan holding the slot: %v", err)
	}
}
