package hbase

import (
	"bytes"
	"fmt"
	"sort"
)

// TableDescriptor declares a table: its name, the column families (which
// HBase requires to be fixed up front, paper §IV-A), and how many versions
// of each cell to retain.
type TableDescriptor struct {
	Name        string
	Families    []string
	MaxVersions int // retained per cell; defaults to 1
}

// Validate checks the descriptor is well formed.
func (d *TableDescriptor) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("hbase: table name is empty")
	}
	if len(d.Families) == 0 {
		return fmt.Errorf("hbase: table %q declares no column families", d.Name)
	}
	seen := make(map[string]bool, len(d.Families))
	for _, f := range d.Families {
		if f == "" {
			return fmt.Errorf("hbase: table %q has an empty column family", d.Name)
		}
		if seen[f] {
			return fmt.Errorf("hbase: table %q repeats column family %q", d.Name, f)
		}
		seen[f] = true
	}
	return nil
}

// HasFamily reports whether the descriptor declares family f.
func (d *TableDescriptor) HasFamily(f string) bool {
	for _, fam := range d.Families {
		if fam == f {
			return true
		}
	}
	return false
}

func (d *TableDescriptor) maxVersions() int {
	if d.MaxVersions <= 0 {
		return 1
	}
	return d.MaxVersions
}

// RegionInfo identifies one region: a half-open row-key range
// [StartKey, EndKey) of a table, hosted by a region server. A nil StartKey
// means "from the beginning"; a nil EndKey means "to the end".
//
// Epoch is the region's ownership generation: the master bumps it on every
// reassignment (failover, drain, balance), and data RPCs routed with a stale
// epoch are rejected with ErrFenced so a cached location can never silently
// read or write through a superseded owner.
type RegionInfo struct {
	Table    string
	ID       string
	StartKey []byte
	EndKey   []byte
	Host     string
	Epoch    uint64
	// Replica numbers this copy of the region: 0 is the primary (the only
	// copy that accepts writes and Strong reads), 1..N-1 are read-only
	// secondaries serving timeline reads.
	Replica int
	// ReplicaHosts lists where the region's secondary copies live, indexed
	// by replica number minus one ("" = that slot is currently unplaced).
	// The master fills it on meta responses so clients can fail timeline
	// reads over without a second meta round trip; nil when the region is
	// unreplicated.
	ReplicaHosts []string
}

// ContainsRow reports whether row falls inside the region's range.
func (ri *RegionInfo) ContainsRow(row []byte) bool {
	if len(ri.StartKey) > 0 && bytes.Compare(row, ri.StartKey) < 0 {
		return false
	}
	if len(ri.EndKey) > 0 && bytes.Compare(row, ri.EndKey) >= 0 {
		return false
	}
	return true
}

// OverlapsRange reports whether the region intersects the half-open scan
// range [start, stop); nil bounds are unbounded.
func (ri *RegionInfo) OverlapsRange(start, stop []byte) bool {
	if len(ri.EndKey) > 0 && start != nil && bytes.Compare(start, ri.EndKey) >= 0 {
		return false
	}
	if len(ri.StartKey) > 0 && stop != nil && bytes.Compare(stop, ri.StartKey) <= 0 {
		return false
	}
	return true
}

// String renders the region for debugging.
func (ri *RegionInfo) String() string {
	return fmt.Sprintf("%s[%x,%x)@%s", ri.ID, ri.StartKey, ri.EndKey, ri.Host)
}

// WireSize implements rpc.Message for meta responses. The replica fields
// cost nothing when unset, keeping unreplicated clusters' wire accounting
// byte-identical to the pre-replica build.
func (ri *RegionInfo) WireSize() int {
	n := len(ri.Table) + len(ri.ID) + len(ri.StartKey) + len(ri.EndKey) + len(ri.Host) + 8
	if ri.Replica > 0 {
		n += 2
	}
	for _, h := range ri.ReplicaHosts {
		n += len(h) + 1
	}
	return n
}

// sortRegions orders regions by start key, the layout of the meta table.
func sortRegions(regions []RegionInfo) {
	sort.Slice(regions, func(i, j int) bool {
		a, b := regions[i].StartKey, regions[j].StartKey
		if len(a) == 0 {
			return len(b) != 0
		}
		if len(b) == 0 {
			return false
		}
		return bytes.Compare(a, b) < 0
	})
}
