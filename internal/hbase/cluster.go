package hbase

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/zk"
)

// ClusterConfig sizes a simulated cluster.
type ClusterConfig struct {
	// Name identifies the cluster (the scope tokens are issued for).
	Name string
	// NumServers is the number of region servers; defaults to 3.
	NumServers int
	// Masters is the total number of master processes: one active leader
	// plus Masters-1 hot standbys whose watch loops take over automatically
	// when the leader's session dies. Defaults to 1 (no standbys).
	Masters int
	// Store tunes per-region storage behaviour.
	Store StoreConfig
	// RPC tunes the simulated network cost model.
	RPC rpc.Config
	// Meter receives all counters; a fresh registry is created when nil.
	Meter *metrics.Registry
	// Validate authenticates request tokens; nil = insecure.
	Validate TokenValidator
}

// Cluster bundles one simulated HBase deployment: a ZooKeeper ensemble, an
// RPC network, a master, and a set of region servers on distinct hosts.
type Cluster struct {
	Name string
	Net  *rpc.Network
	ZK   *zk.Server
	// Master is the boot master — the first leader elected. After a
	// failover it may be a dead (or zombie) process; use ActiveMaster for
	// the current leader.
	Master *Master
	// Standbys holds the hot standby masters booted alongside the leader
	// (cfg.Masters - 1 of them), in boot order. A standby that takes over
	// stays in this slice; ActiveMaster tracks who leads.
	Standbys []*Master
	Servers  []*RegionServer
	Meter    *metrics.Registry
	// Journal is the cluster's structured event journal: every lifecycle
	// transition (fencing, reassignment, promotion, splits, backpressure)
	// is appended here with a causality link to its trigger.
	Journal *ops.Journal

	// active is the master currently holding leadership, updated by standby
	// takeover callbacks; nil means the boot master still leads.
	active atomic.Pointer[Master]

	// dutyMu guards the heartbeat/janitor duty configuration and the stop
	// functions of whichever master's loops are currently running, so
	// takeover can re-arm them on the new leader.
	dutyMu       sync.Mutex
	dutyHB       time.Duration
	dutyJanitor  time.Duration
	dutyStops    []func()
	standbyStops []func()

	partMu     sync.Mutex
	partitions map[string][]*rpc.FaultRule // host -> active partition rules
}

// NewCluster boots a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Name == "" {
		cfg.Name = "hbase"
	}
	if cfg.NumServers <= 0 {
		cfg.NumServers = 3
	}
	if cfg.Meter == nil {
		cfg.Meter = metrics.NewRegistry()
	}
	c := &Cluster{
		Name:       cfg.Name,
		Net:        rpc.NewNetwork(cfg.RPC, cfg.Meter),
		ZK:         zk.NewServer(),
		Meter:      cfg.Meter,
		Journal:    ops.NewJournal(0),
		partitions: make(map[string][]*rpc.FaultRule),
	}
	master, err := NewMaster(cfg.Name+"-master", c.Net, c.ZK, cfg.Store, cfg.Meter, cfg.Validate)
	if err != nil {
		return nil, fmt.Errorf("hbase: boot master: %w", err)
	}
	c.Master = master
	// Installed before any server registers, so AddServer propagates the
	// journal to every region server as it joins.
	master.SetJournal(c.Journal)
	for i := 0; i < cfg.NumServers; i++ {
		host := fmt.Sprintf("%s-rs%d", cfg.Name, i+1)
		rs, err := NewRegionServer(host, c.Net, cfg.Meter, cfg.Validate)
		if err != nil {
			return nil, fmt.Errorf("hbase: boot region server %s: %w", host, err)
		}
		if cfg.Store.ServerLease > 0 {
			rs.SetFencing(cfg.Store.ServerLease, cfg.Store.FenceReads)
		}
		if err := master.AddServer(rs); err != nil {
			return nil, err
		}
		c.Servers = append(c.Servers, rs)
	}
	// Hot standbys boot after the region servers so a takeover's resolve()
	// snapshot always sees the full roster. Each standby's watch loop runs
	// from boot: the cluster survives a master crash with no test or
	// operator intervention.
	for i := 2; i <= cfg.Masters; i++ {
		host := fmt.Sprintf("%s-master%d", cfg.Name, i)
		sb, err := NewStandbyMaster(host, c.Net, c.ZK, cfg.Store, cfg.Meter, cfg.Validate)
		if err != nil {
			return nil, fmt.Errorf("hbase: boot standby master %s: %w", host, err)
		}
		sb.SetJournal(c.Journal)
		c.Standbys = append(c.Standbys, sb)
		stop := sb.StartStandby(c.serverSnapshot, c.masterTookOver)
		c.standbyStops = append(c.standbyStops, stop)
	}
	return c, nil
}

// serverSnapshot is the resolve function standby takeovers rebuild meta
// from: every region server the cluster booted, reachable or not (the new
// master's first heartbeat round settles the dead ones).
func (c *Cluster) serverSnapshot() []*RegionServer {
	return append([]*RegionServer(nil), c.Servers...)
}

// masterTookOver records the new leader and re-arms whatever duty loops
// (heartbeats, janitor) were running on the deposed master.
func (c *Cluster) masterTookOver(nm *Master) {
	c.active.Store(nm)
	c.dutyMu.Lock()
	defer c.dutyMu.Unlock()
	if c.dutyHB > 0 {
		c.dutyStops = append(c.dutyStops, nm.StartHeartbeats(c.dutyHB))
	}
	if c.dutyJanitor > 0 {
		c.dutyStops = append(c.dutyStops, nm.StartJanitor(c.dutyJanitor))
	}
}

// ActiveMaster returns the master currently holding leadership: the boot
// master until a standby takes over.
func (c *Cluster) ActiveMaster() *Master {
	if m := c.active.Load(); m != nil {
		return m
	}
	return c.Master
}

// StartDuties runs the active master's heartbeat and janitor loops on the
// given intervals (zero disables either) and re-arms them automatically on
// every takeover, so a master crash does not silently stop failure detection
// and housekeeping. The returned stop function halts the loops of whichever
// master currently runs them and disables re-arming.
func (c *Cluster) StartDuties(heartbeat, janitor time.Duration) (stop func()) {
	m := c.ActiveMaster()
	c.dutyMu.Lock()
	c.dutyHB, c.dutyJanitor = heartbeat, janitor
	if heartbeat > 0 {
		c.dutyStops = append(c.dutyStops, m.StartHeartbeats(heartbeat))
	}
	if janitor > 0 {
		c.dutyStops = append(c.dutyStops, m.StartJanitor(janitor))
	}
	c.dutyMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			c.dutyMu.Lock()
			stops := c.dutyStops
			c.dutyStops = nil
			c.dutyHB, c.dutyJanitor = 0, 0
			c.dutyMu.Unlock()
			for _, s := range stops {
				s()
			}
		})
	}
}

// StopStandbys ends every standby watch loop (for orderly shutdown; a
// standby that already took over has exited its loop on its own).
func (c *Cluster) StopStandbys() {
	for _, s := range c.standbyStops {
		s()
	}
}

// CrashMaster kills the active master's process: its host drops off the
// network and ZooKeeper expires its session, which deletes the ephemeral
// leader node and fires every standby's watch. From that instant takeover is
// automatic — no test or operator involvement. The crashed master object
// survives as a zombie: reviving its host and calling coordination methods
// on it is how tests prove master-epoch fencing holds.
func (c *Cluster) CrashMaster() (*Master, error) {
	m := c.ActiveMaster()
	if err := c.Net.SetDown(m.Host(), true); err != nil {
		return nil, err
	}
	c.ZK.ExpireSession(m.zsess())
	return m, nil
}

// Hosts lists the region-server host names in boot order.
func (c *Cluster) Hosts() []string {
	out := make([]string, len(c.Servers))
	for i, rs := range c.Servers {
		out[i] = rs.Host()
	}
	return out
}

// NewClient opens a client on this cluster.
func (c *Cluster) NewClient(opts ...ClientOption) *Client {
	return NewClient(c.Name, c.Net, c.ZK, opts...)
}

// Server returns the region server running on host, or nil.
func (c *Cluster) Server(host string) *RegionServer {
	for _, rs := range c.Servers {
		if rs.Host() == host {
			return rs
		}
	}
	return nil
}

// CrashServer simulates a region-server process death: the host drops off
// the network, every hosted region loses its MemStore (the WAL, standing in
// for HDFS, survives the crash), and the process's in-memory region map is
// gone with it. Recovery happens when the master's next heartbeat round
// (CheckServers) detects the death and reassigns the regions.
func (c *Cluster) CrashServer(host string) error {
	rs := c.Server(host)
	if rs == nil {
		return fmt.Errorf("hbase: no region server on host %q", host)
	}
	if err := c.Net.SetDown(host, true); err != nil {
		return err
	}
	for _, r := range rs.Regions() {
		r.DropMemStore()
		info := r.Info()
		rs.RemoveRegion(regionKey(info.ID, info.Replica))
	}
	return nil
}

// PartitionMode selects which side of a region server's traffic a simulated
// network partition severs.
type PartitionMode int

const (
	// PartitionFromMaster cuts only master↔server traffic: the master's
	// heartbeats fail, so it declares the server dead and reassigns its
	// regions — while clients can still reach the isolated server. This is
	// the zombie scenario epoch fencing exists for.
	PartitionFromMaster PartitionMode = iota
	// PartitionFromClients cuts everything except master↔server traffic:
	// the master still sees a healthy server, but clients cannot reach it
	// and must ride out the partition on retries.
	PartitionFromClients
	// PartitionTotal cuts all traffic to the server without killing the
	// process: unlike CrashServer, MemStore and the region map survive, so
	// healing restores a fully live (if stale) server.
	PartitionTotal
)

// PartitionServer installs fault-injection rules that sever one side of a
// region server's network per mode. Rules are added to the network's
// current injector when one is installed (composing with a chaos schedule
// without disturbing its seeded RNG — partition drops are deterministic),
// or to a fresh injector otherwise. HealPartition reverses it.
func (c *Cluster) PartitionServer(host string, mode PartitionMode) error {
	if c.Server(host) == nil {
		return fmt.Errorf("hbase: no region server on host %q", host)
	}
	inj := c.Net.Injector()
	if inj == nil {
		inj = rpc.NewFaultInjector(1)
		c.Net.SetFaultInjector(inj)
	}
	var rules []*rpc.FaultRule
	switch mode {
	case PartitionFromMaster:
		rules = []*rpc.FaultRule{{Host: host, Caller: c.ActiveMaster().Host(), Drop: true}}
	case PartitionFromClients:
		rules = []*rpc.FaultRule{{Host: host, ExceptCaller: c.ActiveMaster().Host(), Drop: true}}
	case PartitionTotal:
		rules = []*rpc.FaultRule{{Host: host, Drop: true}}
	default:
		return fmt.Errorf("hbase: unknown partition mode %d", mode)
	}
	for _, r := range rules {
		inj.Add(r)
	}
	c.partMu.Lock()
	c.partitions[host] = append(c.partitions[host], rules...)
	c.partMu.Unlock()
	c.Meter.Inc(metrics.PartitionsInjected)
	return nil
}

// HealPartition removes every partition rule previously installed for host.
// Healing a host that was never partitioned is a no-op.
func (c *Cluster) HealPartition(host string) {
	c.partMu.Lock()
	rules := c.partitions[host]
	delete(c.partitions, host)
	c.partMu.Unlock()
	if len(rules) == 0 {
		return
	}
	if inj := c.Net.Injector(); inj != nil {
		for _, r := range rules {
			inj.Remove(r)
		}
	}
	c.Meter.Inc(metrics.PartitionsHealed)
}
