package hbase

import (
	"fmt"
	"sync"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/zk"
)

// ClusterConfig sizes a simulated cluster.
type ClusterConfig struct {
	// Name identifies the cluster (the scope tokens are issued for).
	Name string
	// NumServers is the number of region servers; defaults to 3.
	NumServers int
	// Store tunes per-region storage behaviour.
	Store StoreConfig
	// RPC tunes the simulated network cost model.
	RPC rpc.Config
	// Meter receives all counters; a fresh registry is created when nil.
	Meter *metrics.Registry
	// Validate authenticates request tokens; nil = insecure.
	Validate TokenValidator
}

// Cluster bundles one simulated HBase deployment: a ZooKeeper ensemble, an
// RPC network, a master, and a set of region servers on distinct hosts.
type Cluster struct {
	Name    string
	Net     *rpc.Network
	ZK      *zk.Server
	Master  *Master
	Servers []*RegionServer
	Meter   *metrics.Registry
	// Journal is the cluster's structured event journal: every lifecycle
	// transition (fencing, reassignment, promotion, splits, backpressure)
	// is appended here with a causality link to its trigger.
	Journal *ops.Journal

	partMu     sync.Mutex
	partitions map[string][]*rpc.FaultRule // host -> active partition rules
}

// NewCluster boots a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Name == "" {
		cfg.Name = "hbase"
	}
	if cfg.NumServers <= 0 {
		cfg.NumServers = 3
	}
	if cfg.Meter == nil {
		cfg.Meter = metrics.NewRegistry()
	}
	c := &Cluster{
		Name:       cfg.Name,
		Net:        rpc.NewNetwork(cfg.RPC, cfg.Meter),
		ZK:         zk.NewServer(),
		Meter:      cfg.Meter,
		Journal:    ops.NewJournal(0),
		partitions: make(map[string][]*rpc.FaultRule),
	}
	master, err := NewMaster(cfg.Name+"-master", c.Net, c.ZK, cfg.Store, cfg.Meter, cfg.Validate)
	if err != nil {
		return nil, fmt.Errorf("hbase: boot master: %w", err)
	}
	c.Master = master
	// Installed before any server registers, so AddServer propagates the
	// journal to every region server as it joins.
	master.SetJournal(c.Journal)
	for i := 0; i < cfg.NumServers; i++ {
		host := fmt.Sprintf("%s-rs%d", cfg.Name, i+1)
		rs, err := NewRegionServer(host, c.Net, cfg.Meter, cfg.Validate)
		if err != nil {
			return nil, fmt.Errorf("hbase: boot region server %s: %w", host, err)
		}
		if cfg.Store.ServerLease > 0 {
			rs.SetFencing(cfg.Store.ServerLease, cfg.Store.FenceReads)
		}
		if err := master.AddServer(rs); err != nil {
			return nil, err
		}
		c.Servers = append(c.Servers, rs)
	}
	return c, nil
}

// Hosts lists the region-server host names in boot order.
func (c *Cluster) Hosts() []string {
	out := make([]string, len(c.Servers))
	for i, rs := range c.Servers {
		out[i] = rs.Host()
	}
	return out
}

// NewClient opens a client on this cluster.
func (c *Cluster) NewClient(opts ...ClientOption) *Client {
	return NewClient(c.Name, c.Net, c.ZK, opts...)
}

// Server returns the region server running on host, or nil.
func (c *Cluster) Server(host string) *RegionServer {
	for _, rs := range c.Servers {
		if rs.Host() == host {
			return rs
		}
	}
	return nil
}

// CrashServer simulates a region-server process death: the host drops off
// the network, every hosted region loses its MemStore (the WAL, standing in
// for HDFS, survives the crash), and the process's in-memory region map is
// gone with it. Recovery happens when the master's next heartbeat round
// (CheckServers) detects the death and reassigns the regions.
func (c *Cluster) CrashServer(host string) error {
	rs := c.Server(host)
	if rs == nil {
		return fmt.Errorf("hbase: no region server on host %q", host)
	}
	if err := c.Net.SetDown(host, true); err != nil {
		return err
	}
	for _, r := range rs.Regions() {
		r.DropMemStore()
		info := r.Info()
		rs.RemoveRegion(regionKey(info.ID, info.Replica))
	}
	return nil
}

// PartitionMode selects which side of a region server's traffic a simulated
// network partition severs.
type PartitionMode int

const (
	// PartitionFromMaster cuts only master↔server traffic: the master's
	// heartbeats fail, so it declares the server dead and reassigns its
	// regions — while clients can still reach the isolated server. This is
	// the zombie scenario epoch fencing exists for.
	PartitionFromMaster PartitionMode = iota
	// PartitionFromClients cuts everything except master↔server traffic:
	// the master still sees a healthy server, but clients cannot reach it
	// and must ride out the partition on retries.
	PartitionFromClients
	// PartitionTotal cuts all traffic to the server without killing the
	// process: unlike CrashServer, MemStore and the region map survive, so
	// healing restores a fully live (if stale) server.
	PartitionTotal
)

// PartitionServer installs fault-injection rules that sever one side of a
// region server's network per mode. Rules are added to the network's
// current injector when one is installed (composing with a chaos schedule
// without disturbing its seeded RNG — partition drops are deterministic),
// or to a fresh injector otherwise. HealPartition reverses it.
func (c *Cluster) PartitionServer(host string, mode PartitionMode) error {
	if c.Server(host) == nil {
		return fmt.Errorf("hbase: no region server on host %q", host)
	}
	inj := c.Net.Injector()
	if inj == nil {
		inj = rpc.NewFaultInjector(1)
		c.Net.SetFaultInjector(inj)
	}
	var rules []*rpc.FaultRule
	switch mode {
	case PartitionFromMaster:
		rules = []*rpc.FaultRule{{Host: host, Caller: c.Master.Host(), Drop: true}}
	case PartitionFromClients:
		rules = []*rpc.FaultRule{{Host: host, ExceptCaller: c.Master.Host(), Drop: true}}
	case PartitionTotal:
		rules = []*rpc.FaultRule{{Host: host, Drop: true}}
	default:
		return fmt.Errorf("hbase: unknown partition mode %d", mode)
	}
	for _, r := range rules {
		inj.Add(r)
	}
	c.partMu.Lock()
	c.partitions[host] = append(c.partitions[host], rules...)
	c.partMu.Unlock()
	c.Meter.Inc(metrics.PartitionsInjected)
	return nil
}

// HealPartition removes every partition rule previously installed for host.
// Healing a host that was never partitioned is a no-op.
func (c *Cluster) HealPartition(host string) {
	c.partMu.Lock()
	rules := c.partitions[host]
	delete(c.partitions, host)
	c.partMu.Unlock()
	if len(rules) == 0 {
		return
	}
	if inj := c.Net.Injector(); inj != nil {
		for _, r := range rules {
			inj.Remove(r)
		}
	}
	c.Meter.Inc(metrics.PartitionsHealed)
}
