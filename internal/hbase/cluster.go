package hbase

import (
	"fmt"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/zk"
)

// ClusterConfig sizes a simulated cluster.
type ClusterConfig struct {
	// Name identifies the cluster (the scope tokens are issued for).
	Name string
	// NumServers is the number of region servers; defaults to 3.
	NumServers int
	// Store tunes per-region storage behaviour.
	Store StoreConfig
	// RPC tunes the simulated network cost model.
	RPC rpc.Config
	// Meter receives all counters; a fresh registry is created when nil.
	Meter *metrics.Registry
	// Validate authenticates request tokens; nil = insecure.
	Validate TokenValidator
}

// Cluster bundles one simulated HBase deployment: a ZooKeeper ensemble, an
// RPC network, a master, and a set of region servers on distinct hosts.
type Cluster struct {
	Name    string
	Net     *rpc.Network
	ZK      *zk.Server
	Master  *Master
	Servers []*RegionServer
	Meter   *metrics.Registry
}

// NewCluster boots a cluster.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Name == "" {
		cfg.Name = "hbase"
	}
	if cfg.NumServers <= 0 {
		cfg.NumServers = 3
	}
	if cfg.Meter == nil {
		cfg.Meter = metrics.NewRegistry()
	}
	c := &Cluster{
		Name:  cfg.Name,
		Net:   rpc.NewNetwork(cfg.RPC, cfg.Meter),
		ZK:    zk.NewServer(),
		Meter: cfg.Meter,
	}
	master, err := NewMaster(cfg.Name+"-master", c.Net, c.ZK, cfg.Store, cfg.Meter, cfg.Validate)
	if err != nil {
		return nil, fmt.Errorf("hbase: boot master: %w", err)
	}
	c.Master = master
	for i := 0; i < cfg.NumServers; i++ {
		host := fmt.Sprintf("%s-rs%d", cfg.Name, i+1)
		rs, err := NewRegionServer(host, c.Net, cfg.Meter, cfg.Validate)
		if err != nil {
			return nil, fmt.Errorf("hbase: boot region server %s: %w", host, err)
		}
		if err := master.AddServer(rs); err != nil {
			return nil, err
		}
		c.Servers = append(c.Servers, rs)
	}
	return c, nil
}

// Hosts lists the region-server host names in boot order.
func (c *Cluster) Hosts() []string {
	out := make([]string, len(c.Servers))
	for i, rs := range c.Servers {
		out[i] = rs.Host()
	}
	return out
}

// NewClient opens a client on this cluster.
func (c *Cluster) NewClient(opts ...ClientOption) *Client {
	return NewClient(c.Name, c.Net, c.ZK, opts...)
}

// Server returns the region server running on host, or nil.
func (c *Cluster) Server(host string) *RegionServer {
	for _, rs := range c.Servers {
		if rs.Host() == host {
			return rs
		}
	}
	return nil
}

// CrashServer simulates a region-server process death: the host drops off
// the network and every hosted region loses its MemStore (the WAL, standing
// in for HDFS, survives the crash). Recovery happens when the master's next
// heartbeat round (CheckServers) detects the death and reassigns the
// regions.
func (c *Cluster) CrashServer(host string) error {
	rs := c.Server(host)
	if rs == nil {
		return fmt.Errorf("hbase: no region server on host %q", host)
	}
	if err := c.Net.SetDown(host, true); err != nil {
		return err
	}
	for _, r := range rs.Regions() {
		r.DropMemStore()
	}
	return nil
}
