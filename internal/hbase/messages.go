package hbase

// RPC method names served by region servers and the master.
const (
	MethodPut          = "Put"
	MethodMultiPut     = "MultiPut"
	MethodBulkLoad     = "BulkLoad"
	MethodScan         = "Scan"
	MethodBulkGet      = "BulkGet"
	MethodFused        = "Fused"
	MethodPing         = "Ping"
	MethodCreateTable  = "CreateTable"
	MethodDeleteTable  = "DeleteTable"
	MethodTableRegions = "TableRegions"
	MethodListTables   = "ListTables"
	MethodTableStats   = "TableStats"
)

// PutRequest carries a batch of mutations for one region. Epoch is the
// ownership epoch the client routed by; the server rejects a stale one with
// ErrFenced (0 = unchecked, for callers that bypass the meta cache).
type PutRequest struct {
	RegionID string
	Epoch    uint64
	Cells    []Cell
	Token    string
}

// WireSize implements rpc.Message.
func (m *PutRequest) WireSize() int {
	n := len(m.RegionID) + len(m.Token) + 8
	for i := range m.Cells {
		n += m.Cells[i].WireSize()
	}
	return n
}

// RegionBatch is one sequence-stamped group of mutations for one region
// inside a MultiPutRequest. Writer identifies the BufferedMutator instance
// and Seq is its per-writer batch sequence number; together they let the
// server deduplicate a retried batch whose ack was lost. A batch regrouped
// after a split keeps its original stamp: the daughters inherited the
// parent's dedup window, and the regrouped pieces are row-disjoint, so
// per-region dedup on the same stamp stays exactly-once. LowWater is the
// writer's low-water mark — every sequence below it is resolved (acked or
// abandoned) and will never be retried — which bounds the server-side dedup
// window without a fixed size that could out-prune a slow retry.
type RegionBatch struct {
	RegionID string
	Epoch    uint64
	Writer   string
	Seq      uint64
	LowWater uint64
	Cells    []Cell
}

// WireSize implements rpc.Message sizing for embedded batches.
func (b *RegionBatch) WireSize() int {
	n := len(b.RegionID) + len(b.Writer) + 24
	for i := range b.Cells {
		n += b.Cells[i].WireSize()
	}
	return n
}

// MultiPutRequest carries several region batches bound for one server — the
// BufferedMutator's per-server flush RPC. The server applies the batches in
// order, deduplicating any it has already applied, and returns the first
// error it hit (retrying the whole request is safe: dedup makes re-applying
// the batches that did succeed a no-op).
type MultiPutRequest struct {
	Batches []RegionBatch
	Token   string
}

// WireSize implements rpc.Message.
func (m *MultiPutRequest) WireSize() int {
	n := len(m.Token)
	for i := range m.Batches {
		n += m.Batches[i].WireSize()
	}
	return n
}

// BulkLoadRequest installs pre-sorted cells directly as a store file in one
// region, bypassing the WAL and MemStore — HBase's HFile bulk load. The
// cells must be sorted in store order and fall inside the region's range.
type BulkLoadRequest struct {
	RegionID string
	Epoch    uint64
	Cells    []Cell
	Token    string
}

// WireSize implements rpc.Message.
func (m *BulkLoadRequest) WireSize() int {
	n := len(m.RegionID) + len(m.Token) + 8
	for i := range m.Cells {
		n += m.Cells[i].WireSize()
	}
	return n
}

// Ack is an empty success response.
type Ack struct{}

// WireSize implements rpc.Message.
func (Ack) WireSize() int { return 1 }

// Ping is the master's heartbeat probe to a region server. Master names the
// probing master and MasterEpoch carries its fencing epoch: a server that
// has been probed by a newer master rejects stale-epoch pings, so a deposed
// master cannot keep a server's lease alive. Zero values (bare probes from
// tests) bypass the check.
type Ping struct {
	Master      string
	MasterEpoch uint64
}

// WireSize implements rpc.Message.
func (p Ping) WireSize() int { return 9 + len(p.Master) }

// ScanRequest runs a Scan against one region. Epoch carries the routing
// epoch (see PutRequest). Replica selects which copy answers: 0 (the
// default) is the primary, higher values address a secondary — the
// timeline-read failover path, which skips epoch checks because a replica
// is allowed to lag the primary's ownership changes.
type ScanRequest struct {
	RegionID string
	Epoch    uint64
	Replica  int
	Scan     *Scan
	Token    string
}

// WireSize implements rpc.Message.
func (m *ScanRequest) WireSize() int {
	n := len(m.RegionID) + len(m.Token) + 8
	if m.Replica > 0 {
		n += 2
	}
	if m.Scan != nil {
		n += m.Scan.WireSize()
	}
	return n
}

// ScanResponse returns the matching rows. For paged fused requests it also
// carries the continuation state: More reports that the server stopped at
// the request's BatchLimit with work remaining, and Next is the cursor the
// client echoes back to resume exactly where this page ended. When the
// request asked for Columnar and the page is packable, the rows travel in
// Block instead of Results — same rows, same order, column-major.
type ScanResponse struct {
	Results []Result
	Block   *CellBlock
	More    bool
	Next    FusedCursor
	// Stale marks a page served (in whole or part) by a secondary replica:
	// the rows are a possibly-lagging prefix of the primary's history.
	// StalenessMs is the explicit bound on that lag — the longest any
	// serving replica had gone without draining its shipped queue. Every
	// stale response carries the bound, even when it is 0ms.
	Stale       bool
	StalenessMs int64
}

// WireSize implements rpc.Message.
func (m *ScanResponse) WireSize() int {
	n := 0
	for i := range m.Results {
		n += m.Results[i].WireSize()
	}
	if m.Block != nil {
		n += m.Block.WireSize()
	}
	if m.More {
		n += m.Next.WireSize() + 1
	}
	if m.Stale {
		n += 9
	}
	return n
}

// CellColumn is one column of a columnar page: the family:qualifier pair is
// carried once for the whole page instead of once per cell, and Values is
// row-aligned with CellBlock.Rows (nil = the row has no cell in this
// column). Cell timestamps and types are not carried — the columnar form
// serves latest-version scan decoding, and the server falls back to
// row-major Results whenever that would lose information.
type CellColumn struct {
	Family    string
	Qualifier string
	Values    [][]byte
}

// CellBlock is the column-major encoding of one fused page: row keys in
// scan order plus one row-aligned value array per projected column. Packing
// happens after the page's rows and continuation cursor are computed, so
// paging and mid-scan resume behave identically to the row-major form.
type CellBlock struct {
	Rows [][]byte
	Cols []CellColumn
}

// WireSize implements rpc.Message sizing: per-column metadata once, a
// presence bitmap, and length-prefixed values — the per-cell family/
// qualifier/timestamp overhead of the row-major form is gone.
func (b *CellBlock) WireSize() int {
	n := 0
	for _, r := range b.Rows {
		n += len(r) + 2
	}
	for i := range b.Cols {
		c := &b.Cols[i]
		n += len(c.Family) + len(c.Qualifier) + (len(b.Rows)+7)/8
		for _, v := range c.Values {
			if v != nil {
				n += len(v) + 2
			}
		}
	}
	return n
}

// Len reports the block's row count.
func (b *CellBlock) Len() int { return len(b.Rows) }

// BulkGetRequest fetches many individual rows from one region in one round
// trip — HBase's batched Get (paper §V-A).
type BulkGetRequest struct {
	RegionID    string
	Epoch       uint64
	Replica     int // copy to address; see ScanRequest
	Rows        [][]byte
	Columns     []Column
	MaxVersions int
	TimeRange   TimeRange
	Token       string
}

// WireSize implements rpc.Message.
func (m *BulkGetRequest) WireSize() int {
	n := len(m.RegionID) + len(m.Token) + 28
	if m.Replica > 0 {
		n += 2
	}
	for _, r := range m.Rows {
		n += len(r)
	}
	for _, c := range m.Columns {
		n += len(c.Family) + len(c.Qualifier)
	}
	return n
}

// ScanOp is one scan or bulk-get bound for a specific region, used inside a
// fused request. Epoch carries the per-region routing epoch (see
// PutRequest); each op is checked independently, since a fused request spans
// many regions that may have moved at different times.
type ScanOp struct {
	RegionID string
	Epoch    uint64
	Replica  int      // copy to address; see ScanRequest
	Scan     *Scan    // nil when Rows is set
	Rows     [][]byte // bulk get when non-empty
}

// FusedCursor marks a resume position inside a fused request's op list, so
// a bounded response can continue exactly where the previous page stopped.
// The zero value means "start from the beginning".
type FusedCursor struct {
	// Op is the index into FusedRequest.Ops to resume at.
	Op int
	// Row resumes a scan op at this start row (nil = the op's own StartRow).
	Row []byte
	// RowIdx resumes a bulk-get op at this index into its Rows list.
	RowIdx int
	// Sent counts rows already returned from the current scan op, so a
	// per-op Scan.Limit keeps its meaning across pages.
	Sent int
}

// WireSize implements rpc.Message sizing for embedded cursors.
func (c *FusedCursor) WireSize() int { return 12 + len(c.Row) }

// FusedRequest packs multiple Scan/BulkGet operations for regions hosted on
// the same server into a single RPC — the operators-fusion optimization
// (paper §VI-A.4). Options on Scan apply per-op; Columns etc. for Rows ops
// come from the accompanying Scan template.
//
// A positive BatchLimit turns the call into one page of a paged execution:
// the server returns at most BatchLimit rows plus a continuation cursor
// instead of materializing the whole fused result in one response. Cursor
// resumes a previous page (zero value = start).
type FusedRequest struct {
	Ops        []ScanOp
	BatchLimit int
	Cursor     FusedCursor
	// Columnar asks the server to pack the page column-major (CellBlock)
	// when lossless; the server silently falls back to Results otherwise.
	Columnar bool
	Token    string
}

// WireSize implements rpc.Message.
func (m *FusedRequest) WireSize() int {
	n := len(m.Token)
	if m.Columnar {
		n++
	}
	if m.BatchLimit > 0 {
		n += 4 + m.Cursor.WireSize()
	}
	for _, op := range m.Ops {
		n += len(op.RegionID) + 8
		if op.Replica > 0 {
			n += 2
		}
		if op.Scan != nil {
			n += op.Scan.WireSize()
		}
		for _, r := range op.Rows {
			n += len(r)
		}
	}
	return n
}

// CreateTableRequest creates a table pre-split at the given keys.
type CreateTableRequest struct {
	Desc      TableDescriptor
	SplitKeys [][]byte
	Token     string
}

// WireSize implements rpc.Message.
func (m *CreateTableRequest) WireSize() int {
	n := len(m.Desc.Name) + len(m.Token)
	for _, f := range m.Desc.Families {
		n += len(f)
	}
	for _, k := range m.SplitKeys {
		n += len(k)
	}
	return n
}

// TableRequest names a table for meta operations.
type TableRequest struct {
	Table string
	Token string
}

// WireSize implements rpc.Message.
func (m *TableRequest) WireSize() int { return len(m.Table) + len(m.Token) }

// RegionList is the meta response listing a table's regions in key order.
type RegionList struct {
	Regions []RegionInfo
}

// WireSize implements rpc.Message.
func (m *RegionList) WireSize() int {
	n := 0
	for i := range m.Regions {
		n += m.Regions[i].WireSize()
	}
	return n
}

// TableStats summarizes a table's storage: the master aggregates it from
// the hosting regions, the way hbase:meta + region metrics feed size-based
// decisions.
type TableStats struct {
	Bytes   int64
	Cells   int64
	Regions int
}

// WireSize implements rpc.Message.
func (TableStats) WireSize() int { return 20 }

// TableNames lists table names.
type TableNames struct {
	Names []string
}

// WireSize implements rpc.Message.
func (m *TableNames) WireSize() int {
	n := 0
	for _, s := range m.Names {
		n += len(s)
	}
	return n
}
