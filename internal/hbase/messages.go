package hbase

// RPC method names served by region servers and the master.
const (
	MethodPut          = "Put"
	MethodScan         = "Scan"
	MethodBulkGet      = "BulkGet"
	MethodFused        = "Fused"
	MethodCreateTable  = "CreateTable"
	MethodDeleteTable  = "DeleteTable"
	MethodTableRegions = "TableRegions"
	MethodListTables   = "ListTables"
	MethodTableStats   = "TableStats"
)

// PutRequest carries a batch of mutations for one region.
type PutRequest struct {
	RegionID string
	Cells    []Cell
	Token    string
}

// WireSize implements rpc.Message.
func (m *PutRequest) WireSize() int {
	n := len(m.RegionID) + len(m.Token)
	for i := range m.Cells {
		n += m.Cells[i].WireSize()
	}
	return n
}

// Ack is an empty success response.
type Ack struct{}

// WireSize implements rpc.Message.
func (Ack) WireSize() int { return 1 }

// ScanRequest runs a Scan against one region.
type ScanRequest struct {
	RegionID string
	Scan     *Scan
	Token    string
}

// WireSize implements rpc.Message.
func (m *ScanRequest) WireSize() int {
	n := len(m.RegionID) + len(m.Token)
	if m.Scan != nil {
		n += m.Scan.WireSize()
	}
	return n
}

// ScanResponse returns the matching rows.
type ScanResponse struct {
	Results []Result
}

// WireSize implements rpc.Message.
func (m *ScanResponse) WireSize() int {
	n := 0
	for i := range m.Results {
		n += m.Results[i].WireSize()
	}
	return n
}

// BulkGetRequest fetches many individual rows from one region in one round
// trip — HBase's batched Get (paper §V-A).
type BulkGetRequest struct {
	RegionID    string
	Rows        [][]byte
	Columns     []Column
	MaxVersions int
	TimeRange   TimeRange
	Token       string
}

// WireSize implements rpc.Message.
func (m *BulkGetRequest) WireSize() int {
	n := len(m.RegionID) + len(m.Token) + 20
	for _, r := range m.Rows {
		n += len(r)
	}
	for _, c := range m.Columns {
		n += len(c.Family) + len(c.Qualifier)
	}
	return n
}

// ScanOp is one scan or bulk-get bound for a specific region, used inside a
// fused request.
type ScanOp struct {
	RegionID string
	Scan     *Scan    // nil when Rows is set
	Rows     [][]byte // bulk get when non-empty
}

// FusedRequest packs multiple Scan/BulkGet operations for regions hosted on
// the same server into a single RPC — the operators-fusion optimization
// (paper §VI-A.4). Options on Scan apply per-op; Columns etc. for Rows ops
// come from the accompanying Scan template.
type FusedRequest struct {
	Ops   []ScanOp
	Token string
}

// WireSize implements rpc.Message.
func (m *FusedRequest) WireSize() int {
	n := len(m.Token)
	for _, op := range m.Ops {
		n += len(op.RegionID)
		if op.Scan != nil {
			n += op.Scan.WireSize()
		}
		for _, r := range op.Rows {
			n += len(r)
		}
	}
	return n
}

// CreateTableRequest creates a table pre-split at the given keys.
type CreateTableRequest struct {
	Desc      TableDescriptor
	SplitKeys [][]byte
	Token     string
}

// WireSize implements rpc.Message.
func (m *CreateTableRequest) WireSize() int {
	n := len(m.Desc.Name) + len(m.Token)
	for _, f := range m.Desc.Families {
		n += len(f)
	}
	for _, k := range m.SplitKeys {
		n += len(k)
	}
	return n
}

// TableRequest names a table for meta operations.
type TableRequest struct {
	Table string
	Token string
}

// WireSize implements rpc.Message.
func (m *TableRequest) WireSize() int { return len(m.Table) + len(m.Token) }

// RegionList is the meta response listing a table's regions in key order.
type RegionList struct {
	Regions []RegionInfo
}

// WireSize implements rpc.Message.
func (m *RegionList) WireSize() int {
	n := 0
	for i := range m.Regions {
		n += m.Regions[i].WireSize()
	}
	return n
}

// TableStats summarizes a table's storage: the master aggregates it from
// the hosting regions, the way hbase:meta + region metrics feed size-based
// decisions.
type TableStats struct {
	Bytes   int64
	Cells   int64
	Regions int
}

// WireSize implements rpc.Message.
func (TableStats) WireSize() int { return 20 }

// TableNames lists table names.
type TableNames struct {
	Names []string
}

// WireSize implements rpc.Message.
func (m *TableNames) WireSize() int {
	n := 0
	for _, s := range m.Names {
		n += len(s)
	}
	return n
}
