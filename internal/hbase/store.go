package hbase

import (
	"bytes"
	"sort"
)

// memStore is the in-memory write buffer of a region. Mutations append in
// O(1); readers sort a snapshot, cached until the next mutation so paged
// scans don't re-sort per page. It is guarded by the owning region's lock.
type memStore struct {
	cells  []Cell
	bytes  int
	sorted []Cell // cached snapshot; callers must not mutate it
}

func (m *memStore) add(c Cell) {
	m.cells = append(m.cells, c)
	m.bytes += c.WireSize()
	m.sorted = nil
}

func (m *memStore) reset() {
	m.cells = nil
	m.bytes = 0
	m.sorted = nil
}

// snapshot returns the cells sorted in store-file order. The slice is
// shared across calls until the next mutation: read-only to callers.
func (m *memStore) snapshot() []Cell {
	if m.sorted == nil && len(m.cells) > 0 {
		out := make([]Cell, len(m.cells))
		copy(out, m.cells)
		sort.SliceStable(out, func(i, j int) bool { return CompareCells(&out[i], &out[j]) < 0 })
		m.sorted = out
	}
	return m.sorted
}

// storeFile is an immutable run of cells sorted in CompareCells order —
// the simulator's HFile. Range reads binary-search the start position.
type storeFile struct {
	cells []Cell
	size  int
}

func newStoreFile(sorted []Cell) *storeFile {
	size := 0
	for i := range sorted {
		size += sorted[i].WireSize()
	}
	return &storeFile{cells: sorted, size: size}
}

// cellsInRange appends to dst every cell with startRow <= row < stopRow
// (stopRow nil means unbounded) and returns the extended slice.
func (f *storeFile) cellsInRange(dst []Cell, startRow, stopRow []byte) []Cell {
	i := sort.Search(len(f.cells), func(i int) bool {
		return bytes.Compare(f.cells[i].Row, startRow) >= 0
	})
	for ; i < len(f.cells); i++ {
		if stopRow != nil && bytes.Compare(f.cells[i].Row, stopRow) >= 0 {
			break
		}
		dst = append(dst, f.cells[i])
	}
	return dst
}

// mergeSorted merges pre-sorted runs of cells into one sorted slice.
// Runs earlier in the list win ties only through the stable sort below,
// which is irrelevant because CompareCells is a total order on the
// coordinates we care about (duplicates collapse during version resolution).
func mergeSorted(runs ...[]Cell) []Cell {
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]Cell, 0, total)
	for _, r := range runs {
		out = append(out, r...)
	}
	sort.SliceStable(out, func(i, j int) bool { return CompareCells(&out[i], &out[j]) < 0 })
	return out
}

// resolveVersions walks cells sorted in CompareCells order and produces the
// visible cells under HBase read semantics: delete tombstones mask every
// version at or below their timestamp for the same column, at most
// maxVersions live versions are returned per column (newest first), and
// only versions inside tr are visible. Tombstones themselves are never
// returned. keepAll=true (compaction) keeps tombstones and every surviving
// version instead.
func resolveVersions(sorted []Cell, maxVersions int, tr TimeRange) []Cell {
	if maxVersions <= 0 {
		maxVersions = 1
	}
	var out []Cell
	var colStart int
	for i := 0; i <= len(sorted); i++ {
		if i < len(sorted) && i > 0 && sameColumn(&sorted[i], &sorted[colStart]) {
			continue
		}
		if i > 0 {
			out = appendVisible(out, sorted[colStart:i], maxVersions, tr)
		}
		colStart = i
	}
	return out
}

func appendVisible(out []Cell, col []Cell, maxVersions int, tr TimeRange) []Cell {
	var deleteFloor int64 = -1 << 63
	hasFloor := false
	taken := 0
	for i := range col {
		c := &col[i]
		if c.Type == TypeDelete {
			if !hasFloor || c.Timestamp > deleteFloor {
				deleteFloor = c.Timestamp
				hasFloor = true
			}
			continue
		}
		if hasFloor && c.Timestamp <= deleteFloor {
			continue
		}
		if !tr.Contains(c.Timestamp) {
			continue
		}
		if taken >= maxVersions {
			continue
		}
		out = append(out, *c)
		taken++
	}
	return out
}

// compact merges cells from several sorted runs into one run with deletes
// applied and versions trimmed to maxVersions, dropping tombstones — a
// major compaction.
func compact(maxVersions int, runs ...[]Cell) []Cell {
	return resolveVersions(mergeSorted(runs...), maxVersions, TimeRange{})
}
