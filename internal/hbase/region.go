package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/wal"
)

// StoreConfig tunes a region's storage behaviour.
type StoreConfig struct {
	// FlushThresholdBytes triggers a MemStore flush; defaults to 256 KiB.
	FlushThresholdBytes int
	// CompactThresholdFiles triggers a major compaction when the number of
	// store files reaches it; defaults to 4.
	CompactThresholdFiles int
	// SplitThresholdBytes marks the region as needing a split when its
	// total size exceeds it; 0 disables automatic splits.
	SplitThresholdBytes int
	// ServerLease is how long a region server keeps serving after its last
	// master heartbeat: a server silent longer self-fences (stops accepting
	// writes, and reads too when FenceReads is set) so a zombie cut off from
	// the master cannot double-serve regions the master has reassigned.
	// 0 disables self-fencing. Safe operation requires
	// ServerLease <= deathThreshold × heartbeat interval: the lease must
	// expire before the master gives the region to someone else.
	ServerLease time.Duration
	// FenceReads extends self-fencing to reads. Off, a self-fenced server
	// still answers reads (monotonic-read staleness is tolerated); on, it
	// rejects them with ErrFenced, trading availability for freshness.
	FenceReads bool
	// RegionReplication is the total number of copies of each region the
	// master places, primary included, each on a distinct server — HBase's
	// read-replica feature. Values <= 1 mean a single primary copy and
	// leave every code path byte-identical to the replica-free build.
	// Secondary copies serve only Consistency=Timeline reads; writes and
	// Strong reads always route to the primary.
	RegionReplication int
}

func (c StoreConfig) withDefaults() StoreConfig {
	if c.FlushThresholdBytes <= 0 {
		c.FlushThresholdBytes = 256 << 10
	}
	if c.CompactThresholdFiles <= 0 {
		c.CompactThresholdFiles = 4
	}
	return c
}

// Region stores the cells of one row-key range of one table. All access is
// serialized through its mutex; concurrency in the simulator comes from
// many regions, as it does in HBase.
type Region struct {
	info    RegionInfo
	desc    *TableDescriptor
	cfg     StoreConfig
	meter   *metrics.Registry
	mu      sync.RWMutex
	mem     memStore
	files   []*storeFile
	log     *wal.Log
	flushed uint64 // WAL sequence below which data is in store files

	// dedup is the live multi-put dedup window; durableDedup is its state as
	// of the last flush, the analogue of max-seq-id metadata persisted with
	// store files. Crash recovery rebuilds the live window from the durable
	// snapshot plus the batch stamps on replayed WAL entries, so the window
	// always covers exactly the acknowledged history. Both lazily allocated.
	dedup        *dedupWindow
	durableDedup *dedupWindow

	// writeLoad counts cells written since the master last sampled it — the
	// per-region write-rate signal hot-region detection splits by.
	writeLoad int64

	// gen counts mutations; view caches the resolved default read
	// (maxVersions=1, unbounded time range) so paged scans clip a shared
	// sorted run instead of re-merging the region per page. viewGen
	// records the generation the view was built at; -1 = never built,
	// which also covers regions assembled directly (splits).
	gen     int64
	view    []Cell
	viewGen int64

	// Primary-side replication state: repl fans acked WAL entries out to
	// this region's secondary copies (nil when unreplicated). The pointer
	// is carried across Reopen so a promoted or reassigned primary keeps
	// shipping to the surviving copies.
	repl *replicator

	// Secondary-copy state (info.Replica > 0): entries shipped from the
	// primary queue in pending and apply in sequence order; appliedSeq is
	// the high-water mark already in the MemStore, and caughtUpAt is when
	// the copy last drained to parity with the primary — the staleness
	// bound a timeline read reports. applyHold freezes the apply loop so
	// tests can inject replication lag deterministically.
	pending    []shippedEntry
	appliedSeq uint64
	applyHold  bool
	caughtUpAt time.Time
}

// NewRegion creates an empty region for the given range.
func NewRegion(info RegionInfo, desc *TableDescriptor, cfg StoreConfig, meter *metrics.Registry) *Region {
	return &Region{
		info:    info,
		desc:    desc,
		cfg:     cfg.withDefaults(),
		meter:   meter,
		log:     wal.New(meter),
		viewGen: -1,
	}
}

// Info returns a copy of the region's identity. It takes the region lock
// because Host is rebound when the region moves (balance, failover
// reassignment) while readers may be concurrently locating it.
func (r *Region) Info() RegionInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.info
}

// setHost rebinds the region's hosting server and returns the key the
// server indexes the copy under: the bare region ID for the primary, a
// replica-suffixed form for secondary copies.
func (r *Region) setHost(host string) string {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.info.Host = host
	return regionKey(r.info.ID, r.info.Replica)
}

// setEpoch stamps the region's ownership epoch (master-only, at assignment).
func (r *Region) setEpoch(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.info.Epoch = epoch
}

// Epoch reports the ownership epoch the region currently holds.
func (r *Region) Epoch() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.info.Epoch
}

// Descriptor returns the table descriptor the region serves.
func (r *Region) Descriptor() TableDescriptor { return *r.desc }

// Put applies one cell mutation: WAL first, then MemStore, then flush if
// the buffer is over threshold.
func (r *Region) Put(c Cell) error {
	if err := r.checkCell(&c); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Replica > 0 {
		return fmt.Errorf("%w: replica %d of region %s is read-only", ErrNotServing, r.info.Replica, r.info.ID)
	}
	if err := r.appendStamped(c, "", 0); err != nil {
		return err
	}
	r.writeLoad++
	r.maybeFlushLocked()
	return nil
}

// PutBatch applies many cells under one lock acquisition, the path bulk
// writes take.
func (r *Region) PutBatch(cells []Cell) error {
	_, err := r.PutBatchStamped("", 0, 0, cells)
	return err
}

// PutBatchStamped applies one sequence-stamped batch, deduplicating on the
// (writer, seq) stamp: a batch the region has already applied is acknowledged
// without re-applying, which is what makes retrying a multi-put whose ack was
// lost exactly-once. applied reports whether the cells were written (false =
// duplicate, already durable). An empty writer disables dedup (plain puts).
// lowWater is the writer's claim that every sequence below it is resolved
// and unretryable; it lets the dedup window prune safely (0 = no claim).
func (r *Region) PutBatchStamped(writer string, seq, lowWater uint64, cells []Cell) (applied bool, err error) {
	for i := range cells {
		if err := r.checkCell(&cells[i]); err != nil {
			return false, err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Replica > 0 {
		return false, fmt.Errorf("%w: replica %d of region %s is read-only", ErrNotServing, r.info.Replica, r.info.ID)
	}
	if writer != "" && r.dedupLocked().has(writer, seq) {
		r.meter.Inc(metrics.BatchesDeduped)
		return false, nil
	}
	for i := range cells {
		if err := r.appendStamped(cells[i], writer, seq); err != nil {
			return false, err
		}
	}
	if writer != "" {
		r.dedupLocked().mark(writer, seq, lowWater)
	}
	r.writeLoad += int64(len(cells))
	r.maybeFlushLocked()
	return true, nil
}

// locked; lazily allocates the live dedup window.
func (r *Region) dedupLocked() *dedupWindow {
	if r.dedup == nil {
		r.dedup = newDedupWindow()
	}
	return r.dedup
}

func (r *Region) checkCell(c *Cell) error {
	if !r.info.ContainsRow(c.Row) {
		return fmt.Errorf("hbase: row %x outside region %s", c.Row, r.info.ID)
	}
	if !r.desc.HasFamily(c.Family) {
		return fmt.Errorf("hbase: unknown column family %q in table %q", c.Family, r.desc.Name)
	}
	if c.Type != TypePut && c.Type != TypeDelete {
		return fmt.Errorf("hbase: cell has invalid type %d", c.Type)
	}
	return nil
}

// locked. The WAL append carries the region's held epoch: once the log has
// been fenced at a newer epoch (the region was reassigned), the append — and
// therefore the write — fails before it is acknowledged, surfacing as the
// retryable ErrFenced.
func (r *Region) appendStamped(c Cell, writer string, batchSeq uint64) error {
	kind := wal.KindPut
	if c.Type == TypeDelete {
		kind = wal.KindDelete
	}
	if _, err := r.log.Append(wal.Entry{
		Epoch: r.info.Epoch,
		Table: r.desc.Name, Region: r.info.ID, Kind: kind,
		Row: c.Row, Family: c.Family, Qualifier: c.Qualifier,
		Timestamp: c.Timestamp, Value: c.Value,
		Writer: writer, Batch: batchSeq,
	}); err != nil {
		if errors.Is(err, wal.ErrFenced) {
			return fmt.Errorf("%w: region %s epoch %d superseded", ErrFenced, r.info.ID, r.info.Epoch)
		}
		return err
	}
	r.mem.add(c)
	r.gen++
	return nil
}

// locked
func (r *Region) maybeFlushLocked() {
	if r.mem.bytes < r.cfg.FlushThresholdBytes {
		return
	}
	r.flushLocked()
}

// locked
func (r *Region) flushLocked() {
	if len(r.mem.cells) == 0 {
		return
	}
	// Secondary copies never flush: they share the primary's WAL, and
	// truncating it out from under the primary would lose acknowledged
	// history. Their MemStore simply accumulates shipped entries.
	if r.info.Replica > 0 {
		return
	}
	// A fenced owner must not flush: truncating the shared WAL below what
	// the new owner replays would lose acknowledged history. Its buffered
	// cells were all logged pre-fence, so the successor recovers them.
	if r.log.Epoch() > r.info.Epoch {
		return
	}
	r.files = append(r.files, newStoreFile(r.mem.snapshot()))
	r.mem.reset()
	r.gen++
	r.flushed = r.log.NextSeq()
	r.log.Truncate(r.flushed)
	// Snapshot the dedup window alongside the flushed data: the WAL entries
	// that carried these batch stamps were just truncated, so after a crash
	// the stamps can only be recovered from this snapshot.
	r.durableDedup = r.dedup.clone()
	r.meter.Inc(metrics.MemstoreFlushes)
	if len(r.files) >= r.cfg.CompactThresholdFiles {
		r.compactLocked()
	}
}

// Flush forces the MemStore to a store file.
func (r *Region) Flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
}

// locked
func (r *Region) compactLocked() {
	runs := make([][]Cell, len(r.files))
	for i, f := range r.files {
		runs[i] = f.cells
	}
	merged := compact(r.desc.maxVersions(), runs...)
	r.files = []*storeFile{newStoreFile(merged)}
	r.gen++
	r.meter.Inc(metrics.Compactions)
}

// Compact forces a major compaction.
func (r *Region) Compact() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.flushLocked()
	r.compactLocked()
}

// MemBytes reports the region's buffered (unflushed) MemStore bytes — the
// quantity server-wide memstore watermarks aggregate.
func (r *Region) MemBytes() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.mem.bytes
}

// TakeWriteLoad returns the cells written since the previous call and resets
// the counter — the master samples it each janitor pass, so the value is a
// per-interval write rate, not a lifetime total.
func (r *Region) TakeWriteLoad() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.writeLoad
	r.writeLoad = 0
	return n
}

// WriteLoad peeks at the cells written since the master last sampled the
// counter, without resetting it — the status snapshot reads it this way so
// observation never perturbs hot-region detection.
func (r *Region) WriteLoad() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.writeLoad
}

// Size reports the region's total stored bytes (MemStore + store files).
func (r *Region) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := r.mem.bytes
	for _, f := range r.files {
		n += f.size
	}
	return n
}

// CellCount reports how many cells (including not-yet-compacted versions
// and tombstones) the region stores — a cheap cardinality signal.
func (r *Region) CellCount() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := int64(len(r.mem.cells))
	for _, f := range r.files {
		n += int64(len(f.cells))
	}
	return n
}

// StoreFileCount reports how many store files the region currently holds.
func (r *Region) StoreFileCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.files)
}

// NeedsSplit reports whether the region has outgrown its split threshold.
func (r *Region) NeedsSplit() bool {
	if r.cfg.SplitThresholdBytes <= 0 {
		return false
	}
	return r.Size() > r.cfg.SplitThresholdBytes
}

// SplitPoint proposes a midpoint row key for splitting, or nil when the
// region holds too little distinct data to split.
func (r *Region) SplitPoint() []byte {
	r.mu.RLock()
	defer r.mu.RUnlock()
	all := r.allCellsLocked(nil, nil)
	if len(all) == 0 {
		return nil
	}
	mid := all[len(all)/2].Row
	// The split point must differ from the region start key or the low
	// daughter would be empty-ranged.
	if len(r.info.StartKey) > 0 && bytes.Equal(mid, r.info.StartKey) {
		return nil
	}
	if bytes.Equal(mid, all[0].Row) && bytes.Equal(mid, all[len(all)-1].Row) {
		return nil // single-row region
	}
	return append([]byte(nil), mid...)
}

// SplitInto materializes two daughter regions at splitKey and returns them.
// The parent should be discarded afterwards. A non-zero newEpoch fences the
// parent's WAL at it and stamps the daughters with it, so any write still in
// flight against the parent fails un-acknowledged rather than landing in a
// region about to be thrown away — the fencing that makes a split safe under
// concurrent ingest. newEpoch 0 inherits the parent's epoch without fencing
// (direct single-region use, where no concurrent writer exists).
//
// Both daughters inherit the parent's full dedup window: a stamped batch
// retried after the split regroups into row-disjoint pieces, and each
// daughter independently recognizes the original stamp, so the retry stays
// exactly-once on both sides of the boundary.
func (r *Region) SplitInto(lowID, highID string, splitKey []byte, newEpoch uint64) (*Region, *Region, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(splitKey) == 0 || !r.info.ContainsRow(splitKey) {
		return nil, nil, fmt.Errorf("hbase: split key %x outside region %s", splitKey, r.info.ID)
	}
	epoch := r.info.Epoch
	if newEpoch > 0 {
		epoch = newEpoch
		r.log.Fence(newEpoch)
	}
	all := r.allCellsLocked(nil, nil)
	lowInfo := RegionInfo{Table: r.info.Table, ID: lowID, StartKey: r.info.StartKey, EndKey: append([]byte(nil), splitKey...), Host: r.info.Host, Epoch: epoch}
	highInfo := RegionInfo{Table: r.info.Table, ID: highID, StartKey: append([]byte(nil), splitKey...), EndKey: r.info.EndKey, Host: r.info.Host, Epoch: epoch}
	low := NewRegion(lowInfo, r.desc, r.cfg, r.meter)
	high := NewRegion(highInfo, r.desc, r.cfg, r.meter)
	var lowCells, highCells []Cell
	for _, c := range all {
		if bytes.Compare(c.Row, splitKey) < 0 {
			lowCells = append(lowCells, c)
		} else {
			highCells = append(highCells, c)
		}
	}
	if len(lowCells) > 0 {
		low.files = []*storeFile{newStoreFile(lowCells)}
	}
	if len(highCells) > 0 {
		high.files = []*storeFile{newStoreFile(highCells)}
	}
	// The daughters are born flushed (all parent data is in their store
	// files), so the inherited window is durable state on both.
	low.dedup, low.durableDedup = r.dedup.clone(), r.dedup.clone()
	high.dedup, high.durableDedup = r.dedup.clone(), r.dedup.clone()
	r.meter.Inc(metrics.RegionSplits)
	return low, high, nil
}

// locked; merged, sorted cells within [start, stop).
func (r *Region) allCellsLocked(start, stop []byte) []Cell {
	runs := make([][]Cell, 0, len(r.files)+1)
	for _, f := range r.files {
		runs = append(runs, f.cellsInRange(nil, start, stop))
	}
	// The snapshot is cached and shared, so clip it by subslicing (it is
	// sorted by row first) rather than filtering in place.
	memCells := r.mem.snapshot()
	if start != nil || stop != nil {
		lo := sort.Search(len(memCells), func(i int) bool {
			return bytes.Compare(memCells[i].Row, start) >= 0
		})
		hi := len(memCells)
		if stop != nil {
			hi = lo + sort.Search(len(memCells)-lo, func(i int) bool {
				return bytes.Compare(memCells[lo+i].Row, stop) >= 0
			})
		}
		memCells = memCells[lo:hi]
	}
	runs = append(runs, memCells)
	return mergeSorted(runs...)
}

// Scan is a region-local range read with server-side projection, version
// and time-range resolution, filtering, and an optional row limit.
type Scan struct {
	StartRow    []byte // inclusive; nil = region start
	StopRow     []byte // exclusive; nil = region end
	Columns     []Column
	Filter      Filter
	MaxVersions int
	TimeRange   TimeRange
	Limit       int // max rows; 0 = unlimited
}

// WireSize implements rpc.Message for scan requests.
func (s *Scan) WireSize() int {
	n := len(s.StartRow) + len(s.StopRow) + 16
	for _, c := range s.Columns {
		n += len(c.Family) + len(c.Qualifier)
	}
	if s.Filter != nil {
		n += s.Filter.WireSize()
	}
	return n
}

// RunScan executes the scan against this region, metering rows scanned vs
// returned so the benchmark harness can attribute pushdown savings.
func (r *Region) RunScan(s *Scan) []Result {
	return r.RunScanWith(s, metrics.Direct(r.meter))
}

// RunScanWith is RunScan writing its counters through m, which lets the
// RPC handlers attribute rows to the calling query's scoped registry as
// well as the cluster's. Counters are accumulated locally and written once
// per scan rather than per row, so metering stays off the row loop's hot
// path.
func (r *Region) RunScanWith(s *Scan, m metrics.Meter) []Result {
	start, stop := s.StartRow, s.StopRow
	if len(r.info.StartKey) > 0 && (start == nil || bytes.Compare(start, r.info.StartKey) < 0) {
		start = r.info.StartKey
	}
	if len(r.info.EndKey) > 0 && (stop == nil || bytes.Compare(stop, r.info.EndKey) > 0) {
		stop = r.info.EndKey
	}
	maxV := s.MaxVersions
	if maxV <= 0 {
		maxV = 1
	}
	if maxV > r.desc.maxVersions() {
		maxV = r.desc.maxVersions()
	}
	var visible []Cell
	if maxV == 1 && s.TimeRange.Unbounded() {
		visible = clipRows(r.defaultView(), start, stop)
	} else {
		r.mu.RLock()
		cells := r.allCellsLocked(start, stop)
		r.mu.RUnlock()
		visible = resolveVersions(cells, maxV, s.TimeRange)
	}

	var out []Result
	var rowsScanned, cellsScanned, rowsReturned, cellsReturned int64
	i := 0
	for i < len(visible) {
		j := i
		for j < len(visible) && bytes.Equal(visible[j].Row, visible[i].Row) {
			j++
		}
		row := visible[i:j]
		rowsScanned++
		cellsScanned += int64(len(row))
		res := buildResult(row, s.Columns)
		if !res.Empty() && (s.Filter == nil || matchWithFullRow(s.Filter, row, &res)) {
			rowsReturned++
			cellsReturned += int64(len(res.Cells))
			out = append(out, res)
			if s.Limit > 0 && len(out) >= s.Limit {
				break
			}
		}
		i = j
	}
	m.Add(metrics.RowsScanned, rowsScanned)
	m.Add(metrics.CellsScanned, cellsScanned)
	m.Add(metrics.RowsReturned, rowsReturned)
	m.Add(metrics.CellsReturned, cellsReturned)
	m.Inc(metrics.RegionsScanned)
	return out
}

// defaultView returns (building if stale) the region's resolved default
// read: every visible cell under maxVersions=1 and an unbounded time range,
// sorted in store order. The slice is shared — callers must not mutate it.
func (r *Region) defaultView() []Cell {
	r.mu.RLock()
	if r.viewGen == r.gen {
		v := r.view
		r.mu.RUnlock()
		return v
	}
	r.mu.RUnlock()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.viewGen != r.gen {
		r.view = resolveVersions(r.allCellsLocked(nil, nil), 1, TimeRange{})
		r.viewGen = r.gen
	}
	return r.view
}

// clipRows subslices a row-sorted cell run to startRow <= row < stopRow
// without copying (nil bounds are open).
func clipRows(cells []Cell, startRow, stopRow []byte) []Cell {
	lo := sort.Search(len(cells), func(i int) bool {
		return bytes.Compare(cells[i].Row, startRow) >= 0
	})
	hi := len(cells)
	if stopRow != nil {
		hi = lo + sort.Search(len(cells)-lo, func(i int) bool {
			return bytes.Compare(cells[lo+i].Row, stopRow) >= 0
		})
	}
	return cells[lo:hi]
}

// matchWithFullRow evaluates the filter against the full row (all columns),
// as HBase does, even when the projection later narrows the returned cells.
func matchWithFullRow(f Filter, fullRow []Cell, projected *Result) bool {
	full := Result{Row: projected.Row, Cells: fullRow}
	return f.Match(&full)
}

func buildResult(row []Cell, cols []Column) Result {
	res := Result{Row: row[0].Row}
	if len(cols) == 0 {
		res.Cells = append(res.Cells, row...)
		return res
	}
	for i := range row {
		c := &row[i]
		for _, want := range cols {
			if c.Family == want.Family && (want.Qualifier == "" || c.Qualifier == want.Qualifier) {
				res.Cells = append(res.Cells, *c)
				break
			}
		}
	}
	return res
}

// Get reads one row, honoring the same projection/version/time options as
// Scan.
func (r *Region) Get(row []byte, cols []Column, maxVersions int, tr TimeRange) Result {
	return r.GetWith(row, cols, maxVersions, tr, metrics.Direct(r.meter))
}

// GetWith is Get writing its counters through m (see RunScanWith).
func (r *Region) GetWith(row []byte, cols []Column, maxVersions int, tr TimeRange, m metrics.Meter) Result {
	s := &Scan{StartRow: row, StopRow: append(append([]byte(nil), row...), 0), Columns: cols, MaxVersions: maxVersions, TimeRange: tr, Limit: 1}
	results := r.RunScanWith(s, m)
	if len(results) == 0 {
		return Result{Row: append([]byte(nil), row...)}
	}
	return results[0]
}

// RecoverFromWAL rebuilds MemStore state by replaying the region's log from
// the last flushed sequence; used after a simulated crash drops the
// MemStore.
func (r *Region) RecoverFromWAL() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mem.reset()
	r.gen++
	// The live dedup window tracked un-flushed batches that just evaporated
	// with the MemStore; rebuild it from the flush-time snapshot plus the
	// batch stamps on the entries replayed below, so it ends up covering
	// exactly the recovered history.
	r.dedup = r.durableDedup.clone()
	return r.log.Replay(r.flushed, func(e wal.Entry) error {
		// Discard entries stamped with an epoch newer than the ownership
		// this region holds — they belong to a fenced-off future the log
		// should never contain (defense in depth; append-time fencing
		// already keeps them out).
		if e.Epoch > r.info.Epoch {
			return nil
		}
		typ := TypePut
		if e.Kind == wal.KindDelete {
			typ = TypeDelete
		}
		r.mem.add(Cell{Row: e.Row, Family: e.Family, Qualifier: e.Qualifier, Timestamp: e.Timestamp, Type: typ, Value: e.Value})
		if e.Writer != "" {
			// Replayed entries carry no low-water claim; the window converges
			// again on the writer's next live batch.
			r.dedup.mark(e.Writer, e.Batch, 0)
		}
		r.gen++
		r.meter.Inc(metrics.WALEntriesReplayed)
		return nil
	})
}

// AdoptEpoch moves the live region to a new ownership epoch in place: the
// WAL is fenced at the new epoch and subsequent appends stamp it — the
// graceful-drain path, where the same object (MemStore included) changes
// servers with nothing to replay.
func (r *Region) AdoptEpoch(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log.Fence(epoch)
	r.info.Epoch = epoch
}

// Reopen fences the region's WAL at newEpoch and returns a fresh Region
// object holding the same durable state (store files + log) under the new
// ownership epoch — the reassignment path after a server is declared dead.
// The fence is raised while holding the old region's lock, so an in-flight
// zombie write or flush is strictly before or strictly after it: before,
// the entry is in the log and the successor replays it; after, the append
// is rejected un-acknowledged and the flush refuses to truncate. The caller
// replays the successor's WAL (RecoverFromWAL) to rebuild its MemStore.
func (r *Region) Reopen(newEpoch uint64) *Region {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.log.Fence(newEpoch)
	info := r.info
	info.Epoch = newEpoch
	nr := &Region{
		info:    info,
		desc:    r.desc,
		cfg:     r.cfg,
		meter:   r.meter,
		files:   append([]*storeFile(nil), r.files...),
		log:     r.log,
		flushed: r.flushed,
		viewGen: -1,
		repl:    r.repl,
		// The successor starts from durable state and replays the WAL tail
		// (RecoverFromWAL), which rebuilds the live window from this same
		// snapshot — so only the durable half carries over.
		dedup:        r.durableDedup.clone(),
		durableDedup: r.durableDedup.clone(),
	}
	return nr
}

// DropMemStore simulates a crash that loses buffered writes (for recovery
// tests): the MemStore is cleared without flushing. The live dedup window
// falls back to the flush-time snapshot with it — the lost batches' stamps
// must be forgotten too, or a retry of an UNACKED batch would be wrongly
// deduplicated and the write lost.
func (r *Region) DropMemStore() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mem.reset()
	r.dedup = r.durableDedup.clone()
	r.gen++
}

// BulkLoad installs pre-sorted cells directly as a store file, bypassing the
// WAL and MemStore — the HFile bulk-load path. The cells must be sorted in
// store order (CompareCells) and fall inside the region's range. The file is
// durable on installation (store files survive crashes by construction
// here), which is why skipping the WAL is safe.
func (r *Region) BulkLoad(cells []Cell) error {
	for i := range cells {
		if err := r.checkCell(&cells[i]); err != nil {
			return err
		}
		if i > 0 && CompareCells(&cells[i-1], &cells[i]) > 0 {
			return fmt.Errorf("hbase: bulk load cells not in store order at index %d", i)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Replica > 0 {
		return fmt.Errorf("%w: replica %d of region %s is read-only", ErrNotServing, r.info.Replica, r.info.ID)
	}
	// No WAL append happens, so check the fence explicitly: a region whose
	// log was fenced at a newer epoch has been reassigned or split away.
	if r.log.Epoch() > r.info.Epoch {
		return fmt.Errorf("%w: region %s epoch %d superseded", ErrFenced, r.info.ID, r.info.Epoch)
	}
	if len(cells) == 0 {
		return nil
	}
	r.files = append(r.files, newStoreFile(append([]Cell(nil), cells...)))
	r.gen++
	r.meter.Inc(metrics.BulkLoads)
	r.meter.Add(metrics.BulkLoadCells, int64(len(cells)))
	if len(r.files) >= r.cfg.CompactThresholdFiles {
		r.compactLocked()
	}
	return nil
}
