package hbase

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func cell(row, fam, qual string, ts int64, val string) Cell {
	return Cell{Row: []byte(row), Family: fam, Qualifier: qual, Timestamp: ts, Type: TypePut, Value: []byte(val)}
}

func tomb(row, fam, qual string, ts int64) Cell {
	return Cell{Row: []byte(row), Family: fam, Qualifier: qual, Timestamp: ts, Type: TypeDelete}
}

func TestCompareCellsOrdering(t *testing.T) {
	ordered := []Cell{
		tomb("a", "cf", "q", 5),
		cell("a", "cf", "q", 5, "x"),
		cell("a", "cf", "q", 3, "x"),
		cell("a", "cf", "r", 9, "x"),
		cell("a", "dg", "a", 9, "x"),
		cell("b", "cf", "q", 1, "x"),
	}
	for i := 0; i+1 < len(ordered); i++ {
		if CompareCells(&ordered[i], &ordered[i+1]) >= 0 {
			t.Errorf("cells %d and %d out of order: %v vs %v", i, i+1, ordered[i].String(), ordered[i+1].String())
		}
	}
	if CompareCells(&ordered[0], &ordered[0]) != 0 {
		t.Error("cell must equal itself")
	}
}

func TestMemStoreSnapshotSorted(t *testing.T) {
	var m memStore
	m.add(cell("b", "cf", "q", 1, "2"))
	m.add(cell("a", "cf", "q", 1, "1"))
	m.add(cell("a", "cf", "q", 9, "newer"))
	snap := m.snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if !sort.SliceIsSorted(snap, func(i, j int) bool { return CompareCells(&snap[i], &snap[j]) < 0 }) {
		t.Error("snapshot must be sorted")
	}
	if string(snap[0].Value) != "newer" {
		t.Errorf("newest version of row a must sort first, got %s", snap[0].String())
	}
	if m.bytes == 0 {
		t.Error("memstore must track size")
	}
	m.reset()
	if m.bytes != 0 || len(m.cells) != 0 {
		t.Error("reset must clear the memstore")
	}
}

func TestStoreFileCellsInRange(t *testing.T) {
	cells := []Cell{
		cell("a", "cf", "q", 1, "1"),
		cell("c", "cf", "q", 1, "3"),
		cell("e", "cf", "q", 1, "5"),
	}
	f := newStoreFile(cells)
	got := f.cellsInRange(nil, []byte("b"), []byte("e"))
	if len(got) != 1 || string(got[0].Row) != "c" {
		t.Errorf("range [b,e) = %v", got)
	}
	if got := f.cellsInRange(nil, nil, nil); len(got) != 3 {
		t.Errorf("unbounded range returned %d cells", len(got))
	}
	if got := f.cellsInRange(nil, []byte("f"), nil); len(got) != 0 {
		t.Errorf("range beyond end returned %d cells", len(got))
	}
	if f.size == 0 {
		t.Error("store file must track size")
	}
}

func TestResolveVersionsNewestFirstAndLimit(t *testing.T) {
	sorted := mergeSorted([]Cell{
		cell("r", "cf", "q", 1, "v1"),
		cell("r", "cf", "q", 2, "v2"),
		cell("r", "cf", "q", 3, "v3"),
	})
	got := resolveVersions(sorted, 2, TimeRange{})
	if len(got) != 2 {
		t.Fatalf("want 2 versions, got %d", len(got))
	}
	if string(got[0].Value) != "v3" || string(got[1].Value) != "v2" {
		t.Errorf("versions = %v, %v", got[0].String(), got[1].String())
	}
}

func TestResolveVersionsTombstoneMasks(t *testing.T) {
	sorted := mergeSorted([]Cell{
		cell("r", "cf", "q", 1, "old"),
		cell("r", "cf", "q", 5, "mid"),
		tomb("r", "cf", "q", 5),
		cell("r", "cf", "q", 9, "new"),
	})
	got := resolveVersions(sorted, 10, TimeRange{})
	if len(got) != 1 || string(got[0].Value) != "new" {
		t.Errorf("tombstone at ts=5 must mask versions <= 5, got %v", got)
	}
}

func TestResolveVersionsTimeRange(t *testing.T) {
	sorted := mergeSorted([]Cell{
		cell("r", "cf", "q", 10, "a"),
		cell("r", "cf", "q", 20, "b"),
		cell("r", "cf", "q", 30, "c"),
	})
	got := resolveVersions(sorted, 10, TimeRange{Min: 15, Max: 30})
	if len(got) != 1 || string(got[0].Value) != "b" {
		t.Errorf("time range [15,30) = %v", got)
	}
	// Exact timestamp read: [ts, ts+1).
	got = resolveVersions(sorted, 10, TimeRange{Min: 10, Max: 11})
	if len(got) != 1 || string(got[0].Value) != "a" {
		t.Errorf("point read ts=10 = %v", got)
	}
}

func TestResolveVersionsMultipleColumns(t *testing.T) {
	sorted := mergeSorted([]Cell{
		cell("r", "cf", "a", 1, "va"),
		cell("r", "cf", "b", 1, "vb"),
		tomb("r", "cf", "b", 2),
		cell("r2", "cf", "a", 1, "r2a"),
	})
	got := resolveVersions(sorted, 1, TimeRange{})
	if len(got) != 2 {
		t.Fatalf("visible = %v", got)
	}
	if string(got[0].Row) != "r" || got[0].Qualifier != "a" || string(got[1].Row) != "r2" {
		t.Errorf("visible = %v, %v", got[0].String(), got[1].String())
	}
}

func TestCompactDropsTombstonesAndTrims(t *testing.T) {
	run1 := mergeSorted([]Cell{cell("r", "cf", "q", 1, "v1"), cell("r", "cf", "q", 2, "v2")})
	run2 := mergeSorted([]Cell{tomb("r", "cf", "q", 1), cell("r", "cf", "q", 3, "v3")})
	out := compact(1, run1, run2)
	if len(out) != 1 || string(out[0].Value) != "v3" {
		t.Errorf("compact = %v", out)
	}
	for _, c := range out {
		if c.Type == TypeDelete {
			t.Error("compaction must drop tombstones")
		}
	}
}

func TestResolveVersionsProperty(t *testing.T) {
	// Visible cells are always a subset of the input puts, sorted, with at
	// most maxVersions per column, and never include masked versions.
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(seed int64, maxV uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(40)
		var cells []Cell
		for i := 0; i < n; i++ {
			row := fmt.Sprintf("r%d", rng.Intn(3))
			qual := fmt.Sprintf("q%d", rng.Intn(3))
			ts := int64(rng.Intn(10))
			if rng.Intn(4) == 0 {
				cells = append(cells, tomb(row, "cf", qual, ts))
			} else {
				cells = append(cells, cell(row, "cf", qual, ts, fmt.Sprintf("v%d", i)))
			}
		}
		mv := int(maxV%5) + 1
		sorted := mergeSorted(cells)
		got := resolveVersions(sorted, mv, TimeRange{})
		if !sort.SliceIsSorted(got, func(i, j int) bool { return CompareCells(&got[i], &got[j]) < 0 }) {
			return false
		}
		counts := make(map[string]int)
		for i := range got {
			c := &got[i]
			if c.Type == TypeDelete {
				return false
			}
			key := string(c.Row) + "/" + c.Qualifier
			counts[key]++
			if counts[key] > mv {
				return false
			}
			// No tombstone in the input may mask this cell.
			for j := range cells {
				d := &cells[j]
				if d.Type == TypeDelete && sameColumn(c, d) && c.Timestamp <= d.Timestamp {
					return false
				}
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestTimeRangeContains(t *testing.T) {
	if !(TimeRange{}).Contains(0) || !(TimeRange{}).Contains(1<<60) {
		t.Error("unbounded range must contain everything")
	}
	tr := TimeRange{Min: 5, Max: 10}
	for ts, want := range map[int64]bool{4: false, 5: true, 9: true, 10: false} {
		if tr.Contains(ts) != want {
			t.Errorf("Contains(%d) = %v", ts, !want)
		}
	}
	open := TimeRange{Min: 5}
	if !open.Contains(1 << 60) {
		t.Error("Max=0 must mean unbounded above")
	}
}

func TestResultValue(t *testing.T) {
	r := Result{Row: []byte("r"), Cells: []Cell{cell("r", "cf", "q", 2, "new"), cell("r", "cf", "q", 1, "old")}}
	v, ok := r.Value("cf", "q")
	if !ok || string(v) != "new" {
		t.Errorf("Value = %q, %v", v, ok)
	}
	if _, ok := r.Value("cf", "missing"); ok {
		t.Error("missing column must not be found")
	}
	if r.Empty() {
		t.Error("result with cells is not empty")
	}
}

func TestFilters(t *testing.T) {
	row := Result{Row: []byte("user-5"), Cells: []Cell{cell("user-5", "cf", "age", 1, "\x21")}}
	eq := &SingleColumnValueFilter{Family: "cf", Qualifier: "age", Op: CmpEqual, Value: []byte("\x21")}
	if !eq.Match(&row) {
		t.Error("equality filter must match")
	}
	gt := &SingleColumnValueFilter{Family: "cf", Qualifier: "age", Op: CmpGreater, Value: []byte("\x30")}
	if gt.Match(&row) {
		t.Error("greater filter must not match")
	}
	missing := &SingleColumnValueFilter{Family: "cf", Qualifier: "nope", Op: CmpEqual, Value: []byte("x")}
	if missing.Match(&row) {
		t.Error("filter on missing column must drop the row")
	}
	prefix := &RowPrefixFilter{Prefix: []byte("user-")}
	if !prefix.Match(&row) {
		t.Error("prefix filter must match")
	}
	and := &FilterList{Op: MustPassAll, Filters: []Filter{eq, prefix}}
	if !and.Match(&row) {
		t.Error("AND list must match")
	}
	or := &FilterList{Op: MustPassOne, Filters: []Filter{gt, prefix}}
	if !or.Match(&row) {
		t.Error("OR list must match")
	}
	andFail := &FilterList{Op: MustPassAll, Filters: []Filter{eq, gt}}
	if andFail.Match(&row) {
		t.Error("AND list with failing child must not match")
	}
	if and.WireSize() <= 0 || eq.String() == "" || or.String() == "" || prefix.String() == "" {
		t.Error("filters must report sizes and strings")
	}
}

func TestCompareOpEval(t *testing.T) {
	cases := []struct {
		op   CompareOp
		cmp  int
		want bool
	}{
		{CmpEqual, 0, true}, {CmpEqual, 1, false},
		{CmpNotEqual, 1, true}, {CmpNotEqual, 0, false},
		{CmpLess, -1, true}, {CmpLess, 0, false},
		{CmpLessOrEqual, 0, true}, {CmpLessOrEqual, 1, false},
		{CmpGreater, 1, true}, {CmpGreater, 0, false},
		{CmpGreaterOrEqual, 0, true}, {CmpGreaterOrEqual, -1, false},
	}
	for _, c := range cases {
		if got := c.op.eval(c.cmp); got != c.want {
			t.Errorf("%s.eval(%d) = %v", c.op, c.cmp, got)
		}
	}
}

func TestMergeSortedStability(t *testing.T) {
	a := []Cell{cell("a", "cf", "q", 1, "x")}
	b := []Cell{cell("b", "cf", "q", 1, "y")}
	got := mergeSorted(b, a)
	if !bytes.Equal(got[0].Row, []byte("a")) {
		t.Error("mergeSorted must sort across runs")
	}
}
