package hbase

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

// TestScannerLimitPageSizing pins the limit-aware last page: a Scan.Limit
// spanning a region boundary must return exactly Limit rows without the
// final page over-fetching up to the batch size.
func TestScannerLimitPageSizing(t *testing.T) {
	c, client := scannerFixture(t, 90)
	before := c.Meter.Get(metrics.RowsReturned)
	sc, err := client.OpenScanner("t", &Scan{Limit: 35}, 20)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 35 {
		t.Fatalf("rows = %d, want 35", len(all))
	}
	if string(all[34].Row) != "row-034" {
		t.Errorf("last row = %q", all[34].Row)
	}
	// The server returned exactly the limit across pages: the last page was
	// sized to the 5 remaining rows, not the 20-row batch.
	if got := c.Meter.Get(metrics.RowsReturned) - before; got != 35 {
		t.Errorf("rows returned over the wire = %d, want exactly 35", got)
	}
}

// TestScannerSkipsEmptyRegion pins that a region holding no rows in the scan
// range just advances the scan instead of ending or corrupting it.
func TestScannerSkipsEmptyRegion(t *testing.T) {
	c := bootCluster(t, 3)
	client := c.NewClient()
	t.Cleanup(client.Close)
	splits := [][]byte{[]byte("row-030"), []byte("row-060")}
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, splits); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 90; i++ {
		if i >= 30 && i < 60 {
			continue // middle region stays empty
		}
		cells = append(cells, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, fmt.Sprintf("v%d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	sc, err := client.OpenScanner("t", &Scan{}, 25)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 60 {
		t.Fatalf("rows = %d, want 60", len(all))
	}
	if string(all[29].Row) != "row-029" || string(all[30].Row) != "row-060" {
		t.Errorf("rows around the empty region = %q, %q", all[29].Row, all[30].Row)
	}
}

// TestScannerCursorClipAtRegionEnd pins the EndKey clip: when a full page
// ends exactly at the region's last possible row, the scanner advances to
// the next region instead of issuing a vacuous RPC into the drained one.
func TestScannerCursorClipAtRegionEnd(t *testing.T) {
	c := bootCluster(t, 3)
	client := c.NewClient()
	t.Cleanup(client.Close)
	// Region 0 ends at row-009's immediate successor, so a 10-row page
	// [row-000, row-009] leaves the cursor exactly at EndKey.
	splits := [][]byte{append([]byte("row-009"), 0)}
	if err := client.CreateTable(TableDescriptor{Name: "clip", Families: []string{"cf"}}, splits); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, "v"))
	}
	if err := client.Put("clip", cells); err != nil {
		t.Fatal(err)
	}
	sc, err := client.OpenScanner("clip", &Scan{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Meter.Get(metrics.RPCCalls)
	all, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 20 {
		t.Fatalf("rows = %d, want 20", len(all))
	}
	// Page 1 fills from region 0 and clips straight to region 1; page 2
	// fills from region 1; page 3 discovers region 1 is drained. Without
	// the clip there would be a fourth RPC re-entering region 0.
	if got := c.Meter.Get(metrics.RPCCalls) - before; got != 3 {
		t.Errorf("scan RPCs = %d, want 3 (cursor must clip at region EndKey)", got)
	}
}

// TestScannerPrefetchMatchesPlain pins double buffering: the prefetching
// scanner returns the same rows in the same order, and actually issues
// pages ahead of consumption.
func TestScannerPrefetchMatchesPlain(t *testing.T) {
	c, client := scannerFixture(t, 90)
	plain, err := client.OpenScanner("t", &Scan{}, 25)
	if err != nil {
		t.Fatal(err)
	}
	want, err := plain.All()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := client.OpenScannerWith("t", &Scan{}, ScannerConfig{BatchSize: 25, Prefetch: true, Meter: c.Meter})
	if err != nil {
		t.Fatal(err)
	}
	got, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Row, want[i].Row) {
			t.Fatalf("row %d = %q, want %q", i, got[i].Row, want[i].Row)
		}
	}
	if c.Meter.Get(metrics.PagesPrefetched) == 0 {
		t.Error("prefetching scanner must launch pages ahead of consumption")
	}
}

// fusedOpsForHost builds one whole-region scan op per region the host
// serves, the shape the SHC relation fuses into a single RPC.
func fusedOpsForHost(t *testing.T, client *Client, table, host string) []ScanOp {
	t.Helper()
	regions, err := client.Regions(table)
	if err != nil {
		t.Fatal(err)
	}
	var ops []ScanOp
	for _, ri := range regions {
		if ri.Host == host {
			ops = append(ops, ScanOp{RegionID: ri.ID, Scan: &Scan{}})
		}
	}
	if len(ops) == 0 {
		t.Fatalf("host %s serves no regions", host)
	}
	return ops
}

func firstHost(t *testing.T, client *Client, table string) string {
	t.Helper()
	regions, err := client.Regions(table)
	if err != nil {
		t.Fatal(err)
	}
	return regions[0].Host
}

// TestFusedExecPageMatchesUnpaged drains the paged fused endpoint and
// checks it returns exactly what the single-shot call does.
func TestFusedExecPageMatchesUnpaged(t *testing.T) {
	_, client := scannerFixture(t, 90)
	host := firstHost(t, client, "t")
	ops := fusedOpsForHost(t, client, "t", host)
	want, err := client.FusedExec(host, ops)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	cursor := FusedCursor{}
	pages := 0
	for {
		resp, err := client.FusedExecPage(host, ops, 7, cursor)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) > 7 {
			t.Fatalf("page holds %d rows, batch limit is 7", len(resp.Results))
		}
		got = append(got, resp.Results...)
		pages++
		if !resp.More {
			break
		}
		cursor = resp.Next
	}
	if len(got) != len(want) {
		t.Fatalf("paged rows = %d, unpaged = %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i].Row, want[i].Row) {
			t.Fatalf("row %d = %q, want %q", i, got[i].Row, want[i].Row)
		}
	}
	if pages < 2 {
		t.Errorf("pages = %d, want several", pages)
	}
}

// TestFusedPageHonorsPerOpLimit pins the cursor's Sent accounting: an op's
// Scan.Limit keeps its meaning even when pages cut the op mid-scan.
func TestFusedPageHonorsPerOpLimit(t *testing.T) {
	_, client := scannerFixture(t, 90)
	host := firstHost(t, client, "t")
	ops := fusedOpsForHost(t, client, "t", host)
	for i := range ops {
		s := *ops[i].Scan
		s.Limit = 12
		ops[i].Scan = &s
	}
	var got []Result
	cursor := FusedCursor{}
	for {
		resp, err := client.FusedExecPage(host, ops, 5, cursor)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, resp.Results...)
		if !resp.More {
			break
		}
		cursor = resp.Next
	}
	want := 12 * len(ops)
	if len(got) != want {
		t.Fatalf("rows = %d, want %d (12 per op)", len(got), want)
	}
}

// TestFusedPageResumesBulkGets pins mid-list resumption of bulk-get ops.
func TestFusedPageResumesBulkGets(t *testing.T) {
	_, client := scannerFixture(t, 90)
	host := firstHost(t, client, "t")
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	var region RegionInfo
	for _, ri := range regions {
		if ri.Host == host && ri.StartKey == nil {
			region = ri
		}
	}
	if region.ID == "" {
		t.Skipf("host %s does not serve the first region", host)
	}
	var rows [][]byte
	for i := 0; i < 10; i++ {
		rows = append(rows, []byte(fmt.Sprintf("row-%03d", i)))
	}
	ops := []ScanOp{{RegionID: region.ID, Rows: rows}}
	var got []Result
	cursor := FusedCursor{}
	pages := 0
	for {
		resp, err := client.FusedExecPage(host, ops, 3, cursor)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, resp.Results...)
		pages++
		if !resp.More {
			break
		}
		cursor = resp.Next
	}
	if len(got) != 10 {
		t.Fatalf("bulk-get rows = %d, want 10", len(got))
	}
	if pages < 4 {
		t.Errorf("pages = %d, want at least 4 with batch limit 3", pages)
	}
	for i := range got {
		if want := fmt.Sprintf("row-%03d", i); string(got[i].Row) != want {
			t.Fatalf("row %d = %q, want %q", i, got[i].Row, want)
		}
	}
}
