package hbase

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

// errAbort simulates the master dying at a chosen stage of the split
// transaction: the stage hook returns it, SplitRegion aborts right there, and
// the journal plus whatever partial state the stages built are left behind
// for recovery to settle.
var errAbort = errors.New("injected master death")

func seedSplitTable(t *testing.T, c *Cluster) (*Client, []Result, string) {
	t.Helper()
	client := c.NewClient()
	t.Cleanup(client.Close)
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 30; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, fmt.Sprintf("v%03d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	baseline, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 {
		t.Fatalf("seed regions = %d, want 1", len(regions))
	}
	return client, baseline, regions[0].ID
}

// TestSplitAbortRollsBackViaJanitor aborts the split transaction at each
// pre-meta-swap stage and lets the next janitor pass settle it: the orphan
// journal rolls back, the parent serves reads and writes again (its fence
// adopted away), and the data is byte-identical to before the attempt.
func TestSplitAbortRollsBackViaJanitor(t *testing.T) {
	for _, stage := range []string{"journaled", "split", "daughters-added"} {
		t.Run(stage, func(t *testing.T) {
			c := bootCluster(t, 2)
			client, baseline, parent := seedSplitTable(t, c)

			c.Master.SetSplitHook(func(s string) error {
				if s == stage {
					return errAbort
				}
				return nil
			})
			if err := c.Master.SplitRegion("t", parent); !errors.Is(err, errAbort) {
				t.Fatalf("aborted split returned %v", err)
			}
			c.Master.SetSplitHook(nil)

			// The janitor finds the orphan journal and rolls the split back.
			c.Master.JanitorPass()
			if got := c.Meter.Get(metrics.SplitsRolledBack); got != 1 {
				t.Fatalf("splits rolled back = %d, want 1", got)
			}
			client.InvalidateRegions("t")
			regions, err := client.Regions("t")
			if err != nil {
				t.Fatal(err)
			}
			if len(regions) != 1 || regions[0].ID != parent {
				t.Fatalf("regions after rollback = %v, want just %s", regions, parent)
			}
			after, err := client.ScanTable("t", &Scan{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(baseline, after) {
				t.Fatalf("rollback lost or duplicated rows: %d vs %d", len(after), len(baseline))
			}
			// The parent's fence was adopted away: writes land again.
			if err := client.Put("t", []Cell{cell("row-999", "cf", "q", 2, "after")}); err != nil {
				t.Fatalf("write after rollback: %v", err)
			}
			// The journal is gone: another pass settles nothing new.
			c.Master.JanitorPass()
			if got := c.Meter.Get(metrics.SplitsRolledBack); got != 1 {
				t.Errorf("second pass rolled back again (%d)", got)
			}
		})
	}
}

// TestSplitAbortRollsBackAfterMasterFailover aborts after the daughters were
// cut (parent fenced) but before they were hosted, then kills the master. The
// standby rebuilds meta from the servers — which only hold the parent — finds
// the journal, and must roll back: un-fence the parent, drop the orphan
// daughters, and serve the exact pre-split data.
func TestSplitAbortRollsBackAfterMasterFailover(t *testing.T) {
	c := bootCluster(t, 2)
	client, baseline, parent := seedSplitTable(t, c)

	c.Master.SetSplitHook(func(s string) error {
		if s == "split" {
			return errAbort
		}
		return nil
	})
	if err := c.Master.SplitRegion("t", parent); !errors.Is(err, errAbort) {
		t.Fatalf("aborted split returned %v", err)
	}

	// The master dies; a standby wins the election and recovers.
	c.Master.Resign()
	if err := c.Net.SetDown(c.Master.Host(), true); err != nil {
		t.Fatal(err)
	}
	standby, err := NewMaster("test-master-2", c.Net, c.ZK, StoreConfig{}, c.Meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := standby.RecoverFrom(c.Servers); err != nil {
		t.Fatal(err)
	}
	if got := c.Meter.Get(metrics.SplitsRolledBack); got != 1 {
		t.Fatalf("splits rolled back = %d, want 1", got)
	}
	client.InvalidateRegions("t")
	after, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, after) {
		t.Fatalf("post-failover rollback lost or duplicated rows: %d vs %d", len(after), len(baseline))
	}
	if err := client.Put("t", []Cell{cell("row-998", "cf", "q", 2, "after")}); err != nil {
		t.Fatalf("write after failover rollback: %v", err)
	}
}

// TestSplitAbortRollsForwardAfterMasterFailover aborts after the meta swap —
// the daughters are hosted and in meta, only replica top-up and journal
// retirement remain — then kills the master. The standby recovers both
// daughters from the servers and must roll the split FORWARD: retire the
// journal, keep the daughters, and serve identical data with one more region.
func TestSplitAbortRollsForwardAfterMasterFailover(t *testing.T) {
	c := bootCluster(t, 2)
	client, baseline, parent := seedSplitTable(t, c)

	c.Master.SetSplitHook(func(s string) error {
		if s == "meta-updated" {
			return errAbort
		}
		return nil
	})
	if err := c.Master.SplitRegion("t", parent); !errors.Is(err, errAbort) {
		t.Fatalf("aborted split returned %v", err)
	}

	c.Master.Resign()
	if err := c.Net.SetDown(c.Master.Host(), true); err != nil {
		t.Fatal(err)
	}
	standby, err := NewMaster("test-master-2", c.Net, c.ZK, StoreConfig{}, c.Meter, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := standby.RecoverFrom(c.Servers); err != nil {
		t.Fatal(err)
	}
	if got := c.Meter.Get(metrics.SplitsRolledForward); got != 1 {
		t.Fatalf("splits rolled forward = %d, want 1", got)
	}
	client.InvalidateRegions("t")
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions after roll-forward = %d, want 2", len(regions))
	}
	for _, ri := range regions {
		if ri.ID == parent {
			t.Fatalf("parent %s still in meta after roll-forward", parent)
		}
	}
	after, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, after) {
		t.Fatalf("roll-forward lost or duplicated rows: %d vs %d", len(after), len(baseline))
	}
	if err := client.Put("t", []Cell{cell("row-997", "cf", "q", 2, "after")}); err != nil {
		t.Fatalf("write after roll-forward: %v", err)
	}
}
