package hbase

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
)

// bootHACluster boots a cluster with standby masters whose watch loops are
// already running.
func bootHACluster(t *testing.T, servers, masters int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{Name: "test", NumServers: servers, Masters: masters})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.StopStandbys)
	return c
}

// awaitTakeover polls until a master other than old leads, failing the test
// if no standby takes over within the deadline.
func awaitTakeover(t *testing.T, c *Cluster, old *Master) *Master {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := c.ActiveMaster(); m != old {
			return m
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no standby took over")
	return nil
}

// TestMasterHAStandbyTakeover is the tentpole's happy path: the active
// master crashes, a standby's watch fires, it wins the election, bumps the
// master epoch, rebuilds meta from the region servers, and journals the
// MasterElected → MasterFailover causal pair — all without any test
// intervention beyond the crash itself.
func TestMasterHAStandbyTakeover(t *testing.T) {
	c := bootHACluster(t, 3, 3)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "x"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}

	boot := c.ActiveMaster()
	oldEpoch := boot.MasterEpoch()
	if oldEpoch == 0 {
		t.Fatal("boot master holds no master epoch")
	}
	if got := len(boot.Standbys()); got != 2 {
		t.Fatalf("standby roster = %d hosts, want 2", got)
	}

	zombie, err := c.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	nm := awaitTakeover(t, c, zombie)

	if nm.MasterEpoch() <= oldEpoch {
		t.Errorf("new master epoch = %d, want > %d", nm.MasterEpoch(), oldEpoch)
	}
	// The winner withdrew its standby advert; the loser still stands by.
	if got := len(nm.Standbys()); got != 1 {
		t.Errorf("standby roster after takeover = %d hosts, want 1", got)
	}
	// Meta was rebuilt: the table and both regions survived the failover.
	regions, err := nm.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("recovered regions = %d, want 2", len(regions))
	}
	// The causal pair: MasterFailover points at the MasterElected that
	// started the takeover.
	elected := c.Journal.Find(ops.EventMasterElected)
	if len(elected) != 1 {
		t.Fatalf("MasterElected events = %d, want 1", len(elected))
	}
	if elected[0].Server != nm.Host() || elected[0].Epoch != nm.MasterEpoch() {
		t.Errorf("MasterElected = %+v, want server %s epoch %d", elected[0], nm.Host(), nm.MasterEpoch())
	}
	failover := c.Journal.Find(ops.EventMasterFailover)
	if len(failover) != 1 {
		t.Fatalf("MasterFailover events = %d, want 1", len(failover))
	}
	if failover[0].Cause != elected[0].Seq {
		t.Errorf("MasterFailover.Cause = %d, want %d", failover[0].Cause, elected[0].Seq)
	}
	// Clients fail over transparently: the cached dead master is dropped and
	// the new leader discovered on retry.
	client.InvalidateRegions("t")
	results, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatalf("scan after takeover: %v", err)
	}
	if len(results) != 20 {
		t.Fatalf("rows after takeover = %d, want 20", len(results))
	}
	if got := c.Meter.Get(metrics.MasterTakeovers); got != 1 {
		t.Errorf("master.takeovers = %d, want 1", got)
	}
}

// TestMasterHAZombieFencedWrites revives a deposed master and proves the
// fenced control plane: every coordination write it attempts dies
// un-acknowledged with ErrMasterFenced, metered as master.fenced_writes,
// while the real leader keeps operating.
func TestMasterHAZombieFencedWrites(t *testing.T) {
	c := bootHACluster(t, 2, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}

	zombie, err := c.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	nm := awaitTakeover(t, c, zombie)

	// The zombie wakes from its GC pause: network restored, session expired,
	// completely unaware it was deposed.
	if err := c.Net.SetDown(zombie.Host(), false); err != nil {
		t.Fatal(err)
	}
	regions, err := nm.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := zombie.SplitRegion("t", regions[0].ID); !errors.Is(err, ErrMasterFenced) {
		t.Errorf("zombie SplitRegion err = %v, want ErrMasterFenced", err)
	}
	if _, err := zombie.CheckServers(); !errors.Is(err, ErrMasterFenced) {
		t.Errorf("zombie CheckServers err = %v, want ErrMasterFenced", err)
	}
	if err := zombie.CreateTable(TableDescriptor{Name: "t2", Families: []string{"cf"}}, nil); !errors.Is(err, ErrMasterFenced) {
		t.Errorf("zombie CreateTable err = %v, want ErrMasterFenced", err)
	}
	if err := zombie.DrainServer(c.Servers[0].Host()); !errors.Is(err, ErrMasterFenced) {
		t.Errorf("zombie DrainServer err = %v, want ErrMasterFenced", err)
	}
	// Duty passes spin harmlessly: no error surfaces, nothing happens.
	zombie.JanitorPass()
	if got := c.Meter.Get(metrics.MasterFencedWrites); got < 5 {
		t.Errorf("master.fenced_writes = %d, want >= 5", got)
	}
	// The zombie's attempts changed nothing: the real leader still serves
	// the original single-table meta and can still coordinate.
	if tables := nm.Tables(); len(tables) != 1 || tables[0] != "t" {
		t.Errorf("tables after zombie attempts = %v, want [t]", tables)
	}
	if _, err := nm.CheckServers(); err != nil {
		t.Errorf("real leader heartbeat round: %v", err)
	}
}

// TestMasterHAPingEpochFence exercises the server-side half of fencing: a
// region server that has heard a newer master's heartbeat rejects probes
// stamped with an older master epoch, so a deposed master cannot keep a
// server's lease alive even if it bypassed its own fence check.
func TestMasterHAPingEpochFence(t *testing.T) {
	c := bootCluster(t, 1)
	rs := c.Servers[0]

	ping := func(epoch uint64) error {
		conn, err := c.Net.Dial(rs.Host())
		if err != nil {
			return err
		}
		defer conn.Close()
		_, err = conn.Call(MethodPing, Ping{Master: "m", MasterEpoch: epoch})
		return err
	}
	if err := ping(2); err != nil {
		t.Fatalf("epoch-2 ping: %v", err)
	}
	if err := ping(1); !errors.Is(err, ErrFenced) {
		t.Errorf("stale epoch-1 ping err = %v, want ErrFenced", err)
	}
	if err := ping(3); err != nil {
		t.Errorf("newer epoch-3 ping: %v", err)
	}
	// Bare probes (epoch 0, as tests and tools send) always pass.
	if err := ping(0); err != nil {
		t.Errorf("bare ping: %v", err)
	}
}

// TestMasterHATakeoverReArmsDuties proves a master crash does not silently
// stop failure detection: the heartbeat loop re-arms on the new leader, so
// a region-server death AFTER the failover is still detected and recovered
// with no manual CheckServers call.
func TestMasterHATakeoverReArmsDuties(t *testing.T) {
	c := bootHACluster(t, 3, 2)
	stop := c.StartDuties(2*time.Millisecond, 0)
	defer stop()
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("row-1", "cf", "q", 1, "x")}); err != nil {
		t.Fatal(err)
	}

	zombie, err := c.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	nm := awaitTakeover(t, c, zombie)

	// Now kill the region server hosting the row. Only the re-armed
	// heartbeat loop can notice and reassign.
	regions, err := nm.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.CrashServer(regions[0].Host); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		client.InvalidateRegions("t")
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		res, _, err := client.BulkGetFresh(ctx, "t", [][]byte{[]byte("row-1")}, nil, 1, TimeRange{})
		cancel()
		if err == nil && len(res) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("row never recovered after post-takeover server crash: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestMasterHACrashDuringElectionRace floods the cluster with a crash while
// two standbys race for the vacant leadership: exactly one wins, exactly one
// takeover is journaled, and the epoch advances exactly once per election.
func TestMasterHACrashDuringElectionRace(t *testing.T) {
	c := bootHACluster(t, 2, 4) // three rival standbys
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	zombie, err := c.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	nm := awaitTakeover(t, c, zombie)
	// Give losing standbys a beat to finish their election attempts.
	time.Sleep(20 * time.Millisecond)
	if got := c.Meter.Get(metrics.MasterTakeovers); got != 1 {
		t.Errorf("master.takeovers = %d, want exactly 1", got)
	}
	if got := len(c.Journal.Find(ops.EventMasterElected)); got != 1 {
		t.Errorf("MasterElected events = %d, want exactly 1", got)
	}
	if nm.MasterEpoch() != 2 {
		t.Errorf("epoch after one failover = %d, want 2", nm.MasterEpoch())
	}
}
