package hbase

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

func testDesc() *TableDescriptor {
	return &TableDescriptor{Name: "t", Families: []string{"cf", "cg"}, MaxVersions: 3}
}

func newTestRegion(t *testing.T, cfg StoreConfig) *Region {
	t.Helper()
	info := RegionInfo{Table: "t", ID: "t-0001"}
	return NewRegion(info, testDesc(), cfg, metrics.NewRegistry())
}

func TestRegionPutGet(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	if err := r.Put(cell("row1", "cf", "q", 1, "hello")); err != nil {
		t.Fatal(err)
	}
	res := r.Get([]byte("row1"), nil, 1, TimeRange{})
	v, ok := res.Value("cf", "q")
	if !ok || string(v) != "hello" {
		t.Errorf("Get = %q, %v", v, ok)
	}
	empty := r.Get([]byte("missing"), nil, 1, TimeRange{})
	if !empty.Empty() {
		t.Error("missing row must be empty")
	}
}

func TestRegionRejectsBadCells(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	if err := r.Put(cell("row", "unknown", "q", 1, "x")); err == nil {
		t.Error("unknown family must be rejected")
	}
	bad := cell("row", "cf", "q", 1, "x")
	bad.Type = 0
	if err := r.Put(bad); err == nil {
		t.Error("invalid type must be rejected")
	}
	bounded := NewRegion(RegionInfo{Table: "t", ID: "x", StartKey: []byte("m")}, testDesc(), StoreConfig{}, nil)
	if err := bounded.Put(cell("a", "cf", "q", 1, "x")); err == nil {
		t.Error("out-of-range row must be rejected")
	}
}

func TestRegionVersionsAndDelete(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	for ts := int64(1); ts <= 5; ts++ {
		if err := r.Put(cell("row", "cf", "q", ts, fmt.Sprintf("v%d", ts))); err != nil {
			t.Fatal(err)
		}
	}
	// MaxVersions=3 on the table caps what reads may see.
	res := r.Get([]byte("row"), nil, 10, TimeRange{})
	if len(res.Cells) != 3 {
		t.Fatalf("versions visible = %d, want 3 (table cap)", len(res.Cells))
	}
	if string(res.Cells[0].Value) != "v5" {
		t.Errorf("newest first, got %s", res.Cells[0].String())
	}
	// Delete masks everything at or below its timestamp.
	if err := r.Put(tomb("row", "cf", "q", 5)); err != nil {
		t.Fatal(err)
	}
	res = r.Get([]byte("row"), nil, 10, TimeRange{})
	if !res.Empty() {
		t.Errorf("after tombstone ts=5: %v", res.Cells)
	}
}

func TestRegionTimeRangeQueries(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	for ts := int64(10); ts <= 30; ts += 10 {
		if err := r.Put(cell("row", "cf", "q", ts, fmt.Sprintf("v%d", ts))); err != nil {
			t.Fatal(err)
		}
	}
	res := r.Get([]byte("row"), nil, 10, TimeRange{Min: 10, Max: 21})
	if len(res.Cells) != 2 || string(res.Cells[0].Value) != "v20" {
		t.Errorf("time range read = %v", res.Cells)
	}
}

func TestRegionScanProjectionAndFilter(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	for i := 0; i < 10; i++ {
		row := fmt.Sprintf("row-%02d", i)
		mustPut(t, r, cell(row, "cf", "a", 1, fmt.Sprintf("a%d", i)))
		mustPut(t, r, cell(row, "cf", "b", 1, fmt.Sprintf("b%d", i)))
		mustPut(t, r, cell(row, "cg", "c", 1, fmt.Sprintf("c%d", i)))
	}
	// Column pruning: only cf:a comes back.
	results := r.RunScan(&Scan{Columns: []Column{{Family: "cf", Qualifier: "a"}}})
	if len(results) != 10 {
		t.Fatalf("rows = %d", len(results))
	}
	for _, res := range results {
		if len(res.Cells) != 1 || res.Cells[0].Qualifier != "a" {
			t.Fatalf("projection leaked cells: %v", res.Cells)
		}
	}
	// Whole-family projection.
	results = r.RunScan(&Scan{Columns: []Column{{Family: "cf"}}})
	if len(results[0].Cells) != 2 {
		t.Errorf("family projection cells = %d", len(results[0].Cells))
	}
	// Range scan.
	results = r.RunScan(&Scan{StartRow: []byte("row-03"), StopRow: []byte("row-06")})
	if len(results) != 3 || string(results[0].Row) != "row-03" {
		t.Errorf("range scan = %d rows", len(results))
	}
	// Server-side filter on a column not in the projection still sees the
	// full row.
	results = r.RunScan(&Scan{
		Columns: []Column{{Family: "cf", Qualifier: "a"}},
		Filter:  &SingleColumnValueFilter{Family: "cg", Qualifier: "c", Op: CmpEqual, Value: []byte("c7")},
	})
	if len(results) != 1 || string(results[0].Row) != "row-07" {
		t.Errorf("filtered scan = %v", results)
	}
	// Limit.
	results = r.RunScan(&Scan{Limit: 4})
	if len(results) != 4 {
		t.Errorf("limited scan = %d rows", len(results))
	}
}

func TestRegionScanMetersRows(t *testing.T) {
	m := metrics.NewRegistry()
	r := NewRegion(RegionInfo{Table: "t", ID: "t-1"}, testDesc(), StoreConfig{}, m)
	for i := 0; i < 8; i++ {
		mustPut(t, r, cell(fmt.Sprintf("row-%d", i), "cf", "q", 1, "x"))
	}
	r.RunScan(&Scan{Filter: &SingleColumnValueFilter{Family: "cf", Qualifier: "q", Op: CmpEqual, Value: []byte("nomatch")}})
	if m.Get(metrics.RowsScanned) != 8 {
		t.Errorf("rows scanned = %d", m.Get(metrics.RowsScanned))
	}
	if m.Get(metrics.RowsReturned) != 0 {
		t.Errorf("rows returned = %d", m.Get(metrics.RowsReturned))
	}
}

func TestRegionFlushAndCompact(t *testing.T) {
	m := metrics.NewRegistry()
	r := NewRegion(RegionInfo{Table: "t", ID: "t-1"}, testDesc(),
		StoreConfig{FlushThresholdBytes: 1, CompactThresholdFiles: 100}, m)
	for i := 0; i < 5; i++ {
		mustPut(t, r, cell(fmt.Sprintf("row-%d", i), "cf", "q", 1, "x"))
	}
	if r.StoreFileCount() != 5 {
		t.Fatalf("store files = %d (flush per put expected)", r.StoreFileCount())
	}
	r.Compact()
	if r.StoreFileCount() != 1 {
		t.Errorf("store files after compaction = %d", r.StoreFileCount())
	}
	if m.Get(metrics.Compactions) == 0 || m.Get(metrics.MemstoreFlushes) == 0 {
		t.Error("compactions and flushes must be metered")
	}
	// Data still readable after compaction.
	if res := r.RunScan(&Scan{}); len(res) != 5 {
		t.Errorf("rows after compaction = %d", len(res))
	}
}

func TestRegionAutoCompactionAtThreshold(t *testing.T) {
	r := newTestRegion(t, StoreConfig{FlushThresholdBytes: 1, CompactThresholdFiles: 3})
	for i := 0; i < 10; i++ {
		mustPut(t, r, cell(fmt.Sprintf("row-%d", i), "cf", "q", 1, "x"))
	}
	if n := r.StoreFileCount(); n >= 3 {
		t.Errorf("auto compaction should keep file count below threshold, got %d", n)
	}
}

func TestRegionScanSeesMemstoreAndFiles(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	mustPut(t, r, cell("row-a", "cf", "q", 1, "flushed"))
	r.Flush()
	mustPut(t, r, cell("row-b", "cf", "q", 1, "buffered"))
	res := r.RunScan(&Scan{})
	if len(res) != 2 {
		t.Fatalf("scan must merge memstore and files, got %d rows", len(res))
	}
}

func TestRegionWALRecovery(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	mustPut(t, r, cell("row-1", "cf", "q", 1, "durable"))
	r.Flush()
	mustPut(t, r, cell("row-2", "cf", "q", 1, "buffered"))
	mustPut(t, r, tomb("row-1", "cf", "q", 2))

	// Crash: lose the memstore, then replay the WAL.
	r.DropMemStore()
	if res := r.RunScan(&Scan{}); len(res) != 1 {
		t.Fatalf("after crash, only flushed data should remain; got %d rows", len(res))
	}
	if err := r.RecoverFromWAL(); err != nil {
		t.Fatal(err)
	}
	res := r.RunScan(&Scan{})
	if len(res) != 1 || string(res[0].Row) != "row-2" {
		t.Errorf("after recovery rows = %v (tombstone for row-1 must also replay)", resultRows(res))
	}
}

func TestRegionSplit(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	for i := 0; i < 10; i++ {
		mustPut(t, r, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "x"))
	}
	point := r.SplitPoint()
	if point == nil {
		t.Fatal("split point expected")
	}
	low, high, err := r.SplitInto("low", "high", point, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(low.Info().EndKey, point) || !bytes.Equal(high.Info().StartKey, point) {
		t.Error("daughters must meet at the split point")
	}
	nLow := len(low.RunScan(&Scan{}))
	nHigh := len(high.RunScan(&Scan{}))
	if nLow+nHigh != 10 || nLow == 0 || nHigh == 0 {
		t.Errorf("split distribution = %d + %d", nLow, nHigh)
	}
}

func TestRegionSplitErrors(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	if _, _, err := r.SplitInto("a", "b", nil, 0); err == nil {
		t.Error("nil split key must fail")
	}
	if p := r.SplitPoint(); p != nil {
		t.Error("empty region has no split point")
	}
	mustPut(t, r, cell("only", "cf", "q", 1, "x"))
	if p := r.SplitPoint(); p != nil {
		t.Error("single-row region has no split point")
	}
}

func TestRegionNeedsSplit(t *testing.T) {
	r := newTestRegion(t, StoreConfig{SplitThresholdBytes: 10})
	if r.NeedsSplit() {
		t.Error("empty region must not need split")
	}
	mustPut(t, r, cell("row", "cf", "q", 1, "a long enough value"))
	if !r.NeedsSplit() {
		t.Error("overgrown region must need split")
	}
	unlimited := newTestRegion(t, StoreConfig{})
	mustPut(t, unlimited, cell("row", "cf", "q", 1, "a long enough value"))
	if unlimited.NeedsSplit() {
		t.Error("threshold 0 disables splits")
	}
}

func mustPut(t *testing.T, r *Region, c Cell) {
	t.Helper()
	if err := r.Put(c); err != nil {
		t.Fatal(err)
	}
}

func resultRows(results []Result) []string {
	out := make([]string, len(results))
	for i := range results {
		out[i] = string(results[i].Row)
	}
	return out
}
