package hbase

import (
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

func scannerFixture(t *testing.T, rows int) (*Cluster, *Client) {
	t.Helper()
	c := bootCluster(t, 3)
	client := c.NewClient()
	t.Cleanup(client.Close)
	splits := [][]byte{[]byte("row-030"), []byte("row-060")}
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, splits); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < rows; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, fmt.Sprintf("v%d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	return c, client
}

func TestScannerPagesThroughAllRegions(t *testing.T) {
	_, client := scannerFixture(t, 90)
	sc, err := client.OpenScanner("t", &Scan{}, 25)
	if err != nil {
		t.Fatal(err)
	}
	var all []Result
	pages := 0
	for {
		page, err := sc.Next()
		if err != nil {
			t.Fatal(err)
		}
		if page == nil {
			break
		}
		if len(page) > 25 {
			t.Fatalf("page size %d exceeds batch", len(page))
		}
		pages++
		all = append(all, page...)
	}
	if len(all) != 90 {
		t.Fatalf("rows = %d", len(all))
	}
	if pages < 4 {
		t.Errorf("pages = %d, want several", pages)
	}
	// Rows arrive in global key order.
	for i := 1; i < len(all); i++ {
		if string(all[i-1].Row) >= string(all[i].Row) {
			t.Fatal("scanner must preserve key order")
		}
	}
}

func TestScannerRangeAndAll(t *testing.T) {
	_, client := scannerFixture(t, 90)
	sc, err := client.OpenScanner("t", &Scan{StartRow: []byte("row-025"), StopRow: []byte("row-070")}, 10)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 45 {
		t.Fatalf("range rows = %d", len(all))
	}
	if string(all[0].Row) != "row-025" || string(all[len(all)-1].Row) != "row-069" {
		t.Errorf("range bounds = %q..%q", all[0].Row, all[len(all)-1].Row)
	}
}

func TestScannerHonorsLimit(t *testing.T) {
	_, client := scannerFixture(t, 90)
	sc, err := client.OpenScanner("t", &Scan{Limit: 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	all, err := sc.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Errorf("limited rows = %d", len(all))
	}
}

func TestScannerEmptyAndErrors(t *testing.T) {
	c, client := scannerFixture(t, 90)
	sc, err := client.OpenScanner("t", &Scan{StartRow: []byte("zzz")}, 10)
	if err != nil {
		t.Fatal(err)
	}
	page, err := sc.Next()
	if err != nil || page != nil {
		t.Errorf("empty scan = %v, %v", page, err)
	}
	if _, err := client.OpenScanner("missing", &Scan{}, 10); err == nil {
		t.Error("unknown table must fail")
	}
	// Errors propagate and stick.
	sc2, _ := client.OpenScanner("t", &Scan{}, 10)
	if err := c.Net.SetDown(c.Servers[0].Host(), true); err != nil {
		t.Fatal(err)
	}
	failed := false
	for i := 0; i < 20; i++ {
		if _, err := sc2.Next(); err != nil {
			failed = true
			break
		}
	}
	if !failed {
		t.Error("scanner should surface a downed server")
	}
	if _, err := sc2.Next(); err == nil {
		t.Error("scanner error must stick")
	}
}

func TestScannerFewerRPCsWithBiggerBatches(t *testing.T) {
	c, client := scannerFixture(t, 90)
	count := func(batch int) int64 {
		before := c.Meter.Get(metrics.RPCCalls)
		sc, err := client.OpenScanner("t", &Scan{}, batch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sc.All(); err != nil {
			t.Fatal(err)
		}
		return c.Meter.Get(metrics.RPCCalls) - before
	}
	small := count(5)
	big := count(50)
	if big >= small {
		t.Errorf("bigger batches must cost fewer RPCs: %d vs %d", big, small)
	}
}
