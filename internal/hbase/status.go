package hbase

import (
	"sort"
	"time"

	"github.com/shc-go/shc/internal/ops"
)

// Status assembles the ops-plane cluster snapshot: per-server liveness and
// memstore watermark state, per-region placement/epoch/size/write-load with
// replica lag, and the journal's high-water marks. It reads live state under
// the master lock, so the snapshot is internally consistent with meta.
func (c *Cluster) Status() ops.ClusterStatus {
	st := ops.ClusterStatus{
		Time: time.Now(),
		Journal: ops.JournalStatus{
			LastSeq: c.Journal.LastSeq(),
			Len:     c.Journal.Len(),
			Dropped: c.Journal.Dropped(),
		},
	}

	m := c.ActiveMaster()
	st.Master = ops.MasterStatus{
		Host:     m.Host(),
		Epoch:    m.MasterEpoch(),
		Standbys: m.Standbys(),
	}
	m.mu.Lock()
	registered := make(map[string]*RegionServer, len(m.servers))
	for _, rs := range m.servers {
		registered[rs.Host()] = rs
	}
	for name, ts := range m.tables {
		for id, r := range ts.regions {
			info := r.Info()
			rstat := ops.RegionStatus{
				Name: id, Table: name, Server: info.Host, Epoch: info.Epoch,
				SizeB: int64(r.Size()), Cells: r.CellCount(),
				Files: r.StoreFileCount(), WriteLoad: r.WriteLoad(),
			}
			// The primary's WAL high-water mark is the reference the
			// replicas' applied sequences lag behind.
			primarySeq := r.log.NextSeq() - 1
			for _, rep := range ts.replicas[id] {
				applied := rep.AppliedSeq()
				lag := uint64(0)
				if primarySeq > applied {
					lag = primarySeq - applied
				}
				rstat.Replicas = append(rstat.Replicas, ops.ReplicaStatus{
					Server: rep.Info().Host, AppliedSeq: applied, LagSeq: lag,
				})
			}
			sort.Slice(rstat.Replicas, func(i, j int) bool {
				return rstat.Replicas[i].Server < rstat.Replicas[j].Server
			})
			st.Regions = append(st.Regions, rstat)
		}
	}
	m.mu.Unlock()
	sort.Slice(st.Regions, func(i, j int) bool { return st.Regions[i].Name < st.Regions[j].Name })

	// Servers: every boot-time server plus any registered later. A server
	// is live when it is reachable and still registered with the master —
	// a crashed or fenced-off host shows up dead even if its process limps.
	seen := make(map[string]bool, len(c.Servers))
	servers := append([]*RegionServer(nil), c.Servers...)
	for _, rs := range servers {
		seen[rs.Host()] = true
	}
	for host, rs := range registered {
		if !seen[host] {
			servers = append(servers, rs)
		}
	}
	for _, rs := range servers {
		host := rs.Host()
		_, isRegistered := registered[host]
		ss := ops.ServerStatus{
			Host:          host,
			Live:          isRegistered && !c.Net.IsDown(host),
			Fenced:        rs.fencedPeek(),
			Regions:       rs.RegionCount(),
			MemstoreBytes: int64(rs.MemstoreBytes()),
		}
		ss.Watermark = watermarkState(rs.serverLimits(), ss.MemstoreBytes)
		st.Servers = append(st.Servers, ss)
	}
	sort.Slice(st.Servers, func(i, j int) bool { return st.Servers[i].Host < st.Servers[j].Host })
	return st
}

// fencedPeek reports self-fence state without the transition side effects
// (metering, journaling) SelfFenced performs — a status scrape must observe,
// never perturb.
func (rs *RegionServer) fencedPeek() bool {
	rs.leaseMu.Lock()
	defer rs.leaseMu.Unlock()
	return rs.lease > 0 && time.Since(rs.lastBeat) > rs.lease
}

// watermarkState classifies buffered bytes against the configured memstore
// watermarks: "" (none configured), "ok", "low" (delaying), "high"
// (rejecting).
func watermarkState(lim ServerLimits, total int64) string {
	if lim.MemstoreLowWatermarkBytes <= 0 && lim.MemstoreHighWatermarkBytes <= 0 {
		return ""
	}
	if lim.MemstoreHighWatermarkBytes > 0 && total >= int64(lim.MemstoreHighWatermarkBytes) {
		return "high"
	}
	if lim.MemstoreLowWatermarkBytes > 0 && total >= int64(lim.MemstoreLowWatermarkBytes) {
		return "low"
	}
	return "ok"
}
