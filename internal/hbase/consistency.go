package hbase

import "context"

// Consistency selects which copies of a region may answer a read, modeled
// on HBase's Consistency enum.
type Consistency int

const (
	// ConsistencyStrong (the default, and the zero value) routes reads only
	// to the region's primary: results are never stale, but a crashed
	// primary makes the region unreadable until the master reassigns it.
	ConsistencyStrong Consistency = iota
	// ConsistencyTimeline lets reads fail over to secondary replicas when
	// the primary does not answer. Replica results may lag the primary but
	// are always a prefix of its acknowledged write history — never torn,
	// never reordered — and arrive tagged stale with an explicit staleness
	// bound.
	ConsistencyTimeline
)

// String implements fmt.Stringer.
func (c Consistency) String() string {
	if c == ConsistencyTimeline {
		return "timeline"
	}
	return "strong"
}

type consistencyKey struct{}

// WithConsistency returns ctx carrying the read-consistency level client
// read paths honor. Absent, reads are ConsistencyStrong.
func WithConsistency(ctx context.Context, c Consistency) context.Context {
	return context.WithValue(ctx, consistencyKey{}, c)
}

// ConsistencyFromContext reports the context's read-consistency level.
func ConsistencyFromContext(ctx context.Context) Consistency {
	if ctx == nil {
		return ConsistencyStrong
	}
	c, _ := ctx.Value(consistencyKey{}).(Consistency)
	return c
}
