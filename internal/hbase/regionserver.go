package hbase

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/trace"
)

// ErrNotServing reports a request for a region the server does not host —
// the client's signal that its meta cache is stale (region split, moved by
// the balancer, or reassigned after failover).
var ErrNotServing = errors.New("hbase: region not served here")

// ErrFenced reports a request rejected by epoch fencing: either the caller
// routed with a stale ownership epoch (its meta cache predates a
// reassignment), or the serving side itself is fenced — a self-fenced server
// whose master lease expired, or a zombie whose region was superseded.
// Clients treat it exactly like ErrNotServing: invalidate caches, re-locate,
// retry.
var ErrFenced = errors.New("hbase: fenced by region ownership epoch")

// TokenValidator authenticates a request token; nil means the cluster is
// insecure and every request is accepted.
type TokenValidator func(token string) error

// RegionServer hosts a set of regions and serves data RPCs for them
// (paper §III-B). One region server maps to one simulated host.
type RegionServer struct {
	host     string
	meter    *metrics.Registry
	validate TokenValidator
	// journal receives the server's lifecycle events (self-fencing,
	// memstore backpressure); nil swallows them.
	journal atomic.Pointer[ops.Journal]
	// maxMasterEpoch is the highest master fencing epoch any heartbeat has
	// carried. Probes stamped with an older epoch come from a deposed master
	// and are rejected, so a zombie master cannot keep this server's lease
	// alive (defense in depth behind the master's own fenceCheck).
	maxMasterEpoch atomic.Uint64

	admMu sync.RWMutex
	adm   *admission
	// limits is the full ServerLimits last installed — kept separately from
	// the admission gate because the memstore watermarks apply even when
	// MaxInFlight is unset (no in-flight gate).
	limits ServerLimits
	// holdFlush freezes watermark-driven flushes (test hook): simulated
	// flushes are instantaneous, so without a way to stall them memstore
	// pressure could never accumulate deterministically.
	holdFlush bool
	// bpActive edge-detects memstore backpressure so the journal records one
	// event per episode rather than one per rejected write.
	bpActive bool

	// onBatchApplied, when set, observes every stamped batch the moment a
	// region reports it actually applied (not deduplicated) — the seam
	// exactly-once property tests count double-applies through.
	hookMu         sync.RWMutex
	onBatchApplied func(writer string, seq uint64, regionID string)

	// Self-fencing lease state: with a positive lease, the server refuses
	// writes (and reads, when fenceReads) once it has gone lease-long
	// without a master heartbeat — a partitioned server stops serving
	// before the master can have reassigned its regions.
	leaseMu    sync.Mutex
	lease      time.Duration
	fenceReads bool
	lastBeat   time.Time
	fencedNow  bool // edge-detect, so the transition is metered once

	mu      sync.RWMutex
	regions map[string]*Region
}

// NewRegionServer creates a server on host and registers its RPC handlers.
func NewRegionServer(host string, net *rpc.Network, meter *metrics.Registry, validate TokenValidator) (*RegionServer, error) {
	rs := &RegionServer{host: host, meter: meter, validate: validate, regions: make(map[string]*Region)}
	if err := net.AddHost(host); err != nil {
		return nil, err
	}
	// Data RPCs pass the admission gate; Ping does not (see handlePing).
	for method, h := range map[string]rpc.Handler{
		MethodPut:      rs.admitted(rs.handlePut),
		MethodMultiPut: rs.admitted(rs.handleMultiPut),
		MethodBulkLoad: rs.admitted(rs.handleBulkLoad),
		MethodScan:     rs.admitted(rs.handleScan),
		MethodBulkGet:  rs.admitted(rs.handleBulkGet),
		MethodFused:    rs.admitted(rs.handleFused),
		MethodPing:     rs.handlePing,
	} {
		if err := net.Handle(host, method, h); err != nil {
			return nil, err
		}
	}
	return rs, nil
}

// SetJournal installs the cluster event journal this server emits lifecycle
// events into (normally propagated by the master); nil disables emission.
func (rs *RegionServer) SetJournal(j *ops.Journal) { rs.journal.Store(j) }

// jrn returns the installed journal (nil appends are no-ops).
func (rs *RegionServer) jrn() *ops.Journal { return rs.journal.Load() }

// SetLimits installs (or, with the zero value, removes) admission control and
// memstore watermarks on this server's data RPCs. The in-flight gate needs a
// positive MaxInFlight; the watermarks stand on their own.
func (rs *RegionServer) SetLimits(limits ServerLimits) {
	rs.admMu.Lock()
	defer rs.admMu.Unlock()
	rs.limits = limits
	if limits.MaxInFlight <= 0 {
		rs.adm = nil
		return
	}
	rs.adm = newAdmission(limits, rs.meter)
}

func (rs *RegionServer) admissionGate() *admission {
	rs.admMu.RLock()
	defer rs.admMu.RUnlock()
	return rs.adm
}

func (rs *RegionServer) serverLimits() ServerLimits {
	rs.admMu.RLock()
	defer rs.admMu.RUnlock()
	return rs.limits
}

// HoldFlushes freezes (or resumes) watermark-driven memstore flushes — the
// deterministic stand-in for slow flush I/O that lets tests build real
// memstore pressure despite instantaneous simulated flushes.
func (rs *RegionServer) HoldFlushes(hold bool) {
	rs.admMu.Lock()
	defer rs.admMu.Unlock()
	rs.holdFlush = hold
}

func (rs *RegionServer) flushesHeld() bool {
	rs.admMu.RLock()
	defer rs.admMu.RUnlock()
	return rs.holdFlush
}

// SetBatchAppliedHook registers fn to observe every stamped batch a hosted
// region actually applies (deduplicated retries do not fire it) — the seam
// exactly-once property tests count double-applies through. nil removes it.
func (rs *RegionServer) SetBatchAppliedHook(fn func(writer string, seq uint64, regionID string)) {
	rs.hookMu.Lock()
	defer rs.hookMu.Unlock()
	rs.onBatchApplied = fn
}

func (rs *RegionServer) notifyBatchApplied(writer string, seq uint64, regionID string) {
	rs.hookMu.RLock()
	fn := rs.onBatchApplied
	rs.hookMu.RUnlock()
	if fn != nil {
		fn(writer, seq, regionID)
	}
}

// MemstoreBytes reports the aggregate buffered bytes across every primary
// region this server hosts — the quantity the watermarks compare against.
func (rs *RegionServer) MemstoreBytes() int {
	rs.mu.RLock()
	regions := make([]*Region, 0, len(rs.regions))
	for _, r := range rs.regions {
		regions = append(regions, r)
	}
	rs.mu.RUnlock()
	n := 0
	for _, r := range regions {
		if !r.IsReplica() {
			n += r.MemBytes()
		}
	}
	return n
}

// flushLargestMemstore flushes the primary region holding the most buffered
// bytes — the flush-the-biggest policy HBase's global memstore pressure
// valve uses, freeing the most memory per flush.
func (rs *RegionServer) flushLargestMemstore() {
	if rs.flushesHeld() {
		return
	}
	rs.mu.RLock()
	var victim *Region
	most := 0
	for _, r := range rs.regions {
		if r.IsReplica() {
			continue
		}
		if b := r.MemBytes(); b > most {
			most, victim = b, r
		}
	}
	rs.mu.RUnlock()
	if victim != nil {
		victim.Flush()
	}
}

// checkMemstorePressure enforces the server-wide memstore watermarks on a
// write. Above the high watermark the largest memstore is flushed and, if
// the total is still over, the write is rejected with the retryable
// ErrMemstoreFull — the hard bound that keeps a burst from buffering
// unbounded memory. Between the watermarks the write is delayed (after a
// flush), pacing ingest to flush throughput instead of failing it.
func (rs *RegionServer) checkMemstorePressure(ctx context.Context) error {
	lim := rs.serverLimits()
	if lim.MemstoreLowWatermarkBytes <= 0 && lim.MemstoreHighWatermarkBytes <= 0 {
		return nil
	}
	total := rs.MemstoreBytes()
	if lim.MemstoreHighWatermarkBytes > 0 && total >= lim.MemstoreHighWatermarkBytes {
		rs.flushLargestMemstore()
		if rs.MemstoreBytes() >= lim.MemstoreHighWatermarkBytes {
			rs.meter.Inc(metrics.MemstoreRejects)
			rs.noteBackpressure(total)
			return fmt.Errorf("%w: %s at %d buffered bytes", ErrMemstoreFull, rs.host, total)
		}
		rs.clearBackpressure()
		return nil
	}
	rs.clearBackpressure()
	if lim.MemstoreLowWatermarkBytes > 0 && total >= lim.MemstoreLowWatermarkBytes {
		rs.flushLargestMemstore()
		rs.meter.Inc(metrics.MemstoreDelays)
		delay := lim.MemstoreDelay
		if delay <= 0 {
			delay = time.Millisecond
		}
		return rpc.SleepContext(ctx, delay)
	}
	return nil
}

// noteBackpressure journals the start of a memstore-backpressure episode:
// one event per transition into the rejecting state, not one per reject.
func (rs *RegionServer) noteBackpressure(total int) {
	rs.admMu.Lock()
	fire := !rs.bpActive
	rs.bpActive = true
	rs.admMu.Unlock()
	if fire {
		rs.jrn().Append(ops.Event{
			Type: ops.EventMemstoreBackpressure, Server: rs.host,
			Detail: fmt.Sprintf("%d buffered bytes over high watermark", total),
		})
	}
}

// clearBackpressure ends the episode: the next reject journals again.
func (rs *RegionServer) clearBackpressure() {
	rs.admMu.Lock()
	rs.bpActive = false
	rs.admMu.Unlock()
}

// SetFencing installs (or, with lease <= 0, removes) the self-fencing lease.
// The lease clock starts now, as if a heartbeat had just arrived.
func (rs *RegionServer) SetFencing(lease time.Duration, fenceReads bool) {
	rs.leaseMu.Lock()
	defer rs.leaseMu.Unlock()
	rs.lease = lease
	rs.fenceReads = fenceReads
	rs.lastBeat = time.Now()
	rs.fencedNow = false
}

// SelfFenced reports whether the server's master lease has expired; the
// first observation of an expiry is metered as a self-fence transition.
func (rs *RegionServer) SelfFenced() bool {
	rs.leaseMu.Lock()
	defer rs.leaseMu.Unlock()
	if rs.lease <= 0 {
		return false
	}
	if time.Since(rs.lastBeat) <= rs.lease {
		return false
	}
	if !rs.fencedNow {
		rs.fencedNow = true
		rs.meter.Inc(metrics.ServerSelfFenced)
		rs.jrn().Append(ops.Event{
			Type: ops.EventServerFenced, Server: rs.host,
			Detail: "self-fenced: master lease expired",
		})
	}
	return true
}

// fenceReadsEnabled reports whether self-fencing extends to reads.
func (rs *RegionServer) fenceReadsEnabled() bool {
	rs.leaseMu.Lock()
	defer rs.leaseMu.Unlock()
	return rs.fenceReads
}

// heartbeat restarts the lease clock; arriving master traffic unfences.
func (rs *RegionServer) heartbeat() {
	rs.leaseMu.Lock()
	defer rs.leaseMu.Unlock()
	rs.lastBeat = time.Now()
	rs.fencedNow = false
}

// checkWriteFence gates a write RPC on the self-fencing lease.
func (rs *RegionServer) checkWriteFence() error {
	if rs.SelfFenced() {
		rs.meter.Inc(metrics.FencedRejects)
		return fmt.Errorf("%w: %s self-fenced, master lease expired", ErrFenced, rs.host)
	}
	return nil
}

// checkReadFence gates a read RPC: only when FenceReads is configured.
func (rs *RegionServer) checkReadFence() error {
	if rs.fenceReadsEnabled() && rs.SelfFenced() {
		rs.meter.Inc(metrics.FencedRejects)
		return fmt.Errorf("%w: %s self-fenced, master lease expired", ErrFenced, rs.host)
	}
	return nil
}

// admitted wraps a data handler with the admission gate: bounded in-flight
// RPCs, a bounded wait queue, and ErrServerBusy shedding beyond both.
func (rs *RegionServer) admitted(h rpc.Handler) rpc.Handler {
	return func(ctx context.Context, req rpc.Message) (rpc.Message, error) {
		adm := rs.admissionGate()
		if err := adm.enter(ctx); err != nil {
			return nil, err
		}
		defer adm.leave()
		if adm != nil {
			// Simulated service time is spent holding the slot — that is
			// what lets concurrent load saturate a bounded server.
			if err := rpc.SleepContext(ctx, adm.limits.ServiceTime); err != nil {
				return nil, err
			}
		}
		return h(ctx, req)
	}
}

// Host returns the server's host name.
func (rs *RegionServer) Host() string { return rs.host }

// AddRegion places a region on this server, rebinding its meta host — the
// hbase:meta update clients observe after a balance or a failover
// reassignment.
func (rs *RegionServer) AddRegion(r *Region) {
	id := r.setHost(rs.host)
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.regions[id] = r
}

// RemoveRegion takes a region off this server and returns it (nil if not
// hosted here).
func (rs *RegionServer) RemoveRegion(id string) *Region {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r := rs.regions[id]
	delete(rs.regions, id)
	return r
}

// Region returns the hosted region with the given id, or nil.
func (rs *RegionServer) Region(id string) *Region {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return rs.regions[id]
}

// RegionCount reports how many regions the server hosts.
func (rs *RegionServer) RegionCount() int {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	return len(rs.regions)
}

// OnlineRegions lists the IDs of the regions this server currently serves,
// sorted — the set a failover rebuilds when reassigning a dead server's
// load.
func (rs *RegionServer) OnlineRegions() []string {
	infos := rs.RegionInfos()
	out := make([]string, len(infos))
	for i := range infos {
		out[i] = infos[i].ID
	}
	return out
}

// Regions lists the hosted region objects (used by a recovering master to
// rebuild its meta state).
func (rs *RegionServer) Regions() []*Region {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := make([]*Region, 0, len(rs.regions))
	for _, r := range rs.regions {
		out = append(out, r)
	}
	return out
}

// RegionInfos lists the hosted regions.
func (rs *RegionServer) RegionInfos() []RegionInfo {
	rs.mu.RLock()
	defer rs.mu.RUnlock()
	out := make([]RegionInfo, 0, len(rs.regions))
	for _, r := range rs.regions {
		out = append(out, r.Info())
	}
	sortRegions(out)
	return out
}

func (rs *RegionServer) auth(token string) error {
	if rs.validate == nil {
		return nil
	}
	return rs.validate(token)
}

// regionFor resolves a hosted copy of a region and checks the caller's
// routing epoch against the one this server holds. Epoch 0 skips the check
// (legacy callers that bypass the meta cache). A lower caller epoch means a
// stale client cache; a higher one means this server itself is the stale
// party — a zombie still holding a region the master has reassigned — so it
// drops the region on the spot rather than double-serve it.
//
// replica > 0 addresses a secondary copy, the timeline-read failover path.
// Secondary lookups skip epoch checks entirely: a replica is expected to
// lag the primary's ownership changes, and the read was already promised
// to be possibly stale.
func (rs *RegionServer) regionFor(id string, epoch uint64, replica int) (*Region, error) {
	r := rs.Region(regionKey(id, replica))
	if r == nil {
		return nil, fmt.Errorf("%w: %q on %s", ErrNotServing, regionKey(id, replica), rs.host)
	}
	if replica > 0 {
		rs.meter.Inc(metrics.ReplicaReads)
		return r, nil
	}
	if epoch == 0 {
		return r, nil
	}
	held := r.Epoch()
	if epoch == held {
		return r, nil
	}
	rs.meter.Inc(metrics.FencedRejects)
	if epoch > held {
		rs.RemoveRegion(id)
		rs.meter.Inc(metrics.RegionsFenced)
		return nil, fmt.Errorf("%w: %q on %s holds epoch %d, caller knows %d (superseded)", ErrFenced, id, rs.host, held, epoch)
	}
	return nil, fmt.Errorf("%w: %q on %s at epoch %d, caller routed with stale epoch %d", ErrFenced, id, rs.host, held, epoch)
}

// handlePing answers the master's heartbeat. Heartbeats are cluster-internal
// liveness traffic, not client requests, so they bypass token auth the way
// HBase's own server-to-server RPCs use a separate trust path.
func (rs *RegionServer) handlePing(_ context.Context, req rpc.Message) (rpc.Message, error) {
	p, ok := req.(Ping)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodPing, req)
	}
	// Probes stamped with a master epoch participate in control-plane
	// fencing: once any probe has carried epoch E, probes below E come from
	// a deposed master and must not refresh the lease. Unstamped probes
	// (epoch 0, bare test traffic) bypass the check.
	if p.MasterEpoch > 0 {
		for {
			seen := rs.maxMasterEpoch.Load()
			if p.MasterEpoch < seen {
				rs.meter.Inc(metrics.FencedRejects)
				return nil, fmt.Errorf("%w: ping from deposed master %s at epoch %d, cluster at %d",
					ErrFenced, p.Master, p.MasterEpoch, seen)
			}
			if p.MasterEpoch == seen || rs.maxMasterEpoch.CompareAndSwap(seen, p.MasterEpoch) {
				break
			}
		}
	}
	rs.heartbeat()
	rs.meter.Inc(metrics.Heartbeats)
	return Ack{}, nil
}

func (rs *RegionServer) handlePut(ctx context.Context, req rpc.Message) (rpc.Message, error) {
	m, ok := req.(*PutRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodPut, req)
	}
	if err := rs.auth(m.Token); err != nil {
		return nil, err
	}
	if err := rs.checkWriteFence(); err != nil {
		return nil, err
	}
	if err := rs.checkMemstorePressure(ctx); err != nil {
		return nil, err
	}
	r, err := rs.regionFor(m.RegionID, m.Epoch, 0)
	if err != nil {
		return nil, err
	}
	if err := r.PutBatch(m.Cells); err != nil {
		return nil, err
	}
	return Ack{}, nil
}

func (rs *RegionServer) handleMultiPut(ctx context.Context, req rpc.Message) (rpc.Message, error) {
	m, ok := req.(*MultiPutRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodMultiPut, req)
	}
	if err := rs.auth(m.Token); err != nil {
		return nil, err
	}
	if err := rs.checkWriteFence(); err != nil {
		return nil, err
	}
	if err := rs.checkMemstorePressure(ctx); err != nil {
		return nil, err
	}
	// Apply every batch, returning the first error at the end: later batches
	// are not skipped because a retry of the whole request deduplicates the
	// ones that did land — finishing the pass costs nothing and narrows the
	// retry to genuinely unapplied batches.
	var firstErr error
	for i := range m.Batches {
		b := &m.Batches[i]
		r, err := rs.regionFor(b.RegionID, b.Epoch, 0)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		applied, err := r.PutBatchStamped(b.Writer, b.Seq, b.LowWater, b.Cells)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if applied && b.Writer != "" {
			rs.notifyBatchApplied(b.Writer, b.Seq, b.RegionID)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return Ack{}, nil
}

func (rs *RegionServer) handleBulkLoad(_ context.Context, req rpc.Message) (rpc.Message, error) {
	m, ok := req.(*BulkLoadRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodBulkLoad, req)
	}
	if err := rs.auth(m.Token); err != nil {
		return nil, err
	}
	if err := rs.checkWriteFence(); err != nil {
		return nil, err
	}
	// No memstore pressure check: bulk load bypasses the MemStore entirely,
	// which is the point of the path.
	r, err := rs.regionFor(m.RegionID, m.Epoch, 0)
	if err != nil {
		return nil, err
	}
	if err := r.BulkLoad(m.Cells); err != nil {
		return nil, err
	}
	return Ack{}, nil
}

// runScanTraced executes a region scan under a "region.scan" span tagged
// with the region and host, metering through the caller's scoped registry
// when the context carries one. Scans served by a secondary copy carry a
// "replica" tag so EXPLAIN ANALYZE can attribute stale rows. The scan body
// runs under a pprof "region" label (composing with the engine's
// query_fingerprint label carried in ctx), so a CPU profile scraped from
// the ops endpoint attributes scan time to regions and statements.
func (rs *RegionServer) runScanTraced(ctx context.Context, r *Region, s *Scan) []Result {
	_, sp := trace.StartSpan(ctx, "region.scan")
	info := r.Info()
	sp.SetTag("region", info.ID)
	sp.SetTag("host", rs.host)
	if info.Replica > 0 {
		sp.SetTag("replica", fmt.Sprintf("%d", info.Replica))
	}
	var results []Result
	pprof.Do(ctx, pprof.Labels("region", info.ID), func(ctx context.Context) {
		results = r.RunScanWith(s, metrics.Scoped(ctx, rs.meter))
	})
	sp.SetAttr("rows", int64(len(results)))
	sp.End()
	return results
}

// markStale tags a response served by secondary copy r: the rows may lag
// the primary, and StalenessMs is the explicit bound on that lag. The max
// survives across multiple ops on one page.
func markStale(resp *ScanResponse, r *Region) {
	resp.Stale = true
	if b := r.StalenessBound().Milliseconds(); b > resp.StalenessMs {
		resp.StalenessMs = b
	}
}

func (rs *RegionServer) handleScan(ctx context.Context, req rpc.Message) (rpc.Message, error) {
	m, ok := req.(*ScanRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodScan, req)
	}
	if err := rs.auth(m.Token); err != nil {
		return nil, err
	}
	if err := rs.checkReadFence(); err != nil {
		return nil, err
	}
	r, err := rs.regionFor(m.RegionID, m.Epoch, m.Replica)
	if err != nil {
		return nil, err
	}
	if m.Scan == nil {
		return nil, fmt.Errorf("hbase: %s: nil scan", MethodScan)
	}
	resp := &ScanResponse{Results: rs.runScanTraced(ctx, r, m.Scan)}
	if m.Replica > 0 {
		markStale(resp, r)
	}
	return resp, nil
}

func (rs *RegionServer) handleBulkGet(ctx context.Context, req rpc.Message) (rpc.Message, error) {
	m, ok := req.(*BulkGetRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodBulkGet, req)
	}
	if err := rs.auth(m.Token); err != nil {
		return nil, err
	}
	if err := rs.checkReadFence(); err != nil {
		return nil, err
	}
	r, err := rs.regionFor(m.RegionID, m.Epoch, m.Replica)
	if err != nil {
		return nil, err
	}
	_, sp := trace.StartSpan(ctx, "region.get")
	sp.SetTag("region", r.Info().ID)
	sp.SetTag("host", rs.host)
	if m.Replica > 0 {
		sp.SetTag("replica", fmt.Sprintf("%d", m.Replica))
	}
	meter := metrics.Scoped(ctx, rs.meter)
	resp := &ScanResponse{}
	for _, row := range m.Rows {
		res := r.GetWith(row, m.Columns, m.MaxVersions, m.TimeRange, meter)
		if !res.Empty() {
			resp.Results = append(resp.Results, res)
		}
	}
	if m.Replica > 0 {
		markStale(resp, r)
	}
	sp.SetAttr("rows", int64(len(resp.Results)))
	sp.End()
	return resp, nil
}

func (rs *RegionServer) handleFused(ctx context.Context, req rpc.Message) (rpc.Message, error) {
	m, ok := req.(*FusedRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodFused, req)
	}
	resp, err := rs.fusedPage(ctx, m)
	if err != nil {
		return nil, err
	}
	// Column-major packing happens strictly after the page's rows and
	// continuation cursor are final, so paging and mid-scan resume are
	// byte-identical to the row-major form.
	if m.Columnar {
		packColumnar(resp)
	}
	return resp, nil
}

func (rs *RegionServer) fusedPage(ctx context.Context, m *FusedRequest) (*ScanResponse, error) {
	if err := rs.auth(m.Token); err != nil {
		return nil, err
	}
	if err := rs.checkReadFence(); err != nil {
		return nil, err
	}
	if m.Cursor.Op < 0 || m.Cursor.Op > len(m.Ops) {
		return nil, fmt.Errorf("hbase: %s: cursor op %d out of range", MethodFused, m.Cursor.Op)
	}
	meter := metrics.Scoped(ctx, rs.meter)
	resp := &ScanResponse{}
	// room reports how many more rows fit in this page; -1 = unbounded.
	room := func() int {
		if m.BatchLimit <= 0 {
			return -1
		}
		return m.BatchLimit - len(resp.Results)
	}
	for opIdx := m.Cursor.Op; opIdx < len(m.Ops); opIdx++ {
		// A cancelled caller (deadline, hedged-read loser) stops the fused
		// walk between ops instead of scanning regions nobody will read.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		op := m.Ops[opIdx]
		// Within-op resume state applies only to the cursor's own op.
		cur := FusedCursor{}
		if opIdx == m.Cursor.Op {
			cur = m.Cursor
		}
		r, err := rs.regionFor(op.RegionID, op.Epoch, op.Replica)
		if err != nil {
			return nil, err
		}
		if op.Replica > 0 {
			markStale(resp, r)
		}
		if len(op.Rows) > 0 {
			// Point gets inherit the template's projection, filter, and
			// time options (HBase Gets carry filters too). One span covers
			// the whole op — a span per row would dwarf the work it times.
			_, sp := trace.StartSpan(ctx, "region.get")
			sp.SetTag("region", r.Info().ID)
			sp.SetTag("host", rs.host)
			if op.Replica > 0 {
				sp.SetTag("replica", fmt.Sprintf("%d", op.Replica))
			}
			var got int64
			for ri := cur.RowIdx; ri < len(op.Rows); ri++ {
				if room() == 0 {
					resp.More = true
					resp.Next = FusedCursor{Op: opIdx, RowIdx: ri}
					sp.SetAttr("rows", got)
					sp.End()
					return resp, nil
				}
				row := op.Rows[ri]
				s := Scan{StartRow: row, StopRow: append(append([]byte(nil), row...), 0), Limit: 1}
				if op.Scan != nil {
					s.Columns, s.Filter = op.Scan.Columns, op.Scan.Filter
					s.MaxVersions, s.TimeRange = op.Scan.MaxVersions, op.Scan.TimeRange
				}
				results := r.RunScanWith(&s, meter)
				got += int64(len(results))
				resp.Results = append(resp.Results, results...)
			}
			sp.SetAttr("rows", got)
			sp.End()
			continue
		}
		if op.Scan == nil {
			return nil, fmt.Errorf("hbase: %s: op for region %q has neither scan nor rows", MethodFused, op.RegionID)
		}
		if room() == 0 {
			resp.More = true
			resp.Next = FusedCursor{Op: opIdx, Row: cur.Row, Sent: cur.Sent}
			return resp, nil
		}
		s := *op.Scan
		if cur.Row != nil {
			s.StartRow = cur.Row
		}
		// Remaining per-op limit after rows already sent in earlier pages.
		if op.Scan.Limit > 0 {
			left := op.Scan.Limit - cur.Sent
			if left <= 0 {
				continue
			}
			s.Limit = left
		}
		// Clip to the page budget when it is tighter than the op's limit.
		pageBounded := false
		if rm := room(); rm > 0 && (s.Limit == 0 || s.Limit > rm) {
			s.Limit = rm
			pageBounded = true
		}
		results := rs.runScanTraced(ctx, r, &s)
		resp.Results = append(resp.Results, results...)
		if pageBounded && len(results) == s.Limit {
			// The op may hold more rows: stop here and hand back a cursor
			// resuming just past the last row returned.
			last := results[len(results)-1].Row
			resp.More = true
			resp.Next = FusedCursor{
				Op:   opIdx,
				Row:  append(append([]byte(nil), last...), 0),
				Sent: cur.Sent + len(results),
			}
			return resp, nil
		}
	}
	return resp, nil
}

// packColumnar repacks a page's row-major Results into a CellBlock when the
// transformation is lossless: at most one (latest) version per column per
// row. Multi-version rows keep the row-major form — the client decodes
// both.
func packColumnar(resp *ScanResponse) {
	results := resp.Results
	if len(results) == 0 {
		return
	}
	type colKey struct{ f, q string }
	var order []colKey
	index := make(map[colKey]int)
	for ri := range results {
		cells := results[ri].Cells
		for ci := range cells {
			c := &cells[ci]
			// Cells are ordered (family, qualifier, timestamp desc): a
			// duplicate column means multiple versions — not packable.
			if ci > 0 && cells[ci-1].Family == c.Family && cells[ci-1].Qualifier == c.Qualifier {
				return
			}
			// A nil entry in the block means "no cell"; an empty stored
			// value would be indistinguishable, so such pages stay row-major.
			if len(c.Value) == 0 {
				return
			}
			k := colKey{c.Family, c.Qualifier}
			if _, ok := index[k]; !ok {
				index[k] = len(order)
				order = append(order, k)
			}
		}
	}
	block := &CellBlock{
		Rows: make([][]byte, len(results)),
		Cols: make([]CellColumn, len(order)),
	}
	for i, k := range order {
		block.Cols[i] = CellColumn{Family: k.f, Qualifier: k.q, Values: make([][]byte, len(results))}
	}
	for ri := range results {
		block.Rows[ri] = results[ri].Row
		for ci := range results[ri].Cells {
			c := &results[ri].Cells[ci]
			block.Cols[index[colKey{c.Family, c.Qualifier}]].Values[ri] = c.Value
		}
	}
	resp.Block = block
	resp.Results = nil
}
