package hbase

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

func TestDedupWindowBasics(t *testing.T) {
	w := newDedupWindow()
	if w.has("a", 1) {
		t.Error("empty window must not report stamps")
	}
	w.mark("a", 1, 0)
	w.mark("a", 3, 0)
	w.mark("b", 1, 0)
	if !w.has("a", 1) || !w.has("a", 3) || !w.has("b", 1) {
		t.Error("marked stamps must be reported")
	}
	if w.has("a", 2) || w.has("c", 1) {
		t.Error("unmarked stamps must not be reported")
	}
	// The anonymous writer is never tracked: unstamped writes do not dedup.
	w.mark("", 7, 0)
	if w.has("", 7) {
		t.Error("anonymous stamps must not be tracked")
	}
	// Clones are independent snapshots.
	c := w.clone()
	w.mark("a", 9, 0)
	if c.has("a", 9) {
		t.Error("clone must not see later marks")
	}
	if !c.has("a", 1) {
		t.Error("clone must keep earlier marks")
	}
	var nilWin *dedupWindow
	if nilWin.has("a", 1) {
		t.Error("nil window has nothing")
	}
	if nilWin.clone() == nil {
		t.Error("nil clone must allocate a fresh window")
	}
}

func TestDedupWindowPrunesByLowWater(t *testing.T) {
	w := newDedupWindow()
	// A writer streams 10k batches, each claiming everything before it is
	// resolved: the seen set stays O(in-flight), not O(history).
	for i := uint64(1); i <= 10000; i++ {
		w.mark("w", i, i)
	}
	ww := w.writers["w"]
	if len(ww.seen) > 2 {
		t.Fatalf("window kept %d stamps, want <= 2", len(ww.seen))
	}
	// Pruned stamps collapse into the watermark, not into oblivion: every
	// resolved sequence still deduplicates.
	if !w.has("w", 10000) || !w.has("w", 1) || !w.has("w", 5000) {
		t.Error("stamps at or below the low-water mark must still dedup")
	}
	// Without a low-water claim nothing is pruned, no matter how far a stamp
	// trails the high-water mark — a slow retry can never out-age its stamp.
	s := newDedupWindow()
	s.mark("s", 1, 0)
	s.mark("s", 100000, 0)
	if len(s.writers["s"].seen) != 2 || !s.has("s", 1) {
		t.Error("stamps above the low-water mark must never be pruned")
	}
	// The mark only moves forward; a stale lower claim cannot resurrect
	// unseen sequences below the established mark.
	w.mark("w", 10001, 1)
	if !w.has("w", 2) {
		t.Error("low-water mark must be monotonic")
	}
	// Clones carry the watermark.
	if !w.clone().has("w", 3) {
		t.Error("clone must keep the low-water mark")
	}
}

func TestPutBatchStampedDeduplicates(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	cells := []Cell{cell("a", "cf", "q", 1, "x"), cell("b", "cf", "q", 1, "y")}
	applied, err := r.PutBatchStamped("w1", 1, 0, cells)
	if err != nil || !applied {
		t.Fatalf("first apply = %v, %v", applied, err)
	}
	applied, err = r.PutBatchStamped("w1", 1, 0, cells)
	if err != nil || applied {
		t.Fatalf("replay must dedup, got applied=%v err=%v", applied, err)
	}
	if got := r.meter.Get(metrics.BatchesDeduped); got != 1 {
		t.Errorf("batches deduped = %d", got)
	}
	// A different stamp applies.
	if applied, err = r.PutBatchStamped("w1", 2, 0, []Cell{cell("c", "cf", "q", 1, "z")}); err != nil || !applied {
		t.Fatalf("new stamp = %v, %v", applied, err)
	}
	if n := len(r.RunScan(&Scan{})); n != 3 {
		t.Errorf("rows = %d, want 3", n)
	}
}

func TestDedupSurvivesFlushAndCrashRecovery(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	if _, err := r.PutBatchStamped("w", 1, 0, []Cell{cell("a", "cf", "q", 1, "x")}); err != nil {
		t.Fatal(err)
	}
	// Flush snapshots the window into the durable half.
	r.Flush()
	if _, err := r.PutBatchStamped("w", 2, 0, []Cell{cell("b", "cf", "q", 1, "y")}); err != nil {
		t.Fatal(err)
	}
	// Crash: the memstore is lost, the WAL replays. Stamp 1 comes back from
	// the durable snapshot, stamp 2 from the replayed WAL entries.
	if err := r.RecoverFromWAL(); err != nil {
		t.Fatal(err)
	}
	for seq := uint64(1); seq <= 2; seq++ {
		applied, err := r.PutBatchStamped("w", seq, 0, []Cell{cell("a", "cf", "q", 1, "dup")})
		if err != nil || applied {
			t.Fatalf("stamp %d must dedup after recovery, got applied=%v err=%v", seq, applied, err)
		}
	}
	if n := len(r.RunScan(&Scan{})); n != 2 {
		t.Errorf("rows after recovery = %d, want 2", n)
	}
}

func TestDedupDropMemStoreForgetsUnflushedStamps(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	if _, err := r.PutBatchStamped("w", 1, 0, []Cell{cell("a", "cf", "q", 1, "x")}); err != nil {
		t.Fatal(err)
	}
	r.Flush()
	if _, err := r.PutBatchStamped("w", 2, 0, []Cell{cell("b", "cf", "q", 1, "y")}); err != nil {
		t.Fatal(err)
	}
	// DropMemStore models losing unflushed (hence unacked-able) state without
	// WAL replay: stamp 2's cells are gone, so its stamp must be forgotten or
	// the retry would be wrongly swallowed.
	r.DropMemStore()
	applied, err := r.PutBatchStamped("w", 2, 0, []Cell{cell("b", "cf", "q", 1, "y")})
	if err != nil || !applied {
		t.Fatalf("retry after drop must apply, got applied=%v err=%v", applied, err)
	}
	if applied, _ = r.PutBatchStamped("w", 1, 0, []Cell{cell("a", "cf", "q", 1, "x")}); applied {
		t.Error("flushed stamp must still dedup after drop")
	}
}

func TestSplitDaughtersInheritDedupWindow(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	for i := 0; i < 10; i++ {
		if _, err := r.PutBatchStamped("w", uint64(i+1), 0, []Cell{cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "x")}); err != nil {
			t.Fatal(err)
		}
	}
	low, high, err := r.SplitInto("t-l", "t-h", r.SplitPoint(), 5)
	if err != nil {
		t.Fatal(err)
	}
	// A batch retried after the split lands on a daughter; both must dedup it.
	for _, d := range []*Region{low, high} {
		for seq := uint64(1); seq <= 10; seq++ {
			row := fmt.Sprintf("row-%02d", seq-1)
			if !d.info.ContainsRow([]byte(row)) {
				continue
			}
			applied, err := d.PutBatchStamped("w", seq, 0, []Cell{cell(row, "cf", "q", 1, "dup")})
			if err != nil || applied {
				t.Fatalf("daughter %s seq %d: applied=%v err=%v", d.info.ID, seq, applied, err)
			}
		}
	}
	// The parent's WAL is fenced at the daughters' epoch.
	if err := r.Put(cell("row-00", "cf", "q", 2, "late")); !errors.Is(err, ErrFenced) {
		t.Errorf("write to fenced parent = %v, want ErrFenced", err)
	}
}

func TestRegionBulkLoad(t *testing.T) {
	r := newTestRegion(t, StoreConfig{})
	cells := []Cell{
		cell("a", "cf", "q", 1, "x"),
		cell("b", "cf", "q", 1, "y"),
		cell("c", "cf", "q", 1, "z"),
	}
	if err := r.BulkLoad(cells); err != nil {
		t.Fatal(err)
	}
	if got := r.MemBytes(); got != 0 {
		t.Errorf("bulk load left %d bytes in the memstore, want 0", got)
	}
	if n := len(r.RunScan(&Scan{})); n != 3 {
		t.Errorf("rows = %d, want 3", n)
	}
	if got := r.meter.Get(metrics.BulkLoadCells); got != 3 {
		t.Errorf("bulk load cells metered = %d", got)
	}
	// Out-of-order input is the caller's bug, not silently re-sorted here.
	bad := []Cell{cell("z", "cf", "q", 1, "x"), cell("y", "cf", "q", 1, "x")}
	if err := r.BulkLoad(bad); err == nil {
		t.Error("unsorted bulk load must be rejected")
	}
	// A fenced region refuses bulk loads like any other write.
	r.log.Fence(r.info.Epoch + 1)
	if err := r.BulkLoad(cells); !errors.Is(err, ErrFenced) {
		t.Errorf("fenced bulk load = %v, want ErrFenced", err)
	}
}

func TestClientBulkLoadAcrossRegions(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	// Deliberately unsorted: the client sorts before carving region runs.
	var cells []Cell
	for i := 25; i >= 0; i-- {
		cells = append(cells, cell(fmt.Sprintf("%c-row", 'a'+i), "cf", "q", 1, fmt.Sprintf("v%02d", i)))
	}
	if err := client.BulkLoad("t", cells); err != nil {
		t.Fatal(err)
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 26 {
		t.Fatalf("rows = %d, want 26", len(results))
	}
	if got := c.Meter.Get(metrics.BulkLoads); got != 2 {
		t.Errorf("bulk loads metered = %d, want 2 (one per region)", got)
	}
	// Nothing sits in any memstore: the path bypassed WAL and MemStore.
	for _, rs := range c.Servers {
		if got := rs.MemstoreBytes(); got != 0 {
			t.Errorf("server %s memstore = %d bytes after bulk load", rs.Host(), got)
		}
	}
}

func TestMemstoreBackpressureWatermarks(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Name: "t", NumServers: 1, Store: StoreConfig{FlushThresholdBytes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	srv := c.Servers[0]
	srv.SetLimits(ServerLimits{
		MemstoreLowWatermarkBytes:  256,
		MemstoreHighWatermarkBytes: 1024,
		MemstoreDelay:              time.Microsecond,
	})
	// Flushes held: the watermark pressure cannot drain, so writes first
	// meter delays and then hit the hard reject.
	srv.HoldFlushes(true)
	var rejected bool
	for i := 0; i < 200 && !rejected; i++ {
		err := client.Put("t", []Cell{cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, "0123456789abcdef")})
		if err != nil {
			if !errors.Is(err, ErrMemstoreFull) {
				t.Fatalf("put %d failed with %v, want ErrMemstoreFull", i, err)
			}
			rejected = true
		}
	}
	if !rejected {
		t.Fatal("held flushes never drove the memstore over the high watermark")
	}
	if got := c.Meter.Get(metrics.MemstoreDelays); got == 0 {
		t.Error("no delays metered below the high watermark")
	}
	if got := c.Meter.Get(metrics.MemstoreRejects); got == 0 {
		t.Error("no rejects metered")
	}
	// Releasing flushes lets the same write through: ErrMemstoreFull is a
	// retryable condition, not a verdict.
	srv.HoldFlushes(false)
	if err := client.Put("t", []Cell{cell("retry-row", "cf", "q", 1, "x")}); err != nil {
		t.Fatalf("put after releasing flushes: %v", err)
	}
}

func TestBufferedMutatorBatchesWrites(t *testing.T) {
	ctx := context.Background()
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	m := client.NewMutator("t", MutatorConfig{WriterID: "w1", FlushBytes: 1 << 20})
	const n = 200
	for i := 0; i < n; i++ {
		if err := m.Mutate(ctx, cell(fmt.Sprintf("%c-%03d", 'a'+i%26, i), "cf", "q", 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// One flush, two regions on two servers: two MultiPut RPCs for 200 cells.
	if got := c.Meter.Get(metrics.MultiPuts); got != 2 {
		t.Errorf("multi-puts = %d, want 2", got)
	}
	if got := c.Meter.Get(metrics.MutatorFlushes); got != 1 {
		t.Errorf("flushes = %d, want 1", got)
	}
	if got := len(m.AckedBatches()); got != 2 {
		t.Errorf("acked batches = %d, want 2", got)
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil || len(results) != n {
		t.Fatalf("rows = %d, %v", len(results), err)
	}
}

func TestBufferedMutatorFlushesBySizeAndInterval(t *testing.T) {
	ctx := context.Background()
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	// Tiny threshold: every few cells force an inline flush.
	m := client.NewMutator("t", MutatorConfig{WriterID: "w1", FlushBytes: 64})
	for i := 0; i < 20; i++ {
		if err := m.Mutate(ctx, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Meter.Get(metrics.MutatorFlushes); got < 2 {
		t.Errorf("size-triggered flushes = %d, want >= 2", got)
	}

	// Interval flusher drains a buffer that never crosses FlushBytes.
	m2 := client.NewMutator("t", MutatorConfig{WriterID: "w2", FlushBytes: 1 << 20, FlushInterval: 2 * time.Millisecond})
	if err := m2.Mutate(ctx, cell("zz-interval", "cf", "q", 1, "x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for len(m2.AckedBatches()) == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if len(m2.AckedBatches()) == 0 {
		t.Error("background interval flush never acked the batch")
	}
	if err := m2.Close(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBufferedMutatorFlushSurfacesRegroupFailure(t *testing.T) {
	ctx := context.Background()
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	// Round 1: the MultiPut dies retryably and takes the master down with it.
	// The retry invalidates the region cache, so round 2 must re-resolve
	// locations through the unreachable master and fails before any RPC goes
	// out. The flush must surface that — not report success with the cells
	// silently dropped (regression: an early-error round used to return an
	// empty failed set that send() mistook for "all acked").
	inj := rpc.NewFaultInjector(1, &rpc.FaultRule{
		Method: MethodMultiPut, FailNext: 1, Err: rpc.ErrConnClosed,
		OnFire: func() {
			if err := c.Net.SetDown(c.Master.Host(), true); err != nil {
				t.Errorf("down master: %v", err)
			}
		},
	})
	c.Net.SetFaultInjector(inj)

	m := client.NewMutator("t", MutatorConfig{WriterID: "w1", FlushBytes: 1 << 20, MaxAttempts: 3})
	if err := m.Mutate(ctx, cell("row-a", "cf", "q", 1, "v")); err != nil {
		t.Fatal(err)
	}
	err := m.Flush(ctx)
	if err == nil {
		t.Fatal("flush with undeliverable batches reported success")
	}
	if !errors.Is(err, rpc.ErrHostDown) {
		t.Fatalf("flush error = %v, want to wrap rpc.ErrHostDown", err)
	}
	if got := len(m.AckedBatches()); got != 0 {
		t.Errorf("acked batches = %d, want 0", got)
	}
}

func TestBufferedMutatorSurfacesBackgroundFlushError(t *testing.T) {
	ctx := context.Background()
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	inj := rpc.NewFaultInjector(1, &rpc.FaultRule{Method: MethodMultiPut, FailNext: 1, Err: rpc.ErrConnClosed})
	c.Net.SetFaultInjector(inj)
	m := client.NewMutator("t", MutatorConfig{WriterID: "w1", FlushBytes: 1 << 20, FlushInterval: time.Millisecond, MaxAttempts: 1})
	if err := m.Mutate(ctx, cell("row-a", "cf", "q", 1, "v")); err != nil {
		t.Fatal(err)
	}
	// Wait until the background flusher has taken the buffer and recorded its
	// failure; the next explicit Flush must surface it — Mutate's documented
	// contract for deferred errors.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		m.mu.Lock()
		recorded := m.bgErr != nil
		m.mu.Unlock()
		if recorded {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Flush(ctx); !errors.Is(err, rpc.ErrConnClosed) {
		t.Fatalf("explicit flush = %v, want the background rpc.ErrConnClosed surfaced", err)
	}
	// The error surfaces exactly once; the mutator keeps working after.
	if err := m.Close(ctx); err != nil {
		t.Fatalf("close after surfaced error: %v", err)
	}
}

func TestBufferedMutatorConcurrentClose(t *testing.T) {
	ctx := context.Background()
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	m := client.NewMutator("t", MutatorConfig{WriterID: "w1", FlushInterval: time.Millisecond})
	if err := m.Mutate(ctx, cell("row-a", "cf", "q", 1, "v")); err != nil {
		t.Fatal(err)
	}
	// Two racing Closes must not double-close the ticker channel.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := m.Close(ctx); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
	}
	wg.Wait()
}

// appliedCounter records, per (writer, seq, region), how many times a server
// actually applied a stamped batch — dedup-suppressed replays do not count.
// It is the measurement side of the exactly-once property: double-applied
// cells are invisible to reads (identical cells collapse in version
// resolution), so reads alone cannot falsify exactly-once.
type appliedCounter struct {
	mu     sync.Mutex
	counts map[string]int
}

func newAppliedCounter() *appliedCounter {
	return &appliedCounter{counts: make(map[string]int)}
}

func (a *appliedCounter) hook() func(writer string, seq uint64, regionID string) {
	return func(writer string, seq uint64, regionID string) {
		a.mu.Lock()
		a.counts[fmt.Sprintf("%s/%d@%s", writer, seq, regionID)]++
		a.mu.Unlock()
	}
}

func (a *appliedCounter) maxApplies() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	max := 0
	for _, n := range a.counts {
		if n > max {
			max = n
		}
	}
	return max
}

func TestBufferedMutatorExactlyOnceAcrossLostAck(t *testing.T) {
	ctx := context.Background()
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	counter := newAppliedCounter()
	for _, rs := range c.Servers {
		rs.SetBatchAppliedHook(counter.hook())
	}
	// The first two MultiPuts apply on the server but their acks vanish: the
	// client sees a dead connection and must retry the whole flush.
	inj := rpc.NewFaultInjector(1, &rpc.FaultRule{
		Method: MethodMultiPut, FailNext: 2, DropReply: true, Err: rpc.ErrConnClosed,
	})
	c.Net.SetFaultInjector(inj)

	m := client.NewMutator("t", MutatorConfig{WriterID: "w1", FlushBytes: 1 << 20})
	const n = 40
	for i := 0; i < n; i++ {
		if err := m.Mutate(ctx, cell(fmt.Sprintf("%c-%03d", 'a'+i%26, i), "cf", "q", 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := c.Meter.Get(metrics.RepliesDropped); got != 2 {
		t.Fatalf("replies dropped = %d, want 2", got)
	}
	if got := c.Meter.Get(metrics.BatchesDeduped); got == 0 {
		t.Error("the retried batches must have been deduplicated server-side")
	}
	if got := counter.maxApplies(); got > 1 {
		t.Fatalf("a stamped batch applied %d times — exactly-once violated", got)
	}
	// Every acked batch landed.
	if got := len(m.AckedBatches()); got != 2 {
		t.Errorf("acked batches = %d, want 2", got)
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil || len(results) != n {
		t.Fatalf("rows = %d, %v", len(results), err)
	}
}

func TestBufferedMutatorRegroupsAcrossSplit(t *testing.T) {
	ctx := context.Background()
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var seed []Cell
	for i := 0; i < 30; i++ {
		seed = append(seed, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, "0123456789abcdef"))
	}
	if err := client.Put("t", seed); err != nil {
		t.Fatal(err)
	}
	counter := newAppliedCounter()
	for _, rs := range c.Servers {
		rs.SetBatchAppliedHook(counter.hook())
	}
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	// Drop the ack of the first MultiPut AND split the region under it before
	// the retry: the batch regroups across the fresh boundaries, each piece
	// keeping its stamp, and the daughters' inherited windows dedup whatever
	// already landed.
	inj := rpc.NewFaultInjector(1, &rpc.FaultRule{
		Method: MethodMultiPut, FailNext: 1, DropReply: true, Err: rpc.ErrConnClosed,
		OnFire: func() {
			if err := c.Master.SplitRegion("t", regions[0].ID); err != nil {
				t.Errorf("split: %v", err)
			}
		},
	})
	c.Net.SetFaultInjector(inj)

	m := client.NewMutator("t", MutatorConfig{WriterID: "w1", FlushBytes: 1 << 20})
	const n = 40
	for i := 0; i < n; i++ {
		if err := m.Mutate(ctx, cell(fmt.Sprintf("row-%03d", 100+i), "cf", "q", 1, "v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if got := counter.maxApplies(); got > 1 {
		t.Fatalf("a stamped batch applied %d times across the split — exactly-once violated", got)
	}
	client.InvalidateRegions("t")
	results, err := client.ScanTable("t", &Scan{})
	if err != nil || len(results) != 30+n {
		t.Fatalf("rows = %d, want %d (%v)", len(results), 30+n, err)
	}
}

func TestScannerResumesExactlyAcrossSplit(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 40; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, fmt.Sprintf("v%02d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	baseline, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}

	sc, err := client.OpenScanner("t", &Scan{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	page1, err := sc.Next()
	if err != nil || len(page1) != 7 {
		t.Fatalf("page 1 = %d rows, %v", len(page1), err)
	}
	// The region under the scanner splits between pages: the old region ID is
	// gone, so the next page faults, relocates by cursor key, and must resume
	// with no row duplicated or dropped.
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master.SplitRegion("t", regions[0].ID); err != nil {
		t.Fatal(err)
	}
	got := append([]Result(nil), page1...)
	for {
		page, err := sc.Next()
		if err != nil {
			t.Fatalf("resumed scan: %v", err)
		}
		if page == nil {
			break
		}
		got = append(got, page...)
	}
	if !reflect.DeepEqual(baseline, got) {
		t.Fatalf("scan across split differs: %d rows, want %d", len(got), len(baseline))
	}
}

func TestHotRegionDetectionSplitsByLoad(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	c.Master.SetHotWriteThreshold(50)
	// A hot-key burst: every write lands in the single region.
	var cells []Cell
	for i := 0; i < 200; i++ {
		cells = append(cells, cell(fmt.Sprintf("hot-%03d", i), "cf", "q", 1, "0123456789abcdef"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	c.Master.JanitorPass()
	if got := c.Meter.Get(metrics.HotSplits); got == 0 {
		t.Fatal("hot region was not split by load")
	}
	if got := c.Meter.Get(metrics.JanitorRuns); got != 1 {
		t.Errorf("janitor runs = %d, want 1", got)
	}
	client.InvalidateRegions("t")
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) < 2 {
		t.Fatalf("regions after hot split = %d, want >= 2", len(regions))
	}
	// The load counter was consumed: an idle next pass splits nothing more.
	before := c.Meter.Get(metrics.HotSplits)
	c.Master.JanitorPass()
	if got := c.Meter.Get(metrics.HotSplits); got != before {
		t.Errorf("idle janitor pass split %d more regions", got-before)
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil || len(results) != 200 {
		t.Fatalf("rows after hot split = %d, %v", len(results), err)
	}
}

func TestJanitorTickerRuns(t *testing.T) {
	c := bootCluster(t, 1)
	stop := c.Master.StartJanitor(2 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for c.Meter.Get(metrics.JanitorRuns) < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	stop()
	stop() // idempotent
	if got := c.Meter.Get(metrics.JanitorRuns); got < 2 {
		t.Fatalf("janitor runs = %d, want >= 2", got)
	}
}
