package hbase

import (
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

// TestMasterFailover exercises the paper's §VI-B fault-tolerance story: the
// active master dies, a standby wins the ZooKeeper election, rebuilds meta
// from the region servers, and clients recover transparently.
func TestMasterFailover(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "x"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}

	// Kill the active master: resign leadership and drop off the network.
	c.Master.Resign()
	if err := c.Net.SetDown(c.Master.Host(), true); err != nil {
		t.Fatal(err)
	}

	// A standby master takes over and rebuilds meta from the servers.
	standby, err := NewMaster("test-master-2", c.Net, c.ZK, StoreConfig{}, c.Meter, nil)
	if err != nil {
		t.Fatalf("standby election: %v", err)
	}
	if err := standby.RecoverFrom(c.Servers); err != nil {
		t.Fatal(err)
	}
	// Recovered meta matches: same table, same regions.
	regions, err := standby.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("recovered regions = %d", len(regions))
	}
	if tables := standby.Tables(); len(tables) != 1 || tables[0] != "t" {
		t.Errorf("recovered tables = %v", tables)
	}

	// The old client's meta cache points at the dead master; a meta
	// operation must fail over to the new leader transparently.
	client.InvalidateRegions("t")
	results, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatalf("scan after failover: %v", err)
	}
	if len(results) != 20 {
		t.Errorf("rows after failover = %d", len(results))
	}
	// Admin operations keep working: region sequence numbers continue
	// without collisions.
	if err := standby.CreateTable(TableDescriptor{Name: "t2", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	regions2, _ := standby.TableRegions("t2")
	for _, r2 := range regions2 {
		for _, r1 := range regions {
			if r1.ID == r2.ID {
				t.Errorf("region id collision after recovery: %s", r1.ID)
			}
		}
	}
}

// TestRegionServerCrashLosesOnlyMemstore drives the WAL recovery path at
// the server level: a crashed server's regions rebuild from their logs.
func TestRegionServerCrashLosesOnlyMemstore(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 30; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "x"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	// Crash: every region on the server loses its memstore, then recovers
	// from the WAL.
	for _, region := range c.Servers[0].Regions() {
		region.DropMemStore()
		if err := region.RecoverFromWAL(); err != nil {
			t.Fatal(err)
		}
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 30 {
		t.Errorf("rows after WAL recovery = %d", len(results))
	}
}

// TestQueryFailsCleanlyWhenRegionServerDown injects a downed region server
// and verifies errors surface instead of partial results.
func TestQueryFailsCleanlyWhenRegionServerDown(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("a", "cf", "q", 1, "x"), cell("z", "cf", "q", 1, "y")}); err != nil {
		t.Fatal(err)
	}
	if err := c.Net.SetDown(c.Servers[0].Host(), true); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ScanTable("t", &Scan{}); err == nil {
		t.Fatal("scan spanning a downed server must fail")
	}
	// Recovery: server returns, scan succeeds.
	if err := c.Net.SetDown(c.Servers[0].Host(), false); err != nil {
		t.Fatal(err)
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil || len(results) != 2 {
		t.Errorf("scan after recovery = %d rows, %v", len(results), err)
	}
}

func TestConcurrentClientsOnOneCluster(t *testing.T) {
	c := bootCluster(t, 3)
	setup := c.NewClient()
	defer setup.Close()
	if err := setup.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("h"), []byte("p")}); err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 8)
	for w := 0; w < 8; w++ {
		w := w
		go func() {
			client := c.NewClient()
			defer client.Close()
			var cells []Cell
			for i := 0; i < 25; i++ {
				cells = append(cells, cell(fmt.Sprintf("%c%02d-%d", 'a'+i, i, w), "cf", "q", int64(w+1), "v"))
			}
			if err := client.Put("t", cells); err != nil {
				errCh <- err
				return
			}
			if _, err := client.ScanTable("t", &Scan{}); err != nil {
				errCh <- err
				return
			}
			errCh <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	final := c.NewClient()
	defer final.Close()
	results, err := final.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8*25 {
		t.Errorf("rows = %d, want 200", len(results))
	}
	if got := c.Meter.Get(metrics.RowsReturned); got == 0 {
		t.Error("metering lost under concurrency")
	}
}

// TestStaleMetaRetryAfterRegionMove verifies the client recovers from a
// balancer move without manual cache invalidation.
func TestStaleMetaRetryAfterRegionMove(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	if err := client.Put("t", []Cell{cell("a", "cf", "q", 1, "x")}); err != nil {
		t.Fatal(err)
	}
	// Warm the cache, then move every region to the other server.
	if _, err := client.Regions("t"); err != nil {
		t.Fatal(err)
	}
	for _, rs := range c.Servers {
		for _, info := range rs.RegionInfos() {
			region := rs.RemoveRegion(info.ID)
			for _, other := range c.Servers {
				if other.Host() != rs.Host() {
					other.AddRegion(region)
					break
				}
			}
		}
	}
	// The stale cache points at the old hosts; operations must recover.
	if err := client.Put("t", []Cell{cell("b", "cf", "q", 1, "y")}); err != nil {
		t.Fatalf("Put after move: %v", err)
	}
	results, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatalf("Scan after move: %v", err)
	}
	if len(results) != 2 {
		t.Errorf("rows = %d", len(results))
	}
	if _, err := client.BulkGet("t", [][]byte{[]byte("a")}, nil, 1, TimeRange{}); err != nil {
		t.Fatalf("BulkGet after move: %v", err)
	}
}

// TestStaleMetaRetryAfterSplit covers the split path: the cached single
// region is gone, replaced by two daughters.
func TestStaleMetaRetryAfterSplit(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 40; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "x"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	regions, _ := client.Regions("t") // warm cache
	if err := c.Master.SplitRegion("t", regions[0].ID); err != nil {
		t.Fatal(err)
	}
	// No InvalidateRegions call: the retry discovers the daughters.
	results, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatalf("scan after split: %v", err)
	}
	if len(results) != 40 {
		t.Errorf("rows = %d", len(results))
	}
	if err := client.Put("t", []Cell{cell("row-99", "cf", "q", 1, "y")}); err != nil {
		t.Fatalf("put after split: %v", err)
	}
}
