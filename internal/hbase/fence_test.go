package hbase

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// loadRows writes n deterministic rows spread across the table's key space
// and returns a baseline full-table scan.
func loadFenceRows(t *testing.T, client *Client, n int) []Result {
	t.Helper()
	var cells []Cell
	for i := 0; i < n; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%03d", i), "cf", "q", 1, fmt.Sprintf("v%03d", i)))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	baseline, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline) != n {
		t.Fatalf("baseline rows = %d, want %d", len(baseline), n)
	}
	return baseline
}

// TestStaleEpochRoutingFenced: a request routed with the epoch of a
// superseded assignment is rejected with ErrFenced, while an epoch-0 request
// (legacy caller without routing info) is still served.
func TestStaleEpochRoutingFenced(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	loadFenceRows(t, client, 10)
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	ri := regions[0]
	if ri.Epoch == 0 {
		t.Fatal("assigned region must carry a nonzero epoch")
	}
	// The master moves the region to a new epoch (as a balance or drain
	// would) while it stays on the same host.
	c.Server(ri.Host).Region(ri.ID).AdoptEpoch(ri.Epoch + 1)

	if _, err := client.ScanRegion(ri, &Scan{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch scan = %v, want ErrFenced", err)
	}
	if got := c.Meter.Get(metrics.FencedRejects); got == 0 {
		t.Error("fenced reject not metered")
	}
	// Epoch 0 opts out of the check.
	legacy := ri
	legacy.Epoch = 0
	if _, err := client.ScanRegion(legacy, &Scan{}); err != nil {
		t.Errorf("epoch-0 scan = %v, want served", err)
	}
	// A refreshed cache carries the new epoch and is served again.
	client.InvalidateRegions("t")
	fresh, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	if fresh[0].Epoch != ri.Epoch+1 {
		t.Fatalf("refreshed epoch = %d, want %d", fresh[0].Epoch, ri.Epoch+1)
	}
	if _, err := client.ScanRegion(fresh[0], &Scan{}); err != nil {
		t.Errorf("fresh-epoch scan = %v", err)
	}
}

// TestZombieDropsRegionOnHigherEpoch: a request carrying a NEWER epoch than
// the serving side proves the server is the stale party — it must drop the
// region immediately instead of double-serving it.
func TestZombieDropsRegionOnHigherEpoch(t *testing.T) {
	c := bootCluster(t, 1)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	loadFenceRows(t, client, 5)
	regions, _ := client.Regions("t")
	ri := regions[0]
	srv := c.Server(ri.Host)
	ahead := ri
	ahead.Epoch = ri.Epoch + 3
	if _, err := client.ScanRegion(ahead, &Scan{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("newer-epoch scan = %v, want ErrFenced", err)
	}
	if srv.Region(ri.ID) != nil {
		t.Error("zombie must drop the superseded region")
	}
	if got := c.Meter.Get(metrics.RegionsFenced); got != 1 {
		t.Errorf("regions fenced = %d, want 1", got)
	}
}

// TestDrainServerMovesRegionsWithoutReplay: a graceful drain flushes and
// moves live region objects — zero WAL entries replayed, zero rows lost, and
// clients with stale caches recover through the ordinary retry path.
func TestDrainServerMovesRegionsWithoutReplay(t *testing.T) {
	c := bootCluster(t, 3)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("row-010"), []byte("row-020")}); err != nil {
		t.Fatal(err)
	}
	baseline := loadFenceRows(t, client, 30)
	regions, _ := client.Regions("t")
	victim := regions[0].Host
	epochsBefore := map[string]uint64{}
	for _, ri := range regions {
		epochsBefore[ri.ID] = ri.Epoch
	}

	replayedBefore := c.Meter.Get(metrics.WALEntriesReplayed)
	if err := c.Master.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
	if got := c.Meter.Get(metrics.WALEntriesReplayed) - replayedBefore; got != 0 {
		t.Errorf("drain replayed %d WAL entries, want 0", got)
	}
	if got := c.Meter.Get(metrics.RegionsDrained); got == 0 {
		t.Error("drained regions not metered")
	}
	if n := c.Server(victim).RegionCount(); n != 0 {
		t.Errorf("drained server still hosts %d regions", n)
	}
	// Every moved region bumped its epoch.
	client.InvalidateRegions("t")
	fresh, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range fresh {
		if ri.Host == victim {
			t.Errorf("region %s still routed to drained host", ri.ID)
		}
		wasOnVictim := false
		for _, old := range regions {
			if old.ID == ri.ID && old.Host == victim {
				wasOnVictim = true
			}
		}
		if wasOnVictim && ri.Epoch <= epochsBefore[ri.ID] {
			t.Errorf("moved region %s epoch %d did not advance past %d", ri.ID, ri.Epoch, epochsBefore[ri.ID])
		}
	}
	after, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, after) {
		t.Fatal("scan after drain differs from baseline")
	}
	// Rejoin for a rolling restart: AddServer is idempotent and re-admits.
	if err := c.Master.AddServer(c.Server(victim)); err != nil {
		t.Fatal(err)
	}
	if err := c.Master.AddServer(c.Server(victim)); err != nil {
		t.Fatal(err)
	}
}

// TestDrainServerErrors: draining an unknown host or the last server fails.
func TestDrainServerErrors(t *testing.T) {
	c := bootCluster(t, 1)
	if err := c.Master.DrainServer("nope"); err == nil {
		t.Error("draining an unregistered host must fail")
	}
	if err := c.Master.DrainServer(c.Servers[0].Host()); err == nil {
		t.Error("draining the only server must fail")
	}
}

// TestScannerResumesAcrossDrain starts a paged scan, drains the host serving
// the scanner's current region between pages, and requires the resumed scan
// to be byte-identical to an undisturbed one.
func TestScannerResumesAcrossDrain(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("row-020")}); err != nil {
		t.Fatal(err)
	}
	baseline := loadFenceRows(t, client, 40)

	sc, err := client.OpenScanner("t", &Scan{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	page1, err := sc.Next()
	if err != nil || len(page1) != 7 {
		t.Fatalf("page 1 = %d rows, %v", len(page1), err)
	}
	regions, _ := client.Regions("t")
	if err := c.Master.DrainServer(regions[0].Host); err != nil {
		t.Fatal(err)
	}
	got := append([]Result(nil), page1...)
	for {
		page, err := sc.Next()
		if err != nil {
			t.Fatalf("scan resumed across drain: %v", err)
		}
		if page == nil {
			break
		}
		got = append(got, page...)
	}
	if !reflect.DeepEqual(baseline, got) {
		t.Fatalf("scan across drain differs: %d rows, want %d", len(got), len(baseline))
	}
}

// TestZombiePartitionNoLostAckedWrites is the split-brain scenario epoch
// fencing exists for. A region server is partitioned from the master only:
// heartbeats die, the master declares it dead and reassigns its regions by
// WAL replay — but clients can still reach the old server, which does not
// know it has been superseded. Every write a client manages to get
// acknowledged must survive; the zombie must not acknowledge anything after
// the fence; and once its self-fencing lease lapses it rejects reads too.
func TestZombiePartitionNoLostAckedWrites(t *testing.T) {
	const lease = 40 * time.Millisecond
	c, err := NewCluster(ClusterConfig{
		Name: "test", NumServers: 3,
		Store: StoreConfig{ServerLease: lease, FenceReads: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("row-010"), []byte("row-020")}); err != nil {
		t.Fatal(err)
	}
	baseline := loadFenceRows(t, client, 30)
	regions, _ := client.Regions("t")
	staleRI := regions[0]
	victim := staleRI.Host

	if err := c.PartitionServer(victim, PartitionFromMaster); err != nil {
		t.Fatal(err)
	}
	dead, err := c.Master.CheckServers()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 1 || dead[0] != victim {
		t.Fatalf("dead = %v, want [%s]", dead, victim)
	}
	// The zombie is live and still holds its regions — the master never
	// reached across the partition to take them away.
	if c.Server(victim).RegionCount() == 0 {
		t.Fatal("partitioned server must keep its region map (it is a zombie, not a corpse)")
	}

	// A write through the stale cache first lands on the zombie. Epochs
	// match (cache and zombie are equally stale), but the shared WAL was
	// fenced when the successor opened: the append is rejected un-acked and
	// the client retries onto the new owner. The ack it finally gets is real.
	if err := client.Put("t", []Cell{cell("row-005x", "cf", "q", 2, "acked")}); err != nil {
		t.Fatalf("write during partition = %v, want acked after failover", err)
	}
	if got := c.Meter.Get(metrics.WALFencedAppends); got == 0 {
		t.Error("zombie append should have been rejected by the fenced WAL")
	}

	// Once the lease lapses without master contact, the zombie self-fences:
	// reads through the stale route fail with ErrFenced instead of serving
	// phantom (pre-partition) data.
	deadline := time.Now().Add(20 * lease)
	for !c.Server(victim).SelfFenced() {
		if time.Now().After(deadline) {
			t.Fatal("zombie never self-fenced after its lease lapsed")
		}
		time.Sleep(lease / 4)
	}
	zombieClient := c.NewClient()
	defer zombieClient.Close()
	if _, err := zombieClient.ScanRegion(staleRI, &Scan{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("read from self-fenced zombie = %v, want ErrFenced", err)
	}
	if got := c.Meter.Get(metrics.ServerSelfFenced); got != 1 {
		t.Errorf("self-fence transitions metered = %d, want 1", got)
	}

	// Audit: the acked write is present exactly once, nothing lost, nothing
	// phantom. The reader uses fresh meta. A heartbeat round first — the
	// survivors' leases also need master contact to stay fresh, which a live
	// cluster's heartbeat loop provides continuously.
	if _, err := c.Master.CheckServers(); err != nil {
		t.Fatal(err)
	}
	auditor := c.NewClient()
	defer auditor.Close()
	after, err := auditor.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(baseline)+1 {
		t.Fatalf("rows after partitioned write = %d, want %d", len(after), len(baseline)+1)
	}
	seen := 0
	for _, r := range after {
		if string(r.Row) == "row-005x" {
			seen++
		}
	}
	if seen != 1 {
		t.Fatalf("acked row appears %d times, want exactly 1", seen)
	}

	// Heal: the partition lifts, the server rejoins, its lease refreshes.
	c.HealPartition(victim)
	if err := c.Master.AddServer(c.Server(victim)); err != nil {
		t.Fatal(err)
	}
	if c.Server(victim).SelfFenced() {
		t.Error("rejoined server must be unfenced")
	}
	if got := c.Meter.Get(metrics.PartitionsHealed); got != 1 {
		t.Errorf("partitions healed = %d, want 1", got)
	}
	if _, err := c.Master.CheckServers(); err != nil {
		t.Fatal(err)
	}
	final, err := auditor.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after, final) {
		t.Fatal("results changed after healing the partition")
	}
}

// TestPartitionFromClientsRidesOutOnRetries: the opposite asymmetry — the
// master still sees a healthy server, clients cannot reach it. Requests fail
// while the partition holds and succeed verbatim after it heals.
func TestPartitionFromClientsRidesOutOnRetries(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	baseline := loadFenceRows(t, client, 10)
	regions, _ := client.Regions("t")
	host := regions[0].Host

	if err := c.PartitionServer(host, PartitionFromClients); err != nil {
		t.Fatal(err)
	}
	// The master's view is unaffected: a heartbeat round declares nobody
	// dead, so the regions stay put.
	if dead, err := c.Master.CheckServers(); err != nil || len(dead) != 0 {
		t.Fatalf("heartbeats through partition = dead %v, err %v", dead, err)
	}
	if _, err := client.ScanTable("t", &Scan{}); err == nil {
		t.Fatal("client scan through partition must fail")
	}
	c.HealPartition(host)
	after, err := client.ScanTable("t", &Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(baseline, after) {
		t.Fatal("scan after heal differs from baseline")
	}
}

// trackingPool wraps the dial pool and records Invalidate calls, standing in
// for the connection cache in the meta-staleness regression test.
type trackingPool struct {
	ConnPool
	invalidated []string
}

func (p *trackingPool) Invalidate(host string) { p.invalidated = append(p.invalidated, host) }

// TestRefreshEvictsConnsToHostsServingNothing is the regression test for the
// InvalidateRegions staleness hazard: after regions move off a host, the next
// meta refresh must also evict pooled connections to hosts that no cached
// table routes to any more — otherwise a pooled connection outlives the
// routing information that justified it.
func TestRefreshEvictsConnsToHostsServingNothing(t *testing.T) {
	c := bootCluster(t, 2)
	pool := &trackingPool{ConnPool: NewDialPool(c.Net)}
	client := c.NewClient(WithConnPool(pool))
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	regions, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	if err := c.Master.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
	client.InvalidateRegions("t")
	fresh, err := client.Regions("t")
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range fresh {
		if ri.Host == victim {
			t.Fatalf("region %s still on drained host", ri.ID)
		}
	}
	found := false
	for _, h := range pool.invalidated {
		if h == victim {
			found = true
		}
	}
	if !found {
		t.Errorf("refresh did not evict pooled connections to %s (invalidated: %v)", victim, pool.invalidated)
	}
	// A host that still serves another cached table's regions must NOT be
	// evicted: warm a second table's cache pointing at the survivor, drop the
	// first table's map, and refresh.
	if err := client.CreateTable(TableDescriptor{Name: "u", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Regions("u"); err != nil {
		t.Fatal(err)
	}
	pool.invalidated = nil
	client.InvalidateRegions("t")
	if _, err := client.Regions("t"); err != nil {
		t.Fatal(err)
	}
	if len(pool.invalidated) != 0 {
		t.Errorf("refresh evicted hosts still serving cached tables: %v", pool.invalidated)
	}
}

// TestPartitionComposesWithChaosInjector: installing a partition on a network
// that already carries a seeded chaos injector adds rules to it (preserving
// the schedule) instead of replacing it.
func TestPartitionComposesWithChaosInjector(t *testing.T) {
	c := bootCluster(t, 2)
	inj := rpc.NewFaultInjector(7)
	c.Net.SetFaultInjector(inj)
	host := c.Servers[0].Host()
	if err := c.PartitionServer(host, PartitionTotal); err != nil {
		t.Fatal(err)
	}
	if c.Net.Injector() != inj {
		t.Fatal("partition replaced the existing injector")
	}
	ctx := context.Background()
	if _, err := c.Net.DialContext(ctx, host); !errors.Is(err, rpc.ErrHostDown) {
		t.Fatalf("dial through total partition = %v, want ErrHostDown", err)
	}
	c.HealPartition(host)
	conn, err := c.Net.DialContext(ctx, host)
	if err != nil {
		t.Fatalf("dial after heal = %v", err)
	}
	conn.Close()
	c.HealPartition(host) // healing twice is a no-op
	if got := c.Meter.Get(metrics.PartitionsInjected); got != 1 {
		t.Errorf("partitions injected = %d, want 1", got)
	}
}
