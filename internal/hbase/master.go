package hbase

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/zk"
)

// ZK paths the cluster publishes.
const (
	zkRoot       = "/hbase"
	zkMasterPath = "/hbase/master"
	zkServers    = "/hbase/rs"
	// The master epoch is the control plane's fencing token: a persistent
	// counter every elected master CAS-bumps before doing anything else. A
	// deposed master still holds its old epoch, so every coordination write
	// it attempts fails the fenceCheck — the master-level twin of the
	// per-region ownership epochs below.
	zkMasterEpoch = "/hbase/master-epoch"
	// Hot standbys advertise themselves ephemerally under /hbase/standbys;
	// the roster is what /statusz shows and what an operator checks before
	// trusting the cluster to survive a master loss.
	zkStandbys = "/hbase/standbys"
	// The last master to win an election records itself persistently here,
	// so its successor can name who it deposed even though the ephemeral
	// leader node died with the predecessor.
	zkMasterLast = "/hbase/master-last"
	// Region-ownership epochs live under their own subtree; each region's
	// current epoch is the decimal string at /shc/regions/<id>/epoch. The
	// coordination service, not the master process, is the source of truth:
	// a recovering or standby master reads epochs back from here, so a
	// zombie can never be un-fenced by master amnesia.
	zkEpochRoot    = "/shc"
	zkEpochRegions = "/shc/regions"
	// Split transactions journal themselves at /shc/splits/<parent-id>
	// before any state changes: a master or hosting server dying mid-split
	// leaves the journal behind, and recovery rolls the split forward (both
	// daughters made it) or back (they did not) instead of leaving the
	// keyspace torn.
	zkSplits = "/shc/splits"
)

// Master performs the administrative duties of HMaster (paper §III-B):
// creating and dropping tables, assigning regions to servers, splitting
// regions, and balancing load. It never touches the data path.
type Master struct {
	host     string
	net      *rpc.Network
	meter    *metrics.Registry
	cfg      StoreConfig
	zkSrv    *zk.Server
	validate TokenValidator
	// sess is the master's coordination session. Atomic because fenceCheck
	// replaces an expired session in place (the zombie re-dialing ZooKeeper)
	// while heartbeat and janitor goroutines read it concurrently.
	sess atomic.Pointer[zk.Session]
	// epoch is the master fencing epoch this process adopted when it won its
	// election; fenceCheck compares it against the coordination service's
	// current value before every coordination write.
	epoch atomic.Uint64
	// journal receives structured lifecycle events (fencing, reassignment,
	// promotion, splits, janitor passes). Atomic so emission sites never
	// contend on m.mu ordering; a nil journal swallows events.
	journal atomic.Pointer[ops.Journal]

	mu      sync.Mutex
	servers []*RegionServer
	tables  map[string]*tableState
	nextID  int
	// missed counts consecutive failed heartbeats per server host; a server
	// whose count reaches deathThreshold is declared dead and its regions
	// are reassigned.
	missed         map[string]int
	deathThreshold int
	// hotWriteThreshold is the per-janitor-interval cell-write count above
	// which a region is considered hot and split by load; 0 disables the
	// defense.
	hotWriteThreshold int64
	// splitHook, when set (tests only), runs after each named stage of a
	// split transaction; returning an error aborts the split mid-flight,
	// simulating a master crash at that exact point.
	splitHook func(stage string) error
	// drainHook, when set (tests only), runs at each named stage of a drain
	// ("deregistered" after the server leaves the roster, then "move" before
	// each region relocation); returning an error aborts the drain there,
	// simulating the master dying mid-drain.
	drainHook func(stage string) error
}

type tableState struct {
	desc    TableDescriptor
	regions map[string]*Region // primaries, by region id
	// replicas holds each region's secondary copies (by primary region id).
	// Slots keep their replica numbers across failures: a promoted or lost
	// copy's number is reused by its replacement, so server region-map keys
	// stay stable.
	replicas map[string][]*Region
}

// newMaster builds a master process on host — RPC handlers registered,
// coordination session open, shared znode trees ensured — without deciding
// whether it leads. NewMaster and NewStandbyMaster layer the election on top.
func newMaster(host string, net *rpc.Network, zkSrv *zk.Server, cfg StoreConfig, meter *metrics.Registry, validate TokenValidator) (*Master, error) {
	m := &Master{
		host: host, net: net, meter: meter, cfg: cfg, zkSrv: zkSrv, validate: validate,
		tables: make(map[string]*tableState), missed: make(map[string]int),
		deathThreshold: 1,
	}
	if err := net.AddHost(host); err != nil {
		return nil, err
	}
	for method, h := range map[string]rpc.Handler{
		MethodCreateTable:  m.handleCreateTable,
		MethodDeleteTable:  m.handleDeleteTable,
		MethodTableRegions: m.handleTableRegions,
		MethodListTables:   m.handleListTables,
		MethodTableStats:   m.handleTableStats,
	} {
		if err := net.Handle(host, method, h); err != nil {
			return nil, err
		}
	}
	m.sess.Store(zkSrv.NewSession())
	for _, path := range []string{zkRoot, zkServers, zkStandbys, zkEpochRoot, zkEpochRegions, zkSplits} {
		if ok, _ := m.zsess().Exists(path); !ok {
			if err := m.zsess().Create(path, nil, false); err != nil {
				return nil, err
			}
		}
	}
	if ok, _ := m.zsess().Exists(zkMasterEpoch); !ok {
		if err := m.zsess().Create(zkMasterEpoch, []byte("0"), false); err != nil && !errors.Is(err, zk.ErrNodeExists) {
			return nil, err
		}
	}
	return m, nil
}

// NewMaster creates the master on host, registers its RPC handlers, elects
// itself leader in ZooKeeper, and publishes its address for clients.
func NewMaster(host string, net *rpc.Network, zkSrv *zk.Server, cfg StoreConfig, meter *metrics.Registry, validate TokenValidator) (*Master, error) {
	m, err := newMaster(host, net, zkSrv, cfg, meter, validate)
	if err != nil {
		return nil, err
	}
	won, err := m.zsess().ElectLeader(zkMasterPath, host)
	if err != nil {
		return nil, err
	}
	if !won {
		return nil, fmt.Errorf("hbase: another master already leads")
	}
	if _, err := m.becomeActive(); err != nil {
		return nil, err
	}
	return m, nil
}

// NewStandbyMaster creates a hot standby master: fully constructed — RPC
// handlers live, coordination session open — but not leading. It advertises
// itself ephemerally under /hbase/standbys and does nothing until
// StartStandby's watch loop promotes it.
func NewStandbyMaster(host string, net *rpc.Network, zkSrv *zk.Server, cfg StoreConfig, meter *metrics.Registry, validate TokenValidator) (*Master, error) {
	m, err := newMaster(host, net, zkSrv, cfg, meter, validate)
	if err != nil {
		return nil, err
	}
	if err := m.zsess().Create(zkStandbys+"/"+host, []byte(host), true); err != nil && !errors.Is(err, zk.ErrNodeExists) {
		return nil, err
	}
	return m, nil
}

// zsess returns the master's current coordination session.
func (m *Master) zsess() *zk.Session { return m.sess.Load() }

// MasterEpoch returns the master fencing epoch this process adopted when it
// last won an election (0 for a standby that never led).
func (m *Master) MasterEpoch() uint64 { return m.epoch.Load() }

// Standbys lists the hosts currently advertising as hot standbys.
func (m *Master) Standbys() []string {
	names, err := m.zsess().Children(zkStandbys)
	if err != nil {
		return nil
	}
	return names
}

// becomeActive adopts leadership this master just won: it CAS-bumps the
// persistent master epoch (the fencing token every coordination write is
// checked against), records itself as the last-known leader, and meters the
// election. It returns the host of the predecessor it replaced ("" when this
// is the cluster's first master).
func (m *Master) becomeActive() (string, error) {
	next, err := m.bumpMasterEpoch()
	if err != nil {
		return "", err
	}
	m.epoch.Store(next)
	sess := m.zsess()
	var prev string
	if data, err := sess.Get(zkMasterLast); err == nil {
		prev = string(data)
	}
	if ok, _ := sess.Exists(zkMasterLast); ok {
		_ = sess.Set(zkMasterLast, []byte(m.host))
	} else {
		_ = sess.Create(zkMasterLast, []byte(m.host), false)
	}
	m.meter.Inc(metrics.MasterElections)
	return prev, nil
}

// bumpMasterEpoch advances the persistent master epoch by one with a
// compare-and-swap loop: concurrent winners (an election race that ZooKeeper
// itself already serializes, but belt-and-braces) each get a distinct epoch.
func (m *Master) bumpMasterEpoch() (uint64, error) {
	sess := m.zsess()
	for {
		data, ver, err := sess.GetVersion(zkMasterEpoch)
		if errors.Is(err, zk.ErrNoNode) {
			if cerr := sess.Create(zkMasterEpoch, []byte("1"), false); cerr == nil {
				return 1, nil
			} else if !errors.Is(cerr, zk.ErrNodeExists) {
				return 0, cerr
			}
			continue
		}
		if err != nil {
			return 0, err
		}
		cur, _ := strconv.ParseUint(string(data), 10, 64)
		next := cur + 1
		if err := sess.SetIf(zkMasterEpoch, []byte(strconv.FormatUint(next, 10)), ver); err != nil {
			if errors.Is(err, zk.ErrBadVersion) {
				continue
			}
			return 0, err
		}
		return next, nil
	}
}

// ErrMasterFenced reports a coordination write rejected because the issuing
// master is no longer the leader, or leads at a stale master epoch — a
// deposed zombie whose actions must die un-acknowledged.
var ErrMasterFenced = errors.New("hbase: master fenced by master epoch")

// fenceCheck gates every coordination write: this master must still be the
// leader ZooKeeper knows AND hold the current master epoch. A deposed master
// — even one that never noticed its session expire during a long pause —
// fails here before it can touch meta, bump region epochs, journal splits,
// or command servers. An expired session is re-dialed first, so the verdict
// comes from the coordination service's current truth, not a dead socket.
func (m *Master) fenceCheck() error {
	err := m.fenceVerdict()
	if errors.Is(err, zk.ErrExpired) || errors.Is(err, zk.ErrClosed) {
		m.sess.Store(m.zkSrv.NewSession())
		err = m.fenceVerdict()
	}
	if err == nil {
		return nil
	}
	m.meter.Inc(metrics.MasterFencedWrites)
	return err
}

// fenceVerdict performs one leadership + master-epoch comparison against the
// coordination service.
func (m *Master) fenceVerdict() error {
	sess := m.zsess()
	leader, err := sess.Leader(zkMasterPath)
	if err != nil {
		return err
	}
	if leader != m.host {
		return fmt.Errorf("%w: %s is not the leader (%q is)", ErrMasterFenced, m.host, leader)
	}
	data, err := sess.Get(zkMasterEpoch)
	if err != nil {
		return err
	}
	if cur, _ := strconv.ParseUint(string(data), 10, 64); cur != m.epoch.Load() {
		return fmt.Errorf("%w: %s holds master epoch %d, cluster is at %d", ErrMasterFenced, m.host, m.epoch.Load(), cur)
	}
	return nil
}

// StartStandby begins the standby's watch-driven takeover loop: it watches
// the ephemeral leader znode, and when the leader vanishes — session death,
// expiry, crash — it runs the election. On a win it bumps the master epoch,
// journals MasterElected, rebuilds meta from the live region servers
// (resolve), settles orphaned split journals with the election as their
// causal root, journals MasterFailover, and finally calls onActive so the
// cluster can re-arm heartbeat/janitor duty loops on the new leader. On a
// loss it goes back to watching. The returned stop function ends the loop.
func (m *Master) StartStandby(resolve func() []*RegionServer, onActive func(*Master)) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		for {
			sess := m.zsess()
			// Watch before reading: a delete that lands between the read and
			// the watch registration would otherwise never wake us.
			watch, err := sess.Watch(zkMasterPath)
			if err != nil {
				if !m.standbyReconnect(done) {
					return
				}
				continue
			}
			leader, err := sess.Leader(zkMasterPath)
			if err != nil {
				if !m.standbyReconnect(done) {
					return
				}
				continue
			}
			if leader == m.host {
				return // promoted; the watch loop's job is done
			}
			if leader == "" {
				won, err := m.takeOver(resolve)
				if won && err == nil {
					if onActive != nil {
						onActive(m)
					}
					return
				}
				if err != nil && (errors.Is(err, zk.ErrExpired) || errors.Is(err, zk.ErrClosed)) {
					if !m.standbyReconnect(done) {
						return
					}
				}
				// Lost the election (or a transient error): fall through and
				// wait for the next leadership change.
			}
			select {
			case <-watch:
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// standbyReconnect replaces an expired standby session, unless the loop is
// stopping. It reports whether the loop should continue.
func (m *Master) standbyReconnect(done chan struct{}) bool {
	select {
	case <-done:
		return false
	default:
	}
	m.sess.Store(m.zkSrv.NewSession())
	return true
}

// takeOver runs one election attempt and, on a win, the full takeover
// sequence. It reports whether this master now leads.
func (m *Master) takeOver(resolve func() []*RegionServer) (bool, error) {
	won, err := m.zsess().ElectLeader(zkMasterPath, m.host)
	if err != nil || !won {
		return false, err
	}
	prev, err := m.becomeActive()
	if err != nil {
		return true, err
	}
	m.meter.Inc(metrics.MasterTakeovers)
	// MasterElected is journaled before any recovery action so rolled
	// forward/back splits and re-fenced servers can carry its seq as Cause.
	elected := m.jrn().Append(ops.Event{
		Type: ops.EventMasterElected, Server: m.host, Epoch: m.epoch.Load(),
		Detail: "standby won election, deposed " + prev,
	})
	if resolve != nil {
		if err := m.recoverFromCaused(resolve(), elected); err != nil {
			return true, err
		}
	}
	m.jrn().Append(ops.Event{
		Type: ops.EventMasterFailover, Server: m.host, Epoch: m.epoch.Load(), Cause: elected,
		Detail: "takeover complete: meta rebuilt, split journals settled",
	})
	_ = m.zsess().Delete(zkStandbys + "/" + m.host)
	return true, nil
}

// Host returns the master's host name.
func (m *Master) Host() string { return m.host }

// SetJournal installs the cluster event journal on the master and every
// registered region server. Servers registered later inherit it through
// AddServer. nil disables emission everywhere.
func (m *Master) SetJournal(j *ops.Journal) {
	m.journal.Store(j)
	m.mu.Lock()
	servers := append([]*RegionServer(nil), m.servers...)
	m.mu.Unlock()
	for _, rs := range servers {
		rs.SetJournal(j)
	}
}

// jrn returns the installed journal (nil appends are no-ops).
func (m *Master) jrn() *ops.Journal { return m.journal.Load() }

// Resign simulates a master crash: its coordination session closes (so the
// ephemeral leader node vanishes and a standby can win the next election).
// The caller should also mark the host down on the network.
func (m *Master) Resign() {
	m.zsess().Close()
}

// RecoverFrom rebuilds the master's meta state after a failover by asking
// each region server what it hosts — the simulator's stand-in for reading
// hbase:meta. It also registers the servers with this master.
func (m *Master) RecoverFrom(servers []*RegionServer) error {
	return m.recoverFromCaused(servers, 0)
}

// recoverFromCaused is RecoverFrom with journal provenance: cause (a
// MasterElected seq during automatic takeover) links every split the
// recovery settles back to the election that triggered it.
func (m *Master) recoverFromCaused(servers []*RegionServer, cause uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.servers = nil
	m.tables = make(map[string]*tableState)
	m.missed = make(map[string]int)
	maxID := 0
	for _, rs := range servers {
		m.servers = append(m.servers, rs)
		if ok, _ := m.zsess().Exists(zkServers + "/" + rs.Host()); !ok {
			if err := m.zsess().Create(zkServers+"/"+rs.Host(), nil, false); err != nil {
				return err
			}
		}
		for _, region := range rs.Regions() {
			info := region.Info()
			ts, ok := m.tables[info.Table]
			if !ok {
				ts = &tableState{desc: region.Descriptor(), regions: make(map[string]*Region), replicas: make(map[string][]*Region)}
				m.tables[info.Table] = ts
			}
			if info.Replica > 0 {
				// Secondary copies carry no ownership of their own: they are
				// re-learned as-is, epochs stay the primary's business.
				ts.replicas[info.ID] = append(ts.replicas[info.ID], region)
				continue
			}
			ts.regions[info.ID] = region
			// Epoch truth lives in the coordination service, not in this
			// master's memory: adopt anything newer that a predecessor
			// persisted before dying.
			if zkE := m.loadEpoch(info.ID); zkE > info.Epoch {
				region.setEpoch(zkE)
			}
			if n := regionSeq(info.ID); n > maxID {
				maxID = n
			}
		}
	}
	if maxID > m.nextID {
		m.nextID = maxID
	}
	// A region whose primary died with its server — the master crashed
	// before (or during) the promotion round — is re-learned as secondaries
	// only. Settle the orphaned promotion now: the freshest surviving copy
	// takes over under a bumped epoch, exactly as the heartbeat death path
	// would have done.
	for name, ts := range m.tables {
		for id, reps := range ts.replicas {
			if _, ok := ts.regions[id]; ok || len(reps) == 0 {
				continue
			}
			info := reps[0].Info()
			info.ID, info.Table = id, name
			promoted := m.promoteLocked(ts, info)
			if promoted == nil {
				continue // every copy's host is gone; nothing to serve from
			}
			ts.regions[id] = promoted
			m.meter.Inc(metrics.RegionsReassigned)
			m.meter.Inc(metrics.RegionsFenced)
			pi := promoted.Info()
			m.jrn().Append(ops.Event{
				Type: ops.EventReplicaPromoted, Region: id, Table: name,
				Server: pi.Host, Epoch: pi.Epoch, Cause: cause,
				Detail: "orphaned promotion settled during master recovery",
			})
		}
	}
	// A predecessor may have died mid-split: settle any journaled split
	// transactions against the hosted state just re-learned.
	m.recoverSplitsLocked(cause)
	return nil
}

// regionSeq parses the numeric suffix of a region id ("table-0042" -> 42).
func regionSeq(id string) int {
	i := len(id) - 1
	for i >= 0 && id[i] >= '0' && id[i] <= '9' {
		i--
	}
	n := 0
	for _, c := range id[i+1:] {
		n = n*10 + int(c-'0')
	}
	return n
}

// persistEpoch records a region's ownership epoch at
// /shc/regions/<id>/epoch (creating the region node on first use).
func (m *Master) persistEpoch(id string, epoch uint64) error {
	node := zkEpochRegions + "/" + id
	if ok, _ := m.zsess().Exists(node); !ok {
		if err := m.zsess().Create(node, nil, false); err != nil {
			return err
		}
	}
	path := node + "/epoch"
	data := []byte(strconv.FormatUint(epoch, 10))
	if ok, _ := m.zsess().Exists(path); !ok {
		return m.zsess().Create(path, data, false)
	}
	return m.zsess().Set(path, data)
}

// loadEpoch reads a region's persisted epoch (0 when never assigned).
func (m *Master) loadEpoch(id string) uint64 {
	data, err := m.zsess().Get(zkEpochRegions + "/" + id + "/epoch")
	if err != nil {
		return 0
	}
	n, err := strconv.ParseUint(string(data), 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// nextEpochLocked computes, persists, and meters the next ownership epoch
// for a region being moved: one past the maximum of what the region holds
// and what the coordination service has recorded, so the sequence stays
// monotonic even across master failovers.
func (m *Master) nextEpochLocked(info RegionInfo) uint64 {
	cur := info.Epoch
	if zkE := m.loadEpoch(info.ID); zkE > cur {
		cur = zkE
	}
	next := cur + 1
	_ = m.persistEpoch(info.ID, next)
	m.meter.Inc(metrics.EpochBumps)
	return next
}

// AddServer registers a region server with the master and advertises it in
// ZooKeeper. Re-adding a host that is already registered is a no-op, so a
// drained server can rejoin after its rolling restart. Registration also
// restarts the server's self-fencing lease clock: being re-admitted by the
// master is as good as a heartbeat.
func (m *Master) AddServer(rs *RegionServer) error {
	m.mu.Lock()
	for _, have := range m.servers {
		if have.Host() == rs.Host() {
			m.mu.Unlock()
			return nil
		}
	}
	m.servers = append(m.servers, rs)
	delete(m.missed, rs.Host())
	m.mu.Unlock()
	if j := m.jrn(); j != nil {
		rs.SetJournal(j)
	}
	rs.heartbeat()
	if ok, _ := m.zsess().Exists(zkServers + "/" + rs.Host()); ok {
		return nil
	}
	return m.zsess().Create(zkServers+"/"+rs.Host(), nil, false)
}

// SetDeathThreshold sets how many consecutive missed heartbeats declare a
// region server dead (default 1 — the lease expires on the first missed
// round, as with a short ZooKeeper session timeout).
func (m *Master) SetDeathThreshold(n int) {
	if n < 1 {
		n = 1
	}
	m.mu.Lock()
	m.deathThreshold = n
	m.mu.Unlock()
}

// pingServer probes one region server over the network, so SetDown hosts
// and injected faults are observed exactly as a real heartbeat would. The
// call is tagged with the master's identity, which lets fault rules sever
// master↔server traffic while client↔server traffic still flows (the
// asymmetric partition behind the zombie scenarios).
func (m *Master) pingServer(host string) error {
	ctx := rpc.WithCaller(context.Background(), m.host)
	conn, err := m.net.DialContext(ctx, host)
	if err != nil {
		return err
	}
	defer conn.Close()
	// The probe is stamped with the master's fencing epoch: a server that
	// has heard from a newer master rejects it, so a deposed master cannot
	// keep leases alive even if it somehow slips past its own fenceCheck.
	_, err = conn.CallContext(ctx, MethodPing, Ping{Master: m.host, MasterEpoch: m.epoch.Load()})
	return err
}

// CheckServers runs one heartbeat round: every registered region server is
// pinged; a server that has missed deathThreshold consecutive rounds is
// declared dead, removed from the cluster (and from ZooKeeper), and its
// regions are recovered from their WALs and reassigned to the surviving
// servers. It returns the hosts declared dead this round.
//
// Tests call this directly after scripting a failure, which keeps recovery
// deterministic; long-running deployments drive it from StartHeartbeats.
func (m *Master) CheckServers() ([]string, error) {
	if err := m.fenceCheck(); err != nil {
		return nil, err
	}
	m.mu.Lock()
	hosts := make([]string, len(m.servers))
	for i, rs := range m.servers {
		hosts[i] = rs.Host()
	}
	m.mu.Unlock()

	alive := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		alive[h] = m.pingServer(h) == nil
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	var dead []string
	survivors := m.servers[:0:0]
	var victims []*RegionServer
	for _, rs := range m.servers {
		h := rs.Host()
		if alive[h] {
			delete(m.missed, h)
			survivors = append(survivors, rs)
			continue
		}
		m.missed[h]++
		if m.missed[h] < m.deathThreshold {
			survivors = append(survivors, rs)
			continue
		}
		delete(m.missed, h)
		dead = append(dead, h)
		victims = append(victims, rs)
	}
	if len(victims) == 0 {
		return nil, nil
	}
	m.servers = survivors
	for _, rs := range victims {
		m.meter.Inc(metrics.ServersDeclaredDead)
		_ = m.zsess().Delete(zkServers + "/" + rs.Host())
		// The fencing decision is the root cause every recovery action that
		// follows links back to.
		cause := m.jrn().Append(ops.Event{
			Type: ops.EventServerFenced, Server: rs.Host(),
			Detail: "missed heartbeats, declared dead",
		})
		if err := m.reassignLocked(rs, cause); err != nil {
			return dead, err
		}
	}
	return dead, nil
}

// reassignLocked moves every region off a dead server. The master works
// from its own meta, never the dead server's region map: a "dead" server
// may in fact be a live zombie on the far side of a partition, and nothing
// the master does may depend on reaching it. Each region's successor is
// opened at a bumped, ZooKeeper-persisted epoch, which fences the shared
// WAL — from that instant the zombie can no longer acknowledge a write —
// and then rebuilt by WAL replay (the paper's §VI-B recovery path: the log,
// standing in for HDFS, outlives the server). The successor lands on the
// least-loaded survivor, which rebinds its meta host so refreshed client
// caches route to the new location.
func (m *Master) reassignLocked(dead *RegionServer, cause uint64) error {
	if len(m.servers) == 0 {
		return fmt.Errorf("hbase: no surviving region servers to reassign %s's regions", dead.Host())
	}
	deadHost := dead.Host()
	type victim struct {
		ts *tableState
		r  *Region
	}
	var victims []victim
	for _, ts := range m.tables {
		for _, r := range ts.regions {
			if r.Info().Host == deadHost {
				victims = append(victims, victim{ts, r})
			}
		}
	}
	sort.Slice(victims, func(i, j int) bool { // deterministic reassignment order
		return victims[i].r.Info().ID < victims[j].r.Info().ID
	})
	for _, v := range victims {
		info := v.r.Info()
		if promoted := m.promoteLocked(v.ts, info); promoted != nil {
			// A surviving secondary took over: it was already serving, so the
			// region never waits on WAL replay — the read-availability win
			// replicas exist for. The epoch bump below fences the shared WAL
			// exactly as a replay reassignment would, so a zombie old primary
			// dies identically either way.
			v.ts.regions[info.ID] = promoted
			m.meter.Inc(metrics.RegionsReassigned)
			m.meter.Inc(metrics.RegionsFenced)
			pi := promoted.Info()
			m.jrn().Append(ops.Event{
				Type: ops.EventReplicaPromoted, Region: info.ID, Table: info.Table,
				Server: pi.Host, Epoch: pi.Epoch, Cause: cause, Detail: "no WAL replay",
			})
			continue
		}
		next := m.nextEpochLocked(info)
		successor := v.r.Reopen(next)
		if err := successor.RecoverFromWAL(); err != nil {
			return fmt.Errorf("hbase: replay WAL of %s: %w", info.ID, err)
		}
		target := m.leastLoadedLocked()
		target.AddRegion(successor)
		v.ts.regions[info.ID] = successor
		m.meter.Inc(metrics.RegionsReassigned)
		m.meter.Inc(metrics.RegionsFenced)
		m.jrn().Append(ops.Event{
			Type: ops.EventRegionReassigned, Region: info.ID, Table: info.Table,
			Server: target.Host(), Epoch: next, Cause: cause, Detail: "wal-replay",
		})
	}
	// Secondary copies the dead server hosted are gone with it: forget them
	// (the promoted/reassigned primaries keep shipping to the survivors),
	// then restore every shorthanded region to its configured replication.
	m.dropReplicasOnLocked(deadHost)
	m.topUpReplicasLocked()
	return nil
}

// promoteLocked promotes the freshest surviving secondary of a region whose
// primary died, returning the promoted Region (nil when no live copy
// exists). Freshness is the applied WAL high-water mark — the copy that saw
// most of the acknowledged history loses the least. The promoted copy stays
// on its own server: it re-registers under the primary key, at a bumped
// ZooKeeper-persisted epoch, with no data movement and no replay wait.
func (m *Master) promoteLocked(ts *tableState, info RegionInfo) *Region {
	reps := ts.replicas[info.ID]
	var best *Region
	var bestSrv *RegionServer
	for _, rep := range reps {
		srv := m.serverLocked(rep.Info().Host)
		if srv == nil {
			continue // the copy's host is dead or gone too
		}
		if best == nil || rep.AppliedSeq() > best.AppliedSeq() {
			best, bestSrv = rep, srv
		}
	}
	if best == nil {
		return nil
	}
	next := m.nextEpochLocked(info)
	bestSrv.RemoveRegion(regionKey(info.ID, best.Info().Replica))
	best.Promote(next)
	bestSrv.AddRegion(best)
	keep := reps[:0]
	for _, rep := range reps {
		if rep != best {
			keep = append(keep, rep)
		}
	}
	ts.replicas[info.ID] = keep
	m.meter.Inc(metrics.Promotions)
	return best
}

// serverLocked returns the registered server for host, or nil.
func (m *Master) serverLocked(host string) *RegionServer {
	for _, rs := range m.servers {
		if rs.Host() == host {
			return rs
		}
	}
	return nil
}

// dropReplicasOnLocked forgets every secondary copy hosted on host (a dead
// server): each is detached from its primary's replicator so shipping stops
// and the object can be collected.
func (m *Master) dropReplicasOnLocked(host string) {
	for _, ts := range m.tables {
		for id, reps := range ts.replicas {
			keep := reps[:0]
			for _, rep := range reps {
				if rep.Info().Host == host {
					if rep.repl != nil {
						rep.repl.detach(rep)
					}
					continue
				}
				keep = append(keep, rep)
			}
			ts.replicas[id] = keep
		}
	}
}

// topUpReplicasLocked restores every region to its configured replication
// by bootstrapping fresh secondary copies from the current primary onto
// servers not already holding a copy. Freed replica numbers are reused so
// clients' ReplicaHosts slots stay stable.
func (m *Master) topUpReplicasLocked() {
	if m.cfg.RegionReplication <= 1 {
		return
	}
	for _, ts := range m.tables {
		ids := make([]string, 0, len(ts.regions))
		for id := range ts.regions {
			ids = append(ids, id)
		}
		sort.Strings(ids) // deterministic placement order
		for _, id := range ids {
			m.ensureReplicasLocked(ts, ts.regions[id])
		}
	}
}

// ensureReplicasLocked adds secondary copies of primary until the region
// has RegionReplication total copies or no eligible server remains.
func (m *Master) ensureReplicasLocked(ts *tableState, primary *Region) {
	m.ensureReplicasPlacedLocked(ts, primary, nil)
}

// ensureReplicasPlacedLocked is ensureReplicasLocked with preferred hosts:
// each missing copy tries the corresponding preferred host first (split
// daughters inherit the parent's replica placement this way, so a split
// does not reshuffle where the range's copies live), falling back to the
// least-loaded eligible server.
func (m *Master) ensureReplicasPlacedLocked(ts *tableState, primary *Region, preferred []string) {
	id := primary.Info().ID
	for len(ts.replicas[id]) < m.cfg.RegionReplication-1 {
		used := make(map[int]bool, len(ts.replicas[id]))
		for _, rep := range ts.replicas[id] {
			used[rep.Info().Replica] = true
		}
		num := 1
		for used[num] {
			num++
		}
		var want string
		if num-1 < len(preferred) {
			want = preferred[num-1]
		}
		if !m.addReplicaLocked(ts, primary, num, want) {
			return
		}
	}
}

// addReplicaLocked bootstraps secondary copy #num of primary onto the
// preferred host when it is registered and eligible, else the least-loaded
// server not already holding a copy of the region. Returns false when every
// server already holds one (replication is capped by the cluster size, as
// in HBase).
func (m *Master) addReplicaLocked(ts *tableState, primary *Region, num int, preferred string) bool {
	info := primary.Info()
	exclude := map[string]bool{info.Host: true}
	for _, rep := range ts.replicas[info.ID] {
		exclude[rep.Info().Host] = true
	}
	var target *RegionServer
	if preferred != "" && !exclude[preferred] {
		target = m.serverLocked(preferred)
	}
	if target == nil {
		target = m.leastLoadedExcludingLocked(exclude)
	}
	if target == nil {
		return false
	}
	rep := primary.NewReplica(num)
	target.AddRegion(rep)
	ts.replicas[info.ID] = append(ts.replicas[info.ID], rep)
	return true
}

// leastLoadedExcludingLocked returns the least-loaded registered server
// whose host is not excluded, or nil when none qualifies.
func (m *Master) leastLoadedExcludingLocked(exclude map[string]bool) *RegionServer {
	var best *RegionServer
	for _, rs := range m.servers {
		if exclude[rs.Host()] {
			continue
		}
		if best == nil || rs.RegionCount() < best.RegionCount() {
			best = rs
		}
	}
	return best
}

// DrainServer gracefully removes a region server from the cluster: every
// hosted region is flushed (making its MemStore durable and truncating its
// WAL), moved to a bumped ownership epoch, and handed — as the same live
// object — to the least-loaded remaining server. Nothing is replayed,
// nothing is lost, and in-flight client requests fail over with the
// ordinary retryable errors (ErrNotServing before the move is visible in
// meta, ErrFenced after). This is the rolling-restart primitive: drain,
// restart the process, AddServer to rejoin.
func (m *Master) DrainServer(host string) error {
	if err := m.fenceCheck(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	idx := -1
	for i, rs := range m.servers {
		if rs.Host() == host {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("hbase: no region server %q registered to drain", host)
	}
	if len(m.servers) == 1 {
		return fmt.Errorf("hbase: cannot drain %q: it is the only region server", host)
	}
	victim := m.servers[idx]
	m.servers = append(m.servers[:idx:idx], m.servers[idx+1:]...)
	delete(m.missed, host)
	_ = m.zsess().Delete(zkServers + "/" + host)
	cause := m.jrn().Append(ops.Event{Type: ops.EventServerDrained, Server: host})
	if err := m.drainStageLocked("deregistered"); err != nil {
		return err
	}
	infos := victim.RegionInfos() // sorted: deterministic drain order
	for _, info := range infos {
		if err := m.drainStageLocked("move"); err != nil {
			return err
		}
		r := victim.RemoveRegion(regionKey(info.ID, info.Replica))
		if r == nil {
			continue
		}
		if info.Replica > 0 {
			// A secondary copy moves as the same live object with no epoch
			// bump — replicas carry no ownership, and the replicator keeps
			// shipping to the object wherever it is hosted.
			target := m.placeCopyLocked(info)
			target.AddRegion(r)
			m.meter.Inc(metrics.RegionsDrained)
			m.jrn().Append(ops.Event{
				Type: ops.EventRegionReassigned, Region: info.ID, Table: info.Table,
				Server: target.Host(), Cause: cause, Detail: "drain-replica",
			})
			continue
		}
		r.Flush()
		r.AdoptEpoch(m.nextEpochLocked(r.Info()))
		target := m.placeCopyLocked(info)
		target.AddRegion(r)
		m.meter.Inc(metrics.RegionsDrained)
		m.jrn().Append(ops.Event{
			Type: ops.EventRegionReassigned, Region: info.ID, Table: info.Table,
			Server: target.Host(), Epoch: r.Epoch(), Cause: cause, Detail: "drain",
		})
	}
	return nil
}

// placeCopyLocked picks the drain/balance target for one copy of a region:
// least-loaded among servers not already holding another copy, falling back
// to plain least-loaded when the cluster is too small to keep copies apart.
func (m *Master) placeCopyLocked(info RegionInfo) *RegionServer {
	ts := m.tables[info.Table]
	if ts == nil {
		return m.leastLoadedLocked()
	}
	exclude := make(map[string]bool, m.cfg.RegionReplication)
	if p := ts.regions[info.ID]; p != nil && p.Info().Replica != info.Replica {
		exclude[p.Info().Host] = true
	}
	for _, rep := range ts.replicas[info.ID] {
		if rep.Info().Replica != info.Replica {
			exclude[rep.Info().Host] = true
		}
	}
	if target := m.leastLoadedExcludingLocked(exclude); target != nil {
		return target
	}
	return m.leastLoadedLocked()
}

// StartHeartbeats drives CheckServers on a fixed interval and returns a
// stop function. Tests prefer calling CheckServers directly (no timers to
// race against); the chaos benchmark and long-lived deployments use the
// loop.
func (m *Master) StartHeartbeats(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				_, _ = m.CheckServers()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

func (m *Master) auth(token string) error {
	if m.validate == nil {
		return nil
	}
	return m.validate(token)
}

// CreateTable creates a table pre-split at splitKeys (sorted, distinct) and
// assigns its regions across the servers, least-loaded first.
func (m *Master) CreateTable(desc TableDescriptor, splitKeys [][]byte) error {
	if err := desc.Validate(); err != nil {
		return err
	}
	if err := m.fenceCheck(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.servers) == 0 {
		return fmt.Errorf("hbase: no region servers available")
	}
	if _, ok := m.tables[desc.Name]; ok {
		return fmt.Errorf("hbase: table %q already exists", desc.Name)
	}
	for i := 1; i < len(splitKeys); i++ {
		if bytes.Compare(splitKeys[i-1], splitKeys[i]) >= 0 {
			return fmt.Errorf("hbase: split keys must be sorted and distinct")
		}
	}
	ts := &tableState{desc: desc, regions: make(map[string]*Region), replicas: make(map[string][]*Region)}
	bounds := make([][]byte, 0, len(splitKeys)+2)
	bounds = append(bounds, nil)
	bounds = append(bounds, splitKeys...)
	bounds = append(bounds, nil)
	for i := 0; i+1 < len(bounds); i++ {
		m.nextID++
		info := RegionInfo{
			Table:    desc.Name,
			ID:       fmt.Sprintf("%s-%04d", desc.Name, m.nextID),
			StartKey: cloneKey(bounds[i]),
			EndKey:   cloneKey(bounds[i+1]),
		}
		descCopy := desc
		region := NewRegion(info, &descCopy, m.cfg, m.meter)
		// First assignment: epoch one past anything ZooKeeper remembers for
		// this id (a fresh id starts at 1).
		region.setEpoch(m.loadEpoch(info.ID) + 1)
		_ = m.persistEpoch(info.ID, region.Epoch())
		m.leastLoadedLocked().AddRegion(region)
		ts.regions[info.ID] = region
		m.ensureReplicasLocked(ts, region)
	}
	m.tables[desc.Name] = ts
	return nil
}

func cloneKey(k []byte) []byte {
	if k == nil {
		return nil
	}
	return append([]byte(nil), k...)
}

// locked
func (m *Master) leastLoadedLocked() *RegionServer {
	best := m.servers[0]
	for _, rs := range m.servers[1:] {
		if rs.RegionCount() < best.RegionCount() {
			best = rs
		}
	}
	return best
}

// DeleteTable drops a table and unhosts its regions.
func (m *Master) DeleteTable(name string) error {
	if err := m.fenceCheck(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[name]
	if !ok {
		return fmt.Errorf("hbase: table %q does not exist", name)
	}
	for id, r := range ts.regions {
		for _, rs := range m.servers {
			if rs.Host() == r.Info().Host {
				rs.RemoveRegion(id)
			}
		}
		for _, rep := range ts.replicas[id] {
			ri := rep.Info()
			if srv := m.serverLocked(ri.Host); srv != nil {
				srv.RemoveRegion(regionKey(ri.ID, ri.Replica))
			}
			if rep.repl != nil {
				rep.repl.detach(rep)
			}
		}
	}
	delete(m.tables, name)
	return nil
}

// TableRegions lists a table's regions in start-key order.
func (m *Master) TableRegions(name string) ([]RegionInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[name]
	if !ok {
		return nil, fmt.Errorf("hbase: table %q does not exist", name)
	}
	out := make([]RegionInfo, 0, len(ts.regions))
	for _, r := range ts.regions {
		info := r.Info()
		if reps := ts.replicas[info.ID]; len(reps) > 0 {
			// Publish replica locations in the meta response, indexed by
			// replica number, so timeline clients can fail over without a
			// second meta round trip.
			maxNum := 0
			for _, rep := range reps {
				if n := rep.Info().Replica; n > maxNum {
					maxNum = n
				}
			}
			hosts := make([]string, maxNum)
			for _, rep := range reps {
				ri := rep.Info()
				hosts[ri.Replica-1] = ri.Host
			}
			info.ReplicaHosts = hosts
		}
		out = append(out, info)
	}
	sortRegions(out)
	return out, nil
}

// Tables lists table names sorted.
func (m *Master) Tables() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.tables))
	for name := range m.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// TableDescriptorFor returns the descriptor of a table.
func (m *Master) TableDescriptorFor(name string) (TableDescriptor, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[name]
	if !ok {
		return TableDescriptor{}, fmt.Errorf("hbase: table %q does not exist", name)
	}
	return ts.desc, nil
}

// TableStatsFor aggregates storage statistics across a table's regions.
func (m *Master) TableStatsFor(name string) (TableStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ts, ok := m.tables[name]
	if !ok {
		return TableStats{}, fmt.Errorf("hbase: table %q does not exist", name)
	}
	var out TableStats
	for _, r := range ts.regions {
		out.Bytes += int64(r.Size())
		out.Cells += r.CellCount()
		out.Regions++
	}
	return out, nil
}

// splitJournal is the durable record of one in-flight split transaction,
// JSON-encoded at /shc/splits/<parent-id>. Epoch is the daughters' ownership
// epoch — the parent's WAL is fenced at it, so rolling back means adopting
// it on the parent (un-fencing) and rolling forward means the daughters
// already hold it.
type splitJournal struct {
	Table    string `json:"table"`
	Parent   string `json:"parent"`
	LowID    string `json:"low"`
	HighID   string `json:"high"`
	SplitKey []byte `json:"key"`
	Epoch    uint64 `json:"epoch"`
}

// SetDrainHook installs a test-only hook that runs at each named stage of a
// drain ("deregistered", "move"); returning an error aborts the drain there,
// simulating the master dying mid-drain with the server already off the
// roster and only some regions moved. nil removes it.
func (m *Master) SetDrainHook(fn func(stage string) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.drainHook = fn
}

// locked
func (m *Master) drainStageLocked(stage string) error {
	if m.drainHook == nil {
		return nil
	}
	return m.drainHook(stage)
}

// SetSplitHook installs a test-only hook that runs after each named stage of
// a split transaction ("journaled", "split", "daughters-added",
// "meta-updated"); returning an error aborts the split there, simulating the
// master dying at that exact point. nil removes it.
func (m *Master) SetSplitHook(fn func(stage string) error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.splitHook = fn
}

// locked
func (m *Master) splitStageLocked(stage string) error {
	if m.splitHook == nil {
		return nil
	}
	return m.splitHook(stage)
}

func (m *Master) writeSplitJournal(j *splitJournal) error {
	data, err := json.Marshal(j)
	if err != nil {
		return err
	}
	node := zkSplits + "/" + j.Parent
	if ok, _ := m.zsess().Exists(node); ok {
		return m.zsess().Set(node, data)
	}
	return m.zsess().Create(node, data, false)
}

// SplitRegion splits one region at its computed midpoint, keeping both
// daughters on the same host (HBase's default before balancing). The split
// runs as a fenced transaction: (1) the intent is journaled in the
// coordination service, (2) the daughters are cut and the parent's WAL is
// fenced at a bumped epoch — an in-flight write against the parent from here
// on fails un-acknowledged instead of landing in a doomed region, (3) the
// daughters are hosted and swapped into meta atomically under the master
// lock, (4) the journal is deleted. A master or hosting-server death between
// any of those steps leaves the journal behind, and recoverSplitsLocked
// settles it — forward when both daughters made it, back otherwise.
func (m *Master) SplitRegion(table, regionID string) error {
	return m.splitRegionCaused(table, regionID, 0, "manual")
}

// splitRegionCaused is SplitRegion with journal provenance: cause links the
// split's events to the triggering event (a janitor pass), reason says why
// it ran ("manual", "overgrown", "hot").
func (m *Master) splitRegionCaused(table, regionID string, cause uint64, reason string) error {
	// Splits are the highest-stakes coordination write — a zombie master
	// journaling a split against regions a successor owns would tear the
	// keyspace — so each one re-verifies leadership.
	if err := m.fenceCheck(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.splitRegionLocked(table, regionID, cause, reason)
}

// locked
func (m *Master) splitRegionLocked(table, regionID string, cause uint64, reason string) error {
	ts, ok := m.tables[table]
	if !ok {
		return fmt.Errorf("hbase: table %q does not exist", table)
	}
	r, ok := ts.regions[regionID]
	if !ok {
		return fmt.Errorf("hbase: region %q not in table %q", regionID, table)
	}
	point := r.SplitPoint()
	if point == nil {
		return fmt.Errorf("hbase: region %q has no viable split point", regionID)
	}
	var host *RegionServer
	for _, rs := range m.servers {
		if rs.Host() == r.Info().Host {
			host = rs
			break
		}
	}
	if host == nil {
		return fmt.Errorf("hbase: host %q of region %q not found", r.Info().Host, regionID)
	}
	m.nextID++
	lowID := fmt.Sprintf("%s-%04d", table, m.nextID)
	m.nextID++
	highID := fmt.Sprintf("%s-%04d", table, m.nextID)
	// Remember where the parent's secondary copies live before anything
	// changes: the daughters inherit that placement.
	placement := make([]string, 0, len(ts.replicas[regionID]))
	for _, rep := range ts.replicas[regionID] {
		placement = append(placement, rep.Info().Host)
	}

	// Stage 1: journal the intent. The epoch is bumped and persisted first
	// (nextEpochLocked), so even a crash between the bump and the journal
	// only costs the parent one fence level on its next assignment.
	next := m.nextEpochLocked(r.Info())
	j := &splitJournal{Table: table, Parent: regionID, LowID: lowID, HighID: highID, SplitKey: point, Epoch: next}
	if err := m.writeSplitJournal(j); err != nil {
		return err
	}
	if err := m.splitStageLocked("journaled"); err != nil {
		return err
	}

	// Stage 2: cut the daughters, fencing the parent's WAL at the new epoch.
	low, high, err := r.SplitInto(lowID, highID, point, next)
	if err != nil {
		// The parent is now fenced but the journal records everything needed
		// to roll back; do it inline.
		m.rollBackSplitLocked(ts, j, cause)
		return err
	}
	if err := m.splitStageLocked("split"); err != nil {
		return err
	}
	_ = m.persistEpoch(lowID, next)
	_ = m.persistEpoch(highID, next)

	// Stage 3: host the daughters, then swap meta. Handlers serialize on the
	// master lock, so readers never observe the parent and daughters
	// overlapping.
	host.AddRegion(low)
	host.AddRegion(high)
	if err := m.splitStageLocked("daughters-added"); err != nil {
		return err
	}
	host.RemoveRegion(regionID)
	delete(ts.regions, regionID)
	// The parent's secondary copies are retired with it — their ranges no
	// longer exist — and each daughter bootstraps a fresh set below, on the
	// hosts the parent's copies occupied.
	for _, rep := range ts.replicas[regionID] {
		ri := rep.Info()
		if srv := m.serverLocked(ri.Host); srv != nil {
			srv.RemoveRegion(regionKey(ri.ID, ri.Replica))
		}
		if rep.repl != nil {
			rep.repl.detach(rep)
		}
	}
	delete(ts.replicas, regionID)
	ts.regions[lowID] = low
	ts.regions[highID] = high
	_ = m.zsess().Delete(zkEpochRegions + "/" + regionID + "/epoch")
	_ = m.zsess().Delete(zkEpochRegions + "/" + regionID)
	if err := m.splitStageLocked("meta-updated"); err != nil {
		return err
	}
	m.ensureReplicasPlacedLocked(ts, low, placement)
	m.ensureReplicasPlacedLocked(ts, high, placement)

	// Stage 4: the transaction is complete; retire the journal.
	_ = m.zsess().Delete(zkSplits + "/" + regionID)
	m.jrn().Append(ops.Event{
		Type: ops.EventRegionSplit, Region: regionID, Table: table,
		Server: host.Host(), Epoch: next, Cause: cause,
		Detail: fmt.Sprintf("%s: daughters %s,%s", reason, lowID, highID),
	})
	return nil
}

// recoverSplitsLocked settles every journaled split transaction against the
// current hosted state: when both daughters are in meta the split rolls
// forward (the parent, if it survived anywhere, is removed); otherwise it
// rolls back (any orphan daughter is removed and the parent is un-fenced by
// adopting the journal epoch). Run by a recovering master after rebuilding
// meta, and by every janitor pass.
func (m *Master) recoverSplitsLocked(cause uint64) {
	parents, err := m.zsess().Children(zkSplits)
	if err != nil || len(parents) == 0 {
		return
	}
	sort.Strings(parents) // deterministic recovery order
	for _, parent := range parents {
		data, err := m.zsess().Get(zkSplits + "/" + parent)
		if err != nil {
			continue
		}
		var j splitJournal
		if err := json.Unmarshal(data, &j); err != nil {
			// An unreadable journal is unrecoverable dead weight; drop it.
			_ = m.zsess().Delete(zkSplits + "/" + parent)
			continue
		}
		ts := m.tables[j.Table]
		if ts == nil {
			_ = m.zsess().Delete(zkSplits + "/" + parent)
			continue
		}
		_, lowOK := ts.regions[j.LowID]
		_, highOK := ts.regions[j.HighID]
		if lowOK && highOK {
			m.rollForwardSplitLocked(ts, &j, cause)
		} else {
			m.rollBackSplitLocked(ts, &j, cause)
		}
	}
}

// rollForwardSplitLocked completes a split whose daughters both survived:
// the parent is evicted from meta and every server, its epoch node retired,
// and the daughters' replica sets topped up.
func (m *Master) rollForwardSplitLocked(ts *tableState, j *splitJournal, cause uint64) {
	if parent, ok := ts.regions[j.Parent]; ok {
		if srv := m.serverLocked(parent.Info().Host); srv != nil {
			srv.RemoveRegion(j.Parent)
		}
		delete(ts.regions, j.Parent)
	}
	for _, rep := range ts.replicas[j.Parent] {
		ri := rep.Info()
		if srv := m.serverLocked(ri.Host); srv != nil {
			srv.RemoveRegion(regionKey(ri.ID, ri.Replica))
		}
		if rep.repl != nil {
			rep.repl.detach(rep)
		}
	}
	delete(ts.replicas, j.Parent)
	_ = m.zsess().Delete(zkEpochRegions + "/" + j.Parent + "/epoch")
	_ = m.zsess().Delete(zkEpochRegions + "/" + j.Parent)
	m.ensureReplicasLocked(ts, ts.regions[j.LowID])
	m.ensureReplicasLocked(ts, ts.regions[j.HighID])
	_ = m.zsess().Delete(zkSplits + "/" + j.Parent)
	m.meter.Inc(metrics.SplitsRolledForward)
	m.jrn().Append(ops.Event{
		Type: ops.EventSplitRolledForward, Region: j.Parent, Table: j.Table,
		Epoch: j.Epoch, Cause: cause, Detail: "daughters " + j.LowID + "," + j.HighID,
	})
}

// rollBackSplitLocked abandons a split that did not complete: any orphan
// daughter is removed from meta and its server, the daughters' epoch nodes
// are retired, and the parent — whose WAL the split fenced at j.Epoch — is
// un-fenced by adopting that epoch, so it serves writes again with no
// acknowledged history lost (the fence rejected, never dropped).
func (m *Master) rollBackSplitLocked(ts *tableState, j *splitJournal, cause uint64) {
	for _, id := range []string{j.LowID, j.HighID} {
		if d, ok := ts.regions[id]; ok {
			if srv := m.serverLocked(d.Info().Host); srv != nil {
				srv.RemoveRegion(id)
			}
			delete(ts.regions, id)
		} else if parent, ok := ts.regions[j.Parent]; ok {
			// The daughter may be hosted but not in meta (abort between
			// hosting and the meta swap): evict it from the parent's host.
			if srv := m.serverLocked(parent.Info().Host); srv != nil {
				srv.RemoveRegion(id)
			}
		}
		for _, rep := range ts.replicas[id] {
			ri := rep.Info()
			if srv := m.serverLocked(ri.Host); srv != nil {
				srv.RemoveRegion(regionKey(ri.ID, ri.Replica))
			}
			if rep.repl != nil {
				rep.repl.detach(rep)
			}
		}
		delete(ts.replicas, id)
		_ = m.zsess().Delete(zkEpochRegions + "/" + id + "/epoch")
		_ = m.zsess().Delete(zkEpochRegions + "/" + id)
	}
	if parent, ok := ts.regions[j.Parent]; ok {
		parent.AdoptEpoch(j.Epoch)
		_ = m.persistEpoch(j.Parent, j.Epoch)
	}
	_ = m.zsess().Delete(zkSplits + "/" + j.Parent)
	m.meter.Inc(metrics.SplitsRolledBack)
	m.jrn().Append(ops.Event{
		Type: ops.EventSplitRolledBack, Region: j.Parent, Table: j.Table,
		Epoch: j.Epoch, Cause: cause, Detail: "daughters " + j.LowID + "," + j.HighID,
	})
}

// SetHotWriteThreshold arms hot-region detection: a region that takes more
// than n cell writes between janitor passes is split by load. 0 disarms it.
func (m *Master) SetHotWriteThreshold(n int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.hotWriteThreshold = n
}

// SplitHotRegions samples every region's write-load counter and splits the
// ones above the hot threshold — the master-side defense that turns a
// sustained hot-key workload into more, smaller regions the balancer can
// spread. Returns how many regions were split.
func (m *Master) SplitHotRegions() (int, error) { return m.splitHot(0) }

func (m *Master) splitHot(cause uint64) (int, error) {
	// Gated up front, not just per split: even sampling drains the regions'
	// write-load counters, which a deposed master has no business doing.
	if err := m.fenceCheck(); err != nil {
		return 0, err
	}
	type target struct{ table, region string }
	m.mu.Lock()
	threshold := m.hotWriteThreshold
	var targets []target
	if threshold > 0 {
		for name, ts := range m.tables {
			for id, r := range ts.regions {
				if r.TakeWriteLoad() > threshold {
					targets = append(targets, target{name, id})
				}
			}
		}
	}
	m.mu.Unlock()
	n := 0
	for _, t := range targets {
		if err := m.splitRegionCaused(t.table, t.region, cause, "hot"); err != nil {
			// A region too small or too uniform to split stays hot but whole;
			// skip it rather than abort the pass.
			continue
		}
		m.meter.Inc(metrics.HotSplits)
		n++
	}
	return n, nil
}

// JanitorPass runs one round of the master's steady-state housekeeping:
// settle any orphaned split journals, split overgrown regions, split hot
// regions, and rebalance.
func (m *Master) JanitorPass() {
	if err := m.fenceCheck(); err != nil {
		return
	}
	m.meter.Inc(metrics.JanitorRuns)
	// One JanitorAction event anchors the pass; every split, rollback, and
	// balance move it performs carries this seq as its Cause.
	cause := m.jrn().Append(ops.Event{Type: ops.EventJanitorAction, Server: m.host})
	m.mu.Lock()
	m.recoverSplitsLocked(cause)
	m.mu.Unlock()
	_, _ = m.splitOvergrown(cause)
	_, _ = m.splitHot(cause)
	m.balance(cause)
}

// StartJanitor drives JanitorPass on a fixed interval and returns a stop
// function — the steady-state loop that makes size- and load-based splits
// happen without an operator. Tests call JanitorPass directly.
func (m *Master) StartJanitor(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	var once sync.Once
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				m.JanitorPass()
			case <-done:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// SplitOvergrownRegions splits every region that reports NeedsSplit, once.
func (m *Master) SplitOvergrownRegions() (int, error) { return m.splitOvergrown(0) }

func (m *Master) splitOvergrown(cause uint64) (int, error) {
	if err := m.fenceCheck(); err != nil {
		return 0, err
	}
	type target struct{ table, region string }
	m.mu.Lock()
	var targets []target
	for name, ts := range m.tables {
		for id, r := range ts.regions {
			if r.NeedsSplit() {
				targets = append(targets, target{name, id})
			}
		}
	}
	m.mu.Unlock()
	n := 0
	for _, t := range targets {
		if err := m.splitRegionCaused(t.table, t.region, cause, "overgrown"); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Balance migrates regions so server loads differ by at most one region.
// It returns the number of regions moved.
func (m *Master) Balance() int { return m.balance(0) }

func (m *Master) balance(cause uint64) int {
	if err := m.fenceCheck(); err != nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.servers) < 2 {
		return 0
	}
	moved := 0
	for {
		var minS, maxS *RegionServer
		for _, rs := range m.servers {
			if minS == nil || rs.RegionCount() < minS.RegionCount() {
				minS = rs
			}
			if maxS == nil || rs.RegionCount() > maxS.RegionCount() {
				maxS = rs
			}
		}
		if maxS.RegionCount()-minS.RegionCount() <= 1 {
			return moved
		}
		// Pick the first copy whose move keeps the region's copies on
		// distinct hosts; skipping the rest keeps primaries and their
		// replicas from ever colliding onto minS.
		infos := maxS.RegionInfos()
		var r *Region
		var picked RegionInfo
		for _, info := range infos {
			if m.copyOnHostLocked(info.ID, minS.Host(), info.Replica) {
				continue
			}
			r = maxS.RemoveRegion(regionKey(info.ID, info.Replica))
			picked = info
			break
		}
		if r == nil {
			return moved
		}
		if picked.Replica == 0 {
			// A balance move is an ownership change like any other: the epoch
			// bumps so stale routings to the old host fence instead of silently
			// missing, and the same live object moves (no flush, no replay).
			r.AdoptEpoch(m.nextEpochLocked(r.Info()))
		}
		minS.AddRegion(r)
		ev := ops.Event{
			Type: ops.EventRegionReassigned, Region: picked.ID, Table: picked.Table,
			Server: minS.Host(), Cause: cause, Detail: "balance",
		}
		if picked.Replica == 0 {
			ev.Epoch = r.Epoch()
		}
		m.jrn().Append(ev)
		moved++
	}
}

// copyOnHostLocked reports whether some other copy (a different replica
// number) of the region already lives on host.
func (m *Master) copyOnHostLocked(id, host string, replica int) bool {
	for _, ts := range m.tables {
		p, ok := ts.regions[id]
		if !ok {
			continue
		}
		if pi := p.Info(); pi.Replica != replica && pi.Host == host {
			return true
		}
		for _, rep := range ts.replicas[id] {
			if ri := rep.Info(); ri.Replica != replica && ri.Host == host {
				return true
			}
		}
		return false
	}
	return false
}

func (m *Master) handleCreateTable(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r, ok := req.(*CreateTableRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodCreateTable, req)
	}
	if err := m.auth(r.Token); err != nil {
		return nil, err
	}
	if err := m.CreateTable(r.Desc, r.SplitKeys); err != nil {
		return nil, err
	}
	return Ack{}, nil
}

func (m *Master) handleDeleteTable(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r, ok := req.(*TableRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodDeleteTable, req)
	}
	if err := m.auth(r.Token); err != nil {
		return nil, err
	}
	if err := m.DeleteTable(r.Table); err != nil {
		return nil, err
	}
	return Ack{}, nil
}

func (m *Master) handleTableRegions(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r, ok := req.(*TableRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodTableRegions, req)
	}
	if err := m.auth(r.Token); err != nil {
		return nil, err
	}
	regions, err := m.TableRegions(r.Table)
	if err != nil {
		return nil, err
	}
	return &RegionList{Regions: regions}, nil
}

func (m *Master) handleTableStats(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r, ok := req.(*TableRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodTableStats, req)
	}
	if err := m.auth(r.Token); err != nil {
		return nil, err
	}
	stats, err := m.TableStatsFor(r.Table)
	if err != nil {
		return nil, err
	}
	return stats, nil
}

func (m *Master) handleListTables(_ context.Context, req rpc.Message) (rpc.Message, error) {
	r, ok := req.(*TableRequest)
	if !ok {
		return nil, fmt.Errorf("hbase: %s: bad request type %T", MethodListTables, req)
	}
	if err := m.auth(r.Token); err != nil {
		return nil, err
	}
	return &TableNames{Names: m.Tables()}, nil
}
