package hbase

import (
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/ops"
)

// TestJournalFailoverCausality is the journal's core contract: a crash
// produces a ServerFenced root event, and every recovery action links back
// to it through Cause — promotion when a replica survives, so an operator
// (or a test) can walk the chain instead of correlating counters.
func TestJournalFailoverCausality(t *testing.T) {
	c := bootReplicated(t, 3, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 20; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "x"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}

	victim := c.Servers[0].Host()
	if err := c.CrashServer(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Master.CheckServers(); err != nil {
		t.Fatal(err)
	}

	fenced := c.Journal.Find(ops.EventServerFenced)
	if len(fenced) != 1 || fenced[0].Server != victim {
		t.Fatalf("ServerFenced events = %+v, want exactly one for %s", fenced, victim)
	}
	root := fenced[0].Seq

	promoted := c.Journal.Find(ops.EventReplicaPromoted)
	reassigned := c.Journal.Find(ops.EventRegionReassigned)
	if len(promoted)+len(reassigned) == 0 {
		t.Fatal("no recovery events journaled after failover")
	}
	for _, e := range append(promoted, reassigned...) {
		if e.Cause != root {
			t.Errorf("%s %s: cause = %d, want %d (the ServerFenced seq)", e.Type, e.Region, e.Cause, root)
		}
		if e.Server == victim {
			t.Errorf("%s %s: recovered onto the dead server %s", e.Type, e.Region, victim)
		}
		if e.Epoch == 0 {
			t.Errorf("%s %s: no epoch recorded", e.Type, e.Region)
		}
	}

	// The status snapshot reflects the post-failover topology.
	st := c.Status()
	for _, ss := range st.Servers {
		if ss.Host == victim && ss.Live {
			t.Errorf("crashed server %s reported live", victim)
		}
	}
	for _, rs := range st.Regions {
		if rs.Server == victim {
			t.Errorf("region %s still placed on dead server", rs.Name)
		}
		if rs.Epoch == 0 {
			t.Errorf("region %s has epoch 0 in status", rs.Name)
		}
	}
}

// TestJournalSplitAndJanitorEvents checks split provenance: a manual split
// journals a RegionSplit with no cause; janitor-driven work hangs off the
// pass's JanitorAction event.
func TestJournalSplitAndJanitorEvents(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	var cells []Cell
	for i := 0; i < 40; i++ {
		cells = append(cells, cell(fmt.Sprintf("row-%02d", i), "cf", "q", 1, "0123456789"))
	}
	if err := client.Put("t", cells); err != nil {
		t.Fatal(err)
	}
	regions, err := c.Master.TableRegions("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Master.SplitRegion("t", regions[0].ID); err != nil {
		t.Fatal(err)
	}
	splits := c.Journal.Find(ops.EventRegionSplit)
	if len(splits) != 1 {
		t.Fatalf("RegionSplit events = %d, want 1", len(splits))
	}
	if splits[0].Region != regions[0].ID || splits[0].Cause != 0 {
		t.Fatalf("manual split event = %+v, want region %s with no cause", splits[0], regions[0].ID)
	}

	c.Master.JanitorPass()
	passes := c.Journal.Find(ops.EventJanitorAction)
	if len(passes) != 1 {
		t.Fatalf("JanitorAction events = %d, want 1", len(passes))
	}
}

// TestJournalDrainEvents: a graceful drain journals ServerDrained, and each
// region move references it.
func TestJournalDrainEvents(t *testing.T) {
	c := bootCluster(t, 2)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, [][]byte{[]byte("m")}); err != nil {
		t.Fatal(err)
	}
	victim := c.Servers[0].Host()
	if err := c.Master.DrainServer(victim); err != nil {
		t.Fatal(err)
	}
	drains := c.Journal.Find(ops.EventServerDrained)
	if len(drains) != 1 || drains[0].Server != victim {
		t.Fatalf("ServerDrained events = %+v", drains)
	}
	moves := c.Journal.Find(ops.EventRegionReassigned)
	if len(moves) == 0 {
		t.Fatal("no RegionReassigned events from the drain")
	}
	for _, e := range moves {
		if e.Cause != drains[0].Seq {
			t.Errorf("drain move %s: cause = %d, want %d", e.Region, e.Cause, drains[0].Seq)
		}
	}
}

// TestJournalBackpressureEdgeDetected: memstore rejects journal one event
// per episode, not one per rejected write.
func TestJournalBackpressureEdgeDetected(t *testing.T) {
	c, err := NewCluster(ClusterConfig{Name: "t", NumServers: 1, Store: StoreConfig{FlushThresholdBytes: 1 << 20}})
	if err != nil {
		t.Fatal(err)
	}
	rs := c.Servers[0]
	rs.SetLimits(ServerLimits{MemstoreHighWatermarkBytes: 64})
	rs.HoldFlushes(true)
	client := c.NewClient()
	defer client.Close()
	if err := client.CreateTable(TableDescriptor{Name: "t", Families: []string{"cf"}}, nil); err != nil {
		t.Fatal(err)
	}
	// Fill past the high watermark, then keep hammering: every write after
	// the first overflow is rejected, but only the first journals.
	var rejects int
	for i := 0; i < 10; i++ {
		if err := client.Put("t", []Cell{cell(fmt.Sprintf("r%d", i), "cf", "q", 1, "0123456789012345678901234567890123456789")}); err != nil {
			rejects++
		}
	}
	if rejects < 2 {
		t.Fatalf("rejects = %d, want several (watermark never tripped?)", rejects)
	}
	events := c.Journal.Find(ops.EventMemstoreBackpressure)
	if len(events) != 1 {
		t.Fatalf("MemstoreBackpressure events = %d, want 1 (edge-detected)", len(events))
	}
	if events[0].Server != rs.Host() {
		t.Fatalf("backpressure event server = %s", events[0].Server)
	}
}
