package harness

import (
	"errors"
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/core"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/tpcds"
)

const partitionQuery = `SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10`

// sortRows canonicalizes result order. A fresh query's row order follows the
// per-host partition grouping, which legitimately changes when regions move;
// only in-flight queries interrupted mid-stream guarantee positional
// identity (the pager preserves op order across failovers).
func sortRows(rows []plan.Row) []plan.Row {
	out := append([]plan.Row(nil), rows...)
	sort.Slice(out, func(i, j int) bool { return fmt.Sprint(out[i]) < fmt.Sprint(out[j]) })
	return out
}

// TestStreamingSelectSurvivesZombiePartition is the end-to-end zombie
// scenario: mid-streaming-query, the region server being read is partitioned
// from the master (clients still reach it), declared dead, and its regions
// are reassigned by WAL replay. The in-flight query must fail over and
// return results byte-identical to an undisturbed run; a write issued
// through a stale cache during the partition must be acked exactly once (the
// zombie's fenced WAL refuses the append, so the ack comes from the real
// owner); and once its lease lapses the zombie rejects reads with ErrFenced
// instead of serving phantom data.
func TestStreamingSelectSurvivesZombiePartition(t *testing.T) {
	const lease = 60 * time.Millisecond
	mk := func() *Rig {
		rig, err := NewRig(Config{
			System: SHC, Scale: 1, Servers: 3,
			Store:     hbase.StoreConfig{ServerLease: lease, FenceReads: true},
			Heartbeat: 10 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rig
	}
	base := mk()
	defer base.Close()
	want, err := base.Run(partitionQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("baseline returned no rows; the chaos run would be vacuous")
	}

	rig := mk()
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	staleRI := regions[0] // pre-partition routing: victim host, old epoch
	victim := staleRI.Host

	// A second client with its own region cache, warmed before the
	// partition: its routing will still point at the zombie afterwards.
	writerClient := rig.Cluster.NewClient()
	defer writerClient.Close()
	wdoc, err := tpcds.Catalog("store_sales", "")
	if err != nil {
		t.Fatal(err)
	}
	wcat, err := core.ParseCatalog(wdoc)
	if err != nil {
		t.Fatal(err)
	}
	writerRel, err := core.NewHBaseRelation(writerClient, wcat, core.Options{}, rig.Meter)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writerClient.Regions("store_sales"); err != nil {
		t.Fatal(err)
	}

	// At the victim's second fused page the partition drops master↔victim
	// traffic and a synchronous heartbeat round reassigns its regions; the
	// page itself fails too, forcing the pager onto the failover path while
	// the zombie is still reachable from clients.
	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 1, FailNext: 1,
			OnFire: func() {
				if err := rig.Cluster.PartitionServer(victim, hbase.PartitionFromMaster); err != nil {
					t.Errorf("partition %s: %v", victim, err)
				}
				if _, err := rig.Cluster.Master.CheckServers(); err != nil {
					t.Errorf("heartbeat round: %v", err)
				}
			},
		},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	got, err := rig.Run(partitionQuery)
	if err != nil {
		t.Fatalf("query through zombie partition: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("partitioned run differs from baseline: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if inj.Fired() == 0 {
		t.Fatal("no faults fired; the scenario did not exercise the partition")
	}
	if rig.Meter.Get(metrics.RegionsReassigned) == 0 {
		t.Error("partition did not reassign any regions")
	}
	// The zombie is alive and still holds its (superseded) regions.
	if rig.Cluster.Server(victim).RegionCount() == 0 {
		t.Fatal("partitioned server lost its region map; it should be a zombie, not a corpse")
	}

	// Acked writes through the stale-cache writer land exactly once: the
	// zombie cannot ack — its WAL is fenced and its lease is lapsing — so
	// every ack comes from the real owner after a fenced retry. Probes are
	// spread across the keyspace so some land on regions the zombie still
	// believes it holds, and use ss_quantity=1 so they stay outside
	// partitionQuery's qty>10 result set.
	const probeCustomer = 777777
	var probes []plan.Row
	for d := 1; d <= 20; d++ {
		probes = append(probes, plan.Row{int32(d), int64(9_000_000 + d), int32(probeCustomer), int32(1), int32(1), float64(0.5)})
	}
	if err := writerRel.Insert(probes); err != nil {
		t.Fatalf("write during partition: %v", err)
	}

	// The zombie self-fences once its lease lapses without master contact;
	// reads through pre-partition routing then fail with ErrFenced.
	deadline := time.Now().Add(20 * lease)
	for !rig.Cluster.Server(victim).SelfFenced() {
		if time.Now().After(deadline) {
			t.Fatal("zombie never self-fenced")
		}
		time.Sleep(lease / 4)
	}
	if _, err := rig.Client.ScanRegion(staleRI, &hbase.Scan{}); !errors.Is(err, hbase.ErrFenced) {
		t.Fatalf("read from self-fenced zombie = %v, want ErrFenced", err)
	}

	// Audit through SQL: every acked probe is visible, none lost to the
	// zombie's unfenced-looking but fenced WAL.
	audit, err := rig.Run(fmt.Sprintf(
		`SELECT ss_sold_date_sk, ss_ticket_number FROM store_sales WHERE ss_customer_sk = %d`, probeCustomer))
	if err != nil {
		t.Fatalf("audit query: %v", err)
	}
	if len(audit.Rows) != len(probes) {
		t.Fatalf("audit found %d acked probe rows, want %d", len(audit.Rows), len(probes))
	}

	// Heal and rejoin; the same query still matches the baseline (sorted:
	// the healed topology legitimately regroups partitions by host).
	rig.Cluster.Net.SetFaultInjector(nil)
	rig.Cluster.HealPartition(victim)
	if err := rig.Cluster.Master.AddServer(rig.Cluster.Server(victim)); err != nil {
		t.Fatal(err)
	}
	after, err := rig.Run(partitionQuery)
	if err != nil {
		t.Fatalf("query after heal: %v", err)
	}
	if !reflect.DeepEqual(sortRows(want.Rows), sortRows(after.Rows)) {
		t.Fatal("post-heal run differs from baseline")
	}
}

// TestRollingRestartZeroQueryErrors drains every region server in turn —
// the rolling-restart primitive — while a live query loop hammers the
// cluster. Every query must succeed with byte-identical results, and the
// whole restart must replay zero WAL entries: a graceful drain moves live
// regions, it does not recover them.
func TestRollingRestartZeroQueryErrors(t *testing.T) {
	rig, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 4,
		Retry: hbase.RetryPolicy{MaxAttempts: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	want, err := rig.Run(partitionQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("baseline returned no rows")
	}
	replayedBefore := rig.Meter.Get(metrics.WALEntriesReplayed)
	wantSorted := sortRows(want.Rows)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var mu sync.Mutex
	var queryErrs []error
	runs := 0
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			res, err := rig.Run(partitionQuery)
			mu.Lock()
			runs++
			if err != nil {
				queryErrs = append(queryErrs, err)
			} else if !reflect.DeepEqual(wantSorted, sortRows(res.Rows)) {
				queryErrs = append(queryErrs, fmt.Errorf("run %d: %d rows, want %d", runs, len(res.Rows), len(want.Rows)))
			}
			mu.Unlock()
		}
	}()

	// Roll through every server: drain, "restart", rejoin — each under live
	// query load.
	for _, host := range rig.Cluster.Hosts() {
		if err := rig.Cluster.Master.DrainServer(host); err != nil {
			t.Fatalf("drain %s: %v", host, err)
		}
		time.Sleep(10 * time.Millisecond) // queries overlap the drained state
		if err := rig.Cluster.Master.AddServer(rig.Cluster.Server(host)); err != nil {
			t.Fatalf("rejoin %s: %v", host, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(queryErrs) > 0 {
		t.Fatalf("%d of %d queries failed during rolling restart; first: %v", len(queryErrs), runs, queryErrs[0])
	}
	if runs == 0 {
		t.Fatal("query loop never completed a run")
	}
	if got := rig.Meter.Get(metrics.RegionsDrained); got == 0 {
		t.Error("rolling restart drained no regions")
	}
	if got := rig.Meter.Get(metrics.WALEntriesReplayed) - replayedBefore; got != 0 {
		t.Errorf("rolling restart replayed %d WAL entries, want 0", got)
	}
	// Final sanity: one more run after the dust settles.
	final, err := rig.Run(partitionQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantSorted, sortRows(final.Rows)) {
		t.Fatal("post-restart run differs from baseline")
	}
}

// TestStreamingSelectSurvivesGracefulDrain drains the host a streaming query
// is reading mid-page: the fused pager must re-resolve locations, restamp
// epochs, and finish byte-identical — with zero WAL replay, because a drain
// moves live regions.
func TestStreamingSelectSurvivesGracefulDrain(t *testing.T) {
	base, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(partitionQuery)
	if err != nil {
		t.Fatal(err)
	}

	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 2, FailNext: 1,
			OnFire: func() {
				if err := rig.Cluster.Master.DrainServer(victim); err != nil {
					t.Errorf("drain %s: %v", victim, err)
				}
			},
		},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	got, err := rig.Run(partitionQuery)
	if err != nil {
		t.Fatalf("query through drain: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("drained run differs from baseline: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if inj.Fired() == 0 {
		t.Fatal("no faults fired; the drain never interrupted the stream")
	}
	if got.Delta[metrics.WALEntriesReplayed] != 0 {
		t.Errorf("drain replayed %d WAL entries, want 0", got.Delta[metrics.WALEntriesReplayed])
	}
	if rig.Meter.Get(metrics.RegionsDrained) == 0 {
		t.Error("drain moved no regions")
	}
}
