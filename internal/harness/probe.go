package harness

import (
	"context"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
)

// ReadProbe issues point reads against a table from a background goroutine,
// measuring read availability through a fault: every failed read counts, and
// the longest stretch between the last success before a failure and the
// first success after it is the measured unavailability window. This is the
// instrument behind the replica experiment's headline number — with
// replication and timeline reads the window stays at zero because a crashed
// primary fails over within the read's own RPC round, while the replica-free
// strong configuration is dark until the master notices the death and
// replays the WAL.
type ReadProbe struct {
	rig         *Rig
	table       string
	rows        [][]byte
	consistency hbase.Consistency
	interval    time.Duration

	stop chan struct{}
	done chan struct{}

	mu          sync.Mutex
	report      ProbeReport
	lastSuccess time.Time
	failing     bool
}

// ProbeReport summarizes one probe run.
type ProbeReport struct {
	// Reads is the total number of read attempts.
	Reads int
	// Errors is how many attempts returned an error (after the client's
	// own retries — an error here means the read was truly unavailable).
	Errors int
	// StaleReads is how many successful reads were served by a secondary
	// replica, i.e. came back explicitly tagged stale.
	StaleReads int
	// MaxStaleMs is the largest staleness bound attached to any stale read.
	MaxStaleMs int64
	// UnavailableMs is the longest failure-spanning gap between two
	// successful reads; 0 when no read ever failed.
	UnavailableMs int64
}

// StartReadProbe launches a probe that reads the given rows round-robin
// every interval until Stop. consistency selects the read path under test:
// ConsistencyTimeline rides the replica failover, ConsistencyStrong insists
// on primaries.
func (r *Rig) StartReadProbe(table string, rows [][]byte, consistency hbase.Consistency, interval time.Duration) *ReadProbe {
	p := &ReadProbe{
		rig: r, table: table, rows: rows,
		consistency: consistency, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
		lastSuccess: time.Now(),
	}
	go p.loop()
	return p
}

func (p *ReadProbe) loop() {
	defer close(p.done)
	ctx := context.Background()
	if p.consistency == hbase.ConsistencyTimeline {
		ctx = hbase.WithConsistency(ctx, hbase.ConsistencyTimeline)
	}
	for i := 0; ; i++ {
		select {
		case <-p.stop:
			return
		default:
		}
		row := p.rows[i%len(p.rows)]
		_, fresh, err := p.rig.Client.BulkGetFresh(ctx, p.table, [][]byte{row}, nil, 1, hbase.TimeRange{})
		p.record(fresh, err)
		select {
		case <-p.stop:
			return
		case <-time.After(p.interval):
		}
	}
}

func (p *ReadProbe) record(fresh hbase.ReadFreshness, err error) {
	now := time.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	p.report.Reads++
	if err != nil {
		p.report.Errors++
		p.failing = true
		return
	}
	if p.failing {
		// First success after a failure: the dark window ran from the last
		// success straight through every failed attempt to now.
		if gap := now.Sub(p.lastSuccess).Milliseconds(); gap > p.report.UnavailableMs {
			p.report.UnavailableMs = gap
		}
		p.failing = false
	}
	p.lastSuccess = now
	if fresh.Stale {
		p.report.StaleReads++
		if fresh.BoundMs > p.report.MaxStaleMs {
			p.report.MaxStaleMs = fresh.BoundMs
		}
	}
}

// Stop halts the probe and returns its report, publishing the measured
// window as the cluster.read_unavailable_ms gauge.
func (p *ReadProbe) Stop() ProbeReport {
	close(p.stop)
	<-p.done
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.failing {
		// Still dark at shutdown: the open-ended gap counts too.
		if gap := time.Since(p.lastSuccess).Milliseconds(); gap > p.report.UnavailableMs {
			p.report.UnavailableMs = gap
		}
	}
	p.rig.Meter.SetMax(metrics.ReadUnavailableMs, p.report.UnavailableMs)
	return p.report
}
