package harness

import (
	"fmt"
	"math"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/tpcds"
)

func bootPair(t *testing.T, scale int) (*Rig, *Rig) {
	t.Helper()
	shc, err := NewRig(Config{System: SHC, Scale: scale, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewRig(Config{System: SparkSQL, Scale: scale, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shc.Close(); base.Close() })
	return shc, base
}

func TestQ39aAgreesAcrossSystems(t *testing.T) {
	shc, base := bootPair(t, 1)
	s, err := shc.Run(tpcds.Q39a())
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Run(tpcds.Q39a())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) == 0 {
		t.Fatal("q39a returned no rows; generator variance too low for the workload to be meaningful")
	}
	assertRowsEqual(t, s.Rows, b.Rows)
}

// assertRowsEqual compares result sets with a small floating-point
// tolerance: variance merges are order-dependent in the last ulp.
func assertRowsEqual(t *testing.T, a, b []plan.Row) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("row counts differ: %d vs %d", len(a), len(b))
		return
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Errorf("row %d width differs", i)
			return
		}
		for j := range a[i] {
			av, bv := a[i][j], b[i][j]
			af, aok := plan.ToFloat(av)
			bf, bok := plan.ToFloat(bv)
			if aok && bok {
				scale := math.Max(math.Abs(af), math.Abs(bf))
				if math.Abs(af-bf) > 1e-9*math.Max(scale, 1) {
					t.Errorf("row %d col %d: %v vs %v", i, j, av, bv)
					return
				}
				continue
			}
			if fmt.Sprint(av) != fmt.Sprint(bv) {
				t.Errorf("row %d col %d: %v vs %v", i, j, av, bv)
				return
			}
		}
	}
}

func TestQ39bAndQ38AgreeAcrossSystems(t *testing.T) {
	shc, base := bootPair(t, 1)
	for _, q := range []string{tpcds.Q39b(), tpcds.Q38()} {
		s, err := shc.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := base.Run(q)
		if err != nil {
			t.Fatal(err)
		}
		assertRowsEqual(t, s.Rows, b.Rows)
	}
	// q39b is a strict subset of q39a.
	a, _ := shc.Run(tpcds.Q39a())
	bb, _ := shc.Run(tpcds.Q39b())
	if len(bb.Rows) > len(a.Rows) {
		t.Errorf("q39b (%d rows) must not exceed q39a (%d rows)", len(bb.Rows), len(a.Rows))
	}
}

func TestSHCDoesLessWorkOnQ39a(t *testing.T) {
	shc, base := bootPair(t, 1)
	s, err := shc.Run(tpcds.Q39a())
	if err != nil {
		t.Fatal(err)
	}
	b, err := base.Run(tpcds.Q39a())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{metrics.RPCBytesReceived, metrics.RowsReturned, metrics.RowsScanned} {
		sv, bv := s.Delta[name], b.Delta[name]
		if sv >= bv {
			t.Errorf("%s: SHC %d vs baseline %d (SHC should be lower)", name, sv, bv)
		}
	}
	// Both engines filter before the join, so pure shuffle volume is no
	// worse for SHC; its win is on the fetch side.
	if s.Delta[metrics.ShuffleBytes] > b.Delta[metrics.ShuffleBytes] {
		t.Errorf("shuffle: SHC %d vs baseline %d", s.Delta[metrics.ShuffleBytes], b.Delta[metrics.ShuffleBytes])
	}
	if s.Delta[metrics.RegionsPruned] == 0 {
		t.Error("q39a's date filter should prune inventory regions for SHC")
	}
	if s.Delta[metrics.TasksLocal] == 0 {
		t.Error("SHC tasks should run with locality")
	}
	if b.Delta[metrics.TasksLocal] != 0 {
		t.Error("baseline tasks should not be local")
	}
}

func TestConnectionCachingOnlyForSHC(t *testing.T) {
	shc, base := bootPair(t, 1)
	if _, err := shc.Run(tpcds.Q38()); err != nil {
		t.Fatal(err)
	}
	if _, err := base.Run(tpcds.Q38()); err != nil {
		t.Fatal(err)
	}
	if shc.Meter.Get(metrics.ConnectionsReused) == 0 {
		t.Error("SHC should reuse pooled connections")
	}
	if base.Meter.Get(metrics.ConnectionsReused) != 0 {
		t.Error("baseline should not reuse connections")
	}
	if base.Meter.Get(metrics.ConnectionsCreated) <= shc.Meter.Get(metrics.ConnectionsCreated) {
		t.Errorf("baseline should create more connections: %d vs %d",
			base.Meter.Get(metrics.ConnectionsCreated), shc.Meter.Get(metrics.ConnectionsCreated))
	}
}

func TestWritePathsBothLoad(t *testing.T) {
	shc, err := NewRig(Config{System: SHC, Scale: 1, Servers: 2, SkipLoad: true})
	if err != nil {
		t.Fatal(err)
	}
	defer shc.Close()
	d, err := shc.LoadTable("item", shc.Data.Item)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Error("load must take measurable time")
	}
	res, err := shc.Run("SELECT count(1) FROM item")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != int64(len(shc.Data.Item)) {
		t.Errorf("loaded %v items, want %d", res.Rows[0][0], len(shc.Data.Item))
	}
}

func TestSystemString(t *testing.T) {
	if SHC.String() != "SHC" || SparkSQL.String() != "SparkSQL" {
		t.Error("system names wrong")
	}
}

func TestCoderVariants(t *testing.T) {
	for _, coder := range []string{"PrimitiveType", "Phoenix", "Avro"} {
		rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 2, Coder: coder})
		if err != nil {
			t.Fatalf("%s: %v", coder, err)
		}
		res, err := rig.Run("SELECT count(1) FROM inventory")
		if err != nil {
			t.Fatalf("%s: %v", coder, err)
		}
		if res.Rows[0][0].(int64) == 0 {
			t.Errorf("%s: no rows", coder)
		}
		rig.Close()
	}
}
