package harness

import (
	"context"
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/metrics"
)

// TestExplainAnalyzeOnPrunedMultiRegionScan is the acceptance test for the
// observability stack as a whole: a rowkey-range query over the inventory
// table (keyed on inv_date_sk) prunes some regions and fans out over the
// survivors, and EXPLAIN ANALYZE must report per-operator actual rows,
// bytes, and wall time plus a per-region breakdown — with the span-annotated
// row counts agreeing exactly with the metrics counters for the same query.
func TestExplainAnalyzeOnPrunedMultiRegionScan(t *testing.T) {
	rig, err := NewRig(Config{System: SHC, Servers: 3, Scale: 2, ExecutorsPerHost: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()

	// Dates span 1..360; the middle third keeps several regions in play
	// while pruning the rest of the 9-region key space.
	const q = "SELECT inv_item_sk, inv_quantity_on_hand FROM inventory WHERE inv_date_sk BETWEEN 100 AND 220"

	prunedBefore := rig.Meter.Get(metrics.RegionsPruned)
	df, err := rig.Session.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, tr, scope, phys, err := df.AnalyzeContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("query returned no rows; the range predicate is too tight to exercise anything")
	}
	if rig.Meter.Get(metrics.RegionsPruned) == prunedBefore {
		t.Error("rowkey range on inv_date_sk should have pruned regions")
	}

	// Per-operator actuals on the instrumented physical plan.
	st, ok := exec.OpStatsOf(phys)
	if !ok {
		t.Fatalf("physical plan root is not instrumented: %T", phys)
	}
	if int(st.Rows) != len(rows) {
		t.Errorf("root operator actual rows = %d, query returned %d", st.Rows, len(rows))
	}
	if st.Bytes <= 0 || st.Wall <= 0 {
		t.Errorf("root operator actuals missing: bytes=%d wall=%s", st.Bytes, st.Wall)
	}

	// The server-side span annotations must agree with the metrics counters:
	// every region.scan/region.get span carries a rows attr, and the same
	// scans bumped RowsReturned through the query-scoped registry.
	regionSpans := append(tr.Find("region.scan"), tr.Find("region.get")...)
	if len(regionSpans) == 0 {
		t.Fatalf("no server-side region spans in trace:\n%s", tr.Render())
	}
	var spanRows int64
	regions := map[string]bool{}
	for _, sp := range regionSpans {
		spanRows += sp.Attr("rows")
		if sp.Tag("region") == "" || sp.Tag("host") == "" {
			t.Fatalf("region span missing region/host tags:\n%s", tr.Render())
		}
		regions[sp.Tag("region")] = true
	}
	if len(regions) < 2 {
		t.Errorf("scan touched %d region(s); want a multi-region fan-out", len(regions))
	}
	if got := scope.Get(metrics.RowsReturned); got != spanRows {
		t.Errorf("span-annotated rows %d != scoped %s counter %d", spanRows, metrics.RowsReturned, got)
	}
	if scope.Histogram(metrics.HistQueryLatency) == nil || scope.Histogram(metrics.HistQueryLatency).Count() != 1 {
		t.Error("query latency histogram should hold exactly this query's one observation")
	}

	// The rendered report carries all three surfaces: actual-annotated plan,
	// per-region breakdown, and the trace waterfall.
	df2, err := rig.Session.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := df2.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"== Physical Plan (actual) ==",
		"(actual rows=",
		"== Per-Region Breakdown ==",
		"== Query Trace ==",
		"region.scan",
		"rows=",
	} {
		if !strings.Contains(rep, want) {
			t.Errorf("ExplainAnalyze report missing %q:\n%s", want, rep)
		}
	}
}
