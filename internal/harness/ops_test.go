package harness

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/ops"
	"github.com/shc-go/shc/internal/rpc"
)

// opsGet fetches a JSON endpoint from the rig's ops server into out.
func opsGet(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// eventsPayload mirrors the /events response envelope.
type eventsPayload struct {
	LastSeq uint64      `json:"last_seq"`
	Events  []ops.Event `json:"events"`
}

// queriesPayload mirrors the /queries response envelope.
type queriesPayload struct {
	Queries []ops.QueryStat `json:"queries"`
}

// TestOpsEndpointExposition boots a rig with the ops endpoint on, runs a
// query, and scrapes /metrics over real HTTP: the exposition must be
// structurally well-formed Prometheus text format, and /healthz must be ok.
func TestOpsEndpointExposition(t *testing.T) {
	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 2, OpsAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	if _, err := rig.Run(`SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 10`); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(rig.Ops.URL() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want text/plain exposition", ct)
	}
	if err := ops.ValidateExposition(resp.Body); err != nil {
		t.Fatalf("exposition malformed: %v", err)
	}

	hresp, err := http.Get(rig.Ops.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", hresp.StatusCode)
	}
}

// TestOpsChaosJournalCausalityEndToEnd is the ops-plane acceptance run: a
// replicated cluster takes a server crash and a region split while
// concurrent scans (same statement shape, different literals) are in
// flight. Afterwards, everything an operator would reach for must line up
// over real HTTP: /events shows the ServerFenced root cause with every
// ReplicaPromoted linking back to it, /statusz reflects the post-failover
// topology, and /queries aggregates the scans into one fingerprint whose
// retry count proves the crash was ridden out, not dodged.
func TestOpsChaosJournalCausalityEndToEnd(t *testing.T) {
	rig, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 3,
		Store:   hbase.StoreConfig{RegionReplication: 2},
		OpsAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()

	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 2, FailNext: 1,
			OnFire: func() {
				if err := rig.Cluster.CrashServer(victim); err != nil {
					t.Errorf("crash %s: %v", victim, err)
				}
				if _, err := rig.Cluster.Master.CheckServers(); err != nil {
					t.Errorf("heartbeat round: %v", err)
				}
			},
		},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	// Concurrent load: one statement shape, varying literals — every run
	// must fold into a single fingerprint entry.
	const workers, runsEach = 4, 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*runsEach)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < runsEach; i++ {
				q := fmt.Sprintf(`SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > %d`, 5+w*runsEach+i)
				if _, err := rig.Run(q); err != nil {
					errs <- fmt.Errorf("worker %d run %d: %w", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if inj.Fired() == 0 {
		t.Fatal("no faults fired; the crash never hit the load")
	}

	// A manual split on a surviving region layers a RegionSplit event on top
	// of the failover history.
	post, err := rig.Cluster.Master.TableRegions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.Cluster.Master.SplitRegion("store_sales", post[0].ID); err != nil {
		t.Fatal(err)
	}

	base := rig.Ops.URL()

	// /events: the fencing is the root; every promotion cites it.
	var fenced eventsPayload
	opsGet(t, base+"/events?type=ServerFenced&server="+victim, &fenced)
	if len(fenced.Events) != 1 {
		t.Fatalf("ServerFenced events for %s = %+v, want exactly 1", victim, fenced.Events)
	}
	root := fenced.Events[0].Seq

	var promoted eventsPayload
	opsGet(t, base+"/events?type=ReplicaPromoted", &promoted)
	if len(promoted.Events) == 0 {
		t.Fatal("replicated crash produced no ReplicaPromoted events")
	}
	for _, e := range promoted.Events {
		if e.Cause != root {
			t.Errorf("ReplicaPromoted %s: cause = %d, want %d (the ServerFenced seq)", e.Region, e.Cause, root)
		}
		if e.Server == victim {
			t.Errorf("ReplicaPromoted %s landed on the dead server", e.Region)
		}
	}

	var splits eventsPayload
	opsGet(t, base+"/events?type=RegionSplit", &splits)
	if len(splits.Events) != 1 || splits.Events[0].Region != post[0].ID {
		t.Errorf("RegionSplit events = %+v, want exactly one for %s", splits.Events, post[0].ID)
	}

	// /statusz: the dead server is down and hosts nothing.
	var st ops.ClusterStatus
	opsGet(t, base+"/statusz", &st)
	foundVictim := false
	for _, ss := range st.Servers {
		if ss.Host == victim {
			foundVictim = true
			if ss.Live {
				t.Errorf("crashed server %s reported live in /statusz", victim)
			}
		}
	}
	if !foundVictim {
		t.Errorf("victim %s missing from /statusz servers", victim)
	}
	if len(st.Regions) == 0 {
		t.Fatal("/statusz reports no regions")
	}
	for _, r := range st.Regions {
		if r.Server == victim {
			t.Errorf("region %s still placed on dead server in /statusz", r.Name)
		}
		if r.Epoch == 0 {
			t.Errorf("region %s has epoch 0 in /statusz", r.Name)
		}
	}

	// /queries: all runs share one store_sales fingerprint, and the crash
	// shows up as client retries folded into it.
	var qs queriesPayload
	opsGet(t, base+"/queries", &qs)
	var scan *ops.QueryStat
	for i := range qs.Queries {
		if strings.Contains(qs.Queries[i].Shape, "store_sales") {
			if scan != nil {
				t.Fatalf("store_sales scans fragmented into several fingerprints: %q and %q",
					scan.Shape, qs.Queries[i].Shape)
			}
			scan = &qs.Queries[i]
		}
	}
	if scan == nil {
		t.Fatal("/queries has no store_sales fingerprint")
	}
	if scan.Count != workers*runsEach {
		t.Errorf("fingerprint count = %d, want %d", scan.Count, workers*runsEach)
	}
	if !strings.Contains(scan.Shape, "?") {
		t.Errorf("shape not literal-masked: %q", scan.Shape)
	}
	if scan.Retries == 0 {
		t.Error("fingerprint shows zero retries; the crash left no trace on the workload")
	}
	if scan.Rows == 0 {
		t.Error("fingerprint shows zero rows")
	}
}
