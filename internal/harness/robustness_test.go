package harness

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/rpc"
)

const robustnessQuery = `SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10`

// TestStragglerHedgedSelect is the tail-latency acceptance scenario: one
// region server answers every other fused page 100ms late. A session with
// hedged reads must complete the multi-region SELECT under its deadline —
// the speculative duplicates land on fast slots and win — with results
// byte-identical to an undisturbed run.
func TestStragglerHedgedSelect(t *testing.T) {
	base, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(robustnessQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("baseline returned no rows; the straggler run would be vacuous")
	}

	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3,
		HedgeDelay:   2 * time.Millisecond,
		QueryTimeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	straggler := regions[0].Host
	// Every other fused page from the straggler stalls 100ms — far past the
	// hedge delay, so the duplicate fires and (landing on a fast slot) wins.
	rig.Cluster.Net.SetFaultInjector(rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{Host: straggler, Method: hbase.MethodFused, ExtraLatency: 100 * time.Millisecond, LatencyEvery: 2},
	))

	got, err := rig.Run(robustnessQuery)
	if err != nil {
		t.Fatalf("hedged query through straggler: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("straggler run differs from baseline: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if got.Delta[metrics.RPCHedges] == 0 {
		t.Error("no hedges fired against the straggler")
	}
	if got.Delta[metrics.RPCHedgeWins] == 0 {
		t.Error("hedge_wins = 0; the duplicates never beat the stall")
	}
}

// TestSaturatedServerShedsWithoutQueryFailure is the overload acceptance
// scenario: every region server is bounded to one in-flight RPC with a
// one-deep queue and non-trivial service time. A single SHC query streams
// one fused pipeline per server and never overruns that, so the pressure
// comes from concurrent queries: they collide at the gate, the servers shed
// with ErrServerBusy, and every query still succeeds — shed requests back
// off and resend, and crucially no region moves (overload is not death).
func TestSaturatedServerShedsWithoutQueryFailure(t *testing.T) {
	base, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(robustnessQuery)
	if err != nil {
		t.Fatal(err)
	}

	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3,
		ExecutorsPerHost: 4,
		ServerLimits:     hbase.ServerLimits{MaxInFlight: 1, MaxQueue: 3, ServiceTime: time.Millisecond},
		// Six queries colliding at a one-slot gate need a backoff budget that
		// outlasts the contention window (which -race stretches), not the
		// default four attempts.
		Retry: hbase.RetryPolicy{MaxAttempts: 15, BaseBackoff: 2 * time.Millisecond, MaxBackoff: 50 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()

	const queries = 6
	errs := make([]error, queries)
	rows := make([][]plan.Row, queries)
	var wg sync.WaitGroup
	for i := 0; i < queries; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var res Result
			res, errs[i] = rig.Run(robustnessQuery)
			rows[i] = res.Rows
		}(i)
	}
	wg.Wait()
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("query %d failed through overload: %v", i, errs[i])
		}
		if !reflect.DeepEqual(want.Rows, rows[i]) {
			t.Fatalf("query %d rows differ under overload: %d vs %d", i, len(rows[i]), len(want.Rows))
		}
	}
	if got := rig.Meter.Get(metrics.ServerShed); got == 0 {
		t.Error("server.requests_shed = 0; the load never overran admission control")
	}
	if got := rig.Meter.Get(metrics.RegionsReassigned); got != 0 {
		t.Errorf("%d regions reassigned; shedding must not look like death", got)
	}
}

// TestCancelMidStreamingSelect cancels a streaming SELECT while its fused
// pages are in flight: the call must return the context's error promptly,
// count the cancellation, and leak no goroutines — the prefetcher, workers,
// and latency sleeps all unwind.
func TestCancelMidStreamingSelect(t *testing.T) {
	rig, err := NewRig(Config{System: SHC, Scale: 2, Servers: 3,
		RPC: rpc.Config{CallLatency: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond) // let the scan get airborne
		cancel()
	}()
	start := time.Now()
	_, err = rig.RunContext(ctx, robustnessQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation must cut the query short, not wait out the full scan.
	if elapsed > 5*time.Second {
		t.Errorf("cancelled query took %v to return", elapsed)
	}
	if got := rig.Meter.Get(metrics.QueriesCancelled); got == 0 {
		t.Error("cancelled query not counted in engine.queries_cancelled")
	}

	// Every goroutine the run spawned must unwind after cancellation.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The rig stays usable: the same query runs to completion afterwards.
	if _, err := rig.Run(robustnessQuery); err != nil {
		t.Fatalf("query after cancellation: %v", err)
	}
}

// TestQueryTimeoutBoundsSlowQuery: with every fused page stalled far past
// the session's QueryTimeout, the query fails with DeadlineExceeded quickly
// — the injected latency sleeps abort instead of serving out.
func TestQueryTimeoutBoundsSlowQuery(t *testing.T) {
	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3,
		QueryTimeout: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	rig.Cluster.Net.SetFaultInjector(rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{Method: hbase.MethodFused, ExtraLatency: 2 * time.Second},
	))
	start := time.Now()
	_, err = rig.Run(robustnessQuery)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if elapsed > time.Second {
		t.Errorf("20ms-deadline query took %v; injected sleeps did not abort", elapsed)
	}
	if got := rig.Meter.Get(metrics.QueriesCancelled); got == 0 {
		t.Error("timed-out query not counted in engine.queries_cancelled")
	}
}
