package harness

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// chaosSeed seeds every injector in this file. CI sweeps it via the
// CHAOS_SEED environment variable; any fixed value gives a reproducible
// failure schedule.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	s := os.Getenv("CHAOS_SEED")
	if s == "" {
		return 1
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
	}
	return n
}

// TestStreamingSelectSurvivesServerCrash is the tentpole end-to-end chaos
// scenario: a multi-region streaming SELECT is underway when the region
// server it is reading from crashes (injected at an exact fused page, so the
// schedule is deterministic). The master detects the death, replays WALs,
// and reassigns the regions; the in-flight query must resume on the new
// hosts and return results byte-identical to an undisturbed run.
func TestStreamingSelectSurvivesServerCrash(t *testing.T) {
	const q = `SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10`

	// Fault-free baseline on an identically-configured rig.
	base, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("baseline returned no rows; the chaos run would be vacuous")
	}

	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host

	// Rule 1 crashes the victim at its third fused page: the server drops
	// off the network mid-stream and the master's heartbeat round reassigns
	// its regions before the failing call even returns to the client. Rule 2
	// layers seeded random connection kills on every fused call, so
	// different CHAOS_SEED values exercise different transient schedules.
	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 2, FailNext: 1,
			OnFire: func() {
				if err := rig.Cluster.CrashServer(victim); err != nil {
					t.Errorf("crash %s: %v", victim, err)
				}
				if _, err := rig.Cluster.Master.CheckServers(); err != nil {
					t.Errorf("heartbeat round: %v", err)
				}
			},
		},
		&rpc.FaultRule{Method: hbase.MethodFused, SkipFirst: 3, FailProb: 0.03, Err: rpc.ErrConnClosed},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	got, err := rig.Run(q)
	if err != nil {
		t.Fatalf("query through crash: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("chaos run differs from baseline: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if inj.Fired() == 0 {
		t.Fatal("no faults fired; the scenario did not exercise recovery")
	}
	if got.Delta[metrics.RegionsReassigned] == 0 {
		t.Error("crash did not reassign any regions")
	}
	if got.Delta[metrics.WALEntriesReplayed] == 0 {
		t.Error("reassignment did not replay WAL entries")
	}
	if got.Delta[metrics.ClientRetries]+got.Delta[metrics.TasksRetried] == 0 {
		t.Error("recovery metered neither client retries nor task re-executions")
	}
	// The dead server is gone from the cluster's view; its regions live on
	// the survivors.
	total := 0
	for _, rs := range rig.Cluster.Servers {
		if rs.Host() != victim {
			total += rs.RegionCount()
		}
	}
	if got := rig.Cluster.Server(victim).RegionCount(); got != 0 {
		t.Errorf("dead server still hosts %d regions", got)
	}
	if total == 0 {
		t.Error("survivors host no regions")
	}
}

// TestChaosScheduleIsDeterministic runs the same seeded chaos query twice on
// fresh rigs and demands identical fault schedules and identical results —
// the property that makes chaos failures replayable from just a seed.
func TestChaosScheduleIsDeterministic(t *testing.T) {
	run := func() ([]int, int) {
		rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
		if err != nil {
			t.Fatal(err)
		}
		defer rig.Close()
		inj := rpc.NewFaultInjector(chaosSeed(t),
			&rpc.FaultRule{Method: hbase.MethodFused, FailProb: 0.05, Err: rpc.ErrConnClosed},
		)
		rig.Cluster.Net.SetFaultInjector(inj)
		res, err := rig.Run(`SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10`)
		if err != nil {
			t.Fatal(err)
		}
		shape := []int{len(res.Rows), int(res.Delta[metrics.FaultsInjected])}
		return shape, inj.Fired()
	}
	shapeA, firedA := run()
	shapeB, firedB := run()
	if !reflect.DeepEqual(shapeA, shapeB) || firedA != firedB {
		t.Fatalf("seeded chaos diverged: %v/%d vs %v/%d", shapeA, firedA, shapeB, firedB)
	}
}

// TestQueryAgainstDeadClusterStillFails: fault tolerance must not turn into
// infinite retry — with every region server down and nothing to reassign to,
// a query errors out after the bounded retry budget.
func TestQueryAgainstDeadClusterStillFails(t *testing.T) {
	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	for _, h := range rig.Cluster.Hosts() {
		if err := rig.Cluster.Net.SetDown(h, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rig.Run(`SELECT ss_item_sk FROM store_sales`); err == nil {
		t.Fatal("query against a fully dead cluster must fail, not hang")
	}
}
