package harness

import (
	"testing"

	"github.com/shc-go/shc/internal/metrics"
)

// bootStreamingPair boots two identical SHC rigs differing only in whether
// fused scan pipelines stream or every operator materializes.
func bootStreamingPair(t *testing.T) (streamed, materialized *Rig) {
	t.Helper()
	s, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3, DisablePipelining: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); m.Close() })
	return s, m
}

// TestLimitScansFewerRowsWhenStreamed pins the end-to-end LIMIT pushdown:
// the streamed pipeline forwards the limit into hbase.Scan.Limit and stops
// paging once satisfied, so the region servers scan measurably fewer rows
// than the materialized plan, which drains every region before truncating.
func TestLimitScansFewerRowsWhenStreamed(t *testing.T) {
	streamed, materialized := bootStreamingPair(t)
	const q = `SELECT ss_item_sk, ss_quantity FROM store_sales LIMIT 10`
	s, err := streamed.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := materialized.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 10 || len(m.Rows) != 10 {
		t.Fatalf("rows = %d streamed, %d materialized, want 10 each", len(s.Rows), len(m.Rows))
	}
	assertRowsEqual(t, s.Rows, m.Rows)
	ss, ms := s.Delta[metrics.RowsScanned], m.Delta[metrics.RowsScanned]
	if ss == 0 || ms == 0 {
		t.Fatalf("scan counters not tracked: streamed=%d materialized=%d", ss, ms)
	}
	if ss >= ms {
		t.Errorf("streamed LIMIT scanned %d rows, materialized scanned %d; pushdown must scan fewer", ss, ms)
	}
	if s.Delta[metrics.BatchesStreamed] == 0 {
		t.Error("streamed rig must execute through the batch pipeline")
	}
	if m.Delta[metrics.BatchesStreamed] != 0 {
		t.Error("materialized rig must not stream batches")
	}
}

// TestResidualPredicateShortCircuits pins over-delivery accounting: NOT IN
// never pushes into the HBase filter seam, so the pipeline keeps a residual
// predicate, cannot forward the limit to the servers, and instead cuts
// delivered batches locally — which must show up in RowsShortCircuited.
func TestResidualPredicateShortCircuits(t *testing.T) {
	streamed, materialized := bootStreamingPair(t)
	const q = `SELECT i_item_id FROM item WHERE i_category NOT IN ('Music') LIMIT 5`
	s, err := streamed.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := materialized.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, s.Rows, m.Rows)
	if len(s.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(s.Rows))
	}
	if s.Delta[metrics.RowsShortCircuited] == 0 {
		t.Error("residual-filter LIMIT must drop over-delivered rows unprocessed")
	}
}

// TestStreamedPeakMemoryLower pins the memory claim on a full-table scan
// with a selective filter: identical MemoryCharged (same rows decoded) but
// a lower high-water mark, because batches release after processing.
func TestStreamedPeakMemoryLower(t *testing.T) {
	streamed, materialized := bootStreamingPair(t)
	const q = `SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 10`
	s, err := streamed.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	m, err := materialized.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	assertRowsEqual(t, s.Rows, m.Rows)
	sp, mp := s.Delta[metrics.MemoryPeak], m.Delta[metrics.MemoryPeak]
	if sp == 0 || mp == 0 {
		t.Fatalf("peaks not tracked: streamed=%d materialized=%d", sp, mp)
	}
	if sp >= mp {
		t.Errorf("streamed peak %d should be below materialized peak %d", sp, mp)
	}
	if s.Delta[metrics.PagesPrefetched] == 0 {
		t.Error("streamed scan should prefetch fused pages")
	}
}
