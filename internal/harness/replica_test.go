package harness

import (
	"reflect"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/rpc"
)

// runTimeline executes query under timeline consistency on the rig's
// session, returning the rows.
func runTimeline(t *testing.T, rig *Rig, query string) []plan.Row {
	t.Helper()
	df, err := rig.Session.SQL(query)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.WithConsistency(datasource.ConsistencyTimeline).Collect()
	if err != nil {
		t.Fatalf("timeline query: %v", err)
	}
	return rows
}

// TestTimelineFusedScanFailoverByteIdentical crashes the primary region
// server a vectorized fused scan is reading — before the master has any
// chance to notice — and requires the timeline run to finish with results
// byte-identical to the undisturbed strong baseline: the pager's replica
// failover changes where rows are read, never what rows are read. The rig
// runs the default vectorized pipeline, so this is also the composition
// proof for replica failover inside ComputeVectors.
func TestTimelineFusedScanFailoverByteIdentical(t *testing.T) {
	// The undisturbed baseline runs the SAME replicated topology (replica
	// placement shifts load-based primary assignment, legitimately changing
	// partition order), so the comparison below is positional byte-identity.
	base, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 3,
		Store: hbase.StoreConfig{RegionReplication: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(partitionQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("baseline returned no rows")
	}

	rig, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 3,
		Store: hbase.StoreConfig{RegionReplication: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 1, FailNext: 1,
			OnFire: func() {
				// Kill the primary's host; deliberately no heartbeat round —
				// the master still believes the corpse serves its regions,
				// so only replica failover can finish the query.
				if err := rig.Cluster.CrashServer(victim); err != nil {
					t.Errorf("crash %s: %v", victim, err)
				}
			},
		},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	got := runTimeline(t, rig, partitionQuery)
	if !reflect.DeepEqual(want.Rows, got) {
		t.Fatalf("timeline failover run differs from strong baseline: %d rows vs %d", len(got), len(want.Rows))
	}
	if inj.Fired() == 0 {
		t.Fatal("no faults fired; the crash never interrupted the stream")
	}
	if rig.Meter.Get(metrics.ReplicaFailovers) == 0 {
		t.Error("query finished without any replica failover; the scenario is vacuous")
	}
	if rig.Meter.Get(metrics.ReplicaReads) == 0 {
		t.Error("no reads served by replicas")
	}
	// The master never ran a heartbeat round: zero reassignments, zero WAL
	// replay — availability came entirely from the replicas.
	if got := rig.Meter.Get(metrics.RegionsReassigned); got != 0 {
		t.Errorf("reassignments = %d, want 0 (master must not have noticed)", got)
	}
}

// TestReplicaPromotionComposesWithZombieFencing runs the zombie-partition
// scenario on a replicated table: the master declares the partitioned
// primary dead and — instead of the replay-from-WAL reopen — promotes the
// region's replica under a bumped epoch. The in-flight strong query must
// finish byte-identical, the zombie's writes stay fenced, and recovery must
// replay zero WAL entries (promotion starts from an already-serving copy).
func TestReplicaPromotionComposesWithZombieFencing(t *testing.T) {
	// The undisturbed baseline runs the SAME replicated topology (replica
	// placement shifts load-based primary assignment, legitimately changing
	// partition order), so the comparison below is positional byte-identity.
	base, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 3,
		Store: hbase.StoreConfig{RegionReplication: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(partitionQuery)
	if err != nil {
		t.Fatal(err)
	}

	rig, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 3,
		Store: hbase.StoreConfig{RegionReplication: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	replayedBefore := rig.Meter.Get(metrics.WALEntriesReplayed)
	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 1, FailNext: 1,
			OnFire: func() {
				if err := rig.Cluster.PartitionServer(victim, hbase.PartitionFromMaster); err != nil {
					t.Errorf("partition %s: %v", victim, err)
				}
				if _, err := rig.Cluster.Master.CheckServers(); err != nil {
					t.Errorf("heartbeat round: %v", err)
				}
			},
		},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	got, err := rig.Run(partitionQuery)
	if err != nil {
		t.Fatalf("strong query through promotion: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("promoted run differs from baseline: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if inj.Fired() == 0 {
		t.Fatal("no faults fired")
	}
	if rig.Meter.Get(metrics.Promotions) == 0 {
		t.Error("zombie partition on a replicated table promoted no replicas")
	}
	if got := rig.Meter.Get(metrics.WALEntriesReplayed) - replayedBefore; got != 0 {
		t.Errorf("promotion replayed %d WAL entries, want 0 — the replica was already caught up", got)
	}
}

// TestReplicaComposesWithGracefulDrain drains a server of a replicated
// table mid-query: primaries move with epoch adoption, secondary copies
// move live with no epoch bump, and the stream finishes byte-identical.
// Afterwards every region still has its replica on a host distinct from its
// primary.
func TestReplicaComposesWithGracefulDrain(t *testing.T) {
	// The undisturbed baseline runs the SAME replicated topology (replica
	// placement shifts load-based primary assignment, legitimately changing
	// partition order), so the comparison below is positional byte-identity.
	base, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 3,
		Store: hbase.StoreConfig{RegionReplication: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(partitionQuery)
	if err != nil {
		t.Fatal(err)
	}

	rig, err := NewRig(Config{
		System: SHC, Scale: 1, Servers: 3,
		Store: hbase.StoreConfig{RegionReplication: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 2, FailNext: 1,
			OnFire: func() {
				if err := rig.Cluster.Master.DrainServer(victim); err != nil {
					t.Errorf("drain %s: %v", victim, err)
				}
			},
		},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	got, err := rig.Run(partitionQuery)
	if err != nil {
		t.Fatalf("query through drain: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("drained run differs from baseline: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if rig.Meter.Get(metrics.RegionsDrained) == 0 {
		t.Error("drain moved no regions")
	}
	rig.Client.InvalidateRegions("store_sales")
	after, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	for _, ri := range after {
		if ri.Host == victim {
			t.Errorf("region %s primary still on drained host", ri.ID)
		}
		for n, h := range ri.ReplicaHosts {
			if h == victim {
				t.Errorf("region %s replica %d still on drained host", ri.ID, n+1)
			}
			if h != "" && h == ri.Host {
				t.Errorf("region %s replica %d landed on its primary's host", ri.ID, n+1)
			}
		}
	}
}
