package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
)

// errMasterDeath simulates the active master dying at a chosen stage of a
// coordination transaction (split, drain): the stage hook returns it, the
// operation aborts right there, and the cluster is crashed before any
// cleanup can run — the journal and partial state are the next master's
// problem.
var errMasterDeath = errors.New("injected master death")

// haRig boots a rig with hot standby masters, duty loops on a tight
// interval, and a retry budget generous enough to ride out a takeover.
func haRig(t *testing.T, servers, masters int, store hbase.StoreConfig) *Rig {
	t.Helper()
	rig, err := NewRig(Config{
		System: SHC, Servers: servers, Masters: masters, SkipLoad: true,
		Heartbeat: 2 * time.Millisecond,
		Store:     store,
		Retry:     hbase.RetryPolicy{MaxAttempts: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)
	return rig
}

// awaitNewMaster polls until a master other than old leads.
func awaitNewMaster(t *testing.T, rig *Rig, old *hbase.Master) *hbase.Master {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if m := rig.Cluster.ActiveMaster(); m != old {
			return m
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("no standby took over")
	return nil
}

// awaitEvent polls until the journal holds at least one event of type et.
func awaitEvent(t *testing.T, rig *Rig, et ops.EventType) ops.Event {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if evs := rig.Journal().Find(et); len(evs) > 0 {
			return evs[0]
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("journal never recorded %s", et)
	return ops.Event{}
}

// seedHATable creates a pre-split table and loads rows row-000..row-(n-1).
func seedHATable(t *testing.T, rig *Rig, name string, n int) [][]byte {
	t.Helper()
	splits := [][]byte{[]byte("row-" + fmt.Sprintf("%03d", n/3)), []byte("row-" + fmt.Sprintf("%03d", 2*n/3))}
	if err := rig.Client.CreateTable(hbase.TableDescriptor{Name: name, Families: []string{"cf"}}, splits); err != nil {
		t.Fatal(err)
	}
	var cells []hbase.Cell
	var rows [][]byte
	for i := 0; i < n; i++ {
		row := []byte(fmt.Sprintf("row-%03d", i))
		rows = append(rows, row)
		cells = append(cells, hbase.Cell{
			Row: row, Family: "cf", Qualifier: "q",
			Timestamp: 1, Type: hbase.TypePut, Value: []byte(fmt.Sprintf("v-%03d", i)),
		})
	}
	if err := rig.Client.Put(name, cells); err != nil {
		t.Fatal(err)
	}
	return rows
}

// haIngest streams cells into the table from a background goroutine through
// a BufferedMutator until stopped. Every mutation accepted (and the final
// Close) without error is acked — the durability contract the gate audits.
type haIngest struct {
	stop     chan struct{}
	done     chan struct{}
	accepted int
	err      error
}

func startHAIngest(rig *Rig, table, prefix string) *haIngest {
	ing := &haIngest{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(ing.done)
		ctx := context.Background()
		mut := rig.Client.NewMutator(table, hbase.MutatorConfig{
			WriterID: "ha-" + prefix, FlushBytes: 256, MaxAttempts: 40,
		})
		for i := 0; ; i++ {
			select {
			case <-ing.stop:
				if err := mut.Close(ctx); err != nil {
					ing.err = fmt.Errorf("close: %w", err)
				}
				return
			default:
			}
			c := hbase.Cell{
				Row: []byte(fmt.Sprintf("%s-%04d", prefix, i)), Family: "cf", Qualifier: "q",
				Timestamp: 1, Type: hbase.TypePut, Value: []byte(fmt.Sprintf("w-%04d", i)),
			}
			if err := mut.Mutate(ctx, c); err != nil {
				ing.err = fmt.Errorf("mutate %d: %w", i, err)
				_ = mut.Close(ctx)
				return
			}
			ing.accepted++
			time.Sleep(100 * time.Microsecond)
		}
	}()
	return ing
}

// finish stops the writer and returns how many rows were acked.
func (ing *haIngest) finish(t *testing.T) int {
	t.Helper()
	close(ing.stop)
	<-ing.done
	if ing.err != nil {
		t.Fatalf("ingest writer: %v", ing.err)
	}
	return ing.accepted
}

// TestMasterFailoverAvailabilityGate is the PR's acceptance gate. With two
// hot standbys, the active master is crashed in the middle of a split
// transaction while point reads and buffered ingest run against the table.
// The bar:
//
//   - zero query errors across the failover (the client rides it out on
//     retries and master re-discovery);
//   - zero lost acked writes;
//   - takeover is automatic — the test never elects, recovers, or prods;
//   - the orphaned split journal is settled by the new master, with the
//     journal chain MasterElected → SplitRolledBack carrying the causal link;
//   - the revived zombie master's coordination writes die un-acked with
//     ErrMasterFenced, metered as master.fenced_writes.
func TestMasterFailoverAvailabilityGate(t *testing.T) {
	rig := haRig(t, 3, 3, hbase.StoreConfig{})
	rows := seedHATable(t, rig, "ha", 60)

	regions, err := rig.Client.Regions("ha")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 3 {
		t.Fatalf("seed regions = %d, want 3", len(regions))
	}
	parent := regions[0].ID

	// Live load: strong point reads over seeded rows + a buffered writer
	// streaming fresh rows (keyed into the region about to split).
	probe := rig.StartReadProbe("ha", rows[:6], hbase.ConsistencyStrong, time.Millisecond)
	ingest := startHAIngest(rig, "ha", "mut")

	// The split aborts after the daughters were cut but before any server
	// hosts them — recovery re-learns only the fenced parent and must roll
	// BACK — and the master dies on the spot, orphaning the split journal.
	boot := rig.Cluster.ActiveMaster()
	boot.SetSplitHook(func(stage string) error {
		if stage == "split" {
			return errMasterDeath
		}
		return nil
	})
	if err := boot.SplitRegion("ha", parent); !errors.Is(err, errMasterDeath) {
		t.Fatalf("aborted split returned %v", err)
	}
	zombie, err := rig.Cluster.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}

	// From here everything is the cluster's own doing: watch fires, a
	// standby wins, recovers, settles the split, re-arms duties.
	nm := awaitNewMaster(t, rig, zombie)
	failover := awaitEvent(t, rig, ops.EventMasterFailover)

	// Let the load run on the new regime for a beat before auditing.
	time.Sleep(20 * time.Millisecond)
	accepted := ingest.finish(t)
	report := probe.Stop()

	// Zero query errors: every read attempt across abort, crash, masterless
	// window, and takeover succeeded (within the client's own retries).
	if report.Errors != 0 {
		t.Errorf("query errors across failover = %d of %d reads, want 0", report.Errors, report.Reads)
	}
	if report.Reads == 0 {
		t.Error("probe never read; the gate was vacuous")
	}
	if accepted == 0 {
		t.Error("ingest never acked a row; the gate was vacuous")
	}

	// Zero lost acked writes: every row the mutator acked is in the table.
	rig.Client.InvalidateRegions("ha")
	got, err := rig.Client.ScanTable("ha", &hbase.Scan{StartRow: []byte("mut-"), StopRow: []byte("mut-~")})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != accepted {
		t.Errorf("ingested rows after failover = %d, want %d acked", len(got), accepted)
	}
	seeded, err := rig.Client.ScanTable("ha", &hbase.Scan{StartRow: []byte("row-"), StopRow: []byte("row-~")})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeded) != len(rows) {
		t.Errorf("seeded rows after failover = %d, want %d", len(seeded), len(rows))
	}

	// The causal chain: MasterElected → SplitRolledBack, and the failover
	// event closing the takeover points back at the election.
	elected := rig.Journal().Find(ops.EventMasterElected)
	if len(elected) != 1 {
		t.Fatalf("MasterElected events = %d, want 1", len(elected))
	}
	if failover.Cause != elected[0].Seq {
		t.Errorf("MasterFailover.Cause = %d, want MasterElected seq %d", failover.Cause, elected[0].Seq)
	}
	rolled := rig.Journal().Find(ops.EventSplitRolledBack)
	if len(rolled) != 1 {
		t.Fatalf("SplitRolledBack events = %d, want 1", len(rolled))
	}
	if rolled[0].Cause != elected[0].Seq {
		t.Errorf("SplitRolledBack.Cause = %d, want MasterElected seq %d", rolled[0].Cause, elected[0].Seq)
	}
	if rolled[0].Region != parent {
		t.Errorf("SplitRolledBack.Region = %s, want %s", rolled[0].Region, parent)
	}
	if got := rig.Meter.Get(metrics.MasterTakeovers); got != 1 {
		t.Errorf("master.takeovers = %d, want 1", got)
	}

	// The zombie revives from its GC pause and tries to govern: every
	// coordination write must die un-acked.
	if err := rig.Cluster.Net.SetDown(zombie.Host(), false); err != nil {
		t.Fatal(err)
	}
	fencedBefore := rig.Meter.Get(metrics.MasterFencedWrites)
	if err := zombie.SplitRegion("ha", parent); !errors.Is(err, hbase.ErrMasterFenced) {
		t.Errorf("zombie SplitRegion err = %v, want ErrMasterFenced", err)
	}
	if _, err := zombie.CheckServers(); !errors.Is(err, hbase.ErrMasterFenced) {
		t.Errorf("zombie CheckServers err = %v, want ErrMasterFenced", err)
	}
	if got := rig.Meter.Get(metrics.MasterFencedWrites); got <= fencedBefore {
		t.Errorf("master.fenced_writes = %d, want > %d", got, fencedBefore)
	}
	// And the fenced attempts changed nothing the new master governs.
	if _, err := nm.CheckServers(); err != nil {
		t.Errorf("real leader heartbeat round after zombie attempts: %v", err)
	}
}

// TestMasterKillMidSplitRollForwardTakeover is the roll-FORWARD twin of the
// gate: the master dies after the meta swap (daughters hosted and in meta),
// so the new master must keep the daughters, retire the journal, and link
// SplitRolledForward to its own election.
func TestMasterKillMidSplitRollForwardTakeover(t *testing.T) {
	rig := haRig(t, 3, 2, hbase.StoreConfig{})
	rows := seedHATable(t, rig, "fw", 30)

	regions, err := rig.Client.Regions("fw")
	if err != nil {
		t.Fatal(err)
	}
	parent := regions[0].ID
	boot := rig.Cluster.ActiveMaster()
	boot.SetSplitHook(func(stage string) error {
		if stage == "meta-updated" {
			return errMasterDeath
		}
		return nil
	})
	if err := boot.SplitRegion("fw", parent); !errors.Is(err, errMasterDeath) {
		t.Fatalf("aborted split returned %v", err)
	}
	zombie, err := rig.Cluster.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	awaitNewMaster(t, rig, zombie)
	awaitEvent(t, rig, ops.EventMasterFailover)

	elected := rig.Journal().Find(ops.EventMasterElected)
	forward := rig.Journal().Find(ops.EventSplitRolledForward)
	if len(elected) != 1 || len(forward) != 1 {
		t.Fatalf("elected=%d forward=%d events, want 1 each", len(elected), len(forward))
	}
	if forward[0].Cause != elected[0].Seq {
		t.Errorf("SplitRolledForward.Cause = %d, want %d", forward[0].Cause, elected[0].Seq)
	}
	rig.Client.InvalidateRegions("fw")
	after, err := rig.Client.Regions("fw")
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(regions)+1 {
		t.Errorf("regions after roll-forward = %d, want %d", len(after), len(regions)+1)
	}
	got, err := rig.Client.ScanTable("fw", &hbase.Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Errorf("rows after roll-forward = %d, want %d", len(got), len(rows))
	}
}

// TestMasterKillMidDrainTakeover kills the master between a drain's roster
// deregistration and the region moves: the victim server is off the roster
// but still hosts everything. The new master re-learns it from the servers
// themselves, so no region (and no row) is lost and the cluster keeps
// accepting writes.
func TestMasterKillMidDrainTakeover(t *testing.T) {
	rig := haRig(t, 3, 2, hbase.StoreConfig{})
	rows := seedHATable(t, rig, "dr", 30)

	probe := rig.StartReadProbe("dr", rows[:6], hbase.ConsistencyStrong, time.Millisecond)

	boot := rig.Cluster.ActiveMaster()
	var once sync.Once
	boot.SetDrainHook(func(stage string) error {
		var err error
		if stage == "move" {
			once.Do(func() { err = errMasterDeath })
		}
		return err
	})
	victim := rig.Cluster.Servers[0].Host()
	if err := boot.DrainServer(victim); !errors.Is(err, errMasterDeath) {
		t.Fatalf("aborted drain returned %v", err)
	}
	zombie, err := rig.Cluster.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	nm := awaitNewMaster(t, rig, zombie)
	awaitEvent(t, rig, ops.EventMasterFailover)
	time.Sleep(10 * time.Millisecond)

	report := probe.Stop()
	if report.Errors != 0 {
		t.Errorf("query errors across mid-drain failover = %d of %d reads, want 0", report.Errors, report.Reads)
	}
	// The half-drained server is back on the roster: a heartbeat round from
	// the new master declares nobody dead.
	dead, err := nm.CheckServers()
	if err != nil {
		t.Fatal(err)
	}
	if len(dead) != 0 {
		t.Errorf("heartbeat after takeover declared %v dead, want none", dead)
	}
	rig.Client.InvalidateRegions("dr")
	got, err := rig.Client.ScanTable("dr", &hbase.Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Errorf("rows after mid-drain failover = %d, want %d", len(got), len(rows))
	}
	if err := rig.Client.Put("dr", []hbase.Cell{{
		Row: []byte("row-999"), Family: "cf", Qualifier: "q",
		Timestamp: 2, Type: hbase.TypePut, Value: []byte("after"),
	}}); err != nil {
		t.Errorf("write after mid-drain failover: %v", err)
	}
}

// TestMasterKillMidPromotionTakeover crashes a region server and the master
// back-to-back, before any heartbeat round could promote the dead server's
// replicas. The new master re-learns only secondary copies for those regions
// and must settle the orphaned promotion itself during recovery — journaled
// as ReplicaPromoted caused by its own election.
func TestMasterKillMidPromotionTakeover(t *testing.T) {
	// No heartbeat loop: nothing may notice the server crash before the
	// master dies — the orphaned promotion must be settled by recovery
	// alone, which keeps the scenario deterministic.
	rig, err := NewRig(Config{
		System: SHC, Servers: 3, Masters: 2, SkipLoad: true,
		Store: hbase.StoreConfig{RegionReplication: 2},
		Retry: hbase.RetryPolicy{MaxAttempts: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)
	rows := seedHATable(t, rig, "pr", 30)

	regions, err := rig.Client.Regions("pr")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host
	if err := rig.Cluster.CrashServer(victim); err != nil {
		t.Fatal(err)
	}
	zombie, err := rig.Cluster.CrashMaster()
	if err != nil {
		t.Fatal(err)
	}
	awaitNewMaster(t, rig, zombie)
	awaitEvent(t, rig, ops.EventMasterFailover)

	elected := rig.Journal().Find(ops.EventMasterElected)
	if len(elected) != 1 {
		t.Fatalf("MasterElected events = %d, want 1", len(elected))
	}
	var promoted []ops.Event
	for _, ev := range rig.Journal().Find(ops.EventReplicaPromoted) {
		if ev.Cause == elected[0].Seq {
			promoted = append(promoted, ev)
		}
	}
	if len(promoted) == 0 {
		t.Error("no ReplicaPromoted event caused by the takeover's election")
	}
	// Strong reads see every row: the promoted copies serve where the dead
	// primaries were, with no WAL replay and no master hand-holding.
	rig.Client.InvalidateRegions("pr")
	got, err := rig.Client.ScanTable("pr", &hbase.Scan{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Errorf("rows after mid-promotion failover = %d, want %d", len(got), len(rows))
	}
}
