package harness

import (
	"reflect"
	"testing"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// vectorQueries exercises the shapes the columnar path accelerates: a fused
// global aggregation, a residual filter with projection, and a query that
// falls back to row-at-a-time output ordering via LIMIT.
var vectorQueries = []string{
	`SELECT count(1), sum(ss_quantity), min(ss_item_sk), max(ss_item_sk) FROM store_sales`,
	`SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10`,
	`SELECT ss_item_sk FROM store_sales WHERE ss_quantity > 5 LIMIT 40`,
}

// TestVectorizedMatchesRowPathEndToEnd runs the same queries through two
// identically-seeded rigs — one vectorized, one forced onto the row path —
// and requires byte-identical results, proving the ablation switch toggles
// only the execution model, never the answer.
func TestVectorizedMatchesRowPathEndToEnd(t *testing.T) {
	vecRig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer vecRig.Close()
	rowRig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3, DisableVectorization: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rowRig.Close()

	for _, q := range vectorQueries {
		vec, err := vecRig.Run(q)
		if err != nil {
			t.Fatalf("vectorized %q: %v", q, err)
		}
		row, err := rowRig.Run(q)
		if err != nil {
			t.Fatalf("row path %q: %v", q, err)
		}
		if len(vec.Rows) == 0 {
			t.Fatalf("%q returned no rows; comparison is vacuous", q)
		}
		if !reflect.DeepEqual(vec.Rows, row.Rows) {
			t.Fatalf("%q: vectorized and row results differ (%d vs %d rows)", q, len(vec.Rows), len(row.Rows))
		}
		if vec.Delta[metrics.ColumnarPages] == 0 {
			t.Errorf("%q: vectorized rig moved no column-major pages", q)
		}
		if row.Delta[metrics.ColumnarPages] != 0 {
			t.Errorf("%q: DisableVectorization rig still moved columnar pages", q)
		}
	}
}

// TestVectorizedScanSurvivesServerCrash is the columnar twin of the
// streaming chaos tentpole: a vectorized multi-region scan loses its region
// server at an exact fused page, recovery reassigns the regions, and the
// resumed columnar scan must match a row-path run on an undisturbed rig
// byte for byte — failover identity and cross-path identity in one shot.
func TestVectorizedScanSurvivesServerCrash(t *testing.T) {
	const q = `SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10`

	base, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3, DisableVectorization: true})
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()
	want, err := base.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 {
		t.Fatal("baseline returned no rows; the chaos run would be vacuous")
	}

	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	victim := regions[0].Host

	inj := rpc.NewFaultInjector(chaosSeed(t),
		&rpc.FaultRule{
			Host: victim, Method: hbase.MethodFused, SkipFirst: 2, FailNext: 1,
			OnFire: func() {
				if err := rig.Cluster.CrashServer(victim); err != nil {
					t.Errorf("crash %s: %v", victim, err)
				}
				if _, err := rig.Cluster.Master.CheckServers(); err != nil {
					t.Errorf("heartbeat round: %v", err)
				}
			},
		},
		&rpc.FaultRule{Method: hbase.MethodFused, SkipFirst: 3, FailProb: 0.03, Err: rpc.ErrConnClosed},
	)
	rig.Cluster.Net.SetFaultInjector(inj)

	got, err := rig.Run(q)
	if err != nil {
		t.Fatalf("vectorized query through crash: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("vectorized chaos run differs from row-path baseline: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if inj.Fired() == 0 {
		t.Fatal("no faults fired; the scenario did not exercise recovery")
	}
	if got.Delta[metrics.ColumnarPages] == 0 {
		t.Error("recovered scan moved no column-major pages; the vector path never engaged")
	}
	if got.Delta[metrics.RegionsReassigned] == 0 {
		t.Error("crash did not reassign any regions")
	}
}

// TestVectorizedScanSurvivesDrain covers planned movement: a graceful drain
// relocates every region of one server while vectorized queries run before
// and after; results must match the pre-drain answer exactly.
func TestVectorizedScanSurvivesDrain(t *testing.T) {
	const q = `SELECT ss_item_sk, ss_quantity FROM store_sales WHERE ss_quantity > 10`
	rig, err := NewRig(Config{System: SHC, Scale: 1, Servers: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()

	want, err := rig.Run(q)
	if err != nil {
		t.Fatal(err)
	}
	regions, err := rig.Client.Regions("store_sales")
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.Cluster.Master.DrainServer(regions[0].Host); err != nil {
		t.Fatalf("drain %s: %v", regions[0].Host, err)
	}
	got, err := rig.Run(q)
	if err != nil {
		t.Fatalf("query after drain: %v", err)
	}
	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Fatalf("post-drain vectorized run differs: %d rows vs %d", len(got.Rows), len(want.Rows))
	}
	if got.Delta[metrics.ColumnarPages] == 0 {
		t.Error("post-drain scan moved no column-major pages")
	}
}
