package harness

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// ingestApplyCounter counts, across every region server, how many times each
// (writer, seq, region) stamped batch was actually applied. Dedup-suppressed
// replays do not fire the hook, so any count above one is a real double-apply
// — the thing reads cannot see when the retried cells are identical.
type ingestApplyCounter struct {
	mu      sync.Mutex
	applies map[string]int
}

func (a *ingestApplyCounter) hook() func(string, uint64, string) {
	return func(writer string, seq uint64, region string) {
		a.mu.Lock()
		a.applies[fmt.Sprintf("%s/%d@%s", writer, seq, region)]++
		a.mu.Unlock()
	}
}

func (a *ingestApplyCounter) maxApplies() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	max := 0
	for _, n := range a.applies {
		if n > max {
			max = n
		}
	}
	return max
}

// TestIngestExactlyOnceUnderChaos is the write-path property test: a buffered
// mutator streams cells into a table while (1) seeded ack-lost faults discard
// MultiPut replies after the handler ran, (2) the region server hosting the
// table crashes mid-run and its regions are reassigned with WAL replay, and
// (3) the janitor splits the table's hot regions underneath the retries.
// Whatever the schedule — CHAOS_SEED sweeps it in CI — every acked batch must
// land exactly once: no stamped batch applies twice anywhere, and the final
// scan holds every row exactly once.
func TestIngestExactlyOnceUnderChaos(t *testing.T) {
	base := chaosSeed(t)
	for _, delta := range []int64{0, 1, 2} {
		seed := base + delta
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rig, err := NewRig(Config{
				System: SHC, Servers: 3, SkipLoad: true,
				Janitor: time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rig.Close()
			// Auto-split on: the janitor splits any region whose write load
			// since its last pass crossed the threshold.
			rig.Cluster.Master.SetHotWriteThreshold(150)

			if err := rig.Client.CreateTable(hbase.TableDescriptor{Name: "ingest", Families: []string{"cf"}}, nil); err != nil {
				t.Fatal(err)
			}
			counter := &ingestApplyCounter{applies: make(map[string]int)}
			for _, rs := range rig.Cluster.Servers {
				rs.SetBatchAppliedHook(counter.hook())
			}

			regions, err := rig.Client.Regions("ingest")
			if err != nil {
				t.Fatal(err)
			}
			victim := regions[0].Host

			var crashOnce sync.Once
			inj := rpc.NewFaultInjector(seed,
				// The fourth MultiPut kills the hosting server outright — its
				// WAL is replayed on the survivors, dedup windows included —
				// and the reply is lost, so the client must retry blind.
				&rpc.FaultRule{
					Host: victim, Method: hbase.MethodMultiPut, SkipFirst: 3, FailNext: 1,
					DropReply: true, Err: rpc.ErrConnClosed,
					OnFire: func() {
						crashOnce.Do(func() {
							if err := rig.Cluster.CrashServer(victim); err != nil {
								t.Errorf("crash %s: %v", victim, err)
							}
							if _, err := rig.Cluster.Master.CheckServers(); err != nil {
								t.Errorf("heartbeat round: %v", err)
							}
						})
					},
				},
				// Seeded background ack loss on every MultiPut: the handler
				// runs, the effects stand, the caller sees a dead connection.
				&rpc.FaultRule{Method: hbase.MethodMultiPut, FailProb: 0.15, DropReply: true, Err: rpc.ErrConnClosed},
			)
			rig.Cluster.Net.SetFaultInjector(inj)

			const n = 600
			ctx := context.Background()
			mut := rig.Client.NewMutator("ingest", hbase.MutatorConfig{
				WriterID: "chaos-writer", FlushBytes: 512, MaxAttempts: 25,
			})
			for i := 0; i < n; i++ {
				c := hbase.Cell{
					Row: []byte(fmt.Sprintf("row-%04d", i)), Family: "cf", Qualifier: "q",
					Timestamp: 1, Type: hbase.TypePut, Value: []byte(fmt.Sprintf("v-%04d", i)),
				}
				if err := mut.Mutate(ctx, c); err != nil {
					t.Fatalf("mutate %d: %v", i, err)
				}
			}
			if err := mut.Close(ctx); err != nil {
				t.Fatalf("close: %v", err)
			}

			if inj.Fired() == 0 {
				t.Fatal("no faults fired; the schedule was vacuous")
			}
			// Exactly-once, server side: no stamped batch applied twice in any
			// region, however the retries regrouped across splits and
			// reassignments.
			if got := counter.maxApplies(); got > 1 {
				t.Errorf("a stamped batch applied %d times", got)
			}
			// Exactly-once, data side: every acked row present, no row lost.
			rig.Client.InvalidateRegions("ingest")
			results, err := rig.Client.ScanTable("ingest", &hbase.Scan{})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != n {
				t.Fatalf("scan after chaos ingest = %d rows, want %d", len(results), n)
			}
			for i, res := range results {
				wantRow := fmt.Sprintf("row-%04d", i)
				if string(res.Row) != wantRow {
					t.Fatalf("row %d = %q, want %q", i, res.Row, wantRow)
				}
				if len(res.Cells) != 1 || string(res.Cells[0].Value) != fmt.Sprintf("v-%04d", i) {
					t.Fatalf("row %q holds %d cells / %q", res.Row, len(res.Cells), res.Cells[0].Value)
				}
			}
			if rig.Meter.Get(metrics.BatchesDeduped) == 0 {
				t.Error("no retry was deduplicated; ack-lost faults did not bite")
			}
			if rig.Meter.Get(metrics.JanitorRuns) == 0 {
				t.Error("janitor never ran")
			}
		})
	}
}
