package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

func TestRunAggregatesEveryPermanentError(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1", "h2"}, 2, m)
	errA := errors.New("task A failed")
	errB := errors.New("task B failed")
	// Both failing tasks start before either finishes, so both errors are
	// permanent outcomes and both must surface.
	var barrier sync.WaitGroup
	barrier.Add(2)
	fail := func(err error) func(context.Context) error {
		return func(context.Context) error {
			barrier.Done()
			barrier.Wait()
			return err
		}
	}
	err := s.Run([]Task{
		{PreferredHost: "h1", Run: fail(errA)},
		{PreferredHost: "h2", Run: fail(errB)},
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error %v must contain both task errors", err)
	}
}

func TestRunStopsDispatchAfterFailure(t *testing.T) {
	m := metrics.NewRegistry()
	// One worker on one host: strictly serial execution, so everything
	// queued behind the failing task must be dropped, not run.
	s := NewScheduler([]string{"h1"}, 1, m)
	var ran int32
	boom := errors.New("boom")
	tasks := []Task{
		{PreferredHost: "h1", Run: func(context.Context) error { return boom }},
	}
	for i := 0; i < 10; i++ {
		tasks = append(tasks, Task{PreferredHost: "h1", Run: func(context.Context) error {
			atomic.AddInt32(&ran, 1)
			return nil
		}})
	}
	if err := s.Run(tasks); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&ran); n != 0 {
		t.Errorf("%d tasks ran after the failure; dispatch must stop", n)
	}
}

func TestRunRetriesTransportFailureOnDifferentHost(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1", "h2", "h3"}, 2, m)
	s.SetTaskRetry(3, RetryableTransport)
	var mu sync.Mutex
	attempts := make(map[int][]string) // task -> hosts it ran on (via queue identity)
	// Tasks report the attempt count; the first attempt fails like a dead
	// region server would.
	var tasks []Task
	for i := 0; i < 6; i++ {
		i := i
		tasks = append(tasks, Task{
			PreferredHost: fmt.Sprintf("h%d", i%3+1),
			Run: func(context.Context) error {
				mu.Lock()
				attempts[i] = append(attempts[i], "run")
				n := len(attempts[i])
				mu.Unlock()
				if n == 1 {
					return fmt.Errorf("scan: %w", rpc.ErrHostDown)
				}
				return nil
			},
		})
	}
	if err := s.Run(tasks); err != nil {
		t.Fatalf("retried run failed: %v", err)
	}
	for i, a := range attempts {
		if len(a) != 2 {
			t.Errorf("task %d ran %d times, want 2", i, len(a))
		}
	}
	if got := m.Get(metrics.TasksRetried); got != 6 {
		t.Errorf("tasks retried = %d, want 6", got)
	}
}

func TestRunRetryExhaustionSurfacesError(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1", "h2"}, 1, m)
	s.SetTaskRetry(3, RetryableTransport)
	var runs int32
	err := s.Run([]Task{{Run: func(context.Context) error {
		atomic.AddInt32(&runs, 1)
		return rpc.ErrHostDown
	}}})
	if !errors.Is(err, rpc.ErrHostDown) {
		t.Fatalf("err = %v", err)
	}
	if n := atomic.LoadInt32(&runs); n != 3 {
		t.Errorf("task ran %d times, want 3 (attempt cap)", n)
	}
	if got := m.Get(metrics.TasksRetried); got != 2 {
		t.Errorf("tasks retried = %d, want 2", got)
	}
}

func TestRunDoesNotRetryDeterministicErrors(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1", "h2"}, 1, m)
	s.SetTaskRetry(3, RetryableTransport)
	var runs int32
	logic := errors.New("decode failed")
	if err := s.Run([]Task{{Run: func(context.Context) error {
		atomic.AddInt32(&runs, 1)
		return logic
	}}}); !errors.Is(err, logic) {
		t.Fatal("logic error must surface")
	}
	if n := atomic.LoadInt32(&runs); n != 1 {
		t.Errorf("deterministic failure ran %d times, want 1", n)
	}
}

func TestRetryableTransportClassifier(t *testing.T) {
	for _, err := range []error{rpc.ErrHostDown, rpc.ErrConnClosed, rpc.ErrUnknownHost} {
		if !RetryableTransport(fmt.Errorf("wrapped: %w", err)) {
			t.Errorf("%v must be retryable", err)
		}
	}
	if RetryableTransport(errors.New("plan error")) {
		t.Error("arbitrary errors must not be retryable")
	}
	if RetryableTransport(nil) {
		t.Error("nil must not be retryable")
	}
}

func TestRunManyTasksWithRetriesCompletes(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1", "h2", "h3", "h4"}, 4, m)
	s.SetTaskRetry(4, RetryableTransport)
	var failed int32
	var done int32
	var tasks []Task
	for i := 0; i < 200; i++ {
		i := i
		var once sync.Once
		tasks = append(tasks, Task{
			PreferredHost: fmt.Sprintf("h%d", i%4+1),
			Run: func(context.Context) error {
				if i%7 == 0 {
					var fresh bool
					once.Do(func() { fresh = true })
					if fresh {
						atomic.AddInt32(&failed, 1)
						return rpc.ErrConnClosed
					}
				}
				atomic.AddInt32(&done, 1)
				return nil
			},
		})
	}
	if err := s.Run(tasks); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&done) != 200 {
		t.Errorf("completed = %d, want 200", done)
	}
	if got, want := m.Get(metrics.TasksRetried), int64(failed); got != want {
		t.Errorf("retries = %d, want %d", got, want)
	}
	if got := m.Get(metrics.TasksLaunched); got != 200 {
		t.Errorf("launched = %d, want 200 (retries are not fresh launches)", got)
	}
}
