package exec

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// PipelineExec is a fused scan→filter→project→limit chain executed as one
// streaming operator per partition — the batch-pipeline alternative to the
// Volcano-style materialize-at-every-operator execution the rest of the
// physical layer uses. Each partition's rows arrive as bounded batches
// (datasource.BatchScan) and flow through the residual filter, projection,
// and limit without the scan output ever being materialized whole; batch
// memory is released as soon as the batch is processed, so peak memory
// tracks the output plus one in-flight batch instead of the full scan.
//
// Pipeline breakers (sort, join, aggregate, union) never fuse: they need
// their whole input, so they sit above the pipeline and consume its output
// as before.
type PipelineExec struct {
	// Scan is the fused chain's source.
	Scan *ScanExec
	// Chain is the original (pre-fusion) operator subtree, exposed via
	// Children so EXPLAIN shows the fused stages — including the scan with
	// its pushed filters — indented under the pipeline.
	Chain PhysicalPlan
	// Cond is the residual predicate applied to each scanned row, nil when
	// every predicate was pushed into (and handled by) the source.
	Cond plan.Expr
	// Exprs is the fused projection, nil for passthrough.
	Exprs []plan.NamedExpr
	// OutSchema describes the pipeline's output.
	OutSchema plan.Schema
	// Limit caps the total output rows; 0 means unlimited.
	Limit int
	// BatchSize bounds the rows per streamed batch; 0 lets the source pick.
	BatchSize int
	// Vectorize enables the columnar path: partitions exposing
	// datasource.VectorScan stream typed column batches that the residual
	// filter and projection — compiled once per query into closures over
	// vectors — consume with selection vectors. Partitions without the
	// capability keep the row path.
	Vectorize bool

	// Compiled vector program, built lazily on first vectorized partition
	// and shared (immutably) by all partition tasks.
	vecOnce   sync.Once
	vecFilter *plan.CompiledFilter
	vecProj   *plan.CompiledProjection
	vecEager  []int
	vecBad    bool
}

// Schema implements PhysicalPlan.
func (p *PipelineExec) Schema() plan.Schema { return p.OutSchema }

// Children implements PhysicalPlan.
func (p *PipelineExec) Children() []PhysicalPlan { return []PhysicalPlan{p.Chain} }

// Explain implements PhysicalPlan.
func (p *PipelineExec) Explain() string {
	var b strings.Builder
	b.WriteString("PipelineExec")
	if p.Cond != nil {
		b.WriteString(" filter=" + p.Cond.String())
	}
	if p.Exprs != nil {
		names := make([]string, len(p.Exprs))
		for i, ne := range p.Exprs {
			names[i] = ne.Name
		}
		b.WriteString(" project=[" + strings.Join(names, ",") + "]")
	}
	if p.Limit > 0 {
		fmt.Fprintf(&b, " limit=%d", p.Limit)
	}
	return b.String()
}

// limitTracker coordinates the global LIMIT short circuit across partition
// tasks. Capping every partition at N and truncating the index-ordered
// concatenation to N is exactly the materialized semantics; on top of that,
// once the complete prefix of partitions already holds N rows, every later
// partition's output is unreachable after the truncate, so its task can be
// skipped (or its stream stopped) without changing the answer.
type limitTracker struct {
	limit int
	sat   atomic.Bool

	mu         sync.Mutex
	kept       []int
	done       []bool
	prefixLen  int // leading partitions all complete
	prefixKept int // rows kept within that prefix
}

func newLimitTracker(parts, limit int) *limitTracker {
	return &limitTracker{limit: limit, kept: make([]int, parts), done: make([]bool, parts)}
}

// satisfied reports that the complete partition prefix already covers the
// limit, making every not-yet-finished partition irrelevant.
func (t *limitTracker) satisfied() bool { return t.sat.Load() }

// complete records partition i finishing with kept rows.
func (t *limitTracker) complete(i, kept int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.done[i] = true
	t.kept[i] = kept
	for t.prefixLen < len(t.done) && t.done[t.prefixLen] {
		t.prefixKept += t.kept[t.prefixLen]
		t.prefixLen++
	}
	if t.prefixKept >= t.limit {
		t.sat.Store(true)
	}
}

// Execute implements PhysicalPlan: one streaming task per partition with
// locality, per-partition limit caps, and a global short circuit that skips
// partitions made irrelevant by already-complete ones.
func (p *PipelineExec) Execute(ctx *Context) ([]plan.Row, error) {
	parts := p.Scan.Partitions
	var tracker *limitTracker
	if p.Limit > 0 {
		tracker = newLimitTracker(len(parts), p.Limit)
	}
	results := make([][]plan.Row, len(parts))
	tasks := make([]Task, len(parts))
	for i, part := range parts {
		i, part := i, part
		tasks[i] = Task{
			PreferredHost: part.PreferredHost(),
			Run: func(tctx context.Context) error {
				if tracker != nil && tracker.satisfied() {
					// Earlier partitions already hold the first Limit rows;
					// this partition's output cannot survive the truncate.
					tracker.complete(i, 0)
					return nil
				}
				out, kept, err := p.runPartition(tctx, ctx, part, tracker)
				if err != nil {
					return err
				}
				results[i] = out
				if tracker != nil {
					tracker.complete(i, kept)
				}
				return nil
			},
		}
	}
	if err := ctx.Scheduler.RunContext(ctx.ctx(), tasks); err != nil {
		return nil, err
	}
	var out []plan.Row
	for _, rs := range results {
		out = append(out, rs...)
	}
	if p.Limit > 0 && len(out) > p.Limit {
		out = out[:p.Limit]
	}
	return out, nil
}

// runPartition streams one partition through the fused operators, on the
// columnar path when both the partition and the compiled program support it.
func (p *PipelineExec) runPartition(tctx context.Context, ctx *Context, part datasource.Partition, tracker *limitTracker) ([]plan.Row, int, error) {
	if p.Vectorize {
		if vs, ok := part.(datasource.VectorScan); ok {
			if _, _, _, ok := p.vecProgram(); ok {
				return p.runPartitionVector(tctx, ctx, vs, tracker)
			}
		}
	}
	return p.runPartitionRows(tctx, ctx, part, tracker)
}

// runPartitionRows is the row-at-a-time interpreter path.
func (p *PipelineExec) runPartitionRows(tctx context.Context, ctx *Context, part datasource.Partition, tracker *limitTracker) ([]plan.Row, int, error) {
	opts := datasource.BatchOptions{BatchSize: p.BatchSize}
	// The limit only pushes into the source when the source evaluates every
	// remaining predicate itself; a residual filter means the first N
	// scanned rows are not necessarily the first N kept rows.
	if p.Limit > 0 && p.Cond == nil {
		opts.LimitHint = p.Limit
	}
	var out []plan.Row
	kept := 0
	m := metrics.Scoped(tctx, ctx.Meter)
	err := datasource.StreamPartition(tctx, part, opts, func(batch []plan.Row) error {
		m.Inc(metrics.BatchesStreamed)
		var batchBytes int64
		for _, r := range batch {
			batchBytes += int64(plan.RowSize(r))
		}
		// Every decoded row is charged (same meaning as the materialized
		// path); the held/peak pair additionally tracks that batch memory is
		// released once the batch is processed.
		m.Add(metrics.MemoryCharged, batchBytes)
		m.AddPeak(metrics.MemoryHeld, metrics.MemoryPeak, batchBytes)

		stop := false
		var keptBytes int64
		for bi, r := range batch {
			if p.Limit > 0 && kept >= p.Limit {
				// Rows past the per-partition cap are dropped unprocessed.
				m.Add(metrics.RowsShortCircuited, int64(len(batch)-bi))
				stop = true
				break
			}
			if p.Cond != nil {
				ok, err := plan.EvalPredicate(p.Cond, r)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			nr := r
			if p.Exprs != nil {
				nr = make(plan.Row, len(p.Exprs))
				for j, ne := range p.Exprs {
					v, err := ne.Expr.Eval(r)
					if err != nil {
						return err
					}
					nr[j] = v
				}
			}
			out = append(out, nr)
			keptBytes += int64(plan.RowSize(nr))
			kept++
		}
		// The batch is consumed: release its bytes, keep only the output's.
		m.AddPeak(metrics.MemoryHeld, metrics.MemoryPeak, keptBytes)
		m.Add(metrics.MemoryHeld, -batchBytes)
		if stop || (p.Limit > 0 && kept >= p.Limit) {
			return datasource.ErrStopBatches
		}
		if tracker != nil && tracker.satisfied() {
			return datasource.ErrStopBatches
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, kept, nil
}

// FusePipelines rewrites every Limit→Project→Filter→Scan chain (each layer
// optional, at least one above the scan) into a PipelineExec with the
// columnar path enabled. Operators outside such chains — the pipeline
// breakers — are rebuilt with fused children.
func FusePipelines(p PhysicalPlan) PhysicalPlan { return FusePipelinesWith(p, true) }

// FusePipelinesWith is FusePipelines with the columnar path switchable:
// vectorize=false compiles the same fused pipelines but keeps them on the
// row-at-a-time interpreter (the row side of the vector-vs-row benchmark).
func FusePipelinesWith(p PhysicalPlan, vectorize bool) PhysicalPlan {
	if fused, ok := fuseChain(p, vectorize); ok {
		return fused
	}
	switch n := p.(type) {
	case *FilterExec:
		n.Child = FusePipelinesWith(n.Child, vectorize)
	case *ProjectExec:
		n.Child = FusePipelinesWith(n.Child, vectorize)
	case *LimitExec:
		n.Child = FusePipelinesWith(n.Child, vectorize)
	case *SortExec:
		n.Child = FusePipelinesWith(n.Child, vectorize)
	case *HashAggExec:
		if vectorize {
			if fused, ok := fuseAgg(n); ok {
				return fused
			}
		}
		n.Child = FusePipelinesWith(n.Child, vectorize)
	case *HashJoinExec:
		n.Left = FusePipelinesWith(n.Left, vectorize)
		n.Right = FusePipelinesWith(n.Right, vectorize)
	case *SortMergeJoinExec:
		n.Left = FusePipelinesWith(n.Left, vectorize)
		n.Right = FusePipelinesWith(n.Right, vectorize)
	case *UnionExec:
		for i, in := range n.Inputs {
			n.Inputs[i] = FusePipelinesWith(in, vectorize)
		}
	}
	return p
}

// fuseChain matches Limit? Project? Filter* Scan from the top of p. A bare
// scan is left alone — fusing it would add streaming overhead with nothing
// to fuse against.
func fuseChain(p PhysicalPlan, vectorize bool) (PhysicalPlan, bool) {
	node := p
	limit := 0
	if l, ok := node.(*LimitExec); ok && l.N > 0 {
		// The pipeline uses 0 as "no limit", so a degenerate LIMIT 0 stays
		// an unfused LimitExec and truncates as before.
		limit = l.N
		node = l.Child
	}
	var exprs []plan.NamedExpr
	var outSchema plan.Schema
	if pr, ok := node.(*ProjectExec); ok {
		exprs = pr.Exprs
		outSchema = pr.OutSchema
		node = pr.Child
	}
	var conds []plan.Expr
	for {
		f, ok := node.(*FilterExec)
		if !ok {
			break
		}
		conds = append(conds, f.Cond)
		node = f.Child
	}
	scan, ok := node.(*ScanExec)
	if !ok {
		return nil, false
	}
	if limit == 0 && exprs == nil && len(conds) == 0 {
		return nil, false
	}
	if outSchema == nil {
		outSchema = scan.OutSchema
	}
	return &PipelineExec{
		Scan:      scan,
		Chain:     p,
		Cond:      plan.CombineConjuncts(conds),
		Exprs:     exprs,
		OutSchema: outSchema,
		Limit:     limit,
		Vectorize: vectorize,
	}, true
}
