package exec

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/plan"
)

func joinPlanFor(users, orders *datasource.MemRelation, jt plan.JoinType) plan.LogicalPlan {
	return &plan.JoinNode{
		Left:      &plan.ScanNode{Relation: users, Alias: "u"},
		Right:     &plan.ScanNode{Relation: orders, Alias: "o"},
		LeftKeys:  []plan.Expr{plan.Col("u.id")},
		RightKeys: []plan.Expr{plan.Col("o.uid")},
		Type:      jt,
	}
}

func runJoin(t *testing.T, lp plan.LogicalPlan, smj bool) []plan.Row {
	t.Helper()
	ctx, _ := testCtx()
	phys, err := CompileWith(plan.Optimize(lp), CompileConfig{SortMergeJoin: smj})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := phys.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func canonical(rows []plan.Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func TestSortMergeJoinMatchesHashJoin(t *testing.T) {
	users := usersMem(t, 60)
	orders := ordersMem(t, 120)
	for _, jt := range []plan.JoinType{plan.InnerJoin, plan.LeftOuterJoin} {
		hash := canonical(runJoin(t, joinPlanFor(users, orders, jt), false))
		smj := canonical(runJoin(t, joinPlanFor(users, orders, jt), true))
		if len(hash) != len(smj) {
			t.Fatalf("%s: %d vs %d rows", jt, len(hash), len(smj))
		}
		for i := range hash {
			if hash[i] != smj[i] {
				t.Fatalf("%s row %d: %s vs %s", jt, i, hash[i], smj[i])
			}
		}
	}
}

func TestSortMergeJoinExplain(t *testing.T) {
	users := usersMem(t, 5)
	orders := ordersMem(t, 5)
	phys, err := CompileWith(plan.Optimize(joinPlanFor(users, orders, plan.InnerJoin)), CompileConfig{SortMergeJoin: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := "SortMergeJoinExec[Inner]"; !containsStr(Explain(phys), want) {
		t.Errorf("Explain missing %q:\n%s", want, Explain(phys))
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestJoinStrategiesAgreeProperty joins randomly generated tables (with
// duplicate and NULL keys) under hash, sort-merge, and broadcast and
// demands identical multisets of output rows.
func TestJoinStrategiesAgreeProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(func(seed int64, outer bool) bool {
		rng := rand.New(rand.NewSource(seed))
		left := datasource.NewMemRelation("l", plan.Schema{
			{Name: "k", Type: plan.TypeInt64}, {Name: "lv", Type: plan.TypeInt64},
		}, 3)
		right := datasource.NewMemRelation("r", plan.Schema{
			{Name: "k2", Type: plan.TypeInt64}, {Name: "rv", Type: plan.TypeInt64},
		}, 3)
		fill := func(rel *datasource.MemRelation, n int) {
			rows := make([]plan.Row, n)
			for i := range rows {
				var k any
				if rng.Intn(8) == 0 {
					k = nil // NULL keys never match
				} else {
					k = int64(rng.Intn(10)) // heavy duplication
				}
				rows[i] = plan.Row{k, int64(i)}
			}
			if err := rel.Insert(rows); err != nil {
				panic(err)
			}
		}
		fill(left, rng.Intn(40))
		fill(right, rng.Intn(40))
		jt := plan.InnerJoin
		if outer {
			jt = plan.LeftOuterJoin
		}
		lp := &plan.JoinNode{
			Left:      &plan.ScanNode{Relation: left},
			Right:     &plan.ScanNode{Relation: right},
			LeftKeys:  []plan.Expr{plan.Col("k")},
			RightKeys: []plan.Expr{plan.Col("k2")},
			Type:      jt,
		}
		hash := canonical(runJoin(t, lp, false))
		smj := canonical(runJoin(t, lp, true))
		// Broadcast path.
		ctx, _ := testCtx()
		ctx.BroadcastThreshold = 1000
		phys, err := CompileWith(plan.Optimize(lp), CompileConfig{})
		if err != nil {
			return false
		}
		rows, err := phys.Execute(ctx)
		if err != nil {
			return false
		}
		bcast := canonical(rows)
		if len(hash) != len(smj) || len(hash) != len(bcast) {
			t.Logf("seed %d (%s): hash=%d smj=%d bcast=%d", seed, jt, len(hash), len(smj), len(bcast))
			return false
		}
		for i := range hash {
			if hash[i] != smj[i] || hash[i] != bcast[i] {
				t.Logf("seed %d (%s) row %d: %s / %s / %s", seed, jt, i, hash[i], smj[i], bcast[i])
				return false
			}
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}
