package exec

import (
	"context"
	"fmt"
	"strings"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// This file is the columnar half of the fused pipeline: partitions exposing
// datasource.VectorScan stream typed column batches, the residual predicate
// and projection run as compiled closures over vectors guided by a
// selection vector, and rows materialize only at pipeline output (or never,
// for fused aggregation). Partitions without the capability — and operators
// without a vectorized form — keep the row path, so the two execute
// side by side in one plan.

// vecProgram compiles the pipeline's residual filter and projection once;
// the compiled closures are stateless and shared by every partition task.
// ok=false means the pipeline must stay on the row path.
func (p *PipelineExec) vecProgram() (filter *plan.CompiledFilter, proj *plan.CompiledProjection, eager []int, ok bool) {
	p.vecOnce.Do(func() {
		schema := p.Scan.OutSchema
		if p.Cond != nil {
			f, err := plan.CompileFilter(p.Cond, schema)
			if err != nil {
				p.vecBad = true
				return
			}
			p.vecFilter = f
			// Only the filter's inputs need eager decode; everything else
			// stays lazy until it survives the filter.
			p.vecEager = eagerColumns(schema, p.Cond, nil)
		}
		if p.Exprs != nil {
			p.vecProj = plan.CompileProjection(p.Exprs, schema)
		}
	})
	return p.vecFilter, p.vecProj, p.vecEager, !p.vecBad
}

// eagerColumns resolves the scan positions of every column the filter (and
// any extra refs) touches per row. nil means "decode everything eagerly" —
// used when there is no filter, so every row survives and laziness buys
// nothing.
func eagerColumns(schema plan.Schema, cond plan.Expr, extra []*plan.ColumnRef) []int {
	if cond == nil && extra == nil {
		return nil
	}
	seen := make(map[int]bool)
	out := []int{}
	add := func(i int) {
		if i >= 0 && !seen[i] {
			seen[i] = true
			out = append(out, i)
		}
	}
	if cond != nil {
		for _, name := range plan.Columns(cond) {
			add(schema.IndexOf(name))
		}
	}
	for _, c := range extra {
		if c != nil {
			add(c.Index())
		}
	}
	return out
}

// runPartitionVector streams one partition through the compiled vector
// program: selection-vector filtering, limit truncation, and per-row
// materialization of just the surviving positions.
func (p *PipelineExec) runPartitionVector(tctx context.Context, ctx *Context, vs datasource.VectorScan, tracker *limitTracker) ([]plan.Row, int, error) {
	filter, proj, eager, _ := p.vecProgram()
	opts := datasource.BatchOptions{BatchSize: p.BatchSize, EagerColumns: eager}
	if p.Limit > 0 && p.Cond == nil {
		opts.LimitHint = p.Limit
	}
	sc := plan.NewEvalScratch(p.Scan.OutSchema)
	var selBuf []int
	var out []plan.Row
	kept := 0
	m := metrics.Scoped(tctx, ctx.Meter)
	err := vs.ComputeVectors(tctx, opts, func(b *plan.Batch) error {
		m.Inc(metrics.BatchesStreamed)
		m.Inc(metrics.VectorBatches)
		batchBytes := b.MemSize()
		m.Add(metrics.MemoryCharged, batchBytes)
		m.AddPeak(metrics.MemoryHeld, metrics.MemoryPeak, batchBytes)

		sel := plan.FullSel(b.Len(), selBuf)
		selBuf = sel
		if filter != nil {
			var err error
			sel, err = filter.Run(b, sel, sc)
			if err != nil {
				return err
			}
		}
		stop := false
		if p.Limit > 0 && kept+len(sel) >= p.Limit {
			m.Add(metrics.RowsShortCircuited, int64(kept+len(sel)-p.Limit))
			sel = sel[:p.Limit-kept]
			stop = true
		}
		var keptBytes int64
		for _, i := range sel {
			var nr plan.Row
			var err error
			if proj != nil {
				nr = make(plan.Row, proj.Width())
				err = proj.ProjectRow(b, i, sc, nr)
			} else {
				nr, err = b.MaterializeRow(i)
			}
			if err != nil {
				return err
			}
			out = append(out, nr)
			keptBytes += int64(plan.RowSize(nr))
		}
		kept += len(sel)
		m.Add(metrics.VectorRows, int64(len(sel)))
		m.AddPeak(metrics.MemoryHeld, metrics.MemoryPeak, keptBytes)
		m.Add(metrics.MemoryHeld, -batchBytes)
		if stop {
			return datasource.ErrStopBatches
		}
		if tracker != nil && tracker.satisfied() {
			return datasource.ErrStopBatches
		}
		return nil
	})
	if err != nil {
		return nil, 0, err
	}
	return out, kept, nil
}

// AggPipelineExec fuses a GROUP-BY-less aggregation into the vectorized
// pipeline: each partition folds its column batches into partial aggregate
// states with tight typed loops — no row ever materializes — and the
// partials merge into the single output row. Only aggregates whose partial
// merge is order-insensitive in the row path's float64 space fuse
// (count/sum/avg/min/max over a column or *); grouping, stddev, and
// count-distinct keep the HashAggExec path.
type AggPipelineExec struct {
	// Pipe is the fused scan→filter input; its Limit is always 0 (a LIMIT
	// below a global aggregate cannot be split across partitions).
	Pipe *PipelineExec
	// Aggs are the aggregate specs, output order.
	Aggs []plan.AggExpr
	// args holds each aggregate's input column resolved to the scan's
	// projected space; nil for COUNT(*).
	args []*plan.ColumnRef
	// OutSchema describes the single output row.
	OutSchema plan.Schema
	// Chain is the original HashAggExec subtree for EXPLAIN.
	Chain PhysicalPlan
}

// Schema implements PhysicalPlan.
func (a *AggPipelineExec) Schema() plan.Schema { return a.OutSchema }

// Children implements PhysicalPlan.
func (a *AggPipelineExec) Children() []PhysicalPlan { return []PhysicalPlan{a.Chain} }

// Explain implements PhysicalPlan.
func (a *AggPipelineExec) Explain() string {
	names := make([]string, len(a.Aggs))
	for i, g := range a.Aggs {
		names[i] = g.Name
	}
	s := "AggPipelineExec aggs=[" + strings.Join(names, ",") + "]"
	if a.Pipe.Cond != nil {
		s += " filter=" + a.Pipe.Cond.String()
	}
	return s
}

// fuseAgg turns a global HashAggExec over a fusable chain into an
// AggPipelineExec; ok=false leaves the plan alone.
func fuseAgg(n *HashAggExec) (PhysicalPlan, bool) {
	if len(n.GroupBy) != 0 {
		return nil, false
	}
	for _, agg := range n.Aggs {
		switch agg.Kind {
		case plan.AggCount, plan.AggSum, plan.AggAvg, plan.AggMin, plan.AggMax:
		default:
			return nil, false
		}
		if agg.Arg == nil {
			if agg.Kind != plan.AggCount {
				return nil, false
			}
		} else if _, ok := agg.Arg.(*plan.ColumnRef); !ok {
			return nil, false
		}
	}
	var pipe *PipelineExec
	if fused, ok := fuseChain(n.Child, true); ok {
		pipe = fused.(*PipelineExec)
	} else if scan, ok := n.Child.(*ScanExec); ok {
		pipe = &PipelineExec{Scan: scan, Chain: scan, OutSchema: scan.OutSchema, Vectorize: true}
	} else {
		return nil, false
	}
	if pipe.Limit > 0 {
		// LIMIT below a global aggregate picks the first N rows overall;
		// distributing N per partition would overcount.
		return nil, false
	}
	// Resolve each argument through the (optional) fused projection down to
	// a scan-space column.
	args := make([]*plan.ColumnRef, len(n.Aggs))
	for i, agg := range n.Aggs {
		if agg.Arg == nil {
			continue
		}
		c := agg.Arg.(*plan.ColumnRef)
		if pipe.Exprs != nil {
			j := c.Index()
			if j < 0 || j >= len(pipe.Exprs) {
				return nil, false
			}
			pc, ok := pipe.Exprs[j].Expr.(*plan.ColumnRef)
			if !ok {
				return nil, false
			}
			c = pc
		}
		if c.Index() < 0 {
			return nil, false
		}
		args[i] = c
	}
	return &AggPipelineExec{Pipe: pipe, Aggs: n.Aggs, args: args, OutSchema: n.OutSchema, Chain: n}, true
}

// Execute implements PhysicalPlan: one task per partition folds batches
// into partial states; partials merge in partition order (deterministic) and
// finalize into the single output row.
func (a *AggPipelineExec) Execute(ctx *Context) ([]plan.Row, error) {
	filter, _, _, vecOK := a.Pipe.vecProgram()
	eager := eagerColumns(a.Pipe.Scan.OutSchema, a.Pipe.Cond, a.args)
	if a.Pipe.Cond == nil {
		// No filter: every row survives, so the aggregate touches its input
		// columns on every row anyway — decode everything eagerly.
		eager = nil
	}
	parts := a.Pipe.Scan.Partitions
	states := make([][]aggState, len(parts))
	tasks := make([]Task, len(parts))
	for i, part := range parts {
		i, part := i, part
		tasks[i] = Task{
			PreferredHost: part.PreferredHost(),
			Run: func(tctx context.Context) error {
				var st []aggState
				var err error
				if vs, ok := part.(datasource.VectorScan); ok && a.Pipe.Vectorize && vecOK {
					st, err = a.runPartitionVector(tctx, ctx, vs, filter, eager)
				} else {
					st, err = a.runPartitionRows(tctx, ctx, part)
				}
				if err != nil {
					return err
				}
				states[i] = st
				return nil
			},
		}
	}
	if err := ctx.Scheduler.RunContext(ctx.ctx(), tasks); err != nil {
		return nil, err
	}
	total := make([]aggState, len(a.Aggs))
	for _, st := range states {
		if st == nil {
			continue
		}
		for k := range a.Aggs {
			if err := total[k].merge(a.Aggs[k].Kind, &st[k]); err != nil {
				return nil, err
			}
		}
	}
	row := make(plan.Row, len(a.Aggs))
	for k, agg := range a.Aggs {
		row[k] = total[k].final(agg.Kind)
	}
	return []plan.Row{row}, nil
}

// runPartitionVector folds one partition's column batches into partial
// aggregate states without materializing rows.
func (a *AggPipelineExec) runPartitionVector(tctx context.Context, ctx *Context, vs datasource.VectorScan, filter *plan.CompiledFilter, eager []int) ([]aggState, error) {
	aggs := make([]vecAgg, len(a.Aggs))
	for k, agg := range a.Aggs {
		aggs[k] = vecAgg{kind: agg.Kind, col: -1}
		if a.args[k] != nil {
			aggs[k].col = a.args[k].Index()
			aggs[k].typ = a.args[k].Type()
		}
	}
	sc := plan.NewEvalScratch(a.Pipe.Scan.OutSchema)
	var selBuf []int
	m := metrics.Scoped(tctx, ctx.Meter)
	opts := datasource.BatchOptions{BatchSize: a.Pipe.BatchSize, EagerColumns: eager}
	err := vs.ComputeVectors(tctx, opts, func(b *plan.Batch) error {
		m.Inc(metrics.BatchesStreamed)
		m.Inc(metrics.VectorBatches)
		sel := plan.FullSel(b.Len(), selBuf)
		selBuf = sel
		if filter != nil {
			var err error
			sel, err = filter.Run(b, sel, sc)
			if err != nil {
				return err
			}
		}
		m.Add(metrics.VectorRows, int64(len(sel)))
		for k := range aggs {
			if err := aggs[k].consume(b, sel); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	states := make([]aggState, len(a.Aggs))
	for k := range aggs {
		states[k] = aggs[k].fold()
	}
	return states, nil
}

// runPartitionRows is the row fallback for partitions without VectorScan:
// stream, filter, and update boxed aggregate states row-at-a-time.
func (a *AggPipelineExec) runPartitionRows(tctx context.Context, ctx *Context, part datasource.Partition) ([]aggState, error) {
	states := make([]aggState, len(a.Aggs))
	m := metrics.Scoped(tctx, ctx.Meter)
	err := datasource.StreamPartition(tctx, part, datasource.BatchOptions{BatchSize: a.Pipe.BatchSize}, func(batch []plan.Row) error {
		m.Inc(metrics.BatchesStreamed)
		for _, r := range batch {
			if a.Pipe.Cond != nil {
				ok, err := plan.EvalPredicate(a.Pipe.Cond, r)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			for k, agg := range a.Aggs {
				var v any = int64(1) // COUNT(*) counts rows
				if a.args[k] != nil {
					v = r[a.args[k].Index()]
				}
				if err := states[k].update(agg.Kind, v); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return states, nil
}

// vecAgg accumulates one aggregate over column batches with typed loops.
// Numeric extremes are tracked in float64 (the row path's comparison space)
// alongside the exact typed value, so the boxed result is byte-identical to
// what aggState.update would have kept.
type vecAgg struct {
	kind plan.AggKind
	col  int // scan-space column, -1 for COUNT(*)
	typ  plan.DataType

	count int64
	sum   float64

	has   bool    // a typed best is tracked
	bestF float64 // numeric comparison key
	bestI int64   // exact integer best
	bestS string

	hasV  bool // a boxed best is tracked (non-fast-path vectors)
	bestV any
}

func (s *vecAgg) consume(b *plan.Batch, sel []int) error {
	if s.col < 0 {
		s.count += int64(len(sel))
		return nil
	}
	v := b.Cols[s.col]
	switch s.kind {
	case plan.AggCount:
		for _, i := range sel {
			if !v.Null(i) {
				s.count++
			}
		}
	case plan.AggSum, plan.AggAvg:
		switch v.Kind {
		case plan.KindInt64:
			data := v.Int64s
			for _, i := range sel {
				if !v.Null(i) {
					s.count++
					s.sum += float64(data[i])
				}
			}
		case plan.KindFloat64:
			data := v.Float64s
			for _, i := range sel {
				if !v.Null(i) {
					s.count++
					s.sum += data[i]
				}
			}
		default:
			for _, i := range sel {
				val, err := v.Value(i)
				if err != nil {
					return err
				}
				if val == nil {
					continue
				}
				f, ok := plan.ToFloat(val)
				if !ok {
					return fmt.Errorf("exec: %s over non-numeric %T", s.kind, val)
				}
				s.count++
				s.sum += f
			}
		}
	case plan.AggMin:
		switch v.Kind {
		case plan.KindInt64:
			data := v.Int64s
			for _, i := range sel {
				if !v.Null(i) && (!s.has || float64(data[i]) < s.bestF) {
					s.has, s.bestF, s.bestI = true, float64(data[i]), data[i]
				}
			}
		case plan.KindFloat64:
			data := v.Float64s
			for _, i := range sel {
				if !v.Null(i) && (!s.has || data[i] < s.bestF) {
					s.has, s.bestF = true, data[i]
				}
			}
		case plan.KindString:
			data := v.Strings
			for _, i := range sel {
				if !v.Null(i) && (!s.has || data[i] < s.bestS) {
					s.has, s.bestS = true, data[i]
				}
			}
		default:
			return s.consumeBoxed(v, sel, -1)
		}
	case plan.AggMax:
		switch v.Kind {
		case plan.KindInt64:
			data := v.Int64s
			for _, i := range sel {
				if !v.Null(i) && (!s.has || float64(data[i]) > s.bestF) {
					s.has, s.bestF, s.bestI = true, float64(data[i]), data[i]
				}
			}
		case plan.KindFloat64:
			data := v.Float64s
			for _, i := range sel {
				if !v.Null(i) && (!s.has || data[i] > s.bestF) {
					s.has, s.bestF = true, data[i]
				}
			}
		case plan.KindString:
			data := v.Strings
			for _, i := range sel {
				if !v.Null(i) && (!s.has || data[i] > s.bestS) {
					s.has, s.bestS = true, data[i]
				}
			}
		default:
			return s.consumeBoxed(v, sel, 1)
		}
	}
	return nil
}

// consumeBoxed tracks min/max through boxed Compare for vector kinds
// without a typed extreme loop (bool, binary, lazy, boxed).
func (s *vecAgg) consumeBoxed(v *plan.Vector, sel []int, want int) error {
	for _, i := range sel {
		val, err := v.Value(i)
		if err != nil {
			return err
		}
		if val == nil {
			continue
		}
		if !s.hasV {
			s.hasV, s.bestV = true, val
			continue
		}
		c, err := plan.Compare(val, s.bestV)
		if err != nil {
			return err
		}
		if (want < 0 && c < 0) || (want > 0 && c > 0) {
			s.bestV = val
		}
	}
	return nil
}

// fold converts the typed accumulator into the row path's partial state.
func (s *vecAgg) fold() aggState {
	st := aggState{count: s.count, sum: s.sum}
	if s.kind != plan.AggMin && s.kind != plan.AggMax {
		return st
	}
	var best any
	switch {
	case s.hasV:
		best = s.bestV
	case s.has:
		best = boxBest(s.typ, s.bestI, s.bestF, s.bestS)
	}
	if s.kind == plan.AggMin {
		st.min = best
	} else {
		st.max = best
	}
	return st
}

// boxBest restores the exact Go representation of a typed extreme.
func boxBest(t plan.DataType, i int64, f float64, str string) any {
	switch plan.KindOf(t) {
	case plan.KindInt64:
		switch t {
		case plan.TypeInt8:
			return int8(i)
		case plan.TypeInt16:
			return int16(i)
		case plan.TypeInt32:
			return int32(i)
		}
		return i
	case plan.KindFloat64:
		if t == plan.TypeFloat32 {
			return float32(f)
		}
		return f
	case plan.KindString:
		return str
	}
	return nil
}
