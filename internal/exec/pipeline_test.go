package exec

import (
	"context"
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// runWith compiles and executes lp under the given config.
func runWith(t *testing.T, lp plan.LogicalPlan, cfg CompileConfig) ([]plan.Row, *metrics.Registry) {
	t.Helper()
	ctx, m := testCtx()
	opt := plan.Optimize(lp)
	phys, err := CompileWith(opt, cfg)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, plan.Format(opt))
	}
	rows, err := phys.Execute(ctx)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, Explain(phys))
	}
	return rows, m
}

func rowsEqual(t *testing.T, name string, got, want []plan.Row) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: pipelined rows = %d, materialized = %d", name, len(got), len(want))
	}
	for i := range got {
		if fmt.Sprint(got[i]) != fmt.Sprint(want[i]) {
			t.Fatalf("%s: row %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestPipelineFusionEquivalence pins the core correctness contract: every
// query produces identical rows (values AND order) through the fused
// streaming path and the materialized path.
func TestPipelineFusionEquivalence(t *testing.T) {
	users := usersMem(t, 500)
	orders := ordersMem(t, 200)
	scanU := func() *plan.ScanNode { return &plan.ScanNode{Relation: users} }
	cases := []struct {
		name string
		lp   func() plan.LogicalPlan
	}{
		{"filter-project", func() plan.LogicalPlan {
			return &plan.ProjectNode{
				Exprs: []plan.NamedExpr{{Expr: plan.Col("id"), Name: "id"}},
				Child: &plan.FilterNode{
					Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(5)},
					Child: scanU(),
				},
			}
		}},
		{"project-limit", func() plan.LogicalPlan {
			return &plan.LimitNode{N: 17, Child: &plan.ProjectNode{
				Exprs: []plan.NamedExpr{
					{Expr: plan.Col("id"), Name: "id"},
					{Expr: plan.Col("city"), Name: "city"},
				},
				Child: scanU(),
			}}
		}},
		{"residual-filter-limit", func() plan.LogicalPlan {
			// age > score compares two columns: untranslatable to a source
			// filter, so the pipeline keeps a residual Cond.
			return &plan.LimitNode{N: 9, Child: &plan.FilterNode{
				Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("age"), R: plan.Col("score")},
				Child: scanU(),
			}}
		}},
		{"filter-only", func() plan.LogicalPlan {
			return &plan.FilterNode{
				Cond:  &plan.Comparison{Op: plan.OpEq, L: plan.Col("city"), R: plan.Lit("sf")},
				Child: scanU(),
			}
		}},
		{"limit-exceeds-rows", func() plan.LogicalPlan {
			return &plan.LimitNode{N: 10000, Child: scanU()}
		}},
		{"limit-zero", func() plan.LogicalPlan {
			return &plan.LimitNode{N: 0, Child: &plan.ProjectNode{
				Exprs: []plan.NamedExpr{{Expr: plan.Col("id"), Name: "id"}},
				Child: scanU(),
			}}
		}},
		{"sort-above-pipeline", func() plan.LogicalPlan {
			return &plan.SortNode{
				Orders: []plan.SortOrder{{Expr: plan.Col("id")}},
				Child: &plan.FilterNode{
					Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(10)},
					Child: scanU(),
				},
			}
		}},
		{"join-above-pipelines", func() plan.LogicalPlan {
			return &plan.JoinNode{
				Left: &plan.FilterNode{
					Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(40)},
					Child: scanU(),
				},
				Right:     &plan.ScanNode{Relation: orders},
				LeftKeys:  []plan.Expr{plan.Col("id")},
				RightKeys: []plan.Expr{plan.Col("uid")},
				Type:      plan.InnerJoin,
			}
		}},
	}
	for _, c := range cases {
		streamed, _ := runWith(t, c.lp(), CompileConfig{})
		materialized, _ := runWith(t, c.lp(), CompileConfig{DisablePipelining: true})
		rowsEqual(t, c.name, streamed, materialized)
	}
}

// TestFuseChainShapes pins which trees fuse and which stay materialized.
func TestFuseChainShapes(t *testing.T) {
	users := usersMem(t, 50)
	lp := &plan.LimitNode{N: 5, Child: &plan.ProjectNode{
		Exprs: []plan.NamedExpr{{Expr: plan.Col("id"), Name: "id"}},
		Child: &plan.FilterNode{
			Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("age"), R: plan.Col("score")},
			Child: &plan.ScanNode{Relation: users},
		},
	}}
	phys, err := CompileWith(plan.Optimize(lp), CompileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pipe, ok := phys.(*PipelineExec)
	if !ok {
		t.Fatalf("root = %T, want *PipelineExec\n%s", phys, Explain(phys))
	}
	if pipe.Limit != 5 || pipe.Exprs == nil || pipe.Cond == nil {
		t.Errorf("pipeline did not absorb all stages: %s", pipe.Explain())
	}
	// The original chain stays visible to EXPLAIN.
	out := Explain(phys)
	for _, want := range []string{"PipelineExec", "LimitExec", "ProjectExec", "FilterExec", "ScanExec"} {
		if !containsLine(out, want) {
			t.Errorf("Explain lacks %s:\n%s", want, out)
		}
	}
	// A bare scan does not fuse.
	bare, err := CompileWith(plan.Optimize(&plan.ScanNode{Relation: users}), CompileConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := bare.(*PipelineExec); ok {
		t.Error("bare scan must not fuse")
	}
	// DisablePipelining keeps the materialized operators.
	mat, err := CompileWith(plan.Optimize(lp), CompileConfig{DisablePipelining: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := mat.(*LimitExec); !ok {
		t.Errorf("disabled root = %T, want *LimitExec", mat)
	}
}

func containsLine(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestPipelineLimitShortCircuit pins the limit machinery: a fused LIMIT
// stops streaming early, meters the rows it dropped unprocessed, and the
// streamed peak memory stays below the bytes the materialized path holds.
func TestPipelineLimitShortCircuit(t *testing.T) {
	users := usersMem(t, 2000)
	lp := &plan.LimitNode{N: 3, Child: &plan.FilterNode{
		// Residual (column-vs-column) predicate: the source cannot take a
		// limit hint, so batches over-deliver and the pipeline cuts them.
		Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("age"), R: plan.Col("score")},
		Child: &plan.ScanNode{Relation: users},
	}}
	rows, m := runWith(t, lp, CompileConfig{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if m.Get(metrics.BatchesStreamed) == 0 {
		t.Error("pipeline must stream batches")
	}
	if m.Get(metrics.RowsShortCircuited) == 0 {
		t.Error("limit must drop in-flight rows unprocessed")
	}
	if m.Get(metrics.MemoryPeak) == 0 || m.Get(metrics.MemoryCharged) == 0 {
		t.Error("pipeline must meter charged bytes and the high-water mark")
	}
}

// TestPipelinePeakMemoryBelowMaterialized compares the same selective scan
// through both paths: releasing batches after processing must cap the
// streamed high-water mark below the materialized one.
func TestPipelinePeakMemoryBelowMaterialized(t *testing.T) {
	users := usersMem(t, 4000)
	lp := func() plan.LogicalPlan {
		return &plan.ProjectNode{
			Exprs: []plan.NamedExpr{{Expr: plan.Col("id"), Name: "id"}},
			Child: &plan.FilterNode{
				Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(2)},
				Child: &plan.ScanNode{Relation: users},
			},
		}
	}
	_, sm := runWith(t, lp(), CompileConfig{})
	_, mm := runWith(t, lp(), CompileConfig{DisablePipelining: true})
	speak, mpeak := sm.Get(metrics.MemoryPeak), mm.Get(metrics.MemoryPeak)
	if speak == 0 || mpeak == 0 {
		t.Fatalf("peaks not tracked: streamed=%d materialized=%d", speak, mpeak)
	}
	if speak >= mpeak {
		t.Errorf("streamed peak (%d) should be below materialized peak (%d)", speak, mpeak)
	}
}

// TestSchedulerSpawnsAtMostQueueWorkers pins the worker-count fix: a
// one-task queue must not pay for slots-1 idle goroutines. Observable
// behaviourally: tasks run and results arrive even with huge slot counts.
func TestSchedulerSpawnsAtMostQueueWorkers(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1"}, 64, m)
	ran := 0
	if err := s.Run([]Task{{Run: func(context.Context) error { ran++; return nil }}}); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran = %d", ran)
	}
}
