package exec

import (
	"fmt"
	"strings"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/plan"
)

// CompileConfig selects physical strategies.
type CompileConfig struct {
	// SortMergeJoin compiles equi-joins to sort-merge instead of hash
	// (Spark's default for large inputs).
	SortMergeJoin bool
	// DisablePipelining keeps the Volcano-style materialized operators
	// instead of fusing scan→filter→project→limit chains into streaming
	// pipelines (ablation switch, and the baseline side of the
	// streaming-vs-materialized benchmark).
	DisablePipelining bool
	// DisableVectorization keeps fused pipelines on the row-at-a-time
	// interpreter instead of the columnar batch path (ablation switch, and
	// the row side of the vector-vs-row benchmark).
	DisableVectorization bool
}

// Compile lowers an optimized logical plan to a physical one with default
// strategies.
func Compile(p plan.LogicalPlan) (PhysicalPlan, error) {
	return CompileWith(p, CompileConfig{})
}

// CompileWith lowers an optimized logical plan to a physical one, resolving
// every expression against its input schema, translating pushed predicates
// to source filters, and consulting each relation's UnhandledFilters to
// decide what the engine must re-apply (paper §VI-A.3). Unless disabled,
// scan-rooted operator chains are then fused into streaming pipelines.
func CompileWith(p plan.LogicalPlan, cfg CompileConfig) (PhysicalPlan, error) {
	phys, err := compileNode(p, cfg)
	if err != nil {
		return nil, err
	}
	if !cfg.DisablePipelining {
		phys = FusePipelinesWith(phys, !cfg.DisableVectorization)
	}
	return phys, nil
}

func compileNode(p plan.LogicalPlan, cfg CompileConfig) (PhysicalPlan, error) {
	switch n := p.(type) {
	case *plan.ScanNode:
		return compileScan(n)
	case *plan.FilterNode:
		child, err := compileNode(n.Child, cfg)
		if err != nil {
			return nil, err
		}
		cond := plan.CloneExpr(n.Cond)
		if err := plan.Resolve(cond, child.Schema()); err != nil {
			return nil, err
		}
		return &FilterExec{Cond: cond, Child: child}, nil
	case *plan.ProjectNode:
		child, err := compileNode(n.Child, cfg)
		if err != nil {
			return nil, err
		}
		exprs := make([]plan.NamedExpr, len(n.Exprs))
		schema := make(plan.Schema, len(n.Exprs))
		for i, ne := range n.Exprs {
			e := plan.CloneExpr(ne.Expr)
			if err := plan.Resolve(e, child.Schema()); err != nil {
				return nil, err
			}
			exprs[i] = plan.NamedExpr{Expr: e, Name: ne.Name}
			schema[i] = plan.Field{Name: ne.Name, Type: e.Type()}
		}
		return &ProjectExec{Exprs: exprs, OutSchema: schema, Child: child}, nil
	case *plan.JoinNode:
		left, err := compileNode(n.Left, cfg)
		if err != nil {
			return nil, err
		}
		right, err := compileNode(n.Right, cfg)
		if err != nil {
			return nil, err
		}
		lk, err := resolveAll(n.LeftKeys, left.Schema())
		if err != nil {
			return nil, err
		}
		rk, err := resolveAll(n.RightKeys, right.Schema())
		if err != nil {
			return nil, err
		}
		out := append(append(plan.Schema{}, left.Schema()...), right.Schema()...)
		if cfg.SortMergeJoin {
			return &SortMergeJoinExec{Left: left, Right: right, LeftKeys: lk, RightKeys: rk, Type: n.Type, OutSchema: out}, nil
		}
		return &HashJoinExec{Left: left, Right: right, LeftKeys: lk, RightKeys: rk, Type: n.Type, OutSchema: out}, nil
	case *plan.AggregateNode:
		child, err := compileNode(n.Child, cfg)
		if err != nil {
			return nil, err
		}
		groups := make([]plan.NamedExpr, len(n.GroupBy))
		schema := make(plan.Schema, 0, len(n.GroupBy)+len(n.Aggs))
		for i, g := range n.GroupBy {
			e := plan.CloneExpr(g.Expr)
			if err := plan.Resolve(e, child.Schema()); err != nil {
				return nil, err
			}
			groups[i] = plan.NamedExpr{Expr: e, Name: g.Name}
			schema = append(schema, plan.Field{Name: g.Name, Type: e.Type()})
		}
		aggs := make([]plan.AggExpr, len(n.Aggs))
		for i, a := range n.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				arg := plan.CloneExpr(a.Arg)
				if err := plan.Resolve(arg, child.Schema()); err != nil {
					return nil, err
				}
				aggs[i].Arg = arg
			}
			schema = append(schema, plan.Field{Name: a.Name, Type: aggs[i].Type()})
		}
		return &HashAggExec{GroupBy: groups, Aggs: aggs, OutSchema: schema, Child: child}, nil
	case *plan.SortNode:
		child, err := compileNode(n.Child, cfg)
		if err != nil {
			return nil, err
		}
		orders := make([]plan.SortOrder, len(n.Orders))
		for i, o := range n.Orders {
			e := plan.CloneExpr(o.Expr)
			if err := plan.Resolve(e, child.Schema()); err != nil {
				return nil, err
			}
			orders[i] = plan.SortOrder{Expr: e, Desc: o.Desc}
		}
		return &SortExec{Orders: orders, Child: child}, nil
	case *plan.LimitNode:
		child, err := compileNode(n.Child, cfg)
		if err != nil {
			return nil, err
		}
		return &LimitExec{N: n.N, Child: child}, nil
	case *plan.UnionNode:
		inputs := make([]PhysicalPlan, len(n.Inputs))
		for i, c := range n.Inputs {
			in, err := compileNode(c, cfg)
			if err != nil {
				return nil, err
			}
			inputs[i] = in
		}
		for i := 1; i < len(inputs); i++ {
			if len(inputs[i].Schema()) != len(inputs[0].Schema()) {
				return nil, fmt.Errorf("exec: union input %d has %d columns, want %d",
					i, len(inputs[i].Schema()), len(inputs[0].Schema()))
			}
		}
		return &UnionExec{Inputs: inputs}, nil
	}
	return nil, fmt.Errorf("exec: cannot compile %T", p)
}

func resolveAll(es []plan.Expr, schema plan.Schema) ([]plan.Expr, error) {
	out := make([]plan.Expr, len(es))
	for i, e := range es {
		c := plan.CloneExpr(e)
		if err := plan.Resolve(c, schema); err != nil {
			return nil, err
		}
		out[i] = c
	}
	return out, nil
}

func compileScan(n *plan.ScanNode) (PhysicalPlan, error) {
	rel, ok := n.Relation.(datasource.PrunedFilteredScan)
	if !ok {
		return nil, fmt.Errorf("exec: relation %q does not support scanning", n.Relation.Name())
	}
	outSchema := n.Schema()
	// Required columns are passed to the source by its own (bare) names.
	required := make([]string, len(outSchema))
	for i, f := range outSchema {
		required[i] = bare(f.Name)
	}
	// Translate pushed predicates to source filters.
	var filters []datasource.Filter
	var pushedExprs []plan.Expr
	var engineOnly []plan.Expr
	for _, e := range n.Pushed {
		f, ok := translateFilter(e, rel.Schema())
		if !ok {
			engineOnly = append(engineOnly, e)
			continue
		}
		filters = append(filters, f)
		pushedExprs = append(pushedExprs, e)
	}
	parts, err := rel.BuildScan(required, filters)
	if err != nil {
		return nil, err
	}
	var scan PhysicalPlan = &ScanExec{
		Source:     rel,
		Columns:    required,
		Filters:    filters,
		OutSchema:  outSchema,
		Partitions: parts,
	}
	// Re-apply exactly the filters the source declares unhandled, plus any
	// predicate that had no source translation.
	unhandled := rel.UnhandledFilters(filters)
	reapply := append([]plan.Expr{}, engineOnly...)
	for i, f := range filters {
		if containsFilter(unhandled, f) {
			reapply = append(reapply, pushedExprs[i])
		}
	}
	if cond := plan.CombineConjuncts(reapply); cond != nil {
		c := plan.CloneExpr(cond)
		if err := plan.Resolve(c, outSchema); err != nil {
			return nil, err
		}
		scan = &FilterExec{Cond: c, Child: scan}
	}
	return scan, nil
}

func containsFilter(fs []datasource.Filter, f datasource.Filter) bool {
	for _, x := range fs {
		if x.String() == f.String() {
			return true
		}
	}
	return false
}

func bare(name string) string {
	if i := strings.LastIndex(name, "."); i >= 0 {
		return name[i+1:]
	}
	return name
}

// translateFilter maps a pushable predicate to the data-source filter
// language, coercing literals to the source column's type. Column names are
// stripped of their alias qualifier.
func translateFilter(e plan.Expr, srcSchema plan.Schema) (datasource.Filter, bool) {
	switch x := e.(type) {
	case *plan.Comparison:
		col, lit, flipped := columnAndLiteral(x.L, x.R)
		if col == "" {
			return nil, false
		}
		v, ok := coerceTo(srcSchema, col, lit)
		if !ok {
			return nil, false
		}
		op := x.Op
		if flipped {
			op = flipOp(op)
		}
		switch op {
		case plan.OpEq:
			return datasource.EqualTo{Column: col, Value: v}, true
		case plan.OpNe:
			return datasource.NotEqual{Column: col, Value: v}, true
		case plan.OpLt:
			return datasource.LessThan{Column: col, Value: v}, true
		case plan.OpLe:
			return datasource.LessThanOrEqual{Column: col, Value: v}, true
		case plan.OpGt:
			return datasource.GreaterThan{Column: col, Value: v}, true
		case plan.OpGe:
			return datasource.GreaterThanOrEqual{Column: col, Value: v}, true
		}
		return nil, false
	case *plan.In:
		c, ok := x.E.(*plan.ColumnRef)
		if !ok {
			return nil, false
		}
		col := bare(c.Name)
		vals := make([]any, 0, len(x.Values))
		for _, ve := range x.Values {
			lit, ok := ve.(*plan.Literal)
			if !ok {
				return nil, false
			}
			v, ok := coerceTo(srcSchema, col, lit.Val)
			if !ok {
				return nil, false
			}
			vals = append(vals, v)
		}
		if x.Negate {
			return datasource.NotIn{Column: col, Values: vals}, true
		}
		return datasource.In{Column: col, Values: vals}, true
	case *plan.Like:
		c, ok := x.E.(*plan.ColumnRef)
		if !ok {
			return nil, false
		}
		i := strings.IndexAny(x.Pattern, "%_")
		if i < 0 || i != len(x.Pattern)-1 || x.Pattern[i] != '%' {
			return nil, false
		}
		return datasource.StringStartsWith{Column: bare(c.Name), Prefix: x.Pattern[:i]}, true
	case *plan.And:
		l, ok := translateFilter(x.L, srcSchema)
		if !ok {
			return nil, false
		}
		r, ok := translateFilter(x.R, srcSchema)
		if !ok {
			return nil, false
		}
		return datasource.AndFilter{Left: l, Right: r}, true
	case *plan.Or:
		l, ok := translateFilter(x.L, srcSchema)
		if !ok {
			return nil, false
		}
		r, ok := translateFilter(x.R, srcSchema)
		if !ok {
			return nil, false
		}
		return datasource.OrFilter{Left: l, Right: r}, true
	}
	return nil, false
}

func columnAndLiteral(l, r plan.Expr) (col string, val any, flipped bool) {
	if c, ok := l.(*plan.ColumnRef); ok {
		if lit, ok := r.(*plan.Literal); ok {
			return bare(c.Name), lit.Val, false
		}
	}
	if c, ok := r.(*plan.ColumnRef); ok {
		if lit, ok := l.(*plan.Literal); ok {
			return bare(c.Name), lit.Val, true
		}
	}
	return "", nil, false
}

func flipOp(op plan.CmpOp) plan.CmpOp {
	switch op {
	case plan.OpLt:
		return plan.OpGt
	case plan.OpLe:
		return plan.OpGe
	case plan.OpGt:
		return plan.OpLt
	case plan.OpGe:
		return plan.OpLe
	}
	return op
}

func coerceTo(schema plan.Schema, col string, v any) (any, bool) {
	f, err := schema.Field(col)
	if err != nil {
		return nil, false
	}
	out, err := plan.CoerceLiteral(v, f.Type)
	if err != nil {
		return nil, false
	}
	return out, true
}
