package exec

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/trace"
)

// TestRetriedTaskSpanIntegrity: a task failing once with a transport error
// leaves two task spans under the trace — the failed attempt tagged
// outcome=retried, and a clean second attempt with a higher attempt number.
func TestRetriedTaskSpanIntegrity(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1", "h2"}, 1, m)
	s.SetTaskRetry(3, RetryableTransport)

	var runs int32
	tasks := []Task{{Run: func(context.Context) error {
		if atomic.AddInt32(&runs, 1) == 1 {
			return fmt.Errorf("scan: %w", rpc.ErrHostDown)
		}
		return nil
	}}}

	tr := trace.New("retried-run")
	if err := s.RunContext(trace.NewContext(context.Background(), tr), tasks); err != nil {
		t.Fatalf("run: %v", err)
	}
	tr.Finish()

	spans := tr.Find("task")
	if len(spans) != 2 {
		t.Fatalf("found %d task spans, want 2 (one per attempt):\n%s", len(spans), tr.Render())
	}
	var retried, clean *trace.Span
	for _, sp := range spans {
		if sp.Tag("outcome") == "retried" {
			retried = sp
		} else {
			clean = sp
		}
	}
	if retried == nil || clean == nil {
		t.Fatalf("want one retried and one clean attempt:\n%s", tr.Render())
	}
	if retried.Status() != trace.StatusError {
		t.Errorf("retried attempt status = %q, want %q", retried.Status(), trace.StatusError)
	}
	if clean.Status() != "" {
		t.Errorf("second attempt status = %q, want clean", clean.Status())
	}
	if retried.Attr("attempt") >= clean.Attr("attempt") {
		t.Errorf("attempt numbers: retried=%d clean=%d, want retried < clean",
			retried.Attr("attempt"), clean.Attr("attempt"))
	}
	if got := countRetriedTasks(tr.Root()); got != 1 {
		t.Errorf("countRetriedTasks = %d, want 1", got)
	}
}

// TestInstrumentRecordsActualsAndNestsSpans: an instrumented filter-over-
// scan plan records per-operator rows/bytes/wall time, renders them in
// ExplainAnalyzed, and nests op spans (and their tasks) by operator.
func TestInstrumentRecordsActualsAndNestsSpans(t *testing.T) {
	rel := usersMem(t, 100)
	lp := plan.Optimize(&plan.FilterNode{
		Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(5)},
		Child: &plan.ScanNode{Relation: rel},
	})
	phys, err := Compile(lp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	root := Instrument(phys)

	ctx, _ := testCtx()
	tr := trace.New("analyze")
	ctx.Ctx = trace.NewContext(context.Background(), tr)
	rows, err := root.Execute(ctx)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	tr.Finish()

	st, ok := OpStatsOf(root)
	if !ok {
		t.Fatal("root is not instrumented")
	}
	if !st.Executed || st.Rows != int64(len(rows)) {
		t.Errorf("root stats = %+v, want executed with rows=%d", st, len(rows))
	}
	if st.Bytes <= 0 {
		t.Errorf("root bytes = %d, want > 0", st.Bytes)
	}

	out := ExplainAnalyzed(root)
	if !strings.Contains(out, fmt.Sprintf("(actual rows=%d", len(rows))) {
		t.Errorf("ExplainAnalyzed missing root actuals:\n%s", out)
	}
	if strings.Contains(out, "never executed") {
		t.Errorf("ExplainAnalyzed reports unexecuted operators:\n%s", out)
	}

	// The scan's op span must sit below the root operator's span, and the
	// scan's partition tasks below the scan span.
	scanSpans := tr.Find("op:scan")
	if len(scanSpans) != 1 {
		t.Fatalf("found %d op:scan spans, want 1:\n%s", len(scanSpans), tr.Render())
	}
	var tasksUnderScan int
	for _, c := range scanSpans[0].Children() {
		if c.Name() == "task" {
			tasksUnderScan++
		}
	}
	if tasksUnderScan == 0 {
		t.Errorf("no task spans nested under op:scan:\n%s", tr.Render())
	}
}

// TestInstrumentedPipelineChainNotWrapped: fusing then instrumenting must
// leave the display-only Chain subtree unwrapped — executing the pipeline
// never touches it, so it must render without phantom actuals.
func TestInstrumentedPipelineChainNotWrapped(t *testing.T) {
	rel := usersMem(t, 40)
	lp := plan.Optimize(&plan.LimitNode{
		N: 7,
		Child: &plan.FilterNode{
			Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(100)},
			Child: &plan.ScanNode{Relation: rel},
		},
	})
	phys, err := Compile(lp)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	root := Instrument(FusePipelines(phys))

	ctx, _ := testCtx()
	rows, err := root.Execute(ctx)
	if err != nil {
		t.Fatalf("execute: %v", err)
	}
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	out := ExplainAnalyzed(root)
	if !strings.Contains(out, "PipelineExec") {
		t.Fatalf("plan did not fuse:\n%s", out)
	}
	// Exactly one annotated line: the pipeline itself; the Chain subtree
	// renders plain.
	if got := strings.Count(out, "(actual "); got != 1 {
		t.Errorf("annotated lines = %d, want 1 (pipeline only):\n%s", got, out)
	}
}
