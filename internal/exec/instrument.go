package exec

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/trace"
)

// OpStats are the per-operator actuals captured by an instrumented run.
type OpStats struct {
	// Rows and Bytes measure the operator's output.
	Rows, Bytes int64
	// Wall is the operator's inclusive wall time (children included),
	// matching how EXPLAIN ANALYZE reports actual time elsewhere.
	Wall time.Duration
	// Executed distinguishes "produced zero rows" from "never ran".
	Executed bool
}

// instrumented decorates one physical operator: Execute is timed, output
// rows and bytes are counted, and an "op:<name>" span is opened so tasks
// and RPCs issued by the operator nest under it in the query trace.
type instrumented struct {
	inner PhysicalPlan

	mu    sync.Mutex
	stats OpStats
	span  *trace.Span
}

// Instrument wraps every operator in p with an actuals-recording decorator
// and returns the wrapped root. Child pointers are rewritten in place, so
// Children() walks the decorated tree. A PipelineExec's Chain subtree is
// display-only (the fused chain executes as one streaming operator) and is
// deliberately left unwrapped — wrapping it would re-execute the scan.
func Instrument(p PhysicalPlan) PhysicalPlan {
	switch n := p.(type) {
	case *FilterExec:
		n.Child = Instrument(n.Child)
	case *ProjectExec:
		n.Child = Instrument(n.Child)
	case *LimitExec:
		n.Child = Instrument(n.Child)
	case *SortExec:
		n.Child = Instrument(n.Child)
	case *HashAggExec:
		n.Child = Instrument(n.Child)
	case *HashJoinExec:
		n.Left = Instrument(n.Left)
		n.Right = Instrument(n.Right)
	case *SortMergeJoinExec:
		n.Left = Instrument(n.Left)
		n.Right = Instrument(n.Right)
	case *UnionExec:
		for i, in := range n.Inputs {
			n.Inputs[i] = Instrument(in)
		}
	}
	return &instrumented{inner: p}
}

// Schema implements PhysicalPlan.
func (n *instrumented) Schema() plan.Schema { return n.inner.Schema() }

// Children implements PhysicalPlan.
func (n *instrumented) Children() []PhysicalPlan { return n.inner.Children() }

// Explain implements PhysicalPlan.
func (n *instrumented) Explain() string { return n.inner.Explain() }

// Execute implements PhysicalPlan, recording actuals around the inner
// operator. The op span's context is threaded to children through a copied
// Context so their spans (and the tasks they launch) nest under this one.
func (n *instrumented) Execute(ctx *Context) ([]plan.Row, error) {
	sctx, sp := trace.StartSpan(ctx.ctx(), "op:"+opName(n.inner))
	child := *ctx
	child.Ctx = sctx
	start := time.Now()
	rows, err := n.inner.Execute(&child)
	wall := time.Since(start)
	var bytes int64
	for _, r := range rows {
		bytes += int64(plan.RowSize(r))
	}
	sp.SetAttr("rows", int64(len(rows)))
	sp.SetAttr("bytes", bytes)
	sp.SetError(err)
	sp.End()
	n.mu.Lock()
	n.stats.Executed = true
	n.stats.Rows += int64(len(rows))
	n.stats.Bytes += bytes
	n.stats.Wall += wall
	n.span = sp
	n.mu.Unlock()
	return rows, err
}

// Stats returns the actuals captured by the last Execute.
func (n *instrumented) Stats() OpStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// OpStatsOf extracts the recorded actuals when p is an instrumented node.
func OpStatsOf(p PhysicalPlan) (OpStats, bool) {
	n, ok := p.(*instrumented)
	if !ok {
		return OpStats{}, false
	}
	return n.Stats(), true
}

// ExplainAnalyzed renders the instrumented tree annotated with the actuals
// from the last Execute: output rows and bytes, inclusive wall time, and
// task retries observed under each operator's span.
func ExplainAnalyzed(p PhysicalPlan) string {
	var b strings.Builder
	explainAnalyzed(&b, p, 0)
	return b.String()
}

func explainAnalyzed(b *strings.Builder, p PhysicalPlan, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n, ok := p.(*instrumented); ok {
		b.WriteString(n.inner.Explain())
		n.mu.Lock()
		st, sp := n.stats, n.span
		n.mu.Unlock()
		if st.Executed {
			fmt.Fprintf(b, "  (actual rows=%d bytes=%d time=%s", st.Rows, st.Bytes, st.Wall.Round(time.Microsecond))
			if r := countRetriedTasks(sp); r > 0 {
				fmt.Fprintf(b, " retries=%d", r)
			}
			b.WriteByte(')')
		} else {
			b.WriteString("  (never executed)")
		}
	} else {
		b.WriteString(p.Explain())
	}
	b.WriteByte('\n')
	for _, c := range p.Children() {
		explainAnalyzed(b, c, depth+1)
	}
}

// countRetriedTasks counts task attempts under sp that ended in a retry.
func countRetriedTasks(sp *trace.Span) int64 {
	if sp == nil {
		return 0
	}
	var n int64
	if sp.Name() == "task" && sp.Tag("outcome") == "retried" {
		n++
	}
	for _, c := range sp.Children() {
		n += countRetriedTasks(c)
	}
	return n
}

// opName maps an operator to its span name suffix.
func opName(p PhysicalPlan) string {
	switch p.(type) {
	case *ScanExec:
		return "scan"
	case *PipelineExec:
		return "pipeline"
	case *AggPipelineExec:
		return "agg_pipeline"
	case *FilterExec:
		return "filter"
	case *ProjectExec:
		return "project"
	case *HashJoinExec:
		return "hash_join"
	case *SortMergeJoinExec:
		return "merge_join"
	case *SortExec:
		return "sort"
	case *UnionExec:
		return "union"
	case *LimitExec:
		return "limit"
	case *HashAggExec:
		return "aggregate"
	}
	return "op"
}
