package exec

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// Context carries execution-wide machinery.
type Context struct {
	// Ctx bounds the whole query: every task, RPC, retry backoff, and
	// latency sleep under this execution derives from it. nil means no
	// deadline (context.Background()).
	Ctx       context.Context
	Scheduler *Scheduler
	Meter     *metrics.Registry
	// ShufflePartitions is the reduce-side parallelism for joins and
	// aggregations; defaults to the scheduler's total slots.
	ShufflePartitions int
	// BroadcastThreshold switches a join to broadcast mode when its right
	// (build) side has at most this many rows — neither side shuffles.
	// 0 disables broadcasting.
	BroadcastThreshold int
}

// ctx returns the query context, defaulting to context.Background().
func (c *Context) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}

// meter returns the dual-sink meter for this execution: the session
// registry plus any per-query scoped registry carried by Ctx.
func (c *Context) meter() metrics.Meter {
	return metrics.Scoped(c.ctx(), c.Meter)
}

func (c *Context) shufflePartitions() int {
	if c.ShufflePartitions > 0 {
		return c.ShufflePartitions
	}
	if n := c.Scheduler.TotalSlots(); n > 0 {
		return n
	}
	return 1
}

// PhysicalPlan is an executable operator tree.
type PhysicalPlan interface {
	// Schema describes the operator's output.
	Schema() plan.Schema
	// Execute materializes the operator's rows.
	Execute(ctx *Context) ([]plan.Row, error)
	// Explain renders one line for EXPLAIN output.
	Explain() string
	// Children returns input operators.
	Children() []PhysicalPlan
}

// ScanExec reads a data source's partitions in parallel with locality.
type ScanExec struct {
	Source     datasource.PrunedFilteredScan
	Columns    []string
	Filters    []datasource.Filter
	OutSchema  plan.Schema
	Partitions []datasource.Partition
}

// Schema implements PhysicalPlan.
func (s *ScanExec) Schema() plan.Schema { return s.OutSchema }

// Children implements PhysicalPlan.
func (s *ScanExec) Children() []PhysicalPlan { return nil }

// Explain implements PhysicalPlan.
func (s *ScanExec) Explain() string {
	parts := make([]string, len(s.Filters))
	for i, f := range s.Filters {
		parts[i] = f.String()
	}
	return fmt.Sprintf("ScanExec %s cols=[%s] pushed=[%s] partitions=%d",
		s.Source.Name(), strings.Join(s.Columns, ","), strings.Join(parts, " AND "), len(s.Partitions))
}

// Execute implements PhysicalPlan: one task per partition, placed on the
// partition's preferred host.
func (s *ScanExec) Execute(ctx *Context) ([]plan.Row, error) {
	results := make([][]plan.Row, len(s.Partitions))
	tasks := make([]Task, len(s.Partitions))
	for i, p := range s.Partitions {
		i, p := i, p
		tasks[i] = Task{
			PreferredHost: p.PreferredHost(),
			Run: func(tctx context.Context) error {
				rows, err := p.Compute(tctx)
				if err != nil {
					return err
				}
				var bytes int64
				for _, r := range rows {
					bytes += int64(plan.RowSize(r))
				}
				m := metrics.Scoped(tctx, ctx.Meter)
				m.Add(metrics.MemoryCharged, bytes)
				// Materialized scans hold every decoded row until the query
				// finishes; the streamed pipeline releases per batch, and the
				// (MemoryHeld, MemoryPeak) pair makes that difference visible.
				m.AddPeak(metrics.MemoryHeld, metrics.MemoryPeak, bytes)
				results[i] = rows
				return nil
			},
		}
	}
	if err := ctx.Scheduler.RunContext(ctx.ctx(), tasks); err != nil {
		return nil, err
	}
	var out []plan.Row
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// FilterExec keeps rows matching a resolved predicate.
type FilterExec struct {
	Cond  plan.Expr
	Child PhysicalPlan
}

// Schema implements PhysicalPlan.
func (f *FilterExec) Schema() plan.Schema { return f.Child.Schema() }

// Children implements PhysicalPlan.
func (f *FilterExec) Children() []PhysicalPlan { return []PhysicalPlan{f.Child} }

// Explain implements PhysicalPlan.
func (f *FilterExec) Explain() string { return "FilterExec " + f.Cond.String() }

// Execute implements PhysicalPlan.
func (f *FilterExec) Execute(ctx *Context) ([]plan.Row, error) {
	rows, err := f.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	out := rows[:0:0]
	for _, r := range rows {
		ok, err := plan.EvalPredicate(f.Cond, r)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// ProjectExec computes output expressions per row.
type ProjectExec struct {
	Exprs     []plan.NamedExpr
	OutSchema plan.Schema
	Child     PhysicalPlan
}

// Schema implements PhysicalPlan.
func (p *ProjectExec) Schema() plan.Schema { return p.OutSchema }

// Children implements PhysicalPlan.
func (p *ProjectExec) Children() []PhysicalPlan { return []PhysicalPlan{p.Child} }

// Explain implements PhysicalPlan.
func (p *ProjectExec) Explain() string {
	parts := make([]string, len(p.Exprs))
	for i, ne := range p.Exprs {
		parts[i] = ne.Name
	}
	return "ProjectExec " + strings.Join(parts, ", ")
}

// Execute implements PhysicalPlan.
func (p *ProjectExec) Execute(ctx *Context) ([]plan.Row, error) {
	rows, err := p.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]plan.Row, len(rows))
	for i, r := range rows {
		nr := make(plan.Row, len(p.Exprs))
		for j, ne := range p.Exprs {
			v, err := ne.Expr.Eval(r)
			if err != nil {
				return nil, err
			}
			nr[j] = v
		}
		out[i] = nr
	}
	return out, nil
}

// keyString renders a key tuple unambiguously: each value is rendered and
// length-prefixed, so no choice of in-value bytes can make two different
// tuples collide.
func keyString(r plan.Row, idx []int) string {
	var b strings.Builder
	for _, i := range idx {
		v := fmt.Sprintf("%v", r[i])
		fmt.Fprintf(&b, "%d,%s;", len(v), v)
	}
	return b.String()
}

// exchange hash-partitions rows by key into n buckets, metering every
// moved record as shuffle traffic.
func exchange(ctx *Context, rows []plan.Row, keyIdx []int, n int) [][]plan.Row {
	buckets := make([][]plan.Row, n)
	var bytes int64
	for _, r := range rows {
		h := fnv.New64a()
		h.Write([]byte(keyString(r, keyIdx)))
		b := int(h.Sum64() % uint64(n))
		buckets[b] = append(buckets[b], r)
		bytes += int64(plan.RowSize(r))
	}
	m := ctx.meter()
	m.Add(metrics.ShuffleBytes, bytes)
	m.Add(metrics.ShuffleRecords, int64(len(rows)))
	return buckets
}

// HashJoinExec is an equi-join: both sides shuffle by key, each bucket
// pair builds and probes in its own task. Left-outer joins NULL-extend
// unmatched left rows.
type HashJoinExec struct {
	Left, Right         PhysicalPlan
	LeftKeys, RightKeys []plan.Expr // resolved against the child schemas
	Type                plan.JoinType
	OutSchema           plan.Schema
	// swapped marks a runtime build-side swap: output rows re-assemble in
	// the original column order (probe side second).
	swapped bool
}

// Schema implements PhysicalPlan.
func (j *HashJoinExec) Schema() plan.Schema { return j.OutSchema }

// Children implements PhysicalPlan.
func (j *HashJoinExec) Children() []PhysicalPlan { return []PhysicalPlan{j.Left, j.Right} }

// Explain implements PhysicalPlan.
func (j *HashJoinExec) Explain() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = fmt.Sprintf("%s = %s", j.LeftKeys[i], j.RightKeys[i])
	}
	return fmt.Sprintf("HashJoinExec[%s] %s", j.Type, strings.Join(parts, " AND "))
}

// Execute implements PhysicalPlan.
func (j *HashJoinExec) Execute(ctx *Context) ([]plan.Row, error) {
	left, err := j.Left.Execute(ctx)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ctx)
	if err != nil {
		return nil, err
	}
	lKey := keyIndexes(j.LeftKeys)
	rKey := keyIndexes(j.RightKeys)
	if lKey == nil || rKey == nil {
		return nil, fmt.Errorf("exec: join keys must be resolved column references")
	}
	// Broadcast mode: a small build side skips the shuffle entirely — the
	// BroadcastHashJoin shape Spark picks for dimension tables.
	if ctx.BroadcastThreshold > 0 && len(right) <= ctx.BroadcastThreshold {
		return j.broadcast(ctx, left, right, lKey, rKey)
	}
	// Cost-based build-side selection: inner joins build the hash table on
	// whichever side turned out smaller (output column order is unchanged
	// by re-labelling sides). Left-outer must stream the left side.
	if j.Type == plan.InnerJoin && len(left) < len(right) {
		return (&HashJoinExec{
			Left: j.Right, Right: j.Left,
			LeftKeys: j.RightKeys, RightKeys: j.LeftKeys,
			Type:      plan.InnerJoin,
			OutSchema: j.OutSchema,
			swapped:   true,
		}).joinMaterialized(ctx, right, left, rKey, lKey)
	}
	return j.joinMaterialized(ctx, left, right, lKey, rKey)
}

// joinMaterialized runs the shuffle hash join over already-materialized
// inputs. When swapped is set, output rows are re-assembled in the original
// (pre-swap) column order.
func (j *HashJoinExec) joinMaterialized(ctx *Context, left, right []plan.Row, lKey, rKey []int) ([]plan.Row, error) {
	n := ctx.shufflePartitions()
	lb := exchange(ctx, left, lKey, n)
	rb := exchange(ctx, right, rKey, n)

	rightWidth := len(j.Right.Schema())
	results := make([][]plan.Row, n)
	tasks := make([]Task, 0, n)
	for b := 0; b < n; b++ {
		b := b
		tasks = append(tasks, Task{Run: func(_ context.Context) error {
			// Build on the right so left-outer can track unmatched left
			// rows while streaming the (usually larger) left side.
			build := make(map[string][]plan.Row)
			for _, r := range rb[b] {
				if hasNilKey(r, rKey) {
					continue // SQL: NULL keys never match
				}
				build[joinKey(r, rKey)] = append(build[joinKey(r, rKey)], r)
			}
			var out []plan.Row
			for _, l := range lb[b] {
				var matches []plan.Row
				if !hasNilKey(l, lKey) {
					matches = build[joinKey(l, lKey)]
				}
				if len(matches) == 0 {
					if j.Type == plan.LeftOuterJoin {
						joined := make(plan.Row, len(l)+rightWidth)
						copy(joined, l)
						out = append(out, joined)
					}
					continue
				}
				for _, r := range matches {
					joined := make(plan.Row, 0, len(l)+len(r))
					if j.swapped {
						joined = append(joined, r...)
						joined = append(joined, l...)
					} else {
						joined = append(joined, l...)
						joined = append(joined, r...)
					}
					out = append(out, joined)
				}
			}
			results[b] = out
			return nil
		}})
	}
	if err := ctx.Scheduler.RunContext(ctx.ctx(), tasks); err != nil {
		return nil, err
	}
	var out []plan.Row
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// broadcast joins against a globally built hash of the right side, probing
// left partitions in parallel without any exchange.
func (j *HashJoinExec) broadcast(ctx *Context, left, right []plan.Row, lKey, rKey []int) ([]plan.Row, error) {
	build := make(map[string][]plan.Row, len(right))
	for _, r := range right {
		if hasNilKey(r, rKey) {
			continue
		}
		build[joinKey(r, rKey)] = append(build[joinKey(r, rKey)], r)
	}
	rightWidth := len(j.Right.Schema())
	n := ctx.shufflePartitions()
	chunk := (len(left) + n - 1) / n
	if chunk == 0 {
		chunk = 1
	}
	results := make([][]plan.Row, 0, n)
	var tasks []Task
	for lo := 0; lo < len(left); lo += chunk {
		hi := lo + chunk
		if hi > len(left) {
			hi = len(left)
		}
		idx := len(results)
		results = append(results, nil)
		part := left[lo:hi]
		tasks = append(tasks, Task{Run: func(_ context.Context) error {
			var out []plan.Row
			for _, l := range part {
				var matches []plan.Row
				if !hasNilKey(l, lKey) {
					matches = build[joinKey(l, lKey)]
				}
				if len(matches) == 0 {
					if j.Type == plan.LeftOuterJoin {
						joined := make(plan.Row, len(l)+rightWidth)
						copy(joined, l)
						out = append(out, joined)
					}
					continue
				}
				for _, r := range matches {
					joined := make(plan.Row, 0, len(l)+len(r))
					joined = append(joined, l...)
					joined = append(joined, r...)
					out = append(out, joined)
				}
			}
			results[idx] = out
			return nil
		}})
	}
	if err := ctx.Scheduler.RunContext(ctx.ctx(), tasks); err != nil {
		return nil, err
	}
	var out []plan.Row
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

func keyIndexes(keys []plan.Expr) []int {
	out := make([]int, len(keys))
	for i, k := range keys {
		c, ok := k.(*plan.ColumnRef)
		if !ok || c.Index() < 0 {
			return nil
		}
		out[i] = c.Index()
	}
	return out
}

func hasNilKey(r plan.Row, idx []int) bool {
	for _, i := range idx {
		if r[i] == nil {
			return true
		}
	}
	return false
}

func joinKey(r plan.Row, idx []int) string { return keyString(r, idx) }

// SortExec orders rows by the resolved sort keys.
type SortExec struct {
	Orders []plan.SortOrder
	Child  PhysicalPlan
}

// Schema implements PhysicalPlan.
func (s *SortExec) Schema() plan.Schema { return s.Child.Schema() }

// Children implements PhysicalPlan.
func (s *SortExec) Children() []PhysicalPlan { return []PhysicalPlan{s.Child} }

// Explain implements PhysicalPlan.
func (s *SortExec) Explain() string { return "SortExec" }

// Execute implements PhysicalPlan.
func (s *SortExec) Execute(ctx *Context) ([]plan.Row, error) {
	rows, err := s.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, o := range s.Orders {
			vi, err := o.Expr.Eval(rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := o.Expr.Eval(rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			c, err := plan.Compare(vi, vj)
			if err != nil {
				sortErr = err
				return false
			}
			if c != 0 {
				if o.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	return rows, nil
}

// UnionExec concatenates child outputs (UNION ALL).
type UnionExec struct {
	Inputs []PhysicalPlan
}

// Schema implements PhysicalPlan.
func (u *UnionExec) Schema() plan.Schema { return u.Inputs[0].Schema() }

// Children implements PhysicalPlan.
func (u *UnionExec) Children() []PhysicalPlan { return u.Inputs }

// Explain implements PhysicalPlan.
func (u *UnionExec) Explain() string { return fmt.Sprintf("UnionExec (%d inputs)", len(u.Inputs)) }

// Execute implements PhysicalPlan.
func (u *UnionExec) Execute(ctx *Context) ([]plan.Row, error) {
	var out []plan.Row
	for _, in := range u.Inputs {
		rows, err := in.Execute(ctx)
		if err != nil {
			return nil, err
		}
		out = append(out, rows...)
	}
	return out, nil
}

// LimitExec keeps the first N rows.
type LimitExec struct {
	N     int
	Child PhysicalPlan
}

// Schema implements PhysicalPlan.
func (l *LimitExec) Schema() plan.Schema { return l.Child.Schema() }

// Children implements PhysicalPlan.
func (l *LimitExec) Children() []PhysicalPlan { return []PhysicalPlan{l.Child} }

// Explain implements PhysicalPlan.
func (l *LimitExec) Explain() string { return fmt.Sprintf("LimitExec %d", l.N) }

// Execute implements PhysicalPlan.
func (l *LimitExec) Execute(ctx *Context) ([]plan.Row, error) {
	rows, err := l.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	if len(rows) > l.N {
		rows = rows[:l.N]
	}
	return rows, nil
}

// HashAggExec groups rows and computes aggregates. It pre-aggregates
// locally, exchanges the (much smaller) partial states, and merges them in
// parallel — the partial-aggregation shape Spark uses, which keeps the
// shuffle proportional to the number of groups rather than rows.
type HashAggExec struct {
	GroupBy   []plan.NamedExpr
	Aggs      []plan.AggExpr
	OutSchema plan.Schema
	Child     PhysicalPlan
}

// Schema implements PhysicalPlan.
func (a *HashAggExec) Schema() plan.Schema { return a.OutSchema }

// Children implements PhysicalPlan.
func (a *HashAggExec) Children() []PhysicalPlan { return []PhysicalPlan{a.Child} }

// Explain implements PhysicalPlan.
func (a *HashAggExec) Explain() string {
	groups := make([]string, len(a.GroupBy))
	for i, g := range a.GroupBy {
		groups[i] = g.Name
	}
	return "HashAggExec group=[" + strings.Join(groups, ",") + "]"
}

// accumulator holds partial state for one group.
type accumulator struct {
	groupVals []any
	states    []aggState
}

type aggState struct {
	count    int64
	sum      float64
	mean     float64 // Welford running mean
	m2       float64 // Welford running squared deviation
	min, max any
	distinct map[string]bool
}

func (s *aggState) update(kind plan.AggKind, v any) error {
	if v == nil {
		return nil
	}
	switch kind {
	case plan.AggCount:
		s.count++
	case plan.AggCountDistinct:
		if s.distinct == nil {
			s.distinct = make(map[string]bool)
		}
		s.distinct[fmt.Sprintf("%v", v)] = true
	case plan.AggSum, plan.AggAvg:
		f, ok := plan.ToFloat(v)
		if !ok {
			return fmt.Errorf("exec: %s over non-numeric %T", kind, v)
		}
		s.count++
		s.sum += f
	case plan.AggStddevSamp:
		f, ok := plan.ToFloat(v)
		if !ok {
			return fmt.Errorf("exec: stddev over non-numeric %T", v)
		}
		s.count++
		d := f - s.mean
		s.mean += d / float64(s.count)
		s.m2 += d * (f - s.mean)
	case plan.AggMin:
		if s.min == nil {
			s.min = v
		} else if c, err := plan.Compare(v, s.min); err != nil {
			return err
		} else if c < 0 {
			s.min = v
		}
	case plan.AggMax:
		if s.max == nil {
			s.max = v
		} else if c, err := plan.Compare(v, s.max); err != nil {
			return err
		} else if c > 0 {
			s.max = v
		}
	}
	return nil
}

func (s *aggState) merge(kind plan.AggKind, o *aggState) error {
	switch kind {
	case plan.AggCount:
		s.count += o.count
	case plan.AggCountDistinct:
		if s.distinct == nil {
			s.distinct = make(map[string]bool)
		}
		for k := range o.distinct {
			s.distinct[k] = true
		}
	case plan.AggSum, plan.AggAvg:
		s.count += o.count
		s.sum += o.sum
	case plan.AggStddevSamp:
		// Chan et al. parallel variance merge.
		if o.count == 0 {
			return nil
		}
		if s.count == 0 {
			*s = *o
			return nil
		}
		n := float64(s.count + o.count)
		d := o.mean - s.mean
		s.m2 += o.m2 + d*d*float64(s.count)*float64(o.count)/n
		s.mean += d * float64(o.count) / n
		s.count += o.count
	case plan.AggMin:
		if o.min != nil {
			return s.update(plan.AggMin, o.min)
		}
	case plan.AggMax:
		if o.max != nil {
			return s.update(plan.AggMax, o.max)
		}
	}
	return nil
}

func (s *aggState) final(kind plan.AggKind) any {
	switch kind {
	case plan.AggCount:
		return s.count
	case plan.AggCountDistinct:
		return int64(len(s.distinct))
	case plan.AggSum:
		if s.count == 0 {
			return nil
		}
		return s.sum
	case plan.AggAvg:
		if s.count == 0 {
			return nil
		}
		return s.sum / float64(s.count)
	case plan.AggStddevSamp:
		if s.count < 2 {
			return nil
		}
		return math.Sqrt(s.m2 / float64(s.count-1))
	case plan.AggMin:
		return s.min
	case plan.AggMax:
		return s.max
	}
	return nil
}

// stateSize approximates the shuffled size of a partial aggregate record.
func (a *accumulator) stateSize() int {
	n := len(a.states) * 40
	return n + plan.RowSize(a.groupVals)
}

// Execute implements PhysicalPlan.
func (a *HashAggExec) Execute(ctx *Context) ([]plan.Row, error) {
	rows, err := a.Child.Execute(ctx)
	if err != nil {
		return nil, err
	}
	// Phase 1: local partial aggregation.
	partials := make(map[string]*accumulator)
	for _, r := range rows {
		key, groupVals, err := a.groupOf(r)
		if err != nil {
			return nil, err
		}
		acc, ok := partials[key]
		if !ok {
			acc = &accumulator{groupVals: groupVals, states: make([]aggState, len(a.Aggs))}
			partials[key] = acc
		}
		for i, agg := range a.Aggs {
			var v any = int64(1) // COUNT(*) counts rows
			if agg.Arg != nil {
				v, err = agg.Arg.Eval(r)
				if err != nil {
					return nil, err
				}
			} else if agg.Kind != plan.AggCount {
				return nil, fmt.Errorf("exec: %s requires an argument", agg.Kind)
			}
			if agg.Kind == plan.AggCount && agg.Arg != nil && v == nil {
				continue // COUNT(col) skips NULLs
			}
			if err := acc.states[i].update(agg.Kind, v); err != nil {
				return nil, err
			}
		}
	}
	// Phase 2: exchange partial states by group key (metered shuffle).
	n := ctx.shufflePartitions()
	buckets := make([]map[string]*accumulator, n)
	for i := range buckets {
		buckets[i] = make(map[string]*accumulator)
	}
	var shuffleBytes int64
	for key, acc := range partials {
		h := fnv.New64a()
		h.Write([]byte(key))
		b := int(h.Sum64() % uint64(n))
		buckets[b][key] = acc
		shuffleBytes += int64(acc.stateSize())
	}
	m := ctx.meter()
	m.Add(metrics.ShuffleBytes, shuffleBytes)
	m.Add(metrics.ShuffleRecords, int64(len(partials)))
	// Phase 3: finalize per bucket in parallel.
	results := make([][]plan.Row, n)
	tasks := make([]Task, 0, n)
	for b := 0; b < n; b++ {
		b := b
		tasks = append(tasks, Task{Run: func(_ context.Context) error {
			var out []plan.Row
			for _, acc := range buckets[b] {
				row := make(plan.Row, 0, len(a.GroupBy)+len(a.Aggs))
				row = append(row, acc.groupVals...)
				for i, agg := range a.Aggs {
					row = append(row, acc.states[i].final(agg.Kind))
				}
				out = append(out, row)
			}
			results[b] = out
			return nil
		}})
	}
	if err := ctx.Scheduler.RunContext(ctx.ctx(), tasks); err != nil {
		return nil, err
	}
	var out []plan.Row
	for _, rs := range results {
		out = append(out, rs...)
	}
	// Global aggregates over an empty input still produce one row.
	if len(a.GroupBy) == 0 && len(out) == 0 {
		row := make(plan.Row, len(a.Aggs))
		for i, agg := range a.Aggs {
			var s aggState
			row[i] = s.final(agg.Kind)
		}
		out = append(out, row)
	}
	return out, nil
}

func (a *HashAggExec) groupOf(r plan.Row) (string, []any, error) {
	vals := make([]any, len(a.GroupBy))
	for i, g := range a.GroupBy {
		v, err := g.Expr.Eval(r)
		if err != nil {
			return "", nil, err
		}
		vals[i] = v
	}
	idx := make([]int, len(vals))
	for i := range idx {
		idx[i] = i
	}
	return keyString(vals, idx), vals, nil
}

// Explain renders the whole physical tree.
func Explain(p PhysicalPlan) string {
	var b strings.Builder
	var walk func(PhysicalPlan, int)
	walk = func(n PhysicalPlan, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(n.Explain())
		b.WriteByte('\n')
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}
