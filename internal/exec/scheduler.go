// Package exec is the physical execution layer: a locality-aware task
// scheduler with per-node executor pools (the Spark analogue, paper
// §III-A), physical operators compiled from logical plans, and a metered
// shuffle. The scheduler honours each partition's preferred host exactly
// the way SHC's getPreferredLocations contract expects (paper §VI-A.2):
// a task whose data lives on a host with executors runs on that host.
package exec

import (
	"fmt"
	"sync"

	"github.com/shc-go/shc/internal/metrics"
)

// Task is one schedulable unit of work.
type Task struct {
	// PreferredHost names where the task's data lives; "" means anywhere.
	PreferredHost string
	// Run does the work.
	Run func() error
}

// Scheduler distributes tasks over a set of hosts, each with a fixed
// number of executor slots. It is the simulator's stand-in for Spark's
// task scheduler + YARN executor allocation; the Fig. 6 experiment sweeps
// ExecutorsPerHost.
type Scheduler struct {
	hosts    []string
	slots    int
	meter    *metrics.Registry
	hostIdx  map[string]int
	rrCursor int
	mu       sync.Mutex
}

// NewScheduler creates a scheduler over hosts with slots executors each.
func NewScheduler(hosts []string, slotsPerHost int, meter *metrics.Registry) *Scheduler {
	if slotsPerHost <= 0 {
		slotsPerHost = 1
	}
	idx := make(map[string]int, len(hosts))
	for i, h := range hosts {
		idx[h] = i
	}
	return &Scheduler{hosts: hosts, slots: slotsPerHost, meter: meter, hostIdx: idx}
}

// Hosts returns the scheduler's host list.
func (s *Scheduler) Hosts() []string { return s.hosts }

// SlotsPerHost returns the per-host executor count.
func (s *Scheduler) SlotsPerHost() int { return s.slots }

// TotalSlots returns the cluster-wide executor count.
func (s *Scheduler) TotalSlots() int { return s.slots * len(s.hosts) }

// Run executes all tasks, placing each on its preferred host when that
// host has executors and falling back to round-robin otherwise. It blocks
// until every task finishes and returns the first error.
func (s *Scheduler) Run(tasks []Task) error {
	if len(s.hosts) == 0 {
		return fmt.Errorf("exec: scheduler has no hosts")
	}
	queues := make([][]Task, len(s.hosts))
	for _, t := range tasks {
		i, local := s.hostIdx[t.PreferredHost]
		if !local {
			s.mu.Lock()
			i = s.rrCursor % len(s.hosts)
			s.rrCursor++
			s.mu.Unlock()
		} else {
			s.meter.Inc(metrics.TasksLocal)
		}
		s.meter.Inc(metrics.TasksLaunched)
		queues[i] = append(queues[i], t)
	}

	errCh := make(chan error, len(tasks))
	var wg sync.WaitGroup
	for i := range queues {
		queue := queues[i]
		if len(queue) == 0 {
			continue
		}
		// Each host drains its queue with up to `slots` executor goroutines —
		// never more goroutines than tasks, so short queues don't pay for
		// idle workers.
		workers := s.slots
		if len(queue) < workers {
			workers = len(queue)
		}
		work := make(chan Task)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := range work {
					if err := t.Run(); err != nil {
						errCh <- err
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, t := range queue {
				work <- t
			}
			close(work)
		}()
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}
