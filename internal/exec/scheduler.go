// Package exec is the physical execution layer: a locality-aware task
// scheduler with per-node executor pools (the Spark analogue, paper
// §III-A), physical operators compiled from logical plans, and a metered
// shuffle. The scheduler honours each partition's preferred host exactly
// the way SHC's getPreferredLocations contract expects (paper §VI-A.2):
// a task whose data lives on a host with executors runs on that host.
package exec

import (
	"errors"
	"fmt"
	"sync"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// Task is one schedulable unit of work.
type Task struct {
	// PreferredHost names where the task's data lives; "" means anywhere.
	PreferredHost string
	// Run does the work.
	Run func() error
}

// RetryableTransport classifies the transport-level failures worth
// re-executing a task for: the host it talked to died or dropped the
// connection. Anything else (bad plans, decode errors, server-side logic
// errors) is deterministic and would fail identically elsewhere.
func RetryableTransport(err error) bool {
	return errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrConnClosed) || errors.Is(err, rpc.ErrUnknownHost)
}

// Scheduler distributes tasks over a set of hosts, each with a fixed
// number of executor slots. It is the simulator's stand-in for Spark's
// task scheduler + YARN executor allocation; the Fig. 6 experiment sweeps
// ExecutorsPerHost.
type Scheduler struct {
	hosts    []string
	slots    int
	meter    *metrics.Registry
	hostIdx  map[string]int
	rrCursor int
	mu       sync.Mutex

	// maxAttempts is the per-task attempt cap (1 = never re-execute);
	// retryable classifies which errors are worth another attempt. Both are
	// fixed before the scheduler runs queries (SetTaskRetry).
	maxAttempts int
	retryable   func(error) bool
}

// NewScheduler creates a scheduler over hosts with slots executors each.
func NewScheduler(hosts []string, slotsPerHost int, meter *metrics.Registry) *Scheduler {
	if slotsPerHost <= 0 {
		slotsPerHost = 1
	}
	idx := make(map[string]int, len(hosts))
	for i, h := range hosts {
		idx[h] = i
	}
	return &Scheduler{hosts: hosts, slots: slotsPerHost, meter: meter, hostIdx: idx, maxAttempts: 1}
}

// SetTaskRetry configures task re-execution, the lineage-based recovery
// contract of Spark-style engines: a task failing with an error recognized
// by retryable is re-queued on a different host, up to maxAttempts total
// attempts, before its error surfaces.
func (s *Scheduler) SetTaskRetry(maxAttempts int, retryable func(error) bool) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	s.maxAttempts = maxAttempts
	s.retryable = retryable
}

// Hosts returns the scheduler's host list.
func (s *Scheduler) Hosts() []string { return s.hosts }

// SlotsPerHost returns the per-host executor count.
func (s *Scheduler) SlotsPerHost() int { return s.slots }

// TotalSlots returns the cluster-wide executor count.
func (s *Scheduler) TotalSlots() int { return s.slots * len(s.hosts) }

// runTask is one task's mutable scheduling state within a Run call.
type runTask struct {
	task     Task
	attempts int // attempts started
}

// runState coordinates one Run call: per-host queues fed to workers, a
// remaining-task count, and the abort flag that stops dispatch after a
// permanent failure.
type runState struct {
	s *Scheduler

	mu        sync.Mutex
	cond      *sync.Cond
	queues    [][]*runTask
	remaining int // tasks not yet finished (succeeded, failed, or dropped)
	aborted   bool
	errs      []error
	done      bool
}

// Run executes all tasks, placing each on its preferred host when that
// host has executors and falling back to round-robin otherwise. A task
// failing with a retryable transport error is re-executed on a different
// host (up to the configured attempt cap). On a permanent failure the
// scheduler stops dispatching queued tasks — in-flight ones finish — and
// returns every permanent error joined.
func (s *Scheduler) Run(tasks []Task) error {
	if len(s.hosts) == 0 {
		return fmt.Errorf("exec: scheduler has no hosts")
	}
	if len(tasks) == 0 {
		return nil
	}
	r := &runState{s: s, queues: make([][]*runTask, len(s.hosts)), remaining: len(tasks)}
	r.cond = sync.NewCond(&r.mu)
	for _, t := range tasks {
		i, local := s.hostIdx[t.PreferredHost]
		if !local {
			s.mu.Lock()
			i = s.rrCursor % len(s.hosts)
			s.rrCursor++
			s.mu.Unlock()
		} else {
			s.meter.Inc(metrics.TasksLocal)
		}
		s.meter.Inc(metrics.TasksLaunched)
		r.queues[i] = append(r.queues[i], &runTask{task: t, attempts: 1})
	}

	// Every host gets workers even when its initial queue is empty: a retry
	// may land there. Workers block on the condition variable, so idle ones
	// cost nothing.
	workers := s.slots
	if len(tasks) < workers {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for h := range s.hosts {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(host int) {
				defer wg.Done()
				r.work(host)
			}(h)
		}
	}
	wg.Wait()
	return errors.Join(r.errs...)
}

// work drains one host's queue until the run completes.
func (r *runState) work(host int) {
	for {
		t := r.take(host)
		if t == nil {
			return
		}
		r.finish(host, t, t.task.Run())
	}
}

// take pops the next task queued on host, blocking until one arrives or the
// run is done.
func (r *runState) take(host int) *runTask {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.queues[host]) == 0 && !r.done {
		r.cond.Wait()
	}
	if len(r.queues[host]) == 0 {
		return nil
	}
	t := r.queues[host][0]
	r.queues[host] = r.queues[host][1:]
	return t
}

// finish records a task attempt's outcome: success retires the task, a
// retryable failure re-queues it on the next host, and a permanent failure
// aborts the run — queued-but-unstarted tasks are dropped so a failed query
// stops consuming the cluster.
func (r *runState) finish(host int, t *runTask, err error) {
	s := r.s
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil && !r.aborted && s.retryable != nil && s.retryable(err) && t.attempts < s.maxAttempts {
		t.attempts++
		target := (host + 1) % len(r.queues) // a different host when one exists
		r.queues[target] = append(r.queues[target], t)
		s.meter.Inc(metrics.TasksRetried)
		r.cond.Broadcast()
		return
	}
	if err != nil {
		r.errs = append(r.errs, err)
		if !r.aborted {
			r.aborted = true
			for i := range r.queues {
				r.remaining -= len(r.queues[i])
				r.queues[i] = nil
			}
		}
	}
	r.remaining--
	if r.remaining == 0 {
		r.done = true
	}
	r.cond.Broadcast()
}
