// Package exec is the physical execution layer: a locality-aware task
// scheduler with per-node executor pools (the Spark analogue, paper
// §III-A), physical operators compiled from logical plans, and a metered
// shuffle. The scheduler honours each partition's preferred host exactly
// the way SHC's getPreferredLocations contract expects (paper §VI-A.2):
// a task whose data lives on a host with executors runs on that host.
package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
	"github.com/shc-go/shc/internal/trace"
)

// Task is one schedulable unit of work.
type Task struct {
	// PreferredHost names where the task's data lives; "" means anywhere.
	PreferredHost string
	// Run does the work. The context is cancelled when the run aborts —
	// the caller gave up or another task failed permanently — so tasks
	// should pass it down to their RPCs and stop early when it is done.
	Run func(ctx context.Context) error
}

// RetryableTransport classifies the transport-level failures worth
// re-executing a task for: the host it talked to died or dropped the
// connection. Anything else (bad plans, decode errors, server-side logic
// errors) is deterministic and would fail identically elsewhere. Context
// errors are never retryable — a cancelled or timed-out task would only be
// cancelled again.
func RetryableTransport(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, rpc.ErrHostDown) || errors.Is(err, rpc.ErrConnClosed) || errors.Is(err, rpc.ErrUnknownHost)
}

// Scheduler distributes tasks over a set of hosts, each with a fixed
// number of executor slots. It is the simulator's stand-in for Spark's
// task scheduler + YARN executor allocation; the Fig. 6 experiment sweeps
// ExecutorsPerHost.
type Scheduler struct {
	hosts    []string
	slots    int
	meter    *metrics.Registry
	hostIdx  map[string]int
	rrCursor int
	mu       sync.Mutex

	// maxAttempts is the per-task attempt cap (1 = never re-execute);
	// retryable classifies which errors are worth another attempt. Both are
	// fixed before the scheduler runs queries (SetTaskRetry).
	maxAttempts int
	retryable   func(error) bool
}

// NewScheduler creates a scheduler over hosts with slots executors each.
func NewScheduler(hosts []string, slotsPerHost int, meter *metrics.Registry) *Scheduler {
	if slotsPerHost <= 0 {
		slotsPerHost = 1
	}
	idx := make(map[string]int, len(hosts))
	for i, h := range hosts {
		idx[h] = i
	}
	return &Scheduler{hosts: hosts, slots: slotsPerHost, meter: meter, hostIdx: idx, maxAttempts: 1}
}

// SetTaskRetry configures task re-execution, the lineage-based recovery
// contract of Spark-style engines: a task failing with an error recognized
// by retryable is re-queued on a different host, up to maxAttempts total
// attempts, before its error surfaces.
func (s *Scheduler) SetTaskRetry(maxAttempts int, retryable func(error) bool) {
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	s.maxAttempts = maxAttempts
	s.retryable = retryable
}

// Hosts returns the scheduler's host list.
func (s *Scheduler) Hosts() []string { return s.hosts }

// SlotsPerHost returns the per-host executor count.
func (s *Scheduler) SlotsPerHost() int { return s.slots }

// TotalSlots returns the cluster-wide executor count.
func (s *Scheduler) TotalSlots() int { return s.slots * len(s.hosts) }

// runTask is one task's mutable scheduling state within a Run call.
type runTask struct {
	task     Task
	attempts int       // attempts started
	enqueued time.Time // when the task last entered a queue (for queue-wait)
}

// runState coordinates one Run call: per-host queues fed to workers, a
// remaining-task count, and the abort flag that stops dispatch after a
// permanent failure or caller cancellation.
type runState struct {
	s      *Scheduler
	ctx    context.Context    // the run's derived context, handed to tasks
	cancel context.CancelFunc // cancels in-flight tasks when the run aborts
	meter  metrics.Meter      // scheduler registry + the query's scope

	mu        sync.Mutex
	cond      *sync.Cond
	queues    [][]*runTask
	remaining int // tasks not yet finished (succeeded, failed, or dropped)
	aborted   bool
	errs      []error
	done      bool
}

// Run executes all tasks with no caller deadline.
func (s *Scheduler) Run(tasks []Task) error {
	return s.RunContext(context.Background(), tasks)
}

// RunContext executes all tasks, placing each on its preferred host when
// that host has executors and falling back to round-robin otherwise. A task
// failing with a retryable transport error is re-executed on a different
// host (up to the configured attempt cap).
//
// The run stops early two ways, both counted in exec.tasks_cancelled for every
// queued task dropped unstarted. A permanent task failure aborts the run:
// queued tasks are dropped, in-flight ones see their context cancelled, and
// every permanent error comes back joined. Cancelling ctx does the same
// from the outside, and the run returns ctx's error — the uniform signal a
// caller that gave up expects, regardless of which task noticed first.
func (s *Scheduler) RunContext(ctx context.Context, tasks []Task) error {
	if len(s.hosts) == 0 {
		return fmt.Errorf("exec: scheduler has no hosts")
	}
	if len(tasks) == 0 {
		return ctx.Err()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	r := &runState{s: s, ctx: runCtx, cancel: cancel, meter: metrics.Scoped(ctx, s.meter), queues: make([][]*runTask, len(s.hosts)), remaining: len(tasks)}
	r.cond = sync.NewCond(&r.mu)
	now := time.Now()
	for _, t := range tasks {
		i, local := s.hostIdx[t.PreferredHost]
		if !local {
			s.mu.Lock()
			i = s.rrCursor % len(s.hosts)
			s.rrCursor++
			s.mu.Unlock()
		} else {
			r.meter.Inc(metrics.TasksLocal)
		}
		r.meter.Inc(metrics.TasksLaunched)
		r.queues[i] = append(r.queues[i], &runTask{task: t, attempts: 1, enqueued: now})
	}

	// The watcher turns caller cancellation into an abort: queued tasks
	// drop, parked workers wake and exit. In-flight tasks see runCtx
	// cancelled directly.
	watcherStop := make(chan struct{})
	var watcherWG sync.WaitGroup
	if ctx.Done() != nil {
		watcherWG.Add(1)
		go func() {
			defer watcherWG.Done()
			select {
			case <-ctx.Done():
				r.mu.Lock()
				r.abortLocked()
				r.mu.Unlock()
			case <-watcherStop:
			}
		}()
	}

	// Every host gets workers even when its initial queue is empty: a retry
	// may land there. Workers block on the condition variable, so idle ones
	// cost nothing.
	workers := s.slots
	if len(tasks) < workers {
		workers = len(tasks)
	}
	var wg sync.WaitGroup
	for h := range s.hosts {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(host int) {
				defer wg.Done()
				r.work(host)
			}(h)
		}
	}
	wg.Wait()
	close(watcherStop)
	watcherWG.Wait()
	if cerr := ctx.Err(); cerr != nil {
		// The caller cancelled; its context error is the story, not the
		// pile of per-task cancellation errors it caused.
		return cerr
	}
	return errors.Join(r.errs...)
}

// work drains one host's queue until the run completes. Each attempt runs
// under its own "task" span (host, attempt, outcome) with its queue wait
// and runtime recorded in the scheduler histograms; the span's context is
// what the task passes to its RPCs, so per-call and server-side spans nest
// under the attempt that issued them.
func (r *runState) work(host int) {
	for {
		t := r.take(host)
		if t == nil {
			return
		}
		r.meter.Observe(metrics.HistQueueWait, time.Since(t.enqueued))
		tctx, sp := trace.StartSpan(r.ctx, "task")
		sp.SetTag("host", r.s.hosts[host])
		sp.SetAttr("attempt", int64(t.attempts))
		start := time.Now()
		// Label the attempt's goroutine so CPU profiles attribute samples to
		// the executor host (nesting under the engine's query_fingerprint
		// label, which rode in on r.ctx).
		var err error
		pprof.Do(tctx, pprof.Labels("host", r.s.hosts[host]), func(tctx context.Context) {
			err = t.task.Run(tctx)
		})
		r.meter.Observe(metrics.HistTaskRun, time.Since(start))
		sp.SetError(err)
		r.finish(host, t, err, sp)
		sp.End()
	}
}

// take pops the next task queued on host, blocking until one arrives or the
// run is done.
func (r *runState) take(host int) *runTask {
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(r.queues[host]) == 0 && !r.done {
		r.cond.Wait()
	}
	if len(r.queues[host]) == 0 {
		return nil
	}
	t := r.queues[host][0]
	r.queues[host] = r.queues[host][1:]
	return t
}

// abortLocked (r.mu held) stops dispatch: queued-but-unstarted tasks are
// dropped and counted as cancelled, in-flight tasks get their context
// cancelled, and parked workers wake. Idempotent.
func (r *runState) abortLocked() {
	if r.aborted {
		return
	}
	r.aborted = true
	dropped := 0
	for i := range r.queues {
		dropped += len(r.queues[i])
		r.queues[i] = nil
	}
	if dropped > 0 {
		r.meter.Add(metrics.TasksCancelled, int64(dropped))
		r.remaining -= dropped
	}
	if r.remaining == 0 {
		r.done = true
	}
	r.cancel()
	r.cond.Broadcast()
}

// finish records a task attempt's outcome: success retires the task, a
// retryable failure re-queues it on the next host, and a permanent failure
// aborts the run — queued-but-unstarted tasks are dropped and in-flight
// ones cancelled, so a failed query stops consuming the cluster.
func (r *runState) finish(host int, t *runTask, err error, sp *trace.Span) {
	s := r.s
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil && !r.aborted && s.retryable != nil && s.retryable(err) && t.attempts < s.maxAttempts {
		t.attempts++
		t.enqueued = time.Now()
		target := (host + 1) % len(r.queues) // a different host when one exists
		r.queues[target] = append(r.queues[target], t)
		r.meter.Inc(metrics.TasksRetried)
		sp.SetTag("outcome", "retried")
		r.cond.Broadcast()
		return
	}
	if err != nil {
		r.errs = append(r.errs, err)
		r.abortLocked()
	}
	r.remaining--
	if r.remaining == 0 {
		r.done = true
	}
	r.cond.Broadcast()
}
