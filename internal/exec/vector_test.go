package exec

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// nullableMem builds a relation spanning every vector storage class with
// ~20% NULLs per column — the adversarial input for vector/row equivalence.
func nullableMem(t *testing.T, n int, seed int64) *datasource.MemRelation {
	t.Helper()
	rel := datasource.NewMemRelation("vals", plan.Schema{
		{Name: "i8", Type: plan.TypeInt8},
		{Name: "i32", Type: plan.TypeInt32},
		{Name: "i64", Type: plan.TypeInt64},
		{Name: "f32", Type: plan.TypeFloat32},
		{Name: "f64", Type: plan.TypeFloat64},
		{Name: "s", Type: plan.TypeString},
		{Name: "bl", Type: plan.TypeBool},
	}, 4)
	rng := rand.New(rand.NewSource(seed))
	rows := make([]plan.Row, n)
	for i := range rows {
		r := make(plan.Row, 7)
		if rng.Float64() >= 0.2 {
			r[0] = int8(rng.Intn(20) - 10)
		}
		if rng.Float64() >= 0.2 {
			r[1] = int32(rng.Intn(200) - 100)
		}
		if rng.Float64() >= 0.2 {
			r[2] = int64(rng.Intn(2000) - 1000)
		}
		if rng.Float64() >= 0.2 {
			r[3] = float32(rng.Intn(80)) / 4
		}
		if rng.Float64() >= 0.2 {
			r[4] = float64(rng.Intn(400))/8 - 25
		}
		if rng.Float64() >= 0.2 {
			r[5] = []string{"ant", "bee", "cat", "dog"}[rng.Intn(4)]
		}
		if rng.Float64() >= 0.2 {
			r[6] = rng.Intn(2) == 0
		}
		rows[i] = r
	}
	if err := rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return rel
}

// bothPaths executes lp vectorized and row-at-a-time.
func bothPaths(t *testing.T, lp func() plan.LogicalPlan) (vec, row []plan.Row) {
	t.Helper()
	vec, _ = runWith(t, lp(), CompileConfig{})
	row, _ = runWith(t, lp(), CompileConfig{DisableVectorization: true})
	return vec, row
}

// assertIdenticalRows demands value- AND type-identical results: an int8
// column must come back int8 from both paths, NULLs must be untyped nils.
func assertIdenticalRows(t *testing.T, name string, vec, row []plan.Row) {
	t.Helper()
	if len(vec) != len(row) {
		t.Fatalf("%s: vectorized %d rows, row path %d", name, len(vec), len(row))
	}
	for i := range vec {
		if !reflect.DeepEqual(vec[i], row[i]) {
			t.Fatalf("%s: row %d differs\nvectorized: %#v\nrow path:   %#v", name, i, vec[i], row[i])
		}
	}
}

// TestVectorNullableEquivalence pins vectorized null semantics end to end:
// filters over nullable columns of every storage class, IS NULL shapes,
// arithmetic projections with NULL propagation, and LIMIT interplay all
// return results identical to the row path.
func TestVectorNullableEquivalence(t *testing.T) {
	rel := nullableMem(t, 600, 3)
	scan := func() *plan.ScanNode { return &plan.ScanNode{Relation: rel} }
	cases := []struct {
		name string
		lp   func() plan.LogicalPlan
	}{
		{"filter-nullable-narrow", func() plan.LogicalPlan {
			return &plan.FilterNode{
				Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("i8"), R: plan.Lit(int64(0))},
				Child: scan(),
			}
		}},
		{"filter-col-vs-col-mixed", func() plan.LogicalPlan {
			return &plan.FilterNode{
				Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("i32"), R: plan.Col("f64")},
				Child: scan(),
			}
		}},
		{"is-null-and-not-null", func() plan.LogicalPlan {
			return &plan.FilterNode{
				Cond: &plan.And{
					L: &plan.IsNull{E: plan.Col("s")},
					R: &plan.IsNull{E: plan.Col("i64"), Negate: true},
				},
				Child: scan(),
			}
		}},
		{"not-comparison", func() plan.LogicalPlan {
			return &plan.FilterNode{
				Cond:  &plan.Not{E: &plan.Comparison{Op: plan.OpGe, L: plan.Col("f32"), R: plan.Lit(10.0)}},
				Child: scan(),
			}
		}},
		{"in-with-negate", func() plan.LogicalPlan {
			return &plan.FilterNode{
				Cond:  &plan.In{E: plan.Col("s"), Values: []plan.Expr{plan.Lit("ant"), plan.Lit("cat")}, Negate: true},
				Child: scan(),
			}
		}},
		{"project-arith-null-prop", func() plan.LogicalPlan {
			return &plan.ProjectNode{
				Exprs: []plan.NamedExpr{
					{Expr: &plan.Arithmetic{Op: plan.OpAdd, L: plan.Col("i32"), R: plan.Col("f64")}, Name: "sum"},
					{Expr: &plan.Arithmetic{Op: plan.OpDiv, L: plan.Col("i64"), R: plan.Col("i8")}, Name: "quot"},
					{Expr: plan.Col("s"), Name: "s"},
				},
				Child: scan(),
			}
		}},
		{"filter-project-limit", func() plan.LogicalPlan {
			return &plan.LimitNode{N: 25, Child: &plan.ProjectNode{
				Exprs: []plan.NamedExpr{
					{Expr: plan.Col("i8"), Name: "i8"},
					{Expr: plan.Col("f32"), Name: "f32"},
				},
				Child: &plan.FilterNode{
					Cond:  &plan.Comparison{Op: plan.OpNe, L: plan.Col("bl"), R: plan.Lit(true)},
					Child: scan(),
				},
			}}
		}},
	}
	for _, c := range cases {
		vec, row := bothPaths(t, c.lp)
		assertIdenticalRows(t, c.name, vec, row)
	}
}

// TestVectorRowEquivalenceProperty is the randomized safety net: arbitrary
// predicates through the vectorized pipeline must return byte-identical
// rows (values, types, order) to the row-at-a-time path.
func TestVectorRowEquivalenceProperty(t *testing.T) {
	users := usersMem(t, 300)
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pred := randExpr(rng, 3)
		lp := func() plan.LogicalPlan {
			return &plan.ProjectNode{
				Exprs: []plan.NamedExpr{
					{Expr: plan.Col("id"), Name: "id"},
					{Expr: plan.Col("score"), Name: "score"},
				},
				Child: &plan.FilterNode{Cond: pred, Child: &plan.ScanNode{Relation: users}},
			}
		}
		vec, err := runCfg(t, lp(), CompileConfig{})
		if err != nil {
			t.Logf("vectorized run failed for %s: %v", pred, err)
			return false
		}
		row, err := runCfg(t, lp(), CompileConfig{DisableVectorization: true})
		if err != nil {
			t.Logf("row run failed for %s: %v", pred, err)
			return false
		}
		if !reflect.DeepEqual(vec, row) {
			t.Logf("disagreement for %s: %d vs %d rows", pred, len(vec), len(row))
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func runCfg(t *testing.T, lp plan.LogicalPlan, cfg CompileConfig) ([]plan.Row, error) {
	t.Helper()
	ctx, _ := testCtx()
	phys, err := CompileWith(plan.Optimize(lp), cfg)
	if err != nil {
		return nil, err
	}
	return phys.Execute(ctx)
}

// TestVectorAggEquivalence pins the fused global aggregation: every
// supported aggregate over every numeric storage class — including all-NULL
// inputs and the empty relation — matches the hash aggregate exactly.
func TestVectorAggEquivalence(t *testing.T) {
	rel := nullableMem(t, 500, 11)
	aggs := func() []plan.AggExpr {
		return []plan.AggExpr{
			{Kind: plan.AggCount, Name: "n"},
			{Kind: plan.AggCount, Arg: plan.Col("i8"), Name: "n8"},
			{Kind: plan.AggSum, Arg: plan.Col("i32"), Name: "s32"},
			{Kind: plan.AggSum, Arg: plan.Col("f32"), Name: "sf32"},
			{Kind: plan.AggAvg, Arg: plan.Col("f64"), Name: "af64"},
			{Kind: plan.AggMin, Arg: plan.Col("i64"), Name: "mn"},
			{Kind: plan.AggMax, Arg: plan.Col("i64"), Name: "mx"},
			{Kind: plan.AggMin, Arg: plan.Col("s"), Name: "mns"},
			{Kind: plan.AggMax, Arg: plan.Col("f32"), Name: "mxf"},
		}
	}
	cases := []struct {
		name string
		lp   func() plan.LogicalPlan
	}{
		{"global-agg", func() plan.LogicalPlan {
			return &plan.AggregateNode{Aggs: aggs(), Child: &plan.ScanNode{Relation: rel}}
		}},
		{"agg-over-filter", func() plan.LogicalPlan {
			return &plan.AggregateNode{Aggs: aggs(), Child: &plan.FilterNode{
				Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("i32"), R: plan.Lit(int64(0))},
				Child: &plan.ScanNode{Relation: rel},
			}}
		}},
		{"agg-over-projection", func() plan.LogicalPlan {
			return &plan.AggregateNode{
				Aggs: []plan.AggExpr{
					{Kind: plan.AggSum, Arg: plan.Col("v"), Name: "s"},
					{Kind: plan.AggCount, Name: "n"},
				},
				Child: &plan.ProjectNode{
					Exprs: []plan.NamedExpr{{Expr: plan.Col("f64"), Name: "v"}},
					Child: &plan.ScanNode{Relation: rel},
				},
			}
		}},
		{"agg-empty-filter", func() plan.LogicalPlan {
			// No row satisfies the predicate: COUNT must be 0, SUM/AVG NULL.
			return &plan.AggregateNode{Aggs: aggs(), Child: &plan.FilterNode{
				Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("i64"), R: plan.Lit(int64(1 << 40))},
				Child: &plan.ScanNode{Relation: rel},
			}}
		}},
	}
	for _, c := range cases {
		vec, row := bothPaths(t, c.lp)
		assertIdenticalRows(t, c.name, vec, row)
	}

	// Empty relation: one finals row either way.
	empty := datasource.NewMemRelation("empty", plan.Schema{{Name: "x", Type: plan.TypeInt64}}, 2)
	lp := func() plan.LogicalPlan {
		return &plan.AggregateNode{
			Aggs: []plan.AggExpr{
				{Kind: plan.AggCount, Name: "n"},
				{Kind: plan.AggSum, Arg: plan.Col("x"), Name: "s"},
				{Kind: plan.AggMin, Arg: plan.Col("x"), Name: "mn"},
			},
			Child: &plan.ScanNode{Relation: empty},
		}
	}
	vec, row := bothPaths(t, lp)
	assertIdenticalRows(t, "agg-empty-relation", vec, row)
	if len(vec) != 1 {
		t.Fatalf("empty-relation aggregate returned %d rows, want 1", len(vec))
	}
}

// TestAggFusionShapes pins which aggregates fuse into AggPipelineExec and
// which must stay on the hash aggregate: GROUP BY, LIMIT below the
// aggregate, and stddev all disqualify fusion.
func TestAggFusionShapes(t *testing.T) {
	rel := usersMem(t, 50)
	compile := func(lp plan.LogicalPlan) PhysicalPlan {
		t.Helper()
		phys, err := CompileWith(plan.Optimize(lp), CompileConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return phys
	}
	global := compile(&plan.AggregateNode{
		Aggs:  []plan.AggExpr{{Kind: plan.AggCount, Name: "n"}},
		Child: &plan.ScanNode{Relation: rel},
	})
	if _, ok := global.(*AggPipelineExec); !ok {
		t.Errorf("global aggregate root = %T, want *AggPipelineExec\n%s", global, Explain(global))
	}
	grouped := compile(&plan.AggregateNode{
		GroupBy: []plan.NamedExpr{{Expr: plan.Col("city"), Name: "city"}},
		Aggs:    []plan.AggExpr{{Kind: plan.AggCount, Name: "n"}},
		Child:   &plan.ScanNode{Relation: rel},
	})
	if _, ok := grouped.(*AggPipelineExec); ok {
		t.Error("GROUP BY aggregate must not fuse into AggPipelineExec")
	}
	limited := compile(&plan.AggregateNode{
		Aggs:  []plan.AggExpr{{Kind: plan.AggCount, Name: "n"}},
		Child: &plan.LimitNode{N: 7, Child: &plan.ScanNode{Relation: rel}},
	})
	if _, ok := limited.(*AggPipelineExec); ok {
		t.Error("aggregate above LIMIT must not fuse (per-partition caps overcount)")
	}
	stddev := compile(&plan.AggregateNode{
		Aggs:  []plan.AggExpr{{Kind: plan.AggStddevSamp, Arg: plan.Col("score"), Name: "sd"}},
		Child: &plan.ScanNode{Relation: rel},
	})
	if _, ok := stddev.(*AggPipelineExec); ok {
		t.Error("stddev must not fuse into AggPipelineExec")
	}
	// The fused aggregate answers the LIMIT-below case identically anyway.
	lp := func() plan.LogicalPlan {
		return &plan.AggregateNode{
			Aggs: []plan.AggExpr{
				{Kind: plan.AggCount, Name: "n"},
				{Kind: plan.AggSum, Arg: plan.Col("age"), Name: "s"},
			},
			Child: &plan.LimitNode{N: 7, Child: &plan.ScanNode{Relation: rel}},
		}
	}
	vec, row := bothPaths(t, lp)
	assertIdenticalRows(t, "agg-above-limit", vec, row)
}

// TestVectorPathEngages pins that the vectorized metrics move when (and
// only when) vectorization is on, so equivalence tests cannot silently
// compare the row path against itself.
func TestVectorPathEngages(t *testing.T) {
	rel := usersMem(t, 400)
	lp := func() plan.LogicalPlan {
		return &plan.FilterNode{
			Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("age"), R: plan.Col("score")},
			Child: &plan.ScanNode{Relation: rel},
		}
	}
	_, vm := runWith(t, lp(), CompileConfig{})
	if vm.Get(metrics.VectorBatches) == 0 || vm.Get(metrics.VectorRows) == 0 {
		t.Errorf("vectorized run moved no vector metrics: batches=%d rows=%d",
			vm.Get(metrics.VectorBatches), vm.Get(metrics.VectorRows))
	}
	_, rm := runWith(t, lp(), CompileConfig{DisableVectorization: true})
	if rm.Get(metrics.VectorBatches) != 0 {
		t.Errorf("row-path run streamed %d vector batches", rm.Get(metrics.VectorBatches))
	}
}

// TestVectorRowEquivalenceManySeeds sweeps data seeds too, not just
// predicates: different NULL layouts exercise different bitmap words.
func TestVectorRowEquivalenceManySeeds(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rel := nullableMem(t, 257, seed) // odd size: partial final batch
		lp := func() plan.LogicalPlan {
			return &plan.FilterNode{
				Cond: &plan.Or{
					L: &plan.Comparison{Op: plan.OpLe, L: plan.Col("i8"), R: plan.Col("i32")},
					R: &plan.IsNull{E: plan.Col("f64")},
				},
				Child: &plan.ScanNode{Relation: rel},
			}
		}
		vec, row := bothPaths(t, lp)
		assertIdenticalRows(t, fmt.Sprintf("seed-%d", seed), vec, row)
	}
}
