package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/plan"
)

// randExpr builds a random boolean predicate over the users schema.
func randExpr(rng *rand.Rand, depth int) plan.Expr {
	if depth <= 0 || rng.Intn(3) == 0 {
		// Leaf: comparison, IN, or LIKE.
		switch rng.Intn(6) {
		case 0:
			return &plan.Comparison{Op: plan.CmpOps()[rng.Intn(6)], L: plan.Col("age"), R: plan.Lit(int64(rng.Intn(90)))}
		case 1:
			return &plan.Comparison{Op: plan.CmpOps()[rng.Intn(6)], L: plan.Col("score"), R: plan.Lit(rng.Float64() * 50)}
		case 2:
			return &plan.Comparison{Op: plan.OpEq, L: plan.Col("city"), R: plan.Lit([]string{"sf", "nyc", "la", "xx"}[rng.Intn(4)])}
		case 3:
			return &plan.In{E: plan.Col("city"), Values: []plan.Expr{plan.Lit("sf"), plan.Lit("la")}, Negate: rng.Intn(2) == 0}
		case 4:
			return &plan.Like{E: plan.Col("id"), Pattern: "u0%"}
		default:
			return &plan.Comparison{Op: plan.OpGt, L: plan.Col("age"), R: plan.Col("score")}
		}
	}
	switch rng.Intn(3) {
	case 0:
		return &plan.And{L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	case 1:
		return &plan.Or{L: randExpr(rng, depth-1), R: randExpr(rng, depth-1)}
	default:
		return &plan.Not{E: randExpr(rng, depth-1)}
	}
}

// TestOptimizerPreservesSemanticsProperty runs random predicates through
// the optimized and unoptimized pipelines and demands identical answers —
// the safety net under pushdown, pruning, and constant folding.
func TestOptimizerPreservesSemanticsProperty(t *testing.T) {
	rel := usersMem(t, 150)
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pred := randExpr(rng, 3)
		lp := &plan.ProjectNode{
			Exprs: []plan.NamedExpr{{Expr: plan.Col("id"), Name: "id"}},
			Child: &plan.FilterNode{Cond: pred, Child: &plan.ScanNode{Relation: rel}},
		}
		opt, err := run(t, plan.Optimize(lp))
		if err != nil {
			t.Logf("optimized run failed for %s: %v", pred, err)
			return false
		}
		raw, err := run(t, plan.ClonePlan(lp))
		if err != nil {
			t.Logf("raw run failed for %s: %v", pred, err)
			return false
		}
		if !sameIDs(opt, raw) {
			t.Logf("disagreement for %s: %d vs %d rows", pred, len(opt), len(raw))
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func run(t *testing.T, lp plan.LogicalPlan) ([]plan.Row, error) {
	t.Helper()
	ctx, _ := testCtx()
	phys, err := Compile(lp)
	if err != nil {
		return nil, err
	}
	return phys.Execute(ctx)
}

func sameIDs(a, b []plan.Row) bool {
	if len(a) != len(b) {
		return false
	}
	as := make([]string, len(a))
	bs := make([]string, len(b))
	for i := range a {
		as[i] = fmt.Sprint(a[i][0])
		bs[i] = fmt.Sprint(b[i][0])
	}
	sort.Strings(as)
	sort.Strings(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// TestMemRelationFilterAgreesWithEngineFilter cross-checks the reference
// source-filter evaluation against engine expression evaluation for the
// translatable shapes.
func TestMemRelationFilterAgreesWithEngineFilter(t *testing.T) {
	rel := usersMem(t, 100)
	schema := rel.Schema()
	preds := []struct {
		expr plan.Expr
		src  datasource.Filter
	}{
		{&plan.Comparison{Op: plan.OpGt, L: plan.Col("age"), R: plan.Lit(int32(40))}, datasource.GreaterThan{Column: "age", Value: int32(40)}},
		{&plan.Comparison{Op: plan.OpLe, L: plan.Col("score"), R: plan.Lit(10.0)}, datasource.LessThanOrEqual{Column: "score", Value: 10.0}},
		{&plan.In{E: plan.Col("city"), Values: []plan.Expr{plan.Lit("sf")}}, datasource.In{Column: "city", Values: []any{"sf"}}},
		{&plan.In{E: plan.Col("city"), Values: []plan.Expr{plan.Lit("sf")}, Negate: true}, datasource.NotIn{Column: "city", Values: []any{"sf"}}},
		{&plan.Like{E: plan.Col("id"), Pattern: "u00%"}, datasource.StringStartsWith{Column: "id", Prefix: "u00"}},
	}
	parts, err := rel.BuildScan([]string{"id", "age", "city", "score"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := scanParts(t, parts)
	for _, p := range preds {
		if err := plan.Resolve(p.expr, schema); err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			want, err := plan.EvalPredicate(p.expr, r)
			if err != nil {
				t.Fatal(err)
			}
			got, err := datasource.EvalFilter(p.src, schema, r)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("%s vs %s disagree on %v", p.expr, p.src, r)
			}
		}
	}
}

func scanParts(t *testing.T, parts []datasource.Partition) []plan.Row {
	t.Helper()
	var out []plan.Row
	for _, p := range parts {
		rows, err := p.Compute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rows...)
	}
	return out
}
