package exec

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

func testCtx() (*Context, *metrics.Registry) {
	m := metrics.NewRegistry()
	sched := NewScheduler([]string{"h1", "h2"}, 2, m)
	return &Context{Scheduler: sched, Meter: m, ShufflePartitions: 4}, m
}

func usersMem(t *testing.T, n int) *datasource.MemRelation {
	t.Helper()
	rel := datasource.NewMemRelation("users", plan.Schema{
		{Name: "id", Type: plan.TypeString},
		{Name: "age", Type: plan.TypeInt32},
		{Name: "city", Type: plan.TypeString},
		{Name: "score", Type: plan.TypeFloat64},
	}, 4)
	rows := make([]plan.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = plan.Row{fmt.Sprintf("u%03d", i), int32(i % 80), []string{"sf", "nyc", "la"}[i%3], float64(i) / 2}
	}
	if err := rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return rel
}

func ordersMem(t *testing.T, n int) *datasource.MemRelation {
	t.Helper()
	rel := datasource.NewMemRelation("orders", plan.Schema{
		{Name: "oid", Type: plan.TypeString},
		{Name: "uid", Type: plan.TypeString},
		{Name: "amount", Type: plan.TypeFloat64},
	}, 4)
	rows := make([]plan.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = plan.Row{fmt.Sprintf("o%03d", i), fmt.Sprintf("u%03d", i%50), float64(i)}
	}
	if err := rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return rel
}

func runPlan(t *testing.T, lp plan.LogicalPlan) ([]plan.Row, *metrics.Registry) {
	t.Helper()
	ctx, m := testCtx()
	opt := plan.Optimize(lp)
	phys, err := Compile(opt)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, plan.Format(opt))
	}
	rows, err := phys.Execute(ctx)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, Explain(phys))
	}
	return rows, m
}

func TestScanFilterProject(t *testing.T) {
	rel := usersMem(t, 100)
	lp := &plan.ProjectNode{
		Exprs: []plan.NamedExpr{{Expr: plan.Col("id"), Name: "id"}},
		Child: &plan.FilterNode{
			Cond:  &plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(5)},
			Child: &plan.ScanNode{Relation: rel},
		},
	}
	rows, _ := runPlan(t, lp)
	// age = i%80 < 5 → i in {0..4, 80..84} → 10 rows.
	if len(rows) != 10 {
		t.Errorf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r) != 1 {
			t.Errorf("row width = %d", len(r))
		}
	}
}

func TestJoinCorrectness(t *testing.T) {
	users := usersMem(t, 50)
	orders := ordersMem(t, 100)
	lp := &plan.ProjectNode{
		Exprs: []plan.NamedExpr{
			{Expr: plan.Col("u.city"), Name: "city"},
			{Expr: plan.Col("o.amount"), Name: "amount"},
		},
		Child: &plan.JoinNode{
			Left:      &plan.ScanNode{Relation: users, Alias: "u"},
			Right:     &plan.ScanNode{Relation: orders, Alias: "o"},
			LeftKeys:  []plan.Expr{plan.Col("u.id")},
			RightKeys: []plan.Expr{plan.Col("o.uid")},
		},
	}
	rows, _ := runPlan(t, lp)
	// Every order matches exactly one user (uid = u{i%50}, users 0..49).
	if len(rows) != 100 {
		t.Errorf("join rows = %d", len(rows))
	}
}

func TestJoinWithFilterPushdownProducesSameResult(t *testing.T) {
	users := usersMem(t, 60)
	orders := ordersMem(t, 120)
	build := func() plan.LogicalPlan {
		return &plan.FilterNode{
			Cond: &plan.And{
				L: &plan.Comparison{Op: plan.OpLt, L: plan.Col("u.age"), R: plan.Lit(10)},
				R: &plan.Comparison{Op: plan.OpGe, L: plan.Col("o.amount"), R: plan.Lit(50.0)},
			},
			Child: &plan.JoinNode{
				Left:      &plan.ScanNode{Relation: users, Alias: "u"},
				Right:     &plan.ScanNode{Relation: orders, Alias: "o"},
				LeftKeys:  []plan.Expr{plan.Col("u.id")},
				RightKeys: []plan.Expr{plan.Col("o.uid")},
			},
		}
	}
	// Optimized path.
	optRows, optMeter := runPlan(t, build())
	// Unoptimized path: compile without Optimize.
	ctx, rawMeter := testCtx()
	phys, err := Compile(build())
	if err != nil {
		t.Fatal(err)
	}
	rawRows, err := phys.Execute(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(optRows) != len(rawRows) {
		t.Errorf("optimized %d rows vs raw %d rows", len(optRows), len(rawRows))
	}
	// Pushdown must reduce shuffle volume.
	if optMeter.Get(metrics.ShuffleBytes) >= rawMeter.Get(metrics.ShuffleBytes) {
		t.Errorf("pushdown did not reduce shuffle: %d vs %d",
			optMeter.Get(metrics.ShuffleBytes), rawMeter.Get(metrics.ShuffleBytes))
	}
}

func TestAggregates(t *testing.T) {
	rel := usersMem(t, 90) // ages 0..79, cities cycle sf,nyc,la
	lp := &plan.AggregateNode{
		GroupBy: []plan.NamedExpr{{Expr: plan.Col("city"), Name: "city"}},
		Aggs: []plan.AggExpr{
			{Kind: plan.AggCount, Name: "n"},
			{Kind: plan.AggSum, Arg: plan.Col("score"), Name: "total"},
			{Kind: plan.AggMin, Arg: plan.Col("age"), Name: "min_age"},
			{Kind: plan.AggMax, Arg: plan.Col("age"), Name: "max_age"},
			{Kind: plan.AggAvg, Arg: plan.Col("score"), Name: "avg_score"},
		},
		Child: &plan.ScanNode{Relation: rel},
	}
	rows, _ := runPlan(t, lp)
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	var totalN int64
	for _, r := range rows {
		totalN += r[1].(int64)
	}
	if totalN != 90 {
		t.Errorf("total count = %d", totalN)
	}
	// Check one group's numbers exactly: city sf is i%3==0 → 30 rows.
	for _, r := range rows {
		if r[0] != "sf" {
			continue
		}
		if r[1].(int64) != 30 {
			t.Errorf("sf count = %v", r[1])
		}
		wantSum := 0.0
		for i := 0; i < 90; i += 3 {
			wantSum += float64(i) / 2
		}
		if math.Abs(r[2].(float64)-wantSum) > 1e-9 {
			t.Errorf("sf sum = %v, want %v", r[2], wantSum)
		}
		if math.Abs(r[5].(float64)-wantSum/30) > 1e-9 {
			t.Errorf("sf avg = %v", r[5])
		}
	}
}

func TestGlobalAggregateAndEmptyInput(t *testing.T) {
	rel := usersMem(t, 10)
	lp := &plan.AggregateNode{
		Aggs:  []plan.AggExpr{{Kind: plan.AggCount, Name: "n"}},
		Child: &plan.ScanNode{Relation: rel},
	}
	rows, _ := runPlan(t, lp)
	if len(rows) != 1 || rows[0][0].(int64) != 10 {
		t.Errorf("count(*) = %v", rows)
	}
	empty := datasource.NewMemRelation("empty", plan.Schema{{Name: "x", Type: plan.TypeInt64}}, 1)
	lp2 := &plan.AggregateNode{
		Aggs:  []plan.AggExpr{{Kind: plan.AggCount, Name: "n"}, {Kind: plan.AggSum, Arg: plan.Col("x"), Name: "s"}},
		Child: &plan.ScanNode{Relation: empty},
	}
	rows, _ = runPlan(t, lp2)
	if len(rows) != 1 || rows[0][0].(int64) != 0 || rows[0][1] != nil {
		t.Errorf("aggregates over empty = %v", rows)
	}
}

func TestStddevSamp(t *testing.T) {
	rel := datasource.NewMemRelation("v", plan.Schema{{Name: "x", Type: plan.TypeFloat64}}, 2)
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	rows := make([]plan.Row, len(vals))
	for i, v := range vals {
		rows[i] = plan.Row{v}
	}
	if err := rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	lp := &plan.AggregateNode{
		Aggs:  []plan.AggExpr{{Kind: plan.AggStddevSamp, Arg: plan.Col("x"), Name: "sd"}},
		Child: &plan.ScanNode{Relation: rel},
	}
	out, _ := runPlan(t, lp)
	// Sample stddev of the classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if got := out[0][0].(float64); math.Abs(got-want) > 1e-9 {
		t.Errorf("stddev_samp = %v, want %v", got, want)
	}
}

func TestCountDistinct(t *testing.T) {
	rel := usersMem(t, 90)
	lp := &plan.AggregateNode{
		Aggs:  []plan.AggExpr{{Kind: plan.AggCountDistinct, Arg: plan.Col("city"), Name: "cities"}},
		Child: &plan.ScanNode{Relation: rel},
	}
	rows, _ := runPlan(t, lp)
	if rows[0][0].(int64) != 3 {
		t.Errorf("count distinct = %v", rows[0][0])
	}
}

func TestSortAndLimit(t *testing.T) {
	rel := usersMem(t, 30)
	lp := &plan.LimitNode{
		N: 5,
		Child: &plan.SortNode{
			Orders: []plan.SortOrder{{Expr: plan.Col("age"), Desc: true}, {Expr: plan.Col("id")}},
			Child:  &plan.ScanNode{Relation: rel},
		},
	}
	rows, _ := runPlan(t, lp)
	if len(rows) != 5 {
		t.Fatalf("limit rows = %d", len(rows))
	}
	schema := plan.Schema{{Name: "id", Type: plan.TypeString}, {Name: "age", Type: plan.TypeInt32}, {Name: "city", Type: plan.TypeString}, {Name: "score", Type: plan.TypeFloat64}}
	ageIdx := schema.IndexOf("age")
	if !sort.SliceIsSorted(rows, func(i, j int) bool {
		return rows[i][ageIdx].(int32) > rows[j][ageIdx].(int32)
	}) {
		t.Error("rows not sorted desc by age")
	}
}

func TestSchedulerLocality(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1", "h2"}, 2, m)
	ran := make([]bool, 4)
	tasks := []Task{
		{PreferredHost: "h1", Run: func(context.Context) error { ran[0] = true; return nil }},
		{PreferredHost: "h2", Run: func(context.Context) error { ran[1] = true; return nil }},
		{PreferredHost: "elsewhere", Run: func(context.Context) error { ran[2] = true; return nil }},
		{Run: func(context.Context) error { ran[3] = true; return nil }},
	}
	if err := s.Run(tasks); err != nil {
		t.Fatal(err)
	}
	for i, r := range ran {
		if !r {
			t.Errorf("task %d did not run", i)
		}
	}
	if m.Get(metrics.TasksLaunched) != 4 {
		t.Errorf("launched = %d", m.Get(metrics.TasksLaunched))
	}
	if m.Get(metrics.TasksLocal) != 2 {
		t.Errorf("local = %d", m.Get(metrics.TasksLocal))
	}
}

func TestSchedulerErrorPropagation(t *testing.T) {
	m := metrics.NewRegistry()
	s := NewScheduler([]string{"h1"}, 1, m)
	err := s.Run([]Task{
		{Run: func(context.Context) error { return nil }},
		{Run: func(context.Context) error { return fmt.Errorf("task boom") }},
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
	empty := NewScheduler(nil, 1, m)
	if err := empty.Run(nil); err == nil {
		t.Error("scheduler without hosts must fail")
	}
}

func TestCompileRejectsUnscannableRelation(t *testing.T) {
	bad := &planOnlyRelation{}
	if _, err := Compile(&plan.ScanNode{Relation: bad}); err == nil {
		t.Error("relation without scan support must fail to compile")
	}
}

type planOnlyRelation struct{}

func (planOnlyRelation) Name() string        { return "bad" }
func (planOnlyRelation) Schema() plan.Schema { return plan.Schema{{Name: "x", Type: plan.TypeInt64}} }

func TestTranslateFilterShapes(t *testing.T) {
	schema := plan.Schema{{Name: "age", Type: plan.TypeInt32}, {Name: "name", Type: plan.TypeString}}
	cases := []struct {
		e    plan.Expr
		want string
	}{
		{&plan.Comparison{Op: plan.OpEq, L: plan.Col("age"), R: plan.Lit(5)}, "age = 5"},
		{&plan.Comparison{Op: plan.OpLt, L: plan.Lit(5), R: plan.Col("age")}, "age > 5"},
		{&plan.Comparison{Op: plan.OpNe, L: plan.Col("age"), R: plan.Lit(5)}, "age != 5"},
		{&plan.In{E: plan.Col("name"), Values: []plan.Expr{plan.Lit("a")}}, `name IN (a)`},
		{&plan.In{E: plan.Col("name"), Values: []plan.Expr{plan.Lit("a")}, Negate: true}, `name NOT IN (a)`},
		{&plan.Like{E: plan.Col("name"), Pattern: "pre%"}, `name LIKE "pre"%`},
		{&plan.And{
			L: &plan.Comparison{Op: plan.OpGe, L: plan.Col("age"), R: plan.Lit(1)},
			R: &plan.Comparison{Op: plan.OpLe, L: plan.Col("age"), R: plan.Lit(9)},
		}, "(age >= 1 AND age <= 9)"},
		{&plan.Or{
			L: &plan.Comparison{Op: plan.OpEq, L: plan.Col("age"), R: plan.Lit(1)},
			R: &plan.Comparison{Op: plan.OpEq, L: plan.Col("age"), R: plan.Lit(2)},
		}, "(age = 1 OR age = 2)"},
	}
	for _, c := range cases {
		f, ok := translateFilter(c.e, schema)
		if !ok {
			t.Errorf("translateFilter(%s) failed", c.e)
			continue
		}
		if f.String() != c.want {
			t.Errorf("translateFilter(%s) = %q, want %q", c.e, f, c.want)
		}
	}
	// Untranslatable shapes.
	for _, e := range []plan.Expr{
		&plan.Comparison{Op: plan.OpEq, L: plan.Col("age"), R: plan.Col("name")},
		&plan.Like{E: plan.Col("name"), Pattern: "%suffix"},
		&plan.Comparison{Op: plan.OpEq, L: plan.Col("ghost"), R: plan.Lit(1)},
		&plan.Comparison{Op: plan.OpEq, L: plan.Col("age"), R: plan.Lit("not-an-int")},
	} {
		if _, ok := translateFilter(e, schema); ok {
			t.Errorf("translateFilter(%s) should fail", e)
		}
	}
}

func TestExplainRendersTree(t *testing.T) {
	rel := usersMem(t, 5)
	lp := &plan.FilterNode{
		Cond:  &plan.Comparison{Op: plan.OpGt, L: plan.Col("age"), R: plan.Col("score")},
		Child: &plan.ScanNode{Relation: rel},
	}
	phys, err := Compile(plan.Optimize(lp))
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(phys)
	if !strings.Contains(out, "FilterExec") || !strings.Contains(out, "ScanExec") {
		t.Errorf("Explain:\n%s", out)
	}
}

// TestGroupKeySeparatorCollision pins the length-delimited key encoding:
// values containing the old separator must land in distinct groups.
func TestGroupKeySeparatorCollision(t *testing.T) {
	rel := datasource.NewMemRelation("g", plan.Schema{
		{Name: "a", Type: plan.TypeString},
		{Name: "b", Type: plan.TypeString},
	}, 1)
	if err := rel.Insert([]plan.Row{
		{"x|", "y"},
		{"x", "|y"},
		{"x", "|y"},
	}); err != nil {
		t.Fatal(err)
	}
	lp := &plan.AggregateNode{
		GroupBy: []plan.NamedExpr{{Expr: plan.Col("a"), Name: "a"}, {Expr: plan.Col("b"), Name: "b"}},
		Aggs:    []plan.AggExpr{{Kind: plan.AggCount, Name: "n"}},
		Child:   &plan.ScanNode{Relation: rel},
	}
	rows, _ := runPlan(t, lp)
	if len(rows) != 2 {
		t.Fatalf("groups = %v (separator collision)", rows)
	}
	counts := map[string]int64{}
	for _, r := range rows {
		counts[fmt.Sprintf("%v/%v", r[0], r[1])] = r[2].(int64)
	}
	if counts["x|/y"] != 1 || counts["x/|y"] != 2 {
		t.Errorf("counts = %v", counts)
	}
}

// TestJoinKeySeparatorCollision: join keys with embedded delimiters must
// not cross-match.
func TestJoinKeySeparatorCollision(t *testing.T) {
	l := datasource.NewMemRelation("l", plan.Schema{
		{Name: "k1", Type: plan.TypeString}, {Name: "k2", Type: plan.TypeString},
	}, 1)
	r := datasource.NewMemRelation("r", plan.Schema{
		{Name: "j1", Type: plan.TypeString}, {Name: "j2", Type: plan.TypeString},
	}, 1)
	if err := l.Insert([]plan.Row{{"a;", "b"}}); err != nil {
		t.Fatal(err)
	}
	if err := r.Insert([]plan.Row{{"a", ";b"}}); err != nil {
		t.Fatal(err)
	}
	lp := &plan.JoinNode{
		Left: &plan.ScanNode{Relation: l}, Right: &plan.ScanNode{Relation: r},
		LeftKeys:  []plan.Expr{plan.Col("k1"), plan.Col("k2")},
		RightKeys: []plan.Expr{plan.Col("j1"), plan.Col("j2")},
	}
	rows, _ := runPlan(t, lp)
	if len(rows) != 0 {
		t.Errorf("distinct composite keys must not match: %v", rows)
	}
}
