package exec

import (
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/plan"
)

// TestExplainCoversAllOperators compiles a plan touching every physical
// operator and walks the whole tree's Schema/Children/Explain surface.
func TestExplainCoversAllOperators(t *testing.T) {
	users := usersMem(t, 20)
	orders := ordersMem(t, 20)
	lp := &plan.LimitNode{N: 5, Child: &plan.SortNode{
		Orders: []plan.SortOrder{{Expr: plan.Col("n"), Desc: true}},
		Child: &plan.AggregateNode{
			GroupBy: []plan.NamedExpr{{Expr: plan.Col("u.city"), Name: "city"}},
			Aggs:    []plan.AggExpr{{Kind: plan.AggCount, Name: "n"}},
			Child: &plan.FilterNode{
				Cond: &plan.Comparison{Op: plan.OpGt, L: plan.Col("o.amount"), R: plan.Col("u.score")},
				Child: &plan.JoinNode{
					Left:      &plan.ScanNode{Relation: users, Alias: "u"},
					Right:     &plan.ScanNode{Relation: orders, Alias: "o"},
					LeftKeys:  []plan.Expr{plan.Col("u.id")},
					RightKeys: []plan.Expr{plan.Col("o.uid")},
					Type:      plan.LeftOuterJoin,
				},
			},
		},
	}}
	union := &plan.UnionNode{Inputs: []plan.LogicalPlan{lp, plan.ClonePlan(lp)}}
	phys, err := Compile(plan.Optimize(union))
	if err != nil {
		t.Fatal(err)
	}
	out := Explain(phys)
	for _, want := range []string{"UnionExec", "LimitExec", "SortExec", "HashAggExec", "FilterExec", "HashJoinExec[LeftOuter]", "ScanExec"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
	// Walk every node's surface.
	var walk func(PhysicalPlan)
	walk = func(p PhysicalPlan) {
		if p.Explain() == "" {
			t.Errorf("%T has empty Explain", p)
		}
		_ = p.Schema()
		for _, c := range p.Children() {
			walk(c)
		}
	}
	walk(phys)
	ctx, _ := testCtx()
	if _, err := phys.Execute(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePartitionsFallbacks(t *testing.T) {
	m := (&Context{Scheduler: NewScheduler([]string{"a"}, 3, nil)})
	if m.shufflePartitions() != 3 {
		t.Errorf("default = %d", m.shufflePartitions())
	}
	m.ShufflePartitions = 7
	if m.shufflePartitions() != 7 {
		t.Errorf("override = %d", m.shufflePartitions())
	}
}

func TestFlipOpAll(t *testing.T) {
	cases := map[plan.CmpOp]plan.CmpOp{
		plan.OpLt: plan.OpGt,
		plan.OpLe: plan.OpGe,
		plan.OpGt: plan.OpLt,
		plan.OpGe: plan.OpLe,
		plan.OpEq: plan.OpEq,
		plan.OpNe: plan.OpNe,
	}
	for in, want := range cases {
		if got := flipOp(in); got != want {
			t.Errorf("flipOp(%s) = %s, want %s", in, got, want)
		}
	}
}
