package exec

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/shc-go/shc/internal/plan"
)

// SortMergeJoinExec is the sort-merge equi-join — the algorithm Spark
// prefers for large inputs. Both sides shuffle by key (metered), sort, and
// merge; inner and left-outer semantics match HashJoinExec exactly,
// including SQL NULL keys never matching.
type SortMergeJoinExec struct {
	Left, Right         PhysicalPlan
	LeftKeys, RightKeys []plan.Expr
	Type                plan.JoinType
	OutSchema           plan.Schema
}

// Schema implements PhysicalPlan.
func (j *SortMergeJoinExec) Schema() plan.Schema { return j.OutSchema }

// Children implements PhysicalPlan.
func (j *SortMergeJoinExec) Children() []PhysicalPlan { return []PhysicalPlan{j.Left, j.Right} }

// Explain implements PhysicalPlan.
func (j *SortMergeJoinExec) Explain() string {
	parts := make([]string, len(j.LeftKeys))
	for i := range j.LeftKeys {
		parts[i] = fmt.Sprintf("%s = %s", j.LeftKeys[i], j.RightKeys[i])
	}
	return fmt.Sprintf("SortMergeJoinExec[%s] %s", j.Type, strings.Join(parts, " AND "))
}

// Execute implements PhysicalPlan.
func (j *SortMergeJoinExec) Execute(ctx *Context) ([]plan.Row, error) {
	left, err := j.Left.Execute(ctx)
	if err != nil {
		return nil, err
	}
	right, err := j.Right.Execute(ctx)
	if err != nil {
		return nil, err
	}
	lKey := keyIndexes(j.LeftKeys)
	rKey := keyIndexes(j.RightKeys)
	if lKey == nil || rKey == nil {
		return nil, fmt.Errorf("exec: join keys must be resolved column references")
	}
	n := ctx.shufflePartitions()
	lb := exchange(ctx, left, lKey, n)
	rb := exchange(ctx, right, rKey, n)

	rightWidth := len(j.Right.Schema())
	results := make([][]plan.Row, n)
	tasks := make([]Task, 0, n)
	for b := 0; b < n; b++ {
		b := b
		tasks = append(tasks, Task{Run: func(_ context.Context) error {
			out, err := mergeJoin(lb[b], rb[b], lKey, rKey, j.Type, rightWidth)
			if err != nil {
				return err
			}
			results[b] = out
			return nil
		}})
	}
	if err := ctx.Scheduler.RunContext(ctx.ctx(), tasks); err != nil {
		return nil, err
	}
	var out []plan.Row
	for _, rs := range results {
		out = append(out, rs...)
	}
	return out, nil
}

// compareKeys orders two rows by their key tuples; NULL sorts first.
func compareKeys(a plan.Row, aIdx []int, b plan.Row, bIdx []int) (int, error) {
	for i := range aIdx {
		c, err := plan.Compare(a[aIdx[i]], b[bIdx[i]])
		if err != nil {
			return 0, err
		}
		if c != 0 {
			return c, nil
		}
	}
	return 0, nil
}

func mergeJoin(left, right []plan.Row, lKey, rKey []int, jt plan.JoinType, rightWidth int) ([]plan.Row, error) {
	var sortErr error
	sortSide := func(rows []plan.Row, idx []int) {
		sort.SliceStable(rows, func(a, b int) bool {
			c, err := compareKeys(rows[a], idx, rows[b], idx)
			if err != nil {
				sortErr = err
				return false
			}
			return c < 0
		})
	}
	sortSide(left, lKey)
	sortSide(right, rKey)
	if sortErr != nil {
		return nil, sortErr
	}

	var out []plan.Row
	li, ri := 0, 0
	emitUnmatched := func(l plan.Row) {
		if jt == plan.LeftOuterJoin {
			joined := make(plan.Row, len(l)+rightWidth)
			copy(joined, l)
			out = append(out, joined)
		}
	}
	for li < len(left) {
		l := left[li]
		if hasNilKey(l, lKey) {
			emitUnmatched(l)
			li++
			continue
		}
		// Advance right past smaller (or NULL) keys.
		for ri < len(right) {
			if hasNilKey(right[ri], rKey) {
				ri++
				continue
			}
			c, err := compareKeys(right[ri], rKey, l, lKey)
			if err != nil {
				return nil, err
			}
			if c >= 0 {
				break
			}
			ri++
		}
		if ri >= len(right) {
			emitUnmatched(l)
			li++
			continue
		}
		c, err := compareKeys(right[ri], rKey, l, lKey)
		if err != nil {
			return nil, err
		}
		if c > 0 {
			emitUnmatched(l)
			li++
			continue
		}
		// Equal keys: find the right-side run and join every left row with
		// the same key against it.
		runEnd := ri
		for runEnd < len(right) {
			if hasNilKey(right[runEnd], rKey) {
				break
			}
			cc, err := compareKeys(right[runEnd], rKey, l, lKey)
			if err != nil {
				return nil, err
			}
			if cc != 0 {
				break
			}
			runEnd++
		}
		for li < len(left) {
			ll := left[li]
			if hasNilKey(ll, lKey) {
				break
			}
			cc, err := compareKeys(ll, lKey, l, lKey)
			if err != nil {
				return nil, err
			}
			if cc != 0 {
				break
			}
			for k := ri; k < runEnd; k++ {
				joined := make(plan.Row, 0, len(ll)+rightWidth)
				joined = append(joined, ll...)
				joined = append(joined, right[k]...)
				out = append(out, joined)
			}
			li++
		}
		ri = runEnd
	}
	return out, nil
}
