// Package conncache implements SHC's connection-caching layer (paper
// §V-B.1). Establishing an HBase connection is a heavy-weight operation —
// it involves a coordination-service round trip — so SHC keeps a pool of
// reference-counted connections keyed by target and evicts them lazily: a
// housekeeping pass closes connections whose reference count has been zero
// for longer than the configured close delay (10 minutes by default).
package conncache

import (
	"context"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

// DefaultCloseDelay mirrors SparkHBaseConf.connectionCloseDelay.
const DefaultCloseDelay = 10 * time.Minute

// Config tunes the cache.
type Config struct {
	// CloseDelay is how long an idle (refcount zero) connection survives
	// before the housekeeper evicts it; defaults to DefaultCloseDelay.
	CloseDelay time.Duration
	// SweepInterval is the housekeeper period; defaults to CloseDelay/10.
	SweepInterval time.Duration
	// Now injects a clock for tests.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.CloseDelay <= 0 {
		c.CloseDelay = DefaultCloseDelay
	}
	if c.SweepInterval <= 0 {
		c.SweepInterval = c.CloseDelay / 10
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

type entry struct {
	conn      *rpc.Conn
	refs      int
	zeroSince time.Time
}

// Cache is a reference-counted connection pool. It implements
// hbase.ConnPool.
type Cache struct {
	net   *rpc.Network
	cfg   Config
	meter *metrics.Registry

	mu      sync.Mutex
	entries map[string]*entry
	closed  bool

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a cache dialing through net. meter may be nil.
func New(net *rpc.Network, cfg Config, meter *metrics.Registry) *Cache {
	return &Cache{
		net:     net,
		cfg:     cfg.withDefaults(),
		meter:   meter,
		entries: make(map[string]*entry),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Acquire returns a pooled connection to host, dialing only on a miss. The
// release function decrements the reference count; the connection stays
// open for reuse until the housekeeper evicts it. ctx bounds only the dial
// on a miss — a cache hit never blocks.
func (c *Cache) Acquire(ctx context.Context, host string) (*rpc.Conn, func(), error) {
	c.mu.Lock()
	if e, ok := c.entries[host]; ok {
		e.refs++
		c.mu.Unlock()
		metrics.Scoped(ctx, c.meter).Inc(metrics.ConnectionsReused)
		return e.conn, c.releaser(host), nil
	}
	c.mu.Unlock()

	// Dial outside the lock; connection setup is the expensive part.
	conn, err := c.net.DialContext(ctx, host)
	if err != nil {
		return nil, nil, err
	}
	c.mu.Lock()
	if e, ok := c.entries[host]; ok {
		// Someone raced us; keep theirs, discard ours.
		c.mu.Unlock()
		_ = conn.Close()
		c.mu.Lock()
		e.refs++
		c.mu.Unlock()
		metrics.Scoped(ctx, c.meter).Inc(metrics.ConnectionsReused)
		return e.conn, c.releaser(host), nil
	}
	c.entries[host] = &entry{conn: conn, refs: 1}
	c.mu.Unlock()
	return conn, c.releaser(host), nil
}

func (c *Cache) releaser(host string) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			defer c.mu.Unlock()
			e, ok := c.entries[host]
			if !ok {
				return
			}
			e.refs--
			if e.refs <= 0 {
				e.refs = 0
				e.zeroSince = c.cfg.Now()
			}
		})
	}
}

// Invalidate drops the cached connection to host (if any) so the next
// Acquire re-dials. The client calls it when an RPC on a pooled connection
// fails with a transport error (host down, connection killed): without the
// eviction the cache would keep handing out the dead connection even after
// the host recovers, because nothing else ever re-dials a cached host.
func (c *Cache) Invalidate(host string) {
	c.mu.Lock()
	e, ok := c.entries[host]
	if ok {
		delete(c.entries, host)
	}
	c.mu.Unlock()
	if ok {
		// In-flight holders see ErrConnClosed on their next call and retry
		// through a fresh checkout, exactly as if the peer had reset them.
		_ = e.conn.Close()
	}
}

// Sweep evicts connections idle longer than CloseDelay and returns how many
// it closed. The housekeeper calls this periodically; tests call it
// directly with a fake clock.
func (c *Cache) Sweep() int {
	now := c.cfg.Now()
	c.mu.Lock()
	var victims []*entry
	for host, e := range c.entries {
		if e.refs == 0 && now.Sub(e.zeroSince) >= c.cfg.CloseDelay {
			victims = append(victims, e)
			delete(c.entries, host)
		}
	}
	c.mu.Unlock()
	for _, e := range victims {
		_ = e.conn.Close()
	}
	return len(victims)
}

// Len reports the number of cached connections (any refcount).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// StartHousekeeper launches the lazy-deletion thread.
func (c *Cache) StartHousekeeper() {
	go func() {
		defer close(c.done)
		ticker := time.NewTicker(c.cfg.SweepInterval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				c.Sweep()
			case <-c.stop:
				return
			}
		}
	}()
}

// Close stops the housekeeper and closes every cached connection.
func (c *Cache) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.mu.Lock()
	entries := c.entries
	c.entries = make(map[string]*entry)
	c.closed = true
	c.mu.Unlock()
	for _, e := range entries {
		_ = e.conn.Close()
	}
}
