package conncache

import (
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

// testClock is a manual clock for driving the breaker's cooldown.
type testClock struct{ now time.Time }

func (c *testClock) Now() time.Time          { return c.now }
func (c *testClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *testClock, *metrics.Registry) {
	clk := &testClock{now: time.Unix(1000, 0)}
	m := metrics.NewRegistry()
	b := NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Now: clk.Now}, m)
	return b, clk, m
}

func TestBreakerOpensAfterConsecutiveTransportFailures(t *testing.T) {
	b, _, m := newTestBreaker(3, 50*time.Millisecond)
	for i := 0; i < 2; i++ {
		if !b.Allow("rs1") {
			t.Fatalf("call %d rejected before threshold", i)
		}
		b.Record("rs1", true)
	}
	if got := b.State("rs1"); got != "closed" {
		t.Fatalf("state after 2 failures = %s, want closed", got)
	}
	b.Record("rs1", true) // third consecutive failure trips it
	if got := b.State("rs1"); got != "open" {
		t.Fatalf("state after threshold = %s, want open", got)
	}
	if b.Allow("rs1") {
		t.Fatal("open circuit must fail fast")
	}
	if got := m.Get(metrics.BreakerOpens); got != 1 {
		t.Errorf("breaker.circuit_opens = %d, want 1", got)
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	b, _, _ := newTestBreaker(3, 50*time.Millisecond)
	b.Record("rs1", true)
	b.Record("rs1", true)
	b.Record("rs1", false) // success wipes the streak
	b.Record("rs1", true)
	b.Record("rs1", true)
	if got := b.State("rs1"); got != "closed" {
		t.Fatalf("state = %s; non-consecutive failures must not trip the circuit", got)
	}
}

func TestBreakerIgnoresApplicationErrors(t *testing.T) {
	b, _, _ := newTestBreaker(2, 50*time.Millisecond)
	// Application-level outcomes (stale region, shed request) are reported as
	// non-transport; they must never open the circuit.
	for i := 0; i < 10; i++ {
		b.Record("rs1", false)
	}
	if got := b.State("rs1"); got != "closed" {
		t.Fatalf("state = %s after app errors, want closed", got)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk, _ := newTestBreaker(2, 50*time.Millisecond)
	b.Record("rs1", true)
	b.Record("rs1", true)
	if b.Allow("rs1") {
		t.Fatal("circuit should be open")
	}
	clk.Advance(60 * time.Millisecond)
	if !b.Allow("rs1") {
		t.Fatal("cooldown elapsed: one probe must be admitted")
	}
	if got := b.State("rs1"); got != "half-open" {
		t.Fatalf("state during probe = %s, want half-open", got)
	}
	// Concurrent callers are still rejected while the probe is in flight.
	if b.Allow("rs1") {
		t.Fatal("second caller admitted during half-open probe")
	}
	b.Record("rs1", false) // probe succeeded
	if got := b.State("rs1"); got != "closed" {
		t.Fatalf("state after successful probe = %s, want closed", got)
	}
	if !b.Allow("rs1") {
		t.Fatal("closed circuit must admit calls")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk, m := newTestBreaker(2, 50*time.Millisecond)
	b.Record("rs1", true)
	b.Record("rs1", true)
	clk.Advance(60 * time.Millisecond)
	if !b.Allow("rs1") {
		t.Fatal("probe not admitted")
	}
	b.Record("rs1", true) // probe failed
	if got := b.State("rs1"); got != "open" {
		t.Fatalf("state after failed probe = %s, want open", got)
	}
	if b.Allow("rs1") {
		t.Fatal("re-opened circuit must fail fast for another cooldown")
	}
	clk.Advance(60 * time.Millisecond)
	if !b.Allow("rs1") {
		t.Fatal("second cooldown elapsed: another probe must be admitted")
	}
	if got := m.Get(metrics.BreakerOpens); got != 2 {
		t.Errorf("breaker.circuit_opens = %d, want 2 (initial trip + failed probe)", got)
	}
}

func TestBreakerTracksHostsIndependently(t *testing.T) {
	b, _, _ := newTestBreaker(2, 50*time.Millisecond)
	b.Record("rs1", true)
	b.Record("rs1", true)
	if b.Allow("rs1") {
		t.Fatal("rs1 should be open")
	}
	if !b.Allow("rs2") {
		t.Fatal("rs2 must be unaffected by rs1's circuit")
	}
}

func TestBreakerNilReceiverIsNoop(t *testing.T) {
	var b *Breaker
	if !b.Allow("rs1") {
		t.Fatal("nil breaker must admit everything")
	}
	b.Record("rs1", true) // must not panic
	if got := b.State("rs1"); got != "closed" {
		t.Fatalf("nil breaker state = %s", got)
	}
}
