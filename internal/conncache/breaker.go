package conncache

import (
	"sync"
	"sync/atomic"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
)

// BreakerConfig tunes the per-host circuit breaker.
type BreakerConfig struct {
	// Threshold is how many consecutive transport failures open the circuit
	// for a host; defaults to 3.
	Threshold int
	// Cooldown is how long an open circuit rejects calls before letting one
	// probe through (half-open); defaults to 50ms — a few client backoff
	// periods in the simulated cost model.
	Cooldown time.Duration
	// Now injects a clock for tests.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 50 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breaker states.
const (
	breakerClosed = iota // normal operation, failures counted
	breakerOpen          // rejecting calls until Cooldown elapses
	breakerHalfOpen      // one probe in flight; its outcome decides
)

type hostBreaker struct {
	state    int
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // a half-open probe is in flight
}

// Breaker is a per-host circuit breaker (closed → open → half-open →
// closed). It sits in front of the transport: after Threshold consecutive
// transport failures against a host the circuit opens and calls to that
// host fail fast — without consuming a connection, an RPC, or a server
// admission slot — until Cooldown elapses. Then a single probe is let
// through (half-open); success closes the circuit, failure re-opens it for
// another cooldown. This keeps a flapping or dead host from absorbing every
// caller's full retry budget (paper §VI-B's failover handling, hardened).
type Breaker struct {
	cfg     BreakerConfig
	meter   *metrics.Registry
	journal atomic.Pointer[ops.Journal]

	mu    sync.Mutex
	hosts map[string]*hostBreaker
}

// NewBreaker builds a breaker. meter may be nil.
func NewBreaker(cfg BreakerConfig, meter *metrics.Registry) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), meter: meter, hosts: make(map[string]*hostBreaker)}
}

// SetJournal installs a cluster event journal; each circuit-open transition
// is recorded as a CircuitOpen event against the host. nil disables it.
func (b *Breaker) SetJournal(j *ops.Journal) {
	if b == nil {
		return
	}
	b.journal.Store(j)
}

// noteOpen journals one circuit-open transition. Called with b.mu held;
// journal appends take only the journal's own lock, so no ordering risk.
func (b *Breaker) noteOpen(host, detail string) {
	b.meter.Inc(metrics.BreakerOpens)
	b.journal.Load().Append(ops.Event{Type: ops.EventCircuitOpen, Server: host, Detail: detail})
}

// Allow reports whether a call to host may proceed. false means the circuit
// is open and the caller should fail fast. A true result from an open
// circuit whose cooldown has elapsed admits exactly one caller as the
// half-open probe; concurrent callers keep failing fast until the probe's
// Record settles the state.
func (b *Breaker) Allow(host string) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.hosts[host]
	if hb == nil {
		return true
	}
	switch hb.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.cfg.Now().Sub(hb.openedAt) < b.cfg.Cooldown {
			return false
		}
		hb.state = breakerHalfOpen
		hb.probing = true
		return true
	default: // half-open
		if hb.probing {
			return false
		}
		hb.probing = true
		return true
	}
}

// Record reports a call outcome for host. transportFailure must be true only
// for transport-level errors (host down, connection killed, dial failure) —
// application errors like a stale region or a shed request say nothing about
// the host's reachability and must not trip the circuit.
func (b *Breaker) Record(host string, transportFailure bool) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.hosts[host]
	if hb == nil {
		if !transportFailure {
			return
		}
		hb = &hostBreaker{}
		b.hosts[host] = hb
	}
	switch hb.state {
	case breakerHalfOpen:
		hb.probing = false
		if transportFailure {
			// Probe failed: back to open for another cooldown.
			hb.state = breakerOpen
			hb.openedAt = b.cfg.Now()
			b.noteOpen(host, "half-open probe failed")
			return
		}
		hb.state = breakerClosed
		hb.failures = 0
	case breakerOpen:
		// Late results from calls admitted before the circuit opened; the
		// cooldown clock already governs recovery.
	default: // closed
		if !transportFailure {
			hb.failures = 0
			return
		}
		hb.failures++
		if hb.failures >= b.cfg.Threshold {
			hb.state = breakerOpen
			hb.openedAt = b.cfg.Now()
			b.noteOpen(host, "consecutive transport failures")
		}
	}
}

// State reports the host's circuit state as a string ("closed", "open",
// "half-open") for tests and diagnostics.
func (b *Breaker) State(host string) string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	hb := b.hosts[host]
	if hb == nil {
		return "closed"
	}
	switch hb.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
