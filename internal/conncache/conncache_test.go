package conncache

import (
	"context"
	"sync"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/rpc"
)

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
}

func newTestCache(t *testing.T) (*Cache, *metrics.Registry, *fakeClock) {
	t.Helper()
	m := metrics.NewRegistry()
	net := rpc.NewNetwork(rpc.Config{}, m)
	for _, h := range []string{"rs1", "rs2"} {
		if err := net.AddHost(h); err != nil {
			t.Fatal(err)
		}
		if err := net.Handle(h, "ping", func(context.Context, rpc.Message) (rpc.Message, error) { return rpc.Bytes("pong"), nil }); err != nil {
			t.Fatal(err)
		}
	}
	clock := &fakeClock{t: time.Unix(0, 0)}
	cache := New(net, Config{CloseDelay: 10 * time.Minute, Now: clock.Now}, m)
	return cache, m, clock
}

func TestAcquireReuses(t *testing.T) {
	cache, m, _ := newTestCache(t)
	conn1, rel1, err := cache.Acquire(context.Background(), "rs1")
	if err != nil {
		t.Fatal(err)
	}
	conn2, rel2, err := cache.Acquire(context.Background(), "rs1")
	if err != nil {
		t.Fatal(err)
	}
	if conn1 != conn2 {
		t.Error("same host must reuse the connection")
	}
	rel1()
	rel2()
	if m.Get(metrics.ConnectionsCreated) != 1 {
		t.Errorf("created = %d", m.Get(metrics.ConnectionsCreated))
	}
	if m.Get(metrics.ConnectionsReused) != 1 {
		t.Errorf("reused = %d", m.Get(metrics.ConnectionsReused))
	}
	// Still usable after release (cache keeps it open).
	if _, err := conn1.Call("ping", nil); err != nil {
		t.Errorf("pooled conn must stay open: %v", err)
	}
}

func TestDistinctHostsDistinctConns(t *testing.T) {
	cache, m, _ := newTestCache(t)
	_, rel1, _ := cache.Acquire(context.Background(), "rs1")
	_, rel2, _ := cache.Acquire(context.Background(), "rs2")
	rel1()
	rel2()
	if m.Get(metrics.ConnectionsCreated) != 2 {
		t.Errorf("created = %d", m.Get(metrics.ConnectionsCreated))
	}
	if cache.Len() != 2 {
		t.Errorf("Len = %d", cache.Len())
	}
}

func TestAcquireUnknownHost(t *testing.T) {
	cache, _, _ := newTestCache(t)
	if _, _, err := cache.Acquire(context.Background(), "ghost"); err == nil {
		t.Error("unknown host must fail")
	}
}

func TestSweepEvictsIdleAfterDelay(t *testing.T) {
	cache, _, clock := newTestCache(t)
	conn, rel, _ := cache.Acquire(context.Background(), "rs1")
	rel()
	// Not yet idle long enough.
	clock.Advance(5 * time.Minute)
	if n := cache.Sweep(); n != 0 {
		t.Errorf("early sweep evicted %d", n)
	}
	clock.Advance(6 * time.Minute)
	if n := cache.Sweep(); n != 1 {
		t.Errorf("sweep evicted %d, want 1", n)
	}
	if cache.Len() != 0 {
		t.Errorf("Len after sweep = %d", cache.Len())
	}
	if _, err := conn.Call("ping", nil); err == nil {
		t.Error("evicted connection must be closed")
	}
}

func TestSweepSparesHeldConnections(t *testing.T) {
	cache, _, clock := newTestCache(t)
	_, rel, _ := cache.Acquire(context.Background(), "rs1")
	clock.Advance(time.Hour)
	if n := cache.Sweep(); n != 0 {
		t.Errorf("sweep evicted a held connection (%d)", n)
	}
	rel()
	clock.Advance(time.Hour)
	if n := cache.Sweep(); n != 1 {
		t.Errorf("sweep after release evicted %d", n)
	}
}

func TestReacquireResetsIdleness(t *testing.T) {
	cache, _, clock := newTestCache(t)
	_, rel, _ := cache.Acquire(context.Background(), "rs1")
	rel()
	clock.Advance(9 * time.Minute)
	_, rel2, _ := cache.Acquire(context.Background(), "rs1") // back in use
	clock.Advance(9 * time.Minute)
	if n := cache.Sweep(); n != 0 {
		t.Error("in-use connection must survive sweep")
	}
	rel2()
	clock.Advance(10 * time.Minute)
	if n := cache.Sweep(); n != 1 {
		t.Errorf("idle again: evicted %d", n)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	cache, _, clock := newTestCache(t)
	_, rel, _ := cache.Acquire(context.Background(), "rs1")
	_, rel2, _ := cache.Acquire(context.Background(), "rs1")
	rel()
	rel() // double release must not underflow the refcount
	clock.Advance(time.Hour)
	if n := cache.Sweep(); n != 0 {
		t.Error("second holder must keep the connection alive")
	}
	rel2()
	clock.Advance(time.Hour)
	if n := cache.Sweep(); n != 1 {
		t.Errorf("evicted %d", n)
	}
}

func TestConcurrentAcquire(t *testing.T) {
	cache, m, _ := newTestCache(t)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, rel, err := cache.Acquire(context.Background(), "rs1")
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := conn.Call("ping", nil); err != nil {
				t.Error(err)
			}
			rel()
		}()
	}
	wg.Wait()
	if cache.Len() != 1 {
		t.Errorf("Len = %d", cache.Len())
	}
	// The race in Acquire may dial more than once, but the cache must
	// converge to a single pooled connection and mostly reuse.
	if m.Get(metrics.ConnectionsReused) == 0 {
		t.Error("expected reuse under concurrency")
	}
}

func TestCloseShutsEverything(t *testing.T) {
	cache, _, _ := newTestCache(t)
	conn, rel, _ := cache.Acquire(context.Background(), "rs1")
	rel()
	cache.StartHousekeeper()
	cache.Close()
	if cache.Len() != 0 {
		t.Errorf("Len after Close = %d", cache.Len())
	}
	if _, err := conn.Call("ping", nil); err == nil {
		t.Error("Close must close pooled connections")
	}
	select {
	case <-cache.done:
	case <-time.After(time.Second):
		t.Fatal("housekeeper did not stop")
	}
}

func TestInvalidateEvictsAndClosesConnection(t *testing.T) {
	cache, _, _ := newTestCache(t)
	conn, rel, err := cache.Acquire(context.Background(), "rs1")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	cache.Invalidate("rs1")
	if cache.Len() != 0 {
		t.Errorf("Len after Invalidate = %d", cache.Len())
	}
	// The evicted connection is dead even for holders that acquired it
	// before the eviction.
	if _, err := conn.Call("ping", nil); err == nil {
		t.Error("invalidated connection must be closed")
	}
	// The next Acquire re-dials and works.
	conn2, rel2, err := cache.Acquire(context.Background(), "rs1")
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if conn2 == conn {
		t.Error("Acquire after Invalidate must dial a fresh connection")
	}
	if _, err := conn2.Call("ping", nil); err != nil {
		t.Errorf("fresh connection: %v", err)
	}
	// Invalidating an unknown host is a no-op.
	cache.Invalidate("ghost")
}

func TestInvalidateOnDownHostStopsServingStaleConn(t *testing.T) {
	cache, m, _ := newTestCache(t)
	net := cache.net
	conn, rel, err := cache.Acquire(context.Background(), "rs1")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if err := net.SetDown("rs1", true); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call("ping", nil); err == nil {
		t.Fatal("call to down host must fail")
	}
	// This is the bug the eviction fixes: without Invalidate, the cache
	// keeps returning the stale connection forever.
	cache.Invalidate("rs1")
	if err := net.SetDown("rs1", false); err != nil {
		t.Fatal(err)
	}
	reusedBefore := m.Get(metrics.ConnectionsReused)
	conn2, rel2, err := cache.Acquire(context.Background(), "rs1")
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if _, err := conn2.Call("ping", nil); err != nil {
		t.Errorf("recovered host: %v", err)
	}
	if m.Get(metrics.ConnectionsReused) != reusedBefore {
		t.Error("Acquire after Invalidate must not count as reuse")
	}
}
