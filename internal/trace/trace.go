// Package trace is the per-query tracing layer of the observability stack:
// one Trace per query, hierarchical spans for every phase the query passes
// through (parse → optimize → compile → execute → per-task run → per-RPC
// call → server-side region scan), and a waterfall renderer that shows
// where the wall time went.
//
// Traces propagate through the same context.Context plumbing every layer
// already threads for cancellation: NewContext installs a Trace, and each
// instrumented layer calls StartSpan, which nests the new span under the
// context's current span. The whole stack is simulated in-process, so a
// query's context — and therefore its trace — reaches the server-side RPC
// handlers directly; no wire format is needed.
//
// Tracing is strictly pay-for-play: with no Trace in the context, StartSpan
// returns the context unchanged and a nil *Span, and every Span method is a
// no-op on a nil receiver. The disabled path performs no allocation, and the
// enabled path stays cheap enough for the trace-overhead benchmark gate
// (bench.TraceOverhead) to hold tracing to <5% added latency on the
// streaming benchmark: each span carries its own mutex (concurrent tasks
// never contend on a shared lock) and tags/attributes live in small slices,
// not maps.
package trace

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span statuses. The zero value (empty string) renders as "ok".
const (
	// StatusError marks a span whose operation failed.
	StatusError = "error"
	// StatusCancelled marks a span whose operation was abandoned — a hedged
	// read that lost the race, a task cancelled by an aborting run. A
	// cancelled span is sticky: a later SetError never downgrades it back to
	// a plain error, so a losing hedge is never mistaken for a failure (or a
	// win).
	StatusCancelled = "cancelled"
)

// Trace is one query's span tree. Synchronization is per span — the tree
// has no global lock, so spans recorded by concurrent tasks never contend
// with each other.
type Trace struct {
	root *Span
}

type tag struct {
	k, v string
}

type attr struct {
	k string
	v int64
}

// Span is one timed operation within a trace. All methods are safe on a nil
// receiver, which is how disabled tracing stays free at every call site.
// Tags and attributes are slices, not maps: spans carry a handful of each,
// and a linear scan beats a map's allocation on the recording hot path.
type Span struct {
	tr    *Trace
	name  string
	start time.Time

	mu     sync.Mutex
	end    time.Time // zero while the span is open
	status string
	errMsg string
	tags   []tag
	attrs  []attr
	notes  []string
	kids   []*Span
}

// New starts a trace whose root span is named name.
func New(name string) *Trace {
	t := &Trace{}
	t.root = &Span{tr: t, name: name, start: time.Now()}
	return t
}

type ctxKey struct{}

type spanKey struct{}

// NewContext returns ctx carrying tr (and tr's root as the current span).
func NewContext(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	ctx = context.WithValue(ctx, ctxKey{}, tr)
	return context.WithValue(ctx, spanKey{}, tr.root)
}

// FromContext returns the context's trace, or nil when tracing is off.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(ctxKey{}).(*Trace)
	return tr
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// StartSpan opens a child of the context's current span (the trace root when
// no span is current) and returns a context carrying the new span. When the
// context has no trace, it returns (ctx, nil) untouched — zero allocations,
// and every method on the nil span is a no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx)
	sp := tr.startSpan(parent, name)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

func (t *Trace) startSpan(parent *Span, name string) *Span {
	if parent == nil || parent.tr != t {
		parent = t.root
	}
	sp := &Span{tr: t, name: name, start: time.Now()}
	parent.mu.Lock()
	parent.kids = append(parent.kids, sp)
	parent.mu.Unlock()
	return sp
}

// Root returns the trace's root span.
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// Finish ends the root span (idempotent).
func (t *Trace) Finish() { t.Root().End() }

// Duration is the root span's duration (elapsed-so-far while open).
func (t *Trace) Duration() time.Duration { return t.Root().Duration() }

// End closes the span. Ending twice keeps the first end time.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = now
	}
	s.mu.Unlock()
}

// SetTag attaches a string label (host, region, outcome).
func (s *Span) SetTag(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.tags {
		if s.tags[i].k == key {
			s.tags[i].v = val
			return
		}
	}
	if s.tags == nil {
		s.tags = make([]tag, 0, 4)
	}
	s.tags = append(s.tags, tag{key, val})
}

// SetAttr attaches a numeric attribute (rows, bytes, attempt).
func (s *Span) SetAttr(key string, val int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putAttrLocked(key, val, false)
}

// AddAttr adds delta to a numeric attribute.
func (s *Span) AddAttr(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.putAttrLocked(key, delta, true)
}

func (s *Span) putAttrLocked(key string, v int64, add bool) {
	for i := range s.attrs {
		if s.attrs[i].k == key {
			if add {
				s.attrs[i].v += v
			} else {
				s.attrs[i].v = v
			}
			return
		}
	}
	if s.attrs == nil {
		s.attrs = make([]attr, 0, 4)
	}
	s.attrs = append(s.attrs, attr{key, v})
}

// Annotate appends a free-form note (retry reasons, hedge outcomes).
func (s *Span) Annotate(format string, args ...any) {
	if s == nil {
		return
	}
	note := fmt.Sprintf(format, args...)
	s.mu.Lock()
	s.notes = append(s.notes, note)
	s.mu.Unlock()
}

// SetError marks the span failed. Context-cancellation errors mark it
// cancelled instead, and an already-cancelled span stays cancelled — a
// hedged read's loser is cancelled, not failed, even though its call
// returns an error.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	cancelled := errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.status == StatusCancelled {
		return
	}
	if cancelled {
		s.status = StatusCancelled
	} else {
		s.status = StatusError
	}
	s.errMsg = err.Error()
}

// MarkCancelled marks the span abandoned. Sticky: later SetError calls
// cannot overwrite it.
func (s *Span) MarkCancelled() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.status = StatusCancelled
	s.mu.Unlock()
}

// AddTimed records an already-measured child operation (e.g. SQL parsing
// that happened before the trace existed) as a completed span of duration d.
func (s *Span) AddTimed(name string, d time.Duration) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	sp := &Span{tr: s.tr, name: name, start: now.Add(-d), end: now}
	s.mu.Lock()
	// A back-dated child can predate this span (the work happened before
	// the trace existed); widen the span so offsets stay non-negative and
	// the total covers the recorded work.
	if sp.start.Before(s.start) {
		s.start = sp.start
	}
	s.kids = append(s.kids, sp)
	s.mu.Unlock()
	return sp
}

// Name returns the span's name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Duration returns the span's duration (elapsed-so-far while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.durationLocked()
}

func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// Status returns "", StatusError, or StatusCancelled.
func (s *Span) Status() string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.status
}

// Tag returns a string label set with SetTag.
func (s *Span) Tag(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.tags {
		if s.tags[i].k == key {
			return s.tags[i].v
		}
	}
	return ""
}

// Attr returns a numeric attribute set with SetAttr/AddAttr.
func (s *Span) Attr(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.attrs {
		if s.attrs[i].k == key {
			return s.attrs[i].v
		}
	}
	return 0
}

// Children returns a snapshot of the span's child spans.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.kids...)
}

// Walk visits every span depth-first, the root at depth 0. Each span's
// children are snapshotted under that span's lock, so fn may call span
// accessors (Tag, Attr, Duration, ...) freely.
func (t *Trace) Walk(fn func(depth int, s *Span)) {
	if t == nil {
		return
	}
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		fn(depth, sp)
		for _, k := range sp.Children() {
			walk(k, depth+1)
		}
	}
	walk(t.root, 0)
}

// Find returns every span with the given name, in depth-first order.
func (t *Trace) Find(name string) []*Span {
	var out []*Span
	t.Walk(func(_ int, s *Span) {
		if s.name == name {
			out = append(out, s)
		}
	})
	return out
}

// SpanTiming is one entry of Slowest.
type SpanTiming struct {
	Name     string
	Duration time.Duration
}

// Slowest returns the n longest non-root spans, longest first — the
// headline of a slow-query log record.
func (t *Trace) Slowest(n int) []SpanTiming {
	if t == nil || n <= 0 {
		return nil
	}
	var all []SpanTiming
	t.Walk(func(depth int, sp *Span) {
		if depth > 0 {
			all = append(all, SpanTiming{Name: sp.name, Duration: sp.Duration()})
		}
	})
	sort.SliceStable(all, func(i, j int) bool { return all[i].Duration > all[j].Duration })
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Render prints the span tree as an indented waterfall: each line shows the
// span's name, duration, start offset from the trace start, sorted tags and
// attributes, status, and notes.
func (t *Trace) Render() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	origin := t.root.start
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		sp.mu.Lock()
		dur := sp.durationLocked()
		tags := append([]tag(nil), sp.tags...)
		attrs := append([]attr(nil), sp.attrs...)
		status, errMsg := sp.status, sp.errMsg
		notes := append([]string(nil), sp.notes...)
		kids := append([]*Span(nil), sp.kids...)
		sp.mu.Unlock()

		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s %s", sp.name, fmtDur(dur))
		if depth > 0 {
			fmt.Fprintf(&b, " @%s", fmtDur(sp.start.Sub(origin)))
		}
		sort.Slice(tags, func(i, j int) bool { return tags[i].k < tags[j].k })
		for _, kv := range tags {
			fmt.Fprintf(&b, " %s=%s", kv.k, kv.v)
		}
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].k < attrs[j].k })
		for _, kv := range attrs {
			fmt.Fprintf(&b, " %s=%d", kv.k, kv.v)
		}
		if status != "" {
			fmt.Fprintf(&b, " [%s", status)
			if errMsg != "" {
				fmt.Fprintf(&b, ": %s", errMsg)
			}
			b.WriteByte(']')
		}
		for _, n := range notes {
			fmt.Fprintf(&b, " (%s)", n)
		}
		b.WriteByte('\n')
		for _, k := range kids {
			walk(k, depth+1)
		}
	}
	walk(t.root, 0)
	return b.String()
}

// fmtDur rounds durations for display so waterfalls stay readable.
func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
