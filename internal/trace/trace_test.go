package trace

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	tr := New("query")
	ctx := NewContext(context.Background(), tr)

	ctx1, parent := StartSpan(ctx, "schedule")
	if parent == nil {
		t.Fatal("expected live span with trace in context")
	}
	_, child := StartSpan(ctx1, "task")
	child.SetTag("host", "rs-1")
	child.SetAttr("rows", 42)
	child.End()
	parent.End()
	tr.Finish()

	root := tr.Root()
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "schedule" {
		t.Fatalf("root children = %v, want [schedule]", names(kids))
	}
	grand := kids[0].Children()
	if len(grand) != 1 || grand[0].Name() != "task" {
		t.Fatalf("schedule children = %v, want [task]", names(grand))
	}
	if got := grand[0].Tag("host"); got != "rs-1" {
		t.Fatalf("host tag = %q, want rs-1", got)
	}
	if got := grand[0].Attr("rows"); got != 42 {
		t.Fatalf("rows attr = %d, want 42", got)
	}
}

func names(spans []*Span) []string {
	out := make([]string, len(spans))
	for i, s := range spans {
		out[i] = s.Name()
	}
	return out
}

func TestSiblingsUnderSameParent(t *testing.T) {
	tr := New("q")
	ctx := NewContext(context.Background(), tr)
	for i := 0; i < 3; i++ {
		_, sp := StartSpan(ctx, "task")
		sp.End()
	}
	if got := len(tr.Root().Children()); got != 3 {
		t.Fatalf("root has %d children, want 3", got)
	}
}

func TestNilSafety(t *testing.T) {
	var sp *Span
	sp.End()
	sp.SetTag("k", "v")
	sp.SetAttr("k", 1)
	sp.AddAttr("k", 1)
	sp.Annotate("note %d", 1)
	sp.SetError(errors.New("boom"))
	sp.MarkCancelled()
	sp.AddTimed("x", time.Millisecond)
	if sp.Name() != "" || sp.Duration() != 0 || sp.Status() != "" ||
		sp.Tag("k") != "" || sp.Attr("k") != 0 || sp.Children() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
	var tr *Trace
	if tr.Root() != nil || tr.Render() != "" || tr.Slowest(3) != nil {
		t.Fatal("nil trace accessors must return zero values")
	}
	tr.Walk(func(int, *Span) { t.Fatal("nil trace must not walk") })
}

func TestDisabledTracingZeroAlloc(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		c2, sp := StartSpan(ctx, "rpc:Scan")
		sp.SetTag("host", "rs-0")
		sp.SetAttr("bytes", 1024)
		sp.SetError(nil)
		sp.End()
		_ = c2
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f per op, want 0", allocs)
	}
}

func TestSetErrorAndCancellation(t *testing.T) {
	tr := New("q")
	ctx := NewContext(context.Background(), tr)

	_, failed := StartSpan(ctx, "a")
	failed.SetError(errors.New("boom"))
	if failed.Status() != StatusError {
		t.Fatalf("status = %q, want error", failed.Status())
	}

	// Context cancellation errors mark the span cancelled, not failed.
	_, timedOut := StartSpan(ctx, "b")
	timedOut.SetError(context.DeadlineExceeded)
	if timedOut.Status() != StatusCancelled {
		t.Fatalf("status = %q, want cancelled", timedOut.Status())
	}

	// MarkCancelled is sticky: a hedge loser's late error must not turn the
	// cancelled span into a failure.
	_, loser := StartSpan(ctx, "c")
	loser.MarkCancelled()
	loser.SetError(errors.New("late arrival"))
	if loser.Status() != StatusCancelled {
		t.Fatalf("status = %q, want cancelled to stick", loser.Status())
	}
}

func TestRenderWaterfall(t *testing.T) {
	tr := New("query")
	ctx := NewContext(context.Background(), tr)
	ctx2, sched := StartSpan(ctx, "schedule")
	_, task := StartSpan(ctx2, "task")
	task.SetTag("host", "rs-2")
	task.SetAttr("rows", 7)
	task.Annotate("retry 1: host down")
	task.End()
	sched.End()
	_, bad := StartSpan(ctx, "rpc:Scan")
	bad.SetError(errors.New("boom"))
	bad.End()
	tr.Finish()

	out := tr.Render()
	for _, want := range []string{
		"query", "schedule", "task", "host=rs-2", "rows=7",
		"(retry 1: host down)", "rpc:Scan", "[error: boom]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q in:\n%s", want, out)
		}
	}
	// Children are indented under their parents.
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "  schedule") || !strings.HasPrefix(lines[2], "    task") {
		t.Fatalf("bad indentation:\n%s", out)
	}
}

func TestSlowestAndFind(t *testing.T) {
	tr := New("q")
	root := tr.Root()
	root.AddTimed("fast", time.Millisecond)
	root.AddTimed("slow", time.Second)
	root.AddTimed("mid", 10*time.Millisecond)
	top := tr.Slowest(2)
	if len(top) != 2 || top[0].Name != "slow" || top[1].Name != "mid" {
		t.Fatalf("slowest = %+v, want slow then mid", top)
	}
	if got := len(tr.Find("mid")); got != 1 {
		t.Fatalf("Find(mid) = %d spans, want 1", got)
	}
}

func TestWalkDepths(t *testing.T) {
	tr := New("q")
	ctx := NewContext(context.Background(), tr)
	c1, _ := StartSpan(ctx, "l1")
	StartSpan(c1, "l2")
	depths := map[string]int{}
	tr.Walk(func(d int, s *Span) { depths[s.Name()] = d })
	if depths["q"] != 0 || depths["l1"] != 1 || depths["l2"] != 2 {
		t.Fatalf("depths = %v", depths)
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New("q")
	ctx := NewContext(context.Background(), tr)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c2, sp := StartSpan(ctx, "task")
			sp.SetTag("host", "h")
			sp.AddAttr("rows", 1)
			_, inner := StartSpan(c2, "rpc")
			inner.End()
			sp.End()
		}()
	}
	wg.Wait()
	tr.Finish()
	if got := len(tr.Find("task")); got != 16 {
		t.Fatalf("found %d task spans, want 16", got)
	}
	if got := len(tr.Find("rpc")); got != 16 {
		t.Fatalf("found %d rpc spans, want 16", got)
	}
}

func TestAddTimedDuration(t *testing.T) {
	tr := New("q")
	sp := tr.Root().AddTimed("parse", 5*time.Millisecond)
	if d := sp.Duration(); d != 5*time.Millisecond {
		t.Fatalf("AddTimed duration = %v, want 5ms", d)
	}
}
