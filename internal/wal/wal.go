// Package wal implements the write-ahead log each region uses for fault
// tolerance (paper §III-B): every mutation is appended to the log before it
// is applied to the MemStore, and a crashed region is rebuilt by replaying
// the log from the last flushed sequence number.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"github.com/shc-go/shc/internal/metrics"
)

// Kind discriminates log entries.
type Kind uint8

// Entry kinds.
const (
	KindPut Kind = iota + 1
	KindDelete
)

// Entry is one logged mutation.
type Entry struct {
	Seq       uint64
	Table     string
	Region    string
	Kind      Kind
	Row       []byte
	Family    string
	Qualifier string
	Timestamp int64
	Value     []byte
}

// ErrCorrupt is returned when decoding malformed bytes.
var ErrCorrupt = errors.New("wal: corrupt entry")

// Encode serializes the entry to a self-delimiting binary record.
func (e Entry) Encode() []byte {
	buf := make([]byte, 0, 64+len(e.Row)+len(e.Family)+len(e.Qualifier)+len(e.Value))
	buf = binary.BigEndian.AppendUint64(buf, e.Seq)
	buf = append(buf, byte(e.Kind))
	buf = appendBytes(buf, []byte(e.Table))
	buf = appendBytes(buf, []byte(e.Region))
	buf = appendBytes(buf, e.Row)
	buf = appendBytes(buf, []byte(e.Family))
	buf = appendBytes(buf, []byte(e.Qualifier))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Timestamp))
	buf = appendBytes(buf, e.Value)
	return buf
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// DecodeEntry parses bytes produced by Encode.
func DecodeEntry(b []byte) (Entry, error) {
	var e Entry
	if len(b) < 9 {
		return e, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	e.Seq = binary.BigEndian.Uint64(b)
	e.Kind = Kind(b[8])
	if e.Kind != KindPut && e.Kind != KindDelete {
		return e, fmt.Errorf("%w: bad kind %d", ErrCorrupt, e.Kind)
	}
	b = b[9:]
	var err error
	var table, region, fam, qual []byte
	if table, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if region, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if e.Row, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if fam, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if qual, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if len(b) < 8 {
		return e, fmt.Errorf("%w: missing timestamp", ErrCorrupt)
	}
	e.Timestamp = int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	if e.Value, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if len(b) != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	e.Table, e.Region, e.Family, e.Qualifier = string(table), string(region), string(fam), string(qual)
	return e, nil
}

func takeBytes(b []byte) (val, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated length", ErrCorrupt)
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	return b[:n:n], b[n:], nil
}

// Log is an append-only sequence of entries. It retains encoded records in
// memory (standing in for an HDFS file) and supports replay from a sequence
// number and truncation below one.
type Log struct {
	mu      sync.Mutex
	records [][]byte
	first   uint64 // seq of records[0]
	nextSeq uint64
	meter   *metrics.Registry
}

// New returns an empty log. meter may be nil.
func New(meter *metrics.Registry) *Log {
	return &Log{nextSeq: 1, first: 1, meter: meter}
}

// Append assigns the next sequence number to e, encodes and stores it, and
// returns the assigned sequence number.
func (l *Log) Append(e Entry) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	e.Seq = l.nextSeq
	l.nextSeq++
	l.records = append(l.records, e.Encode())
	l.meter.Inc(metrics.WALAppends)
	return e.Seq
}

// Replay invokes fn for every retained entry with Seq >= fromSeq, in order.
// It stops and returns the first error from fn or from decoding.
func (l *Log) Replay(fromSeq uint64, fn func(Entry) error) error {
	l.mu.Lock()
	records := l.records
	first := l.first
	l.mu.Unlock()
	for i, rec := range records {
		seq := first + uint64(i)
		if seq < fromSeq {
			continue
		}
		e, err := DecodeEntry(rec)
		if err != nil {
			return err
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// Truncate discards entries with Seq < uptoSeq; the region calls this after
// a MemStore flush makes them durable in a store file.
func (l *Log) Truncate(uptoSeq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if uptoSeq <= l.first {
		return
	}
	drop := uptoSeq - l.first
	if drop > uint64(len(l.records)) {
		drop = uint64(len(l.records))
	}
	l.records = l.records[drop:]
	l.first += drop
}

// Len reports the number of retained entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}
