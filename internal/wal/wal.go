// Package wal implements the write-ahead log each region uses for fault
// tolerance (paper §III-B): every mutation is appended to the log before it
// is applied to the MemStore, and a crashed region is rebuilt by replaying
// the log from the last flushed sequence number.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"github.com/shc-go/shc/internal/metrics"
)

// Kind discriminates log entries.
type Kind uint8

// Entry kinds.
const (
	KindPut Kind = iota + 1
	KindDelete
)

// Entry is one logged mutation. Epoch records the region-ownership epoch the
// mutation was accepted under; replay after a reassignment discards entries
// stamped with a fenced (superseded) epoch so a zombie owner's doomed writes
// never resurrect. Writer/Batch carry the client batch stamp for mutations
// from a sequence-stamped multi-put ("" / 0 for unstamped writes): replay
// rebuilds the region's dedup window from them, so an ack-lost retry stays
// exactly-once even across a crash.
type Entry struct {
	Seq       uint64
	Epoch     uint64
	Table     string
	Region    string
	Kind      Kind
	Row       []byte
	Family    string
	Qualifier string
	Timestamp int64
	Value     []byte
	Writer    string
	Batch     uint64
}

// ErrCorrupt is returned when decoding malformed bytes.
var ErrCorrupt = errors.New("wal: corrupt entry")

// ErrFenced reports an append rejected because the log was fenced at a
// higher epoch than the entry carries — the moment a zombie region owner
// learns its lease is gone, modeled on HDFS lease recovery: the write is
// refused before it is acknowledged, so nothing durable is lost.
var ErrFenced = errors.New("wal: log fenced at a newer epoch")

// Encode serializes the entry to a self-delimiting binary record guarded by
// a CRC32 (IEEE) trailer over every preceding byte.
func (e Entry) Encode() []byte {
	buf := make([]byte, 0, 80+len(e.Row)+len(e.Family)+len(e.Qualifier)+len(e.Value))
	buf = binary.BigEndian.AppendUint64(buf, e.Seq)
	buf = binary.BigEndian.AppendUint64(buf, e.Epoch)
	buf = append(buf, byte(e.Kind))
	buf = appendBytes(buf, []byte(e.Table))
	buf = appendBytes(buf, []byte(e.Region))
	buf = appendBytes(buf, e.Row)
	buf = appendBytes(buf, []byte(e.Family))
	buf = appendBytes(buf, []byte(e.Qualifier))
	buf = binary.BigEndian.AppendUint64(buf, uint64(e.Timestamp))
	buf = appendBytes(buf, e.Value)
	buf = appendBytes(buf, []byte(e.Writer))
	buf = binary.BigEndian.AppendUint64(buf, e.Batch)
	buf = binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(b)))
	return append(buf, b...)
}

// DecodeEntry parses bytes produced by Encode, verifying the CRC32 trailer
// before trusting any field.
func DecodeEntry(b []byte) (Entry, error) {
	var e Entry
	if len(b) < 21 {
		return e, fmt.Errorf("%w: too short", ErrCorrupt)
	}
	body, sum := b[:len(b)-4], binary.BigEndian.Uint32(b[len(b)-4:])
	if crc32.ChecksumIEEE(body) != sum {
		return e, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	b = body
	e.Seq = binary.BigEndian.Uint64(b)
	e.Epoch = binary.BigEndian.Uint64(b[8:])
	e.Kind = Kind(b[16])
	if e.Kind != KindPut && e.Kind != KindDelete {
		return e, fmt.Errorf("%w: bad kind %d", ErrCorrupt, e.Kind)
	}
	b = b[17:]
	var err error
	var table, region, fam, qual []byte
	if table, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if region, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if e.Row, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if fam, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if qual, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if len(b) < 8 {
		return e, fmt.Errorf("%w: missing timestamp", ErrCorrupt)
	}
	e.Timestamp = int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	if e.Value, b, err = takeBytes(b); err != nil {
		return e, err
	}
	var writer []byte
	if writer, b, err = takeBytes(b); err != nil {
		return e, err
	}
	if len(b) < 8 {
		return e, fmt.Errorf("%w: missing batch stamp", ErrCorrupt)
	}
	e.Batch = binary.BigEndian.Uint64(b)
	b = b[8:]
	if len(b) != 0 {
		return e, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(b))
	}
	e.Table, e.Region, e.Family, e.Qualifier = string(table), string(region), string(fam), string(qual)
	e.Writer = string(writer)
	return e, nil
}

func takeBytes(b []byte) (val, rest []byte, err error) {
	if len(b) < 4 {
		return nil, nil, fmt.Errorf("%w: truncated length", ErrCorrupt)
	}
	n := binary.BigEndian.Uint32(b)
	b = b[4:]
	if uint32(len(b)) < n {
		return nil, nil, fmt.Errorf("%w: truncated payload", ErrCorrupt)
	}
	return b[:n:n], b[n:], nil
}

// Log is an append-only sequence of entries. It retains encoded records in
// memory (standing in for an HDFS file) and supports replay from a sequence
// number and truncation below one.
type Log struct {
	mu      sync.Mutex
	records [][]byte
	first   uint64 // seq of records[0]
	nextSeq uint64
	epoch   uint64 // appends below this ownership epoch are rejected
	meter   *metrics.Registry
	obs     func(Entry)
}

// New returns an empty log. meter may be nil.
func New(meter *metrics.Registry) *Log {
	return &Log{nextSeq: 1, first: 1, meter: meter}
}

// Append assigns the next sequence number to e, encodes and stores it, and
// returns the assigned sequence number. An entry stamped with an epoch below
// the log's fence epoch is rejected with ErrFenced — the append-time fencing
// that keeps a zombie owner's writes out of the durable log after its region
// has been reassigned.
func (l *Log) Append(e Entry) (uint64, error) {
	l.mu.Lock()
	if e.Epoch < l.epoch {
		l.meter.Inc(metrics.WALFencedAppends)
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: append at epoch %d, fenced at %d", ErrFenced, e.Epoch, l.epoch)
	}
	e.Seq = l.nextSeq
	l.nextSeq++
	l.records = append(l.records, e.Encode())
	l.meter.Inc(metrics.WALAppends)
	obs := l.obs
	l.mu.Unlock()
	if obs != nil {
		obs(e)
	}
	return e.Seq, nil
}

// SetObserver registers fn to be invoked with every successfully appended
// entry (sequence number assigned), after the log's own lock is released —
// the seam region replication hangs off of. Only acknowledged writes reach
// the observer: a fenced append fails before it, so replicas can never
// apply a mutation the primary did not durably log. Appends to one region's
// log are serialized by the region lock, so observer calls arrive in
// sequence order.
func (l *Log) SetObserver(fn func(Entry)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.obs = fn
}

// Fence raises the log's ownership epoch: subsequent appends stamped with a
// lower epoch fail with ErrFenced. Fencing never lowers the epoch, so a
// stale fencer cannot re-admit a zombie.
func (l *Log) Fence(epoch uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if epoch > l.epoch {
		l.epoch = epoch
	}
}

// Epoch reports the current fence epoch (0 = never fenced).
func (l *Log) Epoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.epoch
}

// Replay invokes fn for every retained entry with Seq >= fromSeq, in order.
// A corrupt record ends the replay cleanly — everything before it is
// recovered, the unreadable tail is abandoned, exactly how a recovering
// region treats a log whose final block was torn mid-write. fn errors still
// propagate: they mean the recovered data could not be applied, not that the
// log ran out.
func (l *Log) Replay(fromSeq uint64, fn func(Entry) error) error {
	l.mu.Lock()
	records := l.records
	first := l.first
	l.mu.Unlock()
	for i, rec := range records {
		seq := first + uint64(i)
		if seq < fromSeq {
			continue
		}
		e, err := DecodeEntry(rec)
		if err != nil {
			l.meter.Inc(metrics.WALCorruptEntries)
			return nil
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// CorruptRecord flips bits in the i-th retained record (for corruption
// tests); out-of-range indexes are ignored.
func (l *Log) CorruptRecord(i int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.records) {
		return
	}
	rec := append([]byte(nil), l.records[i]...)
	rec[len(rec)/2] ^= 0xFF
	l.records[i] = rec
}

// Truncate discards entries with Seq < uptoSeq; the region calls this after
// a MemStore flush makes them durable in a store file.
func (l *Log) Truncate(uptoSeq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if uptoSeq <= l.first {
		return
	}
	drop := uptoSeq - l.first
	if drop > uint64(len(l.records)) {
		drop = uint64(len(l.records))
	}
	l.records = l.records[drop:]
	l.first += drop
}

// Len reports the number of retained entries.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}
