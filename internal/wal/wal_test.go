package wal

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/shc-go/shc/internal/metrics"
)

func sample(seq uint64) Entry {
	return Entry{
		Seq: seq, Epoch: 3, Table: "t", Region: "r1", Kind: KindPut,
		Row: []byte("row-1"), Family: "cf", Qualifier: "q",
		Timestamp: 42, Value: []byte("value"),
		Writer: "w-7", Batch: 19,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := sample(7)
	got, err := DecodeEntry(e.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Errorf("round trip:\n got %+v\nwant %+v", got, e)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	if err := quick.Check(func(table, region, fam, qual, writer string, row, val []byte, ts int64, batch uint64, del bool) bool {
		kind := KindPut
		if del {
			kind = KindDelete
		}
		e := Entry{Seq: 1, Table: table, Region: region, Kind: kind,
			Row: row, Family: fam, Qualifier: qual, Timestamp: ts, Value: val,
			Writer: writer, Batch: batch}
		got, err := DecodeEntry(e.Encode())
		if err != nil {
			return false
		}
		return got.Table == e.Table && got.Region == e.Region && got.Kind == e.Kind &&
			bytes.Equal(got.Row, e.Row) && got.Family == e.Family &&
			got.Qualifier == e.Qualifier && got.Timestamp == e.Timestamp &&
			bytes.Equal(got.Value, e.Value) && got.Writer == e.Writer && got.Batch == e.Batch
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorrupt(t *testing.T) {
	enc := sample(1).Encode()
	for _, b := range [][]byte{nil, enc[:5], enc[:len(enc)-1], append(append([]byte{}, enc...), 0xFF)} {
		if _, err := DecodeEntry(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("DecodeEntry(%d bytes): %v, want ErrCorrupt", len(b), err)
		}
	}
	bad := sample(1)
	badEnc := bad.Encode()
	badEnc[8] = 99 // invalid kind
	if _, err := DecodeEntry(badEnc); !errors.Is(err, ErrCorrupt) {
		t.Errorf("bad kind: %v", err)
	}
}

func TestAppendAssignsSequence(t *testing.T) {
	l := New(nil)
	if s, err := l.Append(sample(0)); err != nil || s != 1 {
		t.Errorf("first seq = %d, err = %v", s, err)
	}
	if s, err := l.Append(sample(0)); err != nil || s != 2 {
		t.Errorf("second seq = %d, err = %v", s, err)
	}
	if l.NextSeq() != 3 {
		t.Errorf("NextSeq = %d", l.NextSeq())
	}
}

func TestAppendFencedEpochRejected(t *testing.T) {
	l := New(nil)
	e := sample(0)
	e.Epoch = 1
	if _, err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	l.Fence(2)
	if _, err := l.Append(e); !errors.Is(err, ErrFenced) {
		t.Errorf("append at stale epoch: %v, want ErrFenced", err)
	}
	// Equal-or-newer epochs still append.
	e.Epoch = 2
	if _, err := l.Append(e); err != nil {
		t.Errorf("append at fence epoch: %v", err)
	}
	// Fencing never lowers the epoch.
	l.Fence(1)
	if got := l.Epoch(); got != 2 {
		t.Errorf("epoch after stale fence = %d", got)
	}
}

func TestReplayStopsAtCorruptTail(t *testing.T) {
	m := metrics.NewRegistry()
	l := New(m)
	for i := 0; i < 5; i++ {
		l.Append(sample(0))
	}
	l.CorruptRecord(3) // seq 4 is torn; 1..3 must still recover
	var seqs []uint64
	if err := l.Replay(0, func(e Entry) error { seqs = append(seqs, e.Seq); return nil }); err != nil {
		t.Fatalf("truncated-tail replay: %v", err)
	}
	if !reflect.DeepEqual(seqs, []uint64{1, 2, 3}) {
		t.Errorf("replayed seqs = %v, want prefix before the corrupt record", seqs)
	}
	if got := m.Get(metrics.WALCorruptEntries); got != 1 {
		t.Errorf("corrupt entries metered = %d", got)
	}
}

func TestReplayFromSeq(t *testing.T) {
	l := New(nil)
	for i := 0; i < 5; i++ {
		l.Append(sample(0))
	}
	var seqs []uint64
	err := l.Replay(3, func(e Entry) error {
		seqs = append(seqs, e.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqs, []uint64{3, 4, 5}) {
		t.Errorf("replayed seqs = %v", seqs)
	}
}

func TestReplayStopsOnError(t *testing.T) {
	l := New(nil)
	l.Append(sample(0))
	l.Append(sample(0))
	boom := errors.New("boom")
	n := 0
	err := l.Replay(1, func(Entry) error { n++; return boom })
	if !errors.Is(err, boom) || n != 1 {
		t.Errorf("err=%v n=%d", err, n)
	}
}

func TestTruncate(t *testing.T) {
	l := New(nil)
	for i := 0; i < 5; i++ {
		l.Append(sample(0))
	}
	l.Truncate(4) // keep seq 4,5
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	var seqs []uint64
	_ = l.Replay(0, func(e Entry) error { seqs = append(seqs, e.Seq); return nil })
	if !reflect.DeepEqual(seqs, []uint64{4, 5}) {
		t.Errorf("after truncate: %v", seqs)
	}
	l.Truncate(2) // no-op below first
	if l.Len() != 2 {
		t.Errorf("Len after no-op truncate = %d", l.Len())
	}
	l.Truncate(100) // beyond end: drops all
	if l.Len() != 0 {
		t.Errorf("Len after full truncate = %d", l.Len())
	}
}

func TestMeterCountsAppends(t *testing.T) {
	m := metrics.NewRegistry()
	l := New(m)
	l.Append(sample(0))
	l.Append(sample(0))
	if got := m.Get(metrics.WALAppends); got != 2 {
		t.Errorf("wal appends = %d", got)
	}
}
