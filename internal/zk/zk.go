// Package zk implements an in-process coordination service modeled on
// ZooKeeper, which HBase uses for naming, configuration, liveness, and
// master election (paper §III-B). It offers a hierarchical namespace of
// znodes, ephemeral nodes tied to client sessions, one-shot watches, and a
// simple leader-election recipe.
//
// The simulated HBase cluster stores its meta location here, and clients
// consult it on connection setup — so the number of coordination round
// trips that SHC's connection cache eliminates is observable in metrics.
package zk

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by the coordination service.
var (
	ErrNoNode     = errors.New("zk: node does not exist")
	ErrNodeExists = errors.New("zk: node already exists")
	ErrNotEmpty   = errors.New("zk: node has children")
	ErrClosed     = errors.New("zk: session closed")
	ErrExpired    = errors.New("zk: session expired")
	ErrBadPath    = errors.New("zk: invalid path")
	ErrBadVersion = errors.New("zk: version mismatch")
)

// EventType describes what happened to a watched znode.
type EventType int

// Watch event kinds.
const (
	EventCreated EventType = iota
	EventDataChanged
	EventDeleted
)

// Event is delivered on a watch channel when a znode changes.
type Event struct {
	Type EventType
	Path string
}

type node struct {
	data      []byte
	children  map[string]*node
	ephemeral int64 // owning session id, 0 for persistent
	version   int64
}

// Server is the coordination service. The zero value is not usable; call
// NewServer.
type Server struct {
	mu      sync.Mutex
	root    *node
	nextSID int64
	watches map[string][]chan Event // one-shot watches per path
}

// NewServer returns an empty coordination service with just the root node.
func NewServer() *Server {
	return &Server{
		root:    &node{children: make(map[string]*node)},
		watches: make(map[string][]chan Event),
	}
}

// Session is a client connection. Ephemeral nodes created through a session
// are removed when the session closes, which is how region servers and the
// master advertise liveness.
type Session struct {
	srv     *Server
	id      int64
	mu      sync.Mutex
	closed  bool
	expired bool
}

// NewSession opens a session against the server.
func (s *Server) NewSession() *Session {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSID++
	return &Session{srv: s, id: s.nextSID}
}

func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") || strings.Contains(path, "//") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	path = strings.TrimSuffix(path, "/")
	if path == "" {
		return nil, nil // the root
	}
	return strings.Split(path[1:], "/"), nil
}

// locked; returns the node at path or nil.
func (s *Server) lookup(parts []string) *node {
	n := s.root
	for _, p := range parts {
		c, ok := n.children[p]
		if !ok {
			return nil
		}
		n = c
	}
	return n
}

func (s *Server) fire(path string, typ EventType) {
	chans := s.watches[path]
	delete(s.watches, path)
	for _, ch := range chans {
		ch <- Event{Type: typ, Path: path}
		close(ch)
	}
}

func (sess *Session) check() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return ErrClosed
	}
	if sess.expired {
		return ErrExpired
	}
	return nil
}

// Create makes a new znode at path holding data. Parent nodes must already
// exist. Ephemeral nodes disappear when the creating session closes.
func (sess *Session) Create(path string, data []byte, ephemeral bool) error {
	if err := sess.check(); err != nil {
		return err
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return ErrNodeExists
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	parent := s.lookup(parts[:len(parts)-1])
	if parent == nil {
		return fmt.Errorf("%w: parent of %q", ErrNoNode, path)
	}
	name := parts[len(parts)-1]
	if _, ok := parent.children[name]; ok {
		return fmt.Errorf("%w: %q", ErrNodeExists, path)
	}
	n := &node{data: append([]byte(nil), data...), children: make(map[string]*node)}
	if ephemeral {
		n.ephemeral = sess.id
	}
	parent.children[name] = n
	s.fire(path, EventCreated)
	return nil
}

// Get returns the data stored at path.
func (sess *Session) Get(path string) ([]byte, error) {
	if err := sess.check(); err != nil {
		return nil, err
	}
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookup(parts)
	if n == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	return append([]byte(nil), n.data...), nil
}

// Set replaces the data at path.
func (sess *Session) Set(path string, data []byte) error {
	if err := sess.check(); err != nil {
		return err
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookup(parts)
	if n == nil {
		return fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	s.fire(path, EventDataChanged)
	return nil
}

// GetVersion returns the data stored at path along with the node's version,
// for use with SetIf. A freshly created node has version 0; every Set or
// SetIf increments it.
func (sess *Session) GetVersion(path string) ([]byte, int64, error) {
	if err := sess.check(); err != nil {
		return nil, 0, err
	}
	parts, err := splitPath(path)
	if err != nil {
		return nil, 0, err
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookup(parts)
	if n == nil {
		return nil, 0, fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	return append([]byte(nil), n.data...), n.version, nil
}

// SetIf replaces the data at path only if the node's version still equals
// version — ZooKeeper's conditional setData, the compare-and-swap that lets
// concurrent masters race for an epoch bump with exactly one winner. It
// returns ErrBadVersion when another writer got there first.
func (sess *Session) SetIf(path string, data []byte, version int64) error {
	if err := sess.check(); err != nil {
		return err
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookup(parts)
	if n == nil {
		return fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	if n.version != version {
		return fmt.Errorf("%w: %q at version %d, expected %d", ErrBadVersion, path, n.version, version)
	}
	n.data = append([]byte(nil), data...)
	n.version++
	s.fire(path, EventDataChanged)
	return nil
}

// Delete removes the znode at path; it must have no children.
func (sess *Session) Delete(path string) error {
	if err := sess.check(); err != nil {
		return err
	}
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(parts) == 0 {
		return ErrBadPath
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	parent := s.lookup(parts[:len(parts)-1])
	if parent == nil {
		return fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	if len(n.children) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	delete(parent.children, name)
	s.fire(path, EventDeleted)
	return nil
}

// Exists reports whether a znode is present at path.
func (sess *Session) Exists(path string) (bool, error) {
	if err := sess.check(); err != nil {
		return false, err
	}
	parts, err := splitPath(path)
	if err != nil {
		return false, err
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lookup(parts) != nil, nil
}

// Children lists the names of path's children in sorted order.
func (sess *Session) Children(path string) ([]string, error) {
	if err := sess.check(); err != nil {
		return nil, err
	}
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.lookup(parts)
	if n == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// Watch registers a one-shot watch on path. The returned channel receives
// exactly one event for the next create, data change, or delete of that
// path, then is closed.
func (sess *Session) Watch(path string) (<-chan Event, error) {
	if err := sess.check(); err != nil {
		return nil, err
	}
	if _, err := splitPath(path); err != nil {
		return nil, err
	}
	ch := make(chan Event, 1)
	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	s.watches[path] = append(s.watches[path], ch)
	return ch, nil
}

// Close terminates the session and removes its ephemeral nodes.
func (sess *Session) Close() {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closed = true
	sess.mu.Unlock()

	s := sess.srv
	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeEphemerals(s.root, "", sess.id)
}

// ExpireSession expires a session server-side: its ephemeral nodes are
// removed (firing watches, exactly as if the client had died) and every
// later operation through the session fails with ErrExpired. This models a
// client that paused — a GC stall, a partition — long enough for ZooKeeper
// to time the session out while the process itself is still running: the
// canonical zombie. Unlike Close, the client did not choose this; it finds
// out the hard way on its next call.
func (s *Server) ExpireSession(sess *Session) {
	if sess == nil || sess.srv != s {
		return
	}
	sess.mu.Lock()
	if sess.closed || sess.expired {
		sess.mu.Unlock()
		return
	}
	sess.expired = true
	sess.mu.Unlock()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.removeEphemerals(s.root, "", sess.id)
}

// locked; walks the tree removing ephemerals owned by sid.
func (s *Server) removeEphemerals(n *node, prefix string, sid int64) {
	for name, c := range n.children {
		path := prefix + "/" + name
		s.removeEphemerals(c, path, sid)
		if c.ephemeral == sid && len(c.children) == 0 {
			delete(n.children, name)
			s.fire(path, EventDeleted)
		}
	}
}

// ElectLeader attempts to become leader by creating an ephemeral node at
// path with id as data. It returns true if this session now holds
// leadership, false if another live session does.
func (sess *Session) ElectLeader(path string, id string) (bool, error) {
	err := sess.Create(path, []byte(id), true)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, ErrNodeExists) {
		return false, nil
	}
	return false, err
}

// Leader returns the id stored by the current leader at path, or "" when
// no leader is elected.
func (sess *Session) Leader(path string) (string, error) {
	data, err := sess.Get(path)
	if errors.Is(err, ErrNoNode) {
		return "", nil
	}
	if err != nil {
		return "", err
	}
	return string(data), nil
}
