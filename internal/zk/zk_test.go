package zk

import (
	"errors"
	"testing"
	"time"
)

func TestCreateGetSetDelete(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()

	if err := sess.Create("/hbase", []byte("root"), false); err != nil {
		t.Fatal(err)
	}
	if err := sess.Create("/hbase/meta", []byte("server-1"), false); err != nil {
		t.Fatal(err)
	}
	data, err := sess.Get("/hbase/meta")
	if err != nil || string(data) != "server-1" {
		t.Fatalf("Get = %q, %v", data, err)
	}
	if err := sess.Set("/hbase/meta", []byte("server-2")); err != nil {
		t.Fatal(err)
	}
	data, _ = sess.Get("/hbase/meta")
	if string(data) != "server-2" {
		t.Errorf("after Set: %q", data)
	}
	if err := sess.Delete("/hbase/meta"); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Get("/hbase/meta"); !errors.Is(err, ErrNoNode) {
		t.Errorf("Get deleted node: %v", err)
	}
}

func TestCreateErrors(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()

	if err := sess.Create("/a/b", nil, false); !errors.Is(err, ErrNoNode) {
		t.Errorf("missing parent: %v", err)
	}
	if err := sess.Create("no-slash", nil, false); !errors.Is(err, ErrBadPath) {
		t.Errorf("bad path: %v", err)
	}
	if err := sess.Create("/a", nil, false); err != nil {
		t.Fatal(err)
	}
	if err := sess.Create("/a", nil, false); !errors.Is(err, ErrNodeExists) {
		t.Errorf("duplicate create: %v", err)
	}
}

func TestDeleteNonEmpty(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	mustCreate(t, sess, "/a", false)
	mustCreate(t, sess, "/a/b", false)
	if err := sess.Delete("/a"); !errors.Is(err, ErrNotEmpty) {
		t.Errorf("Delete non-empty: %v", err)
	}
}

func TestChildrenSorted(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	mustCreate(t, sess, "/rs", false)
	mustCreate(t, sess, "/rs/zebra", false)
	mustCreate(t, sess, "/rs/alpha", false)
	kids, err := sess.Children("/rs")
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != 2 || kids[0] != "alpha" || kids[1] != "zebra" {
		t.Errorf("Children = %v", kids)
	}
}

func TestEphemeralRemovedOnClose(t *testing.T) {
	s := NewServer()
	owner := s.NewSession()
	mustCreate(t, owner, "/live", false)
	if err := owner.Create("/live/rs1", []byte("x"), true); err != nil {
		t.Fatal(err)
	}
	other := s.NewSession()
	defer other.Close()
	if ok, _ := other.Exists("/live/rs1"); !ok {
		t.Fatal("ephemeral should exist while session lives")
	}
	owner.Close()
	if ok, _ := other.Exists("/live/rs1"); ok {
		t.Error("ephemeral must vanish when owner closes")
	}
	if ok, _ := other.Exists("/live"); !ok {
		t.Error("persistent parent must survive")
	}
}

func TestClosedSessionRejectsOps(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	sess.Close()
	sess.Close() // idempotent
	if err := sess.Create("/x", nil, false); !errors.Is(err, ErrClosed) {
		t.Errorf("Create on closed: %v", err)
	}
	if _, err := sess.Get("/x"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get on closed: %v", err)
	}
}

func TestWatchFiresOnce(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	ch, err := sess.Watch("/node")
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, sess, "/node", false)
	select {
	case ev := <-ch:
		if ev.Type != EventCreated || ev.Path != "/node" {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("watch did not fire")
	}
	// Channel is closed after the one-shot event.
	if _, open := <-ch; open {
		t.Error("watch channel should be closed after firing")
	}
}

func TestWatchOnDelete(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	mustCreate(t, sess, "/gone", false)
	ch, _ := sess.Watch("/gone")
	if err := sess.Delete("/gone"); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	if ev.Type != EventDeleted {
		t.Errorf("event = %+v", ev)
	}
}

func TestLeaderElection(t *testing.T) {
	s := NewServer()
	m1 := s.NewSession()
	m2 := s.NewSession()
	defer m2.Close()

	ok, err := m1.ElectLeader("/master", "m1")
	if err != nil || !ok {
		t.Fatalf("m1 election: %v %v", ok, err)
	}
	ok, err = m2.ElectLeader("/master", "m2")
	if err != nil || ok {
		t.Fatalf("m2 should lose election: %v %v", ok, err)
	}
	if id, _ := m2.Leader("/master"); id != "m1" {
		t.Errorf("leader = %q", id)
	}
	// Failover: when m1 dies its ephemeral node vanishes and m2 can win.
	m1.Close()
	if id, _ := m2.Leader("/master"); id != "" {
		t.Errorf("leader after close = %q", id)
	}
	ok, err = m2.ElectLeader("/master", "m2")
	if err != nil || !ok {
		t.Fatalf("m2 failover election: %v %v", ok, err)
	}
}

func TestSetIfCompareAndSwap(t *testing.T) {
	s := NewServer()
	sess := s.NewSession()
	defer sess.Close()
	mustCreate(t, sess, "/epoch", false)

	data, ver, err := sess.GetVersion("/epoch")
	if err != nil || len(data) != 0 || ver != 0 {
		t.Fatalf("GetVersion = %q, %d, %v", data, ver, err)
	}
	if err := sess.SetIf("/epoch", []byte("1"), ver); err != nil {
		t.Fatal(err)
	}
	// A second writer holding the stale version must lose the race.
	if err := sess.SetIf("/epoch", []byte("99"), ver); !errors.Is(err, ErrBadVersion) {
		t.Errorf("stale SetIf: %v", err)
	}
	data, ver, _ = sess.GetVersion("/epoch")
	if string(data) != "1" || ver != 1 {
		t.Errorf("after CAS: %q at version %d", data, ver)
	}
	// Plain Set also bumps the version, invalidating outstanding CAS holders.
	if err := sess.Set("/epoch", []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetIf("/epoch", []byte("3"), ver); !errors.Is(err, ErrBadVersion) {
		t.Errorf("SetIf after Set: %v", err)
	}
	if _, _, err := sess.GetVersion("/missing"); !errors.Is(err, ErrNoNode) {
		t.Errorf("GetVersion missing: %v", err)
	}
	if err := sess.SetIf("/missing", nil, 0); !errors.Is(err, ErrNoNode) {
		t.Errorf("SetIf missing: %v", err)
	}
}

func TestExpireSessionRemovesEphemeralsAndRejectsOps(t *testing.T) {
	s := NewServer()
	zombie := s.NewSession()
	other := s.NewSession()
	defer other.Close()

	ok, err := zombie.ElectLeader("/master", "m1")
	if err != nil || !ok {
		t.Fatalf("election: %v %v", ok, err)
	}
	// A watcher sees the expiry exactly like a crash: EventDeleted.
	ch, _ := other.Watch("/master")
	s.ExpireSession(zombie)
	select {
	case ev := <-ch:
		if ev.Type != EventDeleted {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("expiry did not fire the watch")
	}
	if id, _ := other.Leader("/master"); id != "" {
		t.Errorf("leader after expiry = %q", id)
	}
	// The zombie finds out on its next call — every op fails ErrExpired.
	if _, err := zombie.Get("/master"); !errors.Is(err, ErrExpired) {
		t.Errorf("Get on expired: %v", err)
	}
	if ok, err := zombie.ElectLeader("/master", "m1"); ok || !errors.Is(err, ErrExpired) {
		t.Errorf("ElectLeader on expired: %v %v", ok, err)
	}
	// Expiring twice, or expiring a foreign/closed session, is a no-op.
	s.ExpireSession(zombie)
	s.ExpireSession(nil)
	NewServer().ExpireSession(other)
	if _, err := other.Get("/"); err != nil {
		t.Errorf("other session must stay usable: %v", err)
	}
}

func mustCreate(t *testing.T, sess *Session, path string, ephemeral bool) {
	t.Helper()
	if err := sess.Create(path, nil, ephemeral); err != nil {
		t.Fatalf("Create(%s): %v", path, err)
	}
}
