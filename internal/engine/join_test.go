package engine

import (
	"fmt"
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/plan"
)

// joinSession has users u1..u5 and orders referencing only u1..u3, plus a
// NULL-keyed order, to exercise outer-join edges.
func joinSession(t *testing.T) *Session {
	t.Helper()
	s, _ := NewSession(Config{Hosts: []string{"h1"}, ExecutorsPerHost: 2, ShufflePartitions: 3})
	users := datasource.NewMemRelation("users", plan.Schema{
		{Name: "id", Type: plan.TypeString},
		{Name: "city", Type: plan.TypeString},
	}, 2)
	if err := users.Insert([]plan.Row{
		{"u1", "sf"}, {"u2", "sf"}, {"u3", "nyc"}, {"u4", "nyc"}, {"u5", nil},
	}); err != nil {
		t.Fatal(err)
	}
	s.Register(users)
	orders := datasource.NewMemRelation("orders", plan.Schema{
		{Name: "uid", Type: plan.TypeString},
		{Name: "amount", Type: plan.TypeFloat64},
	}, 2)
	if err := orders.Insert([]plan.Row{
		{"u1", 10.0}, {"u1", 20.0}, {"u2", 30.0}, {"u3", 40.0}, {nil, 99.0},
	}); err != nil {
		t.Fatal(err)
	}
	s.Register(orders)
	return s
}

func TestLeftOuterJoinSQL(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, `
		SELECT u.id, o.amount FROM users u
		LEFT OUTER JOIN orders o ON u.id = o.uid
		ORDER BY u.id, o.amount`)
	// u1×2, u2, u3 matched; u4, u5 NULL-extended = 6 rows.
	if len(rows) != 6 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "u1" || rows[0][1] != 10.0 {
		t.Errorf("first = %v", rows[0])
	}
	for _, r := range rows {
		if r[0] == "u4" || r[0] == "u5" {
			if r[1] != nil {
				t.Errorf("unmatched row %v must be NULL-extended", r)
			}
		}
	}
}

func TestLeftJoinKeywordVariants(t *testing.T) {
	s := joinSession(t)
	a := mustSQL(t, s, "SELECT u.id FROM users u LEFT JOIN orders o ON u.id = o.uid ORDER BY u.id")
	b := mustSQL(t, s, "SELECT u.id FROM users u LEFT OUTER JOIN orders o ON u.id = o.uid ORDER BY u.id")
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("LEFT JOIN and LEFT OUTER JOIN must agree")
	}
}

func TestLeftJoinNullKeysNeverMatch(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, `
		SELECT u.id, o.amount FROM users u
		LEFT JOIN orders o ON u.id = o.uid
		WHERE u.id = 'u5'`)
	if len(rows) != 1 || rows[0][1] != nil {
		t.Errorf("NULL-keyed left row must NULL-extend, got %v", rows)
	}
	// The NULL-keyed order never appears through the join.
	all := mustSQL(t, s, `
		SELECT o.amount FROM users u JOIN orders o ON u.id = o.uid`)
	for _, r := range all {
		if r[0] == 99.0 {
			t.Error("NULL-keyed right row must not match")
		}
	}
}

func TestLeftJoinRightFilterStaysAboveJoin(t *testing.T) {
	s := joinSession(t)
	// WHERE on the right side of a left join drops NULL-extended rows —
	// the filter must evaluate above the join.
	rows := mustSQL(t, s, `
		SELECT u.id, o.amount FROM users u
		LEFT JOIN orders o ON u.id = o.uid
		WHERE o.amount > 15
		ORDER BY u.id, o.amount`)
	if len(rows) != 3 { // u1/20, u2/30, u3/40
		t.Fatalf("rows = %v", rows)
	}
	// And the plan keeps that filter above the join (no pushdown).
	df, err := s.SQL(`SELECT u.id FROM users u LEFT JOIN orders o ON u.id = o.uid WHERE o.amount > 15`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	scanIdx := strings.Index(out, "Scan orders")
	filterIdx := strings.Index(out, "Filter (o.amount > 15)")
	if filterIdx < 0 {
		// The predicate may have been pushed into the orders scan, which
		// would be wrong for a left join.
		if strings.Contains(out[scanIdx:], "pushed=[(o.amount > 15)]") {
			t.Errorf("right-side predicate pushed below left join:\n%s", out)
		}
	}
	// Left-side predicates still push.
	df2, _ := s.SQL(`SELECT u.id FROM users u LEFT JOIN orders o ON u.id = o.uid WHERE u.city = 'sf'`)
	out2, err := df2.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out2, `pushed=[(u.city = "sf")]`) {
		t.Errorf("left-side predicate should push into the users scan:\n%s", out2)
	}
}

func TestLeftJoinRejectsNonEquiOn(t *testing.T) {
	s := joinSession(t)
	if _, err := s.SQL(`SELECT u.id FROM users u LEFT JOIN orders o ON u.id = o.uid AND o.amount > 5`); err == nil {
		t.Error("non-equi ON in LEFT JOIN must be rejected")
	}
}

func TestLeftJoinDataFrameAPI(t *testing.T) {
	s := joinSession(t)
	users, _ := s.Table("users")
	orders, _ := s.Table("orders")
	joined, err := users.LeftJoin(orders, []string{"id"}, []string{"uid"})
	if err != nil {
		t.Fatal(err)
	}
	n, err := joined.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Errorf("left join count = %d", n)
	}
}

func TestSelectDistinct(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, "SELECT DISTINCT city FROM users ORDER BY city")
	// NULL, nyc, sf — distinct over 5 rows.
	if len(rows) != 3 {
		t.Fatalf("distinct rows = %v", rows)
	}
	if rows[0][0] != nil || rows[1][0] != "nyc" || rows[2][0] != "sf" {
		t.Errorf("distinct order = %v", rows)
	}
	// DISTINCT with aggregates is rejected.
	if _, err := s.SQL("SELECT DISTINCT count(*) FROM users"); err == nil {
		t.Error("DISTINCT + aggregate must be rejected")
	}
}

func TestDataFrameDistinct(t *testing.T) {
	s := joinSession(t)
	users, _ := s.Table("users")
	n, err := users.Select("city").Distinct().Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("distinct cities = %d", n)
	}
}

func TestInnerJoinUnaffectedByTypePlumbing(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, "SELECT u.id, o.amount FROM users u JOIN orders o ON u.id = o.uid ORDER BY u.id, o.amount")
	if len(rows) != 4 {
		t.Fatalf("inner join rows = %v", rows)
	}
}
