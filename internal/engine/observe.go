package engine

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/trace"
)

// queryRun captures what one action's execution produced for the
// observability surfaces: the trace (nil when tracing is off), the
// per-query metrics scope (nil when none), the executed physical plan,
// and the wall time.
type queryRun struct {
	tr    *trace.Trace
	scope *metrics.Registry
	opt   plan.LogicalPlan
	phys  exec.PhysicalPlan
	dur   time.Duration
	// fp/shape identify the statement for the fingerprint stats table and
	// the slow-query log (computed from the optimized plan).
	fp    string
	shape string
}

// run is the single execution path behind every action: optimize, compile,
// and execute under ctx plus the session's QueryTimeout, with each phase
// spanned when a trace is present. With analyze=true (ExplainAnalyze) a
// fresh trace and a fresh per-query metrics scope are installed and every
// operator is wrapped to record actuals. Otherwise the trace and scope are
// whatever the caller put in ctx — both optional, both zero-cost when
// absent. A query slower than SlowQueryThreshold leaves one structured
// line on the slow-query log.
func (df *DataFrame) run(ctx context.Context, analyze bool) ([]plan.Row, *queryRun, error) {
	sess := df.sess
	if df.consistency == datasource.ConsistencyTimeline {
		ctx = datasource.WithConsistency(ctx, datasource.ConsistencyTimeline)
	}
	qr := &queryRun{}
	if analyze {
		qr.tr = trace.New("query")
		ctx = trace.NewContext(ctx, qr.tr)
		qr.scope = metrics.NewRegistry()
		ctx = metrics.WithScope(ctx, qr.scope)
	} else {
		qr.tr = trace.FromContext(ctx)
		qr.scope = metrics.ScopeFrom(ctx)
		if qr.tr == nil && sess.cfg.SlowQueryThreshold > 0 {
			// The slow-query record wants the slowest spans, so the log
			// being on implies tracing every query it may report.
			qr.tr = trace.New("query")
			ctx = trace.NewContext(ctx, qr.tr)
		}
	}
	if sess.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, sess.cfg.QueryTimeout)
		defer cancel()
	}

	start := time.Now()
	if df.parseDur > 0 {
		qr.tr.Root().AddTimed("parse", df.parseDur)
	}
	_, osp := trace.StartSpan(ctx, "optimize")
	qr.opt = plan.Optimize(df.lp)
	osp.End()
	qr.fp, qr.shape = plan.Fingerprint(qr.opt)

	_, csp := trace.StartSpan(ctx, "compile")
	phys, err := exec.CompileWith(qr.opt, sess.compileConfig())
	csp.SetError(err)
	csp.End()
	if err != nil {
		return nil, qr, err
	}
	if analyze {
		phys = exec.Instrument(phys)
	}
	qr.phys = phys

	ectx, esp := trace.StartSpan(ctx, "execute")
	// The fingerprint label rides the context into every task goroutine, so
	// a CPU profile taken mid-flight attributes samples to the statement
	// shape that burned them (composing with the scheduler's host label and
	// the region server's region label).
	var rows []plan.Row
	pprof.Do(ectx, pprof.Labels("query_fingerprint", qr.fp), func(ectx context.Context) {
		rows, err = phys.Execute(sess.execContext(ectx))
	})
	esp.SetError(err)
	esp.End()
	qr.dur = time.Since(start)

	meter := metrics.Scoped(ctx, sess.meter)
	meter.Observe(metrics.HistQueryLatency, qr.dur)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		meter.Inc(metrics.QueriesCancelled)
	}
	sample := ops.QuerySample{
		Fingerprint: qr.fp,
		Shape:       qr.shape,
		Duration:    qr.dur,
		Rows:        int64(len(rows)),
		Retries:     qr.retries(),
		Err:         err != nil,
	}
	if qr.scope != nil {
		sample.Bytes = qr.scope.Get(metrics.RPCBytesReceived)
		sample.Shed = qr.scope.Get(metrics.ServerShed)
	}
	sess.stats.Record(sample)
	sess.logSlowQuery(qr, err)
	return rows, qr, err
}

// ExplainAnalyze executes the plan and reports what actually happened:
// the physical tree annotated with per-operator actual rows, bytes, and
// wall time; a per-region breakdown of server-side scan work; the span
// waterfall; and the query-scoped metrics. The query runs for real — rows
// are materialized and every side effect of execution occurs.
func (df *DataFrame) ExplainAnalyze(ctx context.Context) (string, error) {
	_, qr, err := df.run(ctx, true)
	if err != nil {
		return "", err
	}
	qr.tr.Finish()

	var b strings.Builder
	b.WriteString("== Optimized Logical Plan ==\n")
	b.WriteString(plan.Format(qr.opt))
	b.WriteString("== Physical Plan (actual) ==\n")
	b.WriteString(exec.ExplainAnalyzed(qr.phys))
	if regions := regionBreakdown(qr.tr); regions != "" {
		b.WriteString("== Per-Region Breakdown ==\n")
		b.WriteString(regions)
	}
	b.WriteString("== Query Trace ==\n")
	b.WriteString(qr.tr.Render())
	b.WriteString("== Query Metrics ==\n")
	writeCounters(&b, qr.scope)
	b.WriteString(qr.scope.SummaryString())
	return b.String(), nil
}

// AnalyzeContext is ExplainAnalyze returning the raw artifacts (rows,
// trace, per-query metrics scope, instrumented plan) instead of a report,
// for callers that assert on or post-process them.
func (df *DataFrame) AnalyzeContext(ctx context.Context) ([]plan.Row, *trace.Trace, *metrics.Registry, exec.PhysicalPlan, error) {
	rows, qr, err := df.run(ctx, true)
	qr.tr.Finish()
	return rows, qr.tr, qr.scope, qr.phys, err
}

// regionBreakdown aggregates the server-side scan/get spans by region:
// one line per region with its host, rows produced, span count, and total
// server-side wall time. Empty when the trace holds no region spans.
func regionBreakdown(tr *trace.Trace) string {
	if tr == nil {
		return ""
	}
	type regionAgg struct {
		host      string
		rows      int64
		staleRows int64
		spans     int
		wall      time.Duration
	}
	agg := make(map[string]*regionAgg)
	tr.Walk(func(_ int, s *trace.Span) {
		if s.Name() != "region.scan" && s.Name() != "region.get" {
			return
		}
		id := s.Tag("region")
		a := agg[id]
		if a == nil {
			a = &regionAgg{host: s.Tag("host")}
			agg[id] = a
		}
		a.rows += s.Attr("rows")
		if s.Tag("replica") != "" {
			// The span ran on a secondary copy, so its rows are timeline
			// (possibly-stale) reads.
			a.staleRows += s.Attr("rows")
		}
		a.spans++
		a.wall += s.Duration()
	})
	if len(agg) == 0 {
		return ""
	}
	ids := make([]string, 0, len(agg))
	for id := range agg {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		a := agg[id]
		fmt.Fprintf(&b, "%s  host=%s rows=%d spans=%d time=%s",
			id, a.host, a.rows, a.spans, a.wall.Round(time.Microsecond))
		if a.staleRows > 0 {
			fmt.Fprintf(&b, " stale_rows=%d", a.staleRows)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// writeCounters renders the scope's non-zero counters sorted by name.
func writeCounters(b *strings.Builder, scope *metrics.Registry) {
	snap := scope.Snapshot()
	names := make([]string, 0, len(snap))
	for name, v := range snap {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(b, "%s = %d\n", name, snap[name])
	}
}

// logSlowQuery emits one structured line when the query exceeded the
// session's slow-query threshold: plan shape, wall time, retry counts,
// the top-3 slowest spans, and the error if any.
func (s *Session) logSlowQuery(qr *queryRun, err error) {
	threshold := s.cfg.SlowQueryThreshold
	if threshold <= 0 || qr.dur < threshold {
		return
	}
	w := s.cfg.SlowQueryLog
	if w == nil {
		w = os.Stderr
	}
	var b strings.Builder
	fmt.Fprintf(&b, "slow-query fingerprint=%s dur=%s threshold=%s shape=%s",
		qr.fp, qr.dur.Round(time.Microsecond), threshold, shapeOf(qr.phys))
	if retries := qr.retries(); retries > 0 {
		fmt.Fprintf(&b, " retries=%d", retries)
	}
	if spans := qr.tr.Slowest(3); len(spans) > 0 {
		parts := make([]string, len(spans))
		for i, st := range spans {
			parts[i] = fmt.Sprintf("%s=%s", st.Name, st.Duration.Round(time.Microsecond))
		}
		fmt.Fprintf(&b, " slowest=[%s]", strings.Join(parts, " "))
	}
	if err != nil {
		fmt.Fprintf(&b, " err=%q", err)
	}
	b.WriteByte('\n')
	io.WriteString(w, b.String())
	s.stats.RecordSlow(qr.fp, qr.shape, strings.TrimSuffix(b.String(), "\n"))
}

// retries counts retried work under this query: scoped counters when a
// scope exists, otherwise retry-tagged task spans in the trace.
func (qr *queryRun) retries() int64 {
	if qr.scope != nil {
		return qr.scope.Get(metrics.TasksRetried) + qr.scope.Get(metrics.ClientRetries)
	}
	var n int64
	if qr.tr != nil {
		qr.tr.Walk(func(_ int, s *trace.Span) {
			if s.Name() == "task" && s.Tag("outcome") == "retried" {
				n++
			}
		})
	}
	return n
}

// shapeOf renders a compact one-line plan shape, e.g.
// "HashAggExec(PipelineExec(FilterExec(ScanExec)))".
func shapeOf(p exec.PhysicalPlan) string {
	if p == nil {
		return "?"
	}
	name := p.Explain()
	if i := strings.IndexByte(name, ' '); i > 0 {
		name = name[:i]
	}
	kids := p.Children()
	if len(kids) == 0 {
		return name
	}
	parts := make([]string, len(kids))
	for i, c := range kids {
		parts[i] = shapeOf(c)
	}
	return name + "(" + strings.Join(parts, ",") + ")"
}
