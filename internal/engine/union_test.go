package engine

import (
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

func TestUnionAll(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, `
		SELECT id FROM users WHERE city = 'sf'
		UNION ALL
		SELECT id FROM users WHERE city = 'sf'
		ORDER BY id`)
	if len(rows) != 4 { // 2 sf users × 2
		t.Fatalf("union all rows = %v", rows)
	}
	if rows[0][0] != "u1" || rows[1][0] != "u1" {
		t.Errorf("duplicates must survive UNION ALL: %v", rows)
	}
}

func TestUnionDeduplicates(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, `
		SELECT city FROM users
		UNION
		SELECT city FROM users
		ORDER BY city`)
	if len(rows) != 3 { // NULL, nyc, sf
		t.Fatalf("union rows = %v", rows)
	}
}

func TestUnionPositionalRenameAndLimit(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, `
		SELECT id AS who FROM users WHERE id = 'u1'
		UNION ALL
		SELECT uid FROM orders WHERE uid = 'u2'
		ORDER BY who LIMIT 2`)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0] != "u1" || rows[1][0] != "u2" {
		t.Errorf("positional union = %v", rows)
	}
	df, err := s.SQL(`SELECT id AS who FROM users UNION ALL SELECT uid FROM orders`)
	if err != nil {
		t.Fatal(err)
	}
	if df.Schema()[0].Name != "who" {
		t.Errorf("union schema takes the head's names: %s", df.Schema())
	}
}

func TestUnionWidthMismatchRejected(t *testing.T) {
	s := joinSession(t)
	if _, err := s.SQL(`SELECT id FROM users UNION ALL SELECT uid, amount FROM orders`); err == nil {
		t.Error("width mismatch must be rejected")
	}
}

func TestUnionInDerivedTable(t *testing.T) {
	s := joinSession(t)
	rows := mustSQL(t, s, `
		SELECT count(*) FROM (
			SELECT id FROM users UNION ALL SELECT uid FROM orders
		) both`)
	if rows[0][0].(int64) != 10 {
		t.Errorf("derived union count = %v", rows[0][0])
	}
}

func TestUnionPushdownReachesBothSides(t *testing.T) {
	s := joinSession(t)
	df, err := s.SQL(`
		SELECT id FROM users WHERE age IS NULL
		UNION ALL
		SELECT id FROM users WHERE city = 'sf'`)
	// users has no "age" — expect resolution failure; use valid predicate.
	if err == nil {
		if _, err2 := df.Collect(); err2 == nil {
			t.Skip("schema has age?")
		}
	}
	df, err = s.SQL(`
		SELECT id FROM users WHERE city = 'sf'
		UNION ALL
		SELECT id FROM users WHERE city = 'nyc'`)
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `pushed=[(city = "sf")]`) || !strings.Contains(out, `pushed=[(city = "nyc")]`) {
		t.Errorf("filters should push into both union branches:\n%s", out)
	}
}

func TestBroadcastJoinMatchesShuffleJoin(t *testing.T) {
	s := joinSession(t)
	shuffled := mustSQL(t, s, `SELECT u.id, o.amount FROM users u JOIN orders o ON u.id = o.uid ORDER BY u.id, o.amount`)

	bs := joinSessionWith(t, Config{Hosts: []string{"h1"}, ExecutorsPerHost: 2, BroadcastThreshold: 100})
	broadcast := mustSQL(t, bs, `SELECT u.id, o.amount FROM users u JOIN orders o ON u.id = o.uid ORDER BY u.id, o.amount`)
	if len(shuffled) != len(broadcast) {
		t.Fatalf("rows: %d vs %d", len(shuffled), len(broadcast))
	}
	for i := range shuffled {
		if shuffled[i][0] != broadcast[i][0] || shuffled[i][1] != broadcast[i][1] {
			t.Fatalf("row %d: %v vs %v", i, shuffled[i], broadcast[i])
		}
	}
	// The broadcast run shuffles nothing for the join (the exchange is
	// skipped entirely on both sides).
	if bs.Meter().Get(metrics.ShuffleRecords) != 0 {
		t.Errorf("broadcast join shuffled %d records", bs.Meter().Get(metrics.ShuffleRecords))
	}
}

// joinSessionWith rebuilds joinSession's relations into a session with a
// custom config.
func joinSessionWith(t *testing.T, cfg Config) *Session {
	t.Helper()
	s, _ := NewSession(cfg)
	old := joinSession(t)
	for _, name := range []string{"users", "orders"} {
		lp, err := old.resolve(name)
		if err != nil {
			t.Fatal(err)
		}
		s.Register(lp.(*plan.ScanNode).Relation)
	}
	return s
}

// TestLeftOuterBroadcast exercises NULL extension under broadcast.
func TestLeftOuterBroadcast(t *testing.T) {
	s := joinSessionWith(t, Config{Hosts: []string{"h1"}, ExecutorsPerHost: 2, BroadcastThreshold: 100})
	rows := mustSQL(t, s, `
		SELECT u.id, o.amount FROM users u
		LEFT JOIN orders o ON u.id = o.uid
		ORDER BY u.id, o.amount`)
	if len(rows) != 6 {
		t.Fatalf("rows = %v", rows)
	}
}
