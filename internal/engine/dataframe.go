package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/plan"
)

// DataFrame is a lazy relational computation, the paper's extended Spark
// DataFrame: transformations stack logical operators, and actions
// (Collect/Count/Write) optimize, compile, and execute the plan.
type DataFrame struct {
	sess *Session
	lp   plan.LogicalPlan
	// parseDur is the SQL front-end time when this frame came from
	// Session.SQL; traced actions back-date a parse span from it.
	parseDur time.Duration
	// consistency is the read-consistency mode actions execute under. The
	// zero value (Strong) routes every read to region primaries; Timeline
	// allows possibly-stale replica reads with same-round crash failover.
	consistency datasource.Consistency
}

// derive builds a new frame over lp inheriting everything but the plan —
// the consistency choice (and session) survives every transformation, so
// df.WithConsistency(Timeline).Filter(...).Count() runs timeline.
func (df *DataFrame) derive(lp plan.LogicalPlan) *DataFrame {
	return &DataFrame{sess: df.sess, lp: lp, consistency: df.consistency}
}

// WithConsistency returns a copy of the frame whose actions read at the
// given consistency level. ConsistencyTimeline lets reads be served by
// region replicas — results may trail the primary by a bounded, reported
// staleness, and a crashed primary fails over within one RPC round instead
// of stalling until reassignment. ConsistencyStrong (the default) is
// read-your-writes and touches only primaries.
func (df *DataFrame) WithConsistency(c datasource.Consistency) *DataFrame {
	out := *df
	out.consistency = c
	return &out
}

// Consistency reports the read-consistency mode actions execute under.
func (df *DataFrame) Consistency() datasource.Consistency { return df.consistency }

// Schema describes the DataFrame's output columns.
func (df *DataFrame) Schema() plan.Schema { return df.lp.Schema() }

// LogicalPlan exposes the underlying plan (for EXPLAIN and tests).
func (df *DataFrame) LogicalPlan() plan.LogicalPlan { return df.lp }

// Filter keeps rows satisfying cond (Code 3's df.filter($"col0" <= ...)).
func (df *DataFrame) Filter(cond plan.Expr) *DataFrame {
	return df.derive(&plan.FilterNode{Cond: cond, Child: df.lp})
}

// Select projects the named columns (Code 3's .select("col0", "col1")).
func (df *DataFrame) Select(cols ...string) *DataFrame {
	exprs := make([]plan.NamedExpr, len(cols))
	for i, c := range cols {
		exprs[i] = plan.NamedExpr{Expr: plan.Col(c), Name: c}
	}
	return df.derive(&plan.ProjectNode{Exprs: exprs, Child: df.lp})
}

// SelectExpr projects arbitrary named expressions.
func (df *DataFrame) SelectExpr(exprs ...plan.NamedExpr) *DataFrame {
	return df.derive(&plan.ProjectNode{Exprs: exprs, Child: df.lp})
}

// Join inner-joins with other on leftCols[i] = rightCols[i].
func (df *DataFrame) Join(other *DataFrame, leftCols, rightCols []string) (*DataFrame, error) {
	return df.join(other, leftCols, rightCols, plan.InnerJoin)
}

// LeftJoin left-outer-joins with other on leftCols[i] = rightCols[i]:
// unmatched left rows survive with NULL right columns.
func (df *DataFrame) LeftJoin(other *DataFrame, leftCols, rightCols []string) (*DataFrame, error) {
	return df.join(other, leftCols, rightCols, plan.LeftOuterJoin)
}

func (df *DataFrame) join(other *DataFrame, leftCols, rightCols []string, jt plan.JoinType) (*DataFrame, error) {
	if len(leftCols) != len(rightCols) || len(leftCols) == 0 {
		return nil, fmt.Errorf("engine: join needs matching, non-empty key lists")
	}
	lk := make([]plan.Expr, len(leftCols))
	rk := make([]plan.Expr, len(rightCols))
	for i := range leftCols {
		lk[i] = plan.Col(leftCols[i])
		rk[i] = plan.Col(rightCols[i])
	}
	return df.derive(&plan.JoinNode{
		Left: df.lp, Right: other.lp, LeftKeys: lk, RightKeys: rk, Type: jt,
	}), nil
}

// Distinct deduplicates the DataFrame's rows.
func (df *DataFrame) Distinct() *DataFrame {
	groups := make([]plan.NamedExpr, len(df.lp.Schema()))
	for i, f := range df.lp.Schema() {
		groups[i] = plan.NamedExpr{Expr: plan.Col(f.Name), Name: f.Name}
	}
	return df.derive(&plan.AggregateNode{GroupBy: groups, Child: df.lp})
}

// GroupBy starts a grouped aggregation.
func (df *DataFrame) GroupBy(cols ...string) *GroupedData {
	return &GroupedData{df: df, cols: cols}
}

// GroupedData is an in-flight GROUP BY.
type GroupedData struct {
	df   *DataFrame
	cols []string
}

// Agg finishes the aggregation with the given aggregate expressions.
func (g *GroupedData) Agg(aggs ...plan.AggExpr) *DataFrame {
	groups := make([]plan.NamedExpr, len(g.cols))
	for i, c := range g.cols {
		groups[i] = plan.NamedExpr{Expr: plan.Col(c), Name: c}
	}
	return g.df.derive(&plan.AggregateNode{
		GroupBy: groups, Aggs: aggs, Child: g.df.lp,
	})
}

// OrderBy sorts by the given keys.
func (df *DataFrame) OrderBy(orders ...plan.SortOrder) *DataFrame {
	return df.derive(&plan.SortNode{Orders: orders, Child: df.lp})
}

// Limit keeps the first n rows.
func (df *DataFrame) Limit(n int) *DataFrame {
	return df.derive(&plan.LimitNode{N: n, Child: df.lp})
}

// CreateOrReplaceTempView registers the DataFrame's plan under name for SQL
// (the paper's Code 4).
func (df *DataFrame) CreateOrReplaceTempView(name string) {
	df.sess.mu.Lock()
	defer df.sess.mu.Unlock()
	df.sess.views[name] = df.lp
}

// Collect optimizes, compiles, and executes the plan, returning all rows.
func (df *DataFrame) Collect() ([]plan.Row, error) {
	return df.CollectContext(context.Background())
}

// CollectContext is Collect bounded by ctx: cancelling ctx (or exceeding its
// deadline, or the session's QueryTimeout) aborts the query — queued tasks
// drop, in-flight RPCs and backoff sleeps stop early — and the context's
// error comes back. Cancelled or timed-out queries count in
// engine.queries_cancelled.
func (df *DataFrame) CollectContext(ctx context.Context) ([]plan.Row, error) {
	rows, _, err := df.run(ctx, false)
	return rows, err
}

// Count executes the plan and returns the number of rows.
func (df *DataFrame) Count() (int64, error) {
	return df.CountContext(context.Background())
}

// CountContext is Count bounded by ctx (see CollectContext).
func (df *DataFrame) CountContext(ctx context.Context) (int64, error) {
	agg := &plan.AggregateNode{Aggs: []plan.AggExpr{{Kind: plan.AggCount, Name: "count"}}, Child: df.lp}
	cdf := df.derive(agg)
	cdf.parseDur = df.parseDur
	rows, _, err := cdf.run(ctx, false)
	if err != nil {
		return 0, err
	}
	return rows[0][0].(int64), nil
}

// Write inserts the DataFrame's rows into an insertable relation — the
// paper's write path (Code 2): df.write....save().
func (df *DataFrame) Write(target datasource.InsertableRelation) error {
	rows, err := df.Collect()
	if err != nil {
		return err
	}
	want := len(target.Schema())
	for _, r := range rows {
		if len(r) != want {
			return fmt.Errorf("engine: cannot write %d-column rows into %q with %d columns", len(r), target.Name(), want)
		}
	}
	return target.Insert(rows)
}

// WriteBulk inserts the DataFrame's rows through the target's bulk-load
// path — store files installed directly in each region, bypassing WAL and
// MemStore. Use it for initial loads too large for the buffered write path.
func (df *DataFrame) WriteBulk(target datasource.BulkLoadableRelation) error {
	rows, err := df.Collect()
	if err != nil {
		return err
	}
	want := len(target.Schema())
	for _, r := range rows {
		if len(r) != want {
			return fmt.Errorf("engine: cannot write %d-column rows into %q with %d columns", len(r), target.Name(), want)
		}
	}
	return target.BulkLoad(rows)
}

// Show renders up to n rows as an aligned text table (n <= 0 means all),
// like Spark's df.show().
func (df *DataFrame) Show(n int) (string, error) {
	rows, err := df.Collect()
	if err != nil {
		return "", err
	}
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	schema := df.Schema()
	widths := make([]int, len(schema))
	header := make([]string, len(schema))
	for i, f := range schema {
		header[i] = f.Name
		widths[i] = len(f.Name)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = make([]string, len(schema))
		for c := range schema {
			v := "NULL"
			if c < len(row) && row[c] != nil {
				v = fmt.Sprintf("%v", row[c])
			}
			cells[r][c] = v
			if len(v) > widths[c] {
				widths[c] = len(v)
			}
		}
	}
	var b strings.Builder
	line := func() {
		for _, w := range widths {
			b.WriteByte('+')
			b.WriteString(strings.Repeat("-", w+2))
		}
		b.WriteString("+\n")
	}
	writeRow := func(vals []string) {
		for i, v := range vals {
			fmt.Fprintf(&b, "| %-*s ", widths[i], v)
		}
		b.WriteString("|\n")
	}
	line()
	writeRow(header)
	line()
	for _, r := range cells {
		writeRow(r)
	}
	line()
	return b.String(), nil
}

// Explain renders the optimized logical and physical plans.
func (df *DataFrame) Explain() (string, error) {
	opt := plan.Optimize(df.lp)
	phys, err := exec.CompileWith(opt, df.sess.compileConfig())
	if err != nil {
		return "", err
	}
	return "== Optimized Logical Plan ==\n" + plan.Format(opt) +
		"== Physical Plan ==\n" + exec.Explain(phys), nil
}

func (df *DataFrame) compile() (exec.PhysicalPlan, error) {
	return exec.CompileWith(plan.Optimize(df.lp), df.sess.compileConfig())
}
