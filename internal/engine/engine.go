// Package engine ties the stack together into the user-facing session: a
// table catalog, the SQL front end, the Catalyst-style optimizer, the
// physical compiler, and the DataFrame API the paper's Code 3 demonstrates.
// The engine is source-agnostic: it talks to storage only through the
// datasource seam, which is what makes SHC a plug-in rather than a fork.
package engine

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/ops"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/sql"
)

// Config sizes a session's execution resources.
type Config struct {
	// Hosts are the executor hosts; default is one local host.
	Hosts []string
	// ExecutorsPerHost is per-host task parallelism; default 2. Negative is
	// rejected by NewSession.
	ExecutorsPerHost int
	// ShufflePartitions overrides reduce-side parallelism; 0 = auto.
	// Negative is rejected by NewSession.
	ShufflePartitions int
	// BroadcastThreshold enables broadcast joins when the build side has
	// at most this many rows; 0 disables them. Negative is rejected by
	// NewSession.
	BroadcastThreshold int
	// UseSortMergeJoin compiles equi-joins to sort-merge instead of hash
	// joins (Spark's default strategy for large inputs).
	UseSortMergeJoin bool
	// DisablePipelining materializes every operator Volcano-style instead of
	// fusing scan→filter→project→limit chains into streaming batch
	// pipelines (ablation switch).
	DisablePipelining bool
	// DisableVectorization keeps fused pipelines on the row-at-a-time path
	// instead of columnar batches with compiled predicates (ablation switch;
	// implies nothing about pipelining itself).
	DisableVectorization bool
	// TaskRetries is the per-task attempt cap for transport failures
	// (default 3); set negative to disable re-execution.
	TaskRetries int
	// QueryTimeout bounds each action (Collect/Count/Write/Show) when the
	// caller does not pass its own context deadline: the query's context is
	// derived with this timeout and a query that exceeds it fails with
	// context.DeadlineExceeded. 0 means no per-query deadline. Negative is
	// rejected by NewSession.
	QueryTimeout time.Duration
	// HedgeDelay is advisory for integrators wiring hedged reads into the
	// storage client backing this session's relations (see
	// hbase.WithHedgedReads): how long a read may go unanswered before a
	// speculative duplicate fires. The engine itself only validates it;
	// negative values are clamped to 0 (disabled).
	HedgeDelay time.Duration
	// Meter receives execution counters; a fresh registry when nil.
	Meter *metrics.Registry
	// SlowQueryThreshold turns on the slow-query log: any action whose
	// wall time exceeds it emits one structured line to SlowQueryLog.
	// 0 disables the log. Negative is rejected by NewSession.
	SlowQueryThreshold time.Duration
	// SlowQueryLog receives slow-query records; os.Stderr when nil.
	SlowQueryLog io.Writer
	// QueryStatsSize caps the session's per-fingerprint statement stats
	// table (top-K by total time; the least-used entry is evicted when
	// full). 0 means the default size; negative is rejected by NewSession.
	QueryStatsSize int
}

// Validate normalizes cfg in place (defaults, clamps) and reports
// out-of-range settings. NewSession calls it; it is exported so harnesses
// can surface configuration errors before building a cluster.
func (cfg *Config) Validate() error {
	if cfg.ExecutorsPerHost < 0 {
		return fmt.Errorf("engine: ExecutorsPerHost must not be negative, got %d", cfg.ExecutorsPerHost)
	}
	if cfg.ShufflePartitions < 0 {
		return fmt.Errorf("engine: ShufflePartitions must not be negative, got %d", cfg.ShufflePartitions)
	}
	if cfg.BroadcastThreshold < 0 {
		return fmt.Errorf("engine: BroadcastThreshold must not be negative, got %d", cfg.BroadcastThreshold)
	}
	if cfg.QueryTimeout < 0 {
		return fmt.Errorf("engine: QueryTimeout must not be negative, got %v", cfg.QueryTimeout)
	}
	if cfg.SlowQueryThreshold < 0 {
		return fmt.Errorf("engine: SlowQueryThreshold must not be negative, got %v", cfg.SlowQueryThreshold)
	}
	if cfg.QueryStatsSize < 0 {
		return fmt.Errorf("engine: QueryStatsSize must not be negative, got %d", cfg.QueryStatsSize)
	}
	if cfg.HedgeDelay < 0 {
		cfg.HedgeDelay = 0
	}
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = []string{"local"}
	}
	if cfg.ExecutorsPerHost == 0 {
		cfg.ExecutorsPerHost = 2
	}
	if cfg.Meter == nil {
		cfg.Meter = metrics.NewRegistry()
	}
	if cfg.TaskRetries == 0 {
		cfg.TaskRetries = 3
	}
	return nil
}

// Session is the engine entry point (the SparkSession/sqlContext analogue).
type Session struct {
	sched *exec.Scheduler
	meter *metrics.Registry
	stats *ops.StatsTable
	cfg   Config

	mu     sync.RWMutex
	tables map[string]plan.Relation
	views  map[string]plan.LogicalPlan
}

// NewSession builds a session, validating the configuration first.
func NewSession(cfg Config) (*Session, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sched := exec.NewScheduler(cfg.Hosts, cfg.ExecutorsPerHost, cfg.Meter)
	if cfg.TaskRetries > 0 {
		sched.SetTaskRetry(cfg.TaskRetries, exec.RetryableTransport)
	}
	return &Session{
		sched:  sched,
		meter:  cfg.Meter,
		stats:  ops.NewStatsTable(cfg.QueryStatsSize),
		cfg:    cfg,
		tables: make(map[string]plan.Relation),
		views:  make(map[string]plan.LogicalPlan),
	}, nil
}

// Config returns the session's effective (validated, defaulted)
// configuration.
func (s *Session) Config() Config { return s.cfg }

// Meter exposes the session's counters.
func (s *Session) Meter() *metrics.Registry { return s.meter }

// QueryStats exposes the session's per-fingerprint statement statistics.
func (s *Session) QueryStats() *ops.StatsTable { return s.stats }

// Register adds a relation to the catalog under its own name.
func (s *Session) Register(rel plan.Relation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[rel.Name()] = rel
}

// RegisterAs adds a relation under an explicit name.
func (s *Session) RegisterAs(name string, rel plan.Relation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[name] = rel
}

// Table returns a DataFrame reading the named table.
func (s *Session) Table(name string) (*DataFrame, error) {
	lp, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	return &DataFrame{sess: s, lp: lp}, nil
}

// Read wraps a relation in a DataFrame without registering it.
func (s *Session) Read(rel plan.Relation) *DataFrame {
	return &DataFrame{sess: s, lp: &plan.ScanNode{Relation: rel}}
}

func (s *Session) resolve(name string) (plan.LogicalPlan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v, ok := s.views[name]; ok {
		return v, nil
	}
	if rel, ok := s.tables[name]; ok {
		return &plan.ScanNode{Relation: rel}, nil
	}
	return nil, fmt.Errorf("engine: table or view %q not found", name)
}

// SQL parses a query against the catalog and returns its (lazy) DataFrame.
// Parse time is remembered so a traced action can back-date a parse span.
func (s *Session) SQL(query string) (*DataFrame, error) {
	start := time.Now()
	lp, err := sql.Build(query, s.resolve)
	if err != nil {
		return nil, err
	}
	return &DataFrame{sess: s, lp: lp, parseDur: time.Since(start)}, nil
}

// compileConfig selects physical strategies for this session.
func (s *Session) compileConfig() exec.CompileConfig {
	return exec.CompileConfig{
		SortMergeJoin:        s.cfg.UseSortMergeJoin,
		DisablePipelining:    s.cfg.DisablePipelining,
		DisableVectorization: s.cfg.DisableVectorization,
	}
}

// execContext builds the execution context for one query run under ctx.
func (s *Session) execContext(ctx context.Context) *exec.Context {
	return &exec.Context{
		Ctx:                ctx,
		Scheduler:          s.sched,
		Meter:              s.meter,
		ShufflePartitions:  s.cfg.ShufflePartitions,
		BroadcastThreshold: s.cfg.BroadcastThreshold,
	}
}
