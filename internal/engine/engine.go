// Package engine ties the stack together into the user-facing session: a
// table catalog, the SQL front end, the Catalyst-style optimizer, the
// physical compiler, and the DataFrame API the paper's Code 3 demonstrates.
// The engine is source-agnostic: it talks to storage only through the
// datasource seam, which is what makes SHC a plug-in rather than a fork.
package engine

import (
	"fmt"
	"sync"

	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/sql"
)

// Config sizes a session's execution resources.
type Config struct {
	// Hosts are the executor hosts; default is one local host.
	Hosts []string
	// ExecutorsPerHost is per-host task parallelism; default 2.
	ExecutorsPerHost int
	// ShufflePartitions overrides reduce-side parallelism; 0 = auto.
	ShufflePartitions int
	// BroadcastThreshold enables broadcast joins when the build side has
	// at most this many rows; 0 disables them.
	BroadcastThreshold int
	// UseSortMergeJoin compiles equi-joins to sort-merge instead of hash
	// joins (Spark's default strategy for large inputs).
	UseSortMergeJoin bool
	// DisablePipelining materializes every operator Volcano-style instead of
	// fusing scan→filter→project→limit chains into streaming batch
	// pipelines (ablation switch).
	DisablePipelining bool
	// TaskRetries is the per-task attempt cap for transport failures
	// (default 3); set negative to disable re-execution.
	TaskRetries int
	// Meter receives execution counters; a fresh registry when nil.
	Meter *metrics.Registry
}

// Session is the engine entry point (the SparkSession/sqlContext analogue).
type Session struct {
	sched *exec.Scheduler
	meter *metrics.Registry
	cfg   Config

	mu     sync.RWMutex
	tables map[string]plan.Relation
	views  map[string]plan.LogicalPlan
}

// NewSession builds a session.
func NewSession(cfg Config) *Session {
	if len(cfg.Hosts) == 0 {
		cfg.Hosts = []string{"local"}
	}
	if cfg.ExecutorsPerHost <= 0 {
		cfg.ExecutorsPerHost = 2
	}
	if cfg.Meter == nil {
		cfg.Meter = metrics.NewRegistry()
	}
	if cfg.TaskRetries == 0 {
		cfg.TaskRetries = 3
	}
	sched := exec.NewScheduler(cfg.Hosts, cfg.ExecutorsPerHost, cfg.Meter)
	if cfg.TaskRetries > 0 {
		sched.SetTaskRetry(cfg.TaskRetries, exec.RetryableTransport)
	}
	return &Session{
		sched:  sched,
		meter:  cfg.Meter,
		cfg:    cfg,
		tables: make(map[string]plan.Relation),
		views:  make(map[string]plan.LogicalPlan),
	}
}

// Meter exposes the session's counters.
func (s *Session) Meter() *metrics.Registry { return s.meter }

// Register adds a relation to the catalog under its own name.
func (s *Session) Register(rel plan.Relation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[rel.Name()] = rel
}

// RegisterAs adds a relation under an explicit name.
func (s *Session) RegisterAs(name string, rel plan.Relation) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[name] = rel
}

// Table returns a DataFrame reading the named table.
func (s *Session) Table(name string) (*DataFrame, error) {
	lp, err := s.resolve(name)
	if err != nil {
		return nil, err
	}
	return &DataFrame{sess: s, lp: lp}, nil
}

// Read wraps a relation in a DataFrame without registering it.
func (s *Session) Read(rel plan.Relation) *DataFrame {
	return &DataFrame{sess: s, lp: &plan.ScanNode{Relation: rel}}
}

func (s *Session) resolve(name string) (plan.LogicalPlan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if v, ok := s.views[name]; ok {
		return v, nil
	}
	if rel, ok := s.tables[name]; ok {
		return &plan.ScanNode{Relation: rel}, nil
	}
	return nil, fmt.Errorf("engine: table or view %q not found", name)
}

// SQL parses a query against the catalog and returns its (lazy) DataFrame.
func (s *Session) SQL(query string) (*DataFrame, error) {
	lp, err := sql.Build(query, s.resolve)
	if err != nil {
		return nil, err
	}
	return &DataFrame{sess: s, lp: lp}, nil
}

// compileConfig selects physical strategies for this session.
func (s *Session) compileConfig() exec.CompileConfig {
	return exec.CompileConfig{
		SortMergeJoin:     s.cfg.UseSortMergeJoin,
		DisablePipelining: s.cfg.DisablePipelining,
	}
}

// context builds the execution context for one query run.
func (s *Session) context() *exec.Context {
	return &exec.Context{
		Scheduler:          s.sched,
		Meter:              s.meter,
		ShufflePartitions:  s.cfg.ShufflePartitions,
		BroadcastThreshold: s.cfg.BroadcastThreshold,
	}
}
