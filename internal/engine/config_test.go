package engine

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/metrics"
)

func TestNewSessionRejectsOutOfRangeConfig(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want string
	}{
		{"negative executors", Config{ExecutorsPerHost: -1}, "ExecutorsPerHost"},
		{"negative shuffle partitions", Config{ShufflePartitions: -4}, "ShufflePartitions"},
		{"negative broadcast threshold", Config{BroadcastThreshold: -10}, "BroadcastThreshold"},
		{"negative query timeout", Config{QueryTimeout: -time.Second}, "QueryTimeout"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewSession(tc.cfg)
			if err == nil {
				t.Fatalf("NewSession(%+v) accepted invalid config", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not name the bad field %s", err, tc.want)
			}
			if s != nil {
				t.Error("invalid config still returned a session")
			}
		})
	}
}

func TestNewSessionDefaults(t *testing.T) {
	s, err := NewSession(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if len(cfg.Hosts) != 1 || cfg.Hosts[0] != "local" {
		t.Errorf("default Hosts = %v, want [local]", cfg.Hosts)
	}
	if cfg.ExecutorsPerHost != 2 {
		t.Errorf("default ExecutorsPerHost = %d, want 2", cfg.ExecutorsPerHost)
	}
	if cfg.Meter == nil {
		t.Error("default Meter is nil")
	}
	if cfg.TaskRetries != 3 {
		t.Errorf("default TaskRetries = %d, want 3", cfg.TaskRetries)
	}
	if cfg.QueryTimeout != 0 {
		t.Errorf("default QueryTimeout = %v, want 0 (none)", cfg.QueryTimeout)
	}
}

func TestNewSessionClampsNegativeHedgeDelay(t *testing.T) {
	s, err := NewSession(Config{HedgeDelay: -time.Millisecond})
	if err != nil {
		t.Fatalf("negative HedgeDelay must clamp, not reject: %v", err)
	}
	if got := s.Config().HedgeDelay; got != 0 {
		t.Errorf("HedgeDelay = %v, want 0", got)
	}
}

// TestCollectContextCancelledQuery: a dead context aborts the query with the
// context's error and the cancellation is counted.
func TestCollectContextCancelledQuery(t *testing.T) {
	m := metrics.NewRegistry()
	s := newTestSession(t)
	s.meter = m
	s.cfg.Meter = m
	df, err := s.SQL(`SELECT id FROM users`)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := df.CollectContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := m.Get(metrics.QueriesCancelled); got != 1 {
		t.Errorf("engine.queries_cancelled = %d, want 1", got)
	}
}

// TestQueryTimeoutExpires: an unmeetable QueryTimeout turns into
// DeadlineExceeded through the whole stack.
func TestQueryTimeoutExpires(t *testing.T) {
	s := newTestSession(t)
	s.cfg.QueryTimeout = time.Nanosecond
	df, err := s.SQL(`SELECT id FROM users`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.CollectContext(context.Background()); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if got := s.meter.Get(metrics.QueriesCancelled); got == 0 {
		t.Error("timed-out query not counted in engine.queries_cancelled")
	}
}

// TestCountContextHonorsContext: the Count action takes the same context
// plumbing as Collect.
func TestCountContextHonorsContext(t *testing.T) {
	s := newTestSession(t)
	df, err := s.SQL(`SELECT id FROM users`)
	if err != nil {
		t.Fatal(err)
	}
	n, err := df.CountContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("count = %d, want 40", n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := df.CountContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled count err = %v, want context.Canceled", err)
	}
}
