package engine

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"github.com/shc-go/shc/internal/exec"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/trace"
)

// TestExplainAnalyzeAnnotatesActualsMatchingMetrics: the analyzed report
// carries per-operator actuals, and the root operator's annotated row
// count equals both the collected row count and the query-scoped
// rows_returned-style counters captured during the same run.
func TestExplainAnalyzeAnnotatesActualsMatchingMetrics(t *testing.T) {
	s := newTestSession(t)
	df, err := s.SQL("SELECT id, age FROM users WHERE age < 30")
	if err != nil {
		t.Fatal(err)
	}
	rows, tr, scope, phys, err := df.AnalyzeContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("query returned no rows")
	}
	st, ok := exec.OpStatsOf(phys)
	if !ok {
		t.Fatal("root plan is not instrumented")
	}
	if st.Rows != int64(len(rows)) {
		t.Errorf("root annotated rows = %d, Collect returned %d", st.Rows, len(rows))
	}
	if scope.Histogram(metrics.HistQueryLatency).Count() != 1 {
		t.Errorf("scoped query-latency histogram count = %d, want 1",
			scope.Histogram(metrics.HistQueryLatency).Count())
	}
	for _, phase := range []string{"optimize", "compile", "execute"} {
		if len(tr.Find(phase)) != 1 {
			t.Errorf("trace missing %q span:\n%s", phase, tr.Render())
		}
	}
	if len(tr.Find("parse")) != 1 {
		t.Errorf("SQL-built frame missing back-dated parse span:\n%s", tr.Render())
	}

	report, err := df.ExplainAnalyze(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"== Optimized Logical Plan ==",
		"== Physical Plan (actual) ==",
		"(actual rows=",
		"== Query Trace ==",
		"== Query Metrics ==",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

// TestCollectContextHonorsCallerTrace: a caller-provided trace on a plain
// Collect picks up the phase spans without ExplainAnalyze.
func TestCollectContextHonorsCallerTrace(t *testing.T) {
	s := newTestSession(t)
	df, err := s.SQL("SELECT COUNT(*) AS n FROM orders")
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New("collect")
	if _, err := df.CollectContext(trace.NewContext(context.Background(), tr)); err != nil {
		t.Fatal(err)
	}
	tr.Finish()
	for _, phase := range []string{"optimize", "compile", "execute"} {
		if len(tr.Find(phase)) != 1 {
			t.Errorf("trace missing %q span:\n%s", phase, tr.Render())
		}
	}
	if len(tr.Find("task")) == 0 {
		t.Errorf("no task spans under traced collect:\n%s", tr.Render())
	}
}

// TestSlowQueryLogEmitsStructuredRecord: a threshold below any real
// query's wall time makes every action leave one slow-query line with the
// plan shape and slowest spans on the injected writer.
func TestSlowQueryLogEmitsStructuredRecord(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewSession(Config{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	mem := newTestSession(t)
	s.Register(mem.tables["users"])

	df, err := s.SQL("SELECT id FROM users WHERE age < 25")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.Collect(); err != nil {
		t.Fatal(err)
	}
	line := buf.String()
	if !strings.HasPrefix(line, "slow-query fingerprint=") {
		t.Fatalf("slow log = %q, want slow-query record", line)
	}
	for _, want := range []string{"dur=", "shape=", "ScanExec", "slowest=[", "execute="} {
		if !strings.Contains(line, want) {
			t.Errorf("slow log missing %q: %q", want, line)
		}
	}
	if strings.Count(line, "\n") != 1 {
		t.Errorf("slow log not a single line: %q", line)
	}
}

// TestSlowQueryLogQuietBelowThreshold: a generous threshold emits nothing.
func TestSlowQueryLogQuietBelowThreshold(t *testing.T) {
	var buf bytes.Buffer
	s := newTestSession(t)
	s.cfg.SlowQueryThreshold = time.Hour
	s.cfg.SlowQueryLog = &buf
	if _, err := mustCollect(t, s, "SELECT id FROM users"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("slow log wrote below threshold: %q", buf.String())
	}
}

// TestValidateRejectsNegativeSlowQueryThreshold guards the config seam.
func TestValidateRejectsNegativeSlowQueryThreshold(t *testing.T) {
	if _, err := NewSession(Config{SlowQueryThreshold: -time.Second}); err == nil {
		t.Fatal("negative SlowQueryThreshold accepted")
	}
}

func mustCollect(t *testing.T, s *Session, q string) ([]interface{}, error) {
	t.Helper()
	df, err := s.SQL(q)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := df.Collect()
	if err != nil {
		return nil, err
	}
	out := make([]interface{}, len(rows))
	for i, r := range rows {
		out[i] = r
	}
	return out, nil
}

// TestQueryStatsAggregateByFingerprint: runs differing only in literals
// fold into one fingerprint entry, and the slow-query log keys into it.
func TestQueryStatsAggregateByFingerprint(t *testing.T) {
	var buf bytes.Buffer
	s, err := NewSession(Config{SlowQueryThreshold: time.Nanosecond, SlowQueryLog: &buf})
	if err != nil {
		t.Fatal(err)
	}
	mem := newTestSession(t)
	s.Register(mem.tables["users"])

	for _, q := range []string{
		"SELECT id FROM users WHERE age < 25",
		"SELECT id FROM users WHERE age < 70",
	} {
		if _, err := mustCollect(t, s, q); err != nil {
			t.Fatal(err)
		}
	}
	top := s.QueryStats().Top(0)
	if len(top) != 1 {
		t.Fatalf("fingerprint entries = %d, want 1 (literals must not fragment): %+v", len(top), top)
	}
	st := top[0]
	if st.Count != 2 {
		t.Errorf("count = %d, want 2", st.Count)
	}
	if st.Rows == 0 {
		t.Error("no rows recorded")
	}
	if !strings.Contains(st.Shape, "?") || strings.Contains(st.Shape, "25") {
		t.Errorf("shape not normalized: %q", st.Shape)
	}
	if st.SlowCount != 2 {
		t.Errorf("slow count = %d, want 2 (threshold is 1ns)", st.SlowCount)
	}
	if !strings.Contains(st.LastSlow, "fingerprint="+st.Fingerprint) {
		t.Errorf("last slow line %q does not reference fingerprint %s", st.LastSlow, st.Fingerprint)
	}

	// A structurally different statement lands in its own entry.
	if _, err := mustCollect(t, s, "SELECT id FROM users"); err != nil {
		t.Fatal(err)
	}
	if n := s.QueryStats().Len(); n != 2 {
		t.Errorf("fingerprint entries after new shape = %d, want 2", n)
	}
}

// TestValidateRejectsNegativeQueryStatsSize guards the config seam.
func TestValidateRejectsNegativeQueryStatsSize(t *testing.T) {
	if _, err := NewSession(Config{QueryStatsSize: -1}); err == nil {
		t.Fatal("negative QueryStatsSize accepted")
	}
}
