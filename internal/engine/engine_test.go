package engine

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/plan"
)

func newTestSession(t *testing.T) *Session {
	t.Helper()
	s, _ := NewSession(Config{Hosts: []string{"h1", "h2"}, ExecutorsPerHost: 2, ShufflePartitions: 4})

	users := datasource.NewMemRelation("users", plan.Schema{
		{Name: "id", Type: plan.TypeString},
		{Name: "age", Type: plan.TypeInt32},
		{Name: "city", Type: plan.TypeString},
	}, 3)
	var urows []plan.Row
	for i := 0; i < 40; i++ {
		urows = append(urows, plan.Row{fmt.Sprintf("u%02d", i), int32(18 + i%50), []string{"sf", "nyc"}[i%2]})
	}
	if err := users.Insert(urows); err != nil {
		t.Fatal(err)
	}
	s.Register(users)

	orders := datasource.NewMemRelation("orders", plan.Schema{
		{Name: "oid", Type: plan.TypeString},
		{Name: "uid", Type: plan.TypeString},
		{Name: "amount", Type: plan.TypeFloat64},
	}, 3)
	var orows []plan.Row
	for i := 0; i < 80; i++ {
		orows = append(orows, plan.Row{fmt.Sprintf("o%02d", i), fmt.Sprintf("u%02d", i%40), float64(i) + 0.5})
	}
	if err := orders.Insert(orows); err != nil {
		t.Fatal(err)
	}
	s.Register(orders)
	return s
}

func mustSQL(t *testing.T, s *Session, q string) []plan.Row {
	t.Helper()
	df, err := s.SQL(q)
	if err != nil {
		t.Fatalf("SQL(%q): %v", q, err)
	}
	rows, err := df.Collect()
	if err != nil {
		t.Fatalf("Collect(%q): %v", q, err)
	}
	return rows
}

func TestSQLSelectWhere(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, "SELECT id FROM users WHERE age < 20")
	if len(rows) != 2 { // ages 18,19 for i=0,1 then repeat at 50,51 (out of range)
		t.Errorf("rows = %d: %v", len(rows), rows)
	}
}

func TestSQLCountStar(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, "select count(1) from users")
	if rows[0][0].(int64) != 40 {
		t.Errorf("count = %v", rows[0][0])
	}
	rows = mustSQL(t, s, "select count(*) from orders")
	if rows[0][0].(int64) != 80 {
		t.Errorf("count = %v", rows[0][0])
	}
}

func TestSQLJoinGroupOrder(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, `
		SELECT u.city, count(*) AS n, sum(o.amount) AS total
		FROM users u JOIN orders o ON u.id = o.uid
		GROUP BY u.city
		ORDER BY n DESC, u.city`)
	if len(rows) != 2 {
		t.Fatalf("groups = %v", rows)
	}
	var n int64
	for _, r := range rows {
		n += r[1].(int64)
	}
	if n != 80 {
		t.Errorf("total joined rows = %d", n)
	}
	// Equal group sizes: tie broken by city asc.
	if rows[0][0] != "nyc" || rows[1][0] != "sf" {
		t.Errorf("order = %v, %v", rows[0][0], rows[1][0])
	}
}

func TestSQLHaving(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, `
		SELECT city, count(*) AS n FROM users
		GROUP BY city HAVING count(*) > 100`)
	if len(rows) != 0 {
		t.Errorf("having should filter all groups: %v", rows)
	}
}

func TestSQLDerivedTable(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, `
		SELECT big.city FROM (
			SELECT city, count(*) AS n FROM users GROUP BY city
		) big WHERE big.n >= 20`)
	if len(rows) != 2 {
		t.Errorf("derived table rows = %v", rows)
	}
}

func TestSQLCaseWhenAndArithmetic(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, `
		SELECT id, CASE WHEN age >= 60 THEN 'senior' WHEN age >= 30 THEN 'adult' ELSE 'young' END AS bracket
		FROM users WHERE age * 2 > 50 LIMIT 5`)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		b := r[1].(string)
		if b != "senior" && b != "adult" && b != "young" {
			t.Errorf("bracket = %q", b)
		}
	}
}

func TestSQLBetweenInLike(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, `SELECT id FROM users WHERE age BETWEEN 18 AND 20 AND city IN ('sf','nyc') AND id LIKE 'u%'`)
	if len(rows) != 3 {
		t.Errorf("rows = %d", len(rows))
	}
	rows = mustSQL(t, s, `SELECT id FROM users WHERE city NOT IN ('sf') LIMIT 3`)
	if len(rows) != 3 {
		t.Errorf("not-in rows = %d", len(rows))
	}
}

func TestSQLStddevAndAvg(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, `SELECT avg(amount) AS m, stddev_samp(amount) AS sd FROM orders`)
	m := rows[0][0].(float64)
	if math.Abs(m-40.0) > 1e-9 { // amounts 0.5..79.5 mean 40
		t.Errorf("avg = %v", m)
	}
	if rows[0][1].(float64) <= 0 {
		t.Errorf("stddev = %v", rows[0][1])
	}
}

func TestSQLOrderByUnprojectedColumn(t *testing.T) {
	s := newTestSession(t)
	rows := mustSQL(t, s, `SELECT id FROM users ORDER BY age DESC, id LIMIT 1`)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSQLErrors(t *testing.T) {
	s := newTestSession(t)
	for _, q := range []string{
		"SELECT * FROM missing",
		"SELECT ghost FROM users",
		"SELECT sum(amount) FROM users WHERE sum(amount) > 1",
		"SELECT nosuchfunc(age) FROM users GROUP BY age",
		"SELECT * FROM users u JOIN orders o ON u.age > o.amount",
		"SELECT FROM users",
		"SELECT * users",
	} {
		df, err := s.SQL(q)
		if err == nil {
			_, err = df.Collect()
		}
		if err == nil {
			t.Errorf("query %q should fail", q)
		}
	}
}

func TestDataFrameAPI(t *testing.T) {
	s := newTestSession(t)
	users, err := s.Table("users")
	if err != nil {
		t.Fatal(err)
	}
	got, err := users.
		Filter(&plan.Comparison{Op: plan.OpGe, L: plan.Col("age"), R: plan.Lit(60)}).
		Select("id", "age").
		OrderBy(plan.SortOrder{Expr: plan.Col("age"), Desc: true}).
		Limit(3).
		Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > 3 {
		t.Errorf("limit violated: %d", len(got))
	}
	for _, r := range got {
		if r[1].(int32) < 60 {
			t.Errorf("filter violated: %v", r)
		}
	}
}

func TestDataFrameJoinAndGroupBy(t *testing.T) {
	s := newTestSession(t)
	users, _ := s.Table("users")
	orders, _ := s.Table("orders")
	joined, err := users.Join(orders, []string{"id"}, []string{"uid"})
	if err != nil {
		t.Fatal(err)
	}
	agg := joined.GroupBy("city").Agg(
		plan.AggExpr{Kind: plan.AggCount, Name: "n"},
		plan.AggExpr{Kind: plan.AggMax, Arg: plan.Col("amount"), Name: "max_amount"},
	)
	rows, err := agg.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("groups = %v", rows)
	}
	if _, err := users.Join(orders, nil, nil); err == nil {
		t.Error("empty join keys must fail")
	}
}

func TestDataFrameCountAndRepeatedCollect(t *testing.T) {
	s := newTestSession(t)
	users, _ := s.Table("users")
	young := users.Filter(&plan.Comparison{Op: plan.OpLt, L: plan.Col("age"), R: plan.Lit(20)})
	n1, err := young.Count()
	if err != nil {
		t.Fatal(err)
	}
	// Re-running the same DataFrame must not change results (Optimize
	// clones, so pushed filters do not accumulate).
	n2, err := young.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 {
		t.Errorf("repeated count differs: %d vs %d", n1, n2)
	}
	rows, err := young.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(rows)) != n1 {
		t.Errorf("Collect/Count mismatch: %d vs %d", len(rows), n1)
	}
}

func TestTempView(t *testing.T) {
	s := newTestSession(t)
	users, _ := s.Table("users")
	seniors := users.Filter(&plan.Comparison{Op: plan.OpGe, L: plan.Col("age"), R: plan.Lit(40)})
	seniors.CreateOrReplaceTempView("seniors")
	rows := mustSQL(t, s, "SELECT count(1) FROM seniors")
	want, _ := seniors.Count()
	if rows[0][0].(int64) != want {
		t.Errorf("view count = %v, want %d", rows[0][0], want)
	}
}

func TestWriteToRelation(t *testing.T) {
	s := newTestSession(t)
	users, _ := s.Table("users")
	target := datasource.NewMemRelation("copy", plan.Schema{
		{Name: "id", Type: plan.TypeString},
		{Name: "age", Type: plan.TypeInt32},
	}, 1)
	if err := users.Select("id", "age").Write(target); err != nil {
		t.Fatal(err)
	}
	if target.Count() != 40 {
		t.Errorf("written rows = %d", target.Count())
	}
	if err := users.Write(target); err == nil {
		t.Error("width mismatch write must fail")
	}
}

func TestExplain(t *testing.T) {
	s := newTestSession(t)
	df, err := s.SQL("SELECT id FROM users WHERE age > 30")
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.Explain()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Optimized Logical Plan", "Physical Plan", "ScanExec", "pushed"} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
