package engine

import (
	"strings"
	"testing"
)

func TestShowRendersTable(t *testing.T) {
	s := joinSession(t)
	df, err := s.SQL("SELECT id, city FROM users ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	out, err := df.Show(3)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// border, header, border, 3 rows, border = 7 lines.
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "id") || !strings.Contains(lines[1], "city") {
		t.Errorf("header = %q", lines[1])
	}
	if !strings.Contains(out, "| u1") {
		t.Errorf("rows missing:\n%s", out)
	}
	// NULL rendering.
	full, err := df.Show(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(full, "NULL") {
		t.Errorf("NULL cell not rendered:\n%s", full)
	}
}
