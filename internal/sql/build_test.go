package sql

import (
	"fmt"
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/plan"
)

type fakeRel struct {
	name   string
	schema plan.Schema
}

func (f *fakeRel) Name() string        { return f.name }
func (f *fakeRel) Schema() plan.Schema { return f.schema }

func testResolver() Resolver {
	tables := map[string]plan.Schema{
		"users": {
			{Name: "id", Type: plan.TypeString},
			{Name: "age", Type: plan.TypeInt32},
			{Name: "city", Type: plan.TypeString},
		},
		"orders": {
			{Name: "oid", Type: plan.TypeString},
			{Name: "uid", Type: plan.TypeString},
			{Name: "amount", Type: plan.TypeFloat64},
		},
	}
	return func(table string) (plan.LogicalPlan, error) {
		s, ok := tables[table]
		if !ok {
			return nil, fmt.Errorf("no table %q", table)
		}
		return &plan.ScanNode{Relation: &fakeRel{name: table, schema: s}}, nil
	}
}

func mustBuild(t *testing.T, q string) plan.LogicalPlan {
	t.Helper()
	lp, err := Build(q, testResolver())
	if err != nil {
		t.Fatalf("Build(%q): %v", q, err)
	}
	return lp
}

func TestBuildSimpleSelect(t *testing.T) {
	lp := mustBuild(t, "SELECT id, age FROM users WHERE age > 21")
	out := plan.Format(lp)
	for _, want := range []string{"Project", "Filter", "Scan users"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
	schema := lp.Schema()
	if len(schema) != 2 || schema[0].Name != "id" {
		t.Errorf("schema = %s", schema)
	}
}

func TestBuildStarKeepsChild(t *testing.T) {
	lp := mustBuild(t, "SELECT * FROM users")
	if len(lp.Schema()) != 3 {
		t.Errorf("star schema = %s", lp.Schema())
	}
	// Star mixed with expressions expands.
	lp = mustBuild(t, "SELECT *, age + 1 AS next FROM users")
	if len(lp.Schema()) != 4 || lp.Schema()[3].Name != "next" {
		t.Errorf("mixed star schema = %s", lp.Schema())
	}
}

func TestBuildJoinExtractsKeysAndResidual(t *testing.T) {
	lp := mustBuild(t, `SELECT u.id FROM users u JOIN orders o ON u.id = o.uid AND o.amount > 5`)
	out := plan.Format(lp)
	if !strings.Contains(out, "Join[Inner] u.id = o.uid") {
		t.Errorf("join keys missing:\n%s", out)
	}
	if !strings.Contains(out, "Filter") {
		t.Errorf("residual predicate missing:\n%s", out)
	}
	// Reversed key order still resolves.
	lp = mustBuild(t, `SELECT u.id FROM users u JOIN orders o ON o.uid = u.id`)
	if !strings.Contains(plan.Format(lp), "u.id = o.uid") {
		t.Errorf("reversed keys: %s", plan.Format(lp))
	}
}

func TestBuildAggregateRewrites(t *testing.T) {
	lp := mustBuild(t, `
		SELECT city, count(*) AS n, sum(age) / count(*) AS mean_age
		FROM users GROUP BY city HAVING count(*) > 2 ORDER BY n DESC LIMIT 3`)
	out := plan.Format(lp)
	for _, want := range []string{"Aggregate", "group=[city]", "count(*)", "sum(age)", "Filter", "Sort", "Limit 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan missing %q:\n%s", want, out)
		}
	}
	schema := lp.Schema()
	if schema[1].Name != "n" || schema[2].Name != "mean_age" {
		t.Errorf("schema = %s", schema)
	}
}

func TestBuildGroupByExpression(t *testing.T) {
	lp := mustBuild(t, "SELECT age / 10, count(*) FROM users GROUP BY age / 10")
	if !strings.Contains(plan.Format(lp), "__grp0") {
		t.Errorf("synthetic group name missing:\n%s", plan.Format(lp))
	}
}

func TestBuildDerivedTable(t *testing.T) {
	lp := mustBuild(t, `SELECT s.n FROM (SELECT city, count(*) AS n FROM users GROUP BY city) s WHERE s.n > 1`)
	out := plan.Format(lp)
	if !strings.Contains(out, "Aggregate") || !strings.Contains(out, "s.n") {
		t.Errorf("derived plan:\n%s", out)
	}
}

func TestBuildDistinct(t *testing.T) {
	lp := mustBuild(t, "SELECT DISTINCT city FROM users ORDER BY city")
	out := plan.Format(lp)
	if !strings.Contains(out, "Aggregate group=[city]") {
		t.Errorf("distinct must become a group-by:\n%s", out)
	}
	if strings.Index(out, "Sort") > strings.Index(out, "Aggregate") {
		t.Errorf("sort must sit above the dedup:\n%s", out)
	}
}

func TestBuildLeftJoinType(t *testing.T) {
	lp := mustBuild(t, "SELECT u.id FROM users u LEFT JOIN orders o ON u.id = o.uid")
	if !strings.Contains(plan.Format(lp), "Join[LeftOuter]") {
		t.Errorf("join type lost:\n%s", plan.Format(lp))
	}
}

func TestBuildErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT id FROM missing",
		"SELECT id FROM users u JOIN orders o ON u.age > o.amount", // no equality
		"SELECT sum(age) FROM users WHERE sum(age) > 1",            // agg in WHERE
		"SELECT count(age, id) FROM users",                         // arity
		"SELECT sum(*) FROM users",                                 // * with non-count
		"SELECT sum(DISTINCT age) FROM users",                      // distinct non-count
		"SELECT sum(sum(age)) FROM users",                          // nested agg
		"SELECT * FROM users GROUP BY city",                        // star + group
		"SELECT DISTINCT count(*) FROM users",                      // distinct + agg
		"SELECT u.id FROM users u LEFT JOIN orders o ON u.id = o.uid AND o.amount > 1",
	} {
		if _, err := Build(q, testResolver()); err == nil {
			t.Errorf("Build(%q) should fail", q)
		}
	}
}

func TestBuildCountVariants(t *testing.T) {
	// COUNT(1) and COUNT(*) both count rows; COUNT(col) counts non-NULLs.
	lp := mustBuild(t, "SELECT count(1), count(*), count(city) FROM users")
	out := plan.Format(lp)
	if !strings.Contains(out, "count(*) AS __agg0, count(*) AS __agg1") {
		t.Errorf("count(1) should normalize to count(*):\n%s", out)
	}
	if !strings.Contains(out, "count(city)") {
		t.Errorf("count(col) must keep its argument:\n%s", out)
	}
}

func TestBuildOrderByAlias(t *testing.T) {
	lp := mustBuild(t, "SELECT age AS years FROM users ORDER BY years")
	if _, ok := lp.(*plan.SortNode); !ok {
		t.Errorf("expected sort on top, got %T", lp)
	}
}
