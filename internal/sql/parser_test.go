package sql

import (
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/plan"
)

func mustParse(t *testing.T, q string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(q)
	if err != nil {
		t.Fatalf("Parse(%q): %v", q, err)
	}
	return stmt
}

func TestParseBasicSelect(t *testing.T) {
	stmt := mustParse(t, "SELECT a, b AS bee FROM t WHERE a > 1 LIMIT 10")
	if len(stmt.Items) != 2 || stmt.Items[1].Alias != "bee" {
		t.Errorf("items = %+v", stmt.Items)
	}
	if stmt.From.Name != "t" || stmt.Limit != 10 || stmt.Where == nil {
		t.Errorf("stmt = %+v", stmt)
	}
}

func TestParseStar(t *testing.T) {
	stmt := mustParse(t, "select * from t")
	if !stmt.Items[0].Star {
		t.Error("star not parsed")
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM a JOIN b ON a.x = b.y INNER JOIN c ON b.z = c.w")
	if len(stmt.Joins) != 2 {
		t.Fatalf("joins = %d", len(stmt.Joins))
	}
	if stmt.Joins[0].Table.Name != "b" || stmt.Joins[1].Table.Name != "c" {
		t.Errorf("join tables = %+v", stmt.Joins)
	}
}

func TestParseTableAliases(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM users AS u")
	if stmt.From.Alias != "u" {
		t.Errorf("alias = %q", stmt.From.Alias)
	}
	stmt = mustParse(t, "SELECT * FROM users u")
	if stmt.From.Alias != "u" {
		t.Errorf("implicit alias = %q", stmt.From.Alias)
	}
}

func TestParseGroupHavingOrder(t *testing.T) {
	stmt := mustParse(t, `
		SELECT city, count(*) FROM t
		GROUP BY city HAVING count(*) > 3
		ORDER BY city DESC, count(*) ASC`)
	if len(stmt.GroupBy) != 1 || stmt.Having == nil {
		t.Errorf("group/having = %+v", stmt)
	}
	if len(stmt.OrderBy) != 2 || !stmt.OrderBy[0].Desc || stmt.OrderBy[1].Desc {
		t.Errorf("order = %+v", stmt.OrderBy)
	}
}

func TestParseSubquery(t *testing.T) {
	stmt := mustParse(t, "SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 0")
	if stmt.From.Sub == nil || stmt.From.Alias != "sub" {
		t.Errorf("subquery = %+v", stmt.From)
	}
}

func TestParsePredicates(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN ('x','y') AND c NOT IN (1) AND d LIKE 'p%' AND e IS NOT NULL AND NOT f = 1`)
	s := stmt.Where.String()
	for _, want := range []string{"IN", "NOT IN", "LIKE", "IS NOT NULL", ">= 1", "<= 5", "NOT"} {
		if !strings.Contains(s, want) {
			t.Errorf("predicate missing %q in %s", want, s)
		}
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a + b * 2 > 10 OR c = 1 AND d = 2")
	// AND binds tighter than OR; * tighter than +.
	s := stmt.Where.String()
	if !strings.Contains(s, "((a + (b * 2)) > 10) OR ((c = 1) AND (d = 2))") {
		t.Errorf("precedence: %s", s)
	}
}

func TestParseNegativeNumbersAndStrings(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a = -5 AND b = -1.5 AND c = 'it''s'")
	s := stmt.Where.String()
	if !strings.Contains(s, "-5") || !strings.Contains(s, "-1.5") || !strings.Contains(s, `it's`) {
		t.Errorf("literals: %s", s)
	}
}

func TestParseCase(t *testing.T) {
	stmt := mustParse(t, "SELECT CASE WHEN a > 1 THEN 'hi' ELSE 'lo' END AS x FROM t")
	if _, ok := stmt.Items[0].Expr.(*plan.CaseWhen); !ok {
		t.Errorf("case = %T", stmt.Items[0].Expr)
	}
}

func TestParseFunctions(t *testing.T) {
	stmt := mustParse(t, "SELECT count(*), count(DISTINCT a), sum(b), stddev_samp(c / 2) FROM t")
	f := stmt.Items[1].Expr.(*FuncCall)
	if !f.Distinct || f.Name != "count" {
		t.Errorf("distinct = %+v", f)
	}
	if stmt.Items[0].Expr.(*FuncCall).Star != true {
		t.Error("count(*) star lost")
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	stmt := mustParse(t, "SELECT `user-id`, t.`stay-time` FROM t WHERE `user-id` > 5")
	if stmt.Items[0].Expr.(*plan.ColumnRef).Name != "user-id" {
		t.Errorf("quoted ident = %s", stmt.Items[0].Expr)
	}
	if stmt.Items[1].Expr.(*plan.ColumnRef).Name != "t.stay-time" {
		t.Errorf("qualified quoted ident = %s", stmt.Items[1].Expr)
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, "SELECT a -- trailing comment\nFROM t")
}

func TestParseErrors(t *testing.T) {
	for _, q := range []string{
		"",
		"SELECT",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t LIMIT x",
		"SELECT a FROM t GROUP city",
		"SELECT a FROM (SELECT b FROM t)",
		"SELECT a FROM t JOIN u",
		"SELECT a FROM t WHERE a LIKE 5",
		"SELECT a FROM t WHERE a = 'unterminated",
		"SELECT a FROM t WHERE `unterminated",
		"SELECT a FROM t extra garbage here",
		"SELECT CASE END FROM t",
		"SELECT a FROM t WHERE a ! b",
		"SELECT a FROM t WHERE a = #",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) should fail", q)
		}
	}
}

func TestParseIsNull(t *testing.T) {
	stmt := mustParse(t, "SELECT * FROM t WHERE a IS NULL")
	if n, ok := stmt.Where.(*plan.IsNull); !ok || n.Negate {
		t.Errorf("is null = %s", stmt.Where)
	}
}

func TestFuncCallExprInterface(t *testing.T) {
	f := &FuncCall{Name: "sum", Args: []plan.Expr{plan.Col("x")}}
	if _, err := f.Eval(nil); err == nil {
		t.Error("FuncCall.Eval must fail (unrewritten)")
	}
	if f.Type() != plan.TypeUnknown {
		t.Error("FuncCall type must be unknown")
	}
	clone := f.WithChildren([]plan.Expr{plan.Col("y")}).(*FuncCall)
	if clone.Args[0].(*plan.ColumnRef).Name != "y" {
		t.Error("WithChildren did not replace args")
	}
}
