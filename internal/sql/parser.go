package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/shc-go/shc/internal/plan"
)

// SelectStmt is the parsed form of a SELECT query, possibly the head of a
// UNION chain.
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     TableRef
	Joins    []JoinClause
	Where    plan.Expr
	GroupBy  []plan.Expr
	Having   plan.Expr
	OrderBy  []OrderItem
	Limit    int // -1 when absent

	// Unions chains further SELECTs combined with UNION [ALL]. A trailing
	// ORDER BY / LIMIT applies to the whole union and is lifted here.
	Unions       []UnionPart
	UnionOrderBy []OrderItem
	UnionLimit   int // -1 when absent
}

// UnionPart is one UNION [ALL] member after the first.
type UnionPart struct {
	All  bool
	Stmt *SelectStmt
}

// SelectItem is one projection: an expression with an optional alias, or *.
type SelectItem struct {
	Star  bool
	Expr  plan.Expr
	Alias string
}

// TableRef names a base table or a parenthesized subquery with an alias.
type TableRef struct {
	Name  string
	Alias string
	Sub   *SelectStmt
}

// JoinClause is one JOIN with its ON condition.
type JoinClause struct {
	Table TableRef
	On    plan.Expr
	Type  plan.JoinType
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr plan.Expr
	Desc bool
}

// FuncCall is an aggregate or scalar function call in the AST. It is a
// plan.Expr so expression trees can hold it, but it never evaluates
// directly — the builder replaces aggregate calls with references to
// aggregate outputs.
type FuncCall struct {
	Name     string
	Star     bool
	Distinct bool
	Args     []plan.Expr
}

// Eval implements plan.Expr; FuncCall must be rewritten before execution.
func (f *FuncCall) Eval(plan.Row) (any, error) {
	return nil, fmt.Errorf("sql: function %s not rewritten before evaluation", f.Name)
}

// Type implements plan.Expr.
func (f *FuncCall) Type() plan.DataType { return plan.TypeUnknown }

// String implements plan.Expr.
func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(args, ", ") + ")"
}

// Children implements plan.Expr.
func (f *FuncCall) Children() []plan.Expr { return f.Args }

// WithChildren implements plan.Expr.
func (f *FuncCall) WithChildren(ch []plan.Expr) plan.Expr {
	return &FuncCall{Name: f.Name, Star: f.Star, Distinct: f.Distinct, Args: ch}
}

// Parse parses one SELECT statement.
func Parse(query string) (*SelectStmt, error) {
	toks, err := (&lexer{in: query}).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: unexpected %s after end of query", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool   { return p.peek().kind == tokEOF }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

// keyword consumes the given keyword (case-insensitive) and reports whether
// it was present.
func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return fmt.Errorf("sql: expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return fmt.Errorf("sql: expected %q, got %s", s, p.peek())
	}
	return nil
}

var reservedWords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true, "by": true,
	"having": true, "order": true, "limit": true, "join": true, "inner": true,
	"on": true, "and": true, "or": true, "not": true, "in": true, "like": true,
	"between": true, "is": true, "null": true, "as": true, "case": true,
	"when": true, "then": true, "else": true, "end": true, "asc": true,
	"desc": true, "distinct": true, "true": true, "false": true,
	"left": true, "outer": true, "union": true, "all": true,
}

func (p *parser) ident() (string, bool) {
	t := p.peek()
	if t.kind == tokIdent && !reservedWords[strings.ToLower(t.text)] {
		p.pos++
		return t.text, true
	}
	return "", false
}

// parseQuery parses a SELECT optionally followed by UNION [ALL] members.
// An ORDER BY / LIMIT written after the final member applies to the whole
// union (standard SQL) and is lifted to the union level.
func (p *parser) parseQuery() (*SelectStmt, error) {
	stmt, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	for p.keyword("union") {
		all := p.keyword("all")
		next, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		stmt.Unions = append(stmt.Unions, UnionPart{All: all, Stmt: next})
	}
	stmt.UnionLimit = -1
	if len(stmt.Unions) > 0 {
		last := stmt.Unions[len(stmt.Unions)-1].Stmt
		stmt.UnionOrderBy, last.OrderBy = last.OrderBy, nil
		stmt.UnionLimit, last.Limit = last.Limit, -1
	}
	return stmt, nil
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	stmt := &SelectStmt{Limit: -1, UnionLimit: -1}
	if p.keyword("distinct") {
		stmt.Distinct = true
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		stmt.Items = append(stmt.Items, item)
		if !p.punct(",") {
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	from, err := p.parseTableRef()
	if err != nil {
		return nil, err
	}
	stmt.From = from
	for {
		jt := plan.InnerJoin
		switch {
		case p.keyword("inner"):
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
		case p.keyword("left"):
			p.keyword("outer")
			if err := p.expectKeyword("join"); err != nil {
				return nil, err
			}
			jt = plan.LeftOuterJoin
		case p.keyword("join"):
		default:
			goto joinsDone
		}
		{
			tr, err := p.parseTableRef()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("on"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.Joins = append(stmt.Joins, JoinClause{Table: tr, On: on, Type: jt})
		}
	}
joinsDone:
	if p.keyword("where") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Where = w
	}
	if p.keyword("group") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			stmt.GroupBy = append(stmt.GroupBy, e)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.keyword("having") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		stmt.Having = h
	}
	if p.keyword("order") {
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.keyword("desc") {
				item.Desc = true
			} else {
				p.keyword("asc")
			}
			stmt.OrderBy = append(stmt.OrderBy, item)
			if !p.punct(",") {
				break
			}
		}
	}
	if p.keyword("limit") {
		t := p.next()
		if t.kind != tokNumber {
			return nil, fmt.Errorf("sql: LIMIT expects a number, got %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: bad LIMIT %q", t.text)
		}
		stmt.Limit = n
	}
	return stmt, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.punct("*") {
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.keyword("as") {
		name, ok := p.ident()
		if !ok {
			return SelectItem{}, fmt.Errorf("sql: expected alias after AS, got %s", p.peek())
		}
		item.Alias = name
	} else if name, ok := p.ident(); ok {
		item.Alias = name
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.punct("(") {
		sub, err := p.parseQuery()
		if err != nil {
			return TableRef{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return TableRef{}, err
		}
		p.keyword("as")
		alias, ok := p.ident()
		if !ok {
			return TableRef{}, fmt.Errorf("sql: derived table needs an alias, got %s", p.peek())
		}
		return TableRef{Alias: alias, Sub: sub}, nil
	}
	name, ok := p.ident()
	if !ok {
		return TableRef{}, fmt.Errorf("sql: expected table name, got %s", p.peek())
	}
	tr := TableRef{Name: name, Alias: name}
	if p.keyword("as") {
		alias, ok := p.ident()
		if !ok {
			return TableRef{}, fmt.Errorf("sql: expected alias after AS, got %s", p.peek())
		}
		tr.Alias = alias
	} else if alias, ok := p.ident(); ok {
		tr.Alias = alias
	}
	return tr, nil
}

// Expression precedence: OR < AND < NOT < predicate < additive <
// multiplicative < unary < primary.
func (p *parser) parseExpr() (plan.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (plan.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.keyword("or") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &plan.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (plan.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.keyword("and") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &plan.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (plan.Expr, error) {
	if p.keyword("not") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &plan.Not{E: e}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (plan.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	// IS [NOT] NULL
	if p.keyword("is") {
		negate := p.keyword("not")
		if err := p.expectKeyword("null"); err != nil {
			return nil, err
		}
		return &plan.IsNull{E: l, Negate: negate}, nil
	}
	negate := false
	if save := p.save(); p.keyword("not") {
		if p.keywordAhead("in") || p.keywordAhead("like") || p.keywordAhead("between") {
			negate = true
		} else {
			p.restore(save)
		}
	}
	switch {
	case p.keyword("in"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var vals []plan.Expr
		for {
			v, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			vals = append(vals, v)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &plan.In{E: l, Values: vals, Negate: negate}, nil
	case p.keyword("like"):
		t := p.next()
		if t.kind != tokString {
			return nil, fmt.Errorf("sql: LIKE expects a string pattern, got %s", t)
		}
		var e plan.Expr = &plan.Like{E: l, Pattern: t.text}
		if negate {
			e = &plan.Not{E: e}
		}
		return e, nil
	case p.keyword("between"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		var e plan.Expr = &plan.And{
			L: &plan.Comparison{Op: plan.OpGe, L: l, R: lo},
			R: &plan.Comparison{Op: plan.OpLe, L: plan.CloneExpr(l), R: hi},
		}
		if negate {
			e = &plan.Not{E: e}
		}
		return e, nil
	}
	for {
		var op plan.CmpOp
		switch {
		case p.punct("="):
			op = plan.OpEq
		case p.punct("!="), p.punct("<>"):
			op = plan.OpNe
		case p.punct("<="):
			op = plan.OpLe
		case p.punct(">="):
			op = plan.OpGe
		case p.punct("<"):
			op = plan.OpLt
		case p.punct(">"):
			op = plan.OpGt
		default:
			return l, nil
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		l = &plan.Comparison{Op: op, L: l, R: r}
	}
}

// keywordAhead peeks whether the next token is the keyword without
// consuming it.
func (p *parser) keywordAhead(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) parseAdditive() (plan.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op plan.ArithOp
		switch {
		case p.punct("+"):
			op = plan.OpAdd
		case p.punct("-"):
			op = plan.OpSub
		default:
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &plan.Arithmetic{Op: op, L: l, R: r}
	}
}

func (p *parser) parseMultiplicative() (plan.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op plan.ArithOp
		switch {
		case p.punct("*"):
			op = plan.OpMul
		case p.punct("/"):
			op = plan.OpDiv
		default:
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &plan.Arithmetic{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (plan.Expr, error) {
	if p.punct("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*plan.Literal); ok {
			switch v := lit.Val.(type) {
			case int64:
				return plan.Lit(-v), nil
			case float64:
				return plan.Lit(-v), nil
			}
		}
		return &plan.Arithmetic{Op: plan.OpSub, L: plan.Lit(int64(0)), R: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (plan.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sql: bad number %q", t.text)
			}
			return plan.Lit(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sql: bad number %q", t.text)
		}
		return plan.Lit(n), nil
	case tokString:
		p.next()
		return plan.Lit(t.text), nil
	case tokPunct:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		lower := strings.ToLower(t.text)
		switch lower {
		case "true":
			p.next()
			return plan.Lit(true), nil
		case "false":
			p.next()
			return plan.Lit(false), nil
		case "null":
			p.next()
			return &plan.Literal{Val: nil, Typ: plan.TypeUnknown}, nil
		case "case":
			return p.parseCase()
		}
		name, _ := p.ident()
		// Function call?
		if p.punct("(") {
			return p.parseFuncCall(name)
		}
		// Qualified column?
		if p.punct(".") {
			col, ok := p.ident()
			if !ok {
				return nil, fmt.Errorf("sql: expected column after %q., got %s", name, p.peek())
			}
			return plan.Col(name + "." + col), nil
		}
		return plan.Col(name), nil
	}
	return nil, fmt.Errorf("sql: unexpected %s in expression", t)
}

func (p *parser) parseCase() (plan.Expr, error) {
	if err := p.expectKeyword("case"); err != nil {
		return nil, err
	}
	c := &plan.CaseWhen{}
	for p.keyword("when") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("then"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, plan.WhenClause{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE needs at least one WHEN, got %s", p.peek())
	}
	if p.keyword("else") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("end"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseFuncCall(name string) (plan.Expr, error) {
	f := &FuncCall{Name: strings.ToLower(name)}
	if p.punct("*") {
		f.Star = true
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	if p.keyword("distinct") {
		f.Distinct = true
	}
	if !p.punct(")") {
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if !p.punct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	return f, nil
}
