package sql

import (
	"fmt"
	"strings"

	"github.com/shc-go/shc/internal/plan"
)

// Resolver maps a table name to the logical plan producing it: a ScanNode
// for base tables, or an arbitrary plan for registered temporary views
// (createOrReplaceTempView in the paper's Code 4).
type Resolver func(table string) (plan.LogicalPlan, error)

// Build parses and lowers a query to an unoptimized logical plan.
func Build(query string, resolve Resolver) (plan.LogicalPlan, error) {
	stmt, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return buildSelect(stmt, resolve)
}

func buildSelect(stmt *SelectStmt, resolve Resolver) (plan.LogicalPlan, error) {
	if len(stmt.Unions) > 0 {
		return buildUnion(stmt, resolve)
	}
	current, err := buildTableRef(stmt.From, resolve)
	if err != nil {
		return nil, err
	}
	for _, j := range stmt.Joins {
		right, err := buildTableRef(j.Table, resolve)
		if err != nil {
			return nil, err
		}
		current, err = buildJoin(current, right, j.On, j.Type)
		if err != nil {
			return nil, err
		}
	}
	if stmt.Where != nil {
		if err := rejectAggregates(stmt.Where, "WHERE"); err != nil {
			return nil, err
		}
		current = &plan.FilterNode{Cond: stmt.Where, Child: current}
	}

	// Aggregation handling: any aggregate call or GROUP BY clause routes
	// the plan through an AggregateNode, with aggregate calls rewritten to
	// references of its outputs.
	aggs := collectAggregates(stmt)
	if len(stmt.GroupBy) > 0 || len(aggs) > 0 {
		if stmt.Distinct {
			return nil, fmt.Errorf("sql: SELECT DISTINCT cannot be combined with aggregates or GROUP BY")
		}
		return buildAggregate(stmt, current, aggs)
	}

	proj, err := buildProjection(stmt.Items, current)
	if err != nil {
		return nil, err
	}
	out := proj
	if stmt.Distinct {
		// SELECT DISTINCT = group by every output column, no aggregates.
		groups := make([]plan.NamedExpr, len(proj.Schema()))
		for i, f := range proj.Schema() {
			groups[i] = plan.NamedExpr{Expr: plan.Col(f.Name), Name: f.Name}
		}
		out = &plan.AggregateNode{GroupBy: groups, Child: out}
		// Sorting must happen above the dedup (it reorders rows).
		if len(stmt.OrderBy) > 0 {
			orders := make([]plan.SortOrder, len(stmt.OrderBy))
			for i, o := range stmt.OrderBy {
				orders[i] = plan.SortOrder{Expr: o.Expr, Desc: o.Desc}
			}
			out = &plan.SortNode{Orders: orders, Child: out}
		}
	} else if len(stmt.OrderBy) > 0 {
		out = placeSort(stmt.OrderBy, proj, current)
	}
	if stmt.Limit >= 0 {
		out = &plan.LimitNode{N: stmt.Limit, Child: out}
	}
	return out, nil
}

// buildUnion combines the head SELECT with its UNION members: widths must
// agree, columns are matched positionally (renamed to the head's names),
// any non-ALL member deduplicates the whole result, and lifted ORDER BY /
// LIMIT apply last.
func buildUnion(stmt *SelectStmt, resolve Resolver) (plan.LogicalPlan, error) {
	head := *stmt
	head.Unions, head.UnionOrderBy, head.UnionLimit = nil, nil, -1
	base, err := buildSelect(&head, resolve)
	if err != nil {
		return nil, err
	}
	baseSchema := base.Schema()
	inputs := []plan.LogicalPlan{base}
	allAll := true
	for i, u := range stmt.Unions {
		child, err := buildSelect(u.Stmt, resolve)
		if err != nil {
			return nil, err
		}
		if len(child.Schema()) != len(baseSchema) {
			return nil, fmt.Errorf("sql: union member %d has %d columns, want %d",
				i+1, len(child.Schema()), len(baseSchema))
		}
		inputs = append(inputs, renameTo(child, baseSchema))
		if !u.All {
			allAll = false
		}
	}
	var out plan.LogicalPlan = &plan.UnionNode{Inputs: inputs}
	if !allAll {
		groups := make([]plan.NamedExpr, len(baseSchema))
		for i, f := range baseSchema {
			groups[i] = plan.NamedExpr{Expr: plan.Col(f.Name), Name: f.Name}
		}
		out = &plan.AggregateNode{GroupBy: groups, Child: out}
	}
	if len(stmt.UnionOrderBy) > 0 {
		orders := make([]plan.SortOrder, len(stmt.UnionOrderBy))
		for i, o := range stmt.UnionOrderBy {
			orders[i] = plan.SortOrder{Expr: o.Expr, Desc: o.Desc}
		}
		out = &plan.SortNode{Orders: orders, Child: out}
	}
	if stmt.UnionLimit >= 0 {
		out = &plan.LimitNode{N: stmt.UnionLimit, Child: out}
	}
	return out, nil
}

// renameTo projects child onto target's column names, positionally.
func renameTo(child plan.LogicalPlan, target plan.Schema) plan.LogicalPlan {
	cs := child.Schema()
	same := true
	exprs := make([]plan.NamedExpr, len(cs))
	for i := range cs {
		exprs[i] = plan.NamedExpr{Expr: plan.Col(cs[i].Name), Name: target[i].Name}
		if cs[i].Name != target[i].Name {
			same = false
		}
	}
	if same {
		return child
	}
	return &plan.ProjectNode{Exprs: exprs, Child: child}
}

func buildTableRef(tr TableRef, resolve Resolver) (plan.LogicalPlan, error) {
	if tr.Sub != nil {
		child, err := buildSelect(tr.Sub, resolve)
		if err != nil {
			return nil, err
		}
		return aliasPlan(child, tr.Alias), nil
	}
	base, err := resolve(tr.Name)
	if err != nil {
		return nil, err
	}
	if scan, ok := base.(*plan.ScanNode); ok && scan.Alias == "" {
		// Qualify scan output so both col and alias.col references work.
		return &plan.ScanNode{Relation: scan.Relation, Alias: tr.Alias}, nil
	}
	return aliasPlan(base, tr.Alias), nil
}

// aliasPlan renames a derived table's output columns to alias.col.
func aliasPlan(child plan.LogicalPlan, alias string) plan.LogicalPlan {
	schema := child.Schema()
	exprs := make([]plan.NamedExpr, len(schema))
	for i, f := range schema {
		name := f.Name
		if idx := strings.LastIndex(name, "."); idx >= 0 {
			name = name[idx+1:]
		}
		exprs[i] = plan.NamedExpr{Expr: plan.Col(f.Name), Name: alias + "." + name}
	}
	return &plan.ProjectNode{Exprs: exprs, Child: child}
}

// buildJoin splits the ON condition into equi-join keys and residual
// predicates.
func buildJoin(left, right plan.LogicalPlan, on plan.Expr, jt plan.JoinType) (plan.LogicalPlan, error) {
	ls, rs := left.Schema(), right.Schema()
	var leftKeys, rightKeys []plan.Expr
	var residual []plan.Expr
	for _, c := range plan.SplitConjuncts(on) {
		cmp, ok := c.(*plan.Comparison)
		if ok && cmp.Op == plan.OpEq {
			lc, lok := cmp.L.(*plan.ColumnRef)
			rc, rok := cmp.R.(*plan.ColumnRef)
			if lok && rok {
				switch {
				case ls.IndexOf(lc.Name) >= 0 && rs.IndexOf(rc.Name) >= 0:
					leftKeys = append(leftKeys, lc)
					rightKeys = append(rightKeys, rc)
					continue
				case rs.IndexOf(lc.Name) >= 0 && ls.IndexOf(rc.Name) >= 0:
					leftKeys = append(leftKeys, rc)
					rightKeys = append(rightKeys, lc)
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	if len(leftKeys) == 0 {
		return nil, fmt.Errorf("sql: join needs at least one equality between the two tables, got %s", on)
	}
	if jt == plan.LeftOuterJoin && len(residual) > 0 {
		// A residual ON predicate of an outer join is part of the match
		// condition, not a post-filter; supporting it needs a different
		// physical join. Reject rather than silently change semantics.
		return nil, fmt.Errorf("sql: LEFT JOIN supports only equality conditions in ON, got %s", residual[0])
	}
	var out plan.LogicalPlan = &plan.JoinNode{Left: left, Right: right, LeftKeys: leftKeys, RightKeys: rightKeys, Type: jt}
	if rem := plan.CombineConjuncts(residual); rem != nil {
		out = &plan.FilterNode{Cond: rem, Child: out}
	}
	return out, nil
}

var aggFuncs = map[string]plan.AggKind{
	"count":       plan.AggCount,
	"sum":         plan.AggSum,
	"min":         plan.AggMin,
	"max":         plan.AggMax,
	"avg":         plan.AggAvg,
	"mean":        plan.AggAvg,
	"stddev_samp": plan.AggStddevSamp,
	"stdev":       plan.AggStddevSamp,
	"stddev":      plan.AggStddevSamp,
}

// collectAggregates gathers every aggregate call in the statement's output
// clauses, deduplicated by rendering.
func collectAggregates(stmt *SelectStmt) []*FuncCall {
	var out []*FuncCall
	seen := make(map[string]bool)
	add := func(e plan.Expr) {
		walkExpr(e, func(x plan.Expr) {
			if f, ok := x.(*FuncCall); ok {
				if _, isAgg := aggFuncs[f.Name]; isAgg && !seen[f.String()] {
					seen[f.String()] = true
					out = append(out, f)
				}
			}
		})
	}
	for _, item := range stmt.Items {
		if item.Expr != nil {
			add(item.Expr)
		}
	}
	if stmt.Having != nil {
		add(stmt.Having)
	}
	for _, o := range stmt.OrderBy {
		add(o.Expr)
	}
	return out
}

func walkExpr(e plan.Expr, fn func(plan.Expr)) {
	fn(e)
	for _, c := range e.Children() {
		walkExpr(c, fn)
	}
}

func rejectAggregates(e plan.Expr, clause string) error {
	var err error
	walkExpr(e, func(x plan.Expr) {
		if f, ok := x.(*FuncCall); ok {
			if _, isAgg := aggFuncs[f.Name]; isAgg && err == nil {
				err = fmt.Errorf("sql: aggregate %s not allowed in %s", f, clause)
			}
		}
	})
	return err
}

func buildAggregate(stmt *SelectStmt, child plan.LogicalPlan, aggCalls []*FuncCall) (plan.LogicalPlan, error) {
	// Group outputs: a bare column keeps its name; other expressions get a
	// synthetic name and are referenced by rendering.
	groups := make([]plan.NamedExpr, len(stmt.GroupBy))
	groupName := make(map[string]string) // expr rendering -> output name
	for i, g := range stmt.GroupBy {
		name := fmt.Sprintf("__grp%d", i)
		if c, ok := g.(*plan.ColumnRef); ok {
			name = c.Name
		}
		groups[i] = plan.NamedExpr{Expr: g, Name: name}
		groupName[g.String()] = name
	}
	// Aggregate outputs.
	aggs := make([]plan.AggExpr, len(aggCalls))
	aggName := make(map[string]string)
	for i, f := range aggCalls {
		kind := aggFuncs[f.Name]
		name := fmt.Sprintf("__agg%d", i)
		ae := plan.AggExpr{Kind: kind, Name: name}
		switch {
		case f.Star:
			if kind != plan.AggCount {
				return nil, fmt.Errorf("sql: %s(*) is not valid", f.Name)
			}
		case len(f.Args) == 1:
			if err := rejectAggregates(f.Args[0], "an aggregate argument"); err != nil {
				return nil, err
			}
			// COUNT(1) counts rows like COUNT(*).
			if kind == plan.AggCount && !f.Distinct {
				if lit, ok := f.Args[0].(*plan.Literal); ok && lit.Val != nil {
					ae.Arg = nil
					break
				}
			}
			ae.Arg = f.Args[0]
			if f.Distinct {
				if kind != plan.AggCount {
					return nil, fmt.Errorf("sql: DISTINCT is only supported with count, got %s", f)
				}
				ae.Kind = plan.AggCountDistinct
			}
		default:
			return nil, fmt.Errorf("sql: %s takes exactly one argument", f.Name)
		}
		aggs[i] = ae
		aggName[f.String()] = name
	}
	agg := &plan.AggregateNode{GroupBy: groups, Aggs: aggs, Child: child}

	rewrite := func(e plan.Expr) plan.Expr {
		return rewriteAggRefs(e, groupName, aggName)
	}
	var out plan.LogicalPlan = agg
	if stmt.Having != nil {
		out = &plan.FilterNode{Cond: rewrite(stmt.Having), Child: out}
	}
	// Projection over the aggregate output.
	var exprs []plan.NamedExpr
	for _, item := range stmt.Items {
		if item.Star {
			return nil, fmt.Errorf("sql: SELECT * cannot be combined with GROUP BY or aggregates")
		}
		e := rewrite(item.Expr)
		name := item.Alias
		if name == "" {
			name = defaultName(item.Expr)
		}
		exprs = append(exprs, plan.NamedExpr{Expr: e, Name: name})
	}
	proj := &plan.ProjectNode{Exprs: exprs, Child: out}
	var final plan.LogicalPlan = proj
	if len(stmt.OrderBy) > 0 {
		orders := make([]plan.SortOrder, len(stmt.OrderBy))
		for i, o := range stmt.OrderBy {
			orders[i] = plan.SortOrder{Expr: substituteAliases(rewrite(o.Expr), exprs), Desc: o.Desc}
		}
		final = &plan.SortNode{Orders: orders, Child: final}
	}
	if stmt.Limit >= 0 {
		final = &plan.LimitNode{N: stmt.Limit, Child: final}
	}
	return final, nil
}

// rewriteAggRefs replaces aggregate calls and whole group expressions with
// references to the aggregate node's outputs.
func rewriteAggRefs(e plan.Expr, groupName, aggName map[string]string) plan.Expr {
	if name, ok := aggName[e.String()]; ok {
		return plan.Col(name)
	}
	if name, ok := groupName[e.String()]; ok {
		return plan.Col(name)
	}
	children := e.Children()
	if len(children) == 0 {
		return plan.CloneExpr(e)
	}
	mapped := make([]plan.Expr, len(children))
	for i, c := range children {
		mapped[i] = rewriteAggRefs(c, groupName, aggName)
	}
	return e.WithChildren(mapped)
}

// substituteAliases maps a column reference naming a projection alias onto
// that projection's expression, so ORDER BY n works for SELECT ... AS n.
func substituteAliases(e plan.Expr, exprs []plan.NamedExpr) plan.Expr {
	if c, ok := e.(*plan.ColumnRef); ok {
		for _, ne := range exprs {
			if ne.Name == c.Name {
				return plan.Col(ne.Name)
			}
		}
	}
	return e
}

func buildProjection(items []SelectItem, child plan.LogicalPlan) (plan.LogicalPlan, error) {
	// SELECT * alone keeps the child as-is.
	if len(items) == 1 && items[0].Star {
		return child, nil
	}
	var exprs []plan.NamedExpr
	for _, item := range items {
		if item.Star {
			for _, f := range child.Schema() {
				exprs = append(exprs, plan.NamedExpr{Expr: plan.Col(f.Name), Name: f.Name})
			}
			continue
		}
		name := item.Alias
		if name == "" {
			name = defaultName(item.Expr)
		}
		exprs = append(exprs, plan.NamedExpr{Expr: item.Expr, Name: name})
	}
	return &plan.ProjectNode{Exprs: exprs, Child: child}, nil
}

func defaultName(e plan.Expr) string {
	if c, ok := e.(*plan.ColumnRef); ok {
		return c.Name
	}
	return e.String()
}

// placeSort puts the sort above the projection when its keys are in the
// projected output, below it when they only exist pre-projection.
func placeSort(orders []OrderItem, proj plan.LogicalPlan, preProj plan.LogicalPlan) plan.LogicalPlan {
	sorted := make([]plan.SortOrder, len(orders))
	outSchema := proj.Schema()
	allInOutput := true
	for i, o := range orders {
		sorted[i] = plan.SortOrder{Expr: o.Expr, Desc: o.Desc}
		for _, col := range plan.Columns(o.Expr) {
			if outSchema.IndexOf(col) < 0 {
				allInOutput = false
			}
		}
	}
	if allInOutput {
		return &plan.SortNode{Orders: sorted, Child: proj}
	}
	// Sort below the projection (classic SELECT a FROM t ORDER BY b).
	if p, ok := proj.(*plan.ProjectNode); ok {
		p.Child = &plan.SortNode{Orders: sorted, Child: preProj}
		return p
	}
	return &plan.SortNode{Orders: sorted, Child: proj}
}
