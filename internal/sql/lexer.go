// Package sql parses the SQL dialect the workloads use — SELECT queries
// with joins, derived tables, WHERE/GROUP BY/HAVING/ORDER BY/LIMIT,
// aggregates (count/sum/min/max/avg/stddev_samp, DISTINCT), CASE WHEN,
// BETWEEN/IN/LIKE — and lowers the AST onto the logical plan layer. It is
// the front end Code 4 of the paper exercises
// (sqlContext.sql("select count(1) from avrotable")).
package sql

import (
	"fmt"
	"strings"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokPunct // ( ) , . * = < > <= >= != <> + - /
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	in  string
	pos int
}

func (l *lexer) error(pos int, format string, args ...any) error {
	return fmt.Errorf("sql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) lex() ([]token, error) {
	var out []token
	for {
		l.skipSpace()
		if l.pos >= len(l.in) {
			out = append(out, token{kind: tokEOF, pos: l.pos})
			return out, nil
		}
		start := l.pos
		c := l.in[l.pos]
		switch {
		case isIdentStart(c):
			for l.pos < len(l.in) && isIdentPart(l.in[l.pos]) {
				l.pos++
			}
			out = append(out, token{kind: tokIdent, text: l.in[start:l.pos], pos: start})
		case c >= '0' && c <= '9':
			seenDot := false
			for l.pos < len(l.in) {
				ch := l.in[l.pos]
				if ch == '.' && !seenDot {
					seenDot = true
					l.pos++
					continue
				}
				if ch < '0' || ch > '9' {
					break
				}
				l.pos++
			}
			out = append(out, token{kind: tokNumber, text: l.in[start:l.pos], pos: start})
		case c == '`':
			// Backquoted identifier, for catalog columns like `user-id`.
			l.pos++
			end := strings.IndexByte(l.in[l.pos:], '`')
			if end < 0 {
				return nil, l.error(start, "unterminated quoted identifier")
			}
			out = append(out, token{kind: tokIdent, text: l.in[l.pos : l.pos+end], pos: start})
			l.pos += end + 1
		case c == '\'':
			l.pos++
			var b strings.Builder
			for {
				if l.pos >= len(l.in) {
					return nil, l.error(start, "unterminated string literal")
				}
				ch := l.in[l.pos]
				if ch == '\'' {
					if l.pos+1 < len(l.in) && l.in[l.pos+1] == '\'' {
						b.WriteByte('\'')
						l.pos += 2
						continue
					}
					l.pos++
					break
				}
				b.WriteByte(ch)
				l.pos++
			}
			out = append(out, token{kind: tokString, text: b.String(), pos: start})
		case strings.ContainsRune("(),.*=+-/", rune(c)):
			l.pos++
			out = append(out, token{kind: tokPunct, text: string(c), pos: start})
		case c == '<':
			l.pos++
			if l.pos < len(l.in) && (l.in[l.pos] == '=' || l.in[l.pos] == '>') {
				l.pos++
			}
			out = append(out, token{kind: tokPunct, text: l.in[start:l.pos], pos: start})
		case c == '>':
			l.pos++
			if l.pos < len(l.in) && l.in[l.pos] == '=' {
				l.pos++
			}
			out = append(out, token{kind: tokPunct, text: l.in[start:l.pos], pos: start})
		case c == '!':
			l.pos++
			if l.pos >= len(l.in) || l.in[l.pos] != '=' {
				return nil, l.error(start, "unexpected '!'")
			}
			l.pos++
			out = append(out, token{kind: tokPunct, text: "!=", pos: start})
		default:
			return nil, l.error(start, "unexpected character %q", string(c))
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '-' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
