package core

import (
	"strings"
	"testing"

	"github.com/shc-go/shc/internal/plan"
)

// activesCatalog is the paper's Code 1 catalog.
const activesCatalog = `{
  "table":{"namespace":"default", "name":"actives", "tableCoder":"PrimitiveType", "Version":"2.0"},
  "rowkey":"key",
  "columns":{
    "col0":{"cf":"rowkey", "col":"key", "type":"string"},
    "user-id":{"cf":"cf1", "col":"col1", "type":"tinyint"},
    "visit-pages":{"cf":"cf2", "col":"col2", "type":"string"},
    "stay-time":{"cf":"cf3", "col":"col3", "type":"double"},
    "time":{"cf":"cf4", "col":"col4", "type":"time"}
  }
}`

const compositeCatalog = `{
  "table":{"name":"logs", "tableCoder":"PrimitiveType"},
  "rowkey":"key1:key2:key3",
  "columns":{
    "region":{"cf":"rowkey", "col":"key1", "type":"string"},
    "host":{"cf":"rowkey", "col":"key2", "type":"string"},
    "ts":{"cf":"rowkey", "col":"key3", "type":"bigint"},
    "msg":{"cf":"cf", "col":"m", "type":"string"}
  }
}`

func TestParseCatalogPaperExample(t *testing.T) {
	c, err := ParseCatalog(activesCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if c.Table.Name != "actives" || c.Table.TableCoder != "PrimitiveType" || c.Table.Version != "2.0" {
		t.Errorf("table = %+v", c.Table)
	}
	schema := c.Schema()
	if len(schema) != 5 {
		t.Fatalf("schema = %s", schema)
	}
	// Rowkey dimension first.
	if schema[0].Name != "col0" || schema[0].Type != plan.TypeString {
		t.Errorf("first field = %+v", schema[0])
	}
	// Data columns sorted by name after the key.
	want := []string{"col0", "stay-time", "time", "user-id", "visit-pages"}
	for i, w := range want {
		if schema[i].Name != w {
			t.Errorf("schema[%d] = %q, want %q", i, schema[i].Name, w)
		}
	}
	if got := c.fieldType("user-id"); got != plan.TypeInt8 {
		t.Errorf("tinyint mapped to %s", got)
	}
	if got := c.fieldType("time"); got != plan.TypeTimestamp {
		t.Errorf("time mapped to %s", got)
	}
	fams := c.Families()
	if len(fams) != 4 || fams[0] != "cf1" {
		t.Errorf("families = %v", fams)
	}
	desc := c.TableDescriptor(3)
	if desc.Name != "actives" || desc.MaxVersions != 3 || len(desc.Families) != 4 {
		t.Errorf("descriptor = %+v", desc)
	}
}

func TestParseCatalogComposite(t *testing.T) {
	c, err := ParseCatalog(compositeCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.RowkeyFields(); len(got) != 3 || got[0] != "region" || got[2] != "ts" {
		t.Errorf("rowkey fields = %v", got)
	}
	if i, ok := c.IsRowkeyField("host"); !ok || i != 1 {
		t.Errorf("IsRowkeyField(host) = %d, %v", i, ok)
	}
	if _, ok := c.IsRowkeyField("msg"); ok {
		t.Error("msg is not a key field")
	}
}

func TestParseCatalogErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":          `{`,
		"no table name":     `{"table":{}, "rowkey":"k", "columns":{"a":{"cf":"rowkey","col":"k","type":"string"}}}`,
		"no rowkey":         `{"table":{"name":"t"}, "columns":{"a":{"cf":"cf","col":"c","type":"string"}}}`,
		"no columns":        `{"table":{"name":"t"}, "rowkey":"k", "columns":{}}`,
		"missing cf":        `{"table":{"name":"t"}, "rowkey":"k", "columns":{"a":{"col":"k","type":"string"}}}`,
		"missing type":      `{"table":{"name":"t"}, "rowkey":"k", "columns":{"a":{"cf":"rowkey","col":"k"}}}`,
		"unknown type":      `{"table":{"name":"t"}, "rowkey":"k", "columns":{"a":{"cf":"rowkey","col":"k","type":"blob"}}}`,
		"key part unmapped": `{"table":{"name":"t"}, "rowkey":"k1:k2", "columns":{"a":{"cf":"rowkey","col":"k1","type":"string"},"b":{"cf":"cf","col":"c","type":"string"}}}`,
		"dup key part":      `{"table":{"name":"t"}, "rowkey":"k", "columns":{"a":{"cf":"rowkey","col":"k","type":"string"},"b":{"cf":"rowkey","col":"k","type":"string"}}}`,
		"binary mid key":    `{"table":{"name":"t"}, "rowkey":"k1:k2", "columns":{"a":{"cf":"rowkey","col":"k1","type":"binary"},"b":{"cf":"rowkey","col":"k2","type":"string"}}}`,
		"bad coder":         `{"table":{"name":"t","tableCoder":"Nope"}, "rowkey":"k", "columns":{"a":{"cf":"rowkey","col":"k","type":"string"}}}`,
	}
	for name, doc := range cases {
		c, err := ParseCatalog(doc)
		if err == nil && name == "bad coder" {
			_, err = c.Coder()
		}
		if err == nil {
			t.Errorf("case %q should fail", name)
		}
	}
}

func TestCatalogAvroColumn(t *testing.T) {
	doc := `{
	  "table":{"name":"avrotable", "tableCoder":"Avro"},
	  "rowkey":"key",
	  "columns":{
	    "col0":{"cf":"rowkey", "col":"key", "type":"string"},
	    "col1":{"cf":"cf1", "col":"col1", "avro":"avroSchema"}
	  }
	}`
	c, err := ParseCatalog(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.fieldType("col1"); got != plan.TypeBinary {
		t.Errorf("avro column surfaces as %s", got)
	}
	coder, err := c.Coder()
	if err != nil || coder.Name() != CoderAvro {
		t.Errorf("coder = %v, %v", coder, err)
	}
}

func TestCatalogColumnLookup(t *testing.T) {
	c, _ := ParseCatalog(activesCatalog)
	spec, err := c.Column("stay-time")
	if err != nil || spec.CF != "cf3" || spec.Col != "col3" {
		t.Errorf("Column = %+v, %v", spec, err)
	}
	if _, err := c.Column("ghost"); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("missing column err = %v", err)
	}
}
