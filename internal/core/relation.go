package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sort"

	"github.com/shc-go/shc/internal/bytesutil"
	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
	"github.com/shc-go/shc/internal/trace"
)

// bridgeConsistency translates the engine-level consistency choice (carried
// in the hbase-free datasource package) into the hbase client's context key,
// so a DataFrame built WithConsistency(Timeline) actually reaches the
// storage layer's replica failover. Strong (the zero value) bridges to
// nothing — the context is returned untouched.
func bridgeConsistency(ctx context.Context) context.Context {
	if datasource.ConsistencyFromContext(ctx) == datasource.ConsistencyTimeline {
		return hbase.WithConsistency(ctx, hbase.ConsistencyTimeline)
	}
	return ctx
}

// Options carries the per-relation settings of HBaseSparkConf (paper Code 5
// and §IV-C) plus the ablation switches the benchmarks sweep.
type Options struct {
	// Timestamp restricts reads to cells with exactly this timestamp.
	Timestamp int64
	// MinTimestamp/MaxTimestamp restrict reads to [Min, Max).
	MinTimestamp int64
	MaxTimestamp int64
	// MaxVersions is how many versions per cell a read may return
	// (default 1).
	MaxVersions int
	// WriteTimestamp stamps written cells (default 1).
	WriteTimestamp int64
	// NewTableRegions pre-splits a created table into this many regions
	// (HBaseTableCatalog.newTable; default 1).
	NewTableRegions int
	// DisablePartitionPruning scans every region regardless of rowkey
	// ranges (ablation).
	DisablePartitionPruning bool
	// DisableOperatorFusion builds one partition per region instead of one
	// per region server (ablation of §VI-A.4).
	DisableOperatorFusion bool
	// DisableFilterPushdown keeps every predicate in the engine (ablation
	// of §VI-A.3).
	DisableFilterPushdown bool
	// FullKeyPruning enables the paper's stated future work (§VIII):
	// extending rowkey pruning beyond the first dimension of a composite
	// key. With equality predicates on a prefix of the key dimensions, the
	// scan narrows to the exact composite prefix (plus an optional range
	// on the next dimension).
	FullKeyPruning bool
}

func (o Options) timeRange() hbase.TimeRange {
	if o.Timestamp != 0 {
		return hbase.TimeRange{Min: o.Timestamp, Max: o.Timestamp + 1}
	}
	return hbase.TimeRange{Min: o.MinTimestamp, Max: o.MaxTimestamp}
}

func (o Options) maxVersions() int {
	if o.MaxVersions <= 0 {
		return 1
	}
	return o.MaxVersions
}

// HBaseRelation is SHC's data-source relation: a catalog-mapped HBase table
// that supports pruned, filtered scans with locality, and inserts.
type HBaseRelation struct {
	cat    *Catalog
	coder  FieldCoder
	client *hbase.Client
	meter  *metrics.Registry
	opts   Options
	codec  rowkeyCodec
}

// NewHBaseRelation builds a relation over an HBase client. meter may be
// nil.
func NewHBaseRelation(client *hbase.Client, cat *Catalog, opts Options, meter *metrics.Registry) (*HBaseRelation, error) {
	coder, err := cat.Coder()
	if err != nil {
		return nil, err
	}
	return &HBaseRelation{
		cat:    cat,
		coder:  coder,
		client: client,
		meter:  meter,
		opts:   opts,
		codec:  rowkeyCodec{cat: cat, coder: coder},
	}, nil
}

// Name implements datasource.Relation.
func (r *HBaseRelation) Name() string { return r.cat.Table.Name }

// Schema implements datasource.Relation.
func (r *HBaseRelation) Schema() plan.Schema { return r.cat.Schema() }

// Catalog exposes the relation's catalog.
func (r *HBaseRelation) Catalog() *Catalog { return r.cat }

// translation is the outcome of mapping one source filter onto HBase.
type translation struct {
	ranges  RangeSet     // restriction on encoded row keys (full when none)
	hfilter hbase.Filter // server-side filter (nil when none)
	handled bool         // fully evaluated by HBase; engine need not re-apply
}

// translate maps a source filter to rowkey ranges and server filters. The
// selective-pushdown policy of §VI-A.3 lives here: NOT IN never pushes,
// range predicates on non-order-preserving coders never push, and anything
// unpushable is left for the engine via handled=false.
func (r *HBaseRelation) translate(f datasource.Filter) translation {
	full := translation{ranges: fullSet()}
	if r.opts.DisableFilterPushdown {
		return full
	}
	firstDim := r.cat.RowkeyFields()[0]
	isFirstDim := func(col string) bool { return col == firstDim }
	singleDimKey := len(r.cat.RowkeyFields()) == 1

	switch x := f.(type) {
	case datasource.EqualTo:
		if isFirstDim(x.Column) && r.coder.OrderPreserving() {
			enc, err := r.codec.encodePrefix(x.Value)
			if err == nil {
				if singleDimKey {
					return translation{ranges: pointSet(enc), handled: true}
				}
				return translation{ranges: prefixSet(enc), handled: true}
			}
		}
		return r.columnFilter(x.Column, hbase.CmpEqual, x.Value, true)
	case datasource.NotEqual:
		if _, isKey := r.cat.IsRowkeyField(x.Column); isKey {
			// != on a key dimension does not narrow ranges usefully.
			return full
		}
		return r.columnFilter(x.Column, hbase.CmpNotEqual, x.Value, true)
	case datasource.GreaterThan:
		if tr, ok := r.keyBound(x.Column, x.Value, func(enc []byte) RowRange {
			return RowRange{Start: bytesutil.PrefixSuccessor(enc)}
		}); ok {
			return tr
		}
		return r.columnFilter(x.Column, hbase.CmpGreater, x.Value, r.coder.OrderPreserving())
	case datasource.GreaterThanOrEqual:
		if tr, ok := r.keyBound(x.Column, x.Value, func(enc []byte) RowRange {
			return RowRange{Start: enc}
		}); ok {
			return tr
		}
		return r.columnFilter(x.Column, hbase.CmpGreaterOrEqual, x.Value, r.coder.OrderPreserving())
	case datasource.LessThan:
		if tr, ok := r.keyBound(x.Column, x.Value, func(enc []byte) RowRange {
			return RowRange{Stop: enc}
		}); ok {
			return tr
		}
		return r.columnFilter(x.Column, hbase.CmpLess, x.Value, r.coder.OrderPreserving())
	case datasource.LessThanOrEqual:
		if tr, ok := r.keyBound(x.Column, x.Value, func(enc []byte) RowRange {
			return RowRange{Stop: bytesutil.PrefixSuccessor(enc)}
		}); ok {
			return tr
		}
		return r.columnFilter(x.Column, hbase.CmpLessOrEqual, x.Value, r.coder.OrderPreserving())
	case datasource.In:
		if isFirstDim(x.Column) && r.coder.OrderPreserving() {
			set := emptySet()
			ok := true
			for _, v := range x.Values {
				enc, err := r.codec.encodePrefix(v)
				if err != nil {
					ok = false
					break
				}
				if singleDimKey {
					set = set.Union(pointSet(enc))
				} else {
					set = set.Union(prefixSet(enc))
				}
			}
			if ok {
				return translation{ranges: set, handled: true}
			}
		}
		// Non-key IN becomes an OR of equality filters.
		spec, err := r.cat.Column(x.Column)
		if err != nil || spec.CF == RowkeyCF {
			return full
		}
		list := &hbase.FilterList{Op: hbase.MustPassOne}
		for _, v := range x.Values {
			enc, err := r.coder.Encode(v, r.cat.fieldType(x.Column))
			if err != nil {
				return full
			}
			list.Filters = append(list.Filters, &hbase.SingleColumnValueFilter{
				Family: spec.CF, Qualifier: spec.Col, Op: hbase.CmpEqual, Value: enc,
			})
		}
		return translation{ranges: fullSet(), hfilter: list, handled: true}
	case datasource.NotIn:
		// The paper's rule: scanning the whole table to evaluate NOT IN
		// inside HBase is not worth building the filter — Spark applies it
		// after the fetch (§VI-A.3).
		return full
	case datasource.StringStartsWith:
		if isFirstDim(x.Column) && r.coder.OrderPreserving() && r.cat.fieldType(x.Column) == plan.TypeString {
			return translation{ranges: prefixSet([]byte(x.Prefix)), handled: true}
		}
		if !r.coder.OrderPreserving() {
			return full
		}
		spec, err := r.cat.Column(x.Column)
		if err != nil || spec.CF == RowkeyCF || r.cat.fieldType(x.Column) != plan.TypeString {
			return full
		}
		enc, err := r.coder.Encode(x.Prefix, plan.TypeString)
		if err != nil {
			return full
		}
		list := &hbase.FilterList{Op: hbase.MustPassAll, Filters: []hbase.Filter{
			&hbase.SingleColumnValueFilter{Family: spec.CF, Qualifier: spec.Col, Op: hbase.CmpGreaterOrEqual, Value: enc},
		}}
		if succ := bytesutil.PrefixSuccessor(enc); succ != nil {
			list.Filters = append(list.Filters, &hbase.SingleColumnValueFilter{
				Family: spec.CF, Qualifier: spec.Col, Op: hbase.CmpLess, Value: succ,
			})
		}
		return translation{ranges: fullSet(), hfilter: list, handled: true}
	case datasource.AndFilter:
		l := r.translate(x.Left)
		rt := r.translate(x.Right)
		out := translation{
			ranges:  l.ranges.Intersect(rt.ranges),
			handled: l.handled && rt.handled,
		}
		out.hfilter = andFilters(l.hfilter, rt.hfilter)
		return out
	case datasource.OrFilter:
		l := r.translate(x.Left)
		rt := r.translate(x.Right)
		if !l.handled || !rt.handled {
			// A disjunction is only as good as its weakest arm; without
			// both arms the scan cannot be narrowed (the paper's "OR
			// semantic ... results in a full scan", §VI-A.1).
			return full
		}
		// Both arms handled. Ranges union; filters also OR — but a row in
		// either arm's range with no filter must pass, so mixing ranges
		// and filters across arms is only sound when the arms are
		// symmetric: both pure-range or both pure-filter.
		pureRangeL := l.hfilter == nil
		pureRangeR := rt.hfilter == nil
		switch {
		case pureRangeL && pureRangeR:
			return translation{ranges: l.ranges.Union(rt.ranges), handled: true}
		case !pureRangeL && !pureRangeR && l.ranges.IsFull() && rt.ranges.IsFull():
			return translation{
				ranges:  fullSet(),
				hfilter: &hbase.FilterList{Op: hbase.MustPassOne, Filters: []hbase.Filter{l.hfilter, rt.hfilter}},
				handled: true,
			}
		default:
			return full
		}
	}
	return full
}

// keyBound builds a first-dimension range translation for an inequality.
func (r *HBaseRelation) keyBound(col string, v any, build func(enc []byte) RowRange) (translation, bool) {
	if col != r.cat.RowkeyFields()[0] || !r.coder.OrderPreserving() {
		return translation{}, false
	}
	enc, err := r.codec.encodePrefix(v)
	if err != nil {
		return translation{}, false
	}
	return translation{ranges: singleSet(build(enc)), handled: true}, true
}

// columnFilter builds a server-side single-column filter; handled=false
// when byte-order comparison would be unsound for the coder.
func (r *HBaseRelation) columnFilter(col string, op hbase.CompareOp, v any, sound bool) translation {
	full := translation{ranges: fullSet()}
	if !sound {
		return full
	}
	spec, err := r.cat.Column(col)
	if err != nil || spec.CF == RowkeyCF {
		return full
	}
	enc, err := r.coder.Encode(v, r.cat.fieldType(col))
	if err != nil {
		return full
	}
	return translation{
		ranges:  fullSet(),
		hfilter: &hbase.SingleColumnValueFilter{Family: spec.CF, Qualifier: spec.Col, Op: op, Value: enc},
		handled: true,
	}
}

func andFilters(a, b hbase.Filter) hbase.Filter {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return &hbase.FilterList{Op: hbase.MustPassAll, Filters: []hbase.Filter{a, b}}
}

// compositeRanges implements the paper's future-work extension (§VIII):
// pruning on every dimension of a composite rowkey. With equality
// predicates on key dimensions 1..k-1, the matching keys share the encoded
// prefix of those values; an additional equality or bound on dimension k
// refines the range further. The result is an over-approximation (the
// engine still re-applies the non-first-dimension predicates), so it only
// ever narrows the scan, never changes answers.
func (r *HBaseRelation) compositeRanges(filters []datasource.Filter) RangeSet {
	fields := r.cat.RowkeyFields()
	if len(fields) < 2 || !r.coder.OrderPreserving() || r.opts.DisableFilterPushdown {
		return fullSet()
	}
	// Gather per-dimension simple predicates.
	eq := make(map[int]any)
	type bound struct {
		v         any
		inclusive bool
	}
	lower := make(map[int]bound)
	upper := make(map[int]bound)
	for _, f := range filters {
		var col string
		switch x := f.(type) {
		case datasource.EqualTo:
			col = x.Column
			if dim, ok := r.cat.IsRowkeyField(col); ok {
				eq[dim] = x.Value
			}
		case datasource.GreaterThan:
			if dim, ok := r.cat.IsRowkeyField(x.Column); ok {
				lower[dim] = bound{x.Value, false}
			}
		case datasource.GreaterThanOrEqual:
			if dim, ok := r.cat.IsRowkeyField(x.Column); ok {
				lower[dim] = bound{x.Value, true}
			}
		case datasource.LessThan:
			if dim, ok := r.cat.IsRowkeyField(x.Column); ok {
				upper[dim] = bound{x.Value, false}
			}
		case datasource.LessThanOrEqual:
			if dim, ok := r.cat.IsRowkeyField(x.Column); ok {
				upper[dim] = bound{x.Value, true}
			}
		}
	}
	// k = longest all-equality prefix.
	k := 0
	vals := make([]any, 0, len(fields))
	for ; k < len(fields); k++ {
		v, ok := eq[k]
		if !ok {
			break
		}
		vals = append(vals, v)
	}
	if k == 0 {
		return fullSet() // first-dimension logic already covers this
	}
	prefix, err := r.codec.encodeDims(vals, k)
	if err != nil {
		return fullSet()
	}
	set := prefixSet(prefix)
	// Refine with a bound on the next dimension when it is fixed-width
	// (variable-width encodings do not compose into contiguous key ranges
	// past a prefix). The result stays an over-approximation either way.
	_, hasLower := lower[k]
	_, hasUpper := upper[k]
	if k < len(fields) && (hasLower || hasUpper) && fixedWidth(r.cat.fieldType(fields[k]), r.coder) > 0 {
		t := r.cat.fieldType(fields[k])
		rr := RowRange{Start: prefix, Stop: bytesutil.PrefixSuccessor(prefix)}
		if lb, ok := lower[k]; ok {
			if enc, err := r.coder.Encode(lb.v, t); err == nil {
				if lb.inclusive {
					rr.Start = bytesutil.Concat(prefix, enc)
				} else if succ := bytesutil.PrefixSuccessor(enc); succ != nil {
					rr.Start = bytesutil.Concat(prefix, succ)
				}
			}
		}
		if ub, ok := upper[k]; ok {
			if enc, err := r.coder.Encode(ub.v, t); err == nil {
				if !ub.inclusive {
					rr.Stop = bytesutil.Concat(prefix, enc)
				} else if succ := bytesutil.PrefixSuccessor(enc); succ != nil {
					rr.Stop = bytesutil.Concat(prefix, succ)
				}
			}
		}
		set = set.Intersect(singleSet(rr))
	}
	return set
}

// EstimatedRowCount implements datasource.Statistics: cell count from the
// master's region metrics divided by the catalog's data-column count. The
// estimate ignores multi-versioned cells and NULL-absent columns, which is
// the usual precision of storage-level statistics.
func (r *HBaseRelation) EstimatedRowCount() (int64, bool) {
	stats, err := r.client.TableStats(r.cat.Table.Name)
	if err != nil {
		return 0, false
	}
	cols := int64(len(r.cat.Schema()) - len(r.cat.RowkeyFields()))
	if cols < 1 {
		cols = 1
	}
	return stats.Cells / cols, true
}

// UnhandledFilters implements datasource.PrunedFilteredScan.
func (r *HBaseRelation) UnhandledFilters(filters []datasource.Filter) []datasource.Filter {
	var out []datasource.Filter
	for _, f := range filters {
		if !r.translate(f).handled {
			out = append(out, f)
		}
	}
	return out
}

// BuildScan implements datasource.PrunedFilteredScan: it derives rowkey
// ranges and server filters from the pushed predicates, prunes regions,
// fuses per-server work, and returns locality-tagged partitions.
func (r *HBaseRelation) BuildScan(requiredColumns []string, filters []datasource.Filter) ([]datasource.Partition, error) {
	// Validate the projection and split it into key dims vs cells.
	var scanCols []hbase.Column
	for _, col := range requiredColumns {
		spec, err := r.cat.Column(col)
		if err != nil {
			return nil, err
		}
		if spec.CF != RowkeyCF {
			scanCols = append(scanCols, hbase.Column{Family: spec.CF, Qualifier: spec.Col})
		}
	}

	ranges := fullSet()
	var hfilters []hbase.Filter
	for _, f := range filters {
		tr := r.translate(f)
		ranges = ranges.Intersect(tr.ranges)
		if tr.hfilter != nil {
			hfilters = append(hfilters, tr.hfilter)
		}
		if tr.handled {
			r.meter.Inc(metrics.FiltersPushed)
		} else {
			r.meter.Inc(metrics.FiltersUnhandled)
		}
	}
	if r.opts.FullKeyPruning {
		ranges = ranges.Intersect(r.compositeRanges(filters))
	}
	var filter hbase.Filter
	for _, f := range hfilters {
		filter = andFilters(filter, f)
	}

	regions, err := r.client.Regions(r.cat.Table.Name)
	if err != nil {
		return nil, err
	}
	scanTemplate := func(lo, hi []byte) *hbase.Scan {
		return &hbase.Scan{
			StartRow: lo, StopRow: hi,
			Columns:     scanCols,
			Filter:      filter,
			MaxVersions: r.opts.maxVersions(),
			TimeRange:   r.opts.timeRange(),
		}
	}

	// Partition pruning: keep only regions intersecting some range.
	type regionWork struct {
		info hbase.RegionInfo
		ops  []hbase.ScanOp
	}
	var work []regionWork
	pruned := 0
	for _, ri := range regions {
		ri := ri
		var ops []hbase.ScanOp
		for _, rng := range ranges.Ranges() {
			lo, hi, ok := hbase.SplitRowRange(&ri, rng.Start, rng.Stop)
			if !ok {
				continue
			}
			if isPoint(rng) {
				ops = append(ops, hbase.ScanOp{RegionID: ri.ID, Epoch: ri.Epoch, Rows: [][]byte{rng.Start}, Scan: scanTemplate(nil, nil)})
			} else {
				ops = append(ops, hbase.ScanOp{RegionID: ri.ID, Epoch: ri.Epoch, Scan: scanTemplate(lo, hi)})
			}
		}
		if len(ops) == 0 {
			if !r.opts.DisablePartitionPruning {
				pruned++
				continue
			}
			// Pruning disabled: the region still receives a (vacuous) scan
			// task — the wasted round trip the optimization removes.
			empty := ri.StartKey
			if empty == nil {
				empty = []byte{}
			}
			ops = append(ops, hbase.ScanOp{RegionID: ri.ID, Epoch: ri.Epoch, Scan: scanTemplate(empty, empty)})
		}
		work = append(work, regionWork{info: ri, ops: ops})
	}
	r.meter.Add(metrics.RegionsPruned, int64(pruned))

	// Operator fusion: one partition (one task, one RPC) per region
	// server, packing every Scan/Get for regions it hosts (§VI-A.4).
	var parts []datasource.Partition
	if r.opts.DisableOperatorFusion {
		for i, w := range work {
			parts = append(parts, &hbasePartition{
				rel: r, index: i, host: w.info.Host, ops: w.ops, required: requiredColumns,
			})
		}
		return parts, nil
	}
	byHost := make(map[string][]hbase.ScanOp)
	for _, w := range work {
		byHost[w.info.Host] = append(byHost[w.info.Host], w.ops...)
	}
	hosts := make([]string, 0, len(byHost))
	for h := range byHost {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	for i, h := range hosts {
		parts = append(parts, &hbasePartition{
			rel: r, index: i, host: h, ops: byHost[h], required: requiredColumns,
		})
	}
	return parts, nil
}

func isPoint(r RowRange) bool {
	return r.Start != nil && r.Stop != nil &&
		len(r.Stop) == len(r.Start)+1 && r.Stop[len(r.Stop)-1] == 0 &&
		bytes.Equal(r.Stop[:len(r.Start)], r.Start)
}

// hbasePartition is one locality-tagged unit of scan work: every Scan and
// BulkGet bound for one region server, executed in a single fused RPC.
type hbasePartition struct {
	rel      *HBaseRelation
	index    int
	host     string
	ops      []hbase.ScanOp
	required []string
}

// Index implements datasource.Partition.
func (p *hbasePartition) Index() int { return p.index }

// PreferredHost implements datasource.Partition — the region server's host,
// which the scheduler matches to an executor (§VI-A.2).
func (p *hbasePartition) PreferredHost() string { return p.host }

// Compute implements datasource.Partition: fetch and decode this
// partition's rows in a fused RPC, failing over to reassigned region
// servers if the host dies mid-query.
func (p *hbasePartition) Compute(ctx context.Context) ([]plan.Row, error) {
	ctx = bridgeConsistency(ctx)
	pager := newFusedPager(p, p.ops, 0)
	var rows []plan.Row
	var keyScratch []any
	for {
		resp, err := pager.next(ctx)
		if err != nil {
			return nil, err
		}
		if resp == nil {
			return rows, nil
		}
		rows, keyScratch, err = p.rel.decodeResults(resp.Results, p.required, rows, keyScratch)
		if err != nil {
			return nil, err
		}
	}
}

// fusedPager drives a partition's paged fused execution with failover. The
// partition bakes in the host that served its regions at plan time; when
// that host dies mid-scan, the pager re-resolves region locations, regroups
// the not-yet-streamed ops into contiguous same-host runs, and resumes each
// run from the continuation cursor — so a query started before a crash
// finishes with exactly the rows it would have produced without one.
type fusedPager struct {
	p        *hbasePartition
	ops      []hbase.ScanOp // ops not yet fully streamed, in original order
	host     string         // host serving ops[:prefix]
	prefix   int            // length of the contiguous same-host run being paged
	cursor   hbase.FusedCursor
	batch    int
	columnar bool // request column-major pages (vectorized decode path)
	failures int
	done     bool
}

func newFusedPager(p *hbasePartition, ops []hbase.ScanOp, batch int) *fusedPager {
	// At plan time every op in the partition lives on p.host, so the first
	// run is the whole list; runs only fragment after a failover.
	return &fusedPager{p: p, ops: ops, host: p.host, prefix: len(ops), batch: batch}
}

// wrapErr annotates a terminal paging error with where the fused stream
// stood — table, the region the cursor was walking, and the resume row — so
// a failure inside a multi-region fused scan reports its position.
func (g *fusedPager) wrapErr(err error) error {
	region := "?"
	if g.cursor.Op >= 0 && g.cursor.Op < g.prefix && g.cursor.Op < len(g.ops) {
		region = g.ops[g.cursor.Op].RegionID
	}
	return fmt.Errorf("core: fused scan table=%q region=%s after-row=%x: %w",
		g.p.rel.cat.Table.Name, region, g.cursor.Row, err)
}

// next returns the next page, or (nil, nil) once every op has streamed.
func (g *fusedPager) next(ctx context.Context) (*hbase.ScanResponse, error) {
	client := g.p.rel.client
	for !g.done {
		var resp *hbase.ScanResponse
		var err error
		if g.columnar {
			resp, err = client.FusedExecPageColumnar(ctx, g.host, g.ops[:g.prefix], g.batch, g.cursor)
		} else {
			resp, err = client.FusedExecPageContext(ctx, g.host, g.ops[:g.prefix], g.batch, g.cursor)
		}
		if err != nil {
			if !hbase.IsRetryable(err) {
				return nil, g.wrapErr(err)
			}
			g.failures++
			if g.failures >= client.RetryPolicy().MaxAttempts {
				return nil, g.wrapErr(err)
			}
			metrics.Scoped(ctx, g.p.rel.meter).Inc(metrics.ClientRetries)
			if errors.Is(err, hbase.ErrServerBusy) {
				// The server shed us under load: locations are still right,
				// so keep the op layout and just back off before resending.
				if perr := client.RetryPause(ctx, g.failures); perr != nil {
					return nil, g.wrapErr(perr)
				}
				continue
			}
			// Ops before cursor.Op have fully streamed; the cursor's own op
			// resumes mid-scan via Row/RowIdx/Sent, which survive the rebase
			// because the server walks ops from Cursor.Op.
			failed := g.host
			g.ops = g.ops[g.cursor.Op:]
			g.cursor.Op = 0
			client.InvalidateRegions(g.p.rel.cat.Table.Name)
			if perr := client.RetryPause(ctx, g.failures); perr != nil {
				return nil, g.wrapErr(perr)
			}
			if rerr := g.replace(ctx, failed); rerr != nil {
				return nil, g.wrapErr(rerr)
			}
			continue
		}
		g.failures = 0
		if resp.More {
			g.cursor = resp.Next
			return resp, nil
		}
		// This same-host run is exhausted; advance to the next one (only
		// present after a failover scattered the partition's regions).
		g.ops = g.ops[g.prefix:]
		g.cursor = hbase.FusedCursor{}
		if len(g.ops) == 0 {
			g.done = true
		} else if rerr := g.replace(ctx, ""); rerr != nil {
			return nil, g.wrapErr(rerr)
		}
		return resp, nil
	}
	return nil, nil
}

// replace re-resolves where the remaining ops now live and sets host/prefix
// to the leading contiguous run served by one host. Op order is preserved,
// so the rows stream in exactly the order the unbroken fused RPC would have
// produced them. Each remaining op is restamped with the region's current
// ownership epoch — the fresh locations are only honored by servers when the
// routing epoch matches what they hold.
//
// avoid names a host that just failed (empty on the normal run-exhausted
// path). When the refreshed meta still routes the leading op's primary to
// that host — the master's heartbeat has not noticed the death yet — and
// the query runs under timeline consistency, the run is redirected to one of
// the region's secondary replicas instead of burning the remaining attempts
// against a corpse: ops are stamped with the replica number the chosen host
// serves, and the pages come back tagged stale. Strong queries never
// redirect; they wait out reassignment exactly as before replicas existed.
func (g *fusedPager) replace(ctx context.Context, avoid string) error {
	regions, err := g.p.rel.client.RegionsContext(ctx, g.p.rel.cat.Table.Name)
	if err != nil {
		return err
	}
	infoOf := make(map[string]hbase.RegionInfo, len(regions))
	for _, ri := range regions {
		infoOf[ri.ID] = ri
	}
	// Fold the in-flight cursor into the lead op's own key range / row list.
	// Only the cursor key says where the stream truly stands, and a region
	// that split between pages invalidates the (RegionID, cursor) pair — so
	// bake the resume position into the op before remapping by key range.
	g.foldCursor()
	// Re-lookup ops whose region no longer exists (it split — or merged —
	// under the scan) by their remaining key range. Fresh regions come back
	// sorted by start key and each op expands in place, so op order — and
	// therefore row order — is exactly what the unbroken stream would have
	// produced.
	remapped := g.ops[:0:0]
	for _, op := range g.ops {
		if _, ok := infoOf[op.RegionID]; ok {
			remapped = append(remapped, op)
			continue
		}
		remapped = append(remapped, remapOp(op, regions)...)
	}
	g.ops = remapped
	if len(g.ops) == 0 {
		// Every remaining op folded away (cursor past the end of its range).
		g.done = true
		return nil
	}
	lead := infoOf[g.ops[0].RegionID]
	for i := range g.ops {
		if in, ok := infoOf[g.ops[i].RegionID]; ok {
			g.ops[i].Epoch = in.Epoch
		}
		g.ops[i].Replica = 0
	}
	host := lead.Host
	if avoid != "" && host == avoid && hbase.ConsistencyFromContext(ctx) == hbase.ConsistencyTimeline {
		for i, rh := range lead.ReplicaHosts {
			if rh != "" && rh != avoid {
				host = rh
				g.ops[0].Replica = i + 1
				metrics.Scoped(ctx, g.p.rel.meter).Inc(metrics.ReplicaFailovers)
				trace.SpanFromContext(ctx).Annotate("timeline failover: fused run -> %s replica %d on %s", lead.ID, i+1, rh)
				break
			}
		}
	}
	// replicaOn reports which copy of a region host serves: 0 for the
	// primary, n for replica #n, -1 when host holds no copy.
	replicaOn := func(in hbase.RegionInfo) int {
		if in.Host == host {
			return 0
		}
		for i, rh := range in.ReplicaHosts {
			if rh != "" && rh == host {
				return i + 1
			}
		}
		return -1
	}
	g.host = host
	g.prefix = 1
	for g.prefix < len(g.ops) {
		in, ok := infoOf[g.ops[g.prefix].RegionID]
		if !ok {
			break
		}
		rep := replicaOn(in)
		if rep < 0 || (rep > 0 && g.ops[0].Replica == 0) {
			// Replica-served ops only join a run that already failed over;
			// a healthy strong run stays primary-only.
			break
		}
		g.ops[g.prefix].Replica = rep
		g.prefix++
	}
	return nil
}

// foldCursor rewrites the lead op so its own key range (scan) or row list
// (bulk get) starts at the continuation cursor, then clears the cursor. A
// folded op resumes exactly where the stream stood no matter which region —
// or how many, after a split — now covers its keys. The zero cursor (the
// run-exhausted path) folds to a no-op. The op's Scan is cloned before
// mutation because the backing array is shared with the partition's op list.
func (g *fusedPager) foldCursor() {
	if len(g.ops) == 0 {
		return
	}
	c := g.cursor
	if c.Row == nil && c.RowIdx == 0 && c.Sent == 0 {
		return
	}
	op := g.ops[0]
	g.cursor = hbase.FusedCursor{}
	exhausted := false
	if len(op.Rows) > 0 {
		if c.RowIdx >= len(op.Rows) {
			exhausted = true
		} else if c.RowIdx > 0 {
			op.Rows = op.Rows[c.RowIdx:]
		}
	} else if op.Scan != nil {
		sc := *op.Scan
		if c.Row != nil {
			sc.StartRow = c.Row
		}
		if sc.Limit > 0 {
			sc.Limit -= c.Sent
			exhausted = sc.Limit <= 0
		}
		op.Scan = &sc
	}
	if exhausted {
		// The cursor sat exactly at the op's end: it has fully streamed.
		g.ops = g.ops[1:]
		return
	}
	g.ops[0] = op
}

// remapOp re-homes one op whose region vanished onto the fresh region list:
// a scan op is clipped to every fresh region its range overlaps, a bulk get
// is partitioned by which fresh region contains each row. regions are sorted
// by start key and rows within an op are sorted, so expansion preserves
// stream order.
func remapOp(op hbase.ScanOp, regions []hbase.RegionInfo) []hbase.ScanOp {
	var out []hbase.ScanOp
	if len(op.Rows) > 0 {
		i := 0
		for ri := range regions {
			in := &regions[ri]
			var rows [][]byte
			for i < len(op.Rows) && in.ContainsRow(op.Rows[i]) {
				rows = append(rows, op.Rows[i])
				i++
			}
			if len(rows) > 0 {
				out = append(out, hbase.ScanOp{RegionID: in.ID, Epoch: in.Epoch, Rows: rows, Scan: op.Scan})
			}
		}
		return out
	}
	if op.Scan == nil {
		return nil
	}
	for ri := range regions {
		in := &regions[ri]
		lo, hi, ok := hbase.SplitRowRange(in, op.Scan.StartRow, op.Scan.StopRow)
		if !ok {
			continue
		}
		sc := *op.Scan
		sc.StartRow, sc.StopRow = lo, hi
		out = append(out, hbase.ScanOp{RegionID: in.ID, Epoch: in.Epoch, Scan: &sc})
	}
	return out
}

// defaultFusedBatch is the per-page row budget when the caller does not pick
// one.
const defaultFusedBatch = 256

// ComputeBatches implements datasource.BatchScan: the partition's fused RPC
// is paged with a continuation cursor, each page decoded and yielded as one
// batch. While the caller consumes a page, the next page's RPC is already in
// flight (double buffering), so decode and network time overlap. A LimitHint
// shrinks each op's server-side Scan.Limit and stops paging once enough rows
// streamed — the fused-LIMIT short circuit.
func (p *hbasePartition) ComputeBatches(ctx context.Context, opts datasource.BatchOptions, yield func([]plan.Row) error) error {
	ctx = bridgeConsistency(ctx)
	batchSize := opts.BatchSize
	if batchSize <= 0 {
		batchSize = defaultFusedBatch
	}
	ops := p.ops
	if opts.LimitHint > 0 {
		ops = make([]hbase.ScanOp, len(p.ops))
		for i, op := range p.ops {
			if op.Scan != nil && len(op.Rows) == 0 {
				s := *op.Scan
				if s.Limit == 0 || s.Limit > opts.LimitHint {
					s.Limit = opts.LimitHint
				}
				op.Scan = &s
			}
			ops[i] = op
		}
	}

	pager := newFusedPager(p, ops, batchSize)
	type fusedPage struct {
		resp *hbase.ScanResponse
		err  error
	}
	fetch := func() chan fusedPage {
		ch := make(chan fusedPage, 1)
		go func() {
			resp, err := pager.next(ctx)
			ch <- fusedPage{resp: resp, err: err}
		}()
		return ch
	}

	meter := metrics.Scoped(ctx, p.rel.meter)
	pending := fetch()
	emitted := 0
	var batch []plan.Row
	var keyScratch []any
	for pending != nil {
		pg := <-pending
		pending = nil
		if pg.err != nil {
			return pg.err
		}
		if pg.resp == nil {
			break
		}
		meter.Inc(metrics.FusedPages)
		results := pg.resp.Results
		// Pager state mutates only inside fetch goroutines; the channel
		// receive above happens-before this launch, so access stays serial.
		if !pager.done && (opts.LimitHint <= 0 || emitted+len(results) < opts.LimitHint) {
			// Launch the next page before decoding this one; the buffered
			// channel keeps the goroutine from leaking if we stop early.
			pending = fetch()
			meter.Inc(metrics.PagesPrefetched)
		}
		if opts.LimitHint > 0 && emitted+len(results) > opts.LimitHint {
			results = results[:opts.LimitHint-emitted]
		}
		if len(results) == 0 {
			continue
		}
		var err error
		batch, keyScratch, err = p.rel.decodeResults(results, p.required, batch[:0], keyScratch)
		if err != nil {
			return err
		}
		emitted += len(batch)
		if err := yield(batch); err != nil {
			if errors.Is(err, datasource.ErrStopBatches) {
				return nil
			}
			return err
		}
	}
	return nil
}

// decodeResults decodes a page of HBase results into rows appended to dst,
// amortizing allocations: one values slab backs every row in the batch, and
// keyScratch is reused across rows for composite-rowkey decoding. It returns
// the grown dst and scratch. Rows stay valid after dst is reused — they
// alias the slab, not dst.
func (r *HBaseRelation) decodeResults(results []hbase.Result, required []string, dst []plan.Row, keyScratch []any) ([]plan.Row, []any, error) {
	w := len(required)
	slab := make([]any, len(results)*w)
	for i := range results {
		row := plan.Row(slab[i*w : (i+1)*w : (i+1)*w])
		var err error
		keyScratch, err = r.decodeResultInto(row, keyScratch, &results[i], required)
		if err != nil {
			return nil, keyScratch, err
		}
		dst = append(dst, row)
	}
	return dst, keyScratch, nil
}

// decodeResult projects one HBase result onto the required columns.
func (r *HBaseRelation) decodeResult(res *hbase.Result, required []string) (plan.Row, error) {
	row := make(plan.Row, len(required))
	_, err := r.decodeResultInto(row, nil, res, required)
	if err != nil {
		return nil, err
	}
	return row, nil
}

// decodeResultInto decodes res into row (which must have len(required)),
// reusing keyScratch for rowkey dimension values; it returns the (possibly
// grown) scratch. Values are copied out of the scratch, so callers may hand
// the same scratch to the next row.
func (r *HBaseRelation) decodeResultInto(row plan.Row, keyScratch []any, res *hbase.Result, required []string) ([]any, error) {
	keyDecoded := false
	for i, col := range required {
		if dim, ok := r.cat.IsRowkeyField(col); ok {
			if !keyDecoded {
				vals, err := r.codec.decodeRowkeyInto(keyScratch, res.Row)
				if err != nil {
					return keyScratch, err
				}
				keyScratch = vals
				keyDecoded = true
			}
			row[i] = keyScratch[dim]
			continue
		}
		spec, err := r.cat.Column(col)
		if err != nil {
			return keyScratch, err
		}
		raw, ok := res.Value(spec.CF, spec.Col)
		if !ok {
			row[i] = nil // SQL NULL for absent cells
			continue
		}
		v, err := r.coder.Decode(raw, r.cat.fieldType(col))
		if err != nil {
			return keyScratch, fmt.Errorf("core: decode %s: %w", col, err)
		}
		row[i] = v
	}
	return keyScratch, nil
}
