package core

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/shc-go/shc/internal/plan"
)

var coderValues = []struct {
	t plan.DataType
	v any
}{
	{plan.TypeString, "hello"},
	{plan.TypeString, ""},
	{plan.TypeInt8, int8(-5)},
	{plan.TypeInt16, int16(-300)},
	{plan.TypeInt32, int32(123456)},
	{plan.TypeInt64, int64(-99999999999)},
	{plan.TypeFloat32, float32(3.5)},
	{plan.TypeFloat64, -2.25},
	{plan.TypeBool, true},
	{plan.TypeBinary, []byte{0, 1, 2}},
	{plan.TypeTimestamp, int64(1700000000000)},
}

func allCoders() []FieldCoder {
	return []FieldCoder{PrimitiveCoder{}, PhoenixCoder{}, AvroCoder{}, StringCoder{}}
}

func TestCoderRoundTrips(t *testing.T) {
	for _, coder := range allCoders() {
		for _, c := range coderValues {
			enc, err := coder.Encode(c.v, c.t)
			if err != nil {
				t.Errorf("%s.Encode(%v, %s): %v", coder.Name(), c.v, c.t, err)
				continue
			}
			got, err := coder.Decode(enc, c.t)
			if err != nil {
				t.Errorf("%s.Decode(%s): %v", coder.Name(), c.t, err)
				continue
			}
			if !reflect.DeepEqual(got, c.v) {
				t.Errorf("%s round trip %s: %v (%T) != %v (%T)", coder.Name(), c.t, got, got, c.v, c.v)
			}
		}
	}
}

func TestCoderByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             CoderPrimitive,
		CoderPrimitive: CoderPrimitive,
		CoderPhoenix:   CoderPhoenix,
		CoderAvro:      CoderAvro,
	} {
		c, err := CoderByName(name)
		if err != nil || c.Name() != want {
			t.Errorf("CoderByName(%q) = %v, %v", name, c, err)
		}
	}
	if _, err := CoderByName("Mystery"); err == nil {
		t.Error("unknown coder must fail")
	}
}

func TestPrimitiveAndPhoenixOrderPreserving(t *testing.T) {
	for _, coder := range []FieldCoder{PrimitiveCoder{}, PhoenixCoder{}} {
		if !coder.OrderPreserving() {
			t.Errorf("%s must be order preserving", coder.Name())
		}
		if err := quick.Check(func(a, b int64) bool {
			ea, err1 := coder.Encode(a, plan.TypeInt64)
			eb, err2 := coder.Encode(b, plan.TypeInt64)
			if err1 != nil || err2 != nil {
				return false
			}
			return (a < b) == (bytes.Compare(ea, eb) < 0)
		}, nil); err != nil {
			t.Errorf("%s int64 order: %v", coder.Name(), err)
		}
		if err := quick.Check(func(a, b float64) bool {
			if math.IsNaN(a) || math.IsNaN(b) || a == b {
				return true
			}
			ea, _ := coder.Encode(a, plan.TypeFloat64)
			eb, _ := coder.Encode(b, plan.TypeFloat64)
			return (a < b) == (bytes.Compare(ea, eb) < 0)
		}, nil); err != nil {
			t.Errorf("%s float64 order: %v", coder.Name(), err)
		}
	}
	if (AvroCoder{}).OrderPreserving() || (StringCoder{}).OrderPreserving() {
		t.Error("Avro and String coders must not claim order preservation")
	}
}

func TestCoderSizes(t *testing.T) {
	// Phoenix adds a tag byte; Avro adds a JSON envelope — the size ladder
	// behind Table II's memory column.
	p, _ := PrimitiveCoder{}.Encode(int64(7), plan.TypeInt64)
	ph, _ := PhoenixCoder{}.Encode(int64(7), plan.TypeInt64)
	av, _ := AvroCoder{}.Encode(int64(7), plan.TypeInt64)
	if !(len(p) < len(ph) && len(ph) < len(av)) {
		t.Errorf("size ladder violated: primitive=%d phoenix=%d avro=%d", len(p), len(ph), len(av))
	}
}

func TestCoderErrors(t *testing.T) {
	if _, err := (PrimitiveCoder{}).Encode(nil, plan.TypeInt64); err == nil {
		t.Error("encoding NULL must fail")
	}
	if _, err := (PrimitiveCoder{}).Encode("str", plan.TypeInt64); err == nil {
		t.Error("type mismatch must fail")
	}
	if _, err := (PrimitiveCoder{}).Decode([]byte{1}, plan.TypeInt64); err == nil {
		t.Error("short decode must fail")
	}
	if _, err := (PhoenixCoder{}).Decode(nil, plan.TypeInt64); err == nil {
		t.Error("empty phoenix decode must fail")
	}
	wrongTag, _ := PhoenixCoder{}.Encode("x", plan.TypeString)
	if _, err := (PhoenixCoder{}).Decode(wrongTag, plan.TypeInt64); err == nil {
		t.Error("phoenix tag mismatch must fail")
	}
	if _, err := (AvroCoder{}).Decode([]byte("not json"), plan.TypeInt64); err == nil {
		t.Error("bad avro decode must fail")
	}
	good, _ := AvroCoder{}.Encode(int64(1), plan.TypeInt64)
	if _, err := (AvroCoder{}).Decode(good, plan.TypeString); err == nil {
		t.Error("avro type mismatch must fail")
	}
	if _, err := (StringCoder{}).Decode([]byte("xyz"), plan.TypeInt64); err == nil {
		t.Error("string coder bad int must fail")
	}
}

func TestRowkeyCodecSingle(t *testing.T) {
	cat, err := ParseCatalog(activesCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rc := rowkeyCodec{cat: cat, coder: PrimitiveCoder{}}
	key, err := rc.encodeRowkey([]any{"row-42"})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rc.decodeRowkey(key)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != "row-42" {
		t.Errorf("decoded = %v", vals)
	}
}

func TestRowkeyCodecComposite(t *testing.T) {
	cat, err := ParseCatalog(compositeCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rc := rowkeyCodec{cat: cat, coder: PrimitiveCoder{}}
	key, err := rc.encodeRowkey([]any{"us-west", "host-1", int64(1234)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rc.decodeRowkey(key)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != "us-west" || vals[1] != "host-1" || vals[2] != int64(1234) {
		t.Errorf("decoded = %v", vals)
	}
	// Composite keys preserve order on the first dimension.
	key2, _ := rc.encodeRowkey([]any{"us-west!", "a", int64(0)})
	if bytes.Compare(key, key2) >= 0 {
		t.Error("first-dimension order violated")
	}
	// NUL in a non-final string dimension is rejected.
	if _, err := rc.encodeRowkey([]any{"bad\x00key", "h", int64(1)}); err == nil {
		t.Error("NUL in key dimension must fail")
	}
	// Wrong arity.
	if _, err := rc.encodeRowkey([]any{"only-one"}); err == nil {
		t.Error("wrong arity must fail")
	}
}

func TestRowkeyCodecCompositeProperty(t *testing.T) {
	cat, err := ParseCatalog(compositeCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rc := rowkeyCodec{cat: cat, coder: PrimitiveCoder{}}
	if err := quick.Check(func(r, h string, ts int64) bool {
		if bytes.ContainsRune([]byte(r), 0) || bytes.ContainsRune([]byte(h), 0) {
			return true
		}
		key, err := rc.encodeRowkey([]any{r, h, ts})
		if err != nil {
			return false
		}
		vals, err := rc.decodeRowkey(key)
		if err != nil {
			return false
		}
		return vals[0] == r && vals[1] == h && vals[2] == ts
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestRowkeyCodecPhoenix(t *testing.T) {
	doc := `{
	  "table":{"name":"p", "tableCoder":"Phoenix"},
	  "rowkey":"k1:k2",
	  "columns":{
	    "id":{"cf":"rowkey", "col":"k1", "type":"bigint"},
	    "sub":{"cf":"rowkey", "col":"k2", "type":"int"},
	    "v":{"cf":"cf", "col":"v", "type":"string"}
	  }
	}`
	cat, err := ParseCatalog(doc)
	if err != nil {
		t.Fatal(err)
	}
	rc := rowkeyCodec{cat: cat, coder: PhoenixCoder{}}
	key, err := rc.encodeRowkey([]any{int64(77), int32(3)})
	if err != nil {
		t.Fatal(err)
	}
	vals, err := rc.decodeRowkey(key)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != int64(77) || vals[1] != int32(3) {
		t.Errorf("decoded = %v", vals)
	}
}
