package core

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

const usersCatalog = `{
  "table":{"name":"users", "tableCoder":"PrimitiveType"},
  "rowkey":"key",
  "columns":{
    "id":{"cf":"rowkey", "col":"key", "type":"string"},
    "age":{"cf":"p", "col":"a", "type":"int"},
    "city":{"cf":"p", "col":"c", "type":"string"},
    "score":{"cf":"s", "col":"s", "type":"double"}
  }
}`

// testRig is one booted cluster + SHC relation + loaded rows.
type testRig struct {
	cluster *hbase.Cluster
	client  *hbase.Client
	cat     *Catalog
	rel     *HBaseRelation
	meter   *metrics.Registry
	rows    []plan.Row
}

func newRig(t *testing.T, opts Options, n int) *testRig {
	t.Helper()
	meter := metrics.NewRegistry()
	cluster, err := hbase.NewCluster(hbase.ClusterConfig{Name: "t", NumServers: 3, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	client := cluster.NewClient()
	cat, err := ParseCatalog(usersCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if opts.NewTableRegions == 0 {
		opts.NewTableRegions = 5
	}
	rel, err := NewHBaseRelation(client, cat, opts, meter)
	if err != nil {
		t.Fatal(err)
	}
	rig := &testRig{cluster: cluster, client: client, cat: cat, rel: rel, meter: meter}
	if n > 0 {
		for i := 0; i < n; i++ {
			rig.rows = append(rig.rows, plan.Row{
				fmt.Sprintf("user-%04d", i),
				int32(18 + i%60),
				[]string{"sf", "nyc", "la"}[i%3],
				float64(i) / 10,
			})
		}
		if err := rel.Insert(rig.rows); err != nil {
			t.Fatal(err)
		}
	}
	return rig
}

// scanAll computes every partition and returns the rows.
func scanAll(t *testing.T, parts []datasource.Partition) []plan.Row {
	t.Helper()
	var out []plan.Row
	for _, p := range parts {
		rows, err := p.Compute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rows...)
	}
	return out
}

func sortRows(rows []plan.Row) {
	sort.Slice(rows, func(i, j int) bool {
		return fmt.Sprint(rows[i][0]) < fmt.Sprint(rows[j][0])
	})
}

func TestInsertAndFullScan(t *testing.T) {
	rig := newRig(t, Options{}, 50)
	parts, err := rig.rel.BuildScan([]string{"id", "age", "city", "score"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 50 {
		t.Fatalf("rows = %d", len(got))
	}
	sortRows(got)
	for i, r := range got {
		want := rig.rows[i]
		if r[0] != want[0] || r[1] != want[1] || r[2] != want[2] || r[3] != want[3] {
			t.Fatalf("row %d = %v, want %v", i, r, want)
		}
	}
}

func TestInsertPreSplitsRegions(t *testing.T) {
	rig := newRig(t, Options{NewTableRegions: 5}, 100)
	regions, err := rig.client.Regions("users")
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 5 {
		t.Errorf("regions = %d, want 5 (newTable pre-split)", len(regions))
	}
}

func TestPartitionPruningOnRowkeyRange(t *testing.T) {
	rig := newRig(t, Options{}, 100)
	// Keys user-0000..user-0099 split across 5 regions; a narrow range
	// must prune most regions.
	filters := []datasource.Filter{
		datasource.GreaterThanOrEqual{Column: "id", Value: "user-0090"},
	}
	parts, err := rig.rel.BuildScan([]string{"id"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 10 {
		t.Errorf("rows = %d, want 10", len(got))
	}
	if rig.meter.Get(metrics.RegionsPruned) == 0 {
		t.Error("expected pruned regions")
	}
	if rig.meter.Get(metrics.FiltersPushed) != 1 {
		t.Errorf("filters pushed = %d", rig.meter.Get(metrics.FiltersPushed))
	}
	// The source fully handles a rowkey range.
	if un := rig.rel.UnhandledFilters(filters); len(un) != 0 {
		t.Errorf("unhandled = %v", un)
	}
}

func TestEqualToBecomesPointGet(t *testing.T) {
	rig := newRig(t, Options{}, 60)
	before := rig.meter.Get(metrics.RowsScanned)
	parts, err := rig.rel.BuildScan([]string{"id", "age"},
		[]datasource.Filter{datasource.EqualTo{Column: "id", Value: "user-0033"}})
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 1 || got[0][0] != "user-0033" {
		t.Fatalf("rows = %v", got)
	}
	if scanned := rig.meter.Get(metrics.RowsScanned) - before; scanned != 1 {
		t.Errorf("rows scanned = %d, want 1 (point get)", scanned)
	}
	if len(parts) != 1 {
		t.Errorf("partitions = %d, want 1 after pruning to one region", len(parts))
	}
}

func TestColumnPruningLimitsWireBytes(t *testing.T) {
	rig := newRig(t, Options{}, 80)
	run := func(cols []string) int64 {
		before := rig.meter.Get(metrics.CellsReturned)
		parts, err := rig.rel.BuildScan(cols, nil)
		if err != nil {
			t.Fatal(err)
		}
		scanAll(t, parts)
		return rig.meter.Get(metrics.CellsReturned) - before
	}
	narrow := run([]string{"id", "age"})
	wide := run([]string{"id", "age", "city", "score"})
	if narrow >= wide {
		t.Errorf("column pruning did not reduce cells: %d vs %d", narrow, wide)
	}
}

func TestNonKeyFilterPushedServerSide(t *testing.T) {
	rig := newRig(t, Options{}, 90)
	filters := []datasource.Filter{datasource.EqualTo{Column: "city", Value: "sf"}}
	parts, err := rig.rel.BuildScan([]string{"id", "city"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 30 {
		t.Errorf("rows = %d, want 30", len(got))
	}
	for _, r := range got {
		if r[1] != "sf" {
			t.Fatalf("server-side filter leaked row %v", r)
		}
	}
	if un := rig.rel.UnhandledFilters(filters); len(un) != 0 {
		t.Errorf("city filter should be handled, unhandled = %v", un)
	}
	// Server returned exactly the matching rows: pushdown, not post-filter.
	if rig.meter.Get(metrics.RowsReturned) != 30 {
		t.Errorf("rows returned = %d", rig.meter.Get(metrics.RowsReturned))
	}
}

func TestNotInStaysUnhandled(t *testing.T) {
	rig := newRig(t, Options{}, 30)
	filters := []datasource.Filter{datasource.NotIn{Column: "city", Values: []any{"sf", "la"}}}
	un := rig.rel.UnhandledFilters(filters)
	if len(un) != 1 {
		t.Fatalf("NOT IN must be unhandled (paper §VI-A.3), got %v", un)
	}
	// The scan still returns everything; the engine would re-filter.
	parts, err := rig.rel.BuildScan([]string{"id", "city"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, parts); len(got) != 30 {
		t.Errorf("NOT IN must not restrict the scan, rows = %d", len(got))
	}
}

func TestRowkeyOrLeadsToFullScanButInPrunes(t *testing.T) {
	rig := newRig(t, Options{}, 60)
	// OR across a rowkey range and a column predicate → full scan (paper
	// §VI-A.1's WHERE rowkey1 > "abc" OR column = "xyz" example).
	or := datasource.OrFilter{
		Left:  datasource.GreaterThan{Column: "id", Value: "user-0055"},
		Right: datasource.EqualTo{Column: "city", Value: "sf"},
	}
	tr := rig.rel.translate(or)
	if !tr.ranges.IsFull() {
		t.Errorf("mixed OR must scan everything, got %v", tr.ranges.Ranges())
	}
	if tr.handled {
		t.Error("mixed OR must stay unhandled")
	}
	// IN on the rowkey prunes to points.
	in := datasource.In{Column: "id", Values: []any{"user-0001", "user-0002"}}
	parts, err := rig.rel.BuildScan([]string{"id"}, []datasource.Filter{in})
	if err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, parts); len(got) != 2 {
		t.Errorf("IN point rows = %d", len(got))
	}
	// Pure rowkey OR unions ranges and stays handled.
	keyOr := datasource.OrFilter{
		Left:  datasource.LessThan{Column: "id", Value: "user-0002"},
		Right: datasource.GreaterThanOrEqual{Column: "id", Value: "user-0058"},
	}
	trk := rig.rel.translate(keyOr)
	if !trk.handled || len(trk.ranges.Ranges()) != 2 {
		t.Errorf("rowkey OR = handled %v ranges %v", trk.handled, trk.ranges.Ranges())
	}
}

func TestRangeAndFilterCombination(t *testing.T) {
	rig := newRig(t, Options{}, 100)
	filters := []datasource.Filter{
		datasource.GreaterThanOrEqual{Column: "id", Value: "user-0020"},
		datasource.LessThan{Column: "id", Value: "user-0040"},
		datasource.EqualTo{Column: "city", Value: "nyc"},
	}
	parts, err := rig.rel.BuildScan([]string{"id", "city", "age"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	want := 0
	for i := 20; i < 40; i++ {
		if i%3 == 1 { // nyc
			want++
		}
	}
	if len(got) != want {
		t.Errorf("rows = %d, want %d", len(got), want)
	}
}

func TestPreferredHostsMatchRegions(t *testing.T) {
	rig := newRig(t, Options{}, 100)
	parts, err := rig.rel.BuildScan([]string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	hosts := make(map[string]bool)
	for _, p := range parts {
		if p.PreferredHost() == "" {
			t.Error("SHC partitions must carry locality")
		}
		hosts[p.PreferredHost()] = true
	}
	// Fusion: one partition per region server (3 servers, 5 regions).
	if len(parts) != 3 {
		t.Errorf("fused partitions = %d, want 3", len(parts))
	}
	if len(hosts) != 3 {
		t.Errorf("distinct hosts = %d", len(hosts))
	}
}

func TestDisableOperatorFusion(t *testing.T) {
	rig := newRig(t, Options{DisableOperatorFusion: true}, 100)
	parts, err := rig.rel.BuildScan([]string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 5 {
		t.Errorf("per-region partitions = %d, want 5", len(parts))
	}
	if got := scanAll(t, parts); len(got) != 100 {
		t.Errorf("rows = %d", len(got))
	}
}

func TestDisablePartitionPruning(t *testing.T) {
	rig := newRig(t, Options{DisablePartitionPruning: true}, 100)
	before := rig.meter.Get(metrics.RegionsScanned)
	parts, err := rig.rel.BuildScan([]string{"id"},
		[]datasource.Filter{datasource.EqualTo{Column: "id", Value: "user-0001"}})
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 1 {
		t.Errorf("rows = %d", len(got))
	}
	if scanned := rig.meter.Get(metrics.RegionsScanned) - before; scanned != 5 {
		t.Errorf("regions scanned = %d, want 5 without pruning", scanned)
	}
}

func TestDisableFilterPushdown(t *testing.T) {
	rig := newRig(t, Options{DisableFilterPushdown: true}, 40)
	filters := []datasource.Filter{datasource.EqualTo{Column: "city", Value: "sf"}}
	if un := rig.rel.UnhandledFilters(filters); len(un) != 1 {
		t.Errorf("all filters must be unhandled, got %v", un)
	}
	parts, err := rig.rel.BuildScan([]string{"id", "city"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	if got := scanAll(t, parts); len(got) != 40 {
		t.Errorf("rows = %d (no pushdown means no narrowing)", len(got))
	}
}

func TestNullColumnsRoundTrip(t *testing.T) {
	rig := newRig(t, Options{}, 0)
	rows := []plan.Row{
		{"k1", int32(10), nil, 1.5},
		{"k2", nil, "sf", nil},
	}
	if err := rig.rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	parts, err := rig.rel.BuildScan([]string{"id", "age", "city", "score"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	sortRows(got)
	if got[0][2] != nil || got[1][1] != nil || got[1][3] != nil {
		t.Errorf("NULLs lost: %v", got)
	}
	if got[0][1] != int32(10) || got[1][2] != "sf" {
		t.Errorf("values lost: %v", got)
	}
	// NULL rowkey rejected.
	if err := rig.rel.Insert([]plan.Row{{nil, int32(1), "x", 1.0}}); err == nil {
		t.Error("NULL rowkey must be rejected")
	}
}

func TestTimestampAndVersionQueries(t *testing.T) {
	rig := newRig(t, Options{NewTableRegions: 1, MaxVersions: 3}, 0)
	// Three versions of the same row at ts 10, 20, 30 (paper Code 5).
	for i, ts := range []int64{10, 20, 30} {
		rel, err := NewHBaseRelation(rig.client, rig.cat, Options{WriteTimestamp: ts, MaxVersions: 3, NewTableRegions: 1}, rig.meter)
		if err != nil {
			t.Fatal(err)
		}
		if err := rel.Insert([]plan.Row{{"k", int32(i), "v", float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	read := func(opts Options) []plan.Row {
		opts.MaxVersions = maxInt(opts.MaxVersions, 1)
		rel, err := NewHBaseRelation(rig.client, rig.cat, opts, rig.meter)
		if err != nil {
			t.Fatal(err)
		}
		parts, err := rel.BuildScan([]string{"id", "age"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return scanAll(t, parts)
	}
	// Latest version by default.
	got := read(Options{})
	if len(got) != 1 || got[0][1] != int32(2) {
		t.Errorf("latest = %v", got)
	}
	// Exact timestamp (df_time in Code 5).
	got = read(Options{Timestamp: 20})
	if len(got) != 1 || got[0][1] != int32(1) {
		t.Errorf("ts=20 = %v", got)
	}
	// Range [0, 25) returns the newest version within the range (df_range).
	got = read(Options{MinTimestamp: 0, MaxTimestamp: 25})
	if len(got) != 1 || got[0][1] != int32(1) {
		t.Errorf("range [0,25) = %v", got)
	}
	// Outside every version.
	got = read(Options{MinTimestamp: 100, MaxTimestamp: 200})
	if len(got) != 0 {
		t.Errorf("empty range = %v", got)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestDeleteWritesTombstones(t *testing.T) {
	rig := newRig(t, Options{NewTableRegions: 1}, 10)
	if err := rig.rel.Delete([][]any{{"user-0003"}}, 2); err != nil {
		t.Fatal(err)
	}
	parts, err := rig.rel.BuildScan([]string{"id"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 9 {
		t.Errorf("rows after delete = %d", len(got))
	}
	for _, r := range got {
		if r[0] == "user-0003" {
			t.Error("deleted row still visible")
		}
	}
}

func TestBuildScanUnknownColumn(t *testing.T) {
	rig := newRig(t, Options{}, 5)
	if _, err := rig.rel.BuildScan([]string{"ghost"}, nil); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestSampleSplitKeys(t *testing.T) {
	var keys [][]byte
	for i := 0; i < 100; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%03d", i)))
	}
	splits := SampleSplitKeys(keys, 5)
	if len(splits) != 4 {
		t.Fatalf("splits = %d", len(splits))
	}
	for i := 1; i < len(splits); i++ {
		if string(splits[i-1]) >= string(splits[i]) {
			t.Error("splits must be sorted and distinct")
		}
	}
	if SampleSplitKeys(keys, 1) != nil || SampleSplitKeys(nil, 5) != nil {
		t.Error("degenerate cases must return nil")
	}
	// Heavy skew: duplicates collapse.
	var skew [][]byte
	for i := 0; i < 100; i++ {
		skew = append(skew, []byte("same"))
	}
	if got := SampleSplitKeys(skew, 5); len(got) > 1 {
		t.Errorf("skewed splits = %d", len(got))
	}
}

func TestEstimatedRowCount(t *testing.T) {
	rig := newRig(t, Options{}, 80)
	est, ok := rig.rel.EstimatedRowCount()
	if !ok {
		t.Fatal("SHC relation must provide statistics")
	}
	// 80 rows × 3 data columns = 240 cells / 3 = 80.
	if est != 80 {
		t.Errorf("estimate = %d, want 80", est)
	}
	stats, err := rig.client.TableStats("users")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Cells != 240 || stats.Regions != 5 || stats.Bytes <= 0 {
		t.Errorf("stats = %+v", stats)
	}
	if _, err := rig.client.TableStats("missing"); err == nil {
		t.Error("stats for a missing table must fail")
	}
}
