package core

import (
	"context"
	"reflect"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// collectRowPath drains a partition through the row-batch path.
func collectRowPath(t *testing.T, p datasource.Partition, opts datasource.BatchOptions) []plan.Row {
	t.Helper()
	var out []plan.Row
	err := datasource.StreamPartition(context.Background(), p, opts, func(rows []plan.Row) error {
		for _, r := range rows {
			out = append(out, append(plan.Row{}, r...))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// collectVectorPath drains a partition through ComputeVectors, boxing every
// batch row back out — the representation the pipeline's output sees.
func collectVectorPath(t *testing.T, p datasource.Partition, opts datasource.BatchOptions) []plan.Row {
	t.Helper()
	vs, ok := p.(datasource.VectorScan)
	if !ok {
		t.Fatalf("partition %T does not implement VectorScan", p)
	}
	var out []plan.Row
	err := vs.ComputeVectors(context.Background(), opts, func(b *plan.Batch) error {
		for i := 0; i < b.Len(); i++ {
			r, err := b.MaterializeRow(i)
			if err != nil {
				return err
			}
			out = append(out, r)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestComputeVectorsMatchesRowPath pins the columnar decode layer: every
// partition of a fused scan, streamed as column batches — eager, partially
// lazy, and with a limit hint — materializes byte-identically to the row
// path, rowkey-backed columns included.
func TestComputeVectorsMatchesRowPath(t *testing.T) {
	rig := newRig(t, Options{}, 700)
	parts, err := rig.rel.BuildScan([]string{"id", "age", "city", "score"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) < 2 {
		t.Fatalf("want multiple partitions, got %d", len(parts))
	}
	optVariants := []struct {
		name string
		opts datasource.BatchOptions
	}{
		{"all-eager", datasource.BatchOptions{}},
		{"lazy-tail", datasource.BatchOptions{EagerColumns: []int{1}}}, // only age eager
		{"small-batches", datasource.BatchOptions{BatchSize: 7}},
		{"limit-hint", datasource.BatchOptions{LimitHint: 13}},
	}
	for _, v := range optVariants {
		var rowAll, vecAll []plan.Row
		for _, p := range parts {
			rowAll = append(rowAll, collectRowPath(t, p, v.opts)...)
			vecAll = append(vecAll, collectVectorPath(t, p, v.opts)...)
		}
		if len(rowAll) == 0 {
			t.Fatalf("%s: row path returned nothing", v.name)
		}
		if !reflect.DeepEqual(rowAll, vecAll) {
			t.Fatalf("%s: vector path differs from row path (%d vs %d rows)", v.name, len(vecAll), len(rowAll))
		}
	}
	if rig.meter.Get(metrics.ColumnarPages) == 0 {
		t.Error("no fused page traveled column-major; the CellBlock path never engaged")
	}
}

// TestVectorBatchPoolReuse is the allocs/op assertion for the fused pager's
// batch pool: once warm, a get/put cycle for the same scan shape must reuse
// the pooled batch outright and allocate nothing per batch.
func TestVectorBatchPoolReuse(t *testing.T) {
	if raceEnabled {
		// The race detector makes sync.Pool drop a fraction of Puts on
		// purpose, so neither pointer reuse nor the alloc count below is
		// deterministic under -race.
		t.Skip("sync.Pool sheds Puts under the race detector")
	}
	rig := newRig(t, Options{}, 0)
	specs, schema, lazyDec := rig.rel.vecSpecs([]string{"id", "age", "score"}, []int{1})
	warm := getBatch(schema, specs, lazyDec)
	warm.Cols[0].AppendRaw([]byte("k"))
	warm.Cols[1].AppendInt64(1)
	warm.Cols[2].AppendRaw([]byte("v"))
	warm.SetLen(1)
	putBatch(warm)
	got := getBatch(schema, specs, lazyDec)
	if got != warm {
		t.Fatal("pool handed back a different batch for the same shape")
	}
	if got.Len() != 0 || got.Cols[1].Len() != 0 {
		t.Fatal("pooled batch came back dirty")
	}
	putBatch(got)
	allocs := testing.AllocsPerRun(200, func() {
		b := getBatch(schema, specs, lazyDec)
		b.Cols[0].AppendRaw([]byte("k"))
		b.Cols[1].AppendInt64(1)
		b.SetLen(1)
		putBatch(b)
	})
	// One allocation of slack for pool internals; the point is that batch
	// and vector construction (4+ allocations each) no longer happen per
	// batch.
	if allocs > 1 {
		t.Errorf("get/put cycle allocates %.1f objects per batch, want <= 1", allocs)
	}
}

// TestVectorScanFollowsRegionMove pins cursor-exact resume on the columnar
// pager: draining a server mid-scan (regions move, epochs bump) must not
// lose, duplicate, or reorder rows relative to an undisturbed row-path scan.
func TestVectorScanFollowsRegionMove(t *testing.T) {
	rig := newRig(t, Options{}, 400)
	parts, err := rig.rel.BuildScan([]string{"id", "age"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[int][]plan.Row)
	for i, p := range parts {
		want[i] = collectRowPath(t, p, datasource.BatchOptions{})
	}
	// Small pages so the drain lands between pages of an in-flight scan.
	drained := false
	for i, p := range parts {
		vs := p.(datasource.VectorScan)
		var got []plan.Row
		pages := 0
		err := vs.ComputeVectors(context.Background(), datasource.BatchOptions{BatchSize: 32}, func(b *plan.Batch) error {
			pages++
			if pages == 2 && !drained {
				drained = true
				drainPartitionHost(t, rig)
			}
			for j := 0; j < b.Len(); j++ {
				r, err := b.MaterializeRow(j)
				if err != nil {
					return err
				}
				got = append(got, r)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("partition %d: rows diverged after region move (%d vs %d)", i, len(got), len(want[i]))
		}
	}
	if !drained {
		t.Fatal("scan finished before the drain fired; shrink the batch size")
	}
}

// drainPartitionHost gracefully drains the server hosting the first users
// region, relocating its regions under bumped epochs.
func drainPartitionHost(t *testing.T, rig *testRig) {
	t.Helper()
	regions, err := rig.client.Regions("users")
	if err != nil {
		t.Fatal(err)
	}
	if err := rig.cluster.Master.DrainServer(regions[0].Host); err != nil {
		t.Fatal(err)
	}
}
