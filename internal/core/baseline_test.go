package core

import (
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/engine"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

func newBaselineRig(t *testing.T, n int) (*BaselineRelation, *metrics.Registry) {
	t.Helper()
	meter := metrics.NewRegistry()
	cluster, err := hbase.NewCluster(hbase.ClusterConfig{Name: "b", NumServers: 3, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ParseCatalog(usersCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rel := NewBaselineRelation(cluster.NewClient(), cat, Options{}, meter)
	var rows []plan.Row
	for i := 0; i < n; i++ {
		rows = append(rows, plan.Row{
			fmt.Sprintf("user-%04d", i), int32(18 + i%60),
			[]string{"sf", "nyc", "la"}[i%3], float64(i) / 10,
		})
	}
	if n > 0 {
		if err := rel.Insert(rows); err != nil {
			t.Fatal(err)
		}
	}
	return rel, meter
}

func TestBaselineRoundTrip(t *testing.T) {
	rel, _ := newBaselineRig(t, 40)
	parts, err := rel.BuildScan([]string{"id", "age", "city", "score"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 40 {
		t.Fatalf("rows = %d", len(got))
	}
	sortRows(got)
	if got[7][0] != "user-0007" || got[7][1] != int32(25) || got[7][2] != "nyc" || got[7][3] != 0.7 {
		t.Errorf("row 7 = %v", got[7])
	}
}

func TestBaselineIgnoresFiltersAndLocality(t *testing.T) {
	rel, meter := newBaselineRig(t, 60)
	filters := []datasource.Filter{datasource.EqualTo{Column: "id", Value: "user-0001"}}
	if un := rel.UnhandledFilters(filters); len(un) != 1 {
		t.Error("baseline must hand every filter back")
	}
	before := meter.Get(metrics.RowsReturned)
	parts, err := rel.BuildScan([]string{"id"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range parts {
		if p.PreferredHost() != "" {
			t.Error("baseline has no locality")
		}
	}
	got := scanAll(t, parts)
	if len(got) != 60 {
		t.Errorf("baseline must return everything, rows = %d", len(got))
	}
	if meter.Get(metrics.RowsReturned)-before != 60 {
		t.Errorf("server returned %d rows", meter.Get(metrics.RowsReturned)-before)
	}
}

func TestBaselineUnknownColumn(t *testing.T) {
	rel, _ := newBaselineRig(t, 5)
	if _, err := rel.BuildScan([]string{"ghost"}, nil); err == nil {
		t.Error("unknown column must fail")
	}
}

func TestBaselineCompositeRowkey(t *testing.T) {
	meter := metrics.NewRegistry()
	cluster, err := hbase.NewCluster(hbase.ClusterConfig{Name: "bc", NumServers: 1, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ParseCatalog(compositeCatalog)
	if err != nil {
		t.Fatal(err)
	}
	rel := NewBaselineRelation(cluster.NewClient(), cat, Options{}, meter)
	rows := []plan.Row{
		{"us", "h1", int64(5), "msg-a"},
		{"eu", "h2", int64(9), "msg-b"},
	}
	if err := rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	parts, err := rel.BuildScan([]string{"region", "host", "ts", "msg"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := scanAll(t, parts)
	if len(got) != 2 {
		t.Fatalf("rows = %v", got)
	}
	sortRows(got)
	if got[0][0] != "eu" || got[0][2] != int64(9) || got[1][3] != "msg-a" {
		t.Errorf("rows = %v", got)
	}
}

// TestSHCAndBaselineAgreeThroughEngine is the correctness backbone of every
// benchmark: the two relations must produce identical query answers, with
// SHC doing strictly less work.
func TestSHCAndBaselineAgreeThroughEngine(t *testing.T) {
	const n = 120
	shcRig := newRig(t, Options{}, n)
	baseRel, baseMeter := newBaselineRig(t, n)

	shcSess, _ := engine.NewSession(engine.Config{
		Hosts: shcRig.cluster.Hosts(), ExecutorsPerHost: 2, Meter: shcRig.meter,
	})
	shcSess.RegisterAs("users", shcRig.rel)
	baseSess, _ := engine.NewSession(engine.Config{
		Hosts: []string{"w1", "w2", "w3"}, ExecutorsPerHost: 2, Meter: baseMeter,
	})
	baseSess.RegisterAs("users", baseRel)

	queries := []string{
		"SELECT id, age FROM users WHERE id >= 'user-0100' ORDER BY id",
		"SELECT city, count(*) AS n FROM users WHERE age > 30 GROUP BY city ORDER BY city",
		"SELECT id FROM users WHERE city = 'sf' AND score < 3.0 ORDER BY id",
		"SELECT id FROM users WHERE city NOT IN ('sf','la') ORDER BY id",
		"SELECT count(1) FROM users",
		"SELECT id FROM users WHERE id = 'user-0042'",
		"SELECT max(score), min(age) FROM users WHERE id BETWEEN 'user-0020' AND 'user-0060'",
	}
	for _, q := range queries {
		sdf, err := shcSess.SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		srows, err := sdf.Collect()
		if err != nil {
			t.Fatalf("%s (shc): %v", q, err)
		}
		bdf, err := baseSess.SQL(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		brows, err := bdf.Collect()
		if err != nil {
			t.Fatalf("%s (baseline): %v", q, err)
		}
		if fmt.Sprint(srows) != fmt.Sprint(brows) {
			t.Errorf("query %q disagrees:\nshc:  %v\nbase: %v", q, srows, brows)
		}
	}
	// SHC moved strictly fewer bytes over the wire for the same answers.
	if shcRig.meter.Get(metrics.RPCBytesReceived) >= baseMeter.Get(metrics.RPCBytesReceived) {
		t.Errorf("SHC should receive fewer bytes: %d vs %d",
			shcRig.meter.Get(metrics.RPCBytesReceived), baseMeter.Get(metrics.RPCBytesReceived))
	}
	if shcRig.meter.Get(metrics.RowsReturned) >= baseMeter.Get(metrics.RowsReturned) {
		t.Errorf("SHC should fetch fewer rows: %d vs %d",
			shcRig.meter.Get(metrics.RowsReturned), baseMeter.Get(metrics.RowsReturned))
	}
	// Locality: SHC tasks land on region hosts; the baseline's cannot.
	if shcRig.meter.Get(metrics.TasksLocal) == 0 {
		t.Error("SHC scan tasks should be locality-scheduled")
	}
	if baseMeter.Get(metrics.TasksLocal) != 0 {
		t.Error("baseline tasks should not be local")
	}
}
