package core

import (
	"fmt"
	"testing"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// compositeRig loads a composite-key table: logs keyed by region:host:ts.
func compositeRig(t *testing.T, opts Options) (*HBaseRelation, *metrics.Registry) {
	t.Helper()
	meter := metrics.NewRegistry()
	cluster, err := hbase.NewCluster(hbase.ClusterConfig{Name: "c", NumServers: 3, Meter: meter})
	if err != nil {
		t.Fatal(err)
	}
	cat, err := ParseCatalog(compositeCatalog)
	if err != nil {
		t.Fatal(err)
	}
	if opts.NewTableRegions == 0 {
		opts.NewTableRegions = 6
	}
	rel, err := NewHBaseRelation(cluster.NewClient(), cat, opts, meter)
	if err != nil {
		t.Fatal(err)
	}
	var rows []plan.Row
	for _, region := range []string{"ap", "eu", "us"} {
		for h := 0; h < 4; h++ {
			for ts := int64(0); ts < 25; ts++ {
				rows = append(rows, plan.Row{region, fmt.Sprintf("host-%d", h), ts,
					fmt.Sprintf("msg-%s-%d-%d", region, h, ts)})
			}
		}
	}
	if err := rel.Insert(rows); err != nil {
		t.Fatal(err)
	}
	return rel, meter
}

func compositeFilters() []datasource.Filter {
	return []datasource.Filter{
		datasource.EqualTo{Column: "region", Value: "eu"},
		datasource.EqualTo{Column: "host", Value: "host-2"},
		datasource.GreaterThanOrEqual{Column: "ts", Value: int64(10)},
		datasource.LessThan{Column: "ts", Value: int64(20)},
	}
}

func compositeScan(t *testing.T, rel *HBaseRelation) []plan.Row {
	t.Helper()
	parts, err := rel.BuildScan([]string{"region", "host", "ts", "msg"}, compositeFilters())
	if err != nil {
		t.Fatal(err)
	}
	rows := scanAll(t, parts)
	// The engine re-applies unhandled predicates; emulate that here so
	// both configurations produce final answers.
	var out []plan.Row
	schema := rel.Schema()
	for _, r := range rows {
		keep := true
		for _, f := range compositeFilters() {
			ok, err := datasource.EvalFilter(f, schema, r)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out
}

func TestFullKeyPruningNarrowsScans(t *testing.T) {
	relOff, meterOff := compositeRig(t, Options{})
	relOn, meterOn := compositeRig(t, Options{FullKeyPruning: true})

	rowsOff := compositeScan(t, relOff)
	rowsOn := compositeScan(t, relOn)

	// Identical answers.
	if len(rowsOff) != 10 || len(rowsOn) != 10 {
		t.Fatalf("rows: off=%d on=%d, want 10", len(rowsOff), len(rowsOn))
	}
	sortRows(rowsOff)
	sortRows(rowsOn)
	for i := range rowsOff {
		if fmt.Sprint(rowsOff[i]) != fmt.Sprint(rowsOn[i]) {
			t.Fatalf("row %d differs: %v vs %v", i, rowsOff[i], rowsOn[i])
		}
	}
	// Strictly less scanning with the extension on: first-dimension-only
	// pruning still scans every host/ts under region=eu, full-key pruning
	// hits exactly the (eu, host-2, [10,20)) range.
	scannedOff := meterOff.Get(metrics.RowsScanned)
	scannedOn := meterOn.Get(metrics.RowsScanned)
	if scannedOn >= scannedOff {
		t.Errorf("full-key pruning should scan fewer rows: %d vs %d", scannedOn, scannedOff)
	}
	if scannedOn != 10 {
		t.Errorf("full-key pruning should scan exactly the 10 matching rows, got %d", scannedOn)
	}
}

func TestFullKeyPruningFallsBackWithoutLeadingEquality(t *testing.T) {
	rel, _ := compositeRig(t, Options{FullKeyPruning: true})
	// Equality only on the second dimension: no contiguous prefix, so the
	// extension must not narrow (and must not break results).
	filters := []datasource.Filter{datasource.EqualTo{Column: "host", Value: "host-1"}}
	set := rel.compositeRanges(filters)
	if !set.IsFull() {
		t.Errorf("no leading equality must give the full set, got %v", set.Ranges())
	}
	// A key dimension is not a cell, so no server-side filter exists for
	// it: the scan stays full and the engine re-applies the predicate.
	parts, err := rel.BuildScan([]string{"region", "host"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(scanAll(t, parts)); got != 300 {
		t.Errorf("rows = %d, want 300 (unnarrowed)", got)
	}
	if un := rel.UnhandledFilters(filters); len(un) != 1 {
		t.Errorf("host equality must be unhandled, got %v", un)
	}
}

func TestFullKeyPruningEqualityOnAllDims(t *testing.T) {
	rel, meter := compositeRig(t, Options{FullKeyPruning: true})
	filters := []datasource.Filter{
		datasource.EqualTo{Column: "region", Value: "us"},
		datasource.EqualTo{Column: "host", Value: "host-0"},
		datasource.EqualTo{Column: "ts", Value: int64(7)},
	}
	before := meter.Get(metrics.RowsScanned)
	parts, err := rel.BuildScan([]string{"msg"}, filters)
	if err != nil {
		t.Fatal(err)
	}
	rows := scanAll(t, parts)
	if len(rows) != 1 || rows[0][0] != "msg-us-0-7" {
		t.Fatalf("rows = %v", rows)
	}
	if scanned := meter.Get(metrics.RowsScanned) - before; scanned != 1 {
		t.Errorf("scanned %d rows, want exactly 1", scanned)
	}
}

func TestCompositeFirstDimensionOnlyDefault(t *testing.T) {
	// Without the extension, the paper's stated behaviour: pruning on the
	// first dimension only (BuildScan never consults compositeRanges).
	rel, meter := compositeRig(t, Options{})
	before := meter.Get(metrics.RowsScanned)
	parts, err := rel.BuildScan([]string{"msg"}, compositeFilters())
	if err != nil {
		t.Fatal(err)
	}
	scanAll(t, parts)
	scanned := meter.Get(metrics.RowsScanned) - before
	// region=eu narrows to 100 rows (first dimension); host/ts predicates
	// do not narrow further without the extension.
	if scanned != 100 {
		t.Errorf("scanned = %d, want 100 (first-dimension pruning only)", scanned)
	}
	tr := rel.translate(datasource.EqualTo{Column: "host", Value: "host-1"})
	if tr.handled {
		t.Error("equality on a non-first key dimension is not handled without the extension")
	}
}
