package core

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/shc-go/shc/internal/bytesutil"
)

// RowRange is a half-open range [Start, Stop) of encoded row keys; a nil
// bound is unbounded. The empty flag distinguishes "no rows can match"
// from "everything".
type RowRange struct {
	Start, Stop []byte
}

// fullRange matches every row.
func fullRange() RowRange { return RowRange{} }

// isFull reports whether the range is unbounded on both sides.
func (r RowRange) isFull() bool { return r.Start == nil && r.Stop == nil }

// isEmpty reports whether no key can fall in the range.
func (r RowRange) isEmpty() bool {
	return r.Start != nil && r.Stop != nil && bytes.Compare(r.Start, r.Stop) >= 0
}

// contains reports whether key falls inside the range.
func (r RowRange) contains(key []byte) bool {
	if r.Start != nil && bytes.Compare(key, r.Start) < 0 {
		return false
	}
	if r.Stop != nil && bytes.Compare(key, r.Stop) >= 0 {
		return false
	}
	return true
}

// String renders the range.
func (r RowRange) String() string { return fmt.Sprintf("[%x,%x)", r.Start, r.Stop) }

// intersectRanges computes r ∩ s, merging the bounds the way the paper's
// §VI-A.5 merges conjunctive range predicates (t ∈ [a,b] ∩ [c,d] → [c,b]).
func intersectRanges(r, s RowRange) RowRange {
	out := RowRange{Start: r.Start, Stop: r.Stop}
	if s.Start != nil && (out.Start == nil || bytes.Compare(s.Start, out.Start) > 0) {
		out.Start = s.Start
	}
	if s.Stop != nil && (out.Stop == nil || bytes.Compare(s.Stop, out.Stop) < 0) {
		out.Stop = s.Stop
	}
	return out
}

// RangeSet is a union of disjoint, sorted ranges over encoded row keys.
// The zero value is the empty set; use fullSet() for "everything".
type RangeSet struct {
	ranges []RowRange
}

// fullSet matches every row.
func fullSet() RangeSet { return RangeSet{ranges: []RowRange{fullRange()}} }

// emptySet matches nothing.
func emptySet() RangeSet { return RangeSet{} }

// singleSet wraps one range.
func singleSet(r RowRange) RangeSet {
	if r.isEmpty() {
		return emptySet()
	}
	return RangeSet{ranges: []RowRange{r}}
}

// pointSet matches exactly the given encoded keys.
func pointSet(keys ...[]byte) RangeSet {
	s := emptySet()
	for _, k := range keys {
		s = s.Union(singleSet(RowRange{Start: k, Stop: bytesutil.Successor(k)}))
	}
	return s
}

// prefixSet matches every key beginning with prefix.
func prefixSet(prefix []byte) RangeSet {
	return singleSet(RowRange{Start: prefix, Stop: bytesutil.PrefixSuccessor(prefix)})
}

// IsEmpty reports whether the set matches nothing.
func (s RangeSet) IsEmpty() bool { return len(s.ranges) == 0 }

// IsFull reports whether the set matches everything.
func (s RangeSet) IsFull() bool {
	return len(s.ranges) == 1 && s.ranges[0].isFull()
}

// Ranges returns the disjoint ranges in ascending order.
func (s RangeSet) Ranges() []RowRange { return s.ranges }

// Contains reports whether key falls in the set. It binary-searches the
// sorted ranges — the "binary search is used to merge the lower bound and
// upper bound" machinery of §VI-A.5 in query form.
func (s RangeSet) Contains(key []byte) bool {
	i := sort.Search(len(s.ranges), func(i int) bool {
		r := s.ranges[i]
		return r.Stop == nil || bytes.Compare(key, r.Stop) < 0
	})
	return i < len(s.ranges) && s.ranges[i].contains(key)
}

// Intersect computes the set intersection (predicates ANDed together).
func (s RangeSet) Intersect(o RangeSet) RangeSet {
	var out []RowRange
	for _, a := range s.ranges {
		for _, b := range o.ranges {
			m := intersectRanges(a, b)
			if !m.isEmpty() {
				out = append(out, m)
			}
		}
	}
	return normalize(out)
}

// Union computes the set union (predicates ORed together), merging
// overlapping and adjacent ranges (t ∈ [a,b] ∪ [c,d] → [a,d] when they
// touch).
func (s RangeSet) Union(o RangeSet) RangeSet {
	return normalize(append(append([]RowRange{}, s.ranges...), o.ranges...))
}

// normalize sorts ranges and merges overlaps, keeping the set canonical.
func normalize(in []RowRange) RangeSet {
	var rs []RowRange
	for _, r := range in {
		if !r.isEmpty() {
			rs = append(rs, r)
		}
	}
	if len(rs) == 0 {
		return emptySet()
	}
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Start, rs[j].Start
		if a == nil {
			return b != nil
		}
		if b == nil {
			return false
		}
		return bytes.Compare(a, b) < 0
	})
	out := []RowRange{rs[0]}
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if last.Stop == nil || (r.Start != nil && bytes.Compare(r.Start, last.Stop) > 0) {
			if last.Stop == nil {
				// Previous range is unbounded above; it swallows the rest.
				break
			}
			out = append(out, r)
			continue
		}
		// Overlapping or adjacent: extend.
		if r.Stop == nil {
			last.Stop = nil
		} else if bytes.Compare(r.Stop, last.Stop) > 0 {
			last.Stop = r.Stop
		}
	}
	return RangeSet{ranges: out}
}
