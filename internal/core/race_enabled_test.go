//go:build race

package core

// raceEnabled reports whether this binary was built with -race. Under the
// race detector sync.Pool deliberately drops a fraction of Puts, so
// allocation-count assertions on pooled objects only hold without it.
const raceEnabled = true
