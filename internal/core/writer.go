package core

import (
	"bytes"
	"fmt"
	"sort"

	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/plan"
)

// EnsureTable creates the relation's HBase table if it does not exist,
// pre-split at splitKeys (which may be nil). Creating an existing table is
// not an error here so writers can be idempotent.
func (r *HBaseRelation) EnsureTable(splitKeys [][]byte) error {
	tables, err := r.client.ListTables()
	if err != nil {
		return err
	}
	for _, t := range tables {
		if t == r.cat.Table.Name {
			return nil
		}
	}
	return r.client.CreateTable(r.cat.TableDescriptor(r.opts.maxVersions()), splitKeys)
}

// encodeRows turns schema-ordered rows into HBase cells plus their encoded
// rowkeys — the shared front half of both write paths (Insert and BulkLoad).
func (r *HBaseRelation) encodeRows(rows []plan.Row) (cells []hbase.Cell, keys [][]byte, err error) {
	schema := r.cat.Schema()
	keyFields := r.cat.RowkeyFields()
	ts := r.opts.WriteTimestamp
	if ts == 0 {
		ts = 1
	}

	cells = make([]hbase.Cell, 0, len(rows)*(len(schema)-len(keyFields)))
	keys = make([][]byte, 0, len(rows))
	for _, row := range rows {
		if len(row) != len(schema) {
			return nil, nil, fmt.Errorf("core: row width %d does not match catalog schema %d", len(row), len(schema))
		}
		keyVals := make([]any, len(keyFields))
		for i := range keyFields {
			if row[i] == nil {
				return nil, nil, fmt.Errorf("core: rowkey dimension %q is NULL", keyFields[i])
			}
			keyVals[i] = row[i]
		}
		key, err := r.codec.encodeRowkey(keyVals)
		if err != nil {
			return nil, nil, err
		}
		keys = append(keys, key)
		for i := len(keyFields); i < len(schema); i++ {
			if row[i] == nil {
				continue // NULLs are simply absent cells
			}
			spec := r.cat.Columns[schema[i].Name]
			enc, err := r.coder.Encode(row[i], schema[i].Type)
			if err != nil {
				return nil, nil, fmt.Errorf("core: encode %s: %w", schema[i].Name, err)
			}
			cells = append(cells, hbase.Cell{
				Row: key, Family: spec.CF, Qualifier: spec.Col,
				Timestamp: ts, Type: hbase.TypePut, Value: enc,
			})
		}
	}
	return cells, keys, nil
}

// Insert implements datasource.InsertableRelation: the DataFrame write path
// (paper Code 2). Rows follow the catalog schema order. When the table does
// not exist yet it is created pre-split into NewTableRegions regions, with
// split points sampled from the batch being written.
func (r *HBaseRelation) Insert(rows []plan.Row) error {
	cells, keys, err := r.encodeRows(rows)
	if err != nil {
		return err
	}
	if err := r.EnsureTable(SampleSplitKeys(keys, r.opts.NewTableRegions)); err != nil {
		return err
	}
	return r.client.Put(r.cat.Table.Name, cells)
}

// BulkLoad implements datasource.BulkLoadableRelation: rows are encoded,
// sorted, and installed as store files directly in each region — no WAL
// append, no MemStore residency, no flush — the right path for loading a
// large initial dataset without pushing the cluster into write backpressure.
func (r *HBaseRelation) BulkLoad(rows []plan.Row) error {
	cells, keys, err := r.encodeRows(rows)
	if err != nil {
		return err
	}
	if err := r.EnsureTable(SampleSplitKeys(keys, r.opts.NewTableRegions)); err != nil {
		return err
	}
	return r.client.BulkLoad(r.cat.Table.Name, cells)
}

// Delete writes tombstones for every data column of the given rowkey
// values (each a full set of key dimensions).
func (r *HBaseRelation) Delete(keyVals [][]any, ts int64) error {
	var cells []hbase.Cell
	schema := r.cat.Schema()
	for _, kv := range keyVals {
		key, err := r.codec.encodeRowkey(kv)
		if err != nil {
			return err
		}
		for i := len(r.cat.RowkeyFields()); i < len(schema); i++ {
			spec := r.cat.Columns[schema[i].Name]
			cells = append(cells, hbase.Cell{
				Row: key, Family: spec.CF, Qualifier: spec.Col,
				Timestamp: ts, Type: hbase.TypeDelete,
			})
		}
	}
	return r.client.Put(r.cat.Table.Name, cells)
}

// SampleSplitKeys picks regions-1 split points from the encoded keys by
// rank, producing balanced pre-split tables (the effect of
// HBaseTableCatalog.newTable -> "5" in the paper's Code 2).
func SampleSplitKeys(keys [][]byte, regions int) [][]byte {
	if regions <= 1 || len(keys) == 0 {
		return nil
	}
	sorted := make([][]byte, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return bytes.Compare(sorted[i], sorted[j]) < 0 })
	var out [][]byte
	for i := 1; i < regions; i++ {
		idx := i * len(sorted) / regions
		if idx >= len(sorted) {
			break
		}
		key := sorted[idx]
		if len(out) > 0 && bytes.Equal(out[len(out)-1], key) {
			continue // duplicate ranks in skewed data
		}
		out = append(out, append([]byte(nil), key...))
	}
	return out
}
