package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"github.com/shc-go/shc/internal/datasource"
	"github.com/shc-go/shc/internal/hbase"
	"github.com/shc-go/shc/internal/metrics"
	"github.com/shc-go/shc/internal/plan"
)

// StringCoder models the generic conversion path stock Spark SQL uses when
// it treats HBase as just another Hadoop data source: every value crosses
// the boundary as its string rendering. It round-trips correctly but is
// slower to encode, bigger on the wire, and numeric encodings do not sort,
// so nothing built on it can do range pruning.
type StringCoder struct{}

// Name implements FieldCoder.
func (StringCoder) Name() string { return "String" }

// OrderPreserving implements FieldCoder: "10" < "9" byte-wise.
func (StringCoder) OrderPreserving() bool { return false }

// Encode implements FieldCoder.
func (StringCoder) Encode(v any, t plan.DataType) ([]byte, error) {
	cv, err := plan.CoerceLiteral(v, t)
	if err != nil {
		return nil, err
	}
	switch x := cv.(type) {
	case string:
		return []byte(x), nil
	case []byte:
		return []byte(fmt.Sprintf("%x", x)), nil
	case float32:
		return []byte(strconv.FormatFloat(float64(x), 'g', -1, 32)), nil
	case float64:
		return []byte(strconv.FormatFloat(x, 'g', -1, 64)), nil
	case bool:
		return []byte(strconv.FormatBool(x)), nil
	default:
		i, ok := plan.ToInt(cv)
		if !ok {
			return nil, fmt.Errorf("core: string coder cannot encode %T", cv)
		}
		return []byte(strconv.FormatInt(i, 10)), nil
	}
}

// Decode implements FieldCoder.
func (StringCoder) Decode(b []byte, t plan.DataType) (any, error) {
	s := string(b)
	switch t {
	case plan.TypeString:
		return s, nil
	case plan.TypeBool:
		return strconv.ParseBool(s)
	case plan.TypeBinary:
		var out []byte
		_, err := fmt.Sscanf(s, "%x", &out)
		return out, err
	case plan.TypeFloat32:
		f, err := strconv.ParseFloat(s, 32)
		return float32(f), err
	case plan.TypeFloat64:
		return strconv.ParseFloat(s, 64)
	default:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, err
		}
		return plan.CoerceLiteral(i, t)
	}
}

// BaselineRelation models how stock Spark SQL reads and writes HBase
// without SHC (paper §II, §VII-A): the store is a generic Hadoop source, so
// every scan reads every region in full — no partition pruning, no column
// pruning, no predicate pushdown, no locality — and the engine filters the
// decoded rows afterwards. Writes convert values through the generic string
// path.
type BaselineRelation struct {
	cat    *Catalog
	coder  FieldCoder
	client *hbase.Client
	meter  *metrics.Registry
	opts   Options
}

// NewBaselineRelation builds the baseline over an HBase client.
func NewBaselineRelation(client *hbase.Client, cat *Catalog, opts Options, meter *metrics.Registry) *BaselineRelation {
	return &BaselineRelation{cat: cat, coder: StringCoder{}, client: client, meter: meter, opts: opts}
}

// Name implements datasource.Relation.
func (b *BaselineRelation) Name() string { return b.cat.Table.Name }

// Schema implements datasource.Relation.
func (b *BaselineRelation) Schema() plan.Schema { return b.cat.Schema() }

// UnhandledFilters implements datasource.PrunedFilteredScan: the baseline
// handles nothing, so the engine re-applies every filter.
func (b *BaselineRelation) UnhandledFilters(filters []datasource.Filter) []datasource.Filter {
	return filters
}

// BuildScan implements datasource.PrunedFilteredScan. Filters are ignored
// (the generic source cannot push them) and every column of every region is
// fetched; the projection is applied only after decoding, which is exactly
// the redundant processing the paper attributes to the HadoopRDD path.
func (b *BaselineRelation) BuildScan(requiredColumns []string, filters []datasource.Filter) ([]datasource.Partition, error) {
	for _, col := range requiredColumns {
		if _, err := b.cat.Column(col); err != nil {
			return nil, err
		}
	}
	b.meter.Add(metrics.FiltersUnhandled, int64(len(filters)))
	regions, err := b.client.Regions(b.cat.Table.Name)
	if err != nil {
		return nil, err
	}
	parts := make([]datasource.Partition, len(regions))
	for i, ri := range regions {
		parts[i] = &baselinePartition{rel: b, index: i, region: ri, required: requiredColumns}
	}
	return parts, nil
}

type baselinePartition struct {
	rel      *BaselineRelation
	index    int
	region   hbase.RegionInfo
	required []string
}

// Index implements datasource.Partition.
func (p *baselinePartition) Index() int { return p.index }

// PreferredHost implements datasource.Partition: the generic path does not
// surface region locations, so tasks land anywhere.
func (p *baselinePartition) PreferredHost() string { return "" }

// Compute implements datasource.Partition: full region scan, all columns,
// then decode everything and project.
func (p *baselinePartition) Compute(ctx context.Context) ([]plan.Row, error) {
	ctx = bridgeConsistency(ctx)
	scan := &hbase.Scan{
		MaxVersions: p.rel.opts.maxVersions(),
		TimeRange:   p.rel.opts.timeRange(),
	}
	results, err := p.rel.client.ScanRegionContext(ctx, p.region, scan)
	if err != nil {
		return nil, err
	}
	schema := p.rel.cat.Schema()
	rows := make([]plan.Row, 0, len(results))
	for i := range results {
		// Decode the FULL row first (the HadoopRDD has no schema to prune
		// with), then project.
		full, err := p.rel.decodeFull(&results[i], schema)
		if err != nil {
			return nil, err
		}
		out := make(plan.Row, len(p.required))
		for j, col := range p.required {
			out[j] = full[schema.IndexOf(col)]
		}
		rows = append(rows, out)
	}
	return rows, nil
}

func (b *BaselineRelation) decodeFull(res *hbase.Result, schema plan.Schema) (plan.Row, error) {
	keyVals, err := b.decodeRowkey(res.Row)
	if err != nil {
		return nil, err
	}
	row := make(plan.Row, len(schema))
	for i, f := range schema {
		if dim, ok := b.cat.IsRowkeyField(f.Name); ok {
			row[i] = keyVals[dim]
			continue
		}
		spec := b.cat.Columns[f.Name]
		raw, ok := res.Value(spec.CF, spec.Col)
		if !ok {
			continue
		}
		v, err := b.coder.Decode(raw, f.Type)
		if err != nil {
			return nil, fmt.Errorf("core: baseline decode %s: %w", f.Name, err)
		}
		row[i] = v
	}
	return row, nil
}

// Insert implements datasource.InsertableRelation: the baseline write path,
// creating the table unsplit and converting every value through strings.
func (b *BaselineRelation) Insert(rows []plan.Row) error {
	schema := b.cat.Schema()
	keyFields := b.cat.RowkeyFields()
	ts := b.opts.WriteTimestamp
	if ts == 0 {
		ts = 1
	}
	tables, err := b.client.ListTables()
	if err != nil {
		return err
	}
	exists := false
	for _, t := range tables {
		if t == b.cat.Table.Name {
			exists = true
		}
	}
	if !exists {
		// The generic path has no pre-split hook.
		if err := b.client.CreateTable(b.cat.TableDescriptor(b.opts.maxVersions()), nil); err != nil {
			return err
		}
	}
	var cells []hbase.Cell
	for _, row := range rows {
		if len(row) != len(schema) {
			return fmt.Errorf("core: row width %d does not match catalog schema %d", len(row), len(schema))
		}
		key, err := b.encodeRowkey(row[:len(keyFields)])
		if err != nil {
			return err
		}
		for i := len(keyFields); i < len(schema); i++ {
			if row[i] == nil {
				continue
			}
			spec := b.cat.Columns[schema[i].Name]
			enc, err := b.coder.Encode(row[i], schema[i].Type)
			if err != nil {
				return err
			}
			cells = append(cells, hbase.Cell{
				Row: key, Family: spec.CF, Qualifier: spec.Col,
				Timestamp: ts, Type: hbase.TypePut, Value: enc,
			})
		}
	}
	return b.client.Put(b.cat.Table.Name, cells)
}

// encodeRowkey joins string-rendered dimensions with a NUL separator.
func (b *BaselineRelation) encodeRowkey(vals []any) ([]byte, error) {
	fields := b.cat.RowkeyFields()
	parts := make([]string, len(fields))
	for i, f := range fields {
		if vals[i] == nil {
			return nil, fmt.Errorf("core: rowkey dimension %q is NULL", f)
		}
		enc, err := b.coder.Encode(vals[i], b.cat.fieldType(f))
		if err != nil {
			return nil, err
		}
		if strings.ContainsRune(string(enc), 0) {
			return nil, fmt.Errorf("core: rowkey dimension %q contains NUL", f)
		}
		parts[i] = string(enc)
	}
	return []byte(strings.Join(parts, "\x00")), nil
}

func (b *BaselineRelation) decodeRowkey(key []byte) ([]any, error) {
	fields := b.cat.RowkeyFields()
	parts := strings.SplitN(string(key), "\x00", len(fields))
	if len(parts) != len(fields) {
		return nil, fmt.Errorf("core: rowkey %x has %d dimensions, want %d", key, len(parts), len(fields))
	}
	out := make([]any, len(fields))
	for i, f := range fields {
		v, err := b.coder.Decode([]byte(parts[i]), b.cat.fieldType(f))
		if err != nil {
			return nil, fmt.Errorf("core: baseline rowkey %q: %w", f, err)
		}
		out[i] = v
	}
	return out, nil
}
