package core

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/shc-go/shc/internal/bytesutil"
	"github.com/shc-go/shc/internal/plan"
)

// FieldCoder serializes typed values to the byte arrays HBase stores and
// back (paper §IV-B). Coders whose OrderPreserving method reports true
// guarantee that byte-wise comparison of encodings matches value order,
// which is what rowkey range pushdown and partition pruning require.
type FieldCoder interface {
	// Name is the catalog tableCoder identifier.
	Name() string
	// Encode serializes v, which must match t's Go representation.
	Encode(v any, t plan.DataType) ([]byte, error)
	// Decode parses bytes produced by Encode for type t.
	Decode(b []byte, t plan.DataType) (any, error)
	// OrderPreserving reports whether encodings sort like values.
	OrderPreserving() bool
}

// Coder names accepted in catalogs.
const (
	CoderPrimitive = "PrimitiveType"
	CoderPhoenix   = "Phoenix"
	CoderAvro      = "Avro"
)

// CoderByName returns the coder for a catalog tableCoder value; the empty
// string defaults to PrimitiveType, as in SHC.
func CoderByName(name string) (FieldCoder, error) {
	switch name {
	case "", CoderPrimitive:
		return PrimitiveCoder{}, nil
	case CoderPhoenix:
		return PhoenixCoder{}, nil
	case CoderAvro:
		return AvroCoder{}, nil
	}
	return nil, fmt.Errorf("core: unknown tableCoder %q", name)
}

// PrimitiveCoder is SHC's native coder: order-preserving fixed-width
// encodings built on the bytesutil transforms, raw bytes for strings and
// binary. It is the fastest and leanest of the three (paper Table II).
type PrimitiveCoder struct{}

// Name implements FieldCoder.
func (PrimitiveCoder) Name() string { return CoderPrimitive }

// OrderPreserving implements FieldCoder.
func (PrimitiveCoder) OrderPreserving() bool { return true }

// Encode implements FieldCoder.
func (PrimitiveCoder) Encode(v any, t plan.DataType) ([]byte, error) {
	if v == nil {
		return nil, fmt.Errorf("core: cannot encode NULL")
	}
	cv, err := plan.CoerceLiteral(v, t)
	if err != nil {
		return nil, err
	}
	switch t {
	case plan.TypeString:
		return bytesutil.EncodeString(cv.(string)), nil
	case plan.TypeInt8:
		return bytesutil.EncodeInt8(cv.(int8)), nil
	case plan.TypeInt16:
		return bytesutil.EncodeInt16(cv.(int16)), nil
	case plan.TypeInt32:
		return bytesutil.EncodeInt32(cv.(int32)), nil
	case plan.TypeInt64, plan.TypeTimestamp:
		return bytesutil.EncodeInt64(cv.(int64)), nil
	case plan.TypeFloat32:
		return bytesutil.EncodeFloat32(cv.(float32)), nil
	case plan.TypeFloat64:
		return bytesutil.EncodeFloat64(cv.(float64)), nil
	case plan.TypeBool:
		return bytesutil.EncodeBool(cv.(bool)), nil
	case plan.TypeBinary:
		return bytesutil.Clone(cv.([]byte)), nil
	}
	return nil, fmt.Errorf("core: primitive coder cannot encode %s", t)
}

// Decode implements FieldCoder.
func (PrimitiveCoder) Decode(b []byte, t plan.DataType) (any, error) {
	switch t {
	case plan.TypeString:
		return bytesutil.DecodeString(b)
	case plan.TypeInt8:
		return bytesutil.DecodeInt8(b)
	case plan.TypeInt16:
		return bytesutil.DecodeInt16(b)
	case plan.TypeInt32:
		return bytesutil.DecodeInt32(b)
	case plan.TypeInt64:
		return bytesutil.DecodeInt64(b)
	case plan.TypeTimestamp:
		return bytesutil.DecodeInt64(b)
	case plan.TypeFloat32:
		return bytesutil.DecodeFloat32(b)
	case plan.TypeFloat64:
		return bytesutil.DecodeFloat64(b)
	case plan.TypeBool:
		return bytesutil.DecodeBool(b)
	case plan.TypeBinary:
		return bytesutil.Clone(b), nil
	}
	return nil, fmt.Errorf("core: primitive coder cannot decode %s", t)
}

// phoenixTags tag each encoded value with its Phoenix type id, mirroring
// how Phoenix's PDataType layout carries type information. The payload
// reuses the order-preserving primitive transforms (Phoenix's numeric
// encodings flip the sign bit the same way), so Phoenix-coded rowkeys still
// support range pruning at one extra byte per value.
var phoenixTags = map[plan.DataType]byte{
	plan.TypeString:    1,
	plan.TypeInt8:      2,
	plan.TypeInt16:     3,
	plan.TypeInt32:     4,
	plan.TypeInt64:     5,
	plan.TypeFloat32:   6,
	plan.TypeFloat64:   7,
	plan.TypeBool:      8,
	plan.TypeBinary:    9,
	plan.TypeTimestamp: 10,
}

// PhoenixCoder writes values the way Apache Phoenix stores them, letting
// SHC read and write tables shared with Phoenix (paper §IV-B.3).
type PhoenixCoder struct{}

// Name implements FieldCoder.
func (PhoenixCoder) Name() string { return CoderPhoenix }

// OrderPreserving implements FieldCoder: the tag constant per column keeps
// byte order aligned with value order within a column.
func (PhoenixCoder) OrderPreserving() bool { return true }

// Encode implements FieldCoder.
func (PhoenixCoder) Encode(v any, t plan.DataType) ([]byte, error) {
	tag, ok := phoenixTags[t]
	if !ok {
		return nil, fmt.Errorf("core: phoenix coder cannot encode %s", t)
	}
	payload, err := (PrimitiveCoder{}).Encode(v, t)
	if err != nil {
		return nil, err
	}
	return append([]byte{tag}, payload...), nil
}

// Decode implements FieldCoder.
func (PhoenixCoder) Decode(b []byte, t plan.DataType) (any, error) {
	tag, ok := phoenixTags[t]
	if !ok {
		return nil, fmt.Errorf("core: phoenix coder cannot decode %s", t)
	}
	if len(b) < 1 {
		return nil, fmt.Errorf("core: phoenix value too short")
	}
	if b[0] != tag {
		return nil, fmt.Errorf("core: phoenix type tag %d does not match %s", b[0], t)
	}
	return (PrimitiveCoder{}).Decode(b[1:], t)
}

// avroEnvelope is the self-describing record AvroCoder stores per value.
type avroEnvelope struct {
	Type  string          `json:"type"`
	Value json.RawMessage `json:"value"`
}

// AvroCoder stores each value as a self-describing record, the way SHC
// persists Avro records in HBase cells (paper §IV-B.2, Code 2). The schema
// travels with every value, which costs encoding time and space — the
// trade-off Table II measures.
type AvroCoder struct{}

// Name implements FieldCoder.
func (AvroCoder) Name() string { return CoderAvro }

// OrderPreserving implements FieldCoder: JSON-framed values do not sort.
func (AvroCoder) OrderPreserving() bool { return false }

// Encode implements FieldCoder.
func (AvroCoder) Encode(v any, t plan.DataType) ([]byte, error) {
	cv, err := plan.CoerceLiteral(v, t)
	if err != nil {
		return nil, err
	}
	inner, err := json.Marshal(jsonable(cv))
	if err != nil {
		return nil, fmt.Errorf("core: avro encode: %w", err)
	}
	return json.Marshal(avroEnvelope{Type: t.String(), Value: inner})
}

// Decode implements FieldCoder.
func (AvroCoder) Decode(b []byte, t plan.DataType) (any, error) {
	var env avroEnvelope
	if err := json.Unmarshal(b, &env); err != nil {
		return nil, fmt.Errorf("core: avro decode: %w", err)
	}
	if env.Type != t.String() {
		return nil, fmt.Errorf("core: avro record of type %s read as %s", env.Type, t)
	}
	switch t {
	case plan.TypeString:
		var s string
		err := json.Unmarshal(env.Value, &s)
		return s, err
	case plan.TypeBool:
		var v bool
		err := json.Unmarshal(env.Value, &v)
		return v, err
	case plan.TypeBinary:
		var v []byte
		err := json.Unmarshal(env.Value, &v)
		return v, err
	case plan.TypeFloat32:
		var v float32
		err := json.Unmarshal(env.Value, &v)
		return v, err
	case plan.TypeFloat64:
		var v float64
		err := json.Unmarshal(env.Value, &v)
		return v, err
	default:
		var v int64
		if err := json.Unmarshal(env.Value, &v); err != nil {
			return nil, err
		}
		return plan.CoerceLiteral(v, t)
	}
}

func jsonable(v any) any {
	switch x := v.(type) {
	case int8:
		return int64(x)
	case int16:
		return int64(x)
	case int32:
		return int64(x)
	}
	return v
}

// rowkeyCodec encodes and decodes composite row keys. Every dimension is
// encoded with the catalog's coder; variable-length string dimensions in
// non-final positions get a 0x00 terminator so the key remains both
// order-preserving and decodable.
type rowkeyCodec struct {
	cat   *Catalog
	coder FieldCoder
}

// encodeRowkey concatenates the encoded dimensions of vals, which follow
// the catalog's rowkey field order.
func (rc rowkeyCodec) encodeRowkey(vals []any) ([]byte, error) {
	fields := rc.cat.RowkeyFields()
	if len(vals) != len(fields) {
		return nil, fmt.Errorf("core: rowkey needs %d values, got %d", len(fields), len(vals))
	}
	var out []byte
	for i, f := range fields {
		t := rc.cat.fieldType(f)
		enc, err := rc.coder.Encode(vals[i], t)
		if err != nil {
			return nil, fmt.Errorf("core: rowkey dimension %q: %w", f, err)
		}
		// Variable-length dimensions before the last need a terminator to
		// stay decodable (and order-preserving where the coder is).
		if i < len(fields)-1 && fixedWidth(t, rc.coder) < 0 {
			if strings.IndexByte(string(enc), 0) >= 0 {
				return nil, fmt.Errorf("core: rowkey dimension %q contains NUL", f)
			}
			enc = append(enc, 0)
		}
		out = append(out, enc...)
	}
	return out, nil
}

// encodePrefix encodes the first dimension only — the unit of partition
// pruning (paper §VI-A.1: "the partition pruning is performed on the first
// dimension of the row keys").
func (rc rowkeyCodec) encodePrefix(v any) ([]byte, error) {
	f := rc.cat.RowkeyFields()[0]
	return rc.coder.Encode(v, rc.cat.fieldType(f))
}

// encodeDims encodes the first n rowkey dimensions with the same
// terminator layout encodeRowkey uses, producing a byte prefix that every
// matching full key starts with. It powers the full-key pruning extension.
func (rc rowkeyCodec) encodeDims(vals []any, n int) ([]byte, error) {
	fields := rc.cat.RowkeyFields()
	if n > len(vals) || n > len(fields) {
		return nil, fmt.Errorf("core: %d dimensions requested, have %d", n, len(vals))
	}
	var out []byte
	for i := 0; i < n; i++ {
		t := rc.cat.fieldType(fields[i])
		enc, err := rc.coder.Encode(vals[i], t)
		if err != nil {
			return nil, fmt.Errorf("core: rowkey dimension %q: %w", fields[i], err)
		}
		if i < len(fields)-1 && fixedWidth(t, rc.coder) < 0 {
			if strings.IndexByte(string(enc), 0) >= 0 {
				return nil, fmt.Errorf("core: rowkey dimension %q contains NUL", fields[i])
			}
			enc = append(enc, 0)
		}
		out = append(out, enc...)
	}
	return out, nil
}

// fixedWidth reports the encoded byte width of t under the given coder, or
// -1 for variable-length encodings (strings, binary, and every value of
// the self-describing Avro and generic string coders).
func fixedWidth(t plan.DataType, coder FieldCoder) int {
	tag := 0
	switch coder.(type) {
	case PrimitiveCoder:
	case PhoenixCoder:
		tag = 1
	default:
		return -1
	}
	switch t {
	case plan.TypeBool, plan.TypeInt8:
		return 1 + tag
	case plan.TypeInt16:
		return 2 + tag
	case plan.TypeInt32, plan.TypeFloat32:
		return 4 + tag
	case plan.TypeInt64, plan.TypeFloat64, plan.TypeTimestamp:
		return 8 + tag
	}
	return -1
}

// decodeRowkey splits an encoded key back into dimension values.
func (rc rowkeyCodec) decodeRowkey(key []byte) ([]any, error) {
	return rc.decodeRowkeyInto(nil, key)
}

// decodeRowkeyInto is decodeRowkey with a reusable destination: when dst has
// capacity for every dimension it is reused, so a tight decode loop pays for
// one scratch slice instead of one allocation per row.
func (rc rowkeyCodec) decodeRowkeyInto(dst []any, key []byte) ([]any, error) {
	fields := rc.cat.RowkeyFields()
	var out []any
	if cap(dst) >= len(fields) {
		out = dst[:len(fields)]
	} else {
		out = make([]any, len(fields))
	}
	rest := key
	for i, f := range fields {
		t := rc.cat.fieldType(f)
		last := i == len(fields)-1
		var chunk []byte
		w := fixedWidth(t, rc.coder)
		switch {
		case last:
			chunk = rest
			rest = nil
		case w < 0:
			idx := strings.IndexByte(string(rest), 0)
			if idx < 0 {
				return nil, fmt.Errorf("core: rowkey dimension %q: missing terminator", f)
			}
			chunk = rest[:idx]
			rest = rest[idx+1:]
		default:
			if len(rest) < w {
				return nil, fmt.Errorf("core: rowkey dimension %q: cannot split %s", f, t)
			}
			chunk = rest[:w]
			rest = rest[w:]
		}
		v, err := rc.coder.Decode(chunk, t)
		if err != nil {
			return nil, fmt.Errorf("core: rowkey dimension %q: %w", f, err)
		}
		out[i] = v
	}
	return out, nil
}
